package corpus

import (
	"math"
	"strings"
	"testing"

	"vase/internal/vhif"
)

func TestFigure3(t *testing.T) {
	m, text, err := Figure3()
	if err != nil {
		t.Fatalf("figure 3: %v", err)
	}
	if len(m.FSMs) != 1 {
		t.Fatalf("fsms = %d, want 1", len(m.FSMs))
	}
	f := m.FSMs[0]
	// Paper Figure 3b: start, state1 {m,n}, state2 {u}, branch states for
	// the if. At least 5 states with the branch pair.
	if len(f.States) < 5 {
		t.Errorf("states = %d, want >= 5\n%s", len(f.States), text)
	}
	// Concurrency grouping: one state holds two ops.
	found2 := false
	for _, s := range f.States {
		if len(s.Ops) == 2 {
			found2 = true
		}
	}
	if !found2 {
		t.Errorf("no state with two concurrent operations\n%s", text)
	}
	if !strings.Contains(text, "State grouping") {
		t.Error("figure text missing explanation")
	}
}

func TestFigure4(t *testing.T) {
	m, text, err := Figure4()
	if err != nil {
		t.Fatalf("figure 4: %v", err)
	}
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BComparator); n != 2 {
		t.Errorf("condition blocks = %d, want 2 (icontr + contr)\n%s", n, text)
	}
	if n := g.CountKind(vhif.BSampleHold); n != 2 {
		t.Errorf("sample-holds = %d, want 2 (S/H1 + S/H2)", n)
	}
	if n := g.CountKind(vhif.BMux); n != 2 {
		t.Errorf("routing muxes = %d, want 2 (the sw switch pairs of Fig. 4b)", n)
	}
}

func TestFigure6(t *testing.T) {
	r, text, err := Figure6()
	if err != nil {
		t.Fatalf("figure 6: %v", err)
	}
	if r.BestOpAmps != 1 {
		t.Errorf("best mapping = %d op amps, want 1 (summing amplifier)", r.BestOpAmps)
	}
	if len(r.Complete) < 3 {
		t.Errorf("complete mappings = %d, want >= 3 alternatives\n%s", len(r.Complete), text)
	}
	// The tree must contain strictly costlier alternatives, as in the
	// paper's figure (2, 3 and 7 op amp mappings for its example).
	max := 0
	for _, n := range r.Complete {
		if n > max {
			max = n
		}
	}
	if max < 3 {
		t.Errorf("costliest complete mapping = %d op amps, want >= 3", max)
	}
	if !strings.Contains(text, "decision tree") {
		t.Error("figure text missing the decision tree")
	}
}

func TestFigure7(t *testing.T) {
	text, err := Figure7()
	if err != nil {
		t.Fatalf("figure 7: %v", err)
	}
	for _, want := range []string{"signal-flow graph", "circuit structure", "pga", "zero_cross_det", "output_stage"} {
		if !strings.Contains(text, want) {
			t.Errorf("figure 7 text missing %q", want)
		}
	}
}

func TestFigure8(t *testing.T) {
	r, text, err := Figure8()
	if err != nil {
		t.Fatalf("figure 8: %v", err)
	}
	if math.Abs(r.ClipP-1.5) > 0.08 {
		t.Errorf("positive clip = %g, want ~1.5", r.ClipP)
	}
	if math.Abs(r.ClipN+1.5) > 0.08 {
		t.Errorf("negative clip = %g, want ~-1.5", r.ClipN)
	}
	if len(r.V9) == 0 || len(r.V11) == 0 {
		t.Fatal("missing waveforms")
	}
	if !strings.Contains(text, "clipping") {
		t.Error("figure text missing clipping report")
	}
	// The behavioral simulation agrees on the clip level.
	tr, err := Figure8Behavioral()
	if err != nil {
		t.Fatalf("behavioral: %v", err)
	}
	if m := tr.Max("earph"); math.Abs(m-1.5) > 1e-6 {
		t.Errorf("behavioral clip = %g, want 1.5", m)
	}
}

package library

import "testing"

func TestCatalogComplete(t *testing.T) {
	cells := Catalog()
	if len(cells) != int(numCellKinds) {
		t.Fatalf("catalog has %d cells, want %d", len(cells), numCellKinds)
	}
	seen := map[CellKind]bool{}
	for _, c := range cells {
		if seen[c.Kind] {
			t.Errorf("duplicate cell kind %s", c.Kind)
		}
		seen[c.Kind] = true
		if c.Name == "" || c.Desc == "" {
			t.Errorf("cell %s missing name or description", c.Kind)
		}
		if c.OpAmps < 0 {
			t.Errorf("cell %s has negative op amp count", c.Kind)
		}
	}
}

func TestGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown cell kind")
		}
	}()
	Get(CellKind(999))
}

func TestOpAmpBudgets(t *testing.T) {
	// The budgets that the paper's results depend on.
	cases := map[CellKind]int{
		CellInvAmp:     1,
		CellSummingAmp: 1,
		CellPGA:        1,
		CellIntegrator: 1,
		CellComparator: 1,
		CellSchmitt:    1,
		CellSampleHold: 2,
		CellMultiplier: 4,
		CellMux:        0,
		CellSwitch:     0,
		CellLimiter:    0,
		CellLogAmp:     1,
		CellAntilogAmp: 1,
	}
	for k, want := range cases {
		if got := Get(k).OpAmps; got != want {
			t.Errorf("%s op amps = %d, want %d", k, got, want)
		}
	}
}

func TestGainFeasible(t *testing.T) {
	amp := Get(CellInvAmp)
	for _, g := range []float64{0.1, -2, 50, 100} {
		if !amp.GainFeasible(g) {
			t.Errorf("gain %g should be feasible for %s", g, amp.Name)
		}
	}
	if amp.GainFeasible(1000) {
		t.Error("gain 1000 exceeds a single stage")
	}
	if amp.GainFeasible(0.001) {
		t.Error("gain 0.001 is below the realizable range")
	}
	if !amp.GainFeasible(0) {
		t.Error("zero weight is always feasible (no connection)")
	}
}

func TestIsAmplifier(t *testing.T) {
	for _, k := range []CellKind{CellInvAmp, CellNonInvAmp, CellSummingAmp, CellDiffAmp, CellPGA, CellFollower} {
		if !k.IsAmplifier() {
			t.Errorf("%s should be an amplifier", k)
		}
	}
	for _, k := range []CellKind{CellIntegrator, CellComparator, CellMux, CellADC} {
		if k.IsAmplifier() {
			t.Errorf("%s should not be an amplifier", k)
		}
	}
}

func TestSummingAmpFanIn(t *testing.T) {
	if Get(CellSummingAmp).MaxInputs < 3 {
		t.Error("summing amp must accept at least 3 inputs for the corpus designs")
	}
}

// Tests for the anytime/budget contract of the MNA engine (cancellation,
// step and iteration budgets) and the scaled pivot regression.
package mna

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

// TestNanoConductancePivot locks the scaled singularity test: a perfectly
// well-conditioned voltage divider built from 10-petaohm resistors stamps
// conductances of 1e-16 S, which the old absolute 1e-15 pivot threshold
// misclassified as a singular matrix.
func TestNanoConductancePivot(t *testing.T) {
	c := New()
	top := c.NodeByName("top")
	mid := c.NodeByName("mid")
	c.AddV("vs", top, Ground, func(float64) float64 { return 1 })
	c.AddR("r1", top, mid, 1e16)
	c.AddR("r2", mid, Ground, 1e16)
	sol, err := c.DC()
	if err != nil {
		t.Fatalf("nano-conductance divider reported as unsolvable: %v", err)
	}
	if got := sol.V(mid); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("V(mid) = %g, want 0.5", got)
	}
}

// TestScaledPivotStillDetectsSingular checks the relative threshold has not
// weakened the floating-node diagnosis: a node with no DC path stays a
// structured singular-matrix error.
func TestScaledPivotStillDetectsSingular(t *testing.T) {
	c := New()
	n := c.NodeByName("floating")
	c.AddI("i1", Ground, n, func(float64) float64 { return 1e-3 })
	_, err := c.DC()
	if err == nil {
		t.Fatal("expected singular matrix error")
	}
	if !strings.Contains(err.Error(), "singular") {
		t.Errorf("error %q does not mention singularity", err)
	}
}

// rcCircuit builds a driven RC low-pass (tau = 1 ms).
func rcCircuit() (*Circuit, Node) {
	c := New()
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	c.AddV("vs", in, Ground, func(float64) float64 { return 1 })
	c.AddR("r", in, out, 1e3)
	c.AddC("c", out, Ground, 1e-6, 0)
	return c, out
}

func TestMaxTranStepsTruncates(t *testing.T) {
	c, _ := rcCircuit()
	c.MaxTranSteps = 10
	tr, err := c.Transient(1e-3, 1e-6) // would be 1000 steps unbounded
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	if !tr.Truncated {
		t.Error("step budget bound but Truncated not set")
	}
	if got := len(tr.Time); got != 11 { // t=0 plus 10 steps
		t.Errorf("recorded %d samples, want 11", got)
	}
}

func TestTransientDeadlineReturnsPartialTrace(t *testing.T) {
	c, _ := rcCircuit()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	// 1e9 steps: unbounded this would run for hours.
	tr, err := c.TransientContext(ctx, 1e3, 1e-6)
	if err != nil {
		t.Fatalf("cancelled transient should return the partial trace, got error: %v", err)
	}
	if !tr.Truncated {
		t.Error("deadlined transient did not set Truncated")
	}
	if len(tr.Time) < 1 {
		t.Error("truncated trace holds no samples")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline ignored: transient ran %v", elapsed)
	}
}

func TestDCCancellationReturnsError(t *testing.T) {
	c, _ := rcCircuit()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.DCContext(ctx); err == nil {
		t.Fatal("cancelled DC should fail (no useful partial operating point)")
	}
}

func TestMaxNewtonIterBudget(t *testing.T) {
	// A diode clamp needs several Newton iterations; a budget of 1 must
	// surface as a convergence error, not a hang or a silent wrong answer.
	c := New()
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	c.AddV("vs", in, Ground, func(float64) float64 { return 5 })
	c.AddR("r", in, out, 1e3)
	c.AddDiode("d", out, Ground)
	c.MaxNewtonIter = 1
	if _, err := c.DC(); err == nil {
		t.Fatal("expected convergence error under a 1-iteration budget")
	}
	c.MaxNewtonIter = 0 // default budget converges
	if _, err := c.DC(); err != nil {
		t.Fatalf("default budget failed: %v", err)
	}
}

package sema

import (
	"math"

	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/token"
)

// ---------------------------------------------------------------------------
// Expression type checking

// typeOf checks e in scope s, records the result in the design's type map,
// and returns it.
func (a *analyzer) typeOf(s *Scope, e ast.Expr) Type {
	t := a.typeOfUncached(s, e)
	if a.d != nil {
		a.d.Types[e] = t
		if v := a.constOf(s, e); v != nil {
			a.d.Consts[e] = v
		}
	}
	return t
}

func (a *analyzer) typeOfUncached(s *Scope, e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return Int
	case *ast.RealLit:
		return Real
	case *ast.BitLit:
		return Bit
	case *ast.StrLit:
		return Type{Kind: TBitVector, Len: len(e.Value)}
	case *ast.Paren:
		return a.typeOf(s, e.X)
	case *ast.Name:
		switch e.Ident.Canon {
		case "true", "false":
			return Bool
		}
		sym := s.Lookup(e.Ident.Canon)
		if sym == nil {
			a.report(diag.CodeUndeclared, e.SpanV, "undeclared name %q", e.Ident.Name)
			return ErrType
		}
		if sym.Kind == SymFunction {
			a.errorf(e.SpanV, "function %q used as a value", e.Ident.Name)
			return ErrType
		}
		return sym.Type
	case *ast.Unary:
		t := a.typeOf(s, e.X)
		switch e.Op {
		case token.MINUS, token.PLUS, token.ABS:
			if !t.IsNumeric() && t.Kind != TError {
				a.report(diag.CodeTypeMismatch, e.SpanV, "operator %s requires a numeric operand, got %s", e.Op, t)
				return ErrType
			}
			return t
		case token.NOT:
			if t.Kind != TBool && t.Kind != TBit && t.Kind != TError {
				a.report(diag.CodeTypeMismatch, e.SpanV, "not requires a boolean or bit operand, got %s", t)
				return ErrType
			}
			return t
		}
		return ErrType
	case *ast.Binary:
		return a.typeOfBinary(s, e)
	case *ast.Call:
		return a.typeOfCall(s, e)
	case *ast.Attribute:
		return a.typeOfAttribute(s, e)
	case *ast.ErrorExpr:
		// A recovery hole types as the poisoned error type without any
		// diagnostic of its own: the parser already reported the syntax
		// error, and TError suppresses every downstream cascade.
		return ErrType
	}
	return ErrType
}

func (a *analyzer) typeOfBinary(s *Scope, e *ast.Binary) Type {
	x := a.typeOf(s, e.X)
	y := a.typeOf(s, e.Y)
	if x.Kind == TError || y.Kind == TError {
		return ErrType
	}
	switch e.Op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.DSTAR, token.MOD, token.REM:
		if !x.IsNumeric() || !y.IsNumeric() {
			a.report(diag.CodeTypeMismatch, e.SpanV, "operator %s requires numeric operands, got %s and %s", e.Op, x, y)
			return ErrType
		}
		if x.Kind == TReal || y.Kind == TReal {
			return Real
		}
		return Int
	case token.EQ, token.NEQ:
		if !comparable(x, y) {
			a.report(diag.CodeTypeMismatch, e.SpanV, "cannot compare %s and %s", x, y)
			return ErrType
		}
		return Bool
	case token.LT, token.LE, token.GT, token.GE:
		if !x.IsNumeric() || !y.IsNumeric() {
			a.report(diag.CodeTypeMismatch, e.SpanV, "ordering comparison requires numeric operands, got %s and %s", x, y)
			return ErrType
		}
		return Bool
	case token.AND, token.OR, token.NAND, token.NOR, token.XOR:
		okKind := func(t Type) bool { return t.Kind == TBool || t.Kind == TBit }
		if !okKind(x) || !okKind(y) {
			a.report(diag.CodeTypeMismatch, e.SpanV, "logical operator %s requires boolean or bit operands, got %s and %s", e.Op, x, y)
			return ErrType
		}
		if x.Kind == TBit && y.Kind == TBit {
			return Bit
		}
		return Bool
	case token.AMP:
		a.errorf(e.SpanV, "concatenation is not supported in VASS expressions")
		return ErrType
	}
	return ErrType
}

func comparable(x, y Type) bool {
	if x.Same(y) {
		return true
	}
	if x.IsNumeric() && y.IsNumeric() {
		return true
	}
	if (x.Kind == TBool && y.Kind == TBit) || (x.Kind == TBit && y.Kind == TBool) {
		return true
	}
	return false
}

func (a *analyzer) typeOfCall(s *Scope, e *ast.Call) Type {
	sym := s.Lookup(e.Fun.Canon)
	if sym == nil {
		a.report(diag.CodeUndeclared, e.SpanV, "undeclared function %q", e.Fun.Name)
		for _, arg := range e.Args {
			a.typeOf(s, arg)
		}
		return ErrType
	}
	if sym.Kind != SymFunction {
		// Indexed name: vector element access.
		if sym.Type.Kind == TRealVector || sym.Type.Kind == TBitVector {
			if len(e.Args) != 1 {
				a.errorf(e.SpanV, "indexed name %q requires exactly one index", e.Fun.Name)
			}
			for _, arg := range e.Args {
				if it := a.typeOf(s, arg); !it.IsNumeric() && it.Kind != TError {
					a.report(diag.CodeTypeMismatch, arg.Span(), "index must be numeric, got %s", it)
				}
			}
			if sym.Type.Kind == TRealVector {
				return Real
			}
			return Bit
		}
		a.errorf(e.SpanV, "%s %q is not callable", sym.Kind, e.Fun.Name)
		return ErrType
	}
	f := sym.Func
	if len(e.Args) != len(f.Params) {
		a.errorf(e.SpanV, "function %q expects %d arguments, got %d", e.Fun.Name, len(f.Params), len(e.Args))
	}
	for i, arg := range e.Args {
		t := a.typeOf(s, arg)
		if i < len(f.Params) {
			want := f.Params[i].Type
			if !t.Same(want) && t.Kind != TError && !(t.IsNumeric() && want.IsNumeric()) {
				a.report(diag.CodeTypeMismatch, arg.Span(), "argument %d of %q has type %s, want %s", i+1, e.Fun.Name, t, want)
			}
		}
	}
	return f.Result
}

func (a *analyzer) typeOfAttribute(s *Scope, e *ast.Attribute) Type {
	xt := a.typeOf(s, e.X)
	sym := a.attrPrefixSymbol(s, e)
	switch e.Attr {
	case "above":
		if sym == nil || sym.Kind != SymQuantity {
			a.errorf(e.SpanV, "'above requires a quantity prefix")
		} else if len(e.Args) != 1 {
			a.errorf(e.SpanV, "'above requires a threshold argument")
		} else {
			if t := a.typeOf(s, e.Args[0]); !t.IsNumeric() && t.Kind != TError {
				a.report(diag.CodeTypeMismatch, e.Args[0].Span(), "'above threshold must be numeric, got %s", t)
			}
		}
		return Bool
	case "dot":
		if xt.Kind != TReal && xt.Kind != TError {
			a.errorf(e.SpanV, "'dot requires a real quantity prefix, got %s", xt)
		}
		return Real
	case "integ":
		if xt.Kind != TReal && xt.Kind != TError {
			a.errorf(e.SpanV, "'integ requires a real quantity prefix, got %s", xt)
		}
		return Real
	case "event":
		if sym == nil || sym.Kind != SymSignal {
			a.errorf(e.SpanV, "'event requires a signal prefix")
		}
		return Bool
	case "reference", "contribution":
		if sym == nil || sym.Kind != SymTerminal {
			a.errorf(e.SpanV, "'%s requires a terminal prefix", e.Attr)
		}
		a.recordTerminalFacet(sym, e)
		return Real
	}
	a.errorf(e.SpanV, "unsupported attribute '%s", e.Attr)
	return ErrType
}

func (a *analyzer) attrPrefixSymbol(s *Scope, e *ast.Attribute) *Symbol {
	if n, ok := e.X.(*ast.Name); ok {
		return s.Lookup(n.Ident.Canon)
	}
	return nil
}

// terminalFacets tracks which facet (across=reference/voltage or
// through=contribution/current) each terminal has been accessed by, to
// enforce the VASS single-facet restriction.
var terminalFacetKey = map[string]string{"reference": "across", "contribution": "through"}

func (a *analyzer) recordTerminalFacet(sym *Symbol, e *ast.Attribute) {
	if sym == nil {
		return
	}
	facet := terminalFacetKey[e.Attr]
	if facet == "" {
		return
	}
	if sym.Attr.Kind == KindUnspecified {
		if facet == "across" {
			sym.Attr.Kind = KindVoltage
		} else {
			sym.Attr.Kind = KindCurrent
		}
		return
	}
	have := "across"
	if sym.Attr.Kind == KindCurrent {
		have = "through"
	}
	if have != facet {
		a.errorf(e.SpanV, "terminal %q uses both across and through facets; VASS allows only one", sym.Orig)
	}
}

// checkCond checks a condition expression and requires boolean type.
func (a *analyzer) checkCond(s *Scope, e ast.Expr) {
	t := a.typeOf(s, e)
	if t.Kind != TBool && t.Kind != TBit && t.Kind != TError {
		a.report(diag.CodeTypeMismatch, e.Span(), "condition must be boolean, got %s", t)
	}
}

// ---------------------------------------------------------------------------
// Constant folding

// constOf evaluates e to a static value in scope s, or nil when e is not
// statically constant. Errors are not reported here; callers decide whether
// staticness is required.
func (a *analyzer) constOf(s *Scope, e ast.Expr) *Value {
	switch e := e.(type) {
	case *ast.IntLit:
		v := IntValue(e.Value)
		return &v
	case *ast.RealLit:
		v := RealValue(e.Value)
		return &v
	case *ast.BitLit:
		v := BitValue(e.Value)
		return &v
	case *ast.Paren:
		return a.constOf(s, e.X)
	case *ast.Name:
		switch e.Ident.Canon {
		case "true":
			v := BoolValue(true)
			return &v
		case "false":
			v := BoolValue(false)
			return &v
		}
		sym := s.Lookup(e.Ident.Canon)
		if sym != nil && sym.Kind == SymConstant && sym.Const != nil {
			return sym.Const
		}
		return nil
	case *ast.Unary:
		x := a.constOf(s, e.X)
		if x == nil {
			return nil
		}
		switch e.Op {
		case token.MINUS:
			if x.Type.Kind == TInt {
				v := IntValue(-x.Int)
				return &v
			}
			v := RealValue(-x.AsReal())
			return &v
		case token.PLUS:
			return x
		case token.ABS:
			if x.Type.Kind == TInt {
				n := x.Int
				if n < 0 {
					n = -n
				}
				v := IntValue(n)
				return &v
			}
			v := RealValue(math.Abs(x.AsReal()))
			return &v
		case token.NOT:
			if x.Type.Kind == TBool || x.Type.Kind == TBit {
				v := *x
				v.Bool = !v.Bool
				return &v
			}
		}
		return nil
	case *ast.Binary:
		return a.constBinary(s, e)
	case *ast.Call:
		return a.constCall(s, e)
	}
	return nil
}

func (a *analyzer) constBinary(s *Scope, e *ast.Binary) *Value {
	x := a.constOf(s, e.X)
	y := a.constOf(s, e.Y)
	if x == nil || y == nil {
		return nil
	}
	bothInt := x.Type.Kind == TInt && y.Type.Kind == TInt
	num := func(f float64, i int64) *Value {
		if bothInt {
			v := IntValue(i)
			return &v
		}
		v := RealValue(f)
		return &v
	}
	b := func(v bool) *Value { bv := BoolValue(v); return &bv }
	xf, yf := x.AsReal(), y.AsReal()
	switch e.Op {
	case token.PLUS:
		return num(xf+yf, x.Int+y.Int)
	case token.MINUS:
		return num(xf-yf, x.Int-y.Int)
	case token.STAR:
		return num(xf*yf, x.Int*y.Int)
	case token.SLASH:
		if yf == 0 {
			return nil
		}
		if bothInt && y.Int != 0 {
			return num(xf/yf, x.Int/y.Int)
		}
		v := RealValue(xf / yf)
		return &v
	case token.DSTAR:
		v := RealValue(math.Pow(xf, yf))
		return &v
	case token.MOD, token.REM:
		if bothInt && y.Int != 0 {
			v := IntValue(x.Int % y.Int)
			return &v
		}
		return nil
	case token.EQ:
		if x.Type.IsNumeric() && y.Type.IsNumeric() {
			return b(xf == yf)
		}
		return b(x.Bool == y.Bool)
	case token.NEQ:
		if x.Type.IsNumeric() && y.Type.IsNumeric() {
			return b(xf != yf)
		}
		return b(x.Bool != y.Bool)
	case token.LT:
		return b(xf < yf)
	case token.LE:
		return b(xf <= yf)
	case token.GT:
		return b(xf > yf)
	case token.GE:
		return b(xf >= yf)
	case token.AND:
		return b(x.Bool && y.Bool)
	case token.OR:
		return b(x.Bool || y.Bool)
	case token.XOR:
		return b(x.Bool != y.Bool)
	case token.NAND:
		return b(!(x.Bool && y.Bool))
	case token.NOR:
		return b(!(x.Bool || y.Bool))
	}
	return nil
}

func (a *analyzer) constCall(s *Scope, e *ast.Call) *Value {
	sym := s.Lookup(e.Fun.Canon)
	if sym == nil || sym.Kind != SymFunction || sym.Func.Builtin == "" {
		return nil
	}
	var args []float64
	for _, arg := range e.Args {
		v := a.constOf(s, arg)
		if v == nil {
			return nil
		}
		args = append(args, v.AsReal())
	}
	f, ok := EvalBuiltin(sym.Func.Builtin, args)
	if !ok {
		return nil
	}
	v := RealValue(f)
	return &v
}

// EvalBuiltin evaluates a VASS builtin function on real arguments. It is
// shared with the behavioral simulator.
func EvalBuiltin(name string, args []float64) (float64, bool) {
	one := func() float64 { return args[0] }
	switch name {
	case "log":
		if len(args) == 1 && args[0] > 0 {
			return math.Log(one()), true
		}
	case "exp":
		if len(args) == 1 {
			return math.Exp(one()), true
		}
	case "sqrt":
		if len(args) == 1 && args[0] >= 0 {
			return math.Sqrt(one()), true
		}
	case "sin":
		if len(args) == 1 {
			return math.Sin(one()), true
		}
	case "cos":
		if len(args) == 1 {
			return math.Cos(one()), true
		}
	case "abs":
		if len(args) == 1 {
			return math.Abs(one()), true
		}
	case "min":
		if len(args) == 2 {
			return math.Min(args[0], args[1]), true
		}
	case "max":
		if len(args) == 2 {
			return math.Max(args[0], args[1]), true
		}
	case "sign":
		if len(args) == 1 {
			if args[0] > 0 {
				return 1, true
			}
			if args[0] < 0 {
				return -1, true
			}
			return 0, true
		}
	}
	return 0, false
}

// constIntOf evaluates e to a static integer (used for ranges).
func (a *analyzer) constIntOf(e ast.Expr) *int64 {
	scope := NewScope(nil)
	if a.d != nil {
		scope = a.d.Scope
	}
	v := a.constOf(scope, e)
	if v == nil {
		return nil
	}
	switch v.Type.Kind {
	case TInt:
		return &v.Int
	case TReal:
		n := int64(v.Real)
		if float64(n) == v.Real {
			return &n
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Concurrent statements

func (a *analyzer) checkConcStmt(s *Scope, st ast.ConcStmt) {
	switch st := st.(type) {
	case *ast.SimpleSimultaneous:
		lt := a.typeOf(s, st.LHS)
		rt := a.typeOf(s, st.RHS)
		if lt.Kind != TError && !lt.IsNumeric() {
			a.report(diag.CodeTypeMismatch, st.LHS.Span(), "simultaneous statement sides must be real expressions, got %s", lt)
		}
		if rt.Kind != TError && !rt.IsNumeric() {
			a.report(diag.CodeTypeMismatch, st.RHS.Span(), "simultaneous statement sides must be real expressions, got %s", rt)
		}
	case *ast.SimultaneousIf:
		a.checkCond(s, st.Cond)
		a.checkSimCondSignals(s, st.Cond)
		for _, t := range st.Then {
			a.checkConcStmt(s, t)
		}
		for _, e := range st.Elifs {
			a.checkCond(s, e.Cond)
			a.checkSimCondSignals(s, e.Cond)
			for _, t := range e.Then {
				a.checkConcStmt(s, t)
			}
		}
		for _, t := range st.Else {
			a.checkConcStmt(s, t)
		}
	case *ast.SimultaneousCase:
		a.typeOf(s, st.Expr)
		seenOthers := false
		for _, arm := range st.Arms {
			if arm.Choices == nil {
				seenOthers = true
			}
			for _, c := range arm.Choices {
				a.typeOf(s, c)
			}
			for _, t := range arm.Conc {
				a.checkConcStmt(s, t)
			}
		}
		if !seenOthers {
			a.errorf(st.SpanV, "simultaneous case requires an others arm")
		}
	case *ast.Procedural:
		a.checkProcedural(s, st)
	case *ast.Process:
		a.checkProcess(s, st)
	case *ast.ErrorConc:
		// Still type the partial children (usually the left-hand side of a
		// broken simultaneous statement) so names resolve and hover works;
		// emit no diagnostic of our own for the hole itself.
		a.checkErrorParts(s, st.Parts)
	}
}

// checkErrorParts types the expression children an ERROR node preserved.
func (a *analyzer) checkErrorParts(s *Scope, parts []ast.Node) {
	for _, part := range parts {
		if e, ok := part.(ast.Expr); ok {
			a.typeOf(s, e)
		}
	}
}

// checkSimCondSignals requires that conditions of simultaneous if/use refer
// only to signals and constants: the selection is a control input computed by
// the event-driven part.
func (a *analyzer) checkSimCondSignals(s *Scope, cond ast.Expr) {
	ast.Walk(cond, func(n ast.Node) bool {
		if name, ok := n.(*ast.Name); ok {
			sym := s.Lookup(name.Ident.Canon)
			if sym != nil && sym.Kind == SymQuantity {
				a.errorf(name.SpanV, "simultaneous if condition may not read quantity %q directly; use a process with 'above to derive a control signal", name.Ident.Name)
			}
		}
		return true
	})
}

// seqCtx tracks where a sequential statement list appears.
type seqCtx struct {
	inProcess    bool
	inProcedural bool
	inFunction   bool
	// assignedSignals enforces the one-memory rule: a signal may not be read
	// after it has been assigned within the same process activation.
	assignedSignals map[string]bool
	// loopDepth > 0 inside for/while bodies.
	loopDepth int
}

func (a *analyzer) checkProcedural(s *Scope, st *ast.Procedural) {
	inner := NewScope(s)
	for _, d := range st.Decls {
		for _, od := range objectDecls(d) {
			if od.Class != ast.ClassVariable && od.Class != ast.ClassConstant {
				a.errorf(od.SpanV, "procedural declarations must be variables or constants")
				continue
			}
			a.declareObjects(inner, od, false)
		}
	}
	ctx := seqCtx{inProcedural: true, assignedSignals: map[string]bool{}}
	a.checkSeqStmts(inner, st.Body, &ctx)
}

func (a *analyzer) checkProcess(s *Scope, st *ast.Process) {
	if len(st.Sensitivity) == 0 {
		a.report(diag.CodeBadProcess, st.SpanV, "VASS processes require a sensitivity list (no wait statements)")
	}
	for _, e := range st.Sensitivity {
		switch e := e.(type) {
		case *ast.Name:
			sym := s.Lookup(e.Ident.Canon)
			if sym == nil {
				a.report(diag.CodeUndeclared, e.SpanV, "undeclared name %q in sensitivity list", e.Ident.Name)
			} else if sym.Kind != SymSignal {
				a.report(diag.CodeBadProcess, e.SpanV, "sensitivity list entry %q must be a signal or an 'above event, not a %s", e.Ident.Name, sym.Kind)
			}
		case *ast.Attribute:
			if e.Attr != "above" && e.Attr != "event" {
				a.report(diag.CodeBadProcess, e.SpanV, "sensitivity list attribute must be 'above or 'event, got '%s", e.Attr)
			}
			a.typeOf(s, e)
		default:
			a.report(diag.CodeBadProcess, e.Span(), "invalid sensitivity list entry")
		}
	}
	inner := NewScope(s)
	for _, d := range st.Decls {
		for _, od := range objectDecls(d) {
			if od.Class != ast.ClassVariable && od.Class != ast.ClassConstant {
				a.report(diag.CodeBadProcess, od.SpanV, "process declarations must be variables or constants")
				continue
			}
			a.declareObjects(inner, od, false)
		}
	}
	ctx := seqCtx{inProcess: true, assignedSignals: map[string]bool{}}
	a.checkSeqStmts(inner, st.Body, &ctx)
}

func (a *analyzer) checkSeqStmts(s *Scope, ss []ast.SeqStmt, ctx *seqCtx) {
	for _, st := range ss {
		a.checkSeqStmt(s, st, ctx)
	}
}

func (a *analyzer) checkSeqStmt(s *Scope, st ast.SeqStmt, ctx *seqCtx) {
	switch st := st.(type) {
	case *ast.Assign:
		a.checkSeqAssign(s, st, *ctx)
		if st.SignalOp {
			if n, ok := st.LHS.(*ast.Name); ok {
				ctx.assignedSignals[n.Ident.Canon] = true
			}
		}
	case *ast.IfStmt:
		a.checkCond(s, st.Cond)
		a.checkReadAfterWrite(s, st.Cond, ctx)
		a.checkSeqStmts(s, st.Then, ctx)
		for _, e := range st.Elifs {
			a.checkCond(s, e.Cond)
			a.checkReadAfterWrite(s, e.Cond, ctx)
			a.checkSeqStmts(s, e.Then, ctx)
		}
		a.checkSeqStmts(s, st.Else, ctx)
	case *ast.CaseStmt:
		a.typeOf(s, st.Expr)
		a.checkReadAfterWrite(s, st.Expr, ctx)
		for _, arm := range st.Arms {
			for _, c := range arm.Choices {
				a.typeOf(s, c)
			}
			a.checkSeqStmts(s, arm.Seq, ctx)
		}
	case *ast.ForStmt:
		inner := a.enterFor(s, st)
		ctx.loopDepth++
		a.checkSeqStmts(inner, st.Body, ctx)
		ctx.loopDepth--
	case *ast.WhileStmt:
		a.checkWhile(s, st, ctx)
	case *ast.ReturnStmt:
		if !ctx.inFunction {
			a.errorf(st.SpanV, "return is only allowed inside function bodies")
		}
	case *ast.NullStmt:
	case *ast.ErrorStmt:
		a.checkErrorParts(s, st.Parts)
	}
}

// enterFor validates the static bounds restriction and returns the loop
// body scope containing the loop variable.
func (a *analyzer) enterFor(s *Scope, st *ast.ForStmt) *Scope {
	lo := a.constIntOf(st.Range.Lo)
	hi := a.constIntOf(st.Range.Hi)
	if lo == nil || hi == nil {
		a.report(diag.CodeBadLoop, st.Range.SpanV, "for-loop bounds must be statically known in VASS (loops are unrolled)")
	} else {
		n := *hi - *lo + 1
		if st.Range.Down {
			n = *lo - *hi + 1
		}
		if n < 0 {
			a.report(diag.CodeBadLoop, st.Range.SpanV, "for-loop range is empty")
		}
		if n > 1024 {
			a.report(diag.CodeBadLoop, st.Range.SpanV, "for-loop unrolls to %d iterations; the VASS limit is 1024", n)
		}
	}
	inner := NewScope(s)
	inner.Declare(&Symbol{Name: st.Var.Canon, Orig: st.Var.Name, Kind: SymLoopVar, Type: Int, Decl: st})
	a.typeOf(inner, st.Range.Lo)
	a.typeOf(inner, st.Range.Hi)
	return inner
}

// checkWhile enforces the sampling-semantics constraints of Section 3: the
// loop condition must depend on a variable assigned inside the loop body
// (otherwise the loop can never terminate as inputs are held constant during
// execution).
func (a *analyzer) checkWhile(s *Scope, st *ast.WhileStmt, ctx *seqCtx) {
	if ctx.inProcess {
		a.report(diag.CodeBadLoop, st.SpanV, "while-loops are only allowed in procedural bodies (sampling semantics)")
	}
	a.checkCond(s, st.Cond)

	assigned := map[string]bool{}
	var collect func(ss []ast.SeqStmt)
	collect = func(ss []ast.SeqStmt) {
		for _, b := range ss {
			switch b := b.(type) {
			case *ast.Assign:
				if n, ok := b.LHS.(*ast.Name); ok {
					assigned[n.Ident.Canon] = true
				}
			case *ast.IfStmt:
				collect(b.Then)
				for _, e := range b.Elifs {
					collect(e.Then)
				}
				collect(b.Else)
			case *ast.CaseStmt:
				for _, arm := range b.Arms {
					collect(arm.Seq)
				}
			case *ast.ForStmt:
				collect(b.Body)
			case *ast.WhileStmt:
				collect(b.Body)
			}
		}
	}
	collect(st.Body)

	depends := false
	ast.Walk(st.Cond, func(n ast.Node) bool {
		if name, ok := n.(*ast.Name); ok && assigned[name.Ident.Canon] {
			depends = true
		}
		return true
	})
	if !depends {
		a.report(diag.CodeBadLoop, st.Cond.Span(), "while condition must depend on a value computed in the loop body (VASS sampling semantics: external signals are constant during loop execution)")
	}

	ctx.loopDepth++
	a.checkSeqStmts(s, st.Body, ctx)
	ctx.loopDepth--
}

// checkReadAfterWrite reports reads of signals already assigned in this
// process activation (the one-memory-block-per-signal restriction).
func (a *analyzer) checkReadAfterWrite(s *Scope, e ast.Expr, ctx *seqCtx) {
	if !ctx.inProcess || len(ctx.assignedSignals) == 0 {
		return
	}
	ast.Walk(e, func(n ast.Node) bool {
		if name, ok := n.(*ast.Name); ok && ctx.assignedSignals[name.Ident.Canon] {
			a.report(diag.CodeBadProcess, name.SpanV, "signal %q is read after being assigned in this process; VASS allows one memory block per signal", name.Ident.Name)
		}
		return true
	})
}

func (a *analyzer) checkSeqAssign(s *Scope, st *ast.Assign, ctx seqCtx) {
	// Resolve the target symbol.
	var targetName *ast.Ident
	switch lhs := st.LHS.(type) {
	case *ast.Name:
		targetName = lhs.Ident
	case *ast.Call:
		targetName = lhs.Fun // indexed name
		for _, arg := range lhs.Args {
			a.typeOf(s, arg)
		}
	case *ast.ErrorExpr:
		// The target is a recovery hole: the syntax error was reported by
		// the parser; just type the right-hand side for hover and move on.
		a.typeOf(s, st.RHS)
		return
	default:
		a.errorf(st.LHS.Span(), "assignment target must be a name")
		a.typeOf(s, st.RHS)
		return
	}
	sym := s.Lookup(targetName.Canon)
	if sym == nil {
		a.report(diag.CodeUndeclared, targetName.SpanV, "undeclared name %q", targetName.Name)
		a.typeOf(s, st.RHS)
		return
	}
	rt := a.typeOf(s, st.RHS)
	a.checkReadAfterWrite(s, st.RHS, &ctx)
	lt := a.typeOf(s, st.LHS)

	if st.SignalOp {
		if sym.Kind != SymSignal {
			a.errorf(st.SpanV, "<= target %q must be a signal, not a %s", targetName.Name, sym.Kind)
		}
		if !ctx.inProcess {
			a.errorf(st.SpanV, "signal assignment is only allowed inside process bodies")
		}
	} else {
		switch sym.Kind {
		case SymVariable:
		case SymQuantity:
			if !ctx.inProcedural {
				a.errorf(st.SpanV, "quantity %q may only be assigned inside procedural bodies", targetName.Name)
			} else if sym.IsPort && sym.Mode == ast.ModeIn {
				a.errorf(st.SpanV, "cannot assign to input port %q", targetName.Name)
			}
		case SymConstant, SymLoopVar:
			a.errorf(st.SpanV, "cannot assign to %s %q", sym.Kind, targetName.Name)
		case SymSignal:
			a.errorf(st.SpanV, "signal %q requires <=, not :=", targetName.Name)
		}
	}

	if lt.Kind != TError && rt.Kind != TError && !lt.Same(rt) {
		if !(lt.IsNumeric() && rt.IsNumeric()) &&
			!(lt.Kind == TBit && rt.Kind == TBool) && !(lt.Kind == TBool && rt.Kind == TBit) {
			a.report(diag.CodeTypeMismatch, st.SpanV, "cannot assign %s to %s target %q", rt, lt, targetName.Name)
		}
	}
}

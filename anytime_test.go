// Public-API surface of the anytime contract: Synthesize under a context,
// cancellation of Compile/Lint, and truncated simulations.
package vase_test

import (
	"context"
	"testing"
	"time"

	"vase"
)

func TestSynthesizeCancelledReturnsNonoptimal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	arch, err := vase.Synthesize(ctx, vase.Source{Name: "mixer.vhd", Text: mixerSrc},
		vase.DefaultSynthesisOptions())
	if err != nil {
		t.Fatalf("cancelled Synthesize failed instead of returning incumbent: %v", err)
	}
	if !arch.Nonoptimal {
		t.Error("cancelled Synthesize did not set Nonoptimal")
	}
	if arch.Netlist.OpAmpCount() < 1 {
		t.Error("incumbent has no op amps")
	}
}

func TestSynthesizeDeadlineOption(t *testing.T) {
	// An ample deadline changes nothing: same netlist, Nonoptimal unset.
	opts := vase.DefaultSynthesisOptions()
	arch, err := vase.Synthesize(context.Background(), vase.Source{Name: "mixer.vhd", Text: mixerSrc}, opts)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	opts.Deadline = time.Hour
	bounded, err := vase.Synthesize(context.Background(), vase.Source{Name: "mixer.vhd", Text: mixerSrc}, opts)
	if err != nil {
		t.Fatalf("synthesize with deadline: %v", err)
	}
	if bounded.Nonoptimal {
		t.Error("ample deadline marked result Nonoptimal")
	}
	if a, b := arch.Netlist.Dump(), bounded.Netlist.Dump(); a != b {
		t.Errorf("deadline changed the netlist:\n--- unbounded ---\n%s\n--- bounded ---\n%s", a, b)
	}
}

func TestCompileContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := vase.CompileContext(ctx, vase.Source{Name: "mixer.vhd", Text: mixerSrc}); err == nil {
		t.Fatal("cancelled CompileContext succeeded")
	}
}

func TestLintContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := vase.LintContext(ctx, vase.Source{Name: "mixer.vhd", Text: mixerSrc}, vase.LintOptions{}); err == nil {
		t.Fatal("cancelled LintContext succeeded")
	}
	// An open context lints normally.
	if _, err := vase.LintContext(context.Background(),
		vase.Source{Name: "mixer.vhd", Text: mixerSrc}, vase.LintOptions{}); err != nil {
		t.Fatalf("background LintContext failed: %v", err)
	}
}

func TestSimulateContextTruncates(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inputs := map[string]vase.Waveform{"a": vase.DC(1), "b": vase.DC(1)}
	tr, err := d.SimulateContext(context.Background(), inputs,
		vase.SimOptions{TStop: 1, TStep: 1e-4, MaxSteps: 7})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !tr.Truncated {
		t.Error("MaxSteps did not truncate the trace")
	}
	if len(tr.Time) != 7 {
		t.Errorf("trace holds %d samples, want 7", len(tr.Time))
	}
}

package mna

import (
	"math"
	"testing"

	"vase/internal/compile"
	"vase/internal/mapper"
	"vase/internal/netlist"
	"vase/internal/parser"
	"vase/internal/sema"
)

// synthSource runs the full pipeline on a VASS source.
func synthSource(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	df, err := parser.Parse("test.vhd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m, err := compile.Compile(d)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := mapper.Synthesize(m, mapper.DefaultOptions())
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	return res.Netlist
}

func synthReceiver(t *testing.T) *netlist.Netlist {
	t.Helper()
	src := `
entity telephone is
  port (
    quantity line  : in real is voltage;
    quantity local : in real is voltage;
    quantity earph : out real is voltage limited at 1.5 drives 270.0 at 0.285 peak
  );
end entity;
architecture behavioral of telephone is
  constant Aline  : real := 4.0;
  constant Alocal : real := 2.0;
  constant r1c    : real := 0.5;
  constant r2c    : real := 0.25;
  constant Vth    : real := 0.1;
  quantity rvar : real;
  signal c1 : bit;
begin
  earph == (Aline * line + Alocal * local) * rvar;
  if (c1 = '1') use
    rvar == r1c;
  else
    rvar == r1c + r2c;
  end use;
  process (line'above(Vth)) is
  begin
    if (line'above(Vth) = true) then
      c1 <= '1';
    else
      c1 <= '0';
    end if;
  end process;
end architecture;`
	return synthSource(t, src)
}

func TestElaborateReceiverSmallSignal(t *testing.T) {
	nl := synthReceiver(t)
	el, err := Elaborate(nl, map[string]Waveform{
		"line":  func(float64) float64 { return 0.05 },
		"local": func(float64) float64 { return 0 },
	})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	tr, err := el.Circuit.Transient(2e-4, 2e-6)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	out := el.V(tr, "earph")
	if len(out) == 0 {
		t.Fatal("no earph waveform")
	}
	// Below threshold: gain 4 * 0.75 = 3 -> 0.15 V (within macromodel and
	// switch-resistance tolerances).
	got := out[len(out)-1]
	if math.Abs(got-0.15) > 0.01 {
		t.Errorf("earph = %g, want ~0.15", got)
	}
}

func TestElaborateReceiverGainSwitch(t *testing.T) {
	nl := synthReceiver(t)
	el, err := Elaborate(nl, map[string]Waveform{
		"line":  func(float64) float64 { return 0.2 },
		"local": func(float64) float64 { return 0 },
	})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	tr, err := el.Circuit.Transient(2e-4, 2e-6)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	out := el.V(tr, "earph")
	// Above threshold: gain 4 * 0.5 = 2 -> 0.4 V.
	got := out[len(out)-1]
	if math.Abs(got-0.4) > 0.02 {
		t.Errorf("earph = %g, want ~0.4 (compensated gain)", got)
	}
}

func TestElaborateReceiverFigure8Clipping(t *testing.T) {
	// The Figure 8 experiment: a deliberately high-amplitude input so the
	// signal-limiting capability of the output stage is visible. v(9) in
	// the paper clips at 1.5 V.
	nl := synthReceiver(t)
	el, err := Elaborate(nl, map[string]Waveform{
		"line":  func(t float64) float64 { return 1.5 * math.Sin(2*math.Pi*1e3*t) },
		"local": func(float64) float64 { return 0 },
	})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	tr, err := el.Circuit.Transient(3e-3, 1e-6)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	out := el.V(tr, "earph")
	max, min := math.Inf(-1), math.Inf(1)
	for _, v := range out {
		max = math.Max(max, v)
		min = math.Min(min, v)
	}
	if max < 1.40 || max > 1.55 {
		t.Errorf("positive clip = %g, want ~1.5", max)
	}
	if min > -1.40 || min < -1.55 {
		t.Errorf("negative clip = %g, want ~-1.5", min)
	}
	// The waveform must spend a visible fraction of the period clipped.
	clipped := 0
	for _, v := range out {
		if math.Abs(v) > 1.4 {
			clipped++
		}
	}
	if frac := float64(clipped) / float64(len(out)); frac < 0.2 {
		t.Errorf("clipped fraction = %.2f, want >= 0.2", frac)
	}
}

func TestElaboratePolarityBookkeeping(t *testing.T) {
	// A single inverting stage: the output polarity must be recorded so
	// that V() returns the true (positive) value.
	nl := synthReceiver(t)
	el, err := Elaborate(nl, map[string]Waveform{
		"line":  func(float64) float64 { return 0.05 },
		"local": func(float64) float64 { return 0.05 },
	})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	tr, err := el.Circuit.Transient(1e-4, 2e-6)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	out := el.V(tr, "earph")
	// (4*0.05 + 2*0.05) * 0.75 = 0.225 positive.
	if got := out[len(out)-1]; got < 0.2 || got > 0.25 {
		t.Errorf("earph = %g, want ~0.225 (true polarity)", got)
	}
}

func TestElaboratePowerMeterAcquisition(t *testing.T) {
	// The power meter at circuit level: comparators strobe the
	// sample-and-holds on zero crossings; the behavioral ADCs quantize the
	// held values. Drive with a 50 Hz line and check the digitized outputs
	// track the inputs while positive.
	nl := synthSource(t, `
entity power_meter is
  port (
    quantity vline : in real is voltage;
    quantity iline : in real is current;
    quantity vout  : out real;
    quantity iout  : out real
  );
end entity;
architecture acquisition of power_meter is
  quantity vheld, iheld : real;
  signal sv, si, ready : bit;
begin
  if (sv = '1') use
    vheld == vline;
  end use;
  if (si = '1') use
    iheld == iline;
  end use;
  vout == adc(vheld, 8.0);
  iout == adc(iheld, 8.0);
  process (vline'above(0.0), iline'above(0.0)) is begin
    sv <= vline'above(0.0); si <= iline'above(0.0); ready <= '1';
  end process;
end architecture;`)
	vline := func(tm float64) float64 { return math.Sin(2 * math.Pi * 50 * tm) }
	el, err := Elaborate(nl, map[string]Waveform{
		"vline": vline,
		"iline": func(tm float64) float64 { return 0.8 * math.Sin(2*math.Pi*50*tm-0.5) },
	})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	tr, err := el.Circuit.Transient(30e-3, 20e-6)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	vout := el.V(tr, "vout")
	if len(vout) == 0 {
		t.Fatal("no vout waveform")
	}
	// While vline is well positive, the S/H tracks and the ADC output
	// follows within a quantization step plus macromodel error.
	checked := 0
	for i, tm := range tr.Time {
		if tm < 5e-3 { // skip start-up
			continue
		}
		if v := vline(tm); v > 0.3 {
			if math.Abs(vout[i]-v) > 0.08 {
				t.Fatalf("vout = %g at t=%g, want ~%g", vout[i], tm, v)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no samples checked")
	}
	// The ADC output is quantized: values land on the 2.5/128 grid.
	q := 2.5 / 128
	offGrid := 0
	for i, tm := range tr.Time {
		if tm < 5e-3 {
			continue
		}
		r := math.Mod(math.Abs(vout[i]), q)
		if math.Min(r, q-r) > 1e-6 {
			offGrid++
		}
	}
	if offGrid > 0 {
		t.Errorf("%d samples off the quantization grid", offGrid)
	}
}

func TestElaborateMissileSolver(t *testing.T) {
	// The missile solver at circuit level: RC integrators, difference
	// amplifiers, and the behavioral log/antilog drag chain. With a unit
	// command the acceleration settles to zero (drag balances the command).
	nl := synthSource(t, `
entity missile_solver is
  port (
    quantity cmd  : in real is voltage;
    quantity wind : in real is voltage;
    quantity bias : in real is voltage;
    quantity acc  : out real;
    quantity dist : out real
  );
end entity;
architecture flight of missile_solver is
  constant k1 : real := 4.0;
  constant k2 : real := 0.8;
  constant k3 : real := 0.5;
  constant cd : real := 0.3;
  constant n  : real := 2.0;
  quantity vel, pos, drag, spd : real;
begin
  vel'dot == acc; pos'dot == vel;
  acc == k1 * cmd - k2 * vel - k3 * drag;
  spd == vel - wind; drag == cd * exp(n * log(spd));
  dist == pos - bias;
end architecture;`)
	el, err := Elaborate(nl, map[string]Waveform{
		"cmd":  func(float64) float64 { return 1.0 },
		"wind": func(float64) float64 { return 0 },
		"bias": func(float64) float64 { return 0 },
	})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	tr, err := el.Circuit.Transient(10, 2e-3)
	if err != nil {
		t.Fatalf("transient: %v", err)
	}
	acc := el.V(tr, "acc")
	if len(acc) == 0 {
		t.Fatal("no acc waveform")
	}
	if got := acc[len(acc)-1]; math.Abs(got) > 0.02 {
		t.Errorf("steady acc = %g, want ~0 (drag balances the command)", got)
	}
	// dist keeps growing at terminal velocity.
	dist := el.V(tr, "dist")
	if dist[len(dist)-1] <= dist[len(dist)/2] {
		t.Error("dist should grow monotonically at terminal velocity")
	}
}

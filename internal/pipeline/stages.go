package pipeline

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"vase/internal/ast"
	"vase/internal/compile"
	"vase/internal/diag"
	"vase/internal/estimate"
	"vase/internal/lint"
	"vase/internal/mapper"
	"vase/internal/netlist"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/vhif"
)

// FrontStats is the specification-metrics column of Table 1, carried on the
// compile artifact so a disk-cache hit (which skips parsing and analysis)
// still reports them.
type FrontStats struct {
	ContinuousLines int
	Quantities      int
	EventLines      int
	Signals         int
}

// CompileResult is the output of the front-end stages: the VHIF module, its
// canonical text form (the input artifact of the map stage), and the
// Table 1 front-end metrics.
//
// The result is shared between callers and must be treated as immutable.
// AST and Sema are nil when the result was materialized from the on-disk
// store — only the VHIF module and the metrics are serialized; callers
// needing the syntax tree or symbol tables must compile without a disk
// cache (or accept a recompute).
type CompileResult struct {
	// Name is the entity name.
	Name string
	// AST is the parsed design file (nil on a disk-cache hit).
	AST *ast.DesignFile
	// Sema is the analyzed design (nil on a disk-cache hit).
	Sema *sema.Design
	// Module is the VHIF intermediate representation.
	Module *vhif.Module
	// Text is Module's canonical serialized form.
	Text string
	// Stats are the front-end Table 1 metrics.
	Stats FrontStats
	// Cached reports that this call was served from the cache (memory or
	// disk) rather than by running the front end.
	Cached bool
}

// ParseResult is the output of the error-recovering parse stage: a
// structurally complete design file (every input token is covered by some
// top-level unit, with ERROR nodes standing in for skipped regions) plus the
// full syntax diagnostics, sorted. Unlike Parse, diagnostics do not fail the
// stage — a broken source still has a canonical tree, and the pair is
// memoized like any other artifact. The AST is shared across callers and
// must be treated as immutable.
type ParseResult struct {
	// AST is the recovered design file; never nil.
	AST *ast.DesignFile
	// Diags are the syntax (and lex) diagnostics, sorted. Each caller gets
	// its own slice header.
	Diags diag.List
	// Partial reports that recovery fired: the AST contains ERROR nodes, or
	// the parse produced error diagnostics (resynchronization can repair the
	// token stream into well-formed nodes without leaving a hole behind).
	Partial bool
	// Cached reports that this call was served from the cache.
	Cached bool
}

// ParseRecover runs (or reuses) the error-recovering parse stage for one
// named source text. It never fails on syntax errors; the only error is a
// cancelled context.
func (p *Pipeline) ParseRecover(ctx context.Context, name, text string) (*ParseResult, error) {
	v, src, err := p.memo(ctx, StageParse, ParseRecoverKey(name, text), nil,
		func(ctx context.Context) (any, bool, error) {
			df, errs := parser.ParseCollect(name, text)
			errs.Sort()
			pr := &ParseResult{AST: df, Diags: *errs, Partial: ast.HasErrors(df) || errs.HasErrors()}
			return pr, ctx.Err() == nil, nil
		})
	if err != nil {
		return nil, err
	}
	// Shallow-copy per caller: the Cached flag is per-call, and the Diags
	// slice header must be private so callers may filter/append safely.
	pr := *v.(*ParseResult)
	pr.Diags = append(diag.List(nil), pr.Diags...)
	pr.Cached = src.cached()
	return &pr, nil
}

// Parse runs (or reuses) the parse stage for one named source text.
func (p *Pipeline) Parse(ctx context.Context, name, text string) (*ast.DesignFile, error) {
	v, _, err := p.memo(ctx, StageParse, keyOf(parseDomain, name, text), nil,
		func(ctx context.Context) (any, bool, error) {
			df, err := parser.Parse(name, text)
			if err != nil {
				return nil, false, err
			}
			return df, ctx.Err() == nil, nil
		})
	if err != nil {
		return nil, err
	}
	return v.(*ast.DesignFile), nil
}

// Analyze runs (or reuses) the parse and sema stages for one named source
// text. The returned design is shared and must be treated as immutable.
func (p *Pipeline) Analyze(ctx context.Context, name, text string) (*sema.Design, error) {
	v, _, err := p.memo(ctx, StageSema, keyOf(semaDomain, name, text), nil,
		func(ctx context.Context) (any, bool, error) {
			df, err := p.Parse(ctx, name, text)
			if err != nil {
				return nil, false, err
			}
			if err := ctx.Err(); err != nil {
				return nil, false, fmt.Errorf("vase: compile of %s cancelled after parse: %w", name, err)
			}
			d, err := sema.AnalyzeOne(df)
			if err != nil {
				return nil, false, err
			}
			return d, ctx.Err() == nil, nil
		})
	if err != nil {
		return nil, err
	}
	return v.(*sema.Design), nil
}

// UnitResult is the memoized output of one per-unit sema run in a
// multi-file project: the analyzed design (possibly Partial) plus its
// diagnostics. The design is shared across callers and must be treated as
// immutable.
type UnitResult struct {
	Design *sema.Design
	Diags  diag.List
	// Cached reports that this call was served from the cache — the
	// incremental-elaboration tests assert on it.
	Cached bool
}

// AnalyzeUnit memoizes one per-unit sema computation under a
// caller-composed ProjectUnitKey. internal/project uses it so a one-line
// edit in a multi-file project re-runs only the units whose inputs (entity
// text, architecture text, package environment) actually changed.
func (p *Pipeline) AnalyzeUnit(ctx context.Context, key Key, compute func(context.Context) (*sema.Design, diag.List, error)) (*UnitResult, error) {
	v, src, err := p.memo(ctx, StageSema, key, nil,
		func(ctx context.Context) (any, bool, error) {
			d, dl, err := compute(ctx)
			if err != nil {
				return nil, false, err
			}
			return &UnitResult{Design: d, Diags: dl}, ctx.Err() == nil, nil
		})
	if err != nil {
		return nil, err
	}
	ur := *v.(*UnitResult)
	ur.Diags = append(diag.List(nil), ur.Diags...)
	ur.Cached = src.cached()
	return &ur, nil
}

// Compile runs the front end — parse, sema, VHIF compilation, VHIF
// validation — with each stage memoized, and the compile stage additionally
// persisted to the disk store when one is configured.
func (p *Pipeline) Compile(ctx context.Context, name, text string) (*CompileResult, error) {
	v, src, err := p.memo(ctx, StageCompile, CompileKey(name, text), frontCodec,
		func(ctx context.Context) (any, bool, error) {
			df, err := p.Parse(ctx, name, text)
			if err != nil {
				return nil, false, err
			}
			d, err := p.Analyze(ctx, name, text)
			if err != nil {
				return nil, false, err
			}
			if err := ctx.Err(); err != nil {
				return nil, false, fmt.Errorf("vase: compile of %s cancelled after analysis: %w", name, err)
			}
			m, err := compile.Compile(d)
			if err != nil {
				return nil, false, err
			}
			if err := m.Validate(); err != nil {
				return nil, false, err
			}
			cr := &CompileResult{
				Name:   d.Name,
				AST:    df,
				Sema:   d,
				Module: m,
				Text:   m.Dump(),
				Stats: FrontStats{
					ContinuousLines: d.Stats.ContinuousLines,
					Quantities:      d.Stats.QuantityCount,
					EventLines:      d.Stats.EventLines,
					Signals:         d.Stats.SignalCount,
				},
			}
			return cr, ctx.Err() == nil, nil
		})
	if err != nil {
		return nil, err
	}
	// Hand each caller its own shallow copy so the Cached flag of one call
	// never leaks into another caller's view of the shared artifact.
	cr := *v.(*CompileResult)
	cr.Cached = src.cached()
	return &cr, nil
}

// frontHeader identifies (and versions) the on-disk compile artifact.
const frontHeader = "vase-front v1"

// frontCodec serializes a CompileResult as the VHIF text plus the entity
// name and front-end metrics. The AST and symbol tables are intentionally
// not persisted — they are cheap to rebuild and would pin the cache format
// to internal data structures.
var frontCodec = &codec{
	encode: func(v any) ([]byte, error) {
		cr := v.(*CompileResult)
		return []byte(fmt.Sprintf("%s\nentity %s\nstats %d %d %d %d\n%s",
			frontHeader, cr.Name,
			cr.Stats.ContinuousLines, cr.Stats.Quantities,
			cr.Stats.EventLines, cr.Stats.Signals,
			cr.Text)), nil
	},
	decode: func(data []byte) (any, error) {
		text := string(data)
		var header, entity, stats string
		for _, part := range []*string{&header, &entity, &stats} {
			line, rest, ok := strings.Cut(text, "\n")
			if !ok {
				return nil, fmt.Errorf("pipeline: truncated front artifact")
			}
			*part, text = line, rest
		}
		if header != frontHeader {
			return nil, fmt.Errorf("pipeline: front artifact has header %q, want %q", header, frontHeader)
		}
		name, ok := strings.CutPrefix(entity, "entity ")
		if !ok {
			return nil, fmt.Errorf("pipeline: front artifact missing entity line")
		}
		fields := strings.Fields(stats)
		if len(fields) != 5 || fields[0] != "stats" {
			return nil, fmt.Errorf("pipeline: front artifact has malformed stats line %q", stats)
		}
		var fs FrontStats
		for i, dst := range []*int{&fs.ContinuousLines, &fs.Quantities, &fs.EventLines, &fs.Signals} {
			n, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return nil, fmt.Errorf("pipeline: front artifact stats field %q: %w", fields[i+1], err)
			}
			*dst = n
		}
		m, err := vhif.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("pipeline: front artifact VHIF: %w", err)
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: front artifact VHIF: %w", err)
		}
		return &CompileResult{Name: name, Module: m, Text: text, Stats: fs}, nil
	},
}

// Lint runs the source-level synthesizability linter through the lint
// stage's memo.
func (p *Pipeline) Lint(ctx context.Context, name, text string, opts lint.Options) (diag.List, error) {
	return p.lint(ctx, LintSourceKey(name, text, opts), func(ctx context.Context) (diag.List, error) {
		return lint.CheckSourceContext(ctx, name, text, opts)
	})
}

// LintVHIF runs the module-level analyzers over serialized VHIF text
// through the lint stage's memo.
func (p *Pipeline) LintVHIF(ctx context.Context, name, text string, opts lint.Options) (diag.List, error) {
	return p.lint(ctx, LintVHIFKey(name, text, opts), func(ctx context.Context) (diag.List, error) {
		return lint.CheckVHIFContext(ctx, name, text, opts)
	})
}

func (p *Pipeline) lint(ctx context.Context, key Key, run func(context.Context) (diag.List, error)) (diag.List, error) {
	v, _, err := p.memo(ctx, StageLint, key, nil,
		func(ctx context.Context) (any, bool, error) {
			dl, err := run(ctx)
			if err != nil {
				return nil, false, err
			}
			return dl, ctx.Err() == nil, nil
		})
	if err != nil {
		return nil, err
	}
	// Callers filter and re-slice findings; give each its own slice header
	// over the shared (immutable) diagnostics.
	dl := v.(diag.List)
	out := make(diag.List, len(dl))
	copy(out, dl)
	return out, nil
}

// mapValue is the memoized output of the map stage: the netlist in its
// serialized artifact form plus the search statistics. The netlist is
// stored encoded — never as a live object — because estimation annotates
// netlists in place, so every caller must materialize a private copy.
type mapValue struct {
	// Data is the netlist.Encode artifact.
	Data string
	// Stats describes the branch-and-bound search that produced the
	// artifact; cache hits report the original search's statistics.
	Stats mapper.Stats
	// Nonoptimal marks a truncated search. Such values pass between
	// concurrent waiters of one flight but are never stored in a cache.
	Nonoptimal bool
	// live carries the mapper's result directly in the rare case the
	// netlist could not be encoded; it is never cached.
	live *mapper.Result
}

// Synthesize runs the whole flow — front end plus architecture generation —
// for one named source text. The returned boolean reports whether the map
// stage was served from cache.
func (p *Pipeline) Synthesize(ctx context.Context, name, text string, opts mapper.Options) (*mapper.Result, *CompileResult, bool, error) {
	cr, err := p.Compile(ctx, name, text)
	if err != nil {
		return nil, nil, false, err
	}
	res, cached, err := p.SynthesizeText(ctx, cr.Module, cr.Text, opts)
	if err != nil {
		return nil, nil, false, err
	}
	return res, cr, cached, nil
}

// SynthesizeModule runs the map stage on a VHIF module, deriving the cache
// key from the module's canonical dump.
func (p *Pipeline) SynthesizeModule(ctx context.Context, m *vhif.Module, opts mapper.Options) (*mapper.Result, bool, error) {
	return p.SynthesizeText(ctx, m, m.Dump(), opts)
}

// SynthesizeText is SynthesizeModule for callers that already hold the
// module's serialized text (the compile stage's artifact), avoiding a
// redundant dump. text must be the canonical serialization of m.
//
// Traced runs (opts.Trace) bypass the cache entirely: a decision tree
// documents one actual search, so serving it from cache would be a lie.
// Results of truncated searches (Nonoptimal) are returned but never cached.
func (p *Pipeline) SynthesizeText(ctx context.Context, m *vhif.Module, text string, opts mapper.Options) (*mapper.Result, bool, error) {
	if opts.Trace {
		start := time.Now() //vase:walltime (stats telemetry)
		res, err := mapper.SynthesizeContext(ctx, m, opts)
		p.count(StageMap, err, time.Since(start)) //vase:walltime (stats telemetry)
		if err != nil {
			return nil, false, err
		}
		return res, false, nil
	}
	v, src, err := p.memo(ctx, StageMap, MapKey(text, opts), mapCodec,
		func(ctx context.Context) (any, bool, error) {
			res, err := mapper.SynthesizeContext(ctx, m, opts)
			if err != nil {
				return nil, false, err
			}
			mv := &mapValue{Stats: res.Stats, Nonoptimal: res.Nonoptimal}
			data, eerr := res.Netlist.Encode()
			if eerr != nil {
				// An unencodable netlist (should not happen: every name
				// originates from a VHIF identifier) falls back to the
				// live result, skipping the cache rather than failing
				// the synthesis.
				mv.live = res
				return mv, false, nil
			}
			mv.Data = data
			cacheable := ctx.Err() == nil && !res.Nonoptimal
			return mv, cacheable, nil
		})
	if err != nil {
		return nil, false, err
	}
	res, err := p.materialize(v.(*mapValue), m, opts)
	if err != nil {
		return nil, false, err
	}
	return res, src.cached(), nil
}

// materialize turns a map-stage value into a private mapper.Result: the
// netlist stage decodes a fresh object graph and the estimate stage
// re-derives the performance report on it, applying the same process and
// system-specification defaulting as the mapper. Both run per call — cached
// or not — because estimation writes into the netlist's components.
func (p *Pipeline) materialize(mv *mapValue, m *vhif.Module, opts mapper.Options) (*mapper.Result, error) {
	if mv.live != nil {
		return mv.live, nil
	}
	start := time.Now() //vase:walltime (stats telemetry)
	nl, err := netlist.Decode(mv.Data)
	p.count(StageNetlist, err, time.Since(start)) //vase:walltime (stats telemetry)
	if err != nil {
		return nil, fmt.Errorf("pipeline: netlist artifact: %w", err)
	}
	proc := opts.Process
	if proc.Name == "" {
		proc = estimate.SCN20
	}
	sys := opts.System
	if sys.Bandwidth == 0 {
		sys = mapper.SystemSpecFor(m)
	}
	start = time.Now() //vase:walltime (stats telemetry)
	rep, err := nl.Estimate(proc, sys)
	p.count(StageEstimate, err, time.Since(start)) //vase:walltime (stats telemetry)
	if err != nil {
		return nil, fmt.Errorf("pipeline: estimate: %w", err)
	}
	return &mapper.Result{
		Netlist:    nl,
		Report:     rep,
		Stats:      mv.Stats,
		Nonoptimal: mv.Nonoptimal,
	}, nil
}

// mapHeader identifies (and versions) the on-disk map artifact: a stats
// line, then the netlist.Encode text (which carries its own header).
const mapHeader = "vase-map v1"

var mapCodec = &codec{
	encode: func(v any) ([]byte, error) {
		mv := v.(*mapValue)
		if mv.live != nil {
			return nil, fmt.Errorf("pipeline: live map value is not serializable")
		}
		s := mv.Stats
		return []byte(fmt.Sprintf("%s\nstats %d %d %d %d %d %g %d %d %d\n%s",
			mapHeader,
			s.NodesVisited, s.CompleteMappings, s.Pruned, s.Infeasible,
			s.BestOpAmps, s.BestAreaUm2, s.Workers, s.Tasks,
			s.Elapsed.Nanoseconds(),
			mv.Data)), nil
	},
	decode: func(data []byte) (any, error) {
		text := string(data)
		header, rest, ok := strings.Cut(text, "\n")
		if !ok || header != mapHeader {
			return nil, fmt.Errorf("pipeline: map artifact has header %q, want %q", header, mapHeader)
		}
		statsLine, body, ok := strings.Cut(rest, "\n")
		if !ok {
			return nil, fmt.Errorf("pipeline: truncated map artifact")
		}
		fields := strings.Fields(statsLine)
		if len(fields) != 10 || fields[0] != "stats" {
			return nil, fmt.Errorf("pipeline: map artifact has malformed stats line %q", statsLine)
		}
		var s mapper.Stats
		ints := []*int{&s.NodesVisited, &s.CompleteMappings, &s.Pruned, &s.Infeasible, &s.BestOpAmps}
		for i, dst := range ints {
			n, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return nil, fmt.Errorf("pipeline: map artifact stats field %q: %w", fields[i+1], err)
			}
			*dst = n
		}
		area, err := strconv.ParseFloat(fields[6], 64)
		if err != nil {
			return nil, fmt.Errorf("pipeline: map artifact area %q: %w", fields[6], err)
		}
		s.BestAreaUm2 = area
		for i, dst := range []*int{&s.Workers, &s.Tasks} {
			n, err := strconv.Atoi(fields[i+7])
			if err != nil {
				return nil, fmt.Errorf("pipeline: map artifact stats field %q: %w", fields[i+7], err)
			}
			*dst = n
		}
		ns, err := strconv.ParseInt(fields[9], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pipeline: map artifact elapsed %q: %w", fields[9], err)
		}
		s.Elapsed = time.Duration(ns)
		// Validate the payload now so a corrupt artifact registers as a
		// decode failure (recompute) instead of a later materialize error.
		if _, err := netlist.Decode(body); err != nil {
			return nil, fmt.Errorf("pipeline: map artifact netlist: %w", err)
		}
		return &mapValue{Data: body, Stats: s}, nil
	},
}

package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
)

// Canonical returns a deterministic encoding of the lint options for
// cache-key derivation. An explicit pass selection and the default (all
// passes) encode differently even when they select the same set, which is
// safe: it can only cause a redundant recomputation, never a wrong hit.
func (o Options) Canonical() string {
	return fmt.Sprintf("passes=%s", strings.Join(o.Passes, ","))
}

var fingerprintOnce struct {
	sync.Once
	hex string
}

// Fingerprint returns a stable SHA-256 hex digest of the analyzer
// registry: the registered pass names in execution order, with a revision
// tag. Bump the tag when a pass's findings change for unchanged input, so
// cached lint results are invalidated (DESIGN.md §10).
func Fingerprint() string {
	fingerprintOnce.Do(func() {
		var b strings.Builder
		b.WriteString("lint/v1:")
		for _, p := range Passes() {
			b.WriteString(p.Name)
			b.WriteByte(',')
		}
		sum := sha256.Sum256([]byte(b.String()))
		fingerprintOnce.hex = hex.EncodeToString(sum[:])
	})
	return fingerprintOnce.hex
}

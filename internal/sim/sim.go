// Package sim implements behavioral transient simulation of VHIF modules
// and synthesized component netlists.
//
// Continuous-time behavior is integrated with a fixed-step fourth-order
// Runge-Kutta method over the state variables (integrator outputs);
// comparator, Schmitt-trigger and sample-and-hold states are updated at
// step boundaries with hysteresis, which keeps the combinational network
// smooth inside a step. Event-driven behavior can additionally be executed
// through the FSM interpreter, which serves as a reference for the analog
// control realizations the compiler extracts.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"vase/internal/vhif"
)

// Source produces an input waveform value at time t.
type Source func(t float64) float64

// Sine returns a sinusoidal source.
func Sine(amplitude, freqHz, phase float64) Source {
	return func(t float64) float64 {
		return amplitude * math.Sin(2*math.Pi*freqHz*t+phase)
	}
}

// DC returns a constant source.
func DC(v float64) Source { return func(float64) float64 { return v } }

// Step returns a step source switching from v0 to v1 at t0.
func Step(v0, v1, t0 float64) Source {
	return func(t float64) float64 {
		if t < t0 {
			return v0
		}
		return v1
	}
}

// Ramp returns a linear ramp source with the given slope.
func Ramp(slope float64) Source { return func(t float64) float64 { return slope * t } }

// Options configures a transient run.
type Options struct {
	// TStop is the end time, s.
	TStop float64
	// TStep is the fixed integration step, s.
	TStep float64
	// Probes lists additional net names to record (output ports and
	// control links are always recorded). A name matching no net in the
	// design is an error listing the valid nets, so a probe typo cannot
	// silently yield a missing column.
	Probes []string
	// MaxSteps bounds the number of integration steps (0 = unlimited).
	// When it binds, the run returns the samples computed so far with
	// Trace.Truncated set.
	MaxSteps int
	// Deadline bounds the wall-clock time of the run (0 = none); it is
	// applied on top of any context passed to the Context variants and
	// truncates the trace the same way.
	Deadline time.Duration
	// OnSample, when set, is called once per recorded integration step with
	// the sample time and a probe resolving net names to their values at
	// that instant (any net of the design, not just the recorded ones; the
	// probe reports ok=false for unknown names). It is the attachment point
	// for streaming assertion monitors (internal/assertlang): monitors run
	// during the transient rather than over the stored trace, so a
	// deadline-truncated run still observes every computed sample.
	OnSample func(t float64, probe func(name string) (float64, bool))
	// ModelBandwidth (netlist simulation only) gives every sized amplifier
	// a first-order pole at its achieved unity-gain frequency divided by
	// its noise gain, verifying that the estimator's bandwidth guard
	// suffices for the signals the design actually sees. Requires a
	// netlist whose components carry estimates (mapper output).
	ModelBandwidth bool
}

// Trace holds sampled waveforms keyed by net name.
type Trace struct {
	Time    []float64
	Signals map[string][]float64
	// Truncated marks a run stopped early by cancellation, a deadline or
	// Options.MaxSteps: the waveforms hold the samples computed so far.
	Truncated bool
}

// Get returns the samples of a recorded signal.
func (tr *Trace) Get(name string) []float64 { return tr.Signals[name] }

// Final returns the last sample of a signal.
func (tr *Trace) Final(name string) float64 {
	s := tr.Signals[name]
	if len(s) == 0 {
		return math.NaN()
	}
	return s[len(s)-1]
}

// Max returns the maximum sample of a signal.
func (tr *Trace) Max(name string) float64 {
	m := math.Inf(-1)
	for _, v := range tr.Signals[name] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum sample of a signal.
func (tr *Trace) Min(name string) float64 {
	m := math.Inf(1)
	for _, v := range tr.Signals[name] {
		if v < m {
			m = v
		}
	}
	return m
}

// clampExp guards exponential blocks against overflow.
func clampExp(x float64) float64 {
	if x > 50 {
		x = 50
	}
	if x < -50 {
		x = -50
	}
	return math.Exp(x)
}

// safeLog guards log blocks against non-positive inputs (a real log amp
// saturates).
func safeLog(x float64) float64 {
	const eps = 1e-12
	if x < eps {
		x = eps
	}
	return math.Log(x)
}

// safeDiv guards dividers against tiny denominators.
func safeDiv(num, den float64) float64 {
	const eps = 1e-9
	if math.Abs(den) < eps {
		if den < 0 {
			den = -eps
		} else {
			den = eps
		}
	}
	return num / den
}

// SimulateModule runs a transient analysis of the module's signal-flow
// graphs. inputs maps input port (quantity) names to sources.
func SimulateModule(m *vhif.Module, inputs map[string]Source, opts Options) (*Trace, error) {
	return SimulateModuleContext(context.Background(), m, inputs, opts)
}

// SimulateModuleContext is SimulateModule under a context: cancellation is
// observed between RK4 steps and returns the truncated trace computed so
// far (Trace.Truncated) rather than an error, matching the anytime
// contract of the other engines.
func SimulateModuleContext(ctx context.Context, m *vhif.Module, inputs map[string]Source, opts Options) (*Trace, error) {
	s, err := newModSim(m, inputs, opts)
	if err != nil {
		return nil, err
	}
	return s.run(ctx)
}

// stopper decides when a transient loop must stop early: on a bound step
// budget, a wall-clock deadline, or context cancellation.
type stopper struct {
	ctx      context.Context
	deadline time.Time // zero = none
	maxSteps int       // 0 = unlimited
}

func newStopper(ctx context.Context, opts Options) stopper {
	st := stopper{ctx: ctx, maxSteps: opts.MaxSteps}
	if opts.Deadline > 0 {
		st.deadline = time.Now().Add(opts.Deadline) //vase:walltime (anytime deadline)
	}
	return st
}

// stop reports whether integration step number step may not run.
func (st *stopper) stop(step int) bool {
	if st.maxSteps > 0 && step >= st.maxSteps {
		return true
	}
	if st.ctx.Err() != nil {
		return true
	}
	return !st.deadline.IsZero() && time.Now().After(st.deadline) //vase:walltime (anytime deadline)
}

// checkProbes verifies every requested probe name resolved to a net; the
// error lists the valid names so a typo is immediately actionable.
func checkProbes(requested []string, valid map[string]bool) error {
	var missing []string
	for _, name := range requested {
		if !valid[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	names := make([]string, 0, len(valid))
	for name := range valid {
		names = append(names, name)
	}
	sort.Strings(names)
	sort.Strings(missing)
	return fmt.Errorf("sim: unknown probe net%s %s (valid nets: %s)",
		plural(len(missing)), strings.Join(missing, ", "), strings.Join(names, ", "))
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// stateBlock is one dynamic element contributing entries to the RK4 state
// vector: an integrator (1 state) or an inferred filter (1 for low-pass,
// 2 for band-pass).
type stateBlock struct {
	b      *vhif.Block
	offset int
	n      int
}

type modSim struct {
	m       *vhif.Module
	opts    Options
	blocks  []*vhif.Block // all blocks, evaluation order
	states  []stateBlock
	nStates int
	srcs    map[*vhif.Block]Source

	// Discrete state, updated at step boundaries.
	cmpState map[*vhif.Block]bool
	shState  map[*vhif.Block]float64
	prevIn   map[*vhif.Block]float64 // differentiator memory

	probes map[string]*vhif.Net
	// byName resolves any net of the design for Options.OnSample probes:
	// all graph nets by name, with port/control aliases overlaid.
	byName map[string]*vhif.Net
}

func newModSim(m *vhif.Module, inputs map[string]Source, opts Options) (*modSim, error) {
	if opts.TStop <= 0 || opts.TStep <= 0 {
		return nil, fmt.Errorf("sim: TStop and TStep must be positive")
	}
	s := &modSim{
		m:        m,
		opts:     opts,
		srcs:     map[*vhif.Block]Source{},
		cmpState: map[*vhif.Block]bool{},
		shState:  map[*vhif.Block]float64{},
		prevIn:   map[*vhif.Block]float64{},
		probes:   map[string]*vhif.Net{},
	}
	for _, g := range m.Graphs {
		if err := g.Validate(); err != nil {
			return nil, err
		}
		order := g.Topological()
		s.blocks = append(s.blocks, order...)
		for _, b := range order {
			switch b.Kind {
			case vhif.BInput:
				src, ok := inputs[b.Name]
				if !ok {
					return nil, fmt.Errorf("sim: no source for input port %q", b.Name)
				}
				s.srcs[b] = src
			case vhif.BIntegrator:
				s.states = append(s.states, stateBlock{b: b, offset: s.nStates, n: 1})
				s.nStates++
			case vhif.BFilter:
				n := 1
				if b.Param2 > 0 {
					n = 2 // band-pass biquad: (bp, lp)
				}
				s.states = append(s.states, stateBlock{b: b, offset: s.nStates, n: n})
				s.nStates += n
			}
		}
		// Record output ports and requested probes.
		for _, b := range g.Blocks {
			if b.Kind == vhif.BOutput {
				s.probes[b.Name] = b.Inputs[0]
			}
		}
		for _, name := range opts.Probes {
			for _, n := range g.Nets {
				if n.Name == name {
					s.probes[name] = n
				}
			}
		}
	}
	for _, c := range m.Controls {
		s.probes[c.Signal] = c.Net
	}
	valid := map[string]bool{}
	for _, g := range m.Graphs {
		for _, n := range g.Nets {
			valid[n.Name] = true
		}
	}
	for name := range s.probes { //vase:unordered (per-key set insertion)
		valid[name] = true
	}
	if err := checkProbes(opts.Probes, valid); err != nil {
		return nil, err
	}
	s.byName = map[string]*vhif.Net{}
	for _, g := range m.Graphs {
		for _, n := range g.Nets {
			s.byName[n.Name] = n
		}
	}
	for name, n := range s.probes { //vase:unordered (per-key writes; probe names are unique)
		s.byName[name] = n
	}
	return s, nil
}

// eval computes all net values for integrator state x at time t.
func (s *modSim) eval(t float64, x []float64) map[*vhif.Net]float64 {
	vals := make(map[*vhif.Net]float64, len(s.blocks))
	stateIdx := 0
	in := func(b *vhif.Block, i int) float64 { return vals[b.Inputs[i]] }
	ctrl := func(b *vhif.Block) bool { return vals[b.Ctrl] > 0.5 }
	boolv := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	for _, b := range s.blocks {
		var out float64
		switch b.Kind {
		case vhif.BInput:
			out = s.srcs[b](t)
		case vhif.BConst:
			out = b.Param
		case vhif.BGain:
			out = b.Param * in(b, 0)
		case vhif.BAdd:
			for i := range b.Inputs {
				out += in(b, i)
			}
		case vhif.BSub:
			out = in(b, 0) - in(b, 1)
		case vhif.BNeg:
			out = -in(b, 0)
		case vhif.BMul:
			out = 1
			for i := range b.Inputs {
				out *= in(b, i)
			}
		case vhif.BDiv:
			out = safeDiv(in(b, 0), in(b, 1))
		case vhif.BLog:
			out = safeLog(in(b, 0))
		case vhif.BExp:
			out = clampExp(in(b, 0))
		case vhif.BSqrt:
			out = math.Sqrt(math.Max(0, in(b, 0)))
		case vhif.BSin:
			out = math.Sin(in(b, 0))
		case vhif.BCos:
			out = math.Cos(in(b, 0))
		case vhif.BAbs:
			out = math.Abs(in(b, 0))
		case vhif.BMin:
			out = math.Min(in(b, 0), in(b, 1))
		case vhif.BMax:
			out = math.Max(in(b, 0), in(b, 1))
		case vhif.BSign:
			switch {
			case in(b, 0) > 0:
				out = 1
			case in(b, 0) < 0:
				out = -1
			}
		case vhif.BIntegrator:
			out = x[s.states[stateIdx].offset]
			stateIdx++
		case vhif.BFilter:
			sb := s.states[stateIdx]
			stateIdx++
			if sb.n == 2 {
				// Band-pass: unity-gain output is bp/Q.
				q := bandpassQ(b)
				out = x[sb.offset] / q
			} else {
				out = x[sb.offset]
			}
		case vhif.BDifferentiator:
			// Backward difference using the stored previous input.
			out = (in(b, 0) - s.prevIn[b]) / s.opts.TStep
		case vhif.BSampleHold:
			// A clocked S/H: the output is the previous sample; the state
			// updates at the step boundary while the control holds. The
			// one-step latency is what lets S/H chains iterate (Figure 4).
			out = s.shState[b]
		case vhif.BSwitch:
			if ctrl(b) {
				out = in(b, 0)
			}
		case vhif.BMux:
			if ctrl(b) {
				out = in(b, 0)
			} else {
				out = in(b, 1)
			}
		case vhif.BComparator, vhif.BSchmitt:
			out = boolv(s.cmpState[b])
		case vhif.BNot:
			out = boolv(!(vals[b.Inputs[0]] > 0.5))
		case vhif.BADC:
			bits := b.Param
			if bits <= 0 {
				bits = 8
			}
			const fullScale = 2.5
			q := fullScale / math.Exp2(bits-1)
			v := math.Max(-fullScale, math.Min(fullScale, in(b, 0)))
			out = math.Round(v/q) * q
		case vhif.BLimiter:
			lim := b.Param
			if lim <= 0 {
				lim = 1.5
			}
			out = math.Max(-lim, math.Min(lim, in(b, 0)))
		case vhif.BBuffer:
			out = in(b, 0)
		case vhif.BOutput:
			continue
		}
		if b.Out != nil {
			vals[b.Out] = out
		}
	}
	return vals
}

// derivs returns the state derivatives for state x at time t: integrator
// inputs, and the filter dynamics (first-order low-pass or biquad
// band-pass).
func (s *modSim) derivs(t float64, x []float64) []float64 {
	vals := s.eval(t, x)
	d := make([]float64, s.nStates)
	for _, sb := range s.states {
		in := vals[sb.b.Inputs[0]]
		switch {
		case sb.b.Kind == vhif.BIntegrator:
			d[sb.offset] = in
		case sb.n == 1:
			// Low-pass: y' = wc*(u - y).
			wc := 2 * math.Pi * sb.b.Param
			d[sb.offset] = wc * (in - x[sb.offset])
		default:
			// State-variable band-pass: states (bp, lp) with center w0 and
			// quality Q from the annotated corners.
			w0 := 2 * math.Pi * math.Sqrt(sb.b.Param*sb.b.Param2)
			q := bandpassQ(sb.b)
			bp, lp := x[sb.offset], x[sb.offset+1]
			hp := in - lp - bp/q
			d[sb.offset] = w0 * hp
			d[sb.offset+1] = w0 * bp
		}
	}
	return d
}

// bandpassQ derives the quality factor from the corner annotations:
// Q = f0 / bandwidth, floored for stability.
func bandpassQ(b *vhif.Block) float64 {
	f0 := math.Sqrt(b.Param * b.Param2)
	bw := b.Param - b.Param2
	if bw <= 0 {
		return 1
	}
	q := f0 / bw
	if q < 0.3 {
		q = 0.3
	}
	return q
}

// updateDiscrete advances comparator, Schmitt, sample-and-hold and
// differentiator state from the end-of-step values.
func (s *modSim) updateDiscrete(vals map[*vhif.Net]float64) {
	for _, b := range s.blocks {
		switch b.Kind {
		case vhif.BComparator, vhif.BSchmitt:
			v := vals[b.Inputs[0]]
			hyst := b.Hyst
			st := s.cmpState[b]
			if st {
				if v < b.Param-hyst {
					s.cmpState[b] = false
				}
			} else {
				if v > b.Param+hyst {
					s.cmpState[b] = true
				}
			}
		case vhif.BSampleHold:
			if vals[b.Ctrl] > 0.5 {
				s.shState[b] = vals[b.Inputs[0]]
			}
		}
	}
}

// updateDifferentiators stores the start-of-step input values so the next
// step's backward difference spans exactly one step.
func (s *modSim) updateDifferentiators(vals map[*vhif.Net]float64) {
	for _, b := range s.blocks {
		if b.Kind == vhif.BDifferentiator {
			s.prevIn[b] = vals[b.Inputs[0]]
		}
	}
}

// initDiscrete sets the initial comparator states from the t=0 values so a
// design does not start on the wrong side of its thresholds.
func (s *modSim) initDiscrete(vals map[*vhif.Net]float64) {
	for _, b := range s.blocks {
		switch b.Kind {
		case vhif.BComparator, vhif.BSchmitt:
			s.cmpState[b] = vals[b.Inputs[0]] > b.Param
		case vhif.BDifferentiator:
			s.prevIn[b] = vals[b.Inputs[0]]
		case vhif.BSampleHold:
			s.shState[b] = vals[b.Inputs[0]]
		}
	}
}

func (s *modSim) run(ctx context.Context) (*Trace, error) {
	n := int(math.Ceil(s.opts.TStop/s.opts.TStep)) + 1
	tr := &Trace{Signals: map[string][]float64{}}
	x := make([]float64, s.nStates)

	// Two passes at t=0: the first primes comparator initial states.
	v0 := s.eval(0, x)
	s.initDiscrete(v0)

	h := s.opts.TStep
	st := newStopper(ctx, s.opts)
	for step := 0; step < n; step++ {
		if st.stop(step) {
			tr.Truncated = true
			break
		}
		t := float64(step) * h
		vals := s.eval(t, x)
		tr.Time = append(tr.Time, t)
		for name, net := range s.probes { //vase:unordered (per-key append into the probe's own series)
			tr.Signals[name] = append(tr.Signals[name], vals[net])
		}
		if s.opts.OnSample != nil {
			// vals is valid here (before the next eval); the probe resolves
			// any net of the design, not just the recorded ones.
			s.opts.OnSample(t, func(name string) (float64, bool) {
				n, ok := s.byName[name]
				if !ok {
					return 0, false
				}
				return vals[n], true
			})
		}
		s.updateDifferentiators(vals)
		// Classic RK4 over the integrator state.
		k1 := s.derivs(t, x)
		k2 := s.derivs(t+h/2, axpy(x, k1, h/2))
		k3 := s.derivs(t+h/2, axpy(x, k2, h/2))
		k4 := s.derivs(t+h, axpy(x, k3, h))
		for i := range x {
			x[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				return nil, fmt.Errorf("sim: state %d diverged at t=%g", i, t)
			}
		}
		end := s.eval(t+h, x)
		s.updateDiscrete(end)
	}
	return tr, nil
}

func axpy(x, d []float64, h float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + h*d[i]
	}
	return out
}

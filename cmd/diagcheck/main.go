// Command diagcheck runs the repository's structured-diagnostics
// conformance pass: it fails (exit 1) when a migrated front-end package
// constructs an error with naked fmt.Errorf or errors.New instead of the
// internal/diag engine. CI runs it on every push.
//
// Usage:
//
//	diagcheck [package-dir ...]   (default: the migrated packages)
package main

import (
	"fmt"
	"os"

	"vase/internal/diagcheck"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = diagcheck.DefaultPackages
	}
	bad := false
	for _, dir := range dirs {
		vs, err := diagcheck.CheckDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diagcheck:", err)
			os.Exit(2)
		}
		for _, v := range vs {
			fmt.Println(v)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

package pipeline

import (
	"context"
	"math"
	"testing"

	"vase/internal/mapper"
	"vase/internal/mna"
)

// spiceFixture synthesizes the mixer and returns its encoded netlist plus
// a waveform binding for its input ports.
func spiceFixture(t *testing.T, p *Pipeline) (string, map[string]string) {
	t.Helper()
	res, _, _, err := p.Synthesize(context.Background(), "mixer.vhd", mixerSrc, mapper.DefaultOptions())
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	data, err := res.Netlist.Encode()
	if err != nil {
		t.Fatalf("encode netlist: %v", err)
	}
	return data, map[string]string{"a": "sine:0.5,1000", "b": "dc:0.2"}
}

func sameSpiceData(t *testing.T, label string, a, b *SpiceData) {
	t.Helper()
	if len(a.Time) != len(b.Time) || len(a.V) != len(b.V) || a.Truncated != b.Truncated {
		t.Fatalf("%s: shape mismatch: %d/%d/%v vs %d/%d/%v", label,
			len(b.Time), len(b.V), b.Truncated, len(a.Time), len(a.V), a.Truncated)
	}
	for i := range a.Time {
		if math.Float64bits(a.Time[i]) != math.Float64bits(b.Time[i]) {
			t.Fatalf("%s: time[%d] differs", label, i)
		}
	}
	for n, aw := range a.V {
		bw := b.V[n]
		if len(aw) != len(bw) {
			t.Fatalf("%s: node %d length mismatch", label, n)
		}
		for i := range aw {
			if math.Float64bits(aw[i]) != math.Float64bits(bw[i]) {
				t.Fatalf("%s: node %d sample %d = %x, want %x", label, n, i,
					math.Float64bits(bw[i]), math.Float64bits(aw[i]))
			}
		}
	}
}

func TestSpiceMemoized(t *testing.T) {
	p := newPipe(t, Options{})
	ctx := context.Background()
	data, inputs := spiceFixture(t, p)
	first, err := p.Spice(ctx, data, inputs, 1e-3, 1e-6, SpiceOptions{})
	if err != nil {
		t.Fatalf("spice: %v", err)
	}
	if first.Cached {
		t.Error("first run reported Cached")
	}
	if len(first.Time) < 1001 {
		t.Errorf("trace has %d samples, want the full 1ms window", len(first.Time))
	}
	again, err := p.Spice(ctx, data, inputs, 1e-3, 1e-6, SpiceOptions{})
	if err != nil {
		t.Fatalf("spice rerun: %v", err)
	}
	if !again.Cached {
		t.Error("identical rerun was not a cache hit")
	}
	sameSpiceData(t, "memory hit", first, again)
	if st := p.Stats().Stage(StageSpice); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("spice stage counters = %+v, want 1 miss and 1 memory hit", st)
	}
}

// TestSpiceKeySensitivity pins exactly which knobs re-address a simulation:
// every result-bearing input changes the key, the result-neutral ones do
// not, and all byte-identical solver modes share one slot.
func TestSpiceKeySensitivity(t *testing.T) {
	inputs := map[string]string{"a": "sine:0.5,1000", "b": "dc:0.2"}
	base := SpiceKey("nl", inputs, 1e-3, 1e-6, mna.SolverAuto, mna.ErrorBudget{})
	same := []struct {
		label string
		key   Key
	}{
		{"reference mode", SpiceKey("nl", inputs, 1e-3, 1e-6, mna.SolverReference, mna.ErrorBudget{})},
		{"sparse mode", SpiceKey("nl", inputs, 1e-3, 1e-6, mna.SolverSparse, mna.ErrorBudget{})},
		{"budget under exact tier", SpiceKey("nl", inputs, 1e-3, 1e-6, mna.SolverAuto, mna.ErrorBudget{RelTol: 1e-2})},
	}
	for _, tc := range same {
		if tc.key != base {
			t.Errorf("%s changed the key; exact-tier results are byte-identical and must share one slot", tc.label)
		}
	}
	fast := SpiceKey("nl", inputs, 1e-3, 1e-6, mna.SolverFast, mna.ErrorBudget{})
	diff := []struct {
		label string
		key   Key
	}{
		{"netlist", SpiceKey("nl2", inputs, 1e-3, 1e-6, mna.SolverAuto, mna.ErrorBudget{})},
		{"input spec", SpiceKey("nl", map[string]string{"a": "sine:0.5,1000", "b": "dc:0.3"}, 1e-3, 1e-6, mna.SolverAuto, mna.ErrorBudget{})},
		{"input name", SpiceKey("nl", map[string]string{"a": "sine:0.5,1000", "c": "dc:0.2"}, 1e-3, 1e-6, mna.SolverAuto, mna.ErrorBudget{})},
		{"tstop", SpiceKey("nl", inputs, 2e-3, 1e-6, mna.SolverAuto, mna.ErrorBudget{})},
		{"tstep", SpiceKey("nl", inputs, 1e-3, 2e-6, mna.SolverAuto, mna.ErrorBudget{})},
		{"fast tier", fast},
		{"fast budget", SpiceKey("nl", inputs, 1e-3, 1e-6, mna.SolverFast, mna.ErrorBudget{RelTol: 1e-2})},
	}
	for _, tc := range diff {
		if tc.key == base {
			t.Errorf("%s did not change the key", tc.label)
		}
	}
	// The default budget spelled out explicitly is the same fast contract.
	explicit := SpiceKey("nl", inputs, 1e-3, 1e-6, mna.SolverFast,
		mna.ErrorBudget{RelTol: mna.DefaultRelTol, AbsTol: mna.DefaultAbsTol})
	if explicit != fast {
		t.Error("explicit default budget re-addressed the fast-tier result")
	}
}

func TestSpiceDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	a := newPipe(t, Options{CacheDir: dir})
	data, inputs := spiceFixture(t, a)
	cold, err := a.Spice(ctx, data, inputs, 1e-3, 1e-6, SpiceOptions{Solver: mna.SolverFast})
	if err != nil {
		t.Fatalf("cold spice: %v", err)
	}
	b := newPipe(t, Options{CacheDir: dir})
	warm, err := b.Spice(ctx, data, inputs, 1e-3, 1e-6, SpiceOptions{Solver: mna.SolverFast})
	if err != nil {
		t.Fatalf("warm spice: %v", err)
	}
	if !warm.Cached {
		t.Error("fresh pipeline over the same disk store recomputed the trace")
	}
	if st := b.Stats().Stage(StageSpice); st.DiskHits != 1 {
		t.Errorf("spice stage counters = %+v, want 1 disk hit", st)
	}
	sameSpiceData(t, "disk round-trip", cold, warm)
}

package diag

import "encoding/json"

// jsonDiag is the stable JSON shape of one diagnostic.
type jsonDiag struct {
	Code     string        `json:"code"`
	Severity string        `json:"severity"`
	Summary  string        `json:"summary,omitempty"`
	File     string        `json:"file,omitempty"`
	Line     int           `json:"line,omitempty"`
	Column   int           `json:"column,omitempty"`
	EndLine  int           `json:"endLine,omitempty"`
	EndCol   int           `json:"endColumn,omitempty"`
	Message  string        `json:"message"`
	Fix      string        `json:"fix,omitempty"`
	Related  []jsonRelated `json:"related,omitempty"`
}

type jsonRelated struct {
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Column  int    `json:"column,omitempty"`
	Message string `json:"message"`
}

func toJSON(d *Diagnostic) jsonDiag {
	j := jsonDiag{
		Code:     string(d.Code),
		Severity: d.Severity.String(),
		Summary:  d.Code.Summary(),
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Column:   d.Pos.Column,
		Message:  d.Msg,
		Fix:      d.Fix,
	}
	if d.End.Line > 0 {
		j.EndLine = d.End.Line
		j.EndCol = d.End.Column
	}
	for _, r := range d.Related {
		j.Related = append(j.Related, jsonRelated{
			File:    r.Pos.Filename,
			Line:    r.Pos.Line,
			Column:  r.Pos.Column,
			Message: r.Msg,
		})
	}
	return j
}

// JSON renders the list as an indented JSON array with a stable field order.
func (l List) JSON() ([]byte, error) {
	out := make([]jsonDiag, 0, len(l))
	for _, d := range l {
		out = append(out, toJSON(d))
	}
	return json.MarshalIndent(out, "", "  ")
}

package vhif

import (
	"errors"
	"strings"
	"testing"

	"vase/internal/diag"
)

// The algebraic-loop rejection must name every block and net on the cycle,
// not just the block where the DFS closed it: the user has to see the whole
// feedback path to know where to break it.
func TestAlgebraicLoopNamesCycle(t *testing.T) {
	g := NewGraph("loop")
	in := g.AddBlock(BInput, "x")
	add := g.AddBlock(BAdd, "mix", in.Out, in.Out)
	gain := g.AddBlock(BGain, "fb", add.Out)
	gain.Param = 0.5
	div := g.AddBlock(BDiv, "scale", gain.Out, in.Out)
	// Close the combinational cycle mix -> fb -> scale -> mix.
	add.Inputs[1] = div.Out
	div.Out.Readers = append(div.Out.Readers, add)

	err := g.Validate()
	if err == nil {
		t.Fatal("Validate accepted an algebraic loop")
	}
	msg := err.Error()
	for _, want := range []string{
		`add "mix"`, `gain "fb"`, `div "scale"`,
		"mix.out", "fb.out", "scale.out",
		"[VASS0404]",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("loop error does not mention %q:\n%s", want, msg)
		}
	}
	var d *diag.Diagnostic
	if !errors.As(err, &d) || d.Code != diag.CodeAlgebraicLoop {
		t.Errorf("loop error is not a CodeAlgebraicLoop diagnostic: %v", err)
	}

	cycle := g.FindAlgebraicLoop()
	if len(cycle) != 3 {
		t.Fatalf("FindAlgebraicLoop returned %d blocks, want 3", len(cycle))
	}
	if cycle[0].Name != "mix" || cycle[1].Name != "fb" || cycle[2].Name != "scale" {
		t.Errorf("cycle order = %q, %q, %q", cycle[0].Name, cycle[1].Name, cycle[2].Name)
	}
}

// Cycles broken by any state element are not algebraic; FindAlgebraicLoop
// must return nil for them.
func TestFindAlgebraicLoopStateElements(t *testing.T) {
	for _, kind := range []BlockKind{BIntegrator, BSampleHold, BSchmitt} {
		g := NewGraph("state")
		state := g.AddBlock(kind, "st", nil)
		gain := g.AddBlock(BGain, "fb", state.Out)
		gain.Param = -1
		state.Inputs[0] = gain.Out
		gain.Out.Readers = append(gain.Out.Readers, state)
		if cycle := g.FindAlgebraicLoop(); cycle != nil {
			t.Errorf("%s feedback reported as algebraic loop: %v", kind, DescribeCycle(cycle))
		}
	}
}

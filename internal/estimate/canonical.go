package estimate

import "fmt"

// Canonical returns a deterministic encoding of the process for cache-key
// derivation: every electrical and geometric parameter changes estimated
// cell areas, so every field is included.
func (p Process) Canonical() string {
	return fmt.Sprintf("name=%s|kpn=%g|kpp=%g|vtn=%g|vtp=%g|ln=%g|lp=%g|lmin=%g|wmin=%g|vdd=%g|cap=%g|rsheet=%g|ovh=%g",
		p.Name, p.KPn, p.KPp, p.VTn, p.VTp, p.LambdaN, p.LambdaP,
		p.Lmin, p.Wmin, p.Vdd, p.CapDensity, p.RSheet, p.Overhead)
}

// Canonical returns a deterministic encoding of the system specification
// for cache-key derivation.
func (s SystemSpec) Canonical() string {
	return fmt.Sprintf("bw=%g|peak=%g|guard=%g", s.Bandwidth, s.PeakV, s.GBWGuard)
}

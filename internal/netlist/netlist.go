// Package netlist represents synthesized analog systems as netlists of
// library components at the op amp level — the output of the VASE
// architecture generator and the input to topology selection, transistor
// sizing, and simulation.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"vase/internal/estimate"
	"vase/internal/library"
)

// Net is an electrical node of the component netlist.
type Net struct {
	ID   int
	Name string
	// Const marks nets tied to a constant level (reference sources):
	// non-nil means the net is driven by a bias/reference of that value.
	Const *float64
}

// Component is one instantiated library cell.
type Component struct {
	ID   int
	Name string
	Cell *library.Cell
	// Inputs are the driven input nets in positional order.
	Inputs []*Net
	// Ctrl is the control net of switched cells (nil otherwise).
	Ctrl *Net
	// Out is the output net.
	Out *Net
	// Params carries the electrical parameters of the instance: "gain",
	// "gain0", "gain1" (per-input weights), "threshold", "hysteresis",
	// "limit", "bits", "k" (integrator 1/RC), "load" (ohms).
	Params map[string]float64
	// Estimate is filled by sizing.
	Estimate *estimate.CellEstimate
	// Shared marks components reused across signal paths.
	Shared bool
}

// Param returns a parameter value or def when absent.
func (c *Component) Param(name string, def float64) float64 {
	if v, ok := c.Params[name]; ok {
		return v
	}
	return def
}

// SetParam sets one instance parameter.
func (c *Component) SetParam(name string, v float64) {
	if c.Params == nil {
		c.Params = map[string]float64{}
	}
	c.Params[name] = v
}

// PortDir is an external port direction.
type PortDir int

// Port directions.
const (
	In PortDir = iota
	Out
)

// Port is an external connection of the netlist.
type Port struct {
	Name string
	Dir  PortDir
	Net  *Net
}

// Netlist is a synthesized design: components, nets and external ports.
type Netlist struct {
	Name       string
	Components []*Component
	Nets       []*Net
	Ports      []*Port

	nextNet int
}

// New returns an empty netlist.
func New(name string) *Netlist { return &Netlist{Name: name} }

// NewNet allocates a named node.
func (n *Netlist) NewNet(name string) *Net {
	net := &Net{ID: n.nextNet, Name: name}
	if net.Name == "" {
		net.Name = fmt.Sprintf("n%d", net.ID)
	}
	n.nextNet++
	n.Nets = append(n.Nets, net)
	return net
}

// AddComponent instantiates a cell with the given connections.
func (n *Netlist) AddComponent(cell *library.Cell, name string, inputs []*Net, out *Net) *Component {
	c := &Component{
		ID:     len(n.Components),
		Name:   name,
		Cell:   cell,
		Inputs: inputs,
		Out:    out,
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("%s_%d", cell.Kind, c.ID)
	}
	n.Components = append(n.Components, c)
	return c
}

// AddPort declares an external port bound to a net.
func (n *Netlist) AddPort(name string, dir PortDir, net *Net) *Port {
	p := &Port{Name: name, Dir: dir, Net: net}
	n.Ports = append(n.Ports, p)
	return p
}

// PortByName returns the named port or nil.
func (n *Netlist) PortByName(name string) *Port {
	for _, p := range n.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// OpAmpCount returns the total op-amp budget of the netlist, counting
// shared components once.
func (n *Netlist) OpAmpCount() int {
	total := 0
	for _, c := range n.Components {
		total += c.Cell.OpAmps
	}
	return total
}

// CountKind returns the number of components of the given cell kind.
func (n *Netlist) CountKind(k library.CellKind) int {
	count := 0
	for _, c := range n.Components {
		if c.Cell.Kind == k {
			count++
		}
	}
	return count
}

// Summary renders the synthesis-result summary in the style of the paper's
// Table 1 last column: "2 amplif., 1 zero-cross det.".
func (n *Netlist) Summary() string {
	counts := map[string]int{}
	order := []string{}
	add := func(label string) {
		if counts[label] == 0 {
			order = append(order, label)
		}
		counts[label]++
	}
	for _, c := range n.Components {
		switch {
		case c.Cell.Kind.IsAmplifier():
			add("amplif.")
		case c.Cell.Kind == library.CellIntegrator:
			add("integ.")
		case c.Cell.Kind == library.CellDiff:
			add("differ.")
		case c.Cell.Kind == library.CellComparator:
			add("zero-cross det.")
		case c.Cell.Kind == library.CellSchmitt:
			add("Schmitt trigger")
		case c.Cell.Kind == library.CellSampleHold:
			add("S/H")
		case c.Cell.Kind == library.CellADC:
			add("ADC")
		case c.Cell.Kind == library.CellMux:
			add("MUX")
		case c.Cell.Kind == library.CellLogAmp:
			add("log.amplif.")
		case c.Cell.Kind == library.CellAntilogAmp:
			add("anti-log.amplif.")
		case c.Cell.Kind == library.CellMultiplier:
			add("multiplier")
		case c.Cell.Kind == library.CellDivider:
			add("divider")
		case c.Cell.Kind == library.CellLowPass:
			add("low-pass filt.")
		case c.Cell.Kind == library.CellBandPass:
			add("band-pass filt.")
		case c.Cell.Kind == library.CellOutputStage, c.Cell.Kind == library.CellLimiter:
			// Interfacing stages are not listed in the paper's summaries.
		case c.Cell.Kind == library.CellSwitch:
			add("switch")
		default:
			add(c.Cell.Kind.String())
		}
	}
	var parts []string
	for _, label := range order {
		parts = append(parts, fmt.Sprintf("%d %s", counts[label], label))
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, ", ")
}

// Report is the sized roll-up of a netlist.
type Report struct {
	OpAmps  int
	AreaUm2 float64
	PowerMW float64
	// PerComponent lists component name -> area.
	PerComponent map[string]float64
}

// Estimate sizes every component for the given process and system spec and
// returns the roll-up. Component Estimate fields are filled in place.
func (n *Netlist) Estimate(p estimate.Process, sys estimate.SystemSpec) (*Report, error) {
	rep := &Report{PerComponent: map[string]float64{}}
	for _, c := range n.Components {
		inst := estimate.CellInstance{
			Cell:    c.Cell,
			Gain:    maxGainOf(c),
			Inputs:  len(c.Inputs),
			LoadRes: c.Param("load", 0),
			PeakOut: c.Param("peak", 0),
		}
		est, err := estimate.EstimateCell(p, sys, inst)
		if err != nil {
			return nil, fmt.Errorf("netlist: component %s: %w", c.Name, err)
		}
		c.Estimate = &est
		rep.OpAmps += c.Cell.OpAmps
		rep.AreaUm2 += est.AreaUm2
		rep.PowerMW += est.Power * 1e3
		rep.PerComponent[c.Name] = est.AreaUm2
	}
	return rep, nil
}

func maxGainOf(c *Component) float64 {
	g := c.Param("gain", 1)
	if g < 0 {
		g = -g
	}
	for k, v := range c.Params { //vase:unordered (exact max fold, commutative)
		if strings.HasPrefix(k, "gain") {
			if v < 0 {
				v = -v
			}
			if v > g {
				g = v
			}
		}
	}
	return g
}

// Dump renders a deterministic text form of the netlist.
func (n *Netlist) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "netlist %s\n", n.Name)
	for _, p := range n.Ports {
		dir := "in"
		if p.Dir == Out {
			dir = "out"
		}
		fmt.Fprintf(&b, "  port %s %s net=%s\n", dir, p.Name, p.Net.Name)
	}
	for _, c := range n.Components {
		var ins []string
		for _, in := range c.Inputs {
			ins = append(ins, in.Name)
		}
		line := fmt.Sprintf("  %s %s", c.Cell.Kind, c.Name)
		var params []string
		for k, v := range c.Params {
			params = append(params, fmt.Sprintf("%s=%g", k, v))
		}
		sort.Strings(params)
		if len(params) > 0 {
			line += " [" + strings.Join(params, " ") + "]"
		}
		if len(ins) > 0 {
			line += " in=(" + strings.Join(ins, ", ") + ")"
		}
		if c.Ctrl != nil {
			line += " ctrl=" + c.Ctrl.Name
		}
		if c.Out != nil {
			line += " out=" + c.Out.Name
		}
		if c.Shared {
			line += " shared"
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

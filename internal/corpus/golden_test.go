package corpus

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden VHIF files")

// TestGoldenVHIF pins the exact VHIF each benchmark compiles to: any change
// to a translation rule that alters a corpus representation must be
// reviewed (and the goldens regenerated with -update).
func TestGoldenVHIF(t *testing.T) {
	for _, app := range Applications() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			b, err := BuildApp(app)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			got := b.Module.Dump()
			path := filepath.Join("testdata", app.Key+".vhif")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("VHIF changed from the golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenNetlists pins the synthesized architectures the same way.
func TestGoldenNetlists(t *testing.T) {
	for _, app := range Applications() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			b, err := BuildApp(app)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			got := b.Result.Netlist.Dump()
			path := filepath.Join("testdata", app.Key+".netlist")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("netlist changed from the golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

package netlist

import (
	"strings"
	"testing"

	"vase/internal/estimate"
	"vase/internal/library"
)

// sample builds a netlist exercising every encoded feature: constant nets,
// multi-input components, control nets, shared components, parameters and
// both port directions.
func sample() *Netlist {
	nl := New("sample")
	in1 := nl.NewNet("a")
	in2 := nl.NewNet("b")
	ref := nl.NewNet("vref")
	level := 0.5
	ref.Const = &level
	ctl := nl.NewNet("sel")
	mid := nl.NewNet("mid")
	out := nl.NewNet("y")
	nl.AddPort("a", In, in1)
	nl.AddPort("b", In, in2)
	sum := nl.AddComponent(library.Get(library.CellSummingAmp), "sum1", []*Net{in1, in2}, mid)
	sum.Params = map[string]float64{"gain0": 4, "gain1": 2.5}
	sh := nl.AddComponent(library.Get(library.CellSampleHold), "sh1", []*Net{mid}, out)
	sh.Ctrl = ctl
	sh.Shared = true
	sh.Params = map[string]float64{}
	cmp := nl.AddComponent(library.Get(library.CellComparator), "det1", []*Net{ref}, ctl)
	cmp.Params = map[string]float64{"threshold": 0.1, "hysteresis": 0.02}
	nl.AddPort("y", Out, out)
	return nl
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	nl := sample()
	text, err := nl.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(text)
	if err != nil {
		t.Fatalf("decode: %v\nartifact:\n%s", err, text)
	}
	if a, b := nl.Dump(), got.Dump(); a != b {
		t.Errorf("dump changed across the round trip:\n--- original ---\n%s--- decoded ---\n%s", a, b)
	}
	again, err := got.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if text != again {
		t.Errorf("encode not stable across decode:\n--- first ---\n%s--- second ---\n%s", text, again)
	}
	// Structural details Dump does not show.
	if got.Nets[2].Const == nil || *got.Nets[2].Const != 0.5 {
		t.Error("constant net level lost")
	}
	if !got.Components[1].Shared {
		t.Error("shared flag lost")
	}
	if got.Components[1].Ctrl == nil || got.Components[1].Ctrl.Name != "sel" {
		t.Error("control net lost")
	}
	if got.OpAmpCount() != nl.OpAmpCount() {
		t.Errorf("op amp count %d != %d", got.OpAmpCount(), nl.OpAmpCount())
	}
	// A decoded netlist estimates identically.
	sys := estimate.DefaultSystemSpec()
	repA, err := nl.Estimate(estimate.SCN20, sys)
	if err != nil {
		t.Fatalf("estimate original: %v", err)
	}
	repB, err := got.Estimate(estimate.SCN20, sys)
	if err != nil {
		t.Fatalf("estimate decoded: %v", err)
	}
	if repA.AreaUm2 != repB.AreaUm2 || repA.PowerMW != repB.PowerMW || repA.OpAmps != repB.OpAmps {
		t.Errorf("estimate diverged: %+v vs %+v", repA, repB)
	}
	// A further net allocated after decoding must not collide with ids.
	n := got.NewNet("extra")
	if n.ID != len(got.Nets)-1 || n.ID != 6 {
		t.Errorf("post-decode net got id %d, want 6", n.ID)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "not-a-netlist\nname x\n",
		"bad net id":  "vase-netlist v1\nname x\nnet 5 a\n",
		"bad kind":    "vase-netlist v1\nname x\nnet 0 a\ncomp warp_drive c1 out=0\n",
		"bad out ref": "vase-netlist v1\nname x\nnet 0 a\ncomp inv_amp c1 out=7\n",
		"bad port":    "vase-netlist v1\nname x\nnet 0 a\nport sideways a 0\n",
	}
	for name, text := range cases {
		if _, err := Decode(text); err == nil {
			t.Errorf("%s: decode accepted malformed artifact", name)
		}
	}
}

func TestEncodeRejectsAmbiguousNames(t *testing.T) {
	nl := New("bad name")
	if _, err := nl.Encode(); err == nil || !strings.Contains(err.Error(), "whitespace") {
		t.Errorf("whitespace netlist name not rejected: %v", err)
	}
}

package diag

import (
	"strings"

	"vase/internal/source"
)

// Render formats the diagnostic with a source excerpt and caret markers when
// f contains its position:
//
//	receiver.vhd:12:9: undeclared name "rvra" [VASS0201]
//	  earph == rvra * line;
//	           ^^^^
//	  help: declare a quantity "rvra" in the architecture
func (d *Diagnostic) Render(f *source.File) string {
	var b strings.Builder
	b.WriteString(d.Error())
	if f != nil && d.Pos.Line > 0 && d.Pos.Line <= f.LineCount() && f.Name() == d.Pos.Filename {
		line := lineText(f, d.Pos.Line)
		b.WriteString("\n  ")
		b.WriteString(strings.ReplaceAll(line, "\t", " "))
		b.WriteString("\n  ")
		col := clampCol(d.Pos.Column, line)
		width := 1
		if d.End.Line == d.Pos.Line && d.End.Column > d.Pos.Column {
			width = clampCol(d.End.Column, line) - col
			if width < 1 {
				width = 1
			}
		}
		b.WriteString(strings.Repeat(" ", col-1))
		b.WriteString(strings.Repeat("^", width))
	}
	for _, r := range d.Related {
		b.WriteString("\n  note: ")
		if r.Pos.Line > 0 || r.Pos.Filename != "" {
			b.WriteString(r.Pos.String())
			b.WriteString(": ")
		}
		b.WriteString(r.Msg)
	}
	if d.Fix != "" {
		b.WriteString("\n  help: ")
		b.WriteString(d.Fix)
	}
	return b.String()
}

// Render formats every diagnostic of the list with source excerpts, one
// blank-line-free entry per diagnostic, without the ten-entry cap of Error.
func (l List) Render(f *source.File) string {
	var b strings.Builder
	for _, d := range l {
		b.WriteString(d.Render(f))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFiles is Render for diagnostics spanning several files: each
// diagnostic's excerpt comes from the file lookup resolves for its
// position's filename (nil lookups or unknown names render without an
// excerpt). Multi-file callers (project checks, corpus builds) use this so
// every finding still gets its caret.
func (l List) RenderFiles(lookup func(name string) *source.File) string {
	var b strings.Builder
	for _, d := range l {
		var f *source.File
		if lookup != nil {
			f = lookup(d.Pos.Filename)
		}
		b.WriteString(d.Render(f))
		b.WriteByte('\n')
	}
	return b.String()
}

func clampCol(col int, line string) int {
	if col < 1 {
		col = 1
	}
	if col > len(line)+1 {
		col = len(line) + 1
	}
	return col
}

// lineText returns the 1-based line of f without its newline.
func lineText(f *source.File, line int) string {
	if line < 1 || line > f.LineCount() {
		return ""
	}
	text := f.Text()
	start := 0
	for i := 1; i < line; i++ {
		nl := strings.IndexByte(text[start:], '\n')
		if nl < 0 {
			return ""
		}
		start += nl + 1
	}
	end := strings.IndexByte(text[start:], '\n')
	if end < 0 {
		return text[start:]
	}
	return text[start : start+end]
}

package lint_test

import (
	"testing"

	"vase/internal/corpus"
	"vase/internal/lint"
)

// FuzzLint proves the robustness contract of the linter: no pass may panic,
// whatever the input — syntactically broken, semantically absurd, or
// truncated mid-token. The driver already promises to keep going after
// front-end errors; this target makes that promise mechanical.
func FuzzLint(f *testing.F) {
	for _, app := range corpus.Applications() {
		f.Add(app.Source)
	}
	f.Add("")
	f.Add("entity e is end entity;")
	f.Add(`entity e is
  port (quantity a : in real is voltage range 1.0 to -1.0;
        quantity b : inout real;
        quantity w : out real);
end entity;
architecture x of e is
  signal s : bit;
begin
  w == (a + a)'dot / 0.0;
  process is begin
    while (s = '0') loop s <= '1'; end loop;
  end process;
end architecture;`)
	f.Add("architecture a of nowhere is begin end architecture;")
	f.Add("entity e is port (quantity q : out real); end entity;\narchitecture a of e is begin q == q / q; end architecture;")
	f.Fuzz(func(t *testing.T, src string) {
		list, err := lint.CheckSource("fuzz.vhd", src, lint.Options{})
		if err != nil {
			t.Fatalf("CheckSource returned a driver error (must fold into the list): %v", err)
		}
		_ = list.Error()
	})
}

// FuzzLintVHIF drives the module-level passes with arbitrary VHIF text.
func FuzzLintVHIF(f *testing.F) {
	f.Add("module m\n")
	f.Add("module m\nfsm ctl\nstate start\nstate stuck\narc start -> stuck when go\n")
	f.Add("module m\ngraph g\nadd a in=(b.out) out=a.out\ngain b in=(a.out) out=b.out\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, src string) {
		list, err := lint.CheckVHIF("fuzz.vhif", src, lint.Options{})
		if err != nil {
			t.Fatalf("CheckVHIF returned a driver error (must fold into the list): %v", err)
		}
		_ = list.Error()
	})
}

package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"vase/internal/assertlang"
	"vase/internal/interval"
	"vase/internal/sim"
)

// Size grades the generated design from 2-net toys to 100+-net stress
// cases.
type Size int

const (
	SizeToy Size = iota
	SizeSmall
	SizeMedium
	SizeLarge
)

func (s Size) String() string {
	switch s {
	case SizeToy:
		return "toy"
	case SizeSmall:
		return "small"
	case SizeMedium:
		return "medium"
	case SizeLarge:
		return "large"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// ParseSize parses a size name as accepted by vasegen's -size flag.
func ParseSize(s string) (Size, error) {
	switch strings.ToLower(s) {
	case "toy":
		return SizeToy, nil
	case "small":
		return SizeSmall, nil
	case "medium":
		return SizeMedium, nil
	case "large":
		return SizeLarge, nil
	}
	return 0, fmt.Errorf("gen: unknown size %q (want toy, small, medium, large or mixed)", s)
}

// MixedSize picks the size grade the mixed campaign assigns to spec index
// i: mostly toys and small designs, a medium every 4th and a large stress
// case every 16th spec.
func MixedSize(i int) Size {
	switch {
	case i%16 == 15:
		return SizeLarge
	case i%4 == 3:
		return SizeMedium
	case i%2 == 1:
		return SizeSmall
	default:
		return SizeToy
	}
}

// Spec is a generated specification: the rendered VASS source (with
// assertion pragmas), its parsed assertions, the input stimuli, and the
// model it was rendered from (kept for shrinking).
type Spec struct {
	// Name is the entity name, unique per (seed, index).
	Name string
	// Seed and Index identify the spec within a campaign; regenerating
	// with the same pair is byte-identical.
	Seed  int64
	Index int
	Size  Size
	// Source is the VASS text, assertion pragmas included.
	Source string
	// Asserts are the parsed "-- assert:" pragmas.
	Asserts []*assertlang.Assertion
	// Inputs maps each input port to its stimulus.
	Inputs map[string]Wave
	// TStop and TStep are the transient horizon the assertions were
	// calibrated for.
	TStop, TStep float64

	model *Model
}

// Sources converts the input stimuli to simulator waveforms.
func (s *Spec) Sources() map[string]sim.Source {
	out := make(map[string]sim.Source, len(s.Inputs))
	for name, w := range s.Inputs { //vase:unordered (map-to-map conversion)
		out[name] = w.Source()
	}
	return out
}

// AssertSignals returns the deduplicated signal names the spec's
// assertions observe, in first-use order — the probe list a simulation
// needs for offline checking.
func (s *Spec) AssertSignals() []string {
	seen := make(map[string]bool)
	var names []string
	for _, a := range s.Asserts {
		for _, n := range a.Signals {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return names
}

// Quants reports the number of free-quantity definitions — the size proxy
// the campaign uses to pick search strategies.
func (s *Spec) Quants() int { return len(s.model.Quants) }

// mix derives a per-spec rng seed from the campaign seed and spec index
// (splitmix64 finalizer, so neighboring indices decorrelate).
func mix(seed int64, index int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Generate builds the spec for (seed, index) at the given size. The result
// is deterministic: the same triple renders byte-identical source.
func Generate(seed int64, index int, size Size) *Spec {
	b := &builder{
		rng:  rand.New(rand.NewSource(mix(seed, index))),
		size: size,
	}
	m := b.model(fmt.Sprintf("gen_s%d_i%d", uint64(seed)%100000, index))
	return Build(m, seed, index, size)
}

// Build renders a model into a Spec, deriving and validating its
// assertion pragmas. The shrinker re-enters here after every mutation.
func Build(m *Model, seed int64, index int, size Size) *Spec {
	var b strings.Builder
	asserts := m.assertions()
	for _, a := range asserts {
		fmt.Fprintf(&b, "%s %s\n", assertlang.PragmaPrefix, a)
	}
	b.WriteString(m.Render())
	src := b.String()
	parsed, err := assertlang.FromSource(src)
	if err != nil {
		// Assertions are generated from a grammar the parser accepts; a
		// failure here is a generator bug, not an input condition.
		panic(fmt.Sprintf("gen: generated invalid assertion: %v", err))
	}
	inputs := make(map[string]Wave, len(m.Inputs))
	for _, in := range m.Inputs {
		inputs[in.Name] = in.Wave
	}
	return &Spec{
		Name:    m.Entity,
		Seed:    seed,
		Index:   index,
		Size:    size,
		Source:  src,
		Asserts: parsed,
		Inputs:  inputs,
		TStop:   m.TStop,
		TStep:   m.TStep,
		model:   m,
	}
}

// builder holds generation state.
type builder struct {
	rng  *rand.Rand
	size Size

	m       *Model
	nConst  int
	nSig    int
	sineIns []string // inputs eligible for 'integ
}

// newConst registers a fresh positive constant and returns its name.
func (b *builder) newConst(prefix string, v float64) string {
	b.nConst++
	name := fmt.Sprintf("%s%d", prefix, b.nConst)
	// Round to 4 significant decimals so rendered literals stay short;
	// interval analysis runs on the rounded value, keeping bounds sound.
	v = math.Round(v*1000) / 1000
	if v <= 0 {
		v = 0.001
	}
	b.m.Consts = append(b.m.Consts, &Const{Name: name, Val: v})
	return name
}

func (b *builder) between(lo, hi float64) float64 {
	return lo + b.rng.Float64()*(hi-lo)
}

// counts returns the size-graded design dimensions.
func (b *builder) counts() (nIn, nQuant, nOut int) {
	r := b.rng
	switch b.size {
	case SizeToy:
		return 1 + r.Intn(2), 2 + r.Intn(3), 1
	case SizeSmall:
		return 2 + r.Intn(2), 5 + r.Intn(6), 1 + r.Intn(2)
	case SizeMedium:
		return 3 + r.Intn(2), 18 + r.Intn(19), 2 + r.Intn(2)
	default:
		return 4 + r.Intn(3), 100 + r.Intn(41), 3 + r.Intn(2)
	}
}

func (b *builder) wave() Wave {
	switch b.rng.Intn(4) {
	case 0:
		return Wave{Shape: "dc", Level: math.Round(b.between(-2, 2)*100) / 100}
	case 1:
		return Wave{Shape: "step",
			V0: math.Round(b.between(-1, 1)*100) / 100,
			V1: math.Round(b.between(-2, 2)*100) / 100,
			At: math.Round(b.between(0.2, 0.7)*1e4) / 1e4 * 0.01, // 2..7 ms
		}
	default:
		return Wave{Shape: "sine",
			Amp:   math.Round(b.between(0.5, 2)*100) / 100,
			Freq:  math.Round(b.between(200, 2000)),
			Phase: math.Round(b.between(0, 1)*100) / 100,
		}
	}
}

// symbol picks a referenceable analog symbol: an input, a recent quantity,
// or (rarely) the integral of a sine input.
func (b *builder) symbol(quants int) *expr {
	r := b.rng
	if len(b.sineIns) > 0 && r.Float64() < 0.08 {
		return integOf(b.sineIns[r.Intn(len(b.sineIns))])
	}
	if quants > 0 && r.Float64() < 0.6 {
		// Prefer recent definitions so deep models stay connected.
		lo := 0
		if quants > 6 {
			lo = quants - 6
		}
		return ref(b.m.Quants[lo+r.Intn(quants-lo)].Name)
	}
	return ref(b.m.Inputs[r.Intn(len(b.m.Inputs))].Name)
}

// expr builds a random expression over the first `quants` quantity
// definitions.
func (b *builder) expr(depth, quants int) *expr {
	r := b.rng
	if depth <= 0 || r.Float64() < 0.3 {
		if r.Float64() < 0.5 {
			return gain(b.newConst("g", b.between(0.1, 2.5)), b.symbol(quants))
		}
		return b.symbol(quants)
	}
	switch r.Intn(10) {
	case 0, 1, 2:
		return add(b.expr(depth-1, quants), b.expr(depth-1, quants))
	case 3, 4:
		return sub(b.expr(depth-1, quants), b.expr(depth-1, quants))
	case 5:
		return mul(b.expr(depth-1, quants), b.expr(depth-1, quants))
	case 6:
		return neg(b.expr(depth-1, quants))
	case 7:
		return absOf(b.expr(depth-1, quants))
	default:
		return gain(b.newConst("g", b.between(0.1, 2.5)), b.expr(depth-1, quants))
	}
}

// feasibleStages decomposes a scale factor in (0, 1] into per-stage gain
// values the component library can realize in one amplifier (|gain| >=
// 0.05): a deep attenuation becomes a chain of feasible stages.
func feasibleStages(k float64) []float64 {
	if k > 1 {
		k = 1
	}
	n := 1
	for ; n < 8; n++ {
		if math.Pow(k, 1/float64(n)) >= 0.05 {
			break
		}
	}
	f := math.Round(math.Pow(k, 1/float64(n))*1000) / 1000
	if f < 0.05 {
		f = 0.05
	}
	stages := make([]float64, n)
	for i := range stages {
		stages[i] = f
	}
	return stages
}

// normalized wraps e in scaling gains when its hull exceeds ±8, so deep
// DAGs keep bounded dynamic range (and the derived assertions keep tight).
func (b *builder) normalized(e *expr) *expr {
	iv := b.evalIn(e)
	if m := iv.MaxAbs(); m > 8 {
		for _, f := range feasibleStages(4 / m) {
			e = gain(b.newConst("g", f), e)
		}
	}
	return e
}

// evalIn computes the interval of e in the model built so far.
func (b *builder) evalIn(e *expr) interval.Interval {
	probe := &Model{
		Inputs: b.m.Inputs, Consts: b.m.Consts, Quants: b.m.Quants,
		Outs: []*Out{{Name: "__probe", RHS: e}},
	}
	return probe.intervals()["__probe"]
}

// guardSignal returns a bit signal to control a guarded definition,
// reusing an existing process's signal half the time and otherwise
// spawning a new threshold-watcher process.
func (b *builder) guardSignal(quants int) string {
	r := b.rng
	if len(b.m.Procs) > 0 && r.Float64() < 0.5 {
		return b.m.Procs[r.Intn(len(b.m.Procs))].Signal
	}
	// Only inputs and integrator states are visible to the event-driven
	// part, so the watch candidates are restricted accordingly.
	var cands []string
	for _, in := range b.m.Inputs {
		cands = append(cands, in.Name)
	}
	for _, q := range b.m.Quants[:quants] {
		if q.Kind == qState {
			cands = append(cands, q.Name)
		}
	}
	watch := ref(cands[r.Intn(len(cands))])
	iv := b.evalIn(watch)
	t := iv.Lo + (0.2+0.6*r.Float64())*iv.Span()
	p := &Proc{Watch: watch.Ref, ThNeg: t < 0}
	p.Thresh = b.newConst("th", math.Abs(t))
	b.nSig++
	p.Signal = fmt.Sprintf("cs%d", b.nSig)
	b.m.Procs = append(b.m.Procs, p)
	return p.Signal
}

// model generates the full design.
func (b *builder) model(entity string) *Model {
	r := b.rng
	b.m = &Model{Entity: entity, TStop: 0.01, TStep: 5e-6}
	nIn, nQuant, nOut := b.counts()

	for i := 0; i < nIn; i++ {
		in := &In{Name: fmt.Sprintf("in%d", i+1), Wave: b.wave(), Annotated: r.Float64() < 0.5}
		b.m.Inputs = append(b.m.Inputs, in)
		if in.Wave.Shape == "sine" {
			b.sineIns = append(b.sineIns, in.Name)
		}
	}

	for i := 0; i < nQuant; i++ {
		q := &Quant{Name: fmt.Sprintf("q%d", i+1)}
		roll := r.Float64()
		switch {
		case roll < 0.25:
			q.Kind = qState
			q.RHS = b.normalized(b.expr(1+r.Intn(2), i))
			// Rate constants keep k*TStep well under the RK4 stability
			// bound and settle the lag inside the transient horizon.
			q.Rate = b.newConst("kr", b.between(500, 5000))
		case roll < 0.40:
			q.Kind = qGuarded
			q.Guard = b.guardSignal(i)
			q.RHS = b.normalized(b.expr(1, i))
			q.Alt = b.normalized(b.expr(1, i))
		default:
			q.Kind = qComb
			q.RHS = b.normalized(b.expr(1+r.Intn(3), i))
		}
		b.m.Quants = append(b.m.Quants, q)
	}

	n := len(b.m.Quants)
	for i := 0; i < nOut; i++ {
		o := &Out{Name: fmt.Sprintf("y%d", i+1)}
		// Outputs tap late quantities so the whole DAG feeds the ports.
		lo := 0
		if n > 8 {
			lo = n - 8
		}
		e := ref(b.m.Quants[lo+r.Intn(n-lo)].Name)
		if r.Float64() < 0.5 {
			e = add(e, gain(b.newConst("g", b.between(0.1, 1.5)), b.symbol(n)))
		}
		o.RHS = b.normalized(e)
		if r.Float64() < 0.3 {
			o.Limit = math.Ceil(b.evalIn(o.RHS).MaxAbs() + 1)
		}
		b.m.Outs = append(b.m.Outs, o)
	}

	// Plant monitor ports copying one sine and one step input: the
	// derived recurrence/bounded-response assertions attach to these
	// (see Model.assertions).
	mon := 0
	for _, shape := range []string{"sine", "step"} {
		for _, in := range b.m.Inputs {
			if in.Wave.Shape == shape {
				mon++
				b.m.Outs = append(b.m.Outs, &Out{
					Name: fmt.Sprintf("ymon%d", mon), RHS: ref(in.Name),
				})
				break
			}
		}
	}

	repair(b.m)
	return b.m
}

// repair restores the "everything declared is used" invariant: any input
// or quantity referenced nowhere is absorbed into a normalizing sink
// output, and constants or processes left unreferenced are dropped. Both
// the generator (whose random outputs may miss early quantities) and the
// shrinker (whose mutations orphan symbols) funnel through it.
func repair(m *Model) {
	// Drop any existing sink: it is rebuilt from scratch.
	for i, o := range m.Outs {
		if o.Name == "ysink" {
			m.Outs = append(m.Outs[:i], m.Outs[i+1:]...)
			break
		}
	}
	// Processes whose signal no guarded definition reads are write-only;
	// drop them first — their watches were references, so pruning them can
	// orphan quantities the sink pass below must then absorb.
	refs := m.refCounts()
	for {
		kept := m.Procs[:0]
		dropped := false
		for _, p := range m.Procs {
			if refs[p.Signal] > 0 {
				kept = append(kept, p)
			} else {
				dropped = true
			}
		}
		m.Procs = kept
		if !dropped {
			break
		}
		refs = m.refCounts()
	}
	var orphans []*expr
	for _, in := range m.Inputs {
		if refs[in.Name] == 0 {
			orphans = append(orphans, ref(in.Name))
		}
	}
	for _, q := range m.Quants {
		if refs[q.Name] == 0 {
			orphans = append(orphans, ref(q.Name))
		}
	}
	if len(m.Outs) == 0 && len(orphans) == 0 {
		// Shrunk to nothing visible: expose the last quantity (or first
		// input) so the design keeps an output port.
		if n := len(m.Quants); n > 0 {
			orphans = append(orphans, ref(m.Quants[n-1].Name))
		} else if len(m.Inputs) > 0 {
			orphans = append(orphans, ref(m.Inputs[0].Name))
		}
	}
	if len(orphans) > 0 {
		// Any previous sink-scaling constants are rebuilt from scratch.
		keptK := m.Consts[:0]
		for _, k := range m.Consts {
			if !strings.HasPrefix(k.Name, "gsink") {
				keptK = append(keptK, k)
			}
		}
		m.Consts = keptK
		e := orphans[0]
		for _, o := range orphans[1:] {
			e = add(e, o)
		}
		sink := &Out{Name: "ysink", RHS: e}
		if iv := (&Model{Inputs: m.Inputs, Consts: m.Consts, Quants: m.Quants,
			Outs: []*Out{sink}}).intervals()["ysink"]; iv.MaxAbs() > 8 {
			// A wide sink sum is attenuated through a chain of
			// library-feasible gain stages to keep assertion bounds tight.
			for i, f := range feasibleStages(4 / iv.MaxAbs()) {
				c := &Const{Name: fmt.Sprintf("gsink%d", i+1), Val: f}
				m.Consts = append(m.Consts, c)
				sink.RHS = gain(c.Name, sink.RHS)
			}
		}
		m.Outs = append(m.Outs, sink)
	}
	// Unreferenced constants (orphaned by mutations) are dropped.
	used := make(map[string]bool)
	for _, q := range m.Quants {
		for _, e := range []*expr{q.RHS, q.Alt} {
			e.walk(func(x *expr) {
				if x.Op == opRef {
					used[x.Ref] = true
				}
			})
		}
		if q.Kind == qState {
			used[q.Rate] = true
		}
	}
	for _, o := range m.Outs {
		o.RHS.walk(func(x *expr) {
			if x.Op == opRef {
				used[x.Ref] = true
			}
		})
	}
	for _, p := range m.Procs {
		used[p.Thresh] = true
	}
	keptC := m.Consts[:0]
	for _, k := range m.Consts {
		if used[k.Name] {
			keptC = append(keptC, k)
		}
	}
	m.Consts = keptC
}

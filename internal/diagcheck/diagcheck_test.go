package diagcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMigratedPackagesClean is the enforcement test: the three migrated
// front-end packages must construct every error through internal/diag.
func TestMigratedPackagesClean(t *testing.T) {
	vs, err := CheckAll(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("%s", v)
	}
}

// TestSeededViolation proves the checker actually fires: a file with a naked
// fmt.Errorf, an aliased import, and a dot-free errors.New must all be
// caught, while diag.Errorf and test files are left alone.
func TestSeededViolation(t *testing.T) {
	dir := t.TempDir()
	seed := `package bad

import (
	"fmt"
	e "errors"

	"vase/internal/diag"
)

func f() error { return fmt.Errorf("naked %d", 1) }
func g() error { return e.New("aliased") }
func h() error { return diag.Errorf(diag.CodeSema, "fine") }
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	// Test files are exempt: they assert on messages, not user-facing errors.
	testSeed := "package bad\n\nimport \"fmt\"\n\nfunc tf() error { return fmt.Errorf(\"ok in tests\") }\n"
	if err := os.WriteFile(filepath.Join(dir, "bad_test.go"), []byte(testSeed), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("expected exactly the two seeded violations, got %d: %v", len(vs), vs)
	}
	if vs[0].Call != "fmt.Errorf" || vs[0].Pos.Line != 10 {
		t.Errorf("first violation = %v, want fmt.Errorf at line 10", vs[0])
	}
	if vs[1].Call != "errors.New" || vs[1].Pos.Line != 11 {
		t.Errorf("second violation = %v, want errors.New at line 11", vs[1])
	}
	for _, v := range vs {
		if !strings.Contains(v.String(), "diag.Errorf") {
			t.Errorf("violation message should point at the fix: %s", v)
		}
	}
}

func TestCheckDirMissing(t *testing.T) {
	if _, err := CheckDir(filepath.Join(t.TempDir(), "nosuch")); err == nil {
		t.Error("expected an error for a missing directory")
	}
}

// TestEnginePackagesDeterministic is the enforcement test for the
// determinism analyzer: engine packages read no wall clock and iterate no
// map into ordered output without an explicit, reviewable annotation.
func TestEnginePackagesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks every engine package from source")
	}
	vs, err := CheckDeterminismAll(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("%s", v)
	}
}

// TestSeededDeterminismViolations proves the determinism checker fires and
// that every escape hatch works: the walltime directive, the unordered
// directive, and a sort call in the enclosing function.
func TestSeededDeterminismViolations(t *testing.T) {
	dir := t.TempDir()
	seed := `package engine

import (
	"sort"
	"time"
)

func clockBad() time.Time { return time.Now() }

func clockAllowed() time.Time {
	return time.Now() //vase:walltime (deadline plumbing)
}

func rangeBad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func rangeSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func rangeAnnotated(m map[string]int) int {
	n := 0
	for _, v := range m { //vase:unordered (commutative sum of ints)
		n += v
	}
	return n
}

func rangeSlice(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}
`
	if err := os.WriteFile(filepath.Join(dir, "engine.go"), []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := CheckDeterminismDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("expected exactly the two seeded violations, got %d: %v", len(vs), vs)
	}
	if vs[0].Call != "time.Now" || vs[0].Pos.Line != 8 {
		t.Errorf("first violation = %v, want time.Now at line 8", vs[0])
	}
	if vs[1].Call != "range over map" || vs[1].Pos.Line != 16 {
		t.Errorf("second violation = %v, want the map range at line 16", vs[1])
	}
	if !strings.Contains(vs[1].Reason, "rangeBad") {
		t.Errorf("map-range violation should name the enclosing function: %s", vs[1].Reason)
	}
}

// TestRecoveryPackagesNoFailFast is the enforcement test for the recovery
// analyzer: the recovering parser and sema never abort on the first error
// without an explicit, reviewable annotation at strict entry points.
func TestRecoveryPackagesNoFailFast(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the recovery packages from source")
	}
	vs, err := CheckRecoveryAll(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("%s", v)
	}
}

// TestSeededRecoveryViolations proves the recovery checker fires on the
// fail-fast shape, honors the failfast directive, and leaves returns that
// carry a partial result alone.
func TestSeededRecoveryViolations(t *testing.T) {
	dir := t.TempDir()
	seed := `package rec

import "errors"

type node struct{}

func bad() (*node, error) {
	if true {
		return nil, errors.New("abort")
	}
	return &node{}, nil
}

func annotated() (*node, error) {
	if true {
		return nil, errors.New("strict") //vase:failfast (entry point)
	}
	return &node{}, nil
}

func partial() (*node, error) {
	err := errors.New("recorded")
	return &node{}, err
}

func cleanup() (func(), error) {
	return nil, nil
}
`
	if err := os.WriteFile(filepath.Join(dir, "rec.go"), []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := CheckRecoveryDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("expected exactly the one seeded violation, got %d: %v", len(vs), vs)
	}
	if vs[0].Call != "return nil, err" || vs[0].Pos.Line != 9 {
		t.Errorf("violation = %v, want the fail-fast return at line 9", vs[0])
	}
	if !strings.Contains(vs[0].Reason, "bad") {
		t.Errorf("violation should name the enclosing function: %s", vs[0].Reason)
	}
}

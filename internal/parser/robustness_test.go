package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanicsOnRandomInput: the front end must reject garbage with
// diagnostics, never by panicking.
func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	check := func(raw []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", raw, r)
				ok = false
			}
		}()
		Parse("fuzz.vhd", string(raw))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanicsOnMutatedSource: random mutations of a valid design
// (deletions, duplications, token swaps) must not panic either — these
// exercise recovery paths plain random bytes never reach.
func TestParserNeverPanicsOnMutatedSource(t *testing.T) {
	const base = `
entity telephone is
  port (
    quantity line  : in real is voltage;
    quantity earph : out real is voltage limited at 1.5
  );
end entity;
architecture behavioral of telephone is
  constant k : real := 4.0;
  quantity rvar : real;
  signal c1 : bit;
begin
  earph == k * line * rvar;
  if (c1 = '1') use rvar == 0.5; else rvar == 0.75; end use;
  process (line'above(0.1)) is begin
    if (line'above(0.1) = true) then c1 <= '1'; else c1 <= '0'; end if;
  end process;
end architecture;`
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		src := mutate(rng, base)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %d: %v\n%s", i, r, src)
				}
			}()
			Parse("mut.vhd", src)
		}()
	}
}

func mutate(rng *rand.Rand, s string) string {
	b := []byte(s)
	n := 1 + rng.Intn(4)
	for i := 0; i < n && len(b) > 2; i++ {
		switch rng.Intn(4) {
		case 0: // delete a span
			p := rng.Intn(len(b) - 1)
			q := p + 1 + rng.Intn(minInt(20, len(b)-p-1))
			b = append(b[:p], b[q:]...)
		case 1: // duplicate a span
			p := rng.Intn(len(b) - 1)
			q := p + 1 + rng.Intn(minInt(12, len(b)-p-1))
			b = append(b[:q], append(append([]byte{}, b[p:q]...), b[q:]...)...)
		case 2: // replace a byte with a random punctuation
			b[rng.Intn(len(b))] = ";()=':,*"[rng.Intn(8)]
		case 3: // swap two bytes
			p, q := rng.Intn(len(b)), rng.Intn(len(b))
			b[p], b[q] = b[q], b[p]
		}
	}
	return string(b)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestDeeplyNestedExpressions: recursion depth handling.
func TestDeeplyNestedExpressions(t *testing.T) {
	depth := 500
	expr := strings.Repeat("(", depth) + "x" + strings.Repeat(")", depth)
	src := `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
begin
  y == ` + expr + `;
end architecture;`
	if _, err := Parse("deep.vhd", src); err != nil {
		t.Fatalf("deep nesting should parse: %v", err)
	}
}

// TestManyStatements: scale smoke test for the statement loop.
func TestManyStatements(t *testing.T) {
	var b strings.Builder
	b.WriteString("entity big is\n  port (quantity u : in real")
	for i := 0; i < 200; i++ {
		b.WriteString(";\n    quantity q")
		b.WriteString(itoa(i))
		b.WriteString(" : out real")
	}
	b.WriteString(");\nend entity;\narchitecture a of big is\nbegin\n")
	for i := 0; i < 200; i++ {
		b.WriteString("  q" + itoa(i) + " == " + itoa(i+1) + ".0 * u;\n")
	}
	b.WriteString("end architecture;\n")
	df, err := Parse("big.vhd", b.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if n := len(df.Architectures()[0].Stmts); n != 200 {
		t.Fatalf("statements = %d, want 200", n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

package mna

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"
	"sync/atomic"
)

// ACResult holds a small-signal frequency sweep: complex node voltages per
// analysis frequency for a unit AC stimulus.
type ACResult struct {
	Freqs []float64
	V     map[Node][]complex128
	// Truncated is set when a cancelled or deadlined context stopped the
	// sweep early: Freqs and V hold the points solved so far.
	Truncated bool
	c         *Circuit
}

// Mag returns the magnitude response of a named node.
func (r *ACResult) Mag(name string) []float64 {
	n, ok := r.c.names[name]
	if !ok {
		return nil
	}
	return r.MagOf(n)
}

// MagOf returns the magnitude response of a node.
func (r *ACResult) MagOf(n Node) []float64 {
	out := make([]float64, len(r.Freqs))
	for i, v := range r.V[n] {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// MagDB returns the magnitude response in decibels.
func (r *ACResult) MagDB(name string) []float64 {
	mags := r.Mag(name)
	out := make([]float64, len(mags))
	for i, m := range mags {
		if m <= 0 {
			out[i] = math.Inf(-1)
			continue
		}
		out[i] = 20 * math.Log10(m)
	}
	return out
}

// PhaseDeg returns the phase response in degrees.
func (r *ACResult) PhaseDeg(name string) []float64 {
	n, ok := r.c.names[name]
	if !ok {
		return nil
	}
	out := make([]float64, len(r.Freqs))
	for i, v := range r.V[n] {
		out[i] = cmplx.Phase(v) * 180 / math.Pi
	}
	return out
}

// LogSweep returns n logarithmically spaced frequencies in [f1, f2].
func LogSweep(f1, f2 float64, n int) []float64 {
	if n < 2 {
		return []float64{f1}
	}
	out := make([]float64, n)
	ratio := math.Log(f2 / f1)
	for i := range out {
		out[i] = f1 * math.Exp(ratio*float64(i)/float64(n-1))
	}
	return out
}

// AC performs a small-signal frequency sweep: the circuit is linearized at
// its DC operating point (saturating op amps, diodes and switches
// contribute their local conductances and gains), the named source becomes
// a unit AC stimulus, and the complex MNA system is solved per frequency.
func (c *Circuit) AC(acSource string, freqs []float64) (*ACResult, error) {
	return c.ACContext(context.Background(), acSource, freqs)
}

// ACContext is AC under a context, checked between frequency points: a
// cancelled or deadlined sweep returns the prefix solved so far with
// Truncated set, mirroring the transient simulator's anytime contract.
//
// The sweep fans out across Circuit.Workers goroutines (0 = all CPUs):
// frequency points are independent complex solves over the same structure,
// dispatched by an ascending atomic counter to per-worker workspaces.
// Every worker count produces the identical result — each point's
// arithmetic is self-contained, results land in preallocated per-point
// slots, a failing sweep always reports the lowest failing frequency, and
// cancellation truncates to the contiguous prefix of completed points.
func (c *Circuit) ACContext(ctx context.Context, acSource string, freqs []float64) (*ACResult, error) {
	op, err := c.DCContext(ctx)
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled before any point could be solved: the empty
			// prefix is the anytime result.
			return &ACResult{Freqs: freqs[:0], V: map[Node][]complex128{}, Truncated: true, c: c}, nil
		}
		return nil, fmt.Errorf("mna: AC operating point: %w", err)
	}
	c.assignBranches()

	found := false
	for _, d := range c.devices {
		if d.kind == dVSource && d.name == acSource {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("mna: no voltage source %q for the AC stimulus", acSource)
	}

	res := &ACResult{Freqs: freqs, V: map[Node][]complex128{}, c: c}
	if c.Solver == SolverReference {
		for fi, f := range freqs {
			if ctx.Err() != nil {
				res.Freqs = freqs[:fi]
				res.Truncated = true
				return res, nil
			}
			sol, err := c.acSolve(op, acSource, f)
			if err != nil {
				return nil, fmt.Errorf("mna: AC at %g Hz: %w", f, err)
			}
			c.stats.Factorizations++
			for i := 1; i <= c.nodes; i++ {
				res.V[Node(i)] = append(res.V[Node(i)], sol[i])
			}
		}
		return res, nil
	}

	s, err := c.ensureSolver()
	if err != nil {
		return nil, err
	}
	tmpl := c.buildACTemplate(s, op, acSource)
	dim := s.dim

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(freqs) {
		workers = len(freqs)
	}

	// Per-point solution slots (no append contention) and completion
	// marks; each index is written by exactly one worker.
	sols := make([]complex128, len(freqs)*(dim+1))
	done := make([]bool, len(freqs))
	var (
		next    atomic.Int64
		mu      sync.Mutex
		failIdx = -1
		failErr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := newACWorkspace(s, tmpl)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(freqs) || ctx.Err() != nil {
					return
				}
				mu.Lock()
				bail := failIdx >= 0 && failIdx < i
				mu.Unlock()
				if bail {
					return
				}
				if err := ws.solvePoint(s, tmpl, freqs[i]); err != nil {
					mu.Lock()
					if failIdx < 0 || i < failIdx {
						failIdx = i
						failErr = fmt.Errorf("mna: AC at %g Hz: %w", freqs[i], err)
					}
					mu.Unlock()
					continue
				}
				copy(sols[i*(dim+1):(i+1)*(dim+1)], ws.x)
				done[i] = true
			}
		}()
	}
	wg.Wait()

	// Contiguous prefix of completed points: with ascending dispatch this
	// is everything on success, and the lowest failing index is always
	// attempted, so a genuine failure is reported deterministically.
	solved := 0
	for solved < len(freqs) && done[solved] {
		solved++
	}
	c.stats.Factorizations += int64(solved)
	if solved < len(freqs) {
		if ctx.Err() != nil {
			res.Freqs = freqs[:solved]
			res.Truncated = true
		} else {
			if failErr == nil {
				failErr = fmt.Errorf("mna: AC sweep stalled at %g Hz", freqs[solved])
			}
			return nil, failErr
		}
	}
	for i := 1; i <= c.nodes; i++ {
		col := make([]complex128, solved)
		for fi := 0; fi < solved; fi++ {
			col[fi] = sols[fi*(dim+1)+i]
		}
		res.V[Node(i)] = col
	}
	return res, nil
}

// acSolve assembles and solves the complex linearized system at frequency f.
func (c *Circuit) acSolve(op Solution, acSource string, f float64) ([]complex128, error) {
	dim := c.nodes
	for _, d := range c.devices {
		switch d.kind {
		case dVSource, dVCVS, dOpAmp, dFunc:
			dim++
		}
	}
	a := make([][]complex128, dim+1)
	for i := range a {
		a[i] = make([]complex128, dim+2) // last column is the RHS
	}
	omega := 2 * math.Pi * f
	vx := func(n Node) float64 { return op.V(n) }

	addG := func(p, q Node, g complex128) {
		a[p][p] += g
		a[q][q] += g
		a[p][q] -= g
		a[q][p] -= g
	}
	for _, d := range c.devices {
		switch d.kind {
		case dResistor:
			addG(d.a, d.b, complex(1/d.value, 0))
		case dCapacitor:
			addG(d.a, d.b, complex(0, omega*d.value))
		case dVSource:
			stim := 0.0
			if d.name == acSource {
				stim = 1
			}
			a[d.branch][d.a] += 1
			a[d.branch][d.b] -= 1
			a[d.a][d.branch] += 1
			a[d.b][d.branch] -= 1
			a[d.branch][dim+1] += complex(stim, 0)
		case dISource:
			// Independent current sources are DC bias: no AC component.
		case dVCVS:
			a[d.branch][d.a] += 1
			a[d.branch][d.b] -= 1
			a[d.branch][d.cp] -= complex(d.value, 0)
			a[d.branch][d.cm] += complex(d.value, 0)
			a[d.a][d.branch] += 1
			a[d.b][d.branch] -= 1
		case dDiode:
			v := vx(d.a) - vx(d.b)
			if v > 0.9 {
				v = 0.9
			}
			g := d.isat * math.Exp(v/d.vt) / d.vt
			if g < 1e-12 {
				g = 1e-12
			}
			addG(d.a, d.b, complex(g, 0))
		case dSwitch:
			r := d.roff
			if vx(d.cp)-vx(d.cm) > d.vth {
				r = d.ron
			}
			addG(d.a, d.b, complex(1/r, 0))
		case dOpAmp:
			// Local gain at the operating point.
			vc := vx(d.cp) - vx(d.cm)
			arg := d.gain * vc / d.vmax
			sech := 1 / math.Cosh(arg)
			dg := complex(d.gain*sech*sech, 0)
			a[d.branch][d.a] += 1
			a[d.branch][d.cp] -= dg
			a[d.branch][d.cm] += dg
			a[d.a][d.branch] += 1
		case dFunc:
			// Numeric Jacobian at the operating point.
			vals := make([]float64, len(d.ctrl))
			for i, n := range d.ctrl {
				vals[i] = vx(n)
			}
			base := d.f(vals)
			a[d.branch][d.a] += 1
			const eps = 1e-6
			for i, n := range d.ctrl {
				if n == Ground {
					continue
				}
				vals[i] += eps
				dp := (d.f(vals) - base) / eps
				vals[i] -= eps
				a[d.branch][n] -= complex(dp, 0)
			}
			a[d.a][d.branch] += 1
		}
	}

	// Gaussian elimination over the reduced complex system (drop ground).
	n := dim
	m := make([][]complex128, n)
	for i := 0; i < n; i++ {
		m[i] = make([]complex128, n+1)
		copy(m[i], a[i+1][1:])
	}
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if cmplx.Abs(m[r][col]) > cmplx.Abs(m[p][col]) {
				p = r
			}
		}
		if cmplx.Abs(m[p][col]) < 1e-15 {
			return nil, fmt.Errorf("singular AC matrix at column %d", col+1)
		}
		m[col], m[p] = m[p], m[col]
		piv := m[col][col]
		for r := col + 1; r < n; r++ {
			fac := m[r][col] / piv
			if fac == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				m[r][k] -= fac * m[col][k]
			}
		}
	}
	x := make([]complex128, n+1)
	for r := n - 1; r >= 0; r-- {
		sum := m[r][n]
		for k := r + 1; k < n; k++ {
			sum -= m[r][k] * x[k+1]
		}
		x[r+1] = sum / m[r][r]
	}
	return x, nil
}

package corpus

import (
	"context"
	"testing"

	"vase/internal/assertlang"
)

// TestFigure8GoldenAssertions is the golden monitored property: the
// receiver's +-1.5 V output clipping (the paper's Figure 8), expressed in
// the dense-time assertion language and checked by streaming monitors on
// the circuit-level transient. Streaming and offline evaluation must agree.
func TestFigure8GoldenAssertions(t *testing.T) {
	outs, el, tr, err := Figure8Monitored(context.Background(), 0, nil)
	if err != nil {
		t.Fatalf("figure 8 monitored run: %v", err)
	}
	if tr.Truncated {
		t.Fatal("full run reported truncated")
	}
	for _, o := range outs {
		if o.Verdict != assertlang.Pass {
			t.Errorf("golden assertion did not pass: %s", o)
		}
	}
	offline := assertlang.CheckTran(Figure8Assertions(), el, tr)
	for i := range outs {
		if outs[i].Verdict != offline[i].Verdict {
			t.Errorf("assertion %q: streaming %s vs offline %s",
				Figure8AssertionTexts[i], outs[i].Verdict, offline[i].Verdict)
		}
	}
}

// TestFigure8TruncatedUnknown cuts the transient off by step budget after
// 0.3 ms: properties the prefix cannot decide (the whole-run bound, the
// negative-rail eventually whose window is still open) must resolve to
// Unknown — a partial run is inconclusive, not failing.
func TestFigure8TruncatedUnknown(t *testing.T) {
	outs, _, tr, err := Figure8Monitored(context.Background(), 300, nil)
	if err != nil {
		t.Fatalf("figure 8 truncated run: %v", err)
	}
	if !tr.Truncated {
		t.Fatal("step-budgeted run not marked truncated")
	}
	for _, o := range outs {
		if o.Verdict == assertlang.Fail {
			t.Errorf("truncated prefix produced a Fail verdict: %s", o)
		}
	}
	// The bound over the full window cannot be decided by a prefix.
	if outs[0].Verdict != assertlang.Unknown {
		t.Errorf("bound on a truncated trace resolved to %s, want UNKNOWN", outs[0].Verdict)
	}
	// The positive clip is reached inside the observed 0.3 ms, so that
	// eventually is conclusively satisfied even on the prefix.
	if outs[1].Verdict != assertlang.Pass {
		t.Errorf("positive-clip eventually on the prefix resolved to %s, want PASS", outs[1].Verdict)
	}
}

// TestFigure8DeadlineCancelledUnknown is the anytime regression: a
// mid-flight context cancellation (the deadline path) must surface as a
// truncated trace whose undecided assertions read Unknown, exactly like a
// step budget. The cancel fires from the sample hook after 50 us of
// simulated time, so the truncation point is deterministic.
func TestFigure8DeadlineCancelledUnknown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	outs, _, tr, err := Figure8Monitored(ctx, 0, func(t float64) {
		if t >= 50e-6 {
			cancel()
		}
	})
	if err != nil {
		t.Fatalf("figure 8 cancelled run: %v", err)
	}
	if !tr.Truncated {
		t.Fatal("cancelled run not marked truncated")
	}
	if last := tr.Time[len(tr.Time)-1]; last >= 3e-3/2 {
		t.Errorf("cancellation barely truncated the run (last sample at t=%g)", last)
	}
	for _, o := range outs {
		if o.Verdict == assertlang.Fail {
			t.Errorf("cancelled run produced a Fail verdict: %s", o)
		}
	}
	// 50 us is before the first clip: every property is still open, so
	// every verdict is Unknown.
	for _, o := range outs {
		if o.Verdict != assertlang.Unknown {
			t.Errorf("cancelled-at-50us run resolved %q to %s, want UNKNOWN",
				o.Assertion.Text, o.Verdict)
		}
	}
}

package mna

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
)

// feedbackChain builds a cascade of closed-loop inverting amplifier stages
// with compensation capacitors and diode clamps — the same structure
// Elaborate produces for synthesized gain chains, and the circuit class the
// fast tier's budget contract is written for. (activeChain, by contrast, is
// a deliberately ill-behaved open-loop stress case for pivoting; high-gain
// open loops are Newton-multistable and no two solvers are obliged to agree
// on them beyond the exact tier's bit-replay.)
func feedbackChain(stages int) *Circuit {
	c := New()
	in := c.NodeByName("in")
	c.AddV("vin", in, Ground, func(t float64) float64 {
		return 1.2 * math.Sin(2*math.Pi*1e3*t)
	})
	prev := in
	for i := 0; i < stages; i++ {
		sum := c.NodeByName(fmt.Sprintf("s%d", i))
		out := c.NodeByName(fmt.Sprintf("o%d", i))
		c.AddR(fmt.Sprintf("ri%d", i), prev, sum, 1e4)
		c.AddR(fmt.Sprintf("rf%d", i), sum, out, 1.1e4)
		c.AddC(fmt.Sprintf("cc%d", i), sum, out, 100e-12, 0)
		c.AddOpAmp(fmt.Sprintf("op%d", i), out, Ground, sum, 1e4, 4)
		if i%2 == 1 {
			c.AddDiode(fmt.Sprintf("d%d", i), out, Ground)
		}
		prev = out
	}
	return c
}

// runTran runs the feedback chain's transient in the given mode.
func runTran(t *testing.T, stages int, mode SolverMode) (*Circuit, *Tran) {
	t.Helper()
	c := feedbackChain(stages)
	c.Solver = mode
	tr, err := c.Transient(2e-3, 1e-6)
	if err != nil {
		t.Fatalf("mode %d transient: %v", mode, err)
	}
	return c, tr
}

// TestFastTierTranWithinBudget pins the fast tier's core contract on the
// active chain: every trace point within the default error budget of the
// reference, over a window long enough to exercise diode clipping, op-amp
// saturation and factorization reuse across thousands of steps.
func TestFastTierTranWithinBudget(t *testing.T) {
	for _, stages := range []int{2, 7} { // dense plan below the crossover, CSR above
		_, ref := runTran(t, stages, SolverReference)
		c, got := runTran(t, stages, SolverFast)
		diff, err := ErrorBudget{}.CompareTran(ref, got)
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if diff.Points == 0 {
			t.Fatalf("stages=%d: no points compared", stages)
		}
		st := c.SolverStats()
		if st.FactorReuses == 0 {
			t.Errorf("stages=%d: no factorization reuse — the chord path never engaged (stats %v)", stages, st)
		}
		if st.Orderings == 0 {
			t.Errorf("stages=%d: no symbolic ordering recorded", stages)
		}
		t.Logf("stages=%d: %v; stats: %v", stages, diff, st)
	}
}

// TestFastTierDCWithinBudget checks the operating point against the
// reference under the budget.
func TestFastTierDCWithinBudget(t *testing.T) {
	ref := activeChain(6)
	ref.Solver = SolverReference
	want, err := ref.DC()
	if err != nil {
		t.Fatal(err)
	}
	c := activeChain(6)
	c.Solver = SolverFast
	got, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	if err := (ErrorBudget{}).CompareSolution(want, got); err != nil {
		t.Fatal(err)
	}
}

// TestFastTierDeterministic pins run-to-run byte-identity: the fast tier is
// not bit-exact against the reference, but it is exactly reproducible with
// itself — the property that makes its results cacheable.
func TestFastTierDeterministic(t *testing.T) {
	_, a := runTran(t, 7, SolverFast)
	_, b := runTran(t, 7, SolverFast)
	if len(a.Time) != len(b.Time) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Time), len(b.Time))
	}
	for n, aw := range a.V {
		bw := b.V[n]
		for i := range aw {
			if math.Float64bits(aw[i]) != math.Float64bits(bw[i]) {
				t.Fatalf("node %d sample %d: %x vs %x", n, i, math.Float64bits(aw[i]), math.Float64bits(bw[i]))
			}
		}
	}
}

// TestFastTierReusesFactorizations pins the chord-Newton economics: across
// a transient the factorization count must be far below the iteration
// count, and reuses must dominate.
func TestFastTierReusesFactorizations(t *testing.T) {
	c, _ := runTran(t, 7, SolverFast)
	st := c.SolverStats()
	if st.Factorizations*4 > st.NewtonIterations {
		t.Errorf("factorizations %d vs %d iterations: reuse is not engaging (stats %v)",
			st.Factorizations, st.NewtonIterations, st)
	}
	if st.FactorReuses < st.Factorizations {
		t.Errorf("reuses %d < factorizations %d: expected reuse to dominate", st.FactorReuses, st.Factorizations)
	}
}

// TestFastTierZeroAllocsWarm pins the steady state: once ordered and
// factored, a fast-tier Newton solve (assemble, staleness check, residual,
// triangular solves, update) allocates nothing.
func TestFastTierZeroAllocsWarm(t *testing.T) {
	c := activeChain(7)
	c.Solver = SolverFast
	s, err := c.ensureSolver()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dst := make(Solution, s.dim+1)
	for i := 0; i < 3; i++ {
		if _, err := c.newtonFastTier(ctx, s, dst, s.zero, s.zero, 0, 1e-6); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.newtonFastTier(ctx, s, dst, s.zero, s.zero, 0, 1e-6); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm fast-tier Newton solve: %v allocs/op, want 0", allocs)
	}
}

// TestFastTierSingularDetected mirrors the exact tier's singularity
// contract: a floating node is reported, not silently mis-solved.
func TestFastTierSingularDetected(t *testing.T) {
	c := New()
	a := c.NodeByName("a")
	b := c.NodeByName("b")
	c.AddR("r1", a, Ground, 1e3)
	c.AddR("r2", b, b, 1e3) // node b floats
	c.Solver = SolverFast
	if _, err := c.DC(); err == nil || !strings.Contains(err.Error(), "singular") {
		t.Fatalf("DC error = %v, want singular-matrix diagnosis", err)
	}
}

// TestCompareTranSkewAllowance pins the one-sample event-skew rule: a
// full-amplitude single-sample difference that matches a neighboring
// reference sample is counted as skew, not failure — and a two-sample shift
// still fails.
func TestCompareTranSkewAllowance(t *testing.T) {
	mk := func(vals []float64) *Tran {
		time := make([]float64, len(vals))
		for i := range time {
			time[i] = float64(i) * 1e-6
		}
		return &Tran{Time: time, V: map[Node][]float64{1: vals}}
	}
	ref := mk([]float64{0, 0, 0, 5, 5, 5})
	early := mk([]float64{0, 0, 5, 5, 5, 5}) // switches one sample early
	diff, err := (ErrorBudget{}).CompareTran(ref, early)
	if err != nil {
		t.Fatalf("one-sample skew rejected: %v", err)
	}
	if diff.Skewed != 1 {
		t.Errorf("Skewed = %d, want 1 (%v)", diff.Skewed, diff)
	}
	if diff.MaxAbs != 0 {
		t.Errorf("MaxAbs = %g: skewed points must not pollute the max stats", diff.MaxAbs)
	}
	twoEarly := mk([]float64{0, 5, 5, 5, 5, 5})
	if _, err := (ErrorBudget{}).CompareTran(ref, twoEarly); err == nil {
		t.Error("two-sample skew accepted, want budget violation")
	}
}

// TestCompareTranShapeMismatch pins the strict-shape half of the contract.
func TestCompareTranShapeMismatch(t *testing.T) {
	a := &Tran{Time: []float64{0, 1}, V: map[Node][]float64{1: {0, 0}}}
	b := &Tran{Time: []float64{0}, V: map[Node][]float64{1: {0}}}
	if _, err := (ErrorBudget{}).CompareTran(a, b); err == nil {
		t.Error("length mismatch accepted")
	}
	c := &Tran{Time: []float64{0, 1}, V: map[Node][]float64{1: {0, 0}}, Truncated: true}
	if _, err := (ErrorBudget{}).CompareTran(a, c); err == nil {
		t.Error("truncation mismatch accepted")
	}
}

// TestErrorBudgetCanonical pins the cache-key form: defaults filled, hex
// exact, sensitive to every field.
func TestErrorBudgetCanonical(t *testing.T) {
	def := ErrorBudget{}.Canonical()
	if def != (ErrorBudget{RelTol: DefaultRelTol, AbsTol: DefaultAbsTol}).Canonical() {
		t.Errorf("zero budget canonical %q does not equal explicit defaults", def)
	}
	loose := ErrorBudget{RelTol: 1e-2}.Canonical()
	if loose == def {
		t.Errorf("RelTol change did not change the canonical form %q", def)
	}
}

// BenchmarkMNASolveFast is the fast-tier row of BenchmarkMNASolve: one warm
// solve on the same chain, for direct ns/op comparison with the exact
// tiers.
func BenchmarkMNASolveFast(b *testing.B) {
	c := activeChain(7)
	c.Solver = SolverFast
	s, err := c.ensureSolver()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	dst := make(Solution, s.dim+1)
	for i := 0; i < 3; i++ {
		if _, err := c.newtonFastTier(ctx, s, dst, s.zero, s.zero, 0, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.newtonFastTier(ctx, s, dst, s.zero, s.zero, 0, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// Command vaselint is the standalone synthesizability linter for VASS
// sources and serialized VHIF modules. It runs the full front end plus every
// registered analyzer and prints structured findings with source excerpts,
// or as JSON for tooling.
//
// Usage:
//
//	vaselint [-json] [-Werror] [-v] [-passes list] file.vhd dir/ ...
//	vaselint -list
//
// Directories are searched (non-recursively) for .vhd and .vhif files. Exit
// status follows the shared contract (internal/exitcode): 1 when any
// error-severity finding is reported — or any warning under -Werror — 2 for
// invocation problems (no lintable files, unreadable paths), 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vase"
	"vase/internal/exitcode"
	"vase/internal/source"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	werror := flag.Bool("Werror", false, "treat warnings as errors")
	verbose := flag.Bool("v", false, "also print info-severity findings")
	passes := flag.String("passes", "", "comma-separated analyzer names (default: all)")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, p := range vase.LintPasses() {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		usage(fmt.Errorf("usage: vaselint [flags] file.vhd dir/ ..."))
	}

	opts := vase.LintOptions{}
	if *passes != "" {
		opts.Passes = strings.Split(*passes, ",")
	}

	files, err := expandArgs(flag.Args())
	if err != nil {
		usage(err)
	}
	if len(files) == 0 {
		usage(fmt.Errorf("no .vhd or .vhif files among the arguments"))
	}

	exit := exitcode.OK
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			usage(err)
		}
		text := string(raw)
		var findings vase.Diagnostics
		var f *source.File
		if strings.HasSuffix(path, ".vhif") {
			findings, err = vase.LintVHIF(path, text, opts)
		} else {
			findings, err = vase.Lint(vase.Source{Name: path, Text: text}, opts)
			f = source.NewFile(path, text)
		}
		if err != nil {
			// A failing lint still renders its diagnostics with excerpts and
			// carets, not the capped one-line summary.
			fmt.Fprintln(os.Stderr, vase.RenderDiagnostics(err, vase.Source{Name: path, Text: text}))
			os.Exit(exitcode.Error)
		}
		if *werror {
			findings = findings.Promote()
		}
		min := vase.SeverityWarning
		if *verbose {
			min = vase.SeverityInfo
		}
		shown := findings.Filter(min)
		if *jsonOut {
			out, err := shown.JSON()
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(out)
			fmt.Println()
		} else if len(shown) > 0 {
			fmt.Print(shown.Render(f))
		}
		if shown.HasErrors() {
			exit = exitcode.Error
		}
	}
	if exit != exitcode.OK {
		os.Exit(exit)
	}
}

// expandArgs resolves file and directory arguments to the lintable files.
func expandArgs(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		entries, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			switch filepath.Ext(e.Name()) {
			case ".vhd", ".vhif":
				out = append(out, filepath.Join(a, e.Name()))
			}
		}
	}
	return out, nil
}

// fail reports an operational error (the lint ran and broke); usage reports
// an invocation problem. The distinct codes let scripts tell findings (1)
// from a mistyped command line (2).
func fail(err error) {
	exitcode.Fail("vaselint", exitcode.Error, err)
}

func usage(err error) {
	exitcode.Fail("vaselint", exitcode.Usage, err)
}

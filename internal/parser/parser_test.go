package parser

import (
	"strings"
	"testing"

	"vase/internal/ast"
)

// mustParse parses src and fails the test on any diagnostic.
func mustParse(t *testing.T, src string) *ast.DesignFile {
	t.Helper()
	df, err := Parse("test.vhd", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return df
}

const receiverSrc = `
entity telephone is
  port (
    quantity line  : in real is voltage;
    quantity local : in real is voltage;
    quantity earph : out real is voltage limited at 1.5 drives 270.0 at 285 mv peak
  );
end entity;

architecture behavioral of telephone is
  constant Aline  : real := 4.0;
  constant Alocal : real := 2.0;
  constant r1c    : real := 0.5;
  constant r2c    : real := 0.25;
  constant Vth    : real := 0.1;
  quantity rvar : real;
  signal c1 : bit;
begin
  earph == (Aline * line + Alocal * local) * rvar;
  if (c1 = '1') use
    rvar == r1c;
  else
    rvar == r1c + r2c;
  end use;
  process (line'above(Vth)) is
  begin
    if (line'above(Vth) = true) then
      c1 <= '1';
    else
      c1 <= '0';
    end if;
  end process;
end architecture;
`

func TestParseReceiver(t *testing.T) {
	df := mustParse(t, receiverSrc)
	ents := df.Entities()
	if len(ents) != 1 {
		t.Fatalf("entities = %d, want 1", len(ents))
	}
	e := ents[0]
	if e.Name.Canon != "telephone" {
		t.Errorf("entity name = %q", e.Name.Canon)
	}
	if len(e.Ports) != 3 {
		t.Fatalf("ports = %d, want 3", len(e.Ports))
	}
	earph := e.Ports[2]
	if earph.Mode != ast.ModeOut {
		t.Errorf("earph mode = %v, want out", earph.Mode)
	}
	if len(earph.Annotations) != 3 {
		t.Fatalf("earph annotations = %d, want 3 (voltage, limited, drives)", len(earph.Annotations))
	}
	names := []string{earph.Annotations[0].Name, earph.Annotations[1].Name, earph.Annotations[2].Name}
	want := []string{"voltage", "limited", "drives"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("annotation %d = %q, want %q", i, names[i], want[i])
		}
	}
	// "limited at 1.5" carries one argument; "drives 270.0 at 0.285 peak" two.
	if n := len(earph.Annotations[1].Args); n != 1 {
		t.Errorf("limited args = %d, want 1", n)
	}
	if n := len(earph.Annotations[2].Args); n != 2 {
		t.Errorf("drives args = %d, want 2", n)
	}

	archs := df.Architectures()
	if len(archs) != 1 {
		t.Fatalf("architectures = %d, want 1", len(archs))
	}
	a := archs[0]
	if a.Entity.Canon != "telephone" {
		t.Errorf("architecture entity = %q", a.Entity.Canon)
	}
	if len(a.Stmts) != 3 {
		t.Fatalf("concurrent statements = %d, want 3", len(a.Stmts))
	}
	if _, ok := a.Stmts[0].(*ast.SimpleSimultaneous); !ok {
		t.Errorf("stmt 0 is %T, want SimpleSimultaneous", a.Stmts[0])
	}
	if _, ok := a.Stmts[1].(*ast.SimultaneousIf); !ok {
		t.Errorf("stmt 1 is %T, want SimultaneousIf", a.Stmts[1])
	}
	if _, ok := a.Stmts[2].(*ast.Process); !ok {
		t.Errorf("stmt 2 is %T, want Process", a.Stmts[2])
	}
}

func TestUnitSuffixFolding(t *testing.T) {
	df := mustParse(t, receiverSrc)
	earph := df.Entities()[0].Ports[2]
	drives := earph.Annotations[2]
	// 285 mv folds to 0.285.
	lit, ok := drives.Args[1].(*ast.RealLit)
	if !ok {
		t.Fatalf("drives arg 1 is %T, want RealLit", drives.Args[1])
	}
	if lit.Value < 0.284 || lit.Value > 0.286 {
		t.Errorf("285 mv = %g, want 0.285", lit.Value)
	}
}

func TestSimultaneousIfElse(t *testing.T) {
	df := mustParse(t, receiverSrc)
	sif := df.Architectures()[0].Stmts[1].(*ast.SimultaneousIf)
	if len(sif.Then) != 1 || len(sif.Else) != 1 {
		t.Fatalf("then/else arms = %d/%d, want 1/1", len(sif.Then), len(sif.Else))
	}
	thenStmt := sif.Then[0].(*ast.SimpleSimultaneous)
	if ast.ExprString(thenStmt.LHS) != "rvar" {
		t.Errorf("then lhs = %q", ast.ExprString(thenStmt.LHS))
	}
}

func TestProcessSensitivityAttribute(t *testing.T) {
	df := mustParse(t, receiverSrc)
	proc := df.Architectures()[0].Stmts[2].(*ast.Process)
	if len(proc.Sensitivity) != 1 {
		t.Fatalf("sensitivity = %d, want 1", len(proc.Sensitivity))
	}
	attr, ok := proc.Sensitivity[0].(*ast.Attribute)
	if !ok {
		t.Fatalf("sensitivity entry is %T, want Attribute", proc.Sensitivity[0])
	}
	if attr.Attr != "above" {
		t.Errorf("attribute = %q, want above", attr.Attr)
	}
	if len(attr.Args) != 1 {
		t.Errorf("above args = %d, want 1", len(attr.Args))
	}
}

func TestOperatorPrecedence(t *testing.T) {
	df := mustParse(t, `
entity e is end entity;
architecture a of e is
  quantity x, y : real;
begin
  y == 1.0 + 2.0 * x;
end architecture;`)
	ss := df.Architectures()[0].Stmts[0].(*ast.SimpleSimultaneous)
	top, ok := ss.RHS.(*ast.Binary)
	if !ok {
		t.Fatalf("rhs is %T", ss.RHS)
	}
	if top.Op.String() != "+" {
		t.Fatalf("top op = %s, want +", top.Op)
	}
	if inner, ok := top.Y.(*ast.Binary); !ok || inner.Op.String() != "*" {
		t.Errorf("rhs of + = %T, want * binary", top.Y)
	}
}

func TestQuantityDotAttribute(t *testing.T) {
	df := mustParse(t, `
entity osc is end entity;
architecture a of osc is
  quantity x, v : real;
begin
  x'dot == v;
  v'dot == -x;
end architecture;`)
	stmts := df.Architectures()[0].Stmts
	if len(stmts) != 2 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	lhs := stmts[0].(*ast.SimpleSimultaneous).LHS
	attr, ok := lhs.(*ast.Attribute)
	if !ok || attr.Attr != "dot" {
		t.Fatalf("lhs = %s, want x'dot attribute", ast.ExprString(lhs))
	}
}

func TestProceduralWithWhileAndFor(t *testing.T) {
	df := mustParse(t, `
entity solver is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture beh of solver is
begin
  procedural is
    variable acc : real;
    variable n : real;
  begin
    acc := a;
    for i in 1 to 3 loop
      acc := acc + a;
    end loop;
    while acc > 1.0 loop
      acc := acc * 0.5;
      n := n + 1.0;
    end loop;
    y := acc;
  end procedural;
end architecture;`)
	proc := df.Architectures()[0].Stmts[0].(*ast.Procedural)
	if len(proc.Decls) != 2 {
		t.Fatalf("procedural decls = %d, want 2", len(proc.Decls))
	}
	if len(proc.Body) != 4 {
		t.Fatalf("procedural body = %d stmts, want 4", len(proc.Body))
	}
	if _, ok := proc.Body[1].(*ast.ForStmt); !ok {
		t.Errorf("body[1] is %T, want ForStmt", proc.Body[1])
	}
	w, ok := proc.Body[2].(*ast.WhileStmt)
	if !ok {
		t.Fatalf("body[2] is %T, want WhileStmt", proc.Body[2])
	}
	if len(w.Body) != 2 {
		t.Errorf("while body = %d stmts, want 2", len(w.Body))
	}
}

func TestSimultaneousCase(t *testing.T) {
	df := mustParse(t, `
entity sel is end entity;
architecture a of sel is
  signal mode : bit;
  quantity q : real;
begin
  case mode use
    when '0' => q == 1.0;
    when others => q == 2.0;
  end case;
end architecture;`)
	sc := df.Architectures()[0].Stmts[0].(*ast.SimultaneousCase)
	if len(sc.Arms) != 2 {
		t.Fatalf("case arms = %d, want 2", len(sc.Arms))
	}
	if sc.Arms[0].Choices == nil {
		t.Error("first arm should have explicit choices")
	}
	if sc.Arms[1].Choices != nil {
		t.Error("second arm should be others")
	}
}

func TestPackageAndFunction(t *testing.T) {
	df := mustParse(t, `
package utils is
  constant k : real := 2.0;
  function square(x : real) return real;
end package;
package body utils is
  function square(x : real) return real is
  begin
    return x * x;
  end function;
end package body;`)
	if len(df.Units) != 2 {
		t.Fatalf("units = %d, want 2", len(df.Units))
	}
	pk, ok := df.Units[0].(*ast.Package)
	if !ok {
		t.Fatalf("unit 0 is %T", df.Units[0])
	}
	if len(pk.Decls) != 2 {
		t.Errorf("package decls = %d, want 2", len(pk.Decls))
	}
	pb, ok := df.Units[1].(*ast.PackageBody)
	if !ok {
		t.Fatalf("unit 1 is %T", df.Units[1])
	}
	f := pb.Decls[0].(*ast.FunctionDecl)
	if len(f.Body) != 1 {
		t.Errorf("function body = %d stmts", len(f.Body))
	}
}

func TestLabelledStatements(t *testing.T) {
	df := mustParse(t, `
entity e is end entity;
architecture a of e is
  quantity q : real;
begin
  eq1: q == 1.0;
end architecture;`)
	ss := df.Architectures()[0].Stmts[0].(*ast.SimpleSimultaneous)
	if ss.Label != "eq1" {
		t.Errorf("label = %q, want eq1", ss.Label)
	}
}

func TestWaitRejected(t *testing.T) {
	_, err := Parse("t", `
entity e is end entity;
architecture a of e is
  signal s : bit;
begin
  process (s) is
  begin
    wait;
  end process;
end architecture;`)
	if err == nil || !strings.Contains(err.Error(), "wait") {
		t.Fatalf("expected wait diagnostic, got %v", err)
	}
}

func TestErrorRecovery(t *testing.T) {
	// A bad statement must not prevent parsing of subsequent units.
	df, err := Parse("t", `
entity e is end entity;
architecture a of e is
  quantity q : real;
begin
  q == ;
  q == 2.0;
end architecture;`)
	if err == nil {
		t.Fatal("expected a diagnostic")
	}
	if len(df.Architectures()) != 1 {
		t.Fatalf("architecture lost during recovery")
	}
}

func TestEndNameMismatchReported(t *testing.T) {
	_, err := Parse("t", "entity e is end entity f;")
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("expected end-name mismatch, got %v", err)
	}
}

func TestPrinterRoundTrip(t *testing.T) {
	df := mustParse(t, receiverSrc)
	printed := ast.FileString(df)
	df2, err := Parse("printed.vhd", printed)
	if err != nil {
		t.Fatalf("reparse of printed output failed: %v\n%s", err, printed)
	}
	printed2 := ast.FileString(df2)
	if printed != printed2 {
		t.Errorf("printer not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestUnaryMinus(t *testing.T) {
	df := mustParse(t, `
entity e is end entity;
architecture a of e is
  quantity x, y : real;
begin
  y == -x * 2.0;
end architecture;`)
	rhs := df.Architectures()[0].Stmts[0].(*ast.SimpleSimultaneous).RHS
	// Unary binds tighter than *, so the tree is (-x) * 2.0.
	bin, ok := rhs.(*ast.Binary)
	if !ok {
		t.Fatalf("rhs is %T", rhs)
	}
	if _, ok := bin.X.(*ast.Unary); !ok {
		t.Errorf("lhs of * is %T, want Unary", bin.X)
	}
}

func TestMultiNameDeclaration(t *testing.T) {
	df := mustParse(t, `
entity e is end entity;
architecture a of e is
  quantity x, y, z : real;
begin
  x == y + z;
end architecture;`)
	d := df.Architectures()[0].Decls[0].(*ast.ObjectDecl)
	if len(d.Names) != 3 {
		t.Errorf("names = %d, want 3", len(d.Names))
	}
}

func TestGenericClause(t *testing.T) {
	df := mustParse(t, `
entity amp is
  generic (gain : real := 10.0);
  port (quantity vin : in real; quantity vout : out real);
end entity;`)
	e := df.Entities()[0]
	if len(e.Generics) != 1 {
		t.Fatalf("generics = %d, want 1", len(e.Generics))
	}
	if e.Generics[0].Init == nil {
		t.Error("generic default missing")
	}
}

func TestLibraryUseClausesIgnored(t *testing.T) {
	df := mustParse(t, `
library ieee;
use ieee.math_real.all;
entity e is end entity;`)
	// Each clause leaves an inert LibClause node (the recovered tree covers
	// every token), but no semantic unit.
	if len(df.Units) != 3 {
		t.Fatalf("units = %d, want 3", len(df.Units))
	}
	for _, u := range df.Units[:2] {
		if _, ok := u.(*ast.LibClause); !ok {
			t.Fatalf("unit %T, want *ast.LibClause", u)
		}
	}
	if len(df.Entities()) != 1 {
		t.Fatalf("entities = %d, want 1", len(df.Entities()))
	}
}

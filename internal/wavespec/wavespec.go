// Package wavespec parses the textual waveform specifications shared by the
// vasesim CLI (-in name=spec) and the vased server (/v1/simulate request
// bodies):
//
//	dc:V           constant source
//	sine:AMP,FREQ  sinusoid (phase 0)
//	step:V0,V1,T0  V0 until T0, V1 after
//	ramp:SLOPE     linear ramp through the origin
//
// Keeping the grammar in one package guarantees a spec means the same
// waveform whether it arrives on a command line or in a JSON request.
package wavespec

import (
	"fmt"
	"strconv"
	"strings"

	"vase/internal/sim"
)

// Parse turns a spec like "sine:1.5,1000" into a simulation source.
func Parse(spec string) (sim.Source, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	nums := func(n int) ([]float64, error) {
		parts := strings.Split(rest, ",")
		if len(parts) != n {
			return nil, fmt.Errorf("waveform %q requires %d parameters", kind, n)
		}
		out := make([]float64, n)
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("waveform parameter %q: %v", p, err)
			}
			out[i] = v
		}
		return out, nil
	}
	switch kind {
	case "dc":
		v, err := nums(1)
		if err != nil {
			return nil, err
		}
		return sim.DC(v[0]), nil
	case "sine":
		v, err := nums(2)
		if err != nil {
			return nil, err
		}
		return sim.Sine(v[0], v[1], 0), nil
	case "step":
		v, err := nums(3)
		if err != nil {
			return nil, err
		}
		return sim.Step(v[0], v[1], v[2]), nil
	case "ramp":
		v, err := nums(1)
		if err != nil {
			return nil, err
		}
		return sim.Ramp(v[0]), nil
	}
	return nil, fmt.Errorf("unknown waveform kind %q (dc, sine, step, ramp)", kind)
}

// ParseMap parses a name->spec map (a JSON request's "inputs" object) into
// named simulation sources.
func ParseMap(specs map[string]string) (map[string]sim.Source, error) {
	out := make(map[string]sim.Source, len(specs))
	for name, spec := range specs {
		w, err := Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("input %q: %w", name, err)
		}
		out[name] = w
	}
	return out, nil
}

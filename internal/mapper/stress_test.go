// Stress layer for the shared incumbent bound: repeated parallel synthesis
// of the paper's Figure 6 example and the receiver application, meant to be
// run under `go test -race`. Every iteration must reproduce the sequential
// mapping, keep the explored-node accounting inside the full-enumeration
// envelope, and emit a well-formed decision-tree trace.
package mapper_test

import (
	"testing"

	"vase/internal/corpus"
	"vase/internal/mapper"
	"vase/internal/vhif"
)

// checkTreeWellFormed walks a traced decision tree and validates its
// structural invariants, returning the number of complete leaves.
func checkTreeWellFormed(t *testing.T, root *mapper.TreeNode) int {
	t.Helper()
	if root == nil {
		t.Fatal("no decision tree recorded despite Options.Trace")
	}
	complete := 0
	var walk func(n *mapper.TreeNode, isRoot bool)
	walk = func(n *mapper.TreeNode, isRoot bool) {
		if n.Complete {
			complete++
			if len(n.Children) != 0 {
				t.Errorf("complete leaf %q has %d children", n.Decision, len(n.Children))
			}
		}
		if n.Pruned && len(n.Children) != 0 {
			t.Errorf("pruned leaf %q has %d children", n.Decision, len(n.Children))
		}
		if n.Complete && n.Pruned {
			t.Errorf("node %q both complete and pruned", n.Decision)
		}
		if n.OpAmps < 0 {
			t.Errorf("node %q has negative op amp count %d", n.Decision, n.OpAmps)
		}
		if !isRoot && n.Decision == "" {
			t.Error("interior node with empty decision")
		}
		for _, c := range n.Children {
			walk(c, false)
		}
	}
	walk(root, true)
	return complete
}

func TestParallelStressSharedBound(t *testing.T) {
	iters := 100
	if testing.Short() {
		iters = 10
	}
	designs := []namedModule{
		{"fig6", corpus.Figure6Module()},
		{"receiver", compileVASS(t, "receiver", corpus.ByKey("receiver").Source)},
	}
	for _, nm := range designs {
		nm := nm
		t.Run(nm.key, func(t *testing.T) {
			stressDesign(t, nm.m, iters)
		})
	}
}

func stressDesign(t *testing.T, m *vhif.Module, iters int) {
	seqOpts := mapper.DefaultOptions()
	seqOpts.Workers = 1
	seq, err := mapper.Synthesize(m, seqOpts)
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	unbOpts := mapper.DefaultOptions()
	unbOpts.Workers = 1
	unbOpts.NoBounding = true
	unb, err := mapper.Synthesize(m, unbOpts)
	if err != nil {
		t.Fatalf("unbounded reference: %v", err)
	}
	wantDump := seq.Netlist.Dump()

	for i := 0; i < iters; i++ {
		opts := mapper.DefaultOptions()
		opts.Workers = 8
		opts.Trace = true
		res, err := mapper.Synthesize(m, opts)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got := res.Netlist.Dump(); got != wantDump {
			t.Fatalf("iteration %d: mapping diverged from sequential\n--- want ---\n%s\n--- got ---\n%s",
				i, wantDump, got)
		}
		st := res.Stats
		if st.NodesVisited <= 0 || st.NodesVisited > unb.Stats.NodesVisited {
			t.Fatalf("iteration %d: NodesVisited = %d, want in (0, %d] (full-enumeration envelope)",
				i, st.NodesVisited, unb.Stats.NodesVisited)
		}
		if st.CompleteMappings < 1 || st.CompleteMappings > unb.Stats.CompleteMappings {
			t.Fatalf("iteration %d: CompleteMappings = %d, want in [1, %d]",
				i, st.CompleteMappings, unb.Stats.CompleteMappings)
		}
		if st.CompleteMappings > st.NodesVisited {
			t.Fatalf("iteration %d: more completions (%d) than node visits (%d)",
				i, st.CompleteMappings, st.NodesVisited)
		}
		if st.Workers != 8 || st.Tasks < 1 {
			t.Fatalf("iteration %d: decomposition Workers=%d Tasks=%d", i, st.Workers, st.Tasks)
		}
		if n := checkTreeWellFormed(t, res.Tree); n != st.CompleteMappings {
			t.Fatalf("iteration %d: trace shows %d complete leaves, stats say %d",
				i, n, st.CompleteMappings)
		}
	}
}

package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vase/internal/corpus"
	"vase/internal/diag"
	"vase/internal/lint"
	"vase/internal/source"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden runs the full linter over every fixture in testdata and
// compares the rendered diagnostics (with source excerpts and carets, so
// spans are part of the contract) against the .golden file next to it.
func TestGolden(t *testing.T) {
	vhd, err := filepath.Glob(filepath.Join("testdata", "*.vhd"))
	if err != nil {
		t.Fatal(err)
	}
	vhif, err := filepath.Glob(filepath.Join("testdata", "*.vhif"))
	if err != nil {
		t.Fatal(err)
	}
	fixtures := append(vhd, vhif...)
	if len(fixtures) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	for _, path := range fixtures {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			name := filepath.Base(path)
			text := string(raw)
			var list diag.List
			var f *source.File
			switch filepath.Ext(path) {
			case ".vhd":
				list, err = lint.CheckSource(name, text, lint.Options{})
				f = source.NewFile(name, text)
			case ".vhif":
				list, err = lint.CheckVHIF(name, text, lint.Options{})
			default:
				t.Fatalf("unexpected fixture extension %q", path)
			}
			if err != nil {
				t.Fatalf("lint %s: %v", name, err)
			}
			got := list.Render(f)
			goldenPath := path + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenCoverage asserts that the fixtures exercise every analyzer: each
// pass must produce at least one of its codes somewhere in the goldens.
func TestGoldenCoverage(t *testing.T) {
	codesOf := map[string][]diag.Code{
		"unused":       {diag.CodeUnusedObject, diag.CodeWriteOnlySignal, diag.CodeUnusedFunction},
		"fsmstates":    {diag.CodeUnreachableState, diag.CodeDeadEndState},
		"algloop":      {diag.CodeLintLoop},
		"dimension":    {diag.CodeDimension},
		"divzero":      {diag.CodeDivByZero, diag.CodeDivMaybeZero},
		"constrange":   {diag.CodeConstOutOfRange, diag.CodeDeadThreshold},
		"annotations":  {diag.CodeAnnFreqOrder, diag.CodeAnnRangeOrder, diag.CodeAnnWrongDir, diag.CodeAnnBadDrive, diag.CodeAnnPeakVsLimit},
		"subset":       {diag.CodeSubsetProcess, diag.CodeSubsetLoop, diag.CodeSubsetComposite, diag.CodeSubsetPortMode, diag.CodeSubsetDerivative},
		"assertstatic": {diag.CodeAssertViolated, diag.CodeAssertVacuous},
		"deadbranch":   {diag.CodeDeadBranch},
		"deadnet":      {diag.CodeDeadNet},
		"saturation":   {diag.CodeSaturation},
	}
	goldens, err := filepath.Glob(filepath.Join("testdata", "*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, g := range goldens {
		raw, err := os.ReadFile(g)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(raw)
	}
	text := all.String()
	for _, p := range lint.Passes() {
		codes, ok := codesOf[p.Name]
		if !ok {
			t.Errorf("pass %q has no expected codes registered in this test", p.Name)
			continue
		}
		hit := false
		for _, c := range codes {
			if strings.Contains(text, string(c)) {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("no fixture triggers pass %q (none of %v appear in the goldens)", p.Name, codes)
		}
	}
}

// TestCorpusClean locks in that the shipped corpus lints without warnings or
// errors: the linter must not cry wolf on the five known-good designs.
func TestCorpusClean(t *testing.T) {
	for _, app := range corpus.Applications() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			list, err := lint.CheckSource(app.Key+".vhd", app.Source, lint.Options{})
			if err != nil {
				t.Fatalf("lint: %v", err)
			}
			if noisy := list.Filter(diag.Warning); len(noisy) > 0 {
				t.Errorf("corpus %s is not lint-clean:\n%s", app.Key, noisy.Render(source.NewFile(app.Key+".vhd", app.Source)))
			}
		})
	}
}

func TestPassRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range lint.Passes() {
		if p.Name == "" || p.Doc == "" || p.Run == nil {
			t.Errorf("pass %+v is missing a name, doc or run function", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate pass name %q", p.Name)
		}
		seen[p.Name] = true
		if lint.PassByName(p.Name) != p {
			t.Errorf("lint.PassByName(%q) does not round-trip", p.Name)
		}
	}
	if lint.PassByName("nosuch") != nil {
		t.Error("PassByName accepted an unknown name")
	}
}

func TestSelectPasses(t *testing.T) {
	src := `entity e is
  port (quantity v1 : in real is voltage;
        quantity i1 : in real is current;
        quantity vo : out real is voltage);
end entity;
architecture a of e is
  signal dead : bit;
begin
  vo == v1 + i1;
end architecture;
`
	all, err := lint.CheckSource("sel.vhd", src, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Count(diag.Warning) < 2 {
		t.Fatalf("expected both the dimension and unused findings, got:\n%s", all.Error())
	}
	only, err := lint.CheckSource("sel.vhd", src, lint.Options{Passes: []string{"dimension"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range only {
		if d.Code != diag.CodeDimension {
			t.Errorf("pass selection leaked %s", d.Code)
		}
	}
	if len(only) == 0 {
		t.Error("selected dimension pass found nothing")
	}
	if _, err := lint.CheckSource("sel.vhd", src, lint.Options{Passes: []string{"nosuch"}}); err == nil {
		t.Error("unknown pass name was accepted")
	}
}

// TestBrokenSourceStillLints verifies the keep-going contract: semantic
// errors do not stop the source-level passes.
func TestBrokenSourceStillLints(t *testing.T) {
	src := `entity broken is
  port (quantity vin : in real is voltage;
        quantity vout : out real);
end entity;
architecture a of broken is
  signal dead : bit;
begin
  vout == vin + nosuch;
end architecture;
`
	list, err := lint.CheckSource("broken.vhd", src, lint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !list.HasErrors() {
		t.Fatalf("expected the undeclared-name error, got:\n%s", list.Error())
	}
	foundUnused := false
	for _, d := range list {
		if d.Code == diag.CodeUnusedObject {
			foundUnused = true
		}
	}
	if !foundUnused {
		t.Errorf("unused pass did not run on the broken design:\n%s", list.Error())
	}
}

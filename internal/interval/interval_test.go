package interval

import (
	"math"
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	a, b := New(-1, 2), New(3, 5)
	if got := a.Add(b); got != (Interval{2, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Interval{-6, -1}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Neg(); got != (Interval{-2, 1}) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Mul(b); got != (Interval{-5, 10}) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Abs(); got != (Interval{0, 2}) {
		t.Errorf("Abs = %v", got)
	}
	if got := a.Hull(b); got != (Interval{-1, 5}) {
		t.Errorf("Hull = %v", got)
	}
	if got := a.Min(b); got != (Interval{-1, 2}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != (Interval{3, 5}) {
		t.Errorf("Max = %v", got)
	}
	if got, ok := a.Intersect(New(0, 10)); !ok || got != (Interval{0, 2}) {
		t.Errorf("Intersect = %v ok=%v", got, ok)
	}
	if _, ok := a.Intersect(New(3, 4)); ok {
		t.Error("disjoint Intersect reported ok")
	}
	if New(1.4, 1.5) != (Interval{1.4, 1.5}) || New(1.5, 1.4) != (Interval{1.4, 1.5}) {
		t.Error("New does not normalize")
	}
}

func TestTopIsAbsorbing(t *testing.T) {
	top := Top()
	if !top.IsTop() || top.Bounded() {
		t.Fatal("Top misclassified")
	}
	// 0 * Top must stay sound (and finite at zero), not NaN.
	z := top.Mul(Point(0))
	if z != Point(0) {
		t.Errorf("Top*{0} = %v, want {0}", z)
	}
	if got := top.Clamp(1.5); got != (Interval{-1.5, 1.5}) {
		t.Errorf("Top.Clamp = %v", got)
	}
	if got := top.Exp(); !got.Bounded() {
		t.Errorf("Top.Exp = %v, want bounded (clampExp)", got)
	}
	if got := top.Sin(); got != (Interval{-1, 1}) {
		t.Errorf("Top.Sin = %v", got)
	}
}

func TestDivMatchesSafeDiv(t *testing.T) {
	// Mirror sim's safeDiv guard.
	safeDiv := func(num, den float64) float64 {
		if math.Abs(den) < DivEps {
			if den < 0 {
				den = -DivEps
			} else {
				den = DivEps
			}
		}
		return num / den
	}
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ a, b Interval }{
		{New(1, 2), New(3, 4)},
		{New(-2, 2), New(0.5, 1)},
		{New(1, 1), New(-1, 1)},   // denominator straddles zero
		{New(-3, -1), New(-2, 0)}, // zero endpoint
		{New(0, 0), New(0, 0)},
		{New(-5, 7), New(-1e-12, 1e-12)}, // entirely inside the guard band
	}
	for _, tc := range cases {
		hull := tc.a.Div(tc.b)
		for i := 0; i < 2000; i++ {
			x := tc.a.Lo + rng.Float64()*tc.a.Span()
			y := tc.b.Lo + rng.Float64()*tc.b.Span()
			v := safeDiv(x, y)
			if v < hull.Lo-1e-9*math.Abs(v) || v > hull.Hi+1e-9*math.Abs(v) {
				t.Fatalf("Div(%v,%v)=%v misses safeDiv(%v,%v)=%v", tc.a, tc.b, hull, x, y, v)
			}
		}
	}
}

func TestElementaryHulls(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(name string, a Interval, hull Interval, f func(float64) float64) {
		t.Helper()
		for i := 0; i < 2000; i++ {
			x := a.Lo + rng.Float64()*a.Span()
			v := f(x)
			if v < hull.Lo-1e-12 || v > hull.Hi+1e-12 {
				t.Fatalf("%s(%v)=%v misses f(%v)=%v", name, a, hull, x, v)
			}
		}
	}
	safeLog := func(x float64) float64 { return math.Log(math.Max(LogEps, x)) }
	clampExp := func(x float64) float64 {
		return math.Exp(math.Min(ExpClamp, math.Max(-ExpClamp, x)))
	}
	for _, a := range []Interval{New(-2, 3), New(0.1, 9), New(-4, -1), New(-0.5, 0.5)} {
		check("Log", a, a.Log(), safeLog)
		check("Exp", a, a.Exp(), clampExp)
		check("Sqrt", a, a.Sqrt(), func(x float64) float64 { return math.Sqrt(math.Max(0, x)) })
		check("Sin", a, a.Sin(), math.Sin)
		check("Cos", a, a.Cos(), math.Cos)
		check("Clamp", a, a.Clamp(1.5), func(x float64) float64 {
			return math.Max(-1.5, math.Min(1.5, x))
		})
	}
}

func TestSinExtrema(t *testing.T) {
	// [0, pi] encloses the maximum but not the minimum.
	got := New(0, math.Pi).Sin()
	if got.Hi != 1 {
		t.Errorf("Sin[0,pi].Hi = %v, want 1", got.Hi)
	}
	if got.Lo < -1e-9 {
		t.Errorf("Sin[0,pi].Lo = %v, want ~0", got.Lo)
	}
	// A narrow interval away from extrema stays narrow.
	got = New(0.1, 0.2).Sin()
	if got.Hi >= 0.9 || got.Lo <= 0 {
		t.Errorf("Sin[0.1,0.2] = %v, want tight", got)
	}
	if got := New(-0.1, 0.1).Cos(); got.Hi != 1 {
		t.Errorf("Cos[-0.1,0.1].Hi = %v, want 1", got.Hi)
	}
}

func TestSignHull(t *testing.T) {
	cases := []struct {
		in   Interval
		want Interval
	}{
		{New(1, 2), Point(1)},
		{New(-2, -1), Point(-1)},
		{Point(0), Point(0)},
		{New(0, 3), Interval{0, 1}},
		{New(-3, 0), Interval{-1, 0}},
		{New(-1, 1), Interval{-1, 1}},
	}
	for _, tc := range cases {
		if got := tc.in.SignHull(); got != tc.want {
			t.Errorf("SignHull(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestWiden(t *testing.T) {
	a := New(0, 1)
	if got := a.Widen(New(0.2, 0.8)); got != a {
		t.Errorf("Widen inside = %v, want unchanged", got)
	}
	w := a.Widen(New(-1, 0.5))
	if !math.IsInf(w.Lo, -1) || w.Hi != 1 {
		t.Errorf("Widen low escape = %v", w)
	}
	w = a.Widen(New(0, 2))
	if w.Lo != 0 || !math.IsInf(w.Hi, 1) {
		t.Errorf("Widen high escape = %v", w)
	}
	// Widening chains terminate: after both bounds widen the result is Top
	// and absorbs everything.
	w = a.Widen(Top())
	if !w.IsTop() || !w.Widen(New(-1e300, 1e300)).IsTop() {
		t.Errorf("Widen to Top = %v", w)
	}
}

func TestTriLogic(t *testing.T) {
	if True.And(Maybe) != Maybe || False.And(Maybe) != False || True.And(True) != True {
		t.Error("And table wrong")
	}
	if False.Or(Maybe) != Maybe || True.Or(False) != True || False.Or(False) != False {
		t.Error("Or table wrong")
	}
	if True.Not() != False || Maybe.Not() != Maybe {
		t.Error("Not table wrong")
	}
	if FromBool(true) != True || FromBool(false) != False {
		t.Error("FromBool wrong")
	}
	if Maybe.String() != "maybe" || True.String() != "true" || False.String() != "false" {
		t.Error("String wrong")
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a    Interval
		op   string
		b    Interval
		want Tri
	}{
		{New(0, 1), "<", New(2, 3), True},
		{New(2, 3), "<", New(0, 1), False},
		{New(0, 2), "<", New(1, 3), Maybe},
		{New(0, 1), "<=", New(1, 3), True},
		{New(1.01, 2), "<=", New(0, 1), False},
		{New(2, 3), ">", New(0, 1), True},
		{New(0, 1), ">=", New(1, 2), Maybe},
		{New(1, 1), "=", New(1, 1), True},
		{New(0, 1), "=", New(2, 3), False},
		{New(0, 1), "=", New(1, 2), Maybe},
		{New(0, 1), "/=", New(2, 3), True},
		{New(1, 1), "/=", New(1, 1), False},
		{New(0, 1), "??", New(0, 1), Maybe},
	}
	for _, tc := range cases {
		if got := Cmp(tc.a, tc.op, tc.b); got != tc.want {
			t.Errorf("Cmp(%v %s %v) = %v, want %v", tc.a, tc.op, tc.b, got, tc.want)
		}
	}
}

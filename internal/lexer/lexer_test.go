package lexer

import (
	"testing"

	"vase/internal/diag"
	"vase/internal/source"
	"vase/internal/token"
)

func scan(t *testing.T, src string) []Token {
	t.Helper()
	var errs diag.List
	toks := ScanAll(source.NewFile("test.vhd", src), &errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("unexpected scan errors: %v", err)
	}
	return toks
}

func kinds(toks []Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	want = append(want, token.EOF)
	got := kinds(scan(t, src))
	if len(got) != len(want) {
		t.Fatalf("scan(%q): got %d tokens %v, want %d %v", src, len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan(%q): token %d = %s, want %s", src, i, got[i], want[i])
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	expectKinds(t, "ENTITY entity Entity eNtItY", token.ENTITY, token.ENTITY, token.ENTITY, token.ENTITY)
}

func TestIdentifiers(t *testing.T) {
	toks := scan(t, "earph rvar r1c Aline")
	for i, want := range []string{"earph", "rvar", "r1c", "Aline"} {
		if toks[i].Kind != token.IDENT || toks[i].Text != want {
			t.Errorf("token %d = %s %q, want identifier %q", i, toks[i].Kind, toks[i].Text, want)
		}
	}
}

func TestNumericLiterals(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"270", token.INTLIT},
		{"1_000", token.INTLIT},
		{"285.0", token.REALLIT},
		{"285.0e-3", token.REALLIT},
		{"1.5E6", token.REALLIT},
		{"16#ff#", token.INTLIT},
		{"2#1010#", token.INTLIT},
	}
	for _, c := range cases {
		toks := scan(t, c.src)
		if toks[0].Kind != c.kind {
			t.Errorf("scan(%q) = %s, want %s", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Text != c.src {
			t.Errorf("scan(%q) text = %q", c.src, toks[0].Text)
		}
	}
}

func TestIntegerExponentNotConsumedWithoutDigits(t *testing.T) {
	// "3e" is the integer 3 followed by identifier e, not a malformed real.
	expectKinds(t, "3e", token.INTLIT, token.IDENT)
}

func TestBitAndCharLiterals(t *testing.T) {
	toks := scan(t, "c1 <= '1';")
	want := []token.Kind{token.IDENT, token.LE, token.BITLIT, token.SEMICOLON, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
	if toks[2].Text != "1" {
		t.Errorf("bit literal text = %q, want \"1\"", toks[2].Text)
	}
}

func TestAttributeTickAfterIdent(t *testing.T) {
	// line'ABOVE(Vth) must scan the apostrophe as a tick, not a char literal.
	expectKinds(t, "line'ABOVE(Vth)",
		token.IDENT, token.TICK, token.IDENT, token.LPAREN, token.IDENT, token.RPAREN)
}

func TestAttributeTickAfterParen(t *testing.T) {
	expectKinds(t, "(a + b)'dot",
		token.LPAREN, token.IDENT, token.PLUS, token.IDENT, token.RPAREN, token.TICK, token.IDENT)
}

func TestTickThenBitLiteral(t *testing.T) {
	// After '=' a '1' is a bit literal again.
	expectKinds(t, "c1 = '1'", token.IDENT, token.EQ, token.BITLIT)
}

func TestOperators(t *testing.T) {
	expectKinds(t, "+ - * / ** == = /= < <= > >= := => &",
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.DSTAR,
		token.EQEQ, token.EQ, token.NEQ, token.LT, token.LE, token.GT,
		token.GE, token.ASSIGN, token.ARROW, token.AMP)
}

func TestPunctuation(t *testing.T) {
	expectKinds(t, "( ) , ; : . |",
		token.LPAREN, token.RPAREN, token.COMMA, token.SEMICOLON,
		token.COLON, token.DOT, token.BAR)
}

func TestCommentsSkipped(t *testing.T) {
	expectKinds(t, "a -- this is a comment == b\nb",
		token.IDENT, token.IDENT)
}

func TestSimultaneousStatement(t *testing.T) {
	expectKinds(t, "earph == (Aline * line + Alocal * local) * rvar;",
		token.IDENT, token.EQEQ, token.LPAREN, token.IDENT, token.STAR,
		token.IDENT, token.PLUS, token.IDENT, token.STAR, token.IDENT,
		token.RPAREN, token.STAR, token.IDENT, token.SEMICOLON)
}

func TestStringLiteral(t *testing.T) {
	toks := scan(t, `"0101"`)
	if toks[0].Kind != token.STRLIT || toks[0].Text != "0101" {
		t.Errorf("got %s %q, want string \"0101\"", toks[0].Kind, toks[0].Text)
	}
}

func TestStringEscapedQuote(t *testing.T) {
	toks := scan(t, `"a""b"`)
	if toks[0].Text != `a"b` {
		t.Errorf("escaped quote text = %q, want %q", toks[0].Text, `a"b`)
	}
}

func TestUnterminatedStringReported(t *testing.T) {
	var errs diag.List
	ScanAll(source.NewFile("t", `"abc`), &errs)
	if errs.Len() == 0 {
		t.Fatal("expected error for unterminated string")
	}
}

func TestIllegalCharacterReported(t *testing.T) {
	var errs diag.List
	toks := ScanAll(source.NewFile("t", "a $ b"), &errs)
	if errs.Len() == 0 {
		t.Fatal("expected error for illegal character")
	}
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("token 1 = %s, want ILLEGAL", toks[1].Kind)
	}
}

func TestSpans(t *testing.T) {
	toks := scan(t, "abc def")
	if toks[0].Span.Start != 0 || toks[0].Span.End != 3 {
		t.Errorf("first span = [%d,%d), want [0,3)", toks[0].Span.Start, toks[0].Span.End)
	}
	if toks[1].Span.Start != 4 || toks[1].Span.End != 7 {
		t.Errorf("second span = [%d,%d), want [4,7)", toks[1].Span.Start, toks[1].Span.End)
	}
}

func TestTrailingUnderscoreRejected(t *testing.T) {
	var errs diag.List
	ScanAll(source.NewFile("t", "bad_ "), &errs)
	if errs.Len() == 0 {
		t.Fatal("expected error for trailing underscore")
	}
}

func TestWhitespaceVariants(t *testing.T) {
	expectKinds(t, "a\tb\r\nc", token.IDENT, token.IDENT, token.IDENT)
}

func TestEmptyInput(t *testing.T) {
	expectKinds(t, "")
}

func TestFigure2Snippet(t *testing.T) {
	src := `
ENTITY telephone IS
PORT (
  QUANTITY line : IN real IS voltage;
  QUANTITY earph : OUT real IS voltage limited
);
END ENTITY;`
	var errs diag.List
	toks := ScanAll(source.NewFile("fig2", src), &errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("scan errors: %v", err)
	}
	if len(toks) < 20 {
		t.Fatalf("too few tokens: %d", len(toks))
	}
	if toks[0].Kind != token.ENTITY {
		t.Errorf("first token = %s, want entity", toks[0].Kind)
	}
}

package absint

import (
	"math"
	"testing"

	"vase/internal/interval"
	"vase/internal/vhif"
)

// module wraps a single graph with the given input-port range
// annotations (name -> [lo, hi]; absent names stay unbounded).
func module(g *vhif.Graph, ranges map[string][2]float64) *vhif.Module {
	m := &vhif.Module{Name: "t", Graphs: []*vhif.Graph{g}}
	for _, b := range g.InputBlocks() {
		p := &vhif.Port{Name: b.Name, Dir: vhif.DirIn, Kind: vhif.PortQuantity, Voltage: true}
		if r, ok := ranges[b.Name]; ok {
			p.RangeLo, p.RangeHi = r[0], r[1]
		}
		m.Ports = append(m.Ports, p)
	}
	return m
}

func TestCombinationalChain(t *testing.T) {
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	gain := g.AddBlock(vhif.BGain, "g", in.Out)
	gain.Param = 3
	neg := g.AddBlock(vhif.BNeg, "n", gain.Out)
	sum := g.AddBlock(vhif.BAdd, "s", gain.Out, neg.Out)
	r := Analyze(module(g, map[string][2]float64{"u": {-1, 2}}))

	if got := r.Net(gain.Out); got != (interval.Interval{Lo: -3, Hi: 6}) {
		t.Errorf("gain hull = %v", got)
	}
	// The interval domain cannot see that g + (-g) cancels; it must still
	// be sound.
	if got := r.Net(sum.Out); !((interval.Interval{Lo: 0, Hi: 0}).Within(got)) {
		t.Errorf("sum hull %v does not contain 0", got)
	}
	if r.Widened {
		t.Error("combinational chain should not widen")
	}
}

func TestUnannotatedInputIsUnbounded(t *testing.T) {
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	gain := g.AddBlock(vhif.BGain, "g", in.Out)
	gain.Param = 2
	r := Analyze(module(g, nil))
	if got := r.Net(gain.Out); !got.IsTop() {
		t.Errorf("gain of unbounded input = %v, want Top", got)
	}
}

func TestLimiterBoundsUnboundedInput(t *testing.T) {
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	lim := g.AddBlock(vhif.BLimiter, "l", in.Out)
	lim.Param = 1.5
	r := Analyze(module(g, nil))
	if got := r.Net(lim.Out); got != (interval.Interval{Lo: -1.5, Hi: 1.5}) {
		t.Errorf("limiter hull = %v, want [-1.5, 1.5]", got)
	}
}

func TestIntegratorContraction(t *testing.T) {
	// s' = k*(u - s): a contracting lag; s must stay inside
	// hull({0}, range(u)) = [0, 2].
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	integ := g.AddBlock(vhif.BIntegrator, "s", nil)
	diff := g.AddBlock(vhif.BSub, "d", in.Out, integ.Out)
	gain := g.AddBlock(vhif.BGain, "k", diff.Out)
	gain.Param = 3
	integ.Inputs[0] = gain.Out
	gain.Out.Readers = append(gain.Out.Readers, integ)

	r := Analyze(module(g, map[string][2]float64{"u": {0, 2}}))
	got := r.Net(integ.Out)
	want := interval.Interval{Lo: 0, Hi: 2}
	if got != want {
		t.Errorf("contracting state hull = %v, want %v", got, want)
	}
	if r.Widened {
		t.Error("contracting loop should not widen")
	}
}

func TestIntegratorRamp(t *testing.T) {
	// s' = u with u >= 1: a ramp; only the one-sided bound is sound.
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	integ := g.AddBlock(vhif.BIntegrator, "s", in.Out)
	r := Analyze(module(g, map[string][2]float64{"u": {1, 2}}))
	got := r.Net(integ.Out)
	if got.Lo != 0 || !math.IsInf(got.Hi, 1) {
		t.Errorf("ramp hull = %v, want [0, +Inf)", got)
	}
}

func TestIntegratorExpansiveIsTop(t *testing.T) {
	// s' = +2s: expansive feedback; no finite bound is sound.
	g := vhif.NewGraph("main")
	integ := g.AddBlock(vhif.BIntegrator, "s", nil)
	gain := g.AddBlock(vhif.BGain, "k", integ.Out)
	gain.Param = 2
	integ.Inputs[0] = gain.Out
	gain.Out.Readers = append(gain.Out.Readers, integ)
	r := Analyze(module(g, nil))
	if got := r.Net(integ.Out); !got.IsTop() {
		t.Errorf("expansive state hull = %v, want Top", got)
	}
}

func TestBranchSensitivityMux(t *testing.T) {
	// The comparator input [2, 3] is strictly above the threshold 1, so
	// the control is constant-true and the mux can only select its first
	// input: the hull must be {5}, not [-5, 5].
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	cmp := g.AddBlock(vhif.BComparator, "c", in.Out)
	cmp.Param = 1
	c5 := g.AddBlock(vhif.BConst, "p5")
	c5.Param = 5
	cm5 := g.AddBlock(vhif.BConst, "m5")
	cm5.Param = -5
	mux := g.AddBlock(vhif.BMux, "m", c5.Out, cm5.Out)
	mux.SetCtrl(g, cmp.Out)

	r := Analyze(module(g, map[string][2]float64{"u": {2, 3}}))
	if got := r.Ctrl(cmp.Out); got != interval.True {
		t.Errorf("comparator truth = %v, want true", got)
	}
	if got := r.Net(mux.Out); got != interval.Point(5) {
		t.Errorf("mux hull = %v, want {5}", got)
	}
}

func TestBranchSensitivitySwitchAndNot(t *testing.T) {
	// Input [−3, −2] is at or below the threshold 0: constant-false.
	// The switch outputs 0; through BNot the inverted control is
	// constant-true and the second switch passes its input.
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	cmp := g.AddBlock(vhif.BSchmitt, "c", in.Out)
	cmp.Param = 0
	cmp.Hyst = 0.1
	sw := g.AddBlock(vhif.BSwitch, "sw", in.Out)
	sw.SetCtrl(g, cmp.Out)
	inv := g.AddBlock(vhif.BNot, "inv", cmp.Out)
	sw2 := g.AddBlock(vhif.BSwitch, "sw2", in.Out)
	sw2.SetCtrl(g, inv.Out)

	r := Analyze(module(g, map[string][2]float64{"u": {-3, -2}}))
	if got := r.Ctrl(cmp.Out); got != interval.False {
		t.Errorf("schmitt truth = %v, want false", got)
	}
	if got := r.Net(sw.Out); got != interval.Point(0) {
		t.Errorf("open switch hull = %v, want {0}", got)
	}
	if got := r.Net(sw2.Out); got != (interval.Interval{Lo: -3, Hi: -2}) {
		t.Errorf("closed switch hull = %v, want input", got)
	}
}

func TestMaybeControlHullsBothBranches(t *testing.T) {
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	cmp := g.AddBlock(vhif.BComparator, "c", in.Out)
	cmp.Param = 0
	c5 := g.AddBlock(vhif.BConst, "p5")
	c5.Param = 5
	cm5 := g.AddBlock(vhif.BConst, "m5")
	cm5.Param = -5
	mux := g.AddBlock(vhif.BMux, "m", c5.Out, cm5.Out)
	mux.SetCtrl(g, cmp.Out)
	r := Analyze(module(g, map[string][2]float64{"u": {-1, 1}}))
	if got := r.Ctrl(cmp.Out); got != interval.Maybe {
		t.Errorf("comparator truth = %v, want maybe", got)
	}
	if got := r.Net(mux.Out); got != (interval.Interval{Lo: -5, Hi: 5}) {
		t.Errorf("mux hull = %v, want [-5, 5]", got)
	}
}

func TestWideningTerminatesGrowingLoop(t *testing.T) {
	// Two cross-coupled sample-and-hold stages with gain 2 in the loop:
	// the concrete iteration diverges geometrically, so the ascending
	// analysis keeps growing until widening forces the hulls to
	// infinity. The test is that Analyze terminates at all (in a bounded
	// number of passes) and reports the widening.
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	sh1 := g.AddBlock(vhif.BSampleHold, "sh1", nil)
	sh2 := g.AddBlock(vhif.BSampleHold, "sh2", nil)
	g1 := g.AddBlock(vhif.BGain, "g1", sh2.Out)
	g1.Param = 2
	add := g.AddBlock(vhif.BAdd, "a", in.Out, g1.Out)
	sh1.Inputs[0] = add.Out
	add.Out.Readers = append(add.Out.Readers, sh1)
	g2 := g.AddBlock(vhif.BGain, "g2", sh1.Out)
	g2.Param = 2
	sh2.Inputs[0] = g2.Out
	g2.Out.Readers = append(g2.Out.Readers, sh2)

	opts := Options{MaxIter: 4}
	r := AnalyzeWith(module(g, map[string][2]float64{"u": {1, 1}}), opts)
	if !r.Widened {
		t.Error("diverging loop did not widen")
	}
	if r.Iterations > 4+2*6+4+1 {
		t.Errorf("widening did not terminate promptly: %d passes", r.Iterations)
	}
	if got := r.Net(sh1.Out); got.Hi != math.Inf(1) {
		t.Errorf("diverging state hull = %v, want +Inf upper bound", got)
	}
}

func TestSampleHoldContractionLoop(t *testing.T) {
	// sh_{k+1} = 0.5*sh_k + u with |u| <= 1: discrete contraction; the
	// affine refinement bounds the iteration by |A|/(1-|B|) = 2.
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	sh := g.AddBlock(vhif.BSampleHold, "sh", nil)
	half := g.AddBlock(vhif.BGain, "h", sh.Out)
	half.Param = 0.5
	add := g.AddBlock(vhif.BAdd, "a", in.Out, half.Out)
	sh.Inputs[0] = add.Out
	add.Out.Readers = append(add.Out.Readers, sh)

	r := Analyze(module(g, map[string][2]float64{"u": {-1, 1}}))
	got := r.Net(sh.Out)
	if !got.Bounded() || got.MaxAbs() > 2+1e-9 {
		t.Errorf("contracting S/H hull = %v, want within [-2, 2]", got)
	}
	if r.Widened && got.IsTop() {
		t.Errorf("contraction refinement failed to rescue the widened loop")
	}
}

func TestFilterLowPassBound(t *testing.T) {
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "u")
	f := g.AddBlock(vhif.BFilter, "f", in.Out)
	f.Param = 1e3 // low-pass corner
	r := Analyze(module(g, map[string][2]float64{"u": {-2, 5}}))
	want := interval.Interval{Lo: -2, Hi: 5}
	if got := r.Net(f.Out); got != want {
		t.Errorf("low-pass hull = %v, want %v", got, want)
	}
	// Band-pass has no sound static envelope.
	g2 := vhif.NewGraph("main")
	in2 := g2.AddBlock(vhif.BInput, "u")
	bp := g2.AddBlock(vhif.BFilter, "bp", in2.Out)
	bp.Param, bp.Param2 = 2e3, 1e3
	r2 := Analyze(module(g2, map[string][2]float64{"u": {-1, 1}}))
	if got := r2.Net(bp.Out); !got.IsTop() {
		t.Errorf("band-pass hull = %v, want Top", got)
	}
}

func TestComparatorCycleStaysSound(t *testing.T) {
	// A comparator watching the mux it controls: the bottom-strict
	// comparator transfer cannot break the cycle, so the resolver must
	// fall back to Maybe / hull-of-branches instead of leaving bottoms.
	g := vhif.NewGraph("main")
	c1 := g.AddBlock(vhif.BConst, "c1")
	c1.Param = 1
	c2 := g.AddBlock(vhif.BConst, "c2")
	c2.Param = -1
	cmp := g.AddBlock(vhif.BComparator, "c", nil)
	cmp.Param = 0
	mux := g.AddBlock(vhif.BMux, "m", c1.Out, c2.Out)
	mux.SetCtrl(g, cmp.Out)
	cmp.Inputs = []*vhif.Net{mux.Out}
	mux.Out.Readers = append(mux.Out.Readers, cmp)

	r := Analyze(module(g, nil))
	if got := r.Ctrl(cmp.Out); got != interval.Maybe {
		t.Errorf("cyclic comparator truth = %v, want maybe", got)
	}
	if got := r.Net(mux.Out); !((interval.Interval{Lo: -1, Hi: 1}).Within(got)) {
		t.Errorf("cyclic mux hull = %v, want to contain [-1, 1]", got)
	}
}

package sema

import (
	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/source"
)

// Design is the semantic model of one analyzed entity/architecture pair,
// ready for compilation to VHIF.
type Design struct {
	Name   string
	Entity *ast.Entity
	Arch   *ast.Architecture
	File   *source.File
	// EntityFile is the file declaring the entity; it differs from File only
	// in multi-file projects where the architecture lives elsewhere.
	EntityFile *source.File
	Scope      *Scope

	// Partial marks a design recovered from a broken parse: its tree (or the
	// surrounding file/environment) contains ERROR nodes. Analysis passes
	// (lint, absint) accept partial designs; code generation (compile, map)
	// refuses them, since a skipped region may hide arbitrary behavior.
	Partial bool

	// Ports in declaration order; Quantities and Signals include both ports
	// and architecture-local declarations.
	Ports      []*Symbol
	Quantities []*Symbol
	Signals    []*Symbol

	// Types records the checked type of every expression; Consts the folded
	// value of every statically constant expression.
	Types  map[ast.Expr]Type
	Consts map[ast.Expr]*Value

	Funcs map[string]*Func

	Stats Stats
}

// Stats are the VASS specification metrics reported in the paper's Table 1.
type Stats struct {
	ContinuousLines int // lines of continuous-time statements
	QuantityCount   int
	EventLines      int // lines of event-driven (process) statements
	SignalCount     int
}

// Lookup resolves a canonical name in the design scope.
func (d *Design) Lookup(name string) *Symbol { return d.Scope.Lookup(name) }

// TypeOf returns the checked type of e (ErrType when unknown).
func (d *Design) TypeOf(e ast.Expr) Type {
	if t, ok := d.Types[e]; ok {
		return t
	}
	return ErrType
}

// ConstOf returns the folded constant value of e, or nil when e is not
// statically constant.
func (d *Design) ConstOf(e ast.Expr) *Value { return d.Consts[e] }

// Analyze checks all architectures in the file and returns one Design per
// entity/architecture pair, in source order.
func Analyze(df *ast.DesignFile) ([]*Design, error) {
	designs, errs := AnalyzeCollect(df)
	return designs, errs.Err()
}

// AnalyzeCollect is Analyze exposing the full diagnostic list, including
// warnings that Err() would not surface.
func AnalyzeCollect(df *ast.DesignFile) ([]*Design, *diag.List) {
	errs := &diag.List{}
	a := &analyzer{file: df.File, list: errs, errs: diag.NewReporter(df.File, errs, diag.CodeSema)}
	global := NewScope(nil)
	declareBuiltins(global)

	// A file recovered from a broken parse poisons every design in it: an
	// ERROR unit may have swallowed declarations the designs depend on, and
	// even when resynchronization repaired the token stream into well-formed
	// nodes (no ERROR node left) the Recovered flag records the damage.
	filePartial := df.Recovered
	for _, u := range df.Units {
		if ast.HasErrors(u) {
			filePartial = true
			break
		}
	}

	// Packages first: their constants and functions become globally visible.
	for _, u := range df.Units {
		switch u := u.(type) {
		case *ast.Package:
			a.declarePackage(global, u.Decls)
		case *ast.PackageBody:
			a.declarePackage(global, u.Decls)
		}
	}

	entities := make(map[string]*ast.Entity)
	for _, e := range df.Entities() {
		if _, dup := entities[e.Name.Canon]; dup {
			a.report(diag.CodeDuplicate, e.Name.SpanV, "duplicate entity %q", e.Name.Name)
		}
		entities[e.Name.Canon] = e
	}

	var designs []*Design
	for _, arch := range df.Architectures() {
		ent := entities[arch.Entity.Canon]
		if ent == nil {
			a.errorf(arch.Entity.SpanV, "architecture %q refers to unknown entity %q", arch.Name.Name, arch.Entity.Name)
			continue
		}
		designs = append(designs, a.analyzeDesign(global, df.File, df.File, ent, arch, filePartial))
	}
	errs.Sort()
	return designs, errs
}

// AnalyzeOne is Analyze restricted to the (single) design in the file; it
// fails when the file does not contain exactly one architecture. It is the
// intentionally fail-fast convenience API for compile-bound flows; recovery
// consumers use AnalyzeCollect.
func AnalyzeOne(df *ast.DesignFile) (*Design, error) {
	ds, err := Analyze(df)
	if err != nil {
		return nil, err //vase:failfast
	}
	if len(ds) != 1 {
		errs := &diag.List{}
		errs.Addf(diag.CodeSema, df.File.Position(0), "expected exactly one architecture, found %d", len(ds))
		return nil, errs.Err() //vase:failfast (strict single-design entry point)
	}
	return ds[0], nil
}

type analyzer struct {
	file *source.File
	list *diag.List
	errs *diag.Reporter
	d    *Design
}

// setFile retargets the analyzer's reporter at another source file, so spans
// from multi-file projects resolve against the file they came from. It is a
// no-op when f already is the current file (the single-file case).
func (a *analyzer) setFile(f *source.File) {
	if f == nil || f == a.file {
		return
	}
	a.file = f
	a.errs = diag.NewReporter(f, a.list, diag.CodeSema)
}

func (a *analyzer) errorf(sp source.Span, format string, args ...any) {
	a.errs.Errorf(sp, format, args...)
}

func (a *analyzer) report(code diag.Code, sp source.Span, format string, args ...any) *diag.Diagnostic {
	return a.errs.Report(code, sp, format, args...)
}

// builtins are the pure real functions available to VASS expressions. They
// correspond to operations realizable with analog computation circuits
// (log/antilog amplifiers, multipliers, etc.).
var builtinNames = []string{"log", "exp", "sqrt", "sin", "cos", "abs", "min", "max", "sign", "adc"}

func declareBuiltins(s *Scope) {
	for _, name := range builtinNames {
		nparams := 1
		if name == "min" || name == "max" || name == "adc" {
			nparams = 2
		}
		f := &Func{Name: name, Result: Real, Builtin: name}
		for i := 0; i < nparams; i++ {
			f.Params = append(f.Params, &Symbol{Name: "x", Kind: SymConstant, Type: Real})
		}
		s.Declare(&Symbol{Name: name, Orig: name, Kind: SymFunction, Type: Real, Func: f})
	}
}

func (a *analyzer) declarePackage(global *Scope, decls []ast.Decl) {
	for _, d := range decls {
		switch d := d.(type) {
		case *ast.ObjectDecl:
			a.declareObjects(global, d, false)
		case *ast.FunctionDecl:
			a.declareFunction(global, d)
		case *ast.ErrorDecl:
			for _, part := range d.Parts {
				if od, ok := part.(*ast.ObjectDecl); ok {
					a.declareObjects(global, od, false)
				}
			}
		}
	}
}

func (a *analyzer) declareFunction(s *Scope, fd *ast.FunctionDecl) {
	f := &Func{Name: fd.Name.Canon, Decl: fd}
	f.Result = a.resolveType(fd.Result)
	paramScope := NewScope(s)
	for _, pd := range fd.Params {
		t := a.resolveType(pd.Type)
		for _, id := range pd.Names {
			sym := &Symbol{Name: id.Canon, Orig: id.Name, Kind: SymConstant, Type: t, Decl: pd}
			f.Params = append(f.Params, sym)
			paramScope.Declare(sym)
		}
	}
	if fd.Body != nil {
		// Check the body in a scope containing parameters and locals.
		body := NewScope(paramScope)
		for _, d := range fd.Decls {
			for _, od := range objectDecls(d) {
				a.declareObjects(body, od, false)
			}
		}
		returns := false
		a.checkFuncBody(body, fd.Body, f.Result, &returns)
		if !returns {
			a.errorf(fd.SpanV, "function %q has no return statement", fd.Name.Name)
		}
	}
	existing := s.LookupLocal(fd.Name.Canon)
	if existing != nil && existing.Kind == SymFunction && existing.Func != nil {
		if existing.Func.Decl != nil && existing.Func.Decl.Body == nil && fd.Body != nil {
			// Body completing a package-header declaration.
			existing.Func = f
			if a.d != nil {
				a.d.Funcs[f.Name] = f
			}
			return
		}
		a.report(diag.CodeDuplicate, fd.Name.SpanV, "duplicate function %q", fd.Name.Name)
		return
	}
	s.Declare(&Symbol{Name: fd.Name.Canon, Orig: fd.Name.Name, Kind: SymFunction, Type: f.Result, Func: f, Decl: fd})
	if a.d != nil {
		a.d.Funcs[f.Name] = f
	}
}

func (a *analyzer) checkFuncBody(s *Scope, body []ast.SeqStmt, result Type, returns *bool) {
	for _, st := range body {
		switch st := st.(type) {
		case *ast.ReturnStmt:
			*returns = true
			if st.Value == nil {
				a.errorf(st.SpanV, "function return requires a value")
				continue
			}
			t := a.typeOf(s, st.Value)
			if !t.Same(result) && t.Kind != TError && !(t.IsNumeric() && result.IsNumeric()) {
				a.report(diag.CodeTypeMismatch, st.SpanV, "return type %s does not match result type %s", t, result)
			}
		case *ast.Assign:
			a.checkSeqAssign(s, st, seqCtx{inFunction: true})
		case *ast.IfStmt:
			a.checkCond(s, st.Cond)
			a.checkFuncBody(s, st.Then, result, returns)
			for _, e := range st.Elifs {
				a.checkCond(s, e.Cond)
				a.checkFuncBody(s, e.Then, result, returns)
			}
			a.checkFuncBody(s, st.Else, result, returns)
		case *ast.ForStmt:
			inner := a.enterFor(s, st)
			a.checkFuncBody(inner, st.Body, result, returns)
		case *ast.NullStmt:
		case *ast.ErrorStmt:
			a.checkErrorParts(s, st.Parts)
		default:
			a.errorf(st.Span(), "statement not allowed in a VASS function body")
		}
	}
}

func (a *analyzer) resolveType(tr *ast.TypeRef) Type {
	if tr == nil {
		return ErrType
	}
	length := 0
	if tr.Constraint != nil {
		lo := a.constIntOf(tr.Constraint.Lo)
		hi := a.constIntOf(tr.Constraint.Hi)
		if lo == nil || hi == nil {
			a.report(diag.CodeNotStatic, tr.SpanV, "type constraint bounds must be static")
		} else {
			length = int(*hi - *lo + 1)
			if tr.Constraint.Down {
				length = int(*lo - *hi + 1)
			}
			if length < 0 {
				length = 0
			}
		}
	}
	switch tr.Name.Canon {
	case "real", "voltage", "current":
		if tr.Constraint != nil {
			return Type{Kind: TRealVector, Len: length}
		}
		return Real
	case "real_vector":
		return Type{Kind: TRealVector, Len: length}
	case "bit":
		return Bit
	case "boolean":
		return Bool
	case "bit_vector":
		return Type{Kind: TBitVector, Len: length}
	case "integer", "natural", "positive":
		return Int
	case "electrical":
		// Terminal nature.
		return Real
	}
	a.report(diag.CodeUnknownType, tr.Name.SpanV, "unknown type %q (VASS admits real, bit, boolean, integer and their vectors)", tr.Name.Name)
	return ErrType
}

func symKindOf(class ast.ObjectClass) SymbolKind {
	switch class {
	case ast.ClassQuantity:
		return SymQuantity
	case ast.ClassSignal:
		return SymSignal
	case ast.ClassTerminal:
		return SymTerminal
	case ast.ClassConstant:
		return SymConstant
	case ast.ClassVariable:
		return SymVariable
	}
	return SymConstant
}

// declareObjects declares all names of an object declaration into s,
// resolving annotations and evaluating constant initializers.
func (a *analyzer) declareObjects(s *Scope, od *ast.ObjectDecl, isPort bool) []*Symbol {
	t := a.resolveType(od.Type)
	kind := symKindOf(od.Class)
	attr := a.resolveAnnotations(s, od)

	switch kind {
	case SymQuantity:
		if !t.IsNature() && t.Kind != TError {
			a.errorf(od.SpanV, "quantity must have a nature type (real), not %s", t)
		}
	case SymSignal:
		if !t.IsDiscrete() && !t.IsNature() && t.Kind != TError {
			a.errorf(od.SpanV, "signal must have bit, bit_vector, boolean or nature type, not %s", t)
		}
	}

	var out []*Symbol
	for _, id := range od.Names {
		sym := &Symbol{
			Name: id.Canon, Orig: id.Name, Kind: kind, Type: t,
			Mode: od.Mode, Attr: attr, Decl: od, IsPort: isPort,
		}
		if kind == SymConstant && od.Init != nil {
			if v := a.constOf(s, od.Init); v != nil {
				sym.Const = v
			} else if isPort {
				// Generic without a bound value: keep the default nil.
			} else {
				a.report(diag.CodeNotStatic, od.Init.Span(), "constant %q initializer is not static", id.Name)
			}
		}
		if kind == SymConstant && od.Init == nil && !isPort {
			a.errorf(od.SpanV, "constant %q requires an initializer", id.Name)
		}
		if !s.Declare(sym) {
			a.report(diag.CodeDuplicate, id.SpanV, "duplicate declaration of %q", id.Name)
		}
		out = append(out, sym)
	}
	return out
}

// resolveAnnotations folds the annotation list of a declaration into a
// PortAttr, evaluating the static arguments.
func (a *analyzer) resolveAnnotations(s *Scope, od *ast.ObjectDecl) PortAttr {
	var attr PortAttr
	argReal := func(an *ast.Annotation, i int) float64 {
		if i >= len(an.Args) {
			return 0
		}
		v := a.constOf(s, an.Args[i])
		if v == nil {
			a.report(diag.CodeNotStatic, an.Args[i].Span(), "annotation argument must be static")
			return 0
		}
		return v.AsReal()
	}
	for _, an := range od.Annotations {
		switch an.Name {
		case "voltage":
			attr.Kind = KindVoltage
		case "current":
			attr.Kind = KindCurrent
		case "limited":
			attr.Limited = true
			if len(an.Args) > 0 {
				attr.LimitAt = argReal(an, 0)
			}
		case "drives":
			attr.DrivesOhms = argReal(an, 0)
			if len(an.Args) > 1 {
				attr.PeakDrive = argReal(an, 1)
			}
		case "frequency":
			attr.HasFreq = true
			attr.FreqLo = argReal(an, 0)
			attr.FreqHi = argReal(an, 1)
		case "range":
			attr.HasRange = true
			attr.RangeLo = argReal(an, 0)
			attr.RangeHi = argReal(an, 1)
		case "impedance":
			attr.Impedance = argReal(an, 0)
		default:
			a.report(diag.CodeBadAnnotation, an.SpanV, "unknown annotation %q", an.Name)
		}
	}
	return attr
}

// analyzeDesign checks one entity/architecture pair. The entity and the
// architecture may come from different files; partialCtx poisons the design
// when the surrounding file or environment was recovered from a broken
// parse.
func (a *analyzer) analyzeDesign(global *Scope, entFile, archFile *source.File, ent *ast.Entity, arch *ast.Architecture, partialCtx bool) *Design {
	d := &Design{
		Name:       ent.Name.Canon,
		Entity:     ent,
		Arch:       arch,
		File:       archFile,
		EntityFile: entFile,
		Partial:    partialCtx || ast.HasErrors(ent) || ast.HasErrors(arch),
		Scope:      NewScope(global),
		Types:      make(map[ast.Expr]Type),
		Consts:     make(map[ast.Expr]*Value),
		Funcs:      make(map[string]*Func),
	}
	a.d = d

	a.setFile(entFile)
	for _, g := range ent.Generics {
		a.declareObjects(d.Scope, g, true)
	}
	for _, p := range ent.Ports {
		syms := a.declareObjects(d.Scope, p, true)
		d.Ports = append(d.Ports, syms...)
		for _, sym := range syms {
			switch sym.Kind {
			case SymQuantity:
				if sym.Mode == ast.ModeNone {
					a.errorf(p.SpanV, "port %q requires a mode (in or out)", sym.Orig)
				}
			case SymTerminal:
				// Single-facet restriction is enforced at use sites.
			}
		}
	}
	a.setFile(archFile)
	for _, decl := range arch.Decls {
		switch decl := decl.(type) {
		case *ast.ObjectDecl:
			if decl.Class == ast.ClassVariable {
				a.errorf(decl.SpanV, "variables may only be declared inside procedural, process or function bodies")
				continue
			}
			a.declareObjects(d.Scope, decl, false)
		case *ast.FunctionDecl:
			a.declareFunction(d.Scope, decl)
		case *ast.ErrorDecl:
			// Declare whatever survived inside the recovered region so later
			// references resolve instead of cascading "undeclared name".
			for _, part := range decl.Parts {
				if od, ok := part.(*ast.ObjectDecl); ok {
					a.declareObjects(d.Scope, od, false)
				}
			}
		}
	}

	for _, st := range arch.Stmts {
		a.checkConcStmt(d.Scope, st)
	}
	a.computeStats(d)
	if !d.Partial {
		// An ERROR node may have swallowed the statement that drives a port;
		// undriven-port analysis on a partial design would be guesswork.
		a.setFile(entFile)
		a.checkDriven(d)
		a.setFile(archFile)
	}
	return d
}

// computeStats fills the Table 1 specification metrics. Line counts are the
// number of distinct source lines covered by each part, so two short
// statements sharing a line count once.
func (a *analyzer) computeStats(d *Design) {
	contLines := map[int]bool{}
	eventLines := map[int]bool{}
	mark := func(n ast.Node, set map[int]bool) {
		sp := n.Span()
		if !sp.IsValid() {
			return
		}
		for l := d.File.Line(sp.Start); l <= d.File.Line(sp.End-1); l++ {
			set[l] = true
		}
	}
	for _, st := range d.Arch.Stmts {
		switch st.(type) {
		case *ast.Process:
			mark(st, eventLines)
		case *ast.ErrorConc:
			// Skipped regions are not continuous-time statements.
		default:
			mark(st, contLines)
		}
	}
	d.Stats.ContinuousLines = len(contLines)
	d.Stats.EventLines = len(eventLines)
	seen := map[*Symbol]bool{}
	countSym := func(sym *Symbol) {
		if sym == nil || seen[sym] {
			return
		}
		seen[sym] = true
		switch sym.Kind {
		case SymQuantity:
			d.Quantities = append(d.Quantities, sym)
			d.Stats.QuantityCount++
		case SymSignal:
			d.Signals = append(d.Signals, sym)
			d.Stats.SignalCount++
		}
	}
	for _, p := range d.Ports {
		countSym(p)
	}
	for _, decl := range d.Arch.Decls {
		for _, od := range objectDecls(decl) {
			for _, id := range od.Names {
				countSym(d.Scope.Lookup(id.Canon))
			}
		}
	}
}

// objectDecls extracts the object declarations of a declaration node,
// looking through ERROR nodes for partial children that survived recovery.
func objectDecls(d ast.Decl) []*ast.ObjectDecl {
	switch d := d.(type) {
	case *ast.ObjectDecl:
		return []*ast.ObjectDecl{d}
	case *ast.ErrorDecl:
		var out []*ast.ObjectDecl
		for _, part := range d.Parts {
			if od, ok := part.(*ast.ObjectDecl); ok {
				out = append(out, od)
			}
		}
		return out
	}
	return nil
}

// checkDriven warns when an out-mode quantity port is never defined by any
// statement.
func (a *analyzer) checkDriven(d *Design) {
	driven := map[string]bool{}
	var markConc func(st ast.ConcStmt)
	markTargets := func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Name:
			driven[e.Ident.Canon] = true
		case *ast.Attribute:
			if n, ok := e.X.(*ast.Name); ok {
				driven[n.Ident.Canon] = true
			}
		case *ast.Call:
			driven[e.Fun.Canon] = true
		}
	}
	var markSeq func(ss []ast.SeqStmt)
	markSeq = func(ss []ast.SeqStmt) {
		for _, st := range ss {
			switch st := st.(type) {
			case *ast.Assign:
				markTargets(st.LHS)
			case *ast.IfStmt:
				markSeq(st.Then)
				for _, e := range st.Elifs {
					markSeq(e.Then)
				}
				markSeq(st.Else)
			case *ast.CaseStmt:
				for _, arm := range st.Arms {
					markSeq(arm.Seq)
				}
			case *ast.ForStmt:
				markSeq(st.Body)
			case *ast.WhileStmt:
				markSeq(st.Body)
			}
		}
	}
	markConc = func(st ast.ConcStmt) {
		switch st := st.(type) {
		case *ast.SimpleSimultaneous:
			// A DAE may implicitly define any quantity occurring in it; the
			// compiler's matching decides which. Mark every name.
			ast.Walk(st.LHS, func(n ast.Node) bool {
				if nm, ok := n.(*ast.Name); ok {
					driven[nm.Ident.Canon] = true
				}
				return true
			})
			ast.Walk(st.RHS, func(n ast.Node) bool {
				if nm, ok := n.(*ast.Name); ok {
					driven[nm.Ident.Canon] = true
				}
				return true
			})
		case *ast.SimultaneousIf:
			for _, t := range st.Then {
				markConc(t)
			}
			for _, e := range st.Elifs {
				for _, t := range e.Then {
					markConc(t)
				}
			}
			for _, t := range st.Else {
				markConc(t)
			}
		case *ast.SimultaneousCase:
			for _, arm := range st.Arms {
				for _, t := range arm.Conc {
					markConc(t)
				}
			}
		case *ast.Procedural:
			markSeq(st.Body)
		case *ast.Process:
			markSeq(st.Body)
		}
	}
	for _, st := range d.Arch.Stmts {
		markConc(st)
	}
	for _, p := range d.Ports {
		if p.Kind == SymQuantity && p.Mode == ast.ModeOut && !driven[p.Name] {
			a.report(diag.CodeUndriven, p.Decl.Span(), "output quantity %q is never defined by any statement", p.Orig)
		}
	}
}

package mapper

import (
	"strings"
	"testing"

	"vase/internal/library"
	"vase/internal/parser"
	"vase/internal/patterns"
	"vase/internal/sema"
	"vase/internal/vhif"

	"vase/internal/compile"
)

// buildFig6 constructs the paper's Figure 6a signal-flow graph: two gain
// blocks feeding an adder (out = k1*a + k2*b), the structure whose decision
// tree the paper draws with 2-, 3- and 7-op-amp complete mappings.
func buildFig6() *vhif.Module {
	g := vhif.NewGraph("main")
	a := g.AddBlock(vhif.BInput, "a")
	b := g.AddBlock(vhif.BInput, "b")
	g1 := g.AddBlock(vhif.BGain, "block1", a.Out)
	g1.Param = 15
	g2 := g.AddBlock(vhif.BGain, "block2", b.Out)
	g2.Param = 3
	sum := g.AddBlock(vhif.BAdd, "block3", g1.Out, g2.Out)
	g.AddBlock(vhif.BOutput, "out", sum.Out)
	return &vhif.Module{Name: "fig6", Graphs: []*vhif.Graph{g}}
}

func synth(t *testing.T, m *vhif.Module, opts Options) *Result {
	t.Helper()
	res, err := Synthesize(m, opts)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	return res
}

func TestFig6MinimumMapping(t *testing.T) {
	res := synth(t, buildFig6(), DefaultOptions())
	// The summing amplifier covers all three blocks with one op amp.
	if n := res.Netlist.OpAmpCount(); n != 1 {
		t.Errorf("op amps = %d, want 1\n%s", n, res.Netlist.Dump())
	}
	if n := res.Netlist.CountKind(library.CellSummingAmp); n != 1 {
		t.Errorf("summing amps = %d, want 1", n)
	}
}

func TestFig6DecisionTreeHasAlternatives(t *testing.T) {
	opts := DefaultOptions()
	opts.Trace = true
	opts.NoBounding = true // keep all complete leaves for inspection
	res := synth(t, buildFig6(), opts)
	var complete []int
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n.Complete {
			complete = append(complete, n.OpAmps)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(res.Tree)
	if len(complete) < 3 {
		t.Fatalf("complete mappings = %d, want >= 3 (paper's tree shows several)\n%s",
			len(complete), FormatTree(res.Tree))
	}
	min, max := complete[0], complete[0]
	for _, n := range complete {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min != 1 {
		t.Errorf("minimum op amps = %d, want 1", min)
	}
	if max < 3 {
		t.Errorf("maximum op amps = %d, want >= 3 (one cell per block, split gains)", max)
	}
}

func TestBoundingReducesNodes(t *testing.T) {
	// Node-count comparisons reason about the sequential exploration order.
	seq := DefaultOptions()
	seq.Workers = 1
	with := synth(t, buildFig6(), seq)
	opts := seq
	opts.NoBounding = true
	without := synth(t, buildFig6(), opts)
	if with.Stats.NodesVisited > without.Stats.NodesVisited {
		t.Errorf("bounding should not increase nodes: %d vs %d",
			with.Stats.NodesVisited, without.Stats.NodesVisited)
	}
	if with.Netlist.OpAmpCount() != without.Netlist.OpAmpCount() {
		t.Errorf("bounding changed the optimum: %d vs %d op amps",
			with.Netlist.OpAmpCount(), without.Netlist.OpAmpCount())
	}
}

func TestSequencingFindsOptimumEarly(t *testing.T) {
	seq := DefaultOptions()
	seq.Workers = 1
	good := synth(t, buildFig6(), seq)
	opts := seq
	opts.NoSequencing = true
	bad := synth(t, buildFig6(), opts)
	// Same optimum either way; the sequencing rule should not visit more
	// nodes than the reversed order (it usually visits strictly fewer on
	// larger designs).
	if good.Netlist.OpAmpCount() != bad.Netlist.OpAmpCount() {
		t.Errorf("sequencing changed the optimum: %d vs %d",
			good.Netlist.OpAmpCount(), bad.Netlist.OpAmpCount())
	}
	if good.Stats.NodesVisited > bad.Stats.NodesVisited {
		t.Errorf("sequencing visited more nodes (%d) than reversed order (%d)",
			good.Stats.NodesVisited, bad.Stats.NodesVisited)
	}
}

// buildSharedGraph constructs a graph where two paths compute the same
// sub-expression (gain 5 of input a) feeding different outputs: the sharing
// analysis must allocate the amplifier once.
func buildSharedGraph() *vhif.Module {
	g := vhif.NewGraph("main")
	a := g.AddBlock(vhif.BInput, "a")
	b := g.AddBlock(vhif.BInput, "b")
	g1 := g.AddBlock(vhif.BGain, "g1", a.Out)
	g1.Param = 5
	g2 := g.AddBlock(vhif.BGain, "g2", a.Out)
	g2.Param = 5
	m1 := g.AddBlock(vhif.BMul, "m1", g1.Out, b.Out)
	m2 := g.AddBlock(vhif.BMul, "m2", g2.Out, b.Out)
	g.AddBlock(vhif.BOutput, "y1", m1.Out)
	g.AddBlock(vhif.BOutput, "y2", m2.Out)
	return &vhif.Module{Name: "shared", Graphs: []*vhif.Graph{g}}
}

func TestSharingAcrossPaths(t *testing.T) {
	res := synth(t, buildSharedGraph(), DefaultOptions())
	opts := DefaultOptions()
	opts.NoSharing = true
	noShare := synth(t, buildSharedGraph(), opts)
	if res.Netlist.OpAmpCount() >= noShare.Netlist.OpAmpCount() {
		t.Errorf("sharing should reduce op amps: %d (shared) vs %d (unshared)",
			res.Netlist.OpAmpCount(), noShare.Netlist.OpAmpCount())
	}
	// The two multipliers read the same shared amplifier output; m2's
	// second multiplier also shares (identical inputs), so one of each.
	sharedComps := 0
	for _, c := range res.Netlist.Components {
		if c.Shared {
			sharedComps++
		}
	}
	if sharedComps == 0 {
		t.Errorf("no component marked shared\n%s", res.Netlist.Dump())
	}
}

// exhaustiveMinOpAmps computes the true minimum op amp count by exploring
// without bounding and recording every complete mapping.
func exhaustiveMinOpAmps(t *testing.T, m *vhif.Module) int {
	t.Helper()
	opts := DefaultOptions()
	opts.NoBounding = true
	opts.Trace = true
	res := synth(t, m, opts)
	min := 1 << 30
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n.Complete && n.OpAmps < min {
			min = n.OpAmps
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(res.Tree)
	return min
}

func TestBranchAndBoundOptimality(t *testing.T) {
	// The bounded search must find the same op-amp minimum as exhaustive
	// enumeration on several structures.
	mods := []*vhif.Module{buildFig6(), buildSharedGraph(), buildChain(), buildMixed()}
	for i, m := range mods {
		want := exhaustiveMinOpAmps(t, m)
		got := synth(t, m, DefaultOptions()).Netlist.OpAmpCount()
		if got != want {
			t.Errorf("module %d (%s): bounded optimum %d != exhaustive %d", i, m.Name, got, want)
		}
	}
}

func buildChain() *vhif.Module {
	g := vhif.NewGraph("main")
	a := g.AddBlock(vhif.BInput, "a")
	g1 := g.AddBlock(vhif.BGain, "g1", a.Out)
	g1.Param = -2
	n1 := g.AddBlock(vhif.BNeg, "n1", g1.Out)
	add := g.AddBlock(vhif.BAdd, "add", n1.Out, a.Out)
	integ := g.AddBlock(vhif.BIntegrator, "integ", add.Out)
	g.AddBlock(vhif.BOutput, "y", integ.Out)
	return &vhif.Module{Name: "chain", Graphs: []*vhif.Graph{g}}
}

func buildMixed() *vhif.Module {
	g := vhif.NewGraph("main")
	a := g.AddBlock(vhif.BInput, "a")
	cmp := g.AddBlock(vhif.BComparator, "cmp", a.Out)
	cmp.Param = 0.5
	lg := g.AddBlock(vhif.BLog, "lg", a.Out)
	ex := g.AddBlock(vhif.BExp, "ex", lg.Out)
	sw := g.AddBlock(vhif.BSwitch, "sw", ex.Out)
	sw.SetCtrl(g, cmp.Out)
	g.AddBlock(vhif.BOutput, "y", sw.Out)
	return &vhif.Module{Name: "mixed", Graphs: []*vhif.Graph{g}}
}

func TestChainSummingIntegrator(t *testing.T) {
	res := synth(t, buildChain(), DefaultOptions())
	// add(+gains) + integ collapse into a summing integrator; the -2 gain
	// and neg are absorbed as weights: ideally 1 op amp... the neg chain
	// requires gain absorption through two levels, so allow 1 or 2.
	if n := res.Netlist.OpAmpCount(); n > 2 {
		t.Errorf("op amps = %d, want <= 2\n%s", n, res.Netlist.Dump())
	}
	if res.Netlist.CountKind(library.CellIntegrator) != 1 {
		t.Errorf("integrators = %d, want 1", res.Netlist.CountKind(library.CellIntegrator))
	}
}

func TestReceiverSynthesis(t *testing.T) {
	m := compileReceiver(t)
	res := synth(t, m, DefaultOptions())
	nl := res.Netlist
	// Paper Table 1: "2 amplif., 1 zero-cross det." (plus the inferred
	// output stage, which the paper's summary omits).
	amps := 0
	for _, c := range nl.Components {
		if c.Cell.Kind.IsAmplifier() {
			amps++
		}
	}
	if amps != 2 {
		t.Errorf("amplifiers = %d, want 2 (summing amp + PGA)\n%s", amps, nl.Dump())
	}
	if n := nl.CountKind(library.CellComparator); n != 1 {
		t.Errorf("zero-cross detectors = %d, want 1", n)
	}
	if n := nl.CountKind(library.CellOutputStage); n != 1 {
		t.Errorf("output stages = %d, want 1", n)
	}
	if got := nl.Summary(); !strings.Contains(got, "2 amplif.") || !strings.Contains(got, "1 zero-cross det.") {
		t.Errorf("summary = %q, want the paper's \"2 amplif., 1 zero-cross det.\"", got)
	}
}

func compileReceiver(t *testing.T) *vhif.Module {
	t.Helper()
	src := `
entity telephone is
  port (
    quantity line  : in real is voltage;
    quantity local : in real is voltage;
    quantity earph : out real is voltage limited at 1.5 drives 270.0 at 0.285 peak
  );
end entity;
architecture behavioral of telephone is
  constant Aline  : real := 4.0;
  constant Alocal : real := 2.0;
  constant r1c    : real := 0.5;
  constant r2c    : real := 0.25;
  constant Vth    : real := 0.1;
  quantity rvar : real;
  signal c1 : bit;
begin
  earph == (Aline * line + Alocal * local) * rvar;
  if (c1 = '1') use
    rvar == r1c;
  else
    rvar == r1c + r2c;
  end use;
  process (line'above(Vth)) is
  begin
    if (line'above(Vth) = true) then
      c1 <= '1';
    else
      c1 <= '0';
    end if;
  end process;
end architecture;`
	df, err := parser.Parse("receiver.vhd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m, err := compile.Compile(d)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestNaiveDirectMappingCostsMore(t *testing.T) {
	m := compileReceiver(t)
	twoStep := synth(t, m, DefaultOptions())
	opts := DefaultOptions()
	opts.Patterns = patterns.Options{NoAbsorption: true}
	naive := synth(t, m, opts)
	if naive.Netlist.OpAmpCount() <= twoStep.Netlist.OpAmpCount() {
		t.Errorf("naive mapping (%d op amps) should cost more than pattern absorption (%d)",
			naive.Netlist.OpAmpCount(), twoStep.Netlist.OpAmpCount())
	}
	if naive.Report.AreaUm2 <= twoStep.Report.AreaUm2 {
		t.Errorf("naive area (%.0f) should exceed optimized area (%.0f)",
			naive.Report.AreaUm2, twoStep.Report.AreaUm2)
	}
}

func TestNetlistEstimatePositive(t *testing.T) {
	res := synth(t, compileReceiver(t), DefaultOptions())
	if res.Report.AreaUm2 <= 0 || res.Report.PowerMW <= 0 {
		t.Errorf("report = %+v, want positive area and power", res.Report)
	}
	if res.Report.OpAmps != res.Netlist.OpAmpCount() {
		t.Errorf("report op amps %d != netlist %d", res.Report.OpAmps, res.Netlist.OpAmpCount())
	}
}

func TestNetlistPortsComplete(t *testing.T) {
	res := synth(t, compileReceiver(t), DefaultOptions())
	for _, name := range []string{"line", "local", "earph"} {
		if res.Netlist.PortByName(name) == nil {
			t.Errorf("port %q missing from netlist", name)
		}
	}
}

func TestFormatTree(t *testing.T) {
	opts := DefaultOptions()
	opts.Trace = true
	res := synth(t, buildFig6(), opts)
	text := FormatTree(res.Tree)
	if !strings.Contains(text, "complete mapping") {
		t.Errorf("tree missing complete leaves:\n%s", text)
	}
	if !strings.Contains(text, "op amps") {
		t.Errorf("tree missing op amp annotations:\n%s", text)
	}
}

package sim

import (
	"testing"

	"vase/internal/vhif"
)

// buildToggleFSM: on each crossing of x over 1 or -1, toggle s.
func buildToggleFSM() *vhif.FSM {
	f := vhif.NewFSM("toggle")
	s1 := f.NewState("state1")
	s1.Ops = append(s1.Ops, &vhif.DataOp{
		Target: "s", SignalOp: true,
		Expr: &vhif.DUnary{Op: "not", X: &vhif.DName{Name: "s"}},
	})
	guard := &vhif.DBinary{Op: "or",
		X: &vhif.DEvent{Quantity: "x", Threshold: 1},
		Y: &vhif.DEvent{Quantity: "x", Threshold: -1},
	}
	f.AddArc(f.Start, s1, guard)
	f.AddArc(s1, f.Start, nil)
	return f
}

func TestFSMRunnerToggle(t *testing.T) {
	r := NewFSMRunner(buildToggleFSM())
	// VHDL 'above events fire on EVERY crossing, in both directions: the
	// sweep up through +1 toggles, and coming back down through +1 toggles
	// again. (This is exactly why the paper's analog realization adds "a
	// small hysteresis margin, so that repeated switchings between states
	// are avoided" — the Schmitt trigger deliberately deviates from raw
	// event semantics.)
	xs := []float64{0, 0.5, 1.2, 0.5, 0, -0.5, -1.2, -0.5, 0}
	want := []float64{0, 0, 1, 0, 0, 0, 1, 0, 0}
	for i, x := range xs {
		if err := r.Step(map[string]float64{"x": x}); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got := r.Signal("s"); got != want[i] {
			t.Errorf("step %d (x=%g): s = %g, want %g", i, x, got, want[i])
		}
	}
}

func TestFSMRunnerEventIsEdgeTriggered(t *testing.T) {
	r := NewFSMRunner(buildToggleFSM())
	// Staying above the threshold must not re-fire the event.
	for i, x := range []float64{0, 2, 2, 2} {
		if err := r.Step(map[string]float64{"x": x}); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if got := r.Signal("s"); got != 1 {
		t.Errorf("s = %g after one crossing and a plateau, want 1", got)
	}
}

func TestFSMRunnerBranching(t *testing.T) {
	// if ev then c <= '1' else c <= '0' with guarded arcs.
	f := vhif.NewFSM("cmp")
	eval := f.NewState("eval")
	setS := f.NewState("set")
	clrS := f.NewState("clr")
	ev := &vhif.DEvent{Quantity: "q", Threshold: 0.5}
	setS.Ops = append(setS.Ops, &vhif.DataOp{Target: "c", SignalOp: true, Expr: &vhif.DConst{Value: 1, Bit: true}})
	clrS.Ops = append(clrS.Ops, &vhif.DataOp{Target: "c", SignalOp: true, Expr: &vhif.DConst{Value: 0, Bit: true}})
	f.AddArc(f.Start, eval, ev)
	f.AddArc(eval, setS, ev)
	f.AddArc(eval, clrS, nil)
	f.AddArc(setS, f.Start, nil)
	f.AddArc(clrS, f.Start, nil)

	r := NewFSMRunner(f)
	seq := []struct{ q, want float64 }{
		{0, 0},   // no event yet
		{1, 1},   // rising crossing -> event level true -> set
		{0.2, 0}, // falling crossing -> event level false -> clear
		{0.3, 0}, // no crossing: holds
	}
	for i, c := range seq {
		if err := r.Step(map[string]float64{"q": c.q}); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got := r.Signal("c"); got != c.want {
			t.Errorf("step %d (q=%g): c = %g, want %g", i, c.q, got, c.want)
		}
	}
}

func TestFSMRunnerDatapathArithmetic(t *testing.T) {
	// Variables computed with arithmetic datapath ops.
	f := vhif.NewFSM("dp")
	s1 := f.NewState("s1")
	s1.Ops = append(s1.Ops,
		&vhif.DataOp{Target: "a", Expr: &vhif.DConst{Value: 3}},
		&vhif.DataOp{Target: "b", Expr: &vhif.DBinary{Op: "*", X: &vhif.DName{Name: "a"}, Y: &vhif.DConst{Value: 4}}},
	)
	s2 := f.NewState("s2")
	s2.Ops = append(s2.Ops,
		&vhif.DataOp{Target: "c", Expr: &vhif.DBinary{Op: "-", X: &vhif.DName{Name: "b"}, Y: &vhif.DConst{Value: 2}}},
		&vhif.DataOp{Target: "d", Expr: &vhif.DUnary{Op: "abs", X: &vhif.DConst{Value: -5}}},
		&vhif.DataOp{Target: "e", Expr: &vhif.DBinary{Op: "/", X: &vhif.DConst{Value: 8}, Y: &vhif.DConst{Value: 2}}},
	)
	f.AddArc(f.Start, s1, &vhif.DEvent{Quantity: "x", Threshold: 0})
	f.AddArc(s1, s2, nil)
	f.AddArc(s2, f.Start, nil)

	r := NewFSMRunner(f)
	// Crossing 0 fires the resume.
	if err := r.Step(map[string]float64{"x": -1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Step(map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{"a": 3, "b": 12, "c": 10, "d": 5, "e": 4}
	for name, want := range checks {
		if got := r.Signal(name); got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
}

func TestFSMRunnerComparisonOps(t *testing.T) {
	f := vhif.NewFSM("rel")
	s1 := f.NewState("s1")
	mk := func(target, op string, x, y float64) *vhif.DataOp {
		return &vhif.DataOp{Target: target, Expr: &vhif.DBinary{
			Op: op, X: &vhif.DConst{Value: x}, Y: &vhif.DConst{Value: y}}}
	}
	s1.Ops = append(s1.Ops,
		mk("lt", "<", 1, 2), mk("le", "<=", 2, 2), mk("gt", ">", 3, 2),
		mk("ge", ">=", 1, 2), mk("eq", "=", 2, 2), mk("ne", "/=", 1, 2),
	)
	f.AddArc(f.Start, s1, &vhif.DEvent{Quantity: "x", Threshold: 0})
	f.AddArc(s1, f.Start, nil)
	r := NewFSMRunner(f)
	r.Step(map[string]float64{"x": -1})
	if err := r.Step(map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"lt": 1, "le": 1, "gt": 1, "ge": 0, "eq": 1, "ne": 1}
	for name, w := range want {
		if got := r.Signal(name); got != w {
			t.Errorf("%s = %g, want %g", name, got, w)
		}
	}
}

func TestFSMRunnerStuckDetection(t *testing.T) {
	f := vhif.NewFSM("stuck")
	s1 := f.NewState("s1")
	f.AddArc(f.Start, s1, &vhif.DEvent{Quantity: "x", Threshold: 0})
	// No arc out of s1: the runner must report it rather than hang.
	r := NewFSMRunner(f)
	r.Step(map[string]float64{"x": -1})
	if err := r.Step(map[string]float64{"x": 1}); err == nil {
		t.Fatal("expected stuck-state error")
	}
}

func TestFSMRunnerSetSignal(t *testing.T) {
	r := NewFSMRunner(buildToggleFSM())
	r.SetSignal("s", 1)
	if r.Signal("s") != 1 {
		t.Error("SetSignal lost")
	}
}

func TestSwitchBlockSim(t *testing.T) {
	// A BSwitch passes its input while the control is true and outputs zero
	// otherwise.
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "a")
	cmp := g.AddBlock(vhif.BComparator, "cmp", in.Out)
	cmp.Param = 0.5
	sw := g.AddBlock(vhif.BSwitch, "sw", in.Out)
	sw.SetCtrl(g, cmp.Out)
	g.AddBlock(vhif.BOutput, "y", sw.Out)
	m := &vhif.Module{Name: "swm", Graphs: []*vhif.Graph{g}}
	tr, err := SimulateModule(m, map[string]Source{"a": Sine(1, 100, 0)},
		Options{TStop: 20e-3, TStep: 1e-5})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	src := Sine(1, 100, 0)
	for i, tm := range tr.Time {
		v := src(tm)
		y := tr.Get("y")[i]
		if v > 0.6 && y < 0.5 {
			t.Fatalf("switch should pass at t=%g: in=%g out=%g", tm, v, y)
		}
		if v < 0.3 && y != 0 {
			t.Fatalf("switch should block at t=%g: in=%g out=%g", tm, v, y)
		}
	}
}

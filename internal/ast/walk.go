package ast

// Visitor is invoked by Walk for each node. If the result is false the walk
// does not descend into the node's children.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in depth-first order, calling v for
// each node before its children. Nil nodes are skipped.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch n := n.(type) {
	case *DesignFile:
		for _, u := range n.Units {
			Walk(u, v)
		}
	case *Entity:
		Walk(n.Name, v)
		for _, d := range n.Generics {
			Walk(d, v)
		}
		for _, d := range n.Ports {
			Walk(d, v)
		}
	case *Architecture:
		Walk(n.Name, v)
		Walk(n.Entity, v)
		for _, d := range n.Decls {
			Walk(d, v)
		}
		for _, s := range n.Stmts {
			Walk(s, v)
		}
	case *Package:
		Walk(n.Name, v)
		for _, d := range n.Decls {
			Walk(d, v)
		}
	case *PackageBody:
		Walk(n.Name, v)
		for _, d := range n.Decls {
			Walk(d, v)
		}
	case *ObjectDecl:
		for _, id := range n.Names {
			Walk(id, v)
		}
		walkType(n.Type, v)
		walkExpr(n.Init, v)
		for _, a := range n.Annotations {
			Walk(a, v)
		}
	case *Annotation:
		for _, e := range n.Args {
			walkExpr(e, v)
		}
	case *FunctionDecl:
		Walk(n.Name, v)
		for _, p := range n.Params {
			Walk(p, v)
		}
		walkType(n.Result, v)
		for _, d := range n.Decls {
			Walk(d, v)
		}
		walkSeq(n.Body, v)
	case *TypeRef:
		Walk(n.Name, v)
		if n.Constraint != nil {
			Walk(n.Constraint, v)
		}
	case *RangeExpr:
		walkExpr(n.Lo, v)
		walkExpr(n.Hi, v)
	case *SimpleSimultaneous:
		walkExpr(n.LHS, v)
		walkExpr(n.RHS, v)
	case *SimultaneousIf:
		walkExpr(n.Cond, v)
		walkConc(n.Then, v)
		for _, e := range n.Elifs {
			Walk(e, v)
		}
		walkConc(n.Else, v)
	case *SimElif:
		walkExpr(n.Cond, v)
		walkConc(n.Then, v)
	case *SimultaneousCase:
		walkExpr(n.Expr, v)
		for _, a := range n.Arms {
			Walk(a, v)
		}
	case *CaseArm:
		for _, c := range n.Choices {
			walkExpr(c, v)
		}
		walkConc(n.Conc, v)
		walkSeq(n.Seq, v)
	case *Procedural:
		for _, d := range n.Decls {
			Walk(d, v)
		}
		walkSeq(n.Body, v)
	case *Process:
		for _, e := range n.Sensitivity {
			walkExpr(e, v)
		}
		for _, d := range n.Decls {
			Walk(d, v)
		}
		walkSeq(n.Body, v)
	case *Assign:
		walkExpr(n.LHS, v)
		walkExpr(n.RHS, v)
	case *IfStmt:
		walkExpr(n.Cond, v)
		walkSeq(n.Then, v)
		for _, e := range n.Elifs {
			Walk(e, v)
		}
		walkSeq(n.Else, v)
	case *SeqElif:
		walkExpr(n.Cond, v)
		walkSeq(n.Then, v)
	case *CaseStmt:
		walkExpr(n.Expr, v)
		for _, a := range n.Arms {
			Walk(a, v)
		}
	case *ForStmt:
		Walk(n.Var, v)
		Walk(n.Range, v)
		walkSeq(n.Body, v)
	case *WhileStmt:
		walkExpr(n.Cond, v)
		walkSeq(n.Body, v)
	case *ReturnStmt:
		walkExpr(n.Value, v)
	case *Name:
		Walk(n.Ident, v)
	case *Unary:
		walkExpr(n.X, v)
	case *Binary:
		walkExpr(n.X, v)
		walkExpr(n.Y, v)
	case *Paren:
		walkExpr(n.X, v)
	case *Call:
		Walk(n.Fun, v)
		for _, a := range n.Args {
			walkExpr(a, v)
		}
	case *Attribute:
		walkExpr(n.X, v)
		for _, a := range n.Args {
			walkExpr(a, v)
		}
	case *ErrorStmt:
		for _, c := range n.Parts {
			Walk(c, v)
		}
	case *ErrorConc:
		for _, c := range n.Parts {
			Walk(c, v)
		}
	case *ErrorDecl:
		for _, c := range n.Parts {
			Walk(c, v)
		}
	case *ErrorUnit:
		for _, c := range n.Parts {
			Walk(c, v)
		}
	}
}

func walkExpr(e Expr, v Visitor) {
	if e != nil {
		Walk(e, v)
	}
}

func walkType(t *TypeRef, v Visitor) {
	if t != nil {
		Walk(t, v)
	}
}

func walkSeq(ss []SeqStmt, v Visitor) {
	for _, s := range ss {
		Walk(s, v)
	}
}

func walkConc(ss []ConcStmt, v Visitor) {
	for _, s := range ss {
		Walk(s, v)
	}
}

package sema

import (
	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/source"
)

// Env is the cross-file elaboration environment: the global scope holding
// the builtin functions plus every package-level constant and function
// declared so far. internal/project builds one Env per project snapshot,
// feeding package files in dependency order, then analyzes each
// entity/architecture pair against it with AnalyzeDesignUnit.
type Env struct {
	global  *Scope
	partial bool
}

// NewEnv returns an environment containing only the VASS builtins.
func NewEnv() *Env {
	global := NewScope(nil)
	declareBuiltins(global)
	return &Env{global: global}
}

// Partial reports whether any contributing package file contained ERROR
// nodes; designs analyzed against a partial environment are themselves
// marked Partial.
func (env *Env) Partial() bool { return env.partial }

// AddPackages declares the package-level constants and functions of every
// package and package body in df into the environment. Diagnostics are
// appended to errs, with spans resolved against df.File.
func (env *Env) AddPackages(df *ast.DesignFile, errs *diag.List) {
	a := &analyzer{file: df.File, list: errs, errs: diag.NewReporter(df.File, errs, diag.CodeSema)}
	for _, u := range df.Units {
		switch u := u.(type) {
		case *ast.Package:
			if ast.HasErrors(u) {
				env.partial = true
			}
			a.declarePackage(env.global, u.Decls)
		case *ast.PackageBody:
			if ast.HasErrors(u) {
				env.partial = true
			}
			a.declarePackage(env.global, u.Decls)
		case *ast.ErrorUnit:
			// A file-level hole may have swallowed declarations designs
			// depend on: poison the whole environment.
			env.partial = true
		}
	}
}

// AnalyzeDesignUnit checks one entity/architecture pair against the
// environment. The entity and the architecture may come from different
// files. The returned diagnostics are sorted; the design is always non-nil
// and marked Partial when either tree (or the environment) was recovered
// from a broken parse.
func AnalyzeDesignUnit(env *Env, entFile *source.File, ent *ast.Entity, archFile *source.File, arch *ast.Architecture) (*Design, *diag.List) {
	errs := &diag.List{}
	a := &analyzer{file: archFile, list: errs, errs: diag.NewReporter(archFile, errs, diag.CodeSema)}
	d := a.analyzeDesign(env.global, entFile, archFile, ent, arch, env.partial)
	errs.Sort()
	return d, errs
}

entity clean_demo is
  port (
    quantity vin  : in real is voltage;
    quantity vout : out real is voltage
  );
end entity;

architecture behavioral of clean_demo is
  constant g : real := 3.0;
begin
  vout == g * vin;
end architecture;

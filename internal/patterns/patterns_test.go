package patterns

import (
	"testing"

	"vase/internal/library"
	"vase/internal/vhif"
)

func TestGainMatchSelectsAmplifier(t *testing.T) {
	g := vhif.NewGraph("t")
	in := g.AddBlock(vhif.BInput, "a")
	gain := g.AddBlock(vhif.BGain, "g", in.Out)

	cases := []struct {
		k    float64
		cell library.CellKind
	}{
		{-4, library.CellInvAmp},
		{5, library.CellNonInvAmp},
		{0.5, library.CellInvAmp}, // attenuator
	}
	for _, c := range cases {
		gain.Param = c.k
		ms := MatchesFor(g, gain, Options{})
		if len(ms) == 0 {
			t.Fatalf("no match for gain %g", c.k)
		}
		found := false
		for _, m := range ms {
			if m.Cell.Kind == c.cell {
				found = true
			}
		}
		if !found {
			t.Errorf("gain %g: no %s among matches", c.k, c.cell)
		}
	}
}

func TestGainOutOfRangeRejected(t *testing.T) {
	g := vhif.NewGraph("t")
	in := g.AddBlock(vhif.BInput, "a")
	gain := g.AddBlock(vhif.BGain, "g", in.Out)
	gain.Param = 5000 // beyond a single stage
	for _, m := range MatchesFor(g, gain, Options{}) {
		if m.Cell.Kind == library.CellNonInvAmp && m.Transformed == "" {
			t.Errorf("single-stage match for unrealizable gain: %v", m)
		}
	}
}

func TestGainSplitTransformation(t *testing.T) {
	g := vhif.NewGraph("t")
	in := g.AddBlock(vhif.BInput, "a")
	gain := g.AddBlock(vhif.BGain, "g", in.Out)
	gain.Param = 50
	var split *Match
	for _, m := range MatchesFor(g, gain, Options{}) {
		if m.Transformed != "" {
			split = m
		}
	}
	if split == nil {
		t.Fatal("no transformation match")
	}
	if split.OpAmps != 2 {
		t.Errorf("split op amps = %d, want 2", split.OpAmps)
	}
	// Disabled by option.
	for _, m := range MatchesFor(g, gain, Options{NoTransformations: true}) {
		if m.Transformed != "" {
			t.Error("transformation produced despite NoTransformations")
		}
	}
}

func TestSummingAbsorption(t *testing.T) {
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	b := g.AddBlock(vhif.BInput, "b")
	g1 := g.AddBlock(vhif.BGain, "g1", a.Out)
	g1.Param = 4
	g2 := g.AddBlock(vhif.BGain, "g2", b.Out)
	g2.Param = 2
	add := g.AddBlock(vhif.BAdd, "add", g1.Out, g2.Out)

	ms := MatchesFor(g, add, Options{})
	if len(ms) < 2 {
		t.Fatalf("matches = %d, want >= 2 (absorbing + plain)", len(ms))
	}
	best := ms[0] // sequencing rule: largest first
	if len(best.Blocks) != 3 {
		t.Errorf("best match covers %d blocks, want 3 (add + 2 gains)", len(best.Blocks))
	}
	if best.OpAmps != 1 {
		t.Errorf("summing amp = %d op amps, want 1", best.OpAmps)
	}
	if best.Params["gain0"] != 4 || best.Params["gain1"] != 2 {
		t.Errorf("weights = %v", best.Params)
	}
}

func TestSummingRespectsFanout(t *testing.T) {
	// A gain with two readers cannot be absorbed.
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	g1 := g.AddBlock(vhif.BGain, "g1", a.Out)
	g1.Param = 4
	add := g.AddBlock(vhif.BAdd, "add", g1.Out, a.Out)
	g.AddBlock(vhif.BOutput, "tap", g1.Out) // second reader of g1

	for _, m := range MatchesFor(g, add, Options{}) {
		for _, b := range m.Blocks {
			if b == g1 {
				t.Errorf("gain with fanout absorbed by %v", m)
			}
		}
	}
}

func TestNoAbsorptionOption(t *testing.T) {
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	g1 := g.AddBlock(vhif.BGain, "g1", a.Out)
	g1.Param = 4
	add := g.AddBlock(vhif.BAdd, "add", g1.Out, g1.Out)
	for _, m := range MatchesFor(g, add, Options{NoAbsorption: true}) {
		if len(m.Blocks) > 1 {
			t.Errorf("multi-block match despite NoAbsorption: %v", m)
		}
	}
}

func TestPGAPattern(t *testing.T) {
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	c0 := g.AddBlock(vhif.BConst, "c0")
	c0.Param = 0.5
	c1 := g.AddBlock(vhif.BConst, "c1")
	c1.Param = 0.75
	cmp := g.AddBlock(vhif.BComparator, "cmp", a.Out)
	mux := g.AddBlock(vhif.BMux, "mux", c0.Out, c1.Out)
	mux.SetCtrl(g, cmp.Out)
	mul := g.AddBlock(vhif.BMul, "mul", a.Out, mux.Out)

	ms := MatchesFor(g, mul, Options{})
	if ms[0].Cell.Kind != library.CellPGA {
		t.Fatalf("best match = %v, want PGA", ms[0])
	}
	if ms[0].Params["gain_on"] != 0.5 || ms[0].Params["gain_off"] != 0.75 {
		t.Errorf("pga gains = %v", ms[0].Params)
	}
	if ms[0].Ctrl == nil {
		t.Error("pga lost its control net")
	}
}

func TestSummingIntegrator(t *testing.T) {
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	b := g.AddBlock(vhif.BInput, "b")
	g1 := g.AddBlock(vhif.BGain, "g1", a.Out)
	g1.Param = 3
	add := g.AddBlock(vhif.BAdd, "add", g1.Out, b.Out)
	integ := g.AddBlock(vhif.BIntegrator, "i", add.Out)

	ms := MatchesFor(g, integ, Options{})
	best := ms[0]
	if best.Cell.Kind != library.CellIntegrator || len(best.Blocks) != 3 {
		t.Fatalf("best = %v, want summing integrator over 3 blocks", best)
	}
	if best.OpAmps != 1 {
		t.Errorf("summing integrator op amps = %d", best.OpAmps)
	}
}

func TestScaledLogAntilog(t *testing.T) {
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	lg := g.AddBlock(vhif.BLog, "lg", a.Out)
	gn := g.AddBlock(vhif.BGain, "gn", lg.Out)
	gn.Param = 2

	ms := MatchesFor(g, gn, Options{})
	if ms[0].Cell.Kind != library.CellLogAmp || len(ms[0].Blocks) != 2 {
		t.Fatalf("best = %v, want scaled log amp", ms[0])
	}
	if ms[0].Params["scale"] != 2 {
		t.Errorf("scale = %v", ms[0].Params)
	}

	ex := g.AddBlock(vhif.BExp, "ex", gn.Out)
	gc := g.AddBlock(vhif.BGain, "gc", ex.Out)
	gc.Param = 0.3
	ms = MatchesFor(g, gc, Options{})
	if ms[0].Cell.Kind != library.CellAntilogAmp {
		t.Fatalf("best = %v, want scaled antilog amp", ms[0])
	}
}

func TestInvertedDetectorAbsorption(t *testing.T) {
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	cmp := g.AddBlock(vhif.BComparator, "cmp", a.Out)
	cmp.Param = 0.2
	not := g.AddBlock(vhif.BNot, "inv", cmp.Out)

	ms := MatchesFor(g, not, Options{})
	best := ms[0]
	if best.Cell.Kind != library.CellComparator || len(best.Blocks) != 2 {
		t.Fatalf("best = %v, want inverting comparator over 2 blocks", best)
	}
	if best.Params["invert"] != 1 || best.Params["threshold"] != 0.2 {
		t.Errorf("params = %v", best.Params)
	}
	if best.OpAmps != 1 {
		t.Errorf("op amps = %d, want 1 (inversion is free)", best.OpAmps)
	}
}

func TestOutputStageAbsorbsLimiter(t *testing.T) {
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	lim := g.AddBlock(vhif.BLimiter, "lim", a.Out)
	lim.Param = 1.5
	buf := g.AddBlock(vhif.BBuffer, "buf", lim.Out)
	buf.Param = 270

	ms := MatchesFor(g, buf, Options{})
	best := ms[0]
	if best.Cell.Kind != library.CellOutputStage || len(best.Blocks) != 2 {
		t.Fatalf("best = %v, want limiting output stage", best)
	}
	if best.Params["limit"] != 1.5 || best.Params["load"] != 270 {
		t.Errorf("params = %v", best.Params)
	}
}

func TestStructuralBlocksUnmatched(t *testing.T) {
	g := vhif.NewGraph("t")
	in := g.AddBlock(vhif.BInput, "a")
	c := g.AddBlock(vhif.BConst, "k")
	out := g.AddBlock(vhif.BOutput, "y", in.Out)
	for _, b := range []*vhif.Block{in, c, out} {
		if ms := MatchesFor(g, b, Options{}); ms != nil {
			t.Errorf("structural block %s matched: %v", b.Name, ms)
		}
	}
}

func TestMinMaxOpParam(t *testing.T) {
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	b := g.AddBlock(vhif.BInput, "b")
	mn := g.AddBlock(vhif.BMin, "mn", a.Out, b.Out)
	mx := g.AddBlock(vhif.BMax, "mx", a.Out, b.Out)
	if MatchesFor(g, mn, Options{})[0].Params["op"] != 0 {
		t.Error("min op param")
	}
	if MatchesFor(g, mx, Options{})[0].Params["op"] != 1 {
		t.Error("max op param")
	}
}

func TestMatchOrdering(t *testing.T) {
	// Sequencing rule: matches sorted by blocks desc, then op amps asc.
	g := vhif.NewGraph("t")
	a := g.AddBlock(vhif.BInput, "a")
	g1 := g.AddBlock(vhif.BGain, "g1", a.Out)
	g1.Param = 2
	add := g.AddBlock(vhif.BAdd, "add", g1.Out, a.Out)
	ms := MatchesFor(g, add, Options{})
	for i := 1; i < len(ms); i++ {
		if len(ms[i].Blocks) > len(ms[i-1].Blocks) {
			t.Errorf("ordering violated at %d: %v before %v", i, ms[i-1], ms[i])
		}
	}
}

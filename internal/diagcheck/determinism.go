package diagcheck

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// EnginePackages are the package directories (relative to the repository
// root) whose outputs must be pure functions of their inputs: the paper's
// reproducibility claims (bitwise-identical netlists at any worker count,
// content-addressed caching, shrinkable fuzz reproducers) all rest on it.
// The determinism analyzer bans wall-clock reads and unordered map
// iteration in these packages unless a site is explicitly annotated.
var EnginePackages = []string{
	"internal/absint",
	"internal/estimate",
	"internal/gen",
	"internal/mapper",
	"internal/mna",
	"internal/netlist",
	"internal/pipeline",
	"internal/sim",
	"internal/vhif",
}

// Escape-hatch directives. A directive on the offending line, or on the
// line directly above it, suppresses the finding — the annotation is the
// reviewable record that the site was judged deliberately.
const (
	// WalltimeDirective marks a deliberate wall-clock read: anytime
	// plumbing (deadlines, budgets) and telemetry (stats counters) may
	// observe real time because their output is advisory, never part of a
	// deterministic artifact.
	WalltimeDirective = "//vase:walltime"
	// UnorderedDirective marks a map-range loop whose body is order
	// insensitive (commutative accumulation, per-key writes) even though
	// the enclosing function never sorts.
	UnorderedDirective = "//vase:unordered"
)

// wallclock maps banned "pkg.Func" selectors to the reason.
var wallclock = map[string]string{
	"time.Now":   "engine output must not depend on the wall clock; annotate anytime/telemetry plumbing with " + WalltimeDirective,
	"time.Since": "engine output must not depend on the wall clock; annotate anytime/telemetry plumbing with " + WalltimeDirective,
}

// sortCalls are the selector calls that establish a deterministic order in
// the enclosing function, licensing its map-range loops.
var sortCalls = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
	"slices.Sorted": true, "slices.SortedFunc": true,
}

// CheckDeterminismDir type-checks one package directory (non-test files
// only) and reports wall-clock reads and unguarded map-range loops. The
// type information comes from the standard library's source importer, so
// the check needs no compiled export data and no external analysis
// framework.
func CheckDeterminismDir(dir string) ([]Violation, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// Lenient type check: collect expression types, swallow errors. An
	// unresolvable expression simply isn't flagged — the analyzer must
	// never fail a build the compiler accepts.
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {},
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	_, _ = conf.Check(dir, fset, files, info)

	var out []Violation
	for _, f := range files {
		out = append(out, checkDeterminismFile(fset, f, info)...)
	}
	sortViolations(out)
	return out, nil
}

// checkDeterminismFile walks one file's top-level declarations. Findings
// are attributed per enclosing function so a sort call anywhere in the
// function licenses its map ranges.
func checkDeterminismFile(fset *token.FileSet, f *ast.File, info *types.Info) []Violation {
	directives := directiveLines(fset, f)
	allowed := func(directive string, pos token.Pos) bool {
		line := fset.Position(pos).Line
		return directives[directive][line] || directives[directive][line-1]
	}
	aliases := importAliases(f)
	selector := func(call *ast.CallExpr) string {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return ""
		}
		pkgPath, ok := aliases[ident.Name]
		if !ok {
			return ""
		}
		return pkgPath + "." + sel.Sel.Name
	}

	var out []Violation
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		sorted := false
		var clocks []*ast.CallExpr
		var mapRanges []*ast.RangeStmt
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				key := selector(n)
				if sortCalls[key] {
					sorted = true
				}
				if _, banned := wallclock[key]; banned {
					clocks = append(clocks, n)
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					mapRanges = append(mapRanges, n)
				}
			}
			return true
		})
		for _, call := range clocks {
			if allowed(WalltimeDirective, call.Pos()) {
				continue
			}
			key := selector(call)
			out = append(out, Violation{
				Pos:    fset.Position(call.Pos()),
				Call:   key,
				Reason: wallclock[key],
			})
		}
		if sorted {
			// The function establishes an explicit order somewhere; its
			// map iterations are taken as feeding that normalization.
			continue
		}
		for _, rs := range mapRanges {
			if allowed(UnorderedDirective, rs.Pos()) {
				continue
			}
			out = append(out, Violation{
				Pos:  fset.Position(rs.Pos()),
				Call: "range over map",
				Reason: fmt.Sprintf("map iteration order is random and %s never sorts; "+
					"sort the keys before ordered output, or annotate an order-insensitive loop with %s",
					fn.Name.Name, UnorderedDirective),
			})
		}
	}
	return out
}

// importAliases maps local import names to package paths, resolving
// aliases the same way the diagnostics checker does.
func importAliases(f *ast.File) map[string]string {
	aliases := map[string]string{}
	for _, imp := range f.Imports {
		pathVal := strings.Trim(imp.Path.Value, `"`)
		name := pathVal[strings.LastIndex(pathVal, "/")+1:]
		if imp.Name != nil && imp.Name.Name != "_" && imp.Name.Name != "." {
			name = imp.Name.Name
		}
		aliases[name] = pathVal
	}
	return aliases
}

// directiveLines indexes, per directive, the source lines carrying it
// (trailing comments and full-line comments alike).
func directiveLines(fset *token.FileSet, f *ast.File) map[string]map[int]bool {
	out := map[string]map[int]bool{
		WalltimeDirective:  {},
		UnorderedDirective: {},
		FailfastDirective:  {},
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for directive, lines := range out {
				if strings.HasPrefix(c.Text, directive) {
					lines[fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	return out
}

// CheckDeterminismAll runs CheckDeterminismDir over every engine package
// under root.
func CheckDeterminismAll(root string) ([]Violation, error) {
	var out []Violation
	for _, pkg := range EnginePackages {
		vs, err := CheckDeterminismDir(filepath.Join(root, pkg))
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	sortViolations(out)
	return out, nil
}

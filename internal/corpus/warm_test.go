// Warm-cache contract of the corpus harness: rebuilding the unchanged
// corpus — in process or across processes via a shared cache directory —
// skips all front-end and search work and reproduces Table 1 byte for byte.
package corpus_test

import (
	"context"
	"testing"

	"vase/internal/corpus"
	"vase/internal/mapper"
	"vase/internal/pipeline"
)

func buildTable(t *testing.T, p *pipeline.Pipeline) ([]*corpus.Build, string) {
	t.Helper()
	builds, err := corpus.BuildAllIn(context.Background(), p, mapper.DefaultOptions())
	if err != nil {
		t.Fatalf("BuildAllIn: %v", err)
	}
	return builds, corpus.Table1(builds)
}

// assertAllCached fails unless every stage that can be memoized was served
// from cache on the warm pass (no compile or map misses).
func assertAllCached(t *testing.T, builds []*corpus.Build, coldStats, warmStats pipeline.Stats) {
	t.Helper()
	for _, b := range builds {
		if !b.Cached {
			t.Errorf("warm build of %s was not served from cache", b.App.Key)
		}
	}
	apps := uint64(len(corpus.Applications()))
	for _, st := range []pipeline.Stage{pipeline.StageCompile, pipeline.StageMap} {
		cold, warm := coldStats.Stage(st), warmStats.Stage(st)
		if warm.Misses != cold.Misses {
			t.Errorf("%s stage recomputed on the warm pass: %d misses, then %d", st, cold.Misses, warm.Misses)
		}
		if warm.Cached() != cold.Cached()+apps {
			t.Errorf("%s stage served %d cached, want %d", st, warm.Cached()-cold.Cached(), apps)
		}
	}
}

func TestWarmCorpusBuildInProcess(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, cold := buildTable(t, p)
	coldStats := p.Stats()
	builds, warm := buildTable(t, p)
	if cold != warm {
		t.Errorf("warm Table 1 differs:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	assertAllCached(t, builds, coldStats, p.Stats())
}

func TestWarmCorpusBuildAcrossPipelines(t *testing.T) {
	dir := t.TempDir()
	a, err := pipeline.New(pipeline.Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, cold := buildTable(t, a)

	// A fresh pipeline over the same directory models a second process.
	b, err := pipeline.New(pipeline.Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	builds, warm := buildTable(t, b)
	if cold != warm {
		t.Errorf("cross-process Table 1 differs:\n--- first ---\n%s--- second ---\n%s", cold, warm)
	}
	assertAllCached(t, builds, pipeline.Stats{}, b.Stats())
	for _, st := range []pipeline.Stage{pipeline.StageCompile, pipeline.StageMap} {
		if s := b.Stats().Stage(st); s.DiskHits != uint64(len(builds)) {
			t.Errorf("%s stage: %d disk hits, want %d", st, s.DiskHits, len(builds))
		}
	}
}

// Filterinfer: annotation-driven filter inference (paper Section 3: specify
// frequency ranges along the signal path "and let the synthesis tool infer
// an appropriate filter type"). The same behavioral specification gets a
// low-pass or a band-pass output stage purely from its port annotation.
package main

import (
	"fmt"
	"log"
	"math"

	"vase"
)

const lowpassSrc = `
entity sensor_if is
  port (
    quantity vin  : in real is voltage;
    quantity vout : out real is voltage is frequency 0 to 1000.0
  );
end entity;
architecture a of sensor_if is
begin
  vout == 5.0 * vin;
end architecture;
`

const bandpassSrc = `
entity tone_pick is
  port (
    quantity vin  : in real is voltage;
    quantity vout : out real is voltage is frequency 500.0 to 2000.0
  );
end entity;
architecture a of tone_pick is
begin
  vout == vin;
end architecture;
`

func main() {
	run("low-pass inference (frequency 0 to 1 kHz)", lowpassSrc, []float64{100, 20e3})
	fmt.Println()
	run("band-pass inference (frequency 500 to 2000 Hz)", bandpassSrc, []float64{20, 1000, 50e3})
}

func run(title, src string, probeFreqs []float64) {
	fmt.Println("==", title, "==")
	design, err := vase.Compile(vase.Source{Name: "f.vhd", Text: src})
	if err != nil {
		log.Fatal(err)
	}
	arch, err := design.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesis: %s\n", arch.Netlist.Summary())

	for _, f := range probeFreqs {
		tr, err := design.Simulate(map[string]vase.Waveform{
			"vin": vase.Sine(1, f, 0),
		}, vase.SimOptions{TStop: 12 / f, TStep: math.Min(1e-6, 0.01/f)})
		if err != nil {
			log.Fatal(err)
		}
		out := tr.Get("vout")
		peak := 0.0
		for _, v := range out[len(out)/2:] {
			peak = math.Max(peak, math.Abs(v))
		}
		fmt.Printf("  %8.0f Hz -> output peak %.3f\n", f, peak)
	}
}

package estimate

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"vase/internal/library"
)

// TestEstimateCellMemoized pins the memoization contract: a repeat call with
// equal arguments returns a byte-identical estimate against the uncached
// computation, and the returned OpAmps slice is the caller's own copy.
func TestEstimateCellMemoized(t *testing.T) {
	sys := DefaultSystemSpec()
	for _, cell := range library.Catalog() {
		inst := CellInstance{Cell: cell, Gain: 3, Inputs: 1}
		want, werr := estimateCellUncached(SCN20, sys, inst)
		got, err := EstimateCell(SCN20, sys, inst)
		if (err == nil) != (werr == nil) {
			t.Fatalf("%s: err %v, uncached %v", cell.Name, err, werr)
		}
		again, _ := EstimateCell(SCN20, sys, inst)
		for _, e := range []CellEstimate{got, again} {
			if math.Float64bits(e.AreaUm2) != math.Float64bits(want.AreaUm2) ||
				math.Float64bits(e.Power) != math.Float64bits(want.Power) {
				t.Errorf("%s: cached estimate differs: area %x vs %x, power %x vs %x",
					cell.Name,
					math.Float64bits(e.AreaUm2), math.Float64bits(want.AreaUm2),
					math.Float64bits(e.Power), math.Float64bits(want.Power))
			}
			if !reflect.DeepEqual(e.OpAmps, want.OpAmps) {
				t.Errorf("%s: cached op-amp designs differ", cell.Name)
			}
		}
		if len(got.OpAmps) > 0 {
			// Mutating one caller's slice must not leak into the next.
			got.OpAmps[0].AreaUm2 = -1
			fresh, _ := EstimateCell(SCN20, sys, inst)
			if fresh.OpAmps[0].AreaUm2 == -1 {
				t.Fatalf("%s: caller mutation reached the cache", cell.Name)
			}
		}
	}
}

// TestEstimateCellConcurrent hammers the cache from many goroutines with a
// small working set; under -race this verifies the hit path is safe while
// the set is still being populated.
func TestEstimateCellConcurrent(t *testing.T) {
	sys := DefaultSystemSpec()
	cells := library.Catalog()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cell := cells[(seed+i)%len(cells)]
				inst := CellInstance{Cell: cell, Gain: float64(1 + i%4), Inputs: 1}
				est, err := EstimateCell(SCN20, sys, inst)
				if err != nil {
					t.Errorf("%s: %v", cell.Name, err)
					return
				}
				if len(est.OpAmps) != cell.OpAmps {
					t.Errorf("%s: %d op amps, want %d", cell.Name, len(est.OpAmps), cell.OpAmps)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

package estimate

import (
	"math"
	"testing"
	"testing/quick"

	"vase/internal/library"
)

func TestDesignOpAmpDefault(t *testing.T) {
	d, err := DesignOpAmp(SCN20, DefaultSpec())
	if err != nil {
		t.Fatalf("design: %v", err)
	}
	if d.AreaUm2 <= 0 {
		t.Errorf("area = %g, want > 0", d.AreaUm2)
	}
	if d.Power <= 0 {
		t.Errorf("power = %g, want > 0", d.Power)
	}
	if d.AchievedUGF < DefaultSpec().UGF*0.99 {
		t.Errorf("achieved UGF %g < spec %g", d.AchievedUGF, DefaultSpec().UGF)
	}
	if d.AchievedSR < DefaultSpec().SlewRate*0.99 {
		t.Errorf("achieved SR %g < spec %g", d.AchievedSR, DefaultSpec().SlewRate)
	}
}

func TestDesignRejectsInvalidSpec(t *testing.T) {
	if _, err := DesignOpAmp(SCN20, OpAmpSpec{}); err == nil {
		t.Error("expected error for zero spec")
	}
}

func TestAreaMonotonicInUGF(t *testing.T) {
	base := DefaultSpec()
	prev := 0.0
	for _, ugf := range []float64{1e6, 5e6, 20e6, 80e6} {
		s := base
		s.UGF = ugf
		d, err := DesignOpAmp(SCN20, s)
		if err != nil {
			t.Fatalf("design at %g: %v", ugf, err)
		}
		if d.AreaUm2 < prev {
			t.Errorf("area decreased with UGF: %g at %g Hz (prev %g)", d.AreaUm2, ugf, prev)
		}
		prev = d.AreaUm2
	}
}

func TestPowerMonotonicInSlew(t *testing.T) {
	base := DefaultSpec()
	prev := 0.0
	for _, sr := range []float64{1e6, 5e6, 20e6} {
		s := base
		s.SlewRate = sr
		d, err := DesignOpAmp(SCN20, s)
		if err != nil {
			t.Fatalf("design: %v", err)
		}
		if d.Power < prev {
			t.Errorf("power decreased with slew: %g at %g V/s", d.Power, sr)
		}
		prev = d.Power
	}
}

func TestResistiveLoadRaisesPower(t *testing.T) {
	s1 := DefaultSpec()
	d1, err := DesignOpAmp(SCN20, s1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := s1
	s2.LoadRes = 270 // the receiver's earphone load
	d2, err := DesignOpAmp(SCN20, s2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Power <= d1.Power {
		t.Errorf("driving 270 ohm should cost power: %g vs %g", d2.Power, d1.Power)
	}
}

func TestMinOpAmpIsMinimal(t *testing.T) {
	min := MinOpAmp(SCN20)
	d, err := DesignOpAmp(SCN20, DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if min.AreaUm2 > d.AreaUm2 {
		t.Errorf("MinOpAmp area %g exceeds a designed op amp %g", min.AreaUm2, d.AreaUm2)
	}
	if min.AreaUm2 <= 0 {
		t.Error("MinArea must be positive")
	}
}

func TestMinAreaLowerBoundProperty(t *testing.T) {
	// Property: any feasible design has area >= MinArea (the soundness of
	// the paper's bounding rule).
	min := MinArea(SCN20)
	f := func(ugfMHz, srV, clPF uint8) bool {
		spec := OpAmpSpec{
			UGF:      float64(ugfMHz%50+1) * 1e6,
			SlewRate: float64(srV%20+1) * 1e6,
			LoadCap:  float64(clPF%40+1) * 1e-12,
			GainDB:   60,
		}
		d, err := DesignOpAmp(SCN20, spec)
		if err != nil {
			return true // infeasible specs are fine
		}
		return d.AreaUm2 >= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTransistorDimensionsRespectMinimum(t *testing.T) {
	d, err := DesignOpAmp(SCN20, DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.W {
		if d.W[i] < SCN20.Wmin {
			t.Errorf("W[%d] = %g below Wmin", i, d.W[i])
		}
		if d.L[i] < SCN20.Lmin {
			t.Errorf("L[%d] = %g below Lmin", i, d.L[i])
		}
	}
}

func TestPassiveAreas(t *testing.T) {
	if a := ResistorArea(SCN20, 10e3); a <= 0 {
		t.Error("resistor area must be positive")
	}
	if ResistorArea(SCN20, 100e3) <= ResistorArea(SCN20, 10e3) {
		t.Error("larger resistors need more area")
	}
	if CapacitorArea(SCN20, 10e-12) <= CapacitorArea(SCN20, 1e-12) {
		t.Error("larger caps need more area")
	}
	if ResistorArea(SCN20, 0) != 0 || CapacitorArea(SCN20, 0) != 0 {
		t.Error("zero-valued passives occupy no area")
	}
}

func TestEstimateCellOpAmpCount(t *testing.T) {
	for _, cell := range library.Catalog() {
		inst := CellInstance{Cell: cell, Gain: 2, Inputs: 1}
		est, err := EstimateCell(SCN20, DefaultSystemSpec(), inst)
		if err != nil {
			t.Errorf("estimate %s: %v", cell.Name, err)
			continue
		}
		if len(est.OpAmps) != cell.OpAmps {
			t.Errorf("%s: sized %d op amps, want %d", cell.Name, len(est.OpAmps), cell.OpAmps)
		}
		if est.AreaUm2 <= 0 {
			t.Errorf("%s: area %g, want > 0", cell.Name, est.AreaUm2)
		}
	}
}

func TestEstimateCellGainRaisesArea(t *testing.T) {
	cell := library.Get(library.CellInvAmp)
	lo, err := EstimateCell(SCN20, DefaultSystemSpec(), CellInstance{Cell: cell, Gain: 2})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := EstimateCell(SCN20, DefaultSystemSpec(), CellInstance{Cell: cell, Gain: 80})
	if err != nil {
		t.Fatal(err)
	}
	if hi.AreaUm2 <= lo.AreaUm2 {
		t.Errorf("gain-80 amp should be larger than gain-2: %g vs %g", hi.AreaUm2, lo.AreaUm2)
	}
}

func TestMultiplierCostsMoreThanAmp(t *testing.T) {
	sys := DefaultSystemSpec()
	amp, err := EstimateCell(SCN20, sys, CellInstance{Cell: library.Get(library.CellInvAmp), Gain: 2})
	if err != nil {
		t.Fatal(err)
	}
	mul, err := EstimateCell(SCN20, sys, CellInstance{Cell: library.Get(library.CellMultiplier), Gain: 1, Inputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mul.AreaUm2 <= amp.AreaUm2 {
		t.Errorf("multiplier (%g) should dwarf a single amp (%g)", mul.AreaUm2, amp.AreaUm2)
	}
	if ratio := mul.AreaUm2 / amp.AreaUm2; math.IsNaN(ratio) || ratio < 2 {
		t.Errorf("multiplier/amp area ratio = %.1f, want >= 2", ratio)
	}
}

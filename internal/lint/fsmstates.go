package lint

import (
	"vase/internal/diag"
	"vase/internal/source"
	"vase/internal/vhif"
)

// fsmStatesPass inspects the event-driven part of the module: states that
// can never be entered from the start state (unreachable) and states the
// machine can never leave again (dead ends — entering one deadlocks the
// process forever, since VASS processes resume only through their arcs).
var fsmStatesPass = &Pass{
	Name: "fsmstates",
	Doc:  "unreachable and dead-end FSM states",
	Run:  runFSMStates,
}

func runFSMStates(u *Unit) {
	if u.Module == nil {
		return
	}
	for _, f := range u.Module.FSMs {
		if f.Start == nil || len(f.States) == 0 {
			u.Report(diag.CodeFSMStructure, source.NewSpan(source.NoPos, source.NoPos),
				"fsm %q has no start state", f.Name)
			continue
		}
		reach := map[*vhif.State]bool{f.Start: true}
		work := []*vhif.State{f.Start}
		for len(work) > 0 {
			s := work[0]
			work = work[1:]
			for _, a := range f.ArcsFrom(s) {
				if a.To != nil && !reach[a.To] {
					reach[a.To] = true
					work = append(work, a.To)
				}
			}
		}
		for _, s := range f.States {
			if !reach[s] {
				u.Report(diag.CodeUnreachableState, source.NewSpan(source.NoPos, source.NoPos),
					"fsm %q: state %q is unreachable from the start state", f.Name, s.Name).
					WithFix("add an arc into %q or delete the state", s.Name)
				continue
			}
			if s != f.Start && len(f.ArcsFrom(s)) == 0 {
				u.Report(diag.CodeDeadEndState, source.NewSpan(source.NoPos, source.NoPos),
					"fsm %q: state %q has no outgoing arc; the process deadlocks once it enters", f.Name, s.Name).
					WithFix("add an arc returning to the start (suspended) state")
			}
		}
	}
}

// Quickstart: synthesize a two-input weighted amplifier from a VASS
// specification and inspect every stage of the VASE flow — the VHIF
// intermediate representation, the synthesized op-amp netlist, its area
// estimate, and a behavioral simulation.
package main

import (
	"fmt"
	"log"

	"vase"
)

const src = `
entity mixer is
  port (
    quantity mic   : in real is voltage;
    quantity aux   : in real is voltage;
    quantity mixed : out real is voltage drives 10 kohm
  );
end entity;

architecture behavior of mixer is
  constant gmic : real := 8.0;
  constant gaux : real := 2.0;
begin
  mixed == gmic * mic + gaux * aux;
end architecture;
`

func main() {
	// 1. Compile VASS -> VHIF.
	design, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: src})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== VHIF intermediate representation ==")
	fmt.Print(design.VHIF.Dump())

	// 2. Synthesize VHIF -> op-amp netlist (branch and bound, minimum area).
	arch, err := design.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== synthesized architecture ==")
	fmt.Print(arch.Netlist.Dump())
	fmt.Printf("\nresult: %s — %d op amp(s), %.0f um^2, %.2f mW\n",
		arch.Netlist.Summary(), arch.Netlist.OpAmpCount(),
		arch.Report.AreaUm2, arch.Report.PowerMW)

	// 3. Verify: behavioral simulation of the compiled design.
	tr, err := design.Simulate(map[string]vase.Waveform{
		"mic": vase.DC(0.05),
		"aux": vase.DC(0.1),
	}, vase.SimOptions{TStop: 1e-3, TStep: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated mixed output: %.3f V (expected 8*0.05 + 2*0.1 = 0.6)\n",
		tr.Final("mixed"))
}

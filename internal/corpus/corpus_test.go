package corpus

import (
	"strings"
	"testing"
)

func TestAllApplicationsBuild(t *testing.T) {
	builds, err := BuildAll()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if len(builds) != 5 {
		t.Fatalf("applications = %d, want 5", len(builds))
	}
}

// TestTable1 checks every metric column of every row against the paper,
// allowing only the documented deviations.
func TestTable1(t *testing.T) {
	for _, app := range Applications() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			b, err := BuildApp(app)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			a, e := b.Actual, app.Expected
			if a.ContinuousLines != e.ContinuousLines {
				t.Errorf("continuous lines = %d, paper %d", a.ContinuousLines, e.ContinuousLines)
			}
			if a.Quantities != e.Quantities {
				t.Errorf("quantities = %d, paper %d", a.Quantities, e.Quantities)
			}
			if a.EventLines != e.EventLines {
				t.Errorf("event lines = %d, paper %d", a.EventLines, e.EventLines)
			}
			if a.Signals != e.Signals {
				t.Errorf("signals = %d, paper %d", a.Signals, e.Signals)
			}
			if a.Blocks != e.Blocks {
				t.Errorf("blocks = %d, paper %d\n%s", a.Blocks, e.Blocks, b.Module.Dump())
			}
			if a.States != e.States {
				t.Errorf("states = %d, paper %d\n%s", a.States, e.States, b.Module.Dump())
			}
			if a.Datapath != e.Datapath {
				t.Errorf("datapath = %d, paper %d\n%s", a.Datapath, e.Datapath, b.Module.Dump())
			}
		})
	}
}

// TestSynthesisResults checks the component mixes of the last column.
func TestSynthesisResults(t *testing.T) {
	want := map[string][]string{
		"receiver":   {"2 amplif.", "1 zero-cross det."},
		"powermeter": {"2 zero-cross det.", "2 S/H", "2 ADC"},
		"missile":    {"2 integ.", "1 anti-log.amplif.", "4 amplif.", "1 log.amplif."},
		// Documented deviations: 2 integrators (stable second-order loop)
		// and the difference amplifier reported in the generic amplifier
		// bucket; see Application.Deviations.
		"itersolver": {"2 integ.", "1 S/H", "1 amplif."},
		"funcgen":    {"1 integ.", "1 MUX", "1 Schmitt trigger"},
	}
	for key, parts := range want {
		app := ByKey(key)
		if app == nil {
			t.Fatalf("no application %q", key)
		}
		b, err := BuildApp(app)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		for _, p := range parts {
			if !strings.Contains(b.Actual.Synthesis, p) {
				t.Errorf("%s synthesis = %q, missing %q\n%s", key, b.Actual.Synthesis, p, b.Result.Netlist.Dump())
			}
		}
	}
}

func TestTable1Renders(t *testing.T) {
	builds, err := BuildAll()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	text := Table1(builds)
	for _, name := range []string{"Receiver Module", "Power Meter", "Missile Solver", "Iter.Equat. Solver", "Function Generator"} {
		if !strings.Contains(text, name) {
			t.Errorf("table missing %q:\n%s", name, text)
		}
	}
}

func TestAreasPositive(t *testing.T) {
	builds, err := BuildAll()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, b := range builds {
		if b.AreaUm2 <= 0 {
			t.Errorf("%s: area = %g", b.App.Key, b.AreaUm2)
		}
	}
}

func TestByKey(t *testing.T) {
	if ByKey("receiver") == nil {
		t.Error("receiver missing")
	}
	if ByKey("nosuch") != nil {
		t.Error("unexpected application")
	}
}

module vase

go 1.22

entity func_gen is
  port (quantity wave : out real; signal sync : out bit);
end entity;

architecture ramp of func_gen is
  constant k   : real := 1000.0;
  constant g2  : real := 2.0;
  constant amp : real := 1.0;
  quantity slope : real;
  signal up, run : bit;
begin
  wave'dot == g2 * slope;
  if (up = '1') use slope == k; else slope == -k; end use;
  process (wave'above(amp), wave'above(-amp)) is begin
    up <= not up;
    sync <= '1'; run <= '1';
  end process;
end architecture;

package netlist

import (
	"strings"
	"testing"

	"vase/internal/estimate"
	"vase/internal/library"
)

func TestSizingReport(t *testing.T) {
	nl := buildSimple()
	sized, err := nl.SizingReport(estimate.SCN20, estimate.DefaultSystemSpec())
	if err != nil {
		t.Fatalf("sizing: %v", err)
	}
	if len(sized) != nl.OpAmpCount() {
		t.Fatalf("sized %d op amps, netlist has %d", len(sized), nl.OpAmpCount())
	}
	for _, s := range sized {
		d := s.Design
		if d.AreaUm2 <= 0 || d.Power <= 0 {
			t.Errorf("%s: bad design %+v", s.Component, d)
		}
		for i := range d.W {
			if d.W[i] < estimate.SCN20.Wmin || d.L[i] < estimate.SCN20.Lmin {
				t.Errorf("%s M%d: %g/%g below process minimums", s.Component, i+1, d.W[i], d.L[i])
			}
		}
	}
}

func TestSizingDrivenStageIsBigger(t *testing.T) {
	nl := New("drv")
	in := nl.NewNet("in")
	out := nl.NewNet("out")
	mid := nl.NewNet("mid")
	small := nl.AddComponent(library.Get(library.CellInvAmp), "small", []*Net{in}, mid)
	small.SetParam("gain", -2)
	stage := nl.AddComponent(library.Get(library.CellOutputStage), "stage", []*Net{mid}, out)
	stage.SetParam("load", 270)
	sized, err := nl.SizingReport(estimate.SCN20, estimate.DefaultSystemSpec())
	if err != nil {
		t.Fatalf("sizing: %v", err)
	}
	byName := map[string]estimate.OpAmpDesign{}
	for _, s := range sized {
		byName[s.Component] = s.Design
	}
	if byName["stage"].I6 <= byName["small"].I6 {
		t.Errorf("the 270-ohm drive stage should need more output current: %g vs %g",
			byName["stage"].I6, byName["small"].I6)
	}
}

func TestFormatSizing(t *testing.T) {
	nl := buildSimple()
	sized, err := nl.SizingReport(estimate.SCN20, estimate.DefaultSystemSpec())
	if err != nil {
		t.Fatalf("sizing: %v", err)
	}
	text := FormatSizing(estimate.SCN20, sized)
	for _, want := range []string{"transistor sizing", "MOSIS SCN 2.0um", "M1", "Cc [pF]"} {
		if !strings.Contains(text, want) {
			t.Errorf("sizing text missing %q:\n%s", want, text)
		}
	}
}

func TestAreaBreakdown(t *testing.T) {
	nl := buildSimple()
	if _, err := nl.Estimate(estimate.SCN20, estimate.DefaultSystemSpec()); err != nil {
		t.Fatal(err)
	}
	text := AreaBreakdown(nl)
	for _, want := range []string{"area breakdown", "total", "%"} {
		if !strings.Contains(text, want) {
			t.Errorf("breakdown missing %q:\n%s", want, text)
		}
	}
}

func TestSampleHoldSizedTwice(t *testing.T) {
	nl := New("sh")
	in := nl.NewNet("in")
	out := nl.NewNet("out")
	ctl := nl.NewNet("ctl")
	cmp := nl.AddComponent(library.Get(library.CellComparator), "cmp", []*Net{in}, ctl)
	_ = cmp
	sh := nl.AddComponent(library.Get(library.CellSampleHold), "sh", []*Net{in}, out)
	sh.Ctrl = ctl
	sized, err := nl.SizingReport(estimate.SCN20, estimate.DefaultSystemSpec())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, s := range sized {
		if s.Component == "sh" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("S/H sized %d op amps, want 2 (input and output buffers)", count)
	}
}

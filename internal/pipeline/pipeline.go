// Package pipeline is the unified pass manager of the VASE flow: it models
// the two technology-separated steps of the paper (VASS→VHIF compilation,
// VHIF→netlist architecture generation) as a sequence of typed stages
//
//	Parse → Sema → Compile (VHIF) → Lint → Ranges → Map → Estimate → Netlist
//
// and memoizes each stage under a content-addressed key: the SHA-256 of the
// stage's canonical input artifact, the canonically-encoded stage options,
// and the fingerprints of the pattern and cell libraries. PR 1 made every
// stage byte-deterministic — the same key always denotes the same bytes —
// which is exactly the property that makes this memoization sound.
//
// Three layers serve a key:
//
//  1. an in-memory LRU shared by every caller of the same Pipeline,
//  2. an optional on-disk artifact store (Options.CacheDir) holding the
//     serializable artifacts (VHIF text for the compile stage, the netlist
//     encoding for the map stage) so results survive across processes, and
//  3. single-flight deduplication: concurrent requests for the same key
//     share one computation instead of racing redundant searches. The
//     shared computation is detached from every individual request's
//     context — it is cancelled only when the last interested caller has
//     departed — so one client's timeout can never fail another client's
//     request (the property a multi-tenant server depends on).
//
// Degraded results are never cached: a search truncated by a deadline, node
// budget or cancellation (Result.Nonoptimal), or any stage that observed a
// cancelled context, produces an artifact that depends on scheduling rather
// than on its inputs alone, so it is returned to the caller but never
// stored. Errors are likewise never cached. Traced synthesis runs
// (Options.Trace) bypass the cache entirely — a decision tree must reflect
// a real search, and a cached netlist has none.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Stage identifies one pass of the flow.
type Stage int

// The pipeline stages in execution order. StageNetlist is the
// materialization pass that decodes a netlist artifact into a fresh object
// graph, and StageEstimate re-derives the area/power report on it; both run
// on every synthesis request — cached or not — because estimation annotates
// the netlist in place, so handing out a shared cached object would race.
// Their counters therefore track computations and latency only.
const (
	StageParse Stage = iota
	StageSema
	StageCompile
	StageLint
	StageRanges
	StageMap
	StageEstimate
	StageNetlist
	StageSpice
	NumStages
)

var stageNames = [NumStages]string{
	StageParse:    "parse",
	StageSema:     "sema",
	StageCompile:  "compile",
	StageLint:     "lint",
	StageRanges:   "ranges",
	StageMap:      "map",
	StageEstimate: "estimate",
	StageNetlist:  "netlist",
	StageSpice:    "spice",
}

// String returns the stage slug used in stats output and disk filenames.
func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Options configures a Pipeline.
type Options struct {
	// MemoryEntries caps the in-memory LRU (0 selects the default of 512
	// entries; negative disables in-memory caching).
	MemoryEntries int
	// CacheDir enables the on-disk artifact store rooted at the given
	// directory ("" = memory only). Artifacts are content-addressed, so a
	// directory may safely be shared by concurrent processes.
	CacheDir string
	// CacheBytes bounds the on-disk store (0 = unbounded). When a write
	// pushes the store past the budget, the least-recently-used artifacts
	// are evicted until it fits again; an artifact larger than the whole
	// budget is simply not stored.
	CacheBytes int64
}

// DefaultMemoryEntries is the in-memory LRU capacity when
// Options.MemoryEntries is zero.
const DefaultMemoryEntries = 512

// StageStats counts one stage's cache traffic.
type StageStats struct {
	// Hits are requests served by the in-memory LRU.
	Hits uint64
	// DiskHits are requests served by the on-disk artifact store.
	DiskHits uint64
	// Shared are requests that joined an in-flight identical computation.
	Shared uint64
	// Misses are requests that ran the stage.
	Misses uint64
	// Errors are stage computations that failed.
	Errors uint64
	// Degraded are computations that completed but produced a result the
	// never-cache-degraded rule refused to store (truncated searches,
	// cancelled contexts). A server maps these to explicit load-shedding.
	Degraded uint64
	// ComputeTime accumulates the wall-clock time of the misses.
	ComputeTime time.Duration
}

// Cached is the number of requests served without running the stage.
func (s StageStats) Cached() uint64 { return s.Hits + s.DiskHits + s.Shared }

// Stats is a snapshot of every stage's counters.
type Stats struct {
	Stages [NumStages]StageStats
	// Latency holds the per-stage compute-latency histograms (misses only;
	// cache hits are not observed). Bucket bounds are HistBounds().
	Latency [NumStages]Histogram
}

// Stage returns the counters of one stage.
func (s Stats) Stage(st Stage) StageStats { return s.Stages[st] }

// String renders the per-stage counters as a table (the -cache-stats
// output of the CLIs).
func (s Stats) String() string {
	out := fmt.Sprintf("%-9s %8s %8s %8s %8s %8s %8s %12s\n",
		"stage", "mem-hit", "disk-hit", "shared", "miss", "error", "degrade", "compute")
	for st := Stage(0); st < NumStages; st++ {
		c := s.Stages[st]
		out += fmt.Sprintf("%-9s %8d %8d %8d %8d %8d %8d %12s\n",
			st, c.Hits, c.DiskHits, c.Shared, c.Misses, c.Errors, c.Degraded,
			c.ComputeTime.Round(time.Microsecond))
	}
	return out
}

// Pipeline is a concurrency-safe pass manager with content-addressed
// memoization. The zero value is not usable; construct with New, or use the
// process-wide Default.
type Pipeline struct {
	mu       sync.Mutex
	lru      *lruCache // nil when in-memory caching is disabled
	flights  map[Key]*flight
	counters [NumStages]stageCounters
	disk     *diskStore // nil when no cache dir is configured
}

// New builds a pipeline. The error is non-nil only when the configured
// cache directory cannot be created.
func New(opts Options) (*Pipeline, error) {
	p := &Pipeline{flights: map[Key]*flight{}}
	entries := opts.MemoryEntries
	if entries == 0 {
		entries = DefaultMemoryEntries
	}
	if entries > 0 {
		p.lru = newLRU(entries)
	}
	if opts.CacheDir != "" {
		d, err := newDiskStore(opts.CacheDir, opts.CacheBytes)
		if err != nil {
			return nil, fmt.Errorf("pipeline: cache dir: %w", err)
		}
		p.disk = d
	}
	return p, nil
}

var defaultOnce struct {
	sync.Once
	p *Pipeline
}

// Default returns the process-wide pipeline (in-memory LRU only, no disk
// store). The public vase entry points and the corpus harness run through
// it, so repeated compilations and syntheses of the same design within one
// process are served from cache.
func Default() *Pipeline {
	defaultOnce.Do(func() {
		defaultOnce.p, _ = New(Options{})
	})
	return defaultOnce.p
}

// Stats returns a snapshot of the per-stage counters. The counters are
// atomics, so the snapshot never blocks in-flight requests and never tears
// an individual counter; see stageCounters.snapshot for the coherence
// contract.
func (p *Pipeline) Stats() Stats {
	var s Stats
	for i := range p.counters {
		s.Stages[i], s.Latency[i] = p.counters[i].snapshot()
	}
	return s
}

// DiskUsage reports the byte size and artifact count of the on-disk store,
// or ok=false when the pipeline has none.
func (p *Pipeline) DiskUsage() (bytes int64, files int, ok bool) {
	if p.disk == nil {
		return 0, 0, false
	}
	bytes, files = p.disk.usage()
	return bytes, files, true
}

// source reports how a memoized value was obtained.
type source int

const (
	srcCompute source = iota // ran the stage
	srcShared                // joined another caller's in-flight computation
	srcMemory                // in-memory LRU
	srcDisk                  // on-disk artifact store
)

// cached reports whether the value was served without running the stage in
// this call.
func (s source) cached() bool { return s == srcMemory || s == srcDisk }

// codec serializes a stage value for the on-disk store. Stages without a
// codec are memoized in memory only.
type codec struct {
	encode func(any) ([]byte, error)
	decode func([]byte) (any, error)
}

// flight is one in-progress stage computation that concurrent identical
// requests wait on. The computation runs in its own goroutine under a
// context detached from every caller (context.WithoutCancel), so no single
// request's timeout can fail the shared work; refs counts the callers still
// interested, and cancel fires only when the last of them departs — at
// which point the work serves nobody and is told to stop (for anytime
// stages that means: return the incumbent, which the last departing waiter
// harvests).
type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int // guarded by the Pipeline mutex
	// abandoned records that the flight was cancelled because its last
	// waiter departed (guarded by the Pipeline mutex). Only abandoned
	// flights are retried by late joiners: a computation that returns a
	// context error of its own making (an internal search deadline, say)
	// would otherwise be retried forever.
	abandoned bool
	val       any
	src       source
	err       error
}

// isCtxErr reports whether err is a cancellation/deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// memo serves one stage request: in-memory LRU, then the single-flight
// table, then the disk store, then compute. compute returns the stage value
// plus a cacheable flag: degraded results (cancelled context, truncated
// search) are returned but never stored.
//
// The single-flight computation is context-independent: it runs under its
// own context, cancelled only when every interested caller has departed.
// A follower whose own context expires leaves with its context's error
// while the shared work continues for the others; a follower that finds
// the flight dead of a cancellation it did not ask for re-elects itself
// leader and retries, so one impatient caller can never poison the result
// for patient ones.
func (p *Pipeline) memo(ctx context.Context, st Stage, key Key, c *codec, compute func(context.Context) (any, bool, error)) (any, source, error) {
	for {
		p.mu.Lock()
		if p.lru != nil {
			if v, ok := p.lru.get(key); ok {
				p.mu.Unlock()
				p.counters[st].hits.Add(1)
				return v, srcMemory, nil
			}
		}
		f, initiator := p.flights[key], false
		if f == nil {
			initiator = true
			fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
			f = &flight{done: make(chan struct{}), cancel: cancel, refs: 1}
			if ctx.Err() != nil {
				// An already-expired caller still initiates (the anytime
				// contract returns a degraded incumbent, not an error), but
				// the computation must observe the cancellation from its
				// very first node so truncation stays deterministic. The
				// flight counts as abandoned so a live joiner retries
				// rather than inheriting this caller's cancellation.
				f.abandoned = true
				cancel()
			}
			p.flights[key] = f
			p.mu.Unlock()
			go p.runFlight(fctx, st, key, f, c, compute)
		} else {
			f.refs++
			p.mu.Unlock()
		}
		v, src, err, settled := p.await(ctx, st, f, initiator)
		if !settled {
			continue // the flight died of someone else's cancellation: retry
		}
		return v, src, err
	}
}

// await blocks until the flight completes or the caller's own context
// expires. A departing caller that is not the last keeps the shared work
// running and returns its own context error; the last departing caller
// cancels the flight and harvests the (possibly anytime-degraded) outcome,
// preserving the sole-caller semantics of the pre-server pipeline. The
// fourth return is false when the flight's result is a cancellation this
// caller did not cause and the caller should retry as the new leader.
func (p *Pipeline) await(ctx context.Context, st Stage, f *flight, initiator bool) (any, source, error, bool) {
	select {
	case <-f.done:
	case <-ctx.Done():
		p.mu.Lock()
		f.refs--
		last := f.refs == 0
		if last {
			f.abandoned = true
		}
		p.mu.Unlock()
		if !last {
			return nil, srcShared, ctx.Err(), true
		}
		f.cancel()
		<-f.done
	}
	if f.err != nil && isCtxErr(f.err) && ctx.Err() == nil {
		p.mu.Lock()
		abandoned := f.abandoned
		p.mu.Unlock()
		if abandoned {
			return nil, srcCompute, nil, false
		}
	}
	if initiator {
		return f.val, f.src, f.err, true
	}
	p.counters[st].shared.Add(1)
	return f.val, srcShared, f.err, true
}

// runFlight executes one detached computation and publishes its outcome.
func (p *Pipeline) runFlight(ctx context.Context, st Stage, key Key, f *flight, c *codec, compute func(context.Context) (any, bool, error)) {
	v, src, err := p.lead(ctx, st, key, c, compute)
	f.val, f.src, f.err = v, src, err
	p.mu.Lock()
	delete(p.flights, key)
	p.mu.Unlock()
	close(f.done)
	f.cancel() // release the context resources; idempotent
}

// lead runs the miss path of memo as the single-flight leader: disk probe,
// then compute, then store.
func (p *Pipeline) lead(ctx context.Context, st Stage, key Key, c *codec, compute func(context.Context) (any, bool, error)) (any, source, error) {
	if c != nil && p.disk != nil {
		if data, ok := p.disk.read(st, key); ok {
			if v, err := c.decode(data); err == nil {
				p.counters[st].diskHits.Add(1)
				if p.lru != nil {
					p.mu.Lock()
					p.lru.add(key, v)
					p.mu.Unlock()
				}
				return v, srcDisk, nil
			}
			// A corrupt or stale-format artifact: fall through to
			// recompute (the fresh write below replaces it).
		}
	}
	start := time.Now() //vase:walltime (stats telemetry)
	v, cacheable, err := compute(ctx)
	elapsed := time.Since(start) //vase:walltime (stats telemetry)
	if err != nil {
		p.counters[st].errors.Add(1)
	} else {
		p.counters[st].observe(elapsed, !cacheable)
		if cacheable && p.lru != nil {
			p.mu.Lock()
			p.lru.add(key, v)
			p.mu.Unlock()
		}
	}
	if err == nil && cacheable && c != nil && p.disk != nil {
		if data, eerr := c.encode(v); eerr == nil {
			// Best-effort: a full disk or racing writer must not fail the
			// request; the artifact is content-addressed, so any complete
			// write is as good as ours.
			_ = p.disk.write(st, key, data)
		}
	}
	return v, srcCompute, err
}

// count records a computation of an unmemoized stage (netlist
// materialization, estimation).
func (p *Pipeline) count(st Stage, err error, elapsed time.Duration) {
	if err != nil {
		p.counters[st].errors.Add(1)
		return
	}
	p.counters[st].observe(elapsed, false)
}

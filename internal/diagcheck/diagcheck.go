// Package diagcheck is the repository's own static-analysis pass: it
// enforces that the migrated front-end packages construct every error
// through the structured diagnostics engine (internal/diag) instead of
// naked fmt.Errorf / errors.New, so no diagnostic can lose its stable code,
// severity and span.
//
// It is built on the standard library's go/parser and go/ast only, so it
// runs anywhere the repository builds — no external analysis framework is
// required.
package diagcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DefaultPackages are the package directories (relative to the repository
// root) that have been migrated to structured diagnostics and must stay
// that way.
var DefaultPackages = []string{
	"internal/sema",
	"internal/compile",
	"internal/vhif",
}

// forbidden maps "pkg.Func" selectors to the reason they are banned in
// migrated packages.
var forbidden = map[string]string{
	"fmt.Errorf": "construct errors with diag.Errorf (or a *diag.Reporter) so the diagnostic keeps a stable code and span",
	"errors.New": "construct errors with diag.Errorf so the diagnostic keeps a stable code and span",
}

// Violation is one banned call site.
type Violation struct {
	Pos    token.Position
	Call   string // e.g. "fmt.Errorf"
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s is forbidden here: %s", v.Pos, v.Call, v.Reason)
}

// CheckDir parses every non-test Go file in dir (non-recursively) and
// returns the banned call sites found.
func CheckDir(dir string) ([]Violation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Violation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		vs, err := CheckFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	sortViolations(out)
	return out, nil
}

// CheckFile parses one Go file and returns the banned call sites found.
func CheckFile(path string) ([]Violation, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	// Resolve import aliases so "e.New" with `e "errors"` is still caught.
	aliases := map[string]string{}
	for _, imp := range f.Imports {
		pathVal := strings.Trim(imp.Path.Value, `"`)
		name := pathVal[strings.LastIndex(pathVal, "/")+1:]
		if imp.Name != nil && imp.Name.Name != "_" && imp.Name.Name != "." {
			name = imp.Name.Name
		}
		aliases[name] = pathVal
	}
	var out []Violation
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgPath, ok := aliases[ident.Name]
		if !ok {
			return true
		}
		key := pkgPath + "." + sel.Sel.Name
		if reason, banned := forbidden[key]; banned {
			out = append(out, Violation{
				Pos:    fset.Position(call.Pos()),
				Call:   key,
				Reason: reason,
			})
		}
		return true
	})
	return out, nil
}

// CheckAll runs CheckDir over every default package under root.
func CheckAll(root string) ([]Violation, error) {
	var out []Violation
	for _, pkg := range DefaultPackages {
		vs, err := CheckDir(filepath.Join(root, pkg))
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	sortViolations(out)
	return out, nil
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i].Pos, vs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

entity unused_demo is
  port (
    quantity vin  : in real is voltage;
    quantity vout : out real is voltage
  );
end entity;

architecture behavioral of unused_demo is
  constant g : real := 2.0;
  signal spare : bit;
  signal flag : bit;
  function twice(x : real) return real is
  begin
    return 2.0 * x;
  end function;
begin
  vout == g * vin;
  process (vin'above(0.0)) is
  begin
    flag <= '1';
  end process;
end architecture;

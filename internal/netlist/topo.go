package netlist

import (
	"fmt"
	"sort"
	"strings"

	"vase/internal/library"
)

// IsStateful reports whether a component breaks combinational loops
// (integrators and sample-and-holds hold state).
func (c *Component) IsStateful() bool {
	return c.Cell.Kind == library.CellIntegrator || c.Cell.Kind == library.CellSampleHold
}

// Topological orders components so that every component follows the drivers
// of its inputs, with stateful components acting as sources. It fails on
// combinational loops.
func (n *Netlist) Topological() ([]*Component, error) {
	driver := map[*Net]*Component{}
	for _, c := range n.Components {
		if c.Out != nil {
			driver[c.Out] = c
		}
	}
	indeg := map[*Component]int{}
	readers := map[*Component][]*Component{}
	for _, c := range n.Components {
		if c.IsStateful() {
			indeg[c] = 0
			continue
		}
		nets := append([]*Net{}, c.Inputs...)
		if c.Ctrl != nil {
			nets = append(nets, c.Ctrl)
		}
		for _, in := range nets {
			if d := driver[in]; d != nil {
				indeg[c]++
				readers[d] = append(readers[d], c)
			}
		}
	}
	var queue, order []*Component
	for _, c := range n.Components {
		if indeg[c] == 0 {
			queue = append(queue, c)
		}
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		order = append(order, c)
		for _, r := range readers[c] {
			indeg[r]--
			if indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
	}
	if len(order) != len(n.Components) {
		var stuck []string
		for _, c := range n.Components {
			if indeg[c] > 0 {
				stuck = append(stuck, c.Name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("netlist: combinational loop among components %s", strings.Join(stuck, ", "))
	}
	return order, nil
}

package vase_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"vase"
)

const mixerSrc = `
entity mixer is
  port (
    quantity a : in real is voltage;
    quantity b : in real is voltage;
    quantity y : out real is voltage
  );
end entity;
architecture beh of mixer is
begin
  y == 3.0 * a + 2.0 * b;
end architecture;
`

func TestCompileAPI(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if d.Name != "mixer" {
		t.Errorf("name = %q", d.Name)
	}
	m := d.Metrics()
	if m.Blocks != 3 {
		t.Errorf("blocks = %d, want 3 (gain, gain, add)", m.Blocks)
	}
	if m.Quantities != 3 {
		t.Errorf("quantities = %d, want 3", m.Quantities)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	_, err := vase.Compile(vase.Source{Name: "bad.vhd", Text: "entity e is garbage"})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestSynthesizeAPI(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	arch, err := d.Synthesize()
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if arch.Netlist.OpAmpCount() != 1 {
		t.Errorf("op amps = %d, want 1 (one summing amplifier)", arch.Netlist.OpAmpCount())
	}
	if arch.Report.AreaUm2 <= 0 {
		t.Error("area must be positive")
	}
	if !strings.Contains(arch.Netlist.Summary(), "amplif.") {
		t.Errorf("summary = %q", arch.Netlist.Summary())
	}
}

func TestSimulateAPI(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr, err := d.Simulate(map[string]vase.Waveform{
		"a": vase.DC(0.1),
		"b": vase.DC(0.2),
	}, vase.SimOptions{TStop: 1e-4, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if got := tr.Final("y"); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("y = %g, want 0.7", got)
	}
}

func TestArchitectureSimulateMatchesDesign(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	arch, err := d.Synthesize()
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	in := map[string]vase.Waveform{"a": vase.Sine(0.1, 1e3, 0), "b": vase.DC(0.05)}
	opts := vase.SimOptions{TStop: 2e-3, TStep: 1e-6}
	trD, err := d.Simulate(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	trA, err := arch.Simulate(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	yd, ya := trD.Get("y"), trA.Get("y")
	for i := range yd {
		if math.Abs(yd[i]-ya[i]) > 1e-9 {
			t.Fatalf("divergence at sample %d: %g vs %g", i, yd[i], ya[i])
		}
	}
}

func TestSpiceAPI(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	arch, err := d.Synthesize()
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	res, err := arch.Spice(map[string]vase.Waveform{
		"a": vase.DC(0.1),
		"b": vase.DC(0.2),
	}, 1e-4, 1e-6)
	if err != nil {
		t.Fatalf("spice: %v", err)
	}
	y := res.V("y")
	if len(y) == 0 {
		t.Fatal("no waveform")
	}
	if got := y[len(y)-1]; math.Abs(got-0.7) > 0.01 {
		t.Errorf("circuit-level y = %g, want ~0.7", got)
	}
}

func TestSpiceDeckAPI(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	arch, err := d.Synthesize()
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	deck, err := arch.SpiceDeck()
	if err != nil {
		t.Fatalf("deck: %v", err)
	}
	for _, want := range []string{".subckt opamp", ".end", "R1"} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q:\n%s", want, deck)
		}
	}
}

func TestCompileAlternativesAPI(t *testing.T) {
	mods, err := vase.CompileAlternatives(vase.Source{Name: "mixer.vhd", Text: mixerSrc}, 0)
	if err != nil {
		t.Fatalf("alternatives: %v", err)
	}
	if len(mods) < 1 {
		t.Fatal("no topologies")
	}
}

func TestBenchmarksAPI(t *testing.T) {
	if len(vase.Benchmarks()) != 5 {
		t.Errorf("benchmarks = %d, want 5", len(vase.Benchmarks()))
	}
	if _, err := vase.Benchmark("receiver"); err != nil {
		t.Error(err)
	}
	if _, err := vase.Benchmark("nosuch"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestTraceTreeAPI(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts := vase.DefaultSynthesisOptions()
	opts.Trace = true
	arch, err := d.SynthesizeWith(opts)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	text := vase.FormatDecisionTree(arch.Tree)
	if !strings.Contains(text, "complete mapping") {
		t.Errorf("tree text:\n%s", text)
	}
}

func TestACAPI(t *testing.T) {
	// An inferred low-pass at 1 kHz must show its corner in the circuit-level
	// frequency response.
	src := `
entity smooth is
  port (
    quantity vin  : in real is voltage;
    quantity vout : out real is voltage is frequency 0 to 1000.0
  );
end entity;
architecture a of smooth is
begin
  vout == vin;
end architecture;`
	d, err := vase.Compile(vase.Source{Name: "smooth.vhd", Text: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	arch, err := d.Synthesize()
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	res, err := arch.AC("vin", 10, 100e3, 5) // 10 Hz .. 100 kHz
	if err != nil {
		t.Fatalf("ac: %v", err)
	}
	mag := res.Mag("vout")
	if len(mag) != 5 {
		t.Fatalf("sweep points = %d", len(mag))
	}
	if mag[0] < 0.95 {
		t.Errorf("passband gain = %g, want ~1", mag[0])
	}
	if mag[len(mag)-1] > 0.1 {
		t.Errorf("stopband gain = %g, want attenuated (100x above corner)", mag[len(mag)-1])
	}
	if _, err := arch.AC("ghost", 10, 100, 3); err == nil {
		t.Error("expected error for unknown stimulus port")
	}
}

func TestSizingAPI(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	arch, err := d.Synthesize()
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	sized, err := arch.Sizing()
	if err != nil {
		t.Fatalf("sizing: %v", err)
	}
	if len(sized) != arch.Netlist.OpAmpCount() {
		t.Errorf("sized %d, want %d", len(sized), arch.Netlist.OpAmpCount())
	}
	if text := vase.FormatSizing(sized); !strings.Contains(text, "transistor sizing") {
		t.Errorf("format = %q", text)
	}
}

func TestRenderDiagnostics(t *testing.T) {
	src := vase.Source{Name: "bad.vhd", Text: `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  y == nosuch * a;
end architecture;`}
	_, err := vase.Compile(src)
	if err == nil {
		t.Fatal("expected error")
	}
	text := vase.RenderDiagnostics(err, src)
	if !strings.Contains(text, "undeclared") {
		t.Errorf("rendered = %q", text)
	}
	if !strings.Contains(text, "nosuch * a") || !strings.Contains(text, "^") {
		t.Errorf("missing source excerpt with caret:\n%s", text)
	}
	if vase.RenderDiagnostics(nil, src) != "" {
		t.Error("nil error should render empty")
	}
}

// TestSpiceViaAPI pins the cached circuit-simulation entry point: a warm
// call serves the trace from the pipeline without running the solver, and
// the rehydrated result is sample-for-sample identical to a direct run —
// in both solver tiers (the fast tier's determinism is what makes its
// results cacheable at all).
func TestSpiceViaAPI(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	arch, err := d.Synthesize()
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	arch.SimSolver = vase.SolverFast
	inputs := map[string]string{"a": "dc:0.1", "b": "dc:0.2"}
	waves := map[string]vase.Waveform{"a": vase.DC(0.1), "b": vase.DC(0.2)}
	direct, err := arch.Spice(waves, 1e-4, 1e-6)
	if err != nil {
		t.Fatalf("direct spice: %v", err)
	}
	p, err := vase.NewPipeline(vase.PipelineOptions{})
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	cold, err := arch.SpiceVia(context.Background(), p, inputs, 1e-4, 1e-6)
	if err != nil {
		t.Fatalf("cold SpiceVia: %v", err)
	}
	warm, err := arch.SpiceVia(context.Background(), p, inputs, 1e-4, 1e-6)
	if err != nil {
		t.Fatalf("warm SpiceVia: %v", err)
	}
	for _, res := range []*vase.SpiceResult{cold, warm} {
		dy, ry := direct.V("y"), res.V("y")
		if len(dy) != len(ry) {
			t.Fatalf("trace length %d, direct run %d", len(ry), len(dy))
		}
		for i := range dy {
			if math.Float64bits(dy[i]) != math.Float64bits(ry[i]) {
				t.Fatalf("sample %d: %x, direct run %x", i,
					math.Float64bits(ry[i]), math.Float64bits(dy[i]))
			}
		}
	}
}

// Package patterns relates VHIF block structures to electronic circuits in
// the component library — the "library of patterns" of the paper's
// architecture generator (Section 5, Figure 6b).
//
// A pattern match covers a connected sub-graph whose output block is the
// current block of the branch-and-bound search. Multi-block patterns express
// hardware sharing along a signal path: a summing amplifier absorbs the gain
// blocks feeding an adder (the paper's comp1 computes k1*a + k2*b with one
// op amp), a summing integrator absorbs an adder and its gains, a
// programmable-gain amplifier absorbs a multiplier fed by a constant
// multiplexer, and an output stage absorbs its limiter.
//
// The matcher also produces functional transformations (a high gain split
// into a chain of two lower-gain amplifiers for bandwidth) and supports
// disabling multi-block absorption for the naive direct-mapping ablation.
package patterns

import (
	"fmt"
	"sort"

	"vase/internal/library"
	"vase/internal/vhif"
)

// Options controls pattern generation.
type Options struct {
	// NoAbsorption disables multi-block patterns (naive one-block-per-cell
	// mapping) — the ablation baseline.
	NoAbsorption bool
	// NoTransformations disables functional transformations (gain
	// splitting).
	NoTransformations bool
	// MaxFanIn overrides the summing-structure fan-in (0 = library limit).
	MaxFanIn int
}

// Match is one way to realize a sub-graph with a library cell.
type Match struct {
	// Name describes the pattern for traces ("summing_amp[3]").
	Name string
	// Cell is the library circuit.
	Cell *library.Cell
	// Root is the output block of the covered sub-graph.
	Root *vhif.Block
	// Blocks are the covered operation blocks (Root included).
	Blocks []*vhif.Block
	// Inputs are the external data input nets in positional order.
	Inputs []*vhif.Net
	// Ctrl is the control net of switched cells.
	Ctrl *vhif.Net
	// Params carries instance parameters: per-input weights ("gain0", ...),
	// "threshold", "hysteresis", "limit", "bits", "load", "peak", "invert".
	Params map[string]float64
	// OpAmps is the op amp cost of this match.
	OpAmps int
	// Transformed names the functional transformation that produced the
	// match ("" for direct patterns).
	Transformed string
}

func (m *Match) String() string {
	return fmt.Sprintf("%s covering %d block(s) with %d op amp(s)", m.Name, len(m.Blocks), m.OpAmps)
}

func (m *Match) setParam(k string, v float64) {
	if m.Params == nil {
		m.Params = map[string]float64{}
	}
	m.Params[k] = v
}

// MatchesFor returns every pattern match whose covered sub-graph has b as
// its output block, ordered for the paper's sequencing rule: decreasing
// number of covered blocks, then increasing op amp count.
func MatchesFor(g *vhif.Graph, b *vhif.Block, opts Options) []*Match {
	var out []*Match
	add := func(m *Match) {
		if m != nil {
			out = append(out, m)
		}
	}
	switch b.Kind {
	case vhif.BInput, vhif.BOutput, vhif.BConst:
		return nil
	case vhif.BGain:
		if !opts.NoAbsorption {
			add(scaledLogMatch(g, b))
		}
		add(gainMatch(b, b.Param))
		if !opts.NoTransformations {
			add(gainSplitMatch(b))
		}
	case vhif.BNeg:
		add(gainMatch(b, -1))
	case vhif.BAdd:
		if !opts.NoAbsorption {
			add(summingMatch(g, b, opts))
		}
		add(plainSummingMatch(b))
	case vhif.BSub:
		if !opts.NoAbsorption {
			add(diffMatch(g, b))
		}
		m := simple(b, library.CellDiffAmp, nil)
		m.setParam("gain0", 1)
		m.setParam("gain1", -1)
		add(m)
	case vhif.BMul:
		if !opts.NoAbsorption {
			add(pgaMatch(g, b))
		}
		add(simple(b, library.CellMultiplier, nil))
	case vhif.BDiv:
		add(simple(b, library.CellDivider, nil))
	case vhif.BIntegrator:
		if !opts.NoAbsorption {
			add(summingIntegratorMatch(g, b, opts))
		}
		add(simple(b, library.CellIntegrator, nil))
	case vhif.BDifferentiator:
		add(simple(b, library.CellDiff, nil))
	case vhif.BLog:
		add(simple(b, library.CellLogAmp, nil))
	case vhif.BExp:
		add(simple(b, library.CellAntilogAmp, nil))
	case vhif.BSqrt:
		add(simple(b, library.CellSqrt, nil))
	case vhif.BAbs:
		add(simple(b, library.CellRectifier, nil))
	case vhif.BMin, vhif.BMax:
		m := simple(b, library.CellMinMax, nil)
		if b.Kind == vhif.BMax {
			m.setParam("op", 1)
		} else {
			m.setParam("op", 0)
		}
		add(m)
	case vhif.BSin, vhif.BCos:
		add(simple(b, library.CellSineShaper, nil))
	case vhif.BSign:
		m := simple(b, library.CellComparator, nil)
		m.setParam("threshold", 0)
		add(m)
	case vhif.BComparator:
		m := simple(b, library.CellComparator, nil)
		m.setParam("threshold", b.Param)
		m.setParam("hysteresis", b.Hyst)
		add(m)
	case vhif.BSchmitt:
		m := simple(b, library.CellSchmitt, nil)
		m.setParam("threshold", b.Param)
		m.setParam("hysteresis", b.Hyst)
		add(m)
	case vhif.BNot:
		if !opts.NoAbsorption {
			add(invertedDetectorMatch(g, b))
		}
		m := simple(b, library.CellComparator, nil)
		m.setParam("threshold", 0)
		m.setParam("invert", 1)
		add(m)
	case vhif.BSampleHold:
		add(simple(b, library.CellSampleHold, b.Ctrl))
	case vhif.BSwitch:
		add(simple(b, library.CellSwitch, b.Ctrl))
	case vhif.BMux:
		add(simple(b, library.CellMux, b.Ctrl))
	case vhif.BADC:
		m := simple(b, library.CellADC, nil)
		m.setParam("bits", b.Param)
		add(m)
	case vhif.BBuffer:
		if !opts.NoAbsorption {
			add(outputStageMatch(g, b))
		}
		m := simple(b, library.CellOutputStage, nil)
		m.setParam("load", b.Param)
		add(m)
	case vhif.BLimiter:
		m := simple(b, library.CellLimiter, nil)
		m.setParam("limit", b.Param)
		add(m)
	case vhif.BFilter:
		kind := library.CellLowPass
		if b.Param2 > 0 {
			kind = library.CellBandPass
		}
		m := simple(b, kind, nil)
		m.setParam("fhi", b.Param)
		m.setParam("flo", b.Param2)
		add(m)
	}
	sortMatches(out)
	return out
}

func sortMatches(ms []*Match) {
	sort.SliceStable(ms, func(i, j int) bool {
		if len(ms[i].Blocks) != len(ms[j].Blocks) {
			return len(ms[i].Blocks) > len(ms[j].Blocks)
		}
		if ms[i].OpAmps != ms[j].OpAmps {
			return ms[i].OpAmps < ms[j].OpAmps
		}
		return ms[i].Name < ms[j].Name
	})
}

// simple covers the single block b with the given cell.
func simple(b *vhif.Block, kind library.CellKind, ctrl *vhif.Net) *Match {
	cell := library.Get(kind)
	m := &Match{
		Name:   cell.Kind.String(),
		Cell:   cell,
		Root:   b,
		Blocks: []*vhif.Block{b},
		Inputs: dataInputs(b),
		Ctrl:   ctrl,
		OpAmps: cell.OpAmps,
	}
	return m
}

func dataInputs(b *vhif.Block) []*vhif.Net {
	return append([]*vhif.Net{}, b.Inputs...)
}

// soleReader reports whether b is the only reader of net n: the condition
// for absorbing n's driver into a multi-block pattern.
func soleReader(n *vhif.Net, b *vhif.Block) bool {
	return len(n.Readers) == 1 && n.Readers[0] == b
}

// foldWeight follows a chain of single-reader gain and negation blocks
// upward from net n (read by reader), multiplying their factors into one
// weight. It returns the chain's source net, the accumulated weight, and
// the absorbed blocks.
func foldWeight(n *vhif.Net, reader *vhif.Block) (*vhif.Net, float64, []*vhif.Block) {
	weight := 1.0
	var covered []*vhif.Block
	for {
		drv := n.Driver
		if drv == nil || !soleReader(n, reader) {
			return n, weight, covered
		}
		switch drv.Kind {
		case vhif.BGain:
			weight *= drv.Param
		case vhif.BNeg:
			weight = -weight
		default:
			return n, weight, covered
		}
		covered = append(covered, drv)
		n = drv.Inputs[0]
		reader = drv
	}
}

// gainMatch realizes a single gain stage: an inverting amplifier for
// negative gains, a non-inverting amplifier for gains >= 1, and an
// attenuating inverting stage otherwise.
func gainMatch(b *vhif.Block, k float64) *Match {
	kind := library.CellNonInvAmp
	if k < 0 || (k > 0 && k < 1) {
		kind = library.CellInvAmp
	}
	cell := library.Get(kind)
	if !cell.GainFeasible(k) {
		return nil
	}
	m := simple(b, kind, nil)
	m.setParam("gain", k)
	return m
}

// gainSplitMatch is the paper's bandwidth transformation: "an op amp is
// replaced by a chain of two op amps with lower gains". It covers the same
// block with two amplifier stages of gain sqrt(|k|) each.
func gainSplitMatch(b *vhif.Block) *Match {
	k := b.Param
	if b.Kind == vhif.BNeg {
		k = -1
	}
	abs := k
	if abs < 0 {
		abs = -abs
	}
	if abs <= 1 { // splitting only helps real gain
		return nil
	}
	cell := library.Get(library.CellInvAmp)
	m := &Match{
		Name:        "gain_chain2",
		Cell:        cell,
		Root:        b,
		Blocks:      []*vhif.Block{b},
		Inputs:      dataInputs(b),
		OpAmps:      2 * cell.OpAmps,
		Transformed: "gain split for bandwidth",
	}
	m.setParam("gain", k)
	m.setParam("stages", 2)
	return m
}

// summingMatch builds the weighted summing amplifier: an adder absorbing
// the single-reader gain, negation and nested adder blocks feeding it
// (the paper's comp1: k1*a + k2*b with one op amp).
func summingMatch(g *vhif.Graph, b *vhif.Block, opts Options) *Match {
	maxIn := library.Get(library.CellSummingAmp).MaxInputs
	if opts.MaxFanIn > 0 {
		maxIn = opts.MaxFanIn
	}
	var blocks []*vhif.Block
	var inputs []*vhif.Net
	var weights []float64

	var absorb func(b *vhif.Block, sign float64) bool
	absorb = func(blk *vhif.Block, sign float64) bool {
		blocks = append(blocks, blk)
		for _, in := range blk.Inputs {
			src, w, covered := foldWeight(in, blk)
			if drv := src.Driver; drv != nil && drv.Kind == vhif.BAdd && soleReader(src, readerOf(covered, blk)) {
				// A nested adder folds into the same summer; its weight
				// scales every nested input.
				blocks = append(blocks, covered...)
				if !absorb(drv, sign*w) {
					return false
				}
			} else {
				blocks = append(blocks, covered...)
				inputs = append(inputs, src)
				weights = append(weights, sign*w)
			}
			if len(inputs) > maxIn {
				return false
			}
		}
		return true
	}
	if !absorb(b, 1) || len(blocks) < 2 {
		return nil
	}
	cell := library.Get(library.CellSummingAmp)
	for _, w := range weights {
		if !cell.GainFeasible(w) {
			return nil
		}
	}
	m := &Match{
		Name:   fmt.Sprintf("summing_amp[%d]", len(inputs)),
		Cell:   cell,
		Root:   b,
		Blocks: blocks,
		Inputs: inputs,
		OpAmps: cell.OpAmps,
	}
	for i, w := range weights {
		m.setParam(fmt.Sprintf("gain%d", i), w)
	}
	return m
}

// readerOf returns the block actually reading the source net after a fold:
// the innermost absorbed block, or the fallback when nothing was absorbed.
func readerOf(covered []*vhif.Block, fallback *vhif.Block) *vhif.Block {
	if len(covered) > 0 {
		return covered[len(covered)-1]
	}
	return fallback
}

// plainSummingMatch covers a bare adder with unit weights.
func plainSummingMatch(b *vhif.Block) *Match {
	m := simple(b, library.CellSummingAmp, nil)
	m.Name = fmt.Sprintf("summing_amp[%d]", len(b.Inputs))
	for i := range b.Inputs {
		m.setParam(fmt.Sprintf("gain%d", i), 1)
	}
	return m
}

// diffMatch covers a subtractor absorbing input gains: the weighted
// difference amplifier.
func diffMatch(g *vhif.Graph, b *vhif.Block) *Match {
	blocks := []*vhif.Block{b}
	inputs := make([]*vhif.Net, 2)
	weights := []float64{1, 1}
	absorbed := false
	for i, in := range b.Inputs {
		src, w, covered := foldWeight(in, b)
		inputs[i] = src
		weights[i] = w
		if len(covered) > 0 {
			blocks = append(blocks, covered...)
			absorbed = true
		}
	}
	if !absorbed {
		return nil
	}
	cell := library.Get(library.CellDiffAmp)
	for _, w := range weights {
		if !cell.GainFeasible(w) {
			return nil
		}
	}
	m := &Match{
		Name:   "weighted_diff_amp",
		Cell:   cell,
		Root:   b,
		Blocks: blocks,
		Inputs: inputs,
		OpAmps: cell.OpAmps,
	}
	m.setParam("gain0", weights[0])
	m.setParam("gain1", -weights[1])
	return m
}

// pgaMatch recognizes a multiplier whose second operand is a multiplexer
// over constants: a programmable-gain amplifier (one op amp with a switched
// feedback network) instead of a four-quadrant multiplier.
func pgaMatch(g *vhif.Graph, b *vhif.Block) *Match {
	if len(b.Inputs) != 2 {
		return nil
	}
	for sel := 0; sel < 2; sel++ {
		muxNet := b.Inputs[1-sel]
		mux := muxNet.Driver
		if mux == nil || mux.Kind != vhif.BMux || !soleReader(muxNet, b) {
			continue
		}
		c0 := mux.Inputs[0].Driver
		c1 := mux.Inputs[1].Driver
		if c0 == nil || c1 == nil || c0.Kind != vhif.BConst || c1.Kind != vhif.BConst {
			continue
		}
		cell := library.Get(library.CellPGA)
		if !cell.GainFeasible(c0.Param) || !cell.GainFeasible(c1.Param) {
			continue
		}
		m := &Match{
			Name:   "pga",
			Cell:   cell,
			Root:   b,
			Blocks: []*vhif.Block{b, mux},
			Inputs: []*vhif.Net{b.Inputs[sel]},
			Ctrl:   mux.Ctrl,
			OpAmps: cell.OpAmps,
		}
		// Mux semantics: input 0 selected while the control is true.
		m.setParam("gain_on", c0.Param)
		m.setParam("gain_off", c1.Param)
		return m
	}
	return nil
}

// summingIntegratorMatch absorbs an adder (and its gains) feeding an
// integrator: the classic analog-computer summing integrator.
func summingIntegratorMatch(g *vhif.Graph, b *vhif.Block, opts Options) *Match {
	in := b.Inputs[0]
	drv := in.Driver
	cell := library.Get(library.CellIntegrator)
	maxIn := cell.MaxInputs
	if opts.MaxFanIn > 0 {
		maxIn = opts.MaxFanIn
	}
	blocks := []*vhif.Block{b}
	var inputs []*vhif.Net
	var weights []float64
	src, w, covered := foldWeight(in, b)
	blocks = append(blocks, covered...)
	drv = src.Driver
	reader := readerOf(covered, b)
	switch {
	case drv != nil && drv.Kind == vhif.BAdd && soleReader(src, reader):
		blocks = append(blocks, drv)
		for _, ain := range drv.Inputs {
			asrc, aw, acov := foldWeight(ain, drv)
			blocks = append(blocks, acov...)
			inputs = append(inputs, asrc)
			weights = append(weights, w*aw)
		}
	case drv != nil && drv.Kind == vhif.BSub && soleReader(src, reader):
		blocks = append(blocks, drv)
		inputs = append(inputs, drv.Inputs[0], drv.Inputs[1])
		weights = append(weights, w, -w)
	case len(covered) > 0:
		inputs = append(inputs, src)
		weights = append(weights, w)
	default:
		return nil
	}
	if len(inputs) > maxIn {
		return nil
	}
	m := &Match{
		Name:   fmt.Sprintf("summing_integrator[%d]", len(inputs)),
		Cell:   cell,
		Root:   b,
		Blocks: blocks,
		Inputs: inputs,
		OpAmps: cell.OpAmps,
	}
	for i, w := range weights {
		m.setParam(fmt.Sprintf("gain%d", i), w)
	}
	return m
}

// scaledLogMatch absorbs a gain into the log or antilog amplifier driving
// it: log amps realize out = K*log(in) by scaling their reference, so the
// gain costs no extra op amp. (The missile solver's exp(n*log(v)) chain
// maps to one log amp and one antilog amp this way.)
func scaledLogMatch(g *vhif.Graph, b *vhif.Block) *Match {
	drv := b.Inputs[0].Driver
	if drv == nil || !soleReader(b.Inputs[0], b) {
		return nil
	}
	var kind library.CellKind
	switch drv.Kind {
	case vhif.BLog:
		kind = library.CellLogAmp
	case vhif.BExp:
		kind = library.CellAntilogAmp
	default:
		return nil
	}
	cell := library.Get(kind)
	m := &Match{
		Name:   "scaled_" + kind.String(),
		Cell:   cell,
		Root:   b,
		Blocks: []*vhif.Block{b, drv},
		Inputs: dataInputs(drv),
		OpAmps: cell.OpAmps,
	}
	m.setParam("scale", b.Param)
	return m
}

// invertedDetectorMatch absorbs a control inverter into the comparator or
// Schmitt trigger driving it (an inverting detector costs nothing extra).
func invertedDetectorMatch(g *vhif.Graph, b *vhif.Block) *Match {
	drv := b.Inputs[0].Driver
	if drv == nil || !soleReader(b.Inputs[0], b) {
		return nil
	}
	var kind library.CellKind
	switch drv.Kind {
	case vhif.BComparator:
		kind = library.CellComparator
	case vhif.BSchmitt:
		kind = library.CellSchmitt
	default:
		return nil
	}
	cell := library.Get(kind)
	m := &Match{
		Name:   "inverting_" + kind.String(),
		Cell:   cell,
		Root:   b,
		Blocks: []*vhif.Block{b, drv},
		Inputs: dataInputs(drv),
		OpAmps: cell.OpAmps,
	}
	m.setParam("threshold", drv.Param)
	m.setParam("hysteresis", drv.Hyst)
	m.setParam("invert", 1)
	return m
}

// outputStageMatch absorbs a limiter into the output drive stage ("block 4
// adapts the system output to the loading requirements").
func outputStageMatch(g *vhif.Graph, b *vhif.Block) *Match {
	drv := b.Inputs[0].Driver
	if drv == nil || drv.Kind != vhif.BLimiter || !soleReader(b.Inputs[0], b) {
		return nil
	}
	cell := library.Get(library.CellOutputStage)
	m := &Match{
		Name:   "limiting_output_stage",
		Cell:   cell,
		Root:   b,
		Blocks: []*vhif.Block{b, drv},
		Inputs: dataInputs(drv),
		OpAmps: cell.OpAmps,
	}
	m.setParam("limit", drv.Param)
	m.setParam("load", b.Param)
	return m
}

package ast

import (
	"testing"

	"vase/internal/source"
	"vase/internal/token"
)

func ident(name string) *Ident {
	return &Ident{Name: name, Canon: name}
}

func name(n string) *Name { return &Name{Ident: ident(n)} }

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{name("x"), "x"},
		{&IntLit{Value: 42}, "42"},
		{&RealLit{Value: 2.5}, "2.5"},
		{&RealLit{Text: "285.0e-3", Value: 0.285}, "285.0e-3"},
		{&BitLit{Value: true}, "'1'"},
		{&BitLit{Value: false}, "'0'"},
		{&StrLit{Value: "0101"}, `"0101"`},
		{&Unary{Op: token.MINUS, X: name("x")}, "-x"},
		{&Unary{Op: token.NOT, X: name("c")}, "not c"},
		{&Unary{Op: token.ABS, X: name("v")}, "abs v"},
		{&Binary{Op: token.PLUS, X: name("a"), Y: name("b")}, "a + b"},
		{&Paren{X: &Binary{Op: token.STAR, X: name("a"), Y: name("b")}}, "(a * b)"},
		{&Call{Fun: ident("exp"), Args: []Expr{name("x")}}, "exp(x)"},
		{&Call{Fun: ident("min"), Args: []Expr{name("a"), name("b")}}, "min(a, b)"},
		{&Attribute{X: name("q"), Attr: "dot"}, "q'dot"},
		{&Attribute{X: name("line"), Attr: "above", Args: []Expr{&RealLit{Value: 0.1}}}, "line'above(0.1)"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestWalkVisitsAllExprNodes(t *testing.T) {
	e := &Binary{
		Op: token.PLUS,
		X:  &Unary{Op: token.MINUS, X: name("a")},
		Y: &Call{Fun: ident("f"), Args: []Expr{
			&Attribute{X: name("q"), Attr: "dot"},
			&Paren{X: name("b")},
		}},
	}
	count := map[string]int{}
	Walk(e, func(n Node) bool {
		switch n.(type) {
		case *Binary:
			count["binary"]++
		case *Unary:
			count["unary"]++
		case *Name:
			count["name"]++
		case *Call:
			count["call"]++
		case *Attribute:
			count["attr"]++
		case *Paren:
			count["paren"]++
		}
		return true
	})
	want := map[string]int{"binary": 1, "unary": 1, "name": 3, "call": 1, "attr": 1, "paren": 1}
	for k, n := range want {
		if count[k] != n {
			t.Errorf("walk visited %d %s nodes, want %d (all: %v)", count[k], k, n, count)
		}
	}
}

func TestWalkPruning(t *testing.T) {
	e := &Binary{Op: token.PLUS, X: name("a"), Y: name("b")}
	names := 0
	Walk(e, func(n Node) bool {
		if _, ok := n.(*Binary); ok {
			return false // do not descend
		}
		if _, ok := n.(*Name); ok {
			names++
		}
		return true
	})
	if names != 0 {
		t.Errorf("pruned walk visited %d names, want 0", names)
	}
}

func TestWalkDesignUnits(t *testing.T) {
	df := &DesignFile{
		Units: []DesignUnit{
			&Entity{Name: ident("e"), Ports: []*ObjectDecl{{
				Class: ClassQuantity,
				Names: []*Ident{ident("a")},
				Type:  &TypeRef{Name: ident("real")},
			}}},
			&Architecture{
				Name:   ident("arch"),
				Entity: ident("e"),
				Stmts: []ConcStmt{
					&SimpleSimultaneous{LHS: name("a"), RHS: name("a")},
					&Process{
						Sensitivity: []Expr{name("s")},
						Body: []SeqStmt{
							&Assign{LHS: name("s"), RHS: &BitLit{Value: true}, SignalOp: true},
							&IfStmt{Cond: name("c"), Then: []SeqStmt{&NullStmt{}}},
							&ForStmt{Var: ident("i"), Range: &RangeExpr{Lo: &IntLit{Value: 1}, Hi: &IntLit{Value: 2}}},
							&WhileStmt{Cond: name("c")},
							&ReturnStmt{},
						},
					},
				},
			},
		},
	}
	kinds := map[string]bool{}
	Walk(df, func(n Node) bool {
		switch n.(type) {
		case *Entity:
			kinds["entity"] = true
		case *Architecture:
			kinds["arch"] = true
		case *ObjectDecl:
			kinds["decl"] = true
		case *SimpleSimultaneous:
			kinds["sim"] = true
		case *Process:
			kinds["process"] = true
		case *Assign:
			kinds["assign"] = true
		case *IfStmt:
			kinds["if"] = true
		case *ForStmt:
			kinds["for"] = true
		case *WhileStmt:
			kinds["while"] = true
		}
		return true
	})
	for _, k := range []string{"entity", "arch", "decl", "sim", "process", "assign", "if", "for", "while"} {
		if !kinds[k] {
			t.Errorf("walk missed %s nodes", k)
		}
	}
}

func TestClassAndModeStrings(t *testing.T) {
	if ClassQuantity.String() != "quantity" || ClassSignal.String() != "signal" ||
		ClassTerminal.String() != "terminal" || ClassVariable.String() != "variable" {
		t.Error("class strings")
	}
	if ModeIn.String() != "in" || ModeOut.String() != "out" || ModeNone.String() != "" {
		t.Error("mode strings")
	}
}

func TestDesignFileAccessors(t *testing.T) {
	df := &DesignFile{Units: []DesignUnit{
		&Entity{Name: ident("a")},
		&Package{Name: ident("p")},
		&Architecture{Name: ident("x"), Entity: ident("a")},
		&Entity{Name: ident("b")},
	}}
	if n := len(df.Entities()); n != 2 {
		t.Errorf("entities = %d", n)
	}
	if n := len(df.Architectures()); n != 1 {
		t.Errorf("architectures = %d", n)
	}
}

func TestSpansAccessible(t *testing.T) {
	sp := source.NewSpan(3, 9)
	nodes := []Node{
		&Ident{SpanV: sp}, &Annotation{SpanV: sp}, &Name{SpanV: sp},
		&IntLit{SpanV: sp}, &TypeRef{SpanV: sp}, &RangeExpr{SpanV: sp},
		&ObjectDecl{SpanV: sp}, &FunctionDecl{SpanV: sp},
		&SimpleSimultaneous{SpanV: sp}, &SimultaneousIf{SpanV: sp},
		&SimultaneousCase{SpanV: sp}, &Procedural{SpanV: sp}, &Process{SpanV: sp},
		&Assign{SpanV: sp}, &IfStmt{SpanV: sp}, &CaseStmt{SpanV: sp},
		&ForStmt{SpanV: sp}, &WhileStmt{SpanV: sp}, &ReturnStmt{SpanV: sp},
		&NullStmt{SpanV: sp}, &Entity{SpanV: sp}, &Architecture{SpanV: sp},
		&Package{SpanV: sp}, &PackageBody{SpanV: sp}, &DesignFile{SpanV: sp},
	}
	for _, n := range nodes {
		if n.Span() != sp {
			t.Errorf("%T span not reported", n)
		}
	}
}

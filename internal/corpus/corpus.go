// Package corpus holds the five real-life VASS applications of the paper's
// Section 6 — the receiver module of a telephone set, the power meter
// acquisition chain, the missile and iterative equation solvers, and the
// function generator — together with the harness that reproduces Table 1
// (specification metrics, VHIF metrics, synthesis results) and the figure
// experiments.
//
// The original VASS sources (tech report [3]) are not available; these
// specifications are reconstructed from the paper's per-application
// descriptions and dimensioned so that the VHIF and synthesis columns of
// Table 1 are reproduced. Known deviations are listed per application and
// reported by the harness.
package corpus

import (
	"context"
	"fmt"
	"strings"

	"vase/internal/mapper"
	"vase/internal/pipeline"
	"vase/internal/sema"
	"vase/internal/vhif"
)

// Application is one benchmark design.
type Application struct {
	// Name as printed in Table 1.
	Name string
	// Key is the short identifier used by CLIs.
	Key string
	// Source is the VASS specification.
	Source string
	// Expected is the Table 1 row from the paper.
	Expected Row
	// Deviations lists known, documented deltas of this reconstruction
	// against the paper's row (empty when exact).
	Deviations []string
}

// Row is one row of Table 1.
type Row struct {
	ContinuousLines int
	Quantities      int
	EventLines      int
	Signals         int
	Blocks          int
	States          int
	Datapath        int
	Synthesis       string
}

// ReceiverSource is the telephone receiver module of Figure 2: it amplifies
// line and local signals with different gains, compensates line-length
// losses by switching the compensation resistance, and drives a 270-ohm
// earphone at 285 mV peak with output limiting.
const ReceiverSource = `entity receiver is
  port (
    quantity line  : in real is voltage;
    quantity local : in real is voltage;
    quantity earph : out real is voltage limited at 1.5 drives 270.0 at 285 mv peak
  );
end entity;

architecture behavioral of receiver is
  constant Aline  : real := 4.0;
  constant Alocal : real := 2.0;
  constant r1c    : real := 0.5;
  constant r2c    : real := 0.25;
  constant Vth    : real := 0.1;
  quantity rvar : real;
  signal c1, busy : bit;
begin
  earph == (Aline * line + Alocal * local) * rvar;
  if (c1 = '1') use rvar == r1c;
  else rvar == r1c + r2c;
  end use;
  process (line'above(Vth)) is begin
    if (line'above(Vth) = true) then c1 <= '1'; busy <= '1';
    else c1 <= '0'; busy <= '1'; end if;
  end process;
end architecture;
`

// PowerMeterSource is the acquisition part of the programmable power meter
// ASIC: it samples the line voltage and current on zero crossings and
// converts the held values to digital data.
const PowerMeterSource = `entity power_meter is
  port (
    quantity vline : in real is voltage;
    quantity iline : in real is current;
    quantity vout  : out real;
    quantity iout  : out real
  );
end entity;

architecture acquisition of power_meter is
  quantity vheld, iheld : real;
  signal sv, si, ready : bit;
begin
  if (sv = '1') use
    vheld == vline;
  end use;
  if (si = '1') use
    iheld == iline;
  end use;
  vout == adc(vheld, 8.0);
  iout == adc(iheld, 8.0);
  process (vline'above(0.0), iline'above(0.0)) is begin
    sv <= vline'above(0.0); si <= iline'above(0.0); ready <= '1';
  end process;
end architecture;
`

// MissileSource is the missile equation solver: a longitudinal flight model
// with square-law drag computed through a log/antilog chain, solved by a
// signal-flow structure with two integrators.
const MissileSource = `entity missile_solver is
  port (
    quantity cmd  : in real is voltage;
    quantity wind : in real is voltage;
    quantity bias : in real is voltage;
    quantity acc  : out real;
    quantity dist : out real
  );
end entity;

architecture flight of missile_solver is
  constant k1 : real := 4.0;
  constant k2 : real := 0.8;
  constant k3 : real := 0.5;
  constant cd : real := 0.3;
  constant n  : real := 2.0;
  quantity vel, pos, drag, spd : real;
begin
  vel'dot == acc; pos'dot == vel;
  acc == k1 * cmd - k2 * vel - k3 * drag;
  spd == vel - wind; drag == cd * exp(n * log(spd));
  dist == pos - bias;
end architecture;
`

// IterSolverSource is the iterative equation solver: an integrator feedback
// loop converging on the solution, with a convergence detector and a
// sample-and-hold latching the settled value.
const IterSolverSource = `entity iter_solver is
  port (quantity x : out real);
end entity;

architecture iterative of iter_solver is
  constant a0 : real := 1.0;
  signal xs : real;
  signal conv : bit;
begin
  x'dot == a0 - x - x'integ;
  process (x'above(0.5), x'above(0.4)) is begin
    conv <= x'above(0.5);
    xs <= x;
  end process;
end architecture;
`

// FuncGenSource is the ramp-signal (function) generator: an integrator with
// a switched slope, retriggered by a Schmitt trigger at the amplitude
// bounds.
const FuncGenSource = `entity func_gen is
  port (quantity wave : out real; signal sync : out bit);
end entity;

architecture ramp of func_gen is
  constant k   : real := 1000.0;
  constant g2  : real := 2.0;
  constant amp : real := 1.0;
  quantity slope : real;
  signal up, run : bit;
begin
  wave'dot == g2 * slope;
  if (up = '1') use slope == k; else slope == -k; end use;
  process (wave'above(amp), wave'above(-amp)) is begin
    up <= not up;
    sync <= '1'; run <= '1';
  end process;
end architecture;
`

// Applications returns the five benchmark designs in Table 1 order.
func Applications() []*Application {
	return []*Application{
		{
			Name:   "Receiver Module",
			Key:    "receiver",
			Source: ReceiverSource,
			Expected: Row{
				ContinuousLines: 4, Quantities: 4, EventLines: 4, Signals: 2,
				Blocks: 6, States: 4, Datapath: 1,
				Synthesis: "2 amplif., 1 zero-cross det.",
			},
		},
		{
			Name:   "Power Meter",
			Key:    "powermeter",
			Source: PowerMeterSource,
			Expected: Row{
				ContinuousLines: 8, Quantities: 6, EventLines: 3, Signals: 3,
				Blocks: 6, States: 2, Datapath: 2,
				Synthesis: "2 zero-cross det., 2 S/H, 2 ADC",
			},
		},
		{
			Name:   "Missile Solver",
			Key:    "missile",
			Source: MissileSource,
			Expected: Row{
				ContinuousLines: 4, Quantities: 9, EventLines: 0, Signals: 0,
				Blocks: 13, States: 0, Datapath: 0,
				Synthesis: "2 integ., 1 anti-log.amplif., 4 amplif., 1 log.amplif. (reduced)",
			},
		},
		{
			Name:   "Iter.Equat. Solver",
			Key:    "itersolver",
			Source: IterSolverSource,
			Expected: Row{
				ContinuousLines: 1, Quantities: 1, EventLines: 4, Signals: 2,
				Blocks: 6, States: 2, Datapath: 2,
				Synthesis: "3 integ., 1 S/H, 1 diff. amplif.",
			},
			Deviations: []string{
				"synthesizes 2 integrators instead of 3 (the reconstructed dynamics use a stable second-order loop), the difference amplifier is reported in the generic amplifier bucket, and the convergence signal adds 1 zero-cross detector",
			},
		},
		{
			Name:   "Function Generator",
			Key:    "funcgen",
			Source: FuncGenSource,
			Expected: Row{
				ContinuousLines: 2, Quantities: 2, EventLines: 4, Signals: 3,
				Blocks: 4, States: 2, Datapath: 1,
				Synthesis: "1 integ., 1 MUX, 1 Schmitt trigger",
			},
		},
	}
}

// ByKey returns the application with the given key, or nil.
func ByKey(key string) *Application {
	for _, a := range Applications() {
		if a.Key == key {
			return a
		}
	}
	return nil
}

// Keys returns the benchmark keys in Table 1 order.
func Keys() []string {
	apps := Applications()
	keys := make([]string, len(apps))
	for i, a := range apps {
		keys[i] = a.Key
	}
	return keys
}

// Build runs the full front end and synthesis for the application.
type Build struct {
	App *Application
	// Design is the analyzed front end. It is nil when the build was served
	// from a pipeline's on-disk cache (the Table 1 columns remain available
	// through Actual).
	Design *sema.Design
	Module *vhif.Module
	Result *mapper.Result
	Actual Row
	// Cached reports that the synthesis came from the pipeline cache.
	Cached  bool
	AreaUm2 float64
}

// BuildApp parses, analyzes, compiles and synthesizes one application with
// the default synthesis options.
func BuildApp(app *Application) (*Build, error) {
	return BuildAppWith(app, mapper.DefaultOptions())
}

// BuildAppWith is BuildApp under explicit synthesis options (worker count,
// ablations, objectives).
func BuildAppWith(app *Application, opts mapper.Options) (*Build, error) {
	return BuildAppContext(context.Background(), app, opts)
}

// BuildAppContext is BuildAppWith under a context: a deadline or
// cancellation turns the branch-and-bound search anytime — the returned
// Build carries the mapper's best incumbent so far, with Result.Nonoptimal
// set. The front end always runs to completion (it is fast and its output
// is needed for even a truncated synthesis).
func BuildAppContext(ctx context.Context, app *Application, opts mapper.Options) (*Build, error) {
	return BuildAppIn(ctx, pipeline.Default(), app, opts)
}

// BuildAppIn is BuildAppContext through an explicit pipeline: every stage
// of the build (parse, sema, VHIF compilation, architecture generation) is
// memoized there, so rebuilding an unchanged application is served from
// cache — Table 1 is byte-identical either way.
func BuildAppIn(ctx context.Context, p *pipeline.Pipeline, app *Application, opts mapper.Options) (*Build, error) {
	// The front end runs to completion even under an expired ctx: it is
	// fast, and its output is needed for even a truncated synthesis.
	cr, err := p.Compile(context.Background(), app.Key+".vhd", app.Source)
	if err != nil {
		return nil, fmt.Errorf("corpus %s: front end: %w", app.Key, err)
	}
	res, cached, err := p.SynthesizeText(ctx, cr.Module, cr.Text, opts)
	if err != nil {
		return nil, fmt.Errorf("corpus %s: synthesize: %w", app.Key, err)
	}
	b := &Build{App: app, Design: cr.Sema, Module: cr.Module, Result: res, Cached: cached}
	b.Actual = Row{
		ContinuousLines: cr.Stats.ContinuousLines,
		Quantities:      cr.Stats.Quantities,
		EventLines:      cr.Stats.EventLines,
		Signals:         cr.Stats.Signals,
		Blocks:          cr.Module.BlockCount(),
		States:          cr.Module.StateCount(),
		Datapath:        cr.Module.DatapathCount(),
		Synthesis:       res.Netlist.Summary(),
	}
	b.AreaUm2 = res.Report.AreaUm2
	return b, nil
}

// BuildAll synthesizes every application with the default options.
func BuildAll() ([]*Build, error) {
	return BuildAllWith(mapper.DefaultOptions())
}

// BuildAllWith synthesizes every application under explicit options.
func BuildAllWith(opts mapper.Options) ([]*Build, error) {
	return BuildAllContext(context.Background(), opts)
}

// BuildAllContext synthesizes every application under a shared context; a
// deadline bounds the whole batch, with each search returning its best
// incumbent so far.
func BuildAllContext(ctx context.Context, opts mapper.Options) ([]*Build, error) {
	return BuildAllIn(ctx, pipeline.Default(), opts)
}

// BuildAllIn synthesizes every application through an explicit pipeline.
func BuildAllIn(ctx context.Context, p *pipeline.Pipeline, opts mapper.Options) ([]*Build, error) {
	var out []*Build
	for _, app := range Applications() {
		b, err := BuildAppIn(ctx, p, app, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Table1 renders the reproduced Table 1 with the paper's values alongside.
func Table1(builds []*Build) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s | %s | %s | %s\n", "Application",
		"VASS spec (cont/quant/event/sig)", "VHIF (blocks/states/datapath)", "Synthesis results")
	b.WriteString(strings.Repeat("-", 118) + "\n")
	for _, bd := range builds {
		a, e := bd.Actual, bd.App.Expected
		fmt.Fprintf(&b, "%-20s | got %2d/%2d/%2d/%2d  paper %2d/%2d/%2d/%2d | got %2d/%2d/%2d paper %2d/%2d/%2d | %s\n",
			bd.App.Name,
			a.ContinuousLines, a.Quantities, a.EventLines, a.Signals,
			e.ContinuousLines, e.Quantities, e.EventLines, e.Signals,
			a.Blocks, a.States, a.Datapath,
			e.Blocks, e.States, e.Datapath,
			a.Synthesis)
		if len(bd.App.Deviations) > 0 {
			for _, d := range bd.App.Deviations {
				fmt.Fprintf(&b, "%-20s |   note: %s\n", "", d)
			}
		}
	}
	return b.String()
}

// Cancellation contract of the lint driver: a dead context aborts between
// stages and passes with the context's error; a live one changes nothing.
//
// This is an external test package because it imports corpus, which now
// builds through the pipeline — and the pipeline's cache keys depend on
// this package.
package lint_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vase/internal/corpus"
	"vase/internal/lint"
)

func TestCheckSourceContextCancelled(t *testing.T) {
	app := corpus.ByKey("receiver")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := lint.CheckSourceContext(ctx, "receiver.vhd", app.Source, lint.Options{})
	if err == nil {
		t.Fatal("cancelled lint run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled before") {
		t.Errorf("error %q does not say where the run stopped", err)
	}
}

func TestCheckSourceContextBackgroundMatchesPlain(t *testing.T) {
	app := corpus.ByKey("receiver")
	plain, err := lint.CheckSource("receiver.vhd", app.Source, lint.Options{})
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	ctxList, err := lint.CheckSourceContext(context.Background(), "receiver.vhd", app.Source, lint.Options{})
	if err != nil {
		t.Fatalf("CheckSourceContext: %v", err)
	}
	if len(plain) != len(ctxList) {
		t.Errorf("background context changed findings: %d vs %d", len(plain), len(ctxList))
	}
}

func TestCheckVHIFContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := lint.CheckVHIFContext(ctx, "m.vhif", "module m\n", lint.Options{}); err == nil {
		t.Fatal("cancelled VHIF lint run succeeded")
	}
}

package vhif

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// roundTrip asserts Parse(Dump(m)).Dump() == Dump(m).
func roundTrip(t *testing.T, m *Module) {
	t.Helper()
	d1 := m.Dump()
	m2, err := Parse(d1)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, d1)
	}
	d2 := m2.Dump()
	if d1 != d2 {
		t.Fatalf("round trip differs:\n--- original ---\n%s\n--- reparsed ---\n%s", d1, d2)
	}
}

func TestParseRoundTripReceiverLike(t *testing.T) {
	g := buildReceiverGraph(t)
	f := NewFSM("ctl")
	s1 := f.NewState("state1")
	s1.Ops = append(s1.Ops, &DataOp{Target: "c1", SignalOp: true, Expr: &DConst{Value: 1, Bit: true}})
	f.AddArc(f.Start, s1, &DEvent{Quantity: "line", Threshold: 0.1})
	f.AddArc(s1, f.Start, nil)
	m := &Module{
		Name: "telephone",
		Ports: []*Port{
			{Name: "line", Voltage: true},
			{Name: "earph", Dir: DirOut, Voltage: true, Limited: true, LimitAt: 1.5, DrivesOhms: 270, PeakDrive: 0.285},
		},
		Graphs: []*Graph{g},
		FSMs:   []*FSM{f},
	}
	roundTrip(t, m)
}

func TestParseRoundTripPortAttributes(t *testing.T) {
	g := NewGraph("main")
	in := g.AddBlock(BInput, "a")
	g.AddBlock(BOutput, "y", in.Out)
	m := &Module{
		Name: "attrs",
		Ports: []*Port{
			{Name: "a", Voltage: false, Impedance: 1e6, FreqLo: 100, FreqHi: 5000, RangeLo: -2, RangeHi: 2},
			{Name: "s", Kind: PortSignal, Dir: DirOut, Voltage: true},
		},
		Graphs: []*Graph{g},
	}
	roundTrip(t, m)
	m2, err := Parse(m.Dump())
	if err != nil {
		t.Fatal(err)
	}
	p := m2.Port("a")
	if p.Voltage || p.Impedance != 1e6 || p.FreqLo != 100 || p.FreqHi != 5000 || p.RangeLo != -2 {
		t.Errorf("attributes lost: %+v", p)
	}
}

func TestParseRoundTripFilterParams(t *testing.T) {
	g := NewGraph("main")
	in := g.AddBlock(BInput, "a")
	f := g.AddBlock(BFilter, "bpf", in.Out)
	f.Param = 2000
	f.Param2 = 500
	g.AddBlock(BOutput, "y", f.Out)
	m := &Module{Name: "filt", Graphs: []*Graph{g}}
	roundTrip(t, m)
	m2, _ := Parse(m.Dump())
	b := m2.Graphs[0].BlockByName("bpf")
	if b.Param != 2000 || b.Param2 != 500 {
		t.Errorf("filter params lost: %g/%g", b.Param, b.Param2)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"graph main",
		"module x\n  bogus line here",
		"module x\n  port sideways quantity a",
		"module x\n  control a -> nosuchnet",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseDExprForms(t *testing.T) {
	cases := []string{
		"'1'",
		"'0'",
		"2.5",
		"c1",
		"line'above(0.1)",
		"clk'event",
		"not c1",
		"-x",
		"abs v",
		"(a + b)",
		"(a or line'above(0.1))",
		"((a + b) * (c - d))",
		"exp(x)",
		"min(a, b)",
		"(not a or b)",
		"(x /= y)",
		"(x <= y)",
	}
	for _, src := range cases {
		e, err := ParseDExpr(src)
		if err != nil {
			t.Errorf("ParseDExpr(%q): %v", src, err)
			continue
		}
		if got := e.String(); got != src {
			t.Errorf("round trip: %q -> %q", src, got)
		}
	}
}

func TestParseDExprRejects(t *testing.T) {
	for _, bad := range []string{"", "(a +", "q'above(x)", "1.2.3", "(a ? b)"} {
		if _, err := ParseDExpr(bad); err == nil {
			t.Errorf("ParseDExpr(%q) should fail", bad)
		}
	}
}

// randDExpr builds a random datapath expression tree.
func randDExpr(rng *rand.Rand, depth int) DExpr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			return &DConst{Value: 1, Bit: true}
		case 1:
			return &DConst{Value: 0, Bit: true}
		case 2:
			return &DConst{Value: float64(rng.Intn(100)) / 4}
		case 3:
			return &DName{Name: names[rng.Intn(len(names))]}
		default:
			return &DEvent{Quantity: names[rng.Intn(len(names))], Threshold: float64(rng.Intn(40))/8 - 2}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return &DUnary{Op: "not", X: randDExpr(rng, depth-1)}
	case 1:
		ops := []string{"+", "-", "*", "and", "or", "=", "/=", "<", "<=", ">", ">="}
		return &DBinary{Op: ops[rng.Intn(len(ops))], X: randDExpr(rng, depth-1), Y: randDExpr(rng, depth-1)}
	case 2:
		return &DCall{Fun: "min", Args: []DExpr{randDExpr(rng, depth-1), randDExpr(rng, depth-1)}}
	default:
		return &DPortEvent{Port: names[rng.Intn(len(names))]}
	}
}

var names = []string{"a", "b2", "line", "c_1"}

// TestDExprRoundTripProperty: for random trees, String then ParseDExpr then
// String is the identity.
func TestDExprRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randDExpr(rng, 4)
		text := e.String()
		parsed, err := ParseDExpr(text)
		if err != nil {
			t.Logf("seed %d: parse %q: %v", seed, text, err)
			return false
		}
		if parsed.String() != text {
			t.Logf("seed %d: %q -> %q", seed, text, parsed.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

package pipeline

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"vase/internal/mna"
	"vase/internal/netlist"
	"vase/internal/wavespec"
)

// SpiceData is the memoized output of the spice stage: the raw samples of
// a circuit-level transient analysis, deliberately circuit-independent so
// a disk hit can be rehydrated into any equivalent elaboration via
// mna.(*Circuit).TranFromSamples. Node waveforms are keyed by external
// node number (the map key of mna.Tran.V).
type SpiceData struct {
	Time      []float64
	V         map[int][]float64
	Truncated bool
	// Cached reports that this call was served from the cache (memory or
	// disk) rather than by running the solver.
	Cached bool
}

// SpiceOptions configures one spice-stage run. Solver and Budget are part
// of the cache key (see SpiceKey); Workers is result-neutral and is not.
type SpiceOptions struct {
	Solver  mna.SolverMode
	Budget  mna.ErrorBudget
	Workers int
}

// Spice runs (or reuses) a circuit-level transient simulation: decode the
// netlist artifact, elaborate the op-amp macromodel circuit, integrate.
// The inputs are textual waveform specs (wavespec grammar) — functions are
// not content-addressable, their specs are. Truncated results (a cancelled
// or deadlined context stopped the integration early) are returned but
// never cached: a partial trace documents one interrupted run, not the
// analysis the key names. The exact tiers are byte-deterministic and the
// fast tier is deterministic under its keyed budget (the corpus and
// campaign determinism suites pin this), which is what makes the stage
// cacheable at all.
func (p *Pipeline) Spice(ctx context.Context, netlistData string, inputs map[string]string, tstop, tstep float64, opts SpiceOptions) (*SpiceData, error) {
	key := SpiceKey(netlistData, inputs, tstop, tstep, opts.Solver, opts.Budget)
	v, src, err := p.memo(ctx, StageSpice, key, spiceCodec,
		func(ctx context.Context) (any, bool, error) {
			nl, err := netlist.Decode(netlistData)
			if err != nil {
				return nil, false, fmt.Errorf("pipeline: spice netlist artifact: %w", err)
			}
			sources, err := wavespec.ParseMap(inputs)
			if err != nil {
				return nil, false, err
			}
			waves := make(map[string]mna.Waveform, len(sources))
			for name, s := range sources { //vase:unordered (map-to-map copy)
				waves[name] = mna.Waveform(s)
			}
			el, err := mna.Elaborate(nl, waves)
			if err != nil {
				return nil, false, err
			}
			c := el.Circuit
			c.Solver = opts.Solver
			c.Budget = opts.Budget
			c.Workers = opts.Workers
			tr, err := c.TransientContext(ctx, tstop, tstep)
			if err != nil {
				return nil, false, err
			}
			sd := &SpiceData{Time: tr.Time, V: make(map[int][]float64, len(tr.V)), Truncated: tr.Truncated}
			for n, w := range tr.V { //vase:unordered (map-to-map copy)
				sd.V[int(n)] = w
			}
			return sd, ctx.Err() == nil && !tr.Truncated, nil
		})
	if err != nil {
		return nil, err
	}
	sd := *v.(*SpiceData)
	sd.Cached = src.cached()
	return &sd, nil
}

// spiceHeader identifies (and versions) the on-disk spice artifact.
const spiceHeader = "vase-spice v1"

// spiceCodec serializes a SpiceData with hex-exact floats, so a disk
// round-trip preserves every sample bit for bit — the same determinism
// contract the in-memory cache provides. Truncated traces refuse to
// encode; the stage never marks them cacheable in the first place.
var spiceCodec = &codec{
	encode: func(v any) ([]byte, error) {
		sd := v.(*SpiceData)
		if sd.Truncated {
			return nil, fmt.Errorf("pipeline: truncated spice trace is not cacheable")
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s\nshape %d %d\n", spiceHeader, len(sd.V), len(sd.Time))
		writeRow := func(prefix string, w []float64) {
			b.WriteString(prefix)
			for _, f := range w {
				b.WriteByte(' ')
				b.WriteString(strconv.FormatFloat(f, 'x', -1, 64))
			}
			b.WriteByte('\n')
		}
		writeRow("time", sd.Time)
		ids := make([]int, 0, len(sd.V))
		for id := range sd.V {
			ids = append(ids, id)
		}
		for i := 1; i < len(ids); i++ { // insertion sort: tiny, no new import
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		for _, id := range ids {
			writeRow("node "+strconv.Itoa(id), sd.V[id])
		}
		return []byte(b.String()), nil
	},
	decode: func(data []byte) (any, error) {
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		if len(lines) < 3 || lines[0] != spiceHeader {
			return nil, fmt.Errorf("pipeline: spice artifact has header %q, want %q", lines[0], spiceHeader)
		}
		var nodes, samples int
		if _, err := fmt.Sscanf(lines[1], "shape %d %d", &nodes, &samples); err != nil {
			return nil, fmt.Errorf("pipeline: spice artifact shape line %q: %w", lines[1], err)
		}
		if len(lines) != 3+nodes {
			return nil, fmt.Errorf("pipeline: spice artifact has %d rows, want %d", len(lines)-2, nodes+1)
		}
		parseRow := func(fields []string) ([]float64, error) {
			if len(fields) != samples {
				return nil, fmt.Errorf("pipeline: spice artifact row has %d samples, want %d", len(fields), samples)
			}
			w := make([]float64, samples)
			for i, f := range fields {
				x, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("pipeline: spice artifact sample %q: %w", f, err)
				}
				w[i] = x
			}
			return w, nil
		}
		sd := &SpiceData{V: make(map[int][]float64, nodes)}
		tf := strings.Fields(lines[2])
		if len(tf) == 0 || tf[0] != "time" {
			return nil, fmt.Errorf("pipeline: spice artifact missing time row")
		}
		var err error
		if sd.Time, err = parseRow(tf[1:]); err != nil {
			return nil, err
		}
		for _, line := range lines[3:] {
			fields := strings.Fields(line)
			if len(fields) < 2 || fields[0] != "node" {
				return nil, fmt.Errorf("pipeline: spice artifact malformed node row %q", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("pipeline: spice artifact node id %q: %w", fields[1], err)
			}
			if sd.V[id], err = parseRow(fields[2:]); err != nil {
				return nil, err
			}
		}
		return sd, nil
	},
}

package mna

import (
	"fmt"
	"math"

	"vase/internal/library"
	"vase/internal/netlist"
)

// Op amp macromodel parameters used during elaboration.
const (
	olGain    = 1e4 // open-loop gain
	vSwing    = 4.0 // internal output swing (±V) on a ±5 V supply
	ctrlSwing = 2.5 // comparator output levels ±2.5 V, switch threshold 0
	unitR     = 10e3
	ronSwitch = 100.0
	roffSw    = 1e9
)

// Elaborated binds a synthesized netlist to its MNA circuit.
type Elaborated struct {
	Circuit *Circuit
	// NodeOf maps netlist net names to circuit nodes.
	NodeOf map[string]Node
	// PolOf gives the polarity (+1/-1) of each mapped net: inverting
	// op-amp stages flip signal polarity, which the elaborator tracks so
	// that recorded waveforms carry the true sign.
	PolOf map[string]float64
}

// V returns the true (polarity-corrected) waveform of a netlist net.
func (e *Elaborated) V(tr *Tran, name string) []float64 {
	n, ok := e.NodeOf[name]
	if !ok {
		return nil
	}
	pol := e.PolOf[name]
	if pol == 0 {
		pol = 1
	}
	raw := tr.V[n]
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = pol * v
	}
	return out
}

// Elaborate expands a synthesized component netlist into an op-amp
// macromodel circuit: amplifier cells become saturating op amps with
// resistive feedback (inverting stages, with polarity tracked), integrators
// become RC Miller integrators, comparators become open-loop stages with
// reference sources, multiplexers and programmable-gain stages use
// voltage-controlled switches, output stages saturate at their limit level
// and drive their annotated load, and transcendental computational cells
// use behavioral sources.
func Elaborate(nl *netlist.Netlist, inputs map[string]Waveform) (*Elaborated, error) {
	order, err := nl.Topological()
	if err != nil {
		return nil, err
	}
	e := &elab{
		ckt:  New(),
		out:  &Elaborated{NodeOf: map[string]Node{}, PolOf: map[string]float64{}},
		pol:  map[*netlist.Net]float64{},
		node: map[*netlist.Net]Node{},
	}
	e.out.Circuit = e.ckt

	// Input ports become voltage sources.
	for _, p := range nl.Ports {
		if p.Dir != netlist.In {
			continue
		}
		w, ok := inputs[p.Name]
		if !ok {
			return nil, fmt.Errorf("mna: no waveform for input port %q", p.Name)
		}
		n := e.nodeFor(p.Net)
		e.ckt.AddV("v_"+p.Name, n, Ground, w)
		e.pol[p.Net] = 1
	}

	// Constant (reference) nets become bias voltage sources.
	for _, net := range nl.Nets {
		if net.Const != nil {
			v := *net.Const
			e.ckt.AddV("vref_"+net.Name, e.nodeFor(net), Ground, func(float64) float64 { return v })
			e.pol[net] = 1
		}
	}

	for _, c := range order {
		if err := e.component(c); err != nil {
			return nil, err
		}
	}

	// Export the node/polarity maps. Internal nets may reuse quantity
	// names (the compiler names a defining net after its quantity), so
	// external ports are mapped last and win any collision.
	for net, n := range e.node { //vase:unordered (per-key writes; net names are unique)
		e.out.NodeOf[net.Name] = n
		e.out.PolOf[net.Name] = e.pol[net]
	}
	for _, p := range nl.Ports {
		if n, ok := e.node[p.Net]; ok {
			e.out.NodeOf[p.Name] = n
			e.out.PolOf[p.Name] = e.pol[p.Net]
		}
	}
	return e.out, nil
}

type elab struct {
	ckt  *Circuit
	out  *Elaborated
	pol  map[*netlist.Net]float64
	node map[*netlist.Net]Node
	seq  int
}

func (e *elab) nodeFor(n *netlist.Net) Node {
	if nd, ok := e.node[n]; ok {
		return nd
	}
	nd := e.ckt.NodeByName(n.Name)
	e.node[n] = nd
	return nd
}

func (e *elab) aux(prefix string) Node {
	e.seq++
	return e.ckt.NodeByName(fmt.Sprintf("%s_%d", prefix, e.seq))
}

func (e *elab) polOf(n *netlist.Net) float64 {
	if p, ok := e.pol[n]; ok && p != 0 {
		return p
	}
	return 1
}

// trueNode returns a node carrying the positive-polarity value of net,
// inserting a unity inverting stage when needed.
func (e *elab) trueNode(n *netlist.Net, name string) Node {
	nd := e.nodeFor(n)
	if e.polOf(n) > 0 {
		return nd
	}
	return e.invert(nd, name)
}

// invert adds a unity inverting op-amp stage and returns its output node.
func (e *elab) invert(in Node, name string) Node {
	vg := e.aux(name + "_vg")
	out := e.aux(name + "_out")
	e.ckt.AddR(name+"_ri", in, vg, unitR)
	e.ckt.AddR(name+"_rf", out, vg, unitR)
	e.ckt.AddOpAmp(name+"_oa", out, Ground, vg, olGain, vSwing)
	return out
}

// component elaborates one library cell instance.
func (e *elab) component(c *netlist.Component) error {
	name := c.Name
	switch c.Cell.Kind {
	case library.CellInvAmp, library.CellNonInvAmp:
		return e.summer(c, []float64{c.Param("gain", 1)})
	case library.CellFollower:
		in := e.nodeFor(c.Inputs[0])
		out := e.nodeFor(c.Out)
		e.ckt.AddOpAmp(name+"_oa", out, in, out, olGain, vSwing)
		e.pol[c.Out] = e.polOf(c.Inputs[0])
		return nil
	case library.CellSummingAmp, library.CellDiffAmp:
		ws := make([]float64, len(c.Inputs))
		for i := range c.Inputs {
			ws[i] = c.Param(fmt.Sprintf("gain%d", i), 1)
		}
		return e.summer(c, ws)
	case library.CellPGA:
		return e.pga(c)
	case library.CellIntegrator:
		return e.integrator(c)
	case library.CellComparator, library.CellSchmitt:
		return e.detector(c)
	case library.CellMux:
		return e.mux(c)
	case library.CellSwitch:
		in := e.nodeFor(c.Inputs[0])
		out := e.nodeFor(c.Out)
		ctrl := e.nodeFor(c.Ctrl)
		e.ckt.AddSwitch(name+"_sw", in, out, ctrl, Ground, ronSwitch, roffSw, 0)
		e.ckt.AddR(name+"_rleak", out, Ground, 1e6)
		e.pol[c.Out] = e.polOf(c.Inputs[0])
		return nil
	case library.CellSampleHold:
		return e.sampleHold(c)
	case library.CellOutputStage, library.CellLimiter:
		return e.outputStage(c)
	case library.CellLowPass, library.CellBandPass:
		return e.filter(c)
	default:
		return e.behavioral(c)
	}
}

// filter realizes inferred filters with passive RC sections and a buffer:
// a low-pass is R into a grounded C; a band-pass prepends a series-C
// high-pass section for the lower corner.
func (e *elab) filter(c *netlist.Component) error {
	name := c.Name
	in := e.nodeFor(c.Inputs[0])
	out := e.nodeFor(c.Out)
	const cVal = 10e-9
	node := in
	if c.Cell.Kind == library.CellBandPass {
		if flo := c.Param("flo", 0); flo > 0 {
			hp := e.aux(name + "_hp")
			rHP := 1 / (2 * math.Pi * flo * cVal)
			e.ckt.AddC(name+"_chp", node, hp, cVal, 0)
			e.ckt.AddR(name+"_rhp", hp, Ground, rHP)
			node = hp
		}
	}
	lp := e.aux(name + "_lp")
	fhi := c.Param("fhi", 1)
	rLP := 1 / (2 * math.Pi * fhi * cVal)
	e.ckt.AddR(name+"_rlp", node, lp, rLP)
	e.ckt.AddC(name+"_clp", lp, Ground, cVal, 0)
	e.ckt.AddOpAmp(name+"_oa", out, lp, out, olGain, vSwing)
	e.pol[c.Out] = e.polOf(c.Inputs[0])
	return nil
}

// summer realizes a weighted sum as an inverting summing amplifier:
// nodeOut = -sum(ki * nodeIn_i) with ki > 0. Inputs whose effective weight
// has the wrong sign pass through a unity inverting stage first. The output
// polarity flips.
func (e *elab) summer(c *netlist.Component, weights []float64) error {
	name := c.Name
	vg := e.aux(name + "_vg")
	out := e.nodeFor(c.Out)

	// Effective weights after input polarities.
	eff := make([]float64, len(weights))
	sign := 0.0
	mixed := false
	for i, w := range weights {
		eff[i] = w * e.polOf(c.Inputs[i])
		s := math.Copysign(1, eff[i])
		if eff[i] == 0 {
			continue
		}
		if sign == 0 {
			sign = s
		} else if s != sign {
			mixed = true
		}
	}
	if sign == 0 {
		sign = 1
	}
	for i, w := range eff {
		if w == 0 {
			continue
		}
		in := e.nodeFor(c.Inputs[i])
		if math.Copysign(1, w) != sign {
			// Condition the input through a unity inverter.
			in = e.invert(in, fmt.Sprintf("%s_cond%d", name, i))
			w = -w
		}
		e.ckt.AddR(fmt.Sprintf("%s_ri%d", name, i), in, vg, unitR/math.Abs(w))
	}
	_ = mixed
	e.ckt.AddR(name+"_rf", out, vg, unitR)
	e.ckt.AddOpAmp(name+"_oa", out, Ground, vg, olGain, vSwing)
	// nodeOut = -sign * sum(|w_i| * trueIn_i * ...): polarity = -sign.
	e.pol[c.Out] = -sign
	return nil
}

// pga realizes the programmable-gain amplifier: an inverting stage whose
// feedback resistor is selected by complementary switches.
func (e *elab) pga(c *netlist.Component) error {
	name := c.Name
	in := e.nodeFor(c.Inputs[0])
	out := e.nodeFor(c.Out)
	vg := e.aux(name + "_vg")
	ctrl := e.nodeFor(c.Ctrl)
	ctrlBar := e.invertCtrl(ctrl, name)

	gOn := math.Abs(c.Param("gain_on", 1))
	gOff := math.Abs(c.Param("gain_off", 1))
	e.ckt.AddR(name+"_ri", in, vg, unitR)
	// Two switched feedback branches.
	fbOn := e.aux(name + "_fbon")
	e.ckt.AddR(name+"_rfon", out, fbOn, unitR*gOn)
	e.ckt.AddSwitch(name+"_swon", fbOn, vg, ctrl, Ground, ronSwitch, roffSw, 0)
	fbOff := e.aux(name + "_fboff")
	e.ckt.AddR(name+"_rfoff", out, fbOff, unitR*gOff)
	e.ckt.AddSwitch(name+"_swoff", fbOff, vg, ctrlBar, Ground, ronSwitch, roffSw, 0)
	e.ckt.AddOpAmp(name+"_oa", out, Ground, vg, olGain, vSwing)

	pin := e.polOf(c.Inputs[0])
	sOn := math.Copysign(1, c.Param("gain_on", 1))
	e.pol[c.Out] = -pin * sOn
	return nil
}

// invertCtrl derives the complementary control level with a swapped-input
// comparator stage.
func (e *elab) invertCtrl(ctrl Node, name string) Node {
	out := e.aux(name + "_nctrl")
	e.ckt.AddOpAmp(name+"_noa", out, Ground, ctrl, olGain, ctrlSwing)
	return out
}

// integrator realizes a (summing) inverting RC integrator with unit R and
// per-weight capacitor scaling.
func (e *elab) integrator(c *netlist.Component) error {
	name := c.Name
	vg := e.aux(name + "_vg")
	out := e.nodeFor(c.Out)
	sign := 0.0
	for i := range c.Inputs {
		w := c.Param(fmt.Sprintf("gain%d", i), 1) * e.polOf(c.Inputs[i])
		if w == 0 {
			continue
		}
		s := math.Copysign(1, w)
		if sign == 0 {
			sign = s
		}
		in := e.nodeFor(c.Inputs[i])
		if s != sign {
			in = e.invert(in, fmt.Sprintf("%s_cond%d", name, i))
			w = -w
		}
		// 1/(R*C) = |w| with C fixed: R = 1/(|w|*C).
		const cInt = 1e-6
		e.ckt.AddR(fmt.Sprintf("%s_ri%d", name, i), in, vg, 1/(math.Abs(w)*cInt))
	}
	if sign == 0 {
		sign = 1
	}
	e.ckt.AddC(name+"_c", out, vg, 1e-6, 0)
	e.ckt.AddOpAmp(name+"_oa", out, Ground, vg, olGain, vSwing)
	e.pol[c.Out] = -sign
	return nil
}

// detector realizes comparators and Schmitt triggers as open-loop stages
// against a threshold reference (positive feedback sets the hysteresis of a
// Schmitt stage).
func (e *elab) detector(c *netlist.Component) error {
	name := c.Name
	in := e.nodeFor(c.Inputs[0])
	out := e.nodeFor(c.Out)
	pin := e.polOf(c.Inputs[0])
	th := c.Param("threshold", 0) * pin
	ref := e.aux(name + "_ref")
	e.ckt.AddV(name+"_vref", ref, Ground, func(float64) float64 { return th })

	cp, cm := in, ref
	if pin < 0 {
		cp, cm = cm, cp
	}
	if c.Param("invert", 0) > 0.5 {
		cp, cm = cm, cp
	}
	if c.Cell.Kind == library.CellSchmitt && c.Param("hysteresis", 0) > 0 {
		// Positive feedback divider from the output to the + input:
		// v(fb) = (1-a)*v(in) + a*v(out). With a = hyst/(swing+hyst) the
		// trip points land at threshold ± hyst (exact for a threshold at
		// zero, first-order otherwise).
		hyst := c.Param("hysteresis", 0)
		fb := e.aux(name + "_fb")
		a := hyst / (ctrlSwing + hyst)
		if a > 0.9 {
			a = 0.9
		}
		e.ckt.AddR(name+"_r1", cp, fb, unitR*a/(1-a))
		e.ckt.AddR(name+"_r2", fb, out, unitR)
		cp = fb
	}
	e.ckt.AddOpAmp(name+"_oa", out, cp, cm, olGain, ctrlSwing)
	e.pol[c.Out] = 1
	return nil
}

// mux realizes a 2:1 analog multiplexer with complementary switches
// (input 0 selected while the control is high).
func (e *elab) mux(c *netlist.Component) error {
	name := c.Name
	out := e.nodeFor(c.Out)
	ctrl := e.nodeFor(c.Ctrl)
	ctrlBar := e.invertCtrl(ctrl, name)
	p0, p1 := e.polOf(c.Inputs[0]), e.polOf(c.Inputs[1])
	in0 := e.nodeFor(c.Inputs[0])
	in1 := e.nodeFor(c.Inputs[1])
	if p0 != p1 {
		// Condition input 1 to input 0's polarity.
		in1 = e.invert(in1, name+"_cond1")
		p1 = -p1
	}
	e.ckt.AddSwitch(name+"_sw0", in0, out, ctrl, Ground, ronSwitch, roffSw, 0)
	e.ckt.AddSwitch(name+"_sw1", in1, out, ctrlBar, Ground, ronSwitch, roffSw, 0)
	e.ckt.AddR(name+"_rleak", out, Ground, 1e6)
	e.pol[c.Out] = p0
	return nil
}

// sampleHold realizes input buffer -> switch -> hold cap -> output buffer.
func (e *elab) sampleHold(c *netlist.Component) error {
	name := c.Name
	in := e.nodeFor(c.Inputs[0])
	out := e.nodeFor(c.Out)
	ctrl := e.nodeFor(c.Ctrl)
	buf := e.aux(name + "_buf")
	e.ckt.AddOpAmp(name+"_oain", buf, in, buf, olGain, vSwing)
	hold := e.aux(name + "_hold")
	e.ckt.AddSwitch(name+"_sw", buf, hold, ctrl, Ground, ronSwitch, roffSw, 0)
	e.ckt.AddC(name+"_ch", hold, Ground, 1e-9, 0)
	e.ckt.AddOpAmp(name+"_oaout", out, hold, out, olGain, vSwing)
	e.pol[c.Out] = e.polOf(c.Inputs[0])
	return nil
}

// outputStage realizes the drive stage: polarity restoration, a follower
// saturating at the limit level, and the annotated external load.
func (e *elab) outputStage(c *netlist.Component) error {
	name := c.Name
	in := e.trueNode(c.Inputs[0], name+"_cond")
	out := e.nodeFor(c.Out)
	vmax := c.Param("limit", 0)
	if vmax <= 0 {
		vmax = vSwing
	}
	e.ckt.AddOpAmp(name+"_oa", out, in, out, olGain, vmax)
	if load := c.Param("load", 0); load > 0 {
		e.ckt.AddR(name+"_rload", out, Ground, load)
	}
	e.pol[c.Out] = 1
	return nil
}

// behavioral realizes transcendental computational cells (multipliers,
// log/antilog elements, ADCs, ...) as behavioral sources over true values.
func (e *elab) behavioral(c *netlist.Component) error {
	name := c.Name
	out := e.nodeFor(c.Out)
	var ctrls []Node
	var pols []float64
	for _, in := range c.Inputs {
		ctrls = append(ctrls, e.nodeFor(in))
		pols = append(pols, e.polOf(in))
	}
	kind := c.Cell.Kind
	op := c.Param("op", 0)
	bits := c.Param("bits", 8)
	scale := c.Param("scale", 1)
	// tv is hoisted out of the closure so steady-state evaluation (every
	// Newton iteration touches each behavioral element several times for
	// the numeric Jacobian) allocates nothing. Safe: the simulator calls
	// each element's f sequentially — the parallel AC sweep evaluates
	// behavioral Jacobians only once, while building the template.
	tv := make([]float64, len(ctrls))
	f := func(v []float64) float64 {
		for i := range v {
			tv[i] = v[i] * pols[i]
		}
		switch kind {
		case library.CellMultiplier:
			return tv[0] * tv[1]
		case library.CellDivider:
			den := tv[1]
			if math.Abs(den) < 1e-6 {
				den = math.Copysign(1e-6, den)
			}
			return tv[0] / den
		case library.CellLogAmp:
			x := tv[0]
			if x < 1e-9 {
				x = 1e-9
			}
			return scale * math.Log(x)
		case library.CellAntilogAmp:
			x := tv[0]
			if x > 30 {
				x = 30
			}
			return scale * math.Exp(x)
		case library.CellSqrt:
			return math.Sqrt(math.Max(0, tv[0]))
		case library.CellRectifier:
			return math.Abs(tv[0])
		case library.CellMinMax:
			if op > 0.5 {
				return math.Max(tv[0], tv[1])
			}
			return math.Min(tv[0], tv[1])
		case library.CellSineShaper:
			return math.Sin(tv[0])
		case library.CellADC:
			const fullScale = 2.5
			q := fullScale / math.Exp2(bits-1)
			x := math.Max(-fullScale, math.Min(fullScale, tv[0]))
			return math.Round(x/q) * q
		}
		return 0
	}
	e.ckt.AddFunc(name+"_f", out, ctrls, f)
	e.pol[c.Out] = 1
	return nil
}

entity missile_solver is
  port (
    quantity cmd  : in real is voltage;
    quantity wind : in real is voltage;
    quantity bias : in real is voltage;
    quantity acc  : out real;
    quantity dist : out real
  );
end entity;

architecture flight of missile_solver is
  constant k1 : real := 4.0;
  constant k2 : real := 0.8;
  constant k3 : real := 0.5;
  constant cd : real := 0.3;
  constant n  : real := 2.0;
  quantity vel, pos, drag, spd : real;
begin
  vel'dot == acc; pos'dot == vel;
  acc == k1 * cmd - k2 * vel - k3 * drag;
  spd == vel - wind; drag == cd * exp(n * log(spd));
  dist == pos - bias;
end architecture;

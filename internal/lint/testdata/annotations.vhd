entity ann_demo is
  port (
    quantity vin  : in real is voltage drives 100.0 at 0.5 peak;
    quantity v2   : in real is frequency 5000.0 to 300.0;
    quantity vo   : out real is range 2.0 to -2.0;
    quantity vb   : out real is voltage limited at 1.0 drives 50.0 at 2.5 peak;
    quantity vneg : out real is drives -50.0
  );
end entity;

architecture behavioral of ann_demo is
begin
  vo == vin + v2;
  vb == vin;
  vneg == v2;
end architecture;

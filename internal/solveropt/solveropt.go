// Package solveropt is the one shared parser for the user-facing MNA solver
// tier selection. Every tool that exposes a -solver flag (vasesim,
// vasebench) and every service field that names a tier (vased /v1/simulate)
// resolves the string here, so the accepted names, the error text and the
// mapping onto mna.SolverMode cannot drift between entry points.
//
// The tool-level vocabulary is deliberately smaller than the engine's:
//
//	reference — the textbook dense solver, the semantic ground truth
//	exact     — the planned dense/sparse engine, bit-identical to reference
//	fast      — the tolerance-tier engine, within an ErrorBudget of reference
//
// The engine's dense/sparse/auto distinction is an internal crossover
// decision; tools only choose a contract.
package solveropt

import (
	"fmt"

	"vase/internal/mna"
)

// Tier is a tool-level solver selection.
type Tier int

const (
	// Exact is the default: the planned engine whose results are
	// bit-identical to the reference.
	Exact Tier = iota
	// Reference is the unplanned textbook solver.
	Reference
	// Fast is the tolerance-tier engine: results within the error budget
	// of the reference, not bitwise equal to it.
	Fast
)

// Names lists the accepted -solver values, in documentation order.
func Names() []string { return []string{"reference", "exact", "fast"} }

func (t Tier) String() string {
	switch t {
	case Reference:
		return "reference"
	case Fast:
		return "fast"
	default:
		return "exact"
	}
}

// Parse resolves a user-supplied tier name.
func Parse(s string) (Tier, error) {
	switch s {
	case "reference":
		return Reference, nil
	case "exact":
		return Exact, nil
	case "fast":
		return Fast, nil
	}
	return Exact, fmt.Errorf("unknown solver %q (valid: reference, exact, fast)", s)
}

// Mode maps the tier onto the engine's solver mode.
func (t Tier) Mode() mna.SolverMode {
	switch t {
	case Reference:
		return mna.SolverReference
	case Fast:
		return mna.SolverFast
	default:
		return mna.SolverAuto
	}
}

// Flag is a flag.Value for a Tier, so every CLI binds the same parser:
//
//	tier := solveropt.Exact
//	flag.Var(solveropt.Flag{&tier}, "solver", solveropt.Usage)
//
// With the standard ExitOnError flag set, an unknown name prints the valid
// list and exits 2 — the tools' usage-error exit code.
type Flag struct{ Tier *Tier }

// Usage is the shared help text for -solver flags.
const Usage = "MNA solver tier: reference | exact (bit-identical, planned) | fast (within -reltol/-abstol of reference)"

func (f Flag) String() string {
	if f.Tier == nil {
		return Exact.String()
	}
	return f.Tier.String()
}

func (f Flag) Set(s string) error {
	t, err := Parse(s)
	if err != nil {
		return err
	}
	*f.Tier = t
	return nil
}

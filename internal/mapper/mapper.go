// Package mapper implements the VASE architecture generator: a
// branch-and-bound search that maps the signal-flow graphs of a VHIF module
// onto a minimum-area netlist of library components while satisfying
// performance constraints (the paper's Section 5, Figure 5).
//
// The three problem-specific elements of the algorithm are implemented
// exactly as described:
//
//   - Branching rule: for the current block, all library patterns whose
//     covered sub-graph ends at that block (including functional and
//     interfacing transformations) generate alternatives; for each, the
//     block structure may share an existing identical component
//     (cross-path sharing) or allocate a dedicated one.
//   - Bounding rule: a partial solution dies when even at minimum op amp
//     area ((opamps so far + opamps of the candidate) * MinArea) it cannot
//     beat the best complete mapping found so far.
//   - Sequencing rule: alternatives covering more blocks with fewer op amps
//     are tried first, and sharing before dedicated allocation, so a good
//     solution is found early and the bound becomes effective.
//
// Complete mappings are ranked by the analog performance estimator.
package mapper

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"vase/internal/estimate"
	"vase/internal/library"
	"vase/internal/netlist"
	"vase/internal/patterns"
	"vase/internal/vhif"
)

// Objective selects the quantity the branch-and-bound minimizes.
type Objective int

// Objectives. The paper minimizes ASIC area; power is the other global
// attribute its estimation tools report.
const (
	MinimizeArea Objective = iota
	MinimizePower
)

// Options configures a synthesis run.
type Options struct {
	// Process and System size the op amps during estimation.
	Process estimate.Process
	System  estimate.SystemSpec
	// Objective is the minimized quantity (area by default).
	Objective Objective
	// Patterns controls the pattern generator.
	Patterns patterns.Options
	// NoSequencing disables the sequencing rule (candidates tried in
	// reverse preference order) — ablation.
	NoSequencing bool
	// NoBounding disables the bounding rule — ablation.
	NoBounding bool
	// NoSharing disables cross-path component sharing — ablation.
	NoSharing bool
	// FirstFit stops at the first complete mapping (the time-effective
	// exploration heuristic the paper's future work calls for): with the
	// sequencing rule ordering candidates, the first completion is usually
	// at or near the optimum and the search cost collapses.
	FirstFit bool
	// StrongBound adds a per-uncovered-block op amp lower bound to the
	// bounding rule ("more effective bounding rules", paper Section 7).
	// Admissible when sharing is disabled; with sharing it may prune
	// mappings that would have shared components for free, so it is a
	// heuristic there.
	StrongBound bool
	// Trace records the decision tree (Figure 6). Tracing is strictly
	// opt-in: with Trace false the search allocates no tree nodes, which
	// keeps the hot path allocation-free for parallel workers.
	Trace bool
	// MaxNodes caps the search (0 = 1<<22 nodes). With Workers > 1 the cap
	// is a shared budget across all workers; when it binds, which nodes
	// were explored (and therefore the returned mapping) depends on
	// scheduling. A binding cap truncates the search: the best incumbent
	// found so far is returned with Result.Nonoptimal set.
	MaxNodes int
	// Deadline bounds the wall-clock time of the search (0 = none). It is
	// applied on top of any context passed to SynthesizeContext; on expiry
	// the search stops and returns the incumbent with Result.Nonoptimal
	// set (the anytime contract, DESIGN.md §9).
	Deadline time.Duration
	// Workers is the number of concurrent branch-and-bound workers.
	// 0 selects runtime.GOMAXPROCS(0); 1 runs the exact sequential search
	// (preserved bit-for-bit for ablations and decision-tree studies).
	// For any Workers value the returned mapping is identical to the
	// sequential optimum — workers share the incumbent bound through an
	// atomic compare-and-swap and ties are broken on canonical (depth-first)
	// mapping order — except for the inadmissible StrongBound+sharing
	// combination, where parallel runs are still deterministic but may
	// settle on a different equal-quality mapping than the sequential
	// heuristic.
	Workers int
	// Performance constraints: complete mappings violating them are
	// discarded ("so that all performance constraints are satisfied, and
	// the total ASIC area is minimized"). Zero means unconstrained.
	MaxAreaUm2 float64
	MaxPowerMW float64
	MaxOpAmps  int
}

// DefaultOptions returns the standard synthesis configuration: the SCN
// 2.0 µm process with the system specification derived from the design's
// port annotations (audio-range defaults when unannotated).
func DefaultOptions() Options {
	return Options{Process: estimate.SCN20}
}

// EffectiveWorkers resolves an Options.Workers value to the worker count a
// search will actually use: n itself when positive, runtime.GOMAXPROCS(0)
// otherwise. Exported so a scheduler arbitrating a shared worker budget
// (the vased server) agrees with the search about what a request consumes.
func EffectiveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Stats reports search effort and outcome. In parallel runs the counters
// aggregate over the splitter and every worker task.
type Stats struct {
	NodesVisited     int
	CompleteMappings int
	Pruned           int
	// Infeasible counts complete mappings discarded for violating the
	// performance constraints.
	Infeasible  int
	BestOpAmps  int
	BestAreaUm2 float64
	// Workers and Tasks describe the parallel decomposition (1/1 for the
	// sequential search).
	Workers int
	Tasks   int
	// Elapsed is the wall-clock time of the whole synthesis call, so
	// callers of a deadlined run can reason about how much search the
	// incumbent received.
	Elapsed time.Duration
}

// TreeNode is one node of the traced decision tree.
type TreeNode struct {
	// Block is the current block the node branched on ("" at the root).
	Block string
	// Decision describes the branch taken to reach this node.
	Decision string
	// OpAmps is the op amp count of the partial mapping at this node.
	OpAmps int
	// Complete marks leaves that are full mappings; AreaUm2 their area.
	Complete bool
	AreaUm2  float64
	Pruned   bool
	Children []*TreeNode
}

// Result is a completed synthesis.
type Result struct {
	Netlist *netlist.Netlist
	Report  *netlist.Report
	Stats   Stats
	Tree    *TreeNode
	// Nonoptimal marks a truncated search: the node budget or the
	// deadline/cancellation stopped exploration before the whole decision
	// tree was covered, so Netlist is the best incumbent found rather than
	// the proven optimum.
	Nonoptimal bool
}

// Synthesize maps the module onto a minimum-area component netlist.
// With Options.Workers != 1 the decision tree is split at the top levels
// into independent subtree tasks explored by a bounded worker pool; see
// parallel.go for the decomposition and the determinism argument.
func Synthesize(m *vhif.Module, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), m, opts)
}

// SynthesizeContext is Synthesize under a context: branch-and-bound is a
// natural anytime algorithm, so on cancellation or deadline expiry the
// search stops and returns the best incumbent found so far tagged
// Result.Nonoptimal — never a hang, and an error only when not even a
// greedy first-fit completion exists. A context that can never be
// cancelled leaves the search byte-identical to Synthesize.
func SynthesizeContext(ctx context.Context, m *vhif.Module, opts Options) (*Result, error) {
	start := time.Now() //vase:walltime (stats telemetry)
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	if opts.Process.Name == "" {
		opts.Process = estimate.SCN20
	}
	if opts.System.Bandwidth == 0 {
		opts.System = SystemSpecFor(m)
	}
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 1 << 22
	}
	opts.Workers = EffectiveWorkers(opts.Workers)
	s := newSearch(m, opts)
	if ctx.Done() != nil {
		// The workers poll an atomic flag instead of the context channel:
		// one flag load per node is cheap, and a context that can never
		// fire (Background) costs nothing at all.
		var flag atomic.Bool
		stop := context.AfterFunc(ctx, func() { flag.Store(true) })
		defer stop()
		if ctx.Err() != nil {
			// AfterFunc fires asynchronously; an already-expired context
			// must truncate the search deterministically, not race it.
			flag.Store(true)
		}
		s.cancel = &flag
	}
	if opts.Trace {
		s.root = &TreeNode{Decision: "root"}
		s.cursor = s.root
	}
	if opts.Workers > 1 {
		s.runParallel()
	} else {
		s.stats.Workers, s.stats.Tasks = 1, 1
		s.run()
	}
	if s.truncated && s.best == nil {
		// Anytime fallback: the search was cut off before its first
		// complete mapping. A bounded greedy first-fit descent (the
		// sequencing rule makes its first completion a good one) still
		// produces a valid incumbent to return.
		gopts := opts
		gopts.FirstFit = true
		gopts.Trace = false
		gopts.Workers = 1
		// The truncated run may have exhausted the node budget before its
		// first completion; the first-fit descent needs its own headroom
		// (it stops at the first complete mapping, so it stays cheap).
		gopts.MaxNodes = 1 << 22
		g := newSearch(m, gopts)
		g.run()
		s.best, s.bestArea = g.best, g.bestArea
		s.stats.NodesVisited += g.stats.NodesVisited
		s.stats.CompleteMappings += g.stats.CompleteMappings
		s.stats.Infeasible += g.stats.Infeasible
		if s.err == nil {
			s.err = g.err
		}
	}
	if s.best == nil {
		if s.err != nil {
			return nil, s.err
		}
		if s.truncated && ctx.Err() != nil {
			return nil, fmt.Errorf("mapper: search for module %q cancelled before any feasible mapping: %w", m.Name, ctx.Err())
		}
		return nil, fmt.Errorf("mapper: no feasible mapping for module %q", m.Name)
	}
	nl, err := s.buildNetlist(s.best)
	if err != nil {
		return nil, err
	}
	rep, err := nl.Estimate(opts.Process, opts.System)
	if err != nil {
		return nil, err
	}
	s.stats.BestOpAmps = nl.OpAmpCount()
	s.stats.BestAreaUm2 = rep.AreaUm2
	s.stats.Elapsed = time.Since(start) //vase:walltime (stats telemetry)
	return &Result{Netlist: nl, Report: rep, Stats: s.stats, Tree: s.root, Nonoptimal: s.truncated}, nil
}

// newSearch builds a search over the module: the block visitation order,
// the memoized per-block pattern matches (the candidate lists depend only
// on the block, never on the covering state, so they are computed once and
// shared read-only by every worker), and the bounding floors.
func newSearch(m *vhif.Module, opts Options) *search {
	s := &search{
		m:             m,
		opts:          opts,
		floorGeneral:  estimate.MinArea(opts.Process),
		floorDecision: estimate.MinOTAArea(opts.Process),
		bestArea:      inf,
		covered:       map[*vhif.Block]*alloc{},
		costOf:        map[string]cellCost{},
	}
	if opts.Objective == MinimizePower {
		// Class floors in watts: the minimum-bias designs of each topology.
		s.floorGeneral = estimate.MinOpAmp(opts.Process).Power
		s.floorDecision = 2e-6 * opts.Process.Vdd // one minimum tail current
	}
	s.order = blockOrder(m)
	s.matchTab = make(map[*vhif.Block][]*patterns.Match, len(s.order))
	for _, b := range s.order {
		g := graphOf(m, b)
		ms := patterns.MatchesFor(g, b, opts.Patterns)
		if opts.NoSequencing {
			// Ablation: reverse the preference order.
			for i, j := 0, len(ms)-1; i < j; i, j = i+1, j-1 {
				ms[i], ms[j] = ms[j], ms[i]
			}
		}
		s.matchTab[b] = ms
	}
	if opts.StrongBound {
		s.computeBlockBounds()
	}
	return s
}

func graphOf(m *vhif.Module, b *vhif.Block) *vhif.Graph {
	for _, g := range m.Graphs {
		for _, gb := range g.Blocks {
			if gb == b {
				return g
			}
		}
	}
	return nil
}

const inf = 1e300

// SystemSpecFor derives the design-wide signal specification from the
// module's port annotations: the highest annotated frequency bound sets the
// bandwidth, the widest annotated range or peak drive the signal swing.
// Unannotated designs fall back to the audio-range default. It is exported
// so the pipeline's estimate stage applies the identical defaulting when it
// re-estimates a netlist materialized from a cached artifact.
func SystemSpecFor(m *vhif.Module) estimate.SystemSpec {
	sys := estimate.DefaultSystemSpec()
	for _, p := range m.Ports {
		if p.FreqHi > sys.Bandwidth {
			sys.Bandwidth = p.FreqHi
		}
		for _, v := range []float64{p.PeakDrive, p.RangeHi, -p.RangeLo, p.LimitAt} {
			if v > sys.PeakV {
				sys.PeakV = v
			}
		}
	}
	return sys
}

// cellCost is the cached estimate of a dedicated component: layout area
// and static power. ok is false for infeasible specifications.
type cellCost struct {
	area, power float64
	ok          bool
}

// alloc is one allocated component shared by one or more placements.
type alloc struct {
	match *patterns.Match
	sig   string
	area  float64
	power float64
	uses  int
	// cost is the objective value of the component (area or power).
	cost float64
	// placements records every match realized by this component; the first
	// is the defining one, later ones alias their outputs onto it.
	placements []*patterns.Match
}

// search carries the branch-and-bound state of one sequential exploration:
// the whole tree for Workers == 1, or one subtree task inside a worker.
type search struct {
	m             uModule
	opts          Options
	order         []*vhif.Block
	floorGeneral  float64
	floorDecision float64
	// matchTab memoizes the candidate matches of each block in sequencing
	// order. Read-only after newSearch; shared across workers.
	matchTab map[*vhif.Block][]*patterns.Match

	// Parallel coordination (nil/zero for the sequential search).
	shared *sharedState
	task   int // DFS index of this worker's subtree task

	covered map[*vhif.Block]*alloc
	allocs  []*alloc
	opamps  int
	// floorGeneral/floorDecision are the per-op-amp objective floors (area
	// in µm² or power in W) for general-purpose and decision-class cells;
	// the bounding rule multiplies op amp counts by them.
	// lbArea is the class-aware minimum area of the op amps allocated so
	// far: decision cells (comparators/Schmitt triggers) may be realized
	// as minimum OTAs, everything else needs at least a minimum two-stage
	// amplifier. The paper's bounding rule is the single-topology special
	// case of this bound.
	lbArea float64

	bestArea float64
	best     []*alloc
	stats    Stats
	err      error
	done     bool // FirstFit: stop after the first complete mapping
	// cancel is the cooperative stop flag armed by SynthesizeContext (nil
	// when the context can never fire); every node visit polls it.
	cancel *atomic.Bool
	// truncated records that the search stopped early — node budget
	// exhausted or cancel observed — so the returned mapping is the best
	// incumbent, not the proven optimum.
	truncated bool

	// costOf caches the estimated cost per match signature. Workers receive
	// a fully precomputed table and must not write to it (frozenCost).
	costOf     map[string]cellCost
	frozenCost bool
	// blockLB is the per-block fractional op amp lower bound used by the
	// strong bounding rule; remainingLB its sum over uncovered blocks.
	blockLB     map[*vhif.Block]float64
	remainingLB float64

	root   *TreeNode
	cursor *TreeNode
}

// uModule is the minimal module view the search needs.
type uModule = *vhif.Module

// blockOrder computes the current-block visitation order: outputs first,
// then depth-first through input and control nets, matching the paper's
// output-to-input traversal of the signal-flow graph.
func blockOrder(m *vhif.Module) []*vhif.Block {
	var order []*vhif.Block
	seen := map[*vhif.Block]bool{}
	var visit func(b *vhif.Block)
	visit = func(b *vhif.Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		if isMappable(b) {
			order = append(order, b)
		}
		for _, in := range b.Inputs {
			if in != nil {
				visit(in.Driver)
			}
		}
		if b.Ctrl != nil {
			visit(b.Ctrl.Driver)
		}
	}
	for _, g := range m.Graphs {
		for _, b := range g.Blocks {
			if b.Kind == vhif.BOutput {
				visit(b)
			}
		}
	}
	// Control links and any remaining blocks (e.g. detectors driving only
	// exported signals).
	for _, c := range m.Controls {
		if c.Net != nil {
			visit(c.Net.Driver)
		}
	}
	for _, g := range m.Graphs {
		for _, b := range g.Blocks {
			visit(b)
		}
	}
	return order
}

func isMappable(b *vhif.Block) bool {
	switch b.Kind {
	case vhif.BInput, vhif.BOutput, vhif.BConst:
		return false
	}
	return true
}

// nextUncovered returns the first block in order not yet covered.
func (s *search) nextUncovered() *vhif.Block {
	for _, b := range s.order {
		if s.covered[b] == nil {
			return b
		}
	}
	return nil
}

// minCostOf returns the class-aware per-op-amp objective floor for a cell.
func (s *search) minCostOf(cell *library.Cell) float64 {
	if estimate.IsDecisionCell(cell.Kind) {
		return s.floorDecision
	}
	return s.floorGeneral
}

// matchLB is the minimum-area contribution of allocating a dedicated
// component for the match.
func (s *search) matchLB(m *patterns.Match) float64 {
	return float64(m.OpAmps) * s.minCostOf(m.Cell)
}

// computeBlockBounds fills blockLB: for each block, the cheapest fractional
// minimum area over all matches covering it. The sum over any block set is
// a valid lower bound on the area of any covering (ignoring sharing).
func (s *search) computeBlockBounds() {
	s.blockLB = map[*vhif.Block]float64{}
	for _, g := range s.m.Graphs {
		for _, b := range g.Blocks {
			if !isMappable(b) {
				continue
			}
			s.blockLB[b] = inf
		}
	}
	for _, g := range s.m.Graphs {
		for _, b := range g.Blocks {
			if !isMappable(b) {
				continue
			}
			for _, m := range patterns.MatchesFor(g, b, s.opts.Patterns) {
				frac := s.matchLB(m) / float64(len(m.Blocks))
				for _, cov := range m.Blocks {
					if frac < s.blockLB[cov] {
						s.blockLB[cov] = frac
					}
				}
			}
		}
	}
	// Sum in graph order, not map order: float addition rounds, so a
	// map-ordered sum would make the bound (and with it a borderline
	// prune) vary run to run.
	s.remainingLB = 0
	for _, g := range s.m.Graphs {
		for _, b := range g.Blocks {
			if lb, ok := s.blockLB[b]; ok && lb < inf {
				s.remainingLB += lb
			}
		}
	}
}

// bound returns the minimum-area lower bound of completing the current
// partial mapping after placing match: the class-aware minimum areas of the
// op amps allocated so far, the candidate's, and (under the strong rule)
// the fractional minimum of the still-uncovered blocks.
func (s *search) bound(match *patterns.Match) float64 {
	lb := s.lbArea + s.matchLB(match)
	if s.opts.StrongBound && s.blockLB != nil {
		rest := s.remainingLB
		for _, b := range match.Blocks {
			if v := s.blockLB[b]; v < inf && s.covered[b] == nil {
				rest -= v
			}
		}
		if rest > 0 {
			lb += rest
		}
	}
	return lb
}

// visit accounts one node visit and reports whether the search may proceed:
// it enforces cancellation, the node budget (shared across workers in
// parallel runs) and the first-fit early abort.
func (s *search) visit() bool {
	if s.cancel != nil && s.cancel.Load() {
		// Deadline expired or the caller cancelled: stop the whole search
		// and let the incumbent stand (anytime contract).
		s.done = true
		s.truncated = true
		return false
	}
	if s.shared == nil {
		s.stats.NodesVisited++
		if s.stats.NodesVisited >= s.opts.MaxNodes {
			// Stop the whole search, not just this branch.
			s.done = true
			s.truncated = true
			return false
		}
		return true
	}
	// A task with a DFS index above an already-completed first-fit task can
	// no longer influence the result: its completion would lose the
	// canonical-order tie-break.
	if s.opts.FirstFit && s.shared.ffMin.Load() < int64(s.task) {
		s.done = true
		return false
	}
	if s.shared.nodes.Add(1) > int64(s.opts.MaxNodes) {
		s.done = true
		s.truncated = true
		return false
	}
	s.stats.NodesVisited++
	return true
}

// shouldPrune applies the bounding rule to a partial-solution lower bound.
// The sequential search compares against its own incumbent. Workers also
// consult the shared incumbent, with a tie rule that preserves the
// sequential result exactly: a subtree whose bound *equals* the incumbent
// cost may only be pruned when the incumbent came from a task at or before
// this one in depth-first order — an equal-cost mapping found in a later
// subtree must not suppress the canonical (first-in-DFS-order) optimum.
func (s *search) shouldPrune(lb float64) bool {
	if s.shared != nil && s.shared.bound != nil && s.shared.bound.shouldPrune(lb, s.task) {
		return true
	}
	return lb >= s.bestArea
}

func (s *search) run() {
	if s.done {
		return
	}
	if !s.visit() {
		return
	}
	cur := s.nextUncovered()
	if cur == nil {
		s.complete()
		return
	}
	// NOTE: the branch enumeration below (candidate order, conflict and
	// feasibility filters, share-before-alloc) is mirrored by the parallel
	// splitter's expand() in parallel.go; keep the two in sync.
	for _, match := range s.matchTab[cur] {
		if s.conflicts(match) {
			continue
		}
		cost, ok := s.matchCost(match)
		if !ok {
			continue
		}
		// Sharing branch: reuse an identical component in the netlist.
		if !s.opts.NoSharing {
			if existing := s.findShared(match); existing != nil {
				s.place(match, existing, 0)
				s.descend(match, "share "+match.Name, func() { s.run() })
				s.unplace(match, existing, 0)
			}
		}
		// Dedicated allocation with the bounding rule.
		if !s.opts.NoBounding && s.shouldPrune(s.bound(match)) {
			s.stats.Pruned++
			if s.cursor != nil {
				s.cursor.Children = append(s.cursor.Children, &TreeNode{
					Block:    cur.Name,
					Decision: "alloc " + match.Name,
					OpAmps:   s.opamps + match.OpAmps,
					Pruned:   true,
				})
			}
			continue
		}
		a := &alloc{match: match, sig: sigOf(match), area: cost.area, power: cost.power, cost: cost.area}
		if s.opts.Objective == MinimizePower {
			a.cost = cost.power
		}
		s.allocs = append(s.allocs, a)
		s.place(match, a, match.OpAmps)
		s.descend(match, "alloc "+match.Name, func() { s.run() })
		s.unplace(match, a, match.OpAmps)
		s.allocs = s.allocs[:len(s.allocs)-1]
	}
}

// descend wraps recursion with decision-tree tracing.
func (s *search) descend(match *patterns.Match, decision string, f func()) {
	if s.cursor == nil {
		f()
		return
	}
	node := &TreeNode{Block: match.Root.Name, Decision: decision, OpAmps: s.opamps}
	s.cursor.Children = append(s.cursor.Children, node)
	saved := s.cursor
	s.cursor = node
	f()
	s.cursor = saved
}

func (s *search) conflicts(match *patterns.Match) bool {
	for _, b := range match.Blocks {
		if s.covered[b] != nil {
			return true
		}
	}
	return false
}

func (s *search) place(match *patterns.Match, a *alloc, opamps int) {
	for _, b := range match.Blocks {
		s.covered[b] = a
		if s.blockLB != nil {
			if v := s.blockLB[b]; v < inf {
				s.remainingLB -= v
			}
		}
	}
	a.uses++
	a.placements = append(a.placements, match)
	s.opamps += opamps
	if opamps > 0 {
		s.lbArea += s.matchLB(match)
	}
}

func (s *search) unplace(match *patterns.Match, a *alloc, opamps int) {
	for _, b := range match.Blocks {
		delete(s.covered, b)
		if s.blockLB != nil {
			if v := s.blockLB[b]; v < inf {
				s.remainingLB += v
			}
		}
	}
	a.uses--
	a.placements = a.placements[:len(a.placements)-1]
	s.opamps -= opamps
	if opamps > 0 {
		s.lbArea -= s.matchLB(match)
	}
}

// findShared locates an existing allocation with the same pattern,
// parameters and input nets ("blocks in distinct signal paths can share the
// same component, if they have identical inputs, and perform similar
// operations").
func (s *search) findShared(match *patterns.Match) *alloc {
	sig := sigOf(match)
	for _, a := range s.allocs {
		if a.uses > 0 && a.sig == sig {
			return a
		}
	}
	return nil
}

// sigOf builds the sharing signature: pattern, parameters, inputs, control.
func sigOf(m *patterns.Match) string {
	var b strings.Builder
	b.WriteString(m.Name)
	b.WriteByte('|')
	b.WriteString(m.Cell.Kind.String())
	keys := make([]string, 0, len(m.Params))
	for k := range m.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%g", k, m.Params[k])
	}
	for _, in := range m.Inputs {
		fmt.Fprintf(&b, "|i%d", in.ID)
	}
	if m.Ctrl != nil {
		fmt.Fprintf(&b, "|c%d", m.Ctrl.ID)
	}
	return b.String()
}

// matchCost estimates (and caches) the area and power of a dedicated
// component for the match; infeasible specs reject the match.
func (s *search) matchCost(match *patterns.Match) (cellCost, bool) {
	sig := sigOf(match)
	if c, ok := s.costOf[sig]; ok {
		return c, c.ok
	}
	inst := estimate.CellInstance{
		Cell:    match.Cell,
		Gain:    maxGain(match),
		Inputs:  len(match.Inputs),
		LoadRes: match.Params["load"],
		PeakOut: match.Params["peak"],
	}
	est, err := estimate.EstimateCell(s.opts.Process, s.opts.System, inst)
	if err != nil {
		if !s.frozenCost {
			s.costOf[sig] = cellCost{}
		}
		if s.err == nil {
			s.err = err
		}
		return cellCost{}, false
	}
	cost := cellCost{area: est.AreaUm2, power: est.Power, ok: true}
	if n := match.Params["stages"]; n > 1 {
		cost.area *= n
		cost.power *= n
	}
	if !s.frozenCost {
		s.costOf[sig] = cost
	}
	return cost, true
}

func maxGain(m *patterns.Match) float64 {
	g := 1.0
	for k, v := range m.Params { //vase:unordered (exact max fold, commutative)
		if strings.HasPrefix(k, "gain") {
			if v < 0 {
				v = -v
			}
			if v > g {
				g = v
			}
		}
	}
	return g
}

// complete records a full mapping, keeping it when it beats the best.
func (s *search) complete() {
	s.stats.CompleteMappings++
	area, power, cost := 0.0, 0.0, 0.0
	for _, a := range s.allocs {
		area += a.area
		power += a.power
		cost += a.cost
	}
	// Performance constraints: a violating mapping is not a solution.
	if (s.opts.MaxAreaUm2 > 0 && area > s.opts.MaxAreaUm2) ||
		(s.opts.MaxPowerMW > 0 && power*1e3 > s.opts.MaxPowerMW) ||
		(s.opts.MaxOpAmps > 0 && s.opamps > s.opts.MaxOpAmps) {
		s.stats.Infeasible++
		if s.cursor != nil {
			s.cursor.Children = append(s.cursor.Children, &TreeNode{
				Decision: "complete (violates constraints)",
				OpAmps:   s.opamps,
				Complete: true,
				AreaUm2:  area,
			})
		}
		return
	}
	if s.opts.FirstFit {
		s.done = true
		if s.shared != nil {
			s.shared.offerFirstFit(s.task)
		}
	}
	if s.cursor != nil {
		s.cursor.Children = append(s.cursor.Children, &TreeNode{
			Decision: "complete",
			OpAmps:   s.opamps,
			Complete: true,
			AreaUm2:  area,
		})
	}
	if s.shared != nil && s.shared.bound != nil {
		s.shared.bound.offer(cost, s.task)
	}
	if cost < s.bestArea {
		s.bestArea = cost
		s.best = make([]*alloc, len(s.allocs))
		for i, a := range s.allocs {
			// Snapshot: allocations are mutated on backtrack.
			cp := *a
			cp.placements = append([]*patterns.Match{}, a.placements...)
			s.best[i] = &cp
		}
	}
}

// buildNetlist materializes a completed allocation list as a component
// netlist.
func (s *search) buildNetlist(allocs []*alloc) (*netlist.Netlist, error) {
	nl := netlist.New(s.m.Name)

	// Shared placements beyond the first compute the same value as the
	// defining placement: canonicalize their output nets onto it.
	canon := map[*vhif.Net]*vhif.Net{}
	for _, a := range allocs {
		for _, m := range a.placements[1:] {
			canon[m.Root.Out] = a.placements[0].Root.Out
		}
	}
	resolve := func(v *vhif.Net) *vhif.Net {
		for {
			c, ok := canon[v]
			if !ok {
				return v
			}
			v = c
		}
	}

	nets := map[*vhif.Net]*netlist.Net{}
	netFor := func(v *vhif.Net) *netlist.Net {
		if v == nil {
			return nil
		}
		v = resolve(v)
		if n, ok := nets[v]; ok {
			return n
		}
		n := nl.NewNet(v.Name)
		// Constant blocks are not mapped to components; their nets become
		// reference-source nodes.
		if v.Driver != nil && v.Driver.Kind == vhif.BConst {
			value := v.Driver.Param
			n.Const = &value
		}
		nets[v] = n
		return n
	}

	// Input ports.
	for _, g := range s.m.Graphs {
		for _, b := range g.Blocks {
			if b.Kind == vhif.BInput {
				nl.AddPort(b.Name, netlist.In, netFor(b.Out))
			}
		}
	}

	for _, a := range allocs {
		m := a.placements[0]
		var ins []*netlist.Net
		for _, in := range m.Inputs {
			ins = append(ins, netFor(in))
		}
		comp := nl.AddComponent(m.Cell, m.Root.Name, ins, netFor(m.Root.Out))
		comp.Params = map[string]float64{}
		for k, v := range m.Params { //vase:unordered (map-to-map copy)
			comp.Params[k] = v
		}
		if m.Ctrl != nil {
			comp.Ctrl = netFor(m.Ctrl)
		}
		if len(a.placements) > 1 {
			comp.Shared = true
		}
	}

	// Output ports.
	for _, g := range s.m.Graphs {
		for _, b := range g.Blocks {
			if b.Kind == vhif.BOutput {
				nl.AddPort(b.Name, netlist.Out, netFor(b.Inputs[0]))
			}
		}
	}
	for _, c := range s.m.Controls {
		if c.Net != nil {
			nl.AddPort(c.Signal, netlist.Out, netFor(c.Net))
		}
	}
	return nl, nil
}

// FormatTree renders a traced decision tree (Figure 6 style).
func FormatTree(n *TreeNode) string {
	var b strings.Builder
	var rec func(n *TreeNode, depth int)
	rec = func(n *TreeNode, depth int) {
		indent := strings.Repeat("  ", depth)
		switch {
		case n.Complete:
			fmt.Fprintf(&b, "%s* complete mapping: %d op amps (area %.0f um^2)\n", indent, n.OpAmps, n.AreaUm2)
		case n.Pruned:
			fmt.Fprintf(&b, "%s- %s @ %s: pruned by bound (%d op amps)\n", indent, n.Decision, n.Block, n.OpAmps)
		default:
			fmt.Fprintf(&b, "%s+ %s @ %s (%d op amps so far)\n", indent, n.Decision, n.Block, n.OpAmps)
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	if n != nil {
		rec(n, 0)
	}
	return b.String()
}

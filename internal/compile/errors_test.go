package compile

import (
	"strings"
	"testing"

	"vase/internal/parser"
	"vase/internal/sema"
)

// The compiler must reject non-synthesizable constructs with precise
// diagnostics rather than producing broken structures.

func TestErrControlSignalInArithmetic(t *testing.T) {
	d := parseAnalyze(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
  signal s : real;
begin
  y == a + s;
  process (a'above(1.0)) is begin
    s <= a;
  end process;
end architecture;`)
	// s is a nature signal sampled by the process: reading it as an analog
	// value is legal (sample-and-hold output). This must compile.
	if _, err := Compile(d); err != nil {
		t.Fatalf("sampled nature signal should be readable: %v", err)
	}
}

func TestErrComplexProcessControl(t *testing.T) {
	err := compileErr(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
  signal s, r : bit;
begin
  y == a;
  process (a'above(1.0)) is begin
    s <= r;
  end process;
end architecture;`)
	if !strings.Contains(err.Error(), "cannot realize the control") {
		t.Errorf("error = %v", err)
	}
}

func TestErrUnrealizableCondition(t *testing.T) {
	err := compileErr(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
  signal s, r : bit;
begin
  if (s = '1' and r = '1') use
    y == a;
  else
    y == -a;
  end use;
  process (a'above(1.0)) is begin
    s <= a'above(1.0); r <= a'above(1.0);
  end process;
end architecture;`)
	if !strings.Contains(err.Error(), "control signal") && !strings.Contains(err.Error(), "condition") {
		t.Errorf("error = %v", err)
	}
}

func TestErrCaseUseNonSignalSelector(t *testing.T) {
	err := compileErr(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
  signal s : bit;
begin
  case (s = '1') use
    when true => y == a;
    when others => y == -a;
  end case;
  process (a'above(1.0)) is begin
    s <= a'above(1.0);
  end process;
end architecture;`)
	if !strings.Contains(err.Error(), "selector") {
		t.Errorf("error = %v", err)
	}
}

func TestErrSequentialCaseInProcedural(t *testing.T) {
	err := compileErr(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  procedural is
    variable v : real;
  begin
    case a > 1.0 is
      when true => v := a;
      when others => v := -a;
    end case;
    y := v;
  end procedural;
end architecture;`)
	if !strings.Contains(err.Error(), "case statements are not synthesizable") {
		t.Errorf("error = %v", err)
	}
}

func TestErrIfBranchMissingAssignment(t *testing.T) {
	err := compileErr(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  procedural is
    variable v, w : real;
  begin
    if a > 1.0 then
      v := a;
    else
      w := a;
    end if;
    y := v + w;
  end procedural;
end architecture;`)
	if !strings.Contains(err.Error(), "before assignment") {
		t.Errorf("error = %v", err)
	}
}

func TestErrIfUseArmsDifferentTargets(t *testing.T) {
	err := compileErr(t, `
entity e is
  port (quantity a : in real; quantity y, z : out real);
end entity;
architecture arch of e is
  signal s : bit;
begin
  if (s = '1') use
    y == a;
  else
    z == a;
  end use;
  y == 2.0 * a;
  z == 3.0 * a;
  process (a'above(1.0)) is begin
    s <= a'above(1.0);
  end process;
end architecture;`)
	_ = err // over-determination surfaces as a DAE mismatch; any error is fine
}

// parseAnalyze runs the front end only.
func parseAnalyze(t *testing.T, src string) *sema.Design {
	t.Helper()
	df, err := parser.Parse("t.vhd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return d
}

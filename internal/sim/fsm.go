package sim

import (
	"fmt"
	"math"

	"vase/internal/vhif"
)

// FSMRunner interprets the event-driven part of a VHIF module directly:
// threshold crossings of continuous quantities generate events, a resumed
// FSM executes its states to completion, and the resulting signal values
// are recorded. It is the reference semantics against which the compiler's
// analog control realizations (comparators, Schmitt triggers) are checked.
type FSMRunner struct {
	fsm *vhif.FSM
	// signals holds the current value of each signal/variable (bits as
	// 0/1).
	signals map[string]float64
	// prevQ remembers the previous quantity values for crossing detection.
	prevQ map[string]float64
	// events holds the level of each 'above expression this instant.
	events map[string]bool
	// changed holds the events that fired (crossed) this instant.
	changed map[string]bool
}

// NewFSMRunner wraps one FSM for interpretation.
func NewFSMRunner(f *vhif.FSM) *FSMRunner {
	return &FSMRunner{
		fsm:     f,
		signals: map[string]float64{},
		prevQ:   map[string]float64{},
		events:  map[string]bool{},
		changed: map[string]bool{},
	}
}

// Signal returns the current value of a signal (0/1 for bits).
func (r *FSMRunner) Signal(name string) float64 { return r.signals[name] }

// SetSignal presets a signal value (initial conditions).
func (r *FSMRunner) SetSignal(name string, v float64) { r.signals[name] = v }

// Step advances the FSM given the current quantity values. It detects
// threshold crossings against the previous step, and when any sensitivity
// event fires, executes the FSM from its start state to suspension.
func (r *FSMRunner) Step(quantities map[string]float64) error {
	// Detect events on every 'above expression in the FSM.
	r.changed = map[string]bool{}
	vhifWalkEvents(r.fsm, func(ev *vhif.DEvent) {
		key := ev.String()
		cur, okCur := quantities[ev.Quantity]
		if !okCur {
			return
		}
		level := cur > ev.Threshold
		prev, seen := r.prevQ[key]
		if seen {
			prevLevel := prev > ev.Threshold
			if prevLevel != level {
				r.changed[key] = true
			}
		}
		r.prevQ[key] = cur
		r.events[key] = level
	})

	// Resume when the start state's guard (OR of events) fires.
	arcs := r.fsm.ArcsFrom(r.fsm.Start)
	resumed := false
	var entry *vhif.State
	for _, a := range arcs {
		fired, err := r.guardFired(a.Cond)
		if err != nil {
			return err
		}
		if fired {
			resumed = true
			entry = a.To
			break
		}
	}
	if !resumed {
		return nil
	}

	// Run to completion: execute state ops, follow the first arc whose
	// guard holds, until back at start.
	cur := entry
	for hops := 0; hops <= len(r.fsm.States)+2; hops++ {
		for _, op := range cur.Ops {
			v, err := r.evalD(op.Expr)
			if err != nil {
				return err
			}
			r.signals[op.Target] = v
		}
		if cur == r.fsm.Start {
			return nil
		}
		next := (*vhif.State)(nil)
		for _, a := range r.fsm.ArcsFrom(cur) {
			if a.Cond == nil {
				next = a.To
				break
			}
			v, err := r.evalD(a.Cond)
			if err != nil {
				return err
			}
			if v > 0.5 {
				next = a.To
				break
			}
		}
		if next == nil {
			return fmt.Errorf("sim: fsm %q stuck in state %q", r.fsm.Name, cur.Name)
		}
		if next == r.fsm.Start {
			return nil
		}
		cur = next
	}
	return fmt.Errorf("sim: fsm %q did not suspend (cycle without start)", r.fsm.Name)
}

// guardFired evaluates a resume guard: an event expression fires only on a
// crossing (VHDL event semantics), combined with "or".
func (r *FSMRunner) guardFired(e vhif.DExpr) (bool, error) {
	switch e := e.(type) {
	case nil:
		return false, nil
	case *vhif.DEvent:
		return r.changed[e.String()], nil
	case *vhif.DPortEvent:
		return false, nil // external port events are not driven in this run
	case *vhif.DBinary:
		if e.Op == "or" {
			x, err := r.guardFired(e.X)
			if err != nil {
				return false, err
			}
			y, err := r.guardFired(e.Y)
			if err != nil {
				return false, err
			}
			return x || y, nil
		}
	}
	v, err := r.evalD(e)
	return v > 0.5, err
}

// evalD evaluates a datapath expression over current signals and event
// levels.
func (r *FSMRunner) evalD(e vhif.DExpr) (float64, error) {
	switch e := e.(type) {
	case *vhif.DConst:
		return e.Value, nil
	case *vhif.DName:
		return r.signals[e.Name], nil
	case *vhif.DEvent:
		if r.events[e.String()] {
			return 1, nil
		}
		return 0, nil
	case *vhif.DPortEvent:
		return 0, nil
	case *vhif.DUnary:
		x, err := r.evalD(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "not":
			if x > 0.5 {
				return 0, nil
			}
			return 1, nil
		case "-":
			return -x, nil
		case "abs":
			return math.Abs(x), nil
		}
	case *vhif.DBinary:
		x, err := r.evalD(e.X)
		if err != nil {
			return 0, err
		}
		y, err := r.evalD(e.Y)
		if err != nil {
			return 0, err
		}
		b := func(v bool) float64 {
			if v {
				return 1
			}
			return 0
		}
		switch e.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			return safeDiv(x, y), nil
		case "and":
			return b(x > 0.5 && y > 0.5), nil
		case "or":
			return b(x > 0.5 || y > 0.5), nil
		case "xor":
			return b((x > 0.5) != (y > 0.5)), nil
		case "=":
			return b(x == y), nil
		case "/=":
			return b(x != y), nil
		case "<":
			return b(x < y), nil
		case "<=":
			return b(x <= y), nil
		case ">":
			return b(x > y), nil
		case ">=":
			return b(x >= y), nil
		}
	}
	return 0, fmt.Errorf("sim: cannot evaluate datapath expression %v", e)
}

// vhifWalkEvents visits every DEvent in the FSM's guards and operations.
func vhifWalkEvents(f *vhif.FSM, visit func(*vhif.DEvent)) {
	see := func(e vhif.DExpr) {
		vhif.WalkDExpr(e, func(x vhif.DExpr) {
			if ev, ok := x.(*vhif.DEvent); ok {
				visit(ev)
			}
		})
	}
	for _, a := range f.Arcs {
		see(a.Cond)
	}
	for _, s := range f.States {
		for _, op := range s.Ops {
			see(op.Expr)
		}
	}
}

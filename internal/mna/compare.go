package mna

import (
	"fmt"
	"math"
	"sort"
)

// ErrorBudget bounds the divergence SolverFast may introduce relative to
// SolverReference: every trace point must satisfy
//
//	|fast - ref| <= AbsTol + RelTol*|ref|
//
// The zero value means "use the defaults" everywhere a budget is consumed,
// so an unset Circuit.Budget is always a valid (tight) contract.
type ErrorBudget struct {
	// RelTol is the relative tolerance (default DefaultRelTol).
	RelTol float64
	// AbsTol is the absolute floor in volts (default DefaultAbsTol). It
	// also sets the fast tier's Newton convergence tolerance (AbsTol/100,
	// never looser than the exact tier's 1e-8).
	AbsTol float64
}

// Default fast-tier tolerances. Measured corpus-wide divergence sits orders
// of magnitude below these (see BENCH_mna.json); the margin absorbs
// conditioning differences across circuits the corpus has not seen.
const (
	DefaultRelTol = 1e-4
	DefaultAbsTol = 1e-6
)

// withDefaults fills zero fields with the documented defaults.
func (b ErrorBudget) withDefaults() ErrorBudget {
	if b.RelTol <= 0 {
		b.RelTol = DefaultRelTol
	}
	if b.AbsTol <= 0 {
		b.AbsTol = DefaultAbsTol
	}
	return b
}

// newtonTol is the fast tier's Newton convergence tolerance: two decades
// below the absolute budget, and never looser than the exact tier's.
func (b ErrorBudget) newtonTol() float64 {
	b = b.withDefaults()
	t := b.AbsTol / 100
	if t > newtonTol {
		t = newtonTol
	}
	return t
}

// Canonical renders the effective budget in a stable hex-exact form, for
// content-addressed cache keys: fast-tier results are deterministic and
// therefore cacheable, but only under the budget that produced them.
func (b ErrorBudget) Canonical() string {
	b = b.withDefaults()
	return fmt.Sprintf("reltol=%x abstol=%x", b.RelTol, b.AbsTol)
}

// TraceDiff summarizes a CompareTran run.
type TraceDiff struct {
	// Points is the number of compared samples (nodes x timesteps).
	Points int
	// MaxAbs / MaxRel are the worst absolute and relative divergences over
	// the directly matched points (MaxRel is |g-r|/(|r|+AbsTol), so it is
	// finite through zero crossings).
	MaxAbs, MaxRel float64
	// Skewed counts points that failed the direct comparison but matched a
	// neighboring reference sample: a discrete device (switch, comparator)
	// whose threshold crossing landed one timestep away. Skewed points are
	// excluded from MaxAbs/MaxRel.
	Skewed int
}

func (d TraceDiff) String() string {
	return fmt.Sprintf("%d points, max abs %.3g, max rel %.3g, %d skewed",
		d.Points, d.MaxAbs, d.MaxRel, d.Skewed)
}

// CompareTran checks got against ref point for point under the budget. The
// traces must have identical shape (times, truncation, node sets); a value
// outside the budget at its own sample is still accepted when it is within
// budget of the reference waveform somewhere inside one timestep — it
// matches an adjacent reference sample, or lies inside the local tube those
// samples and their branches span (refTube). A discrete device switching a
// fraction of a fixed step early
// or late produces exactly such points — a full-amplitude single-sample
// difference at the crossing, then a sub-step phase offset on the following
// slopes — and neither says anything about solver accuracy. The tube is
// one sample wide, so a shift of a full step or more still fails; every
// point the allowance accepted is counted in TraceDiff.Skewed.
func (b ErrorBudget) CompareTran(ref, got *Tran) (TraceDiff, error) {
	b = b.withDefaults()
	var d TraceDiff
	if ref == nil || got == nil {
		return d, fmt.Errorf("mna: CompareTran on nil trace")
	}
	if len(ref.Time) != len(got.Time) || ref.Truncated != got.Truncated {
		return d, fmt.Errorf("mna: trace shape mismatch: %d samples (truncated=%v) vs reference %d (truncated=%v)",
			len(got.Time), got.Truncated, len(ref.Time), ref.Truncated)
	}
	for i, t := range ref.Time {
		if got.Time[i] != t {
			return d, fmt.Errorf("mna: time axis diverges at sample %d: %g vs reference %g", i, got.Time[i], t)
		}
	}
	if len(ref.V) != len(got.V) {
		return d, fmt.Errorf("mna: node set mismatch: %d nodes vs reference %d", len(got.V), len(ref.V))
	}
	nodes := make([]int, 0, len(ref.V))
	for n := range ref.V {
		nodes = append(nodes, int(n))
	}
	sort.Ints(nodes)
	within := func(g, r float64) bool {
		return math.Abs(g-r) <= b.AbsTol+b.RelTol*math.Abs(r)
	}
	for _, ni := range nodes {
		n := Node(ni)
		rw, gw := ref.V[n], got.V[n]
		if len(rw) != len(gw) {
			return d, fmt.Errorf("mna: node %d waveform length %d vs reference %d", ni, len(gw), len(rw))
		}
		for i := range rw {
			g, r := gw[i], rw[i]
			if !within(g, r) {
				// One-sample event-skew allowance: the value matches an
				// adjacent reference sample, or lies inside the local tube
				// (refTube) — a transitional point of a discrete event the
				// two solvers resolved a fraction of a timestep apart. The
				// tube case is self-limiting: in a smooth region all its
				// bounds are within budget of r, so it forgives nothing
				// new.
				skew := (i > 0 && within(g, rw[i-1])) || (i+1 < len(rw) && within(g, rw[i+1]))
				if !skew && len(rw) > 1 {
					lo, hi := refTube(rw, i)
					skew = g >= lo-(b.AbsTol+b.RelTol*math.Abs(lo)) &&
						g <= hi+(b.AbsTol+b.RelTol*math.Abs(hi))
				}
				if skew {
					d.Skewed++
					d.Points++
					continue
				}
				return d, fmt.Errorf("mna: node %d sample %d (t=%g) outside budget: %g vs reference %g (|diff|=%.3g, budget %.3g)",
					ni, i, ref.Time[i], g, r, math.Abs(g-r), b.AbsTol+b.RelTol*math.Abs(r))
			}
			d.Points++
			abs := math.Abs(g - r)
			if abs > d.MaxAbs {
				d.MaxAbs = abs
			}
			if rel := abs / (math.Abs(r) + b.AbsTol); rel > d.MaxRel {
				d.MaxRel = rel
			}
		}
	}
	return d, nil
}

// refTube bounds the values the reference waveform can plausibly take
// within one timestep of sample i. The interval spans the adjacent samples
// plus each adjacent branch extrapolated one step toward i — quadratically
// through its next two samples, which reproduces the fixed-step
// integrator's own local trajectory to high order. An event the two tiers
// resolved a fraction of a step apart puts the transitional sample exactly
// on the opposite branch's back-extrapolation (slightly past the adjacent
// sample, where a straight between-neighbors tube truncates); a shift of a
// full step or more still lands outside. At the trace boundaries, where
// the window has no sample on one side, the reference's own endpoint slope
// is extended instead.
func refTube(rw []float64, i int) (lo, hi float64) {
	n := len(rw)
	grow := func(v float64) {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	if i > 0 {
		grow(rw[i-1])
		// Pre-event branch carried one step forward.
		switch {
		case i >= 3:
			grow(3*rw[i-1] - 3*rw[i-2] + rw[i-3])
		case i >= 2:
			grow(2*rw[i-1] - rw[i-2])
		}
	} else {
		grow(2*rw[0] - rw[1])
	}
	if i+1 < n {
		grow(rw[i+1])
		// Post-event branch carried one step backward.
		switch {
		case i+3 < n:
			grow(3*rw[i+1] - 3*rw[i+2] + rw[i+3])
		case i+2 < n:
			grow(2*rw[i+1] - rw[i+2])
		}
	} else {
		grow(2*rw[n-1] - rw[n-2])
	}
	return lo, hi
}

// CompareSolution checks a single operating point (DC) against the
// reference under the budget.
func (b ErrorBudget) CompareSolution(ref, got Solution) error {
	b = b.withDefaults()
	if len(ref) != len(got) {
		return fmt.Errorf("mna: solution dimension %d vs reference %d", len(got), len(ref))
	}
	for i := range ref {
		g, r := got[i], ref[i]
		if math.Abs(g-r) > b.AbsTol+b.RelTol*math.Abs(r) {
			return fmt.Errorf("mna: solution[%d] outside budget: %g vs reference %g (|diff|=%.3g, budget %.3g)",
				i, g, r, math.Abs(g-r), b.AbsTol+b.RelTol*math.Abs(r))
		}
	}
	return nil
}

// TranFromSamples reconstructs a transient result bound to this circuit
// from raw trace data — the rehydration path for content-addressed caches,
// which store only the sample arrays. Named-node lookup (Tran.Node) works
// on the reconstructed trace exactly as on a computed one.
func (c *Circuit) TranFromSamples(time []float64, v map[Node][]float64, truncated bool) *Tran {
	return &Tran{Time: time, V: v, Truncated: truncated, c: c}
}

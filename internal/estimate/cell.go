package estimate

import (
	"math"
	"sync"

	"vase/internal/library"
)

// SystemSpec carries the design-wide signal requirements that size every
// cell: signal bandwidth, peak swing, and per-output loading from port
// annotations.
type SystemSpec struct {
	// Bandwidth is the highest signal frequency of interest, Hz.
	Bandwidth float64
	// PeakV is the maximum signal amplitude, V.
	PeakV float64
	// GBWGuard is the ratio of closed-loop bandwidth to signal bandwidth.
	GBWGuard float64
}

// DefaultSystemSpec is an audio-range system: 20 kHz bandwidth, 1 V peak.
func DefaultSystemSpec() SystemSpec {
	return SystemSpec{Bandwidth: 20e3, PeakV: 1.0, GBWGuard: 10}
}

// IsDecisionCell reports whether the cell kind is a decision element
// (comparator-class) whose op amps may be realized as single-stage OTAs.
func IsDecisionCell(k library.CellKind) bool {
	return k == library.CellComparator || k == library.CellSchmitt
}

// CellInstance describes one mapped component for estimation.
type CellInstance struct {
	Cell *library.Cell
	// Gain is the largest absolute closed-loop gain of the instance.
	Gain float64
	// Inputs is the fan-in actually used.
	Inputs int
	// LoadRes/LoadCap describe an annotated external load on the
	// instance's output (output stages).
	LoadRes float64
	LoadCap float64
	// PeakOut is the required peak output amplitude, V (0 = system peak).
	PeakOut float64
}

// CellEstimate is the sized result for one component instance.
type CellEstimate struct {
	OpAmps  []OpAmpDesign
	AreaUm2 float64
	Power   float64
}

// cellKey identifies one estimation problem. Every field of Process,
// SystemSpec and CellInstance is a comparable value (the Cell pointer is a
// catalog singleton), so the composite is usable as a map key and two equal
// keys describe byte-identical computations.
type cellKey struct {
	p    Process
	sys  SystemSpec
	inst CellInstance
}

// cellMemo caches EstimateCell results. The branch-and-bound mapper
// re-estimates the same (process, spec, instance) triple at every tree node
// that binds the same component, and its parallel workers do so
// concurrently, so the cache is shared and lock-free on the hit path.
var cellMemo sync.Map // cellKey -> cellResult

type cellResult struct {
	est CellEstimate
	err error
}

// EstimateCell sizes the op amps of a cell instance and rolls up its area
// and power. Results are memoized: the estimator is a pure function of its
// arguments, so a repeat call returns the cached design — byte-identical,
// since it is the same computation — without re-running topology selection.
func EstimateCell(p Process, sys SystemSpec, inst CellInstance) (CellEstimate, error) {
	key := cellKey{p: p, sys: sys, inst: inst}
	if v, ok := cellMemo.Load(key); ok {
		r := v.(cellResult)
		return r.est.copied(), r.err
	}
	est, err := estimateCellUncached(p, sys, inst)
	cellMemo.Store(key, cellResult{est: est, err: err})
	return est.copied(), err
}

// copied returns the estimate with its own OpAmps backing array, so a caller
// mutating the returned designs cannot corrupt the cached entry (OpAmpDesign
// itself is a pure value type).
func (e CellEstimate) copied() CellEstimate {
	if e.OpAmps != nil {
		e.OpAmps = append([]OpAmpDesign(nil), e.OpAmps...)
	}
	return e
}

func estimateCellUncached(p Process, sys SystemSpec, inst CellInstance) (CellEstimate, error) {
	var est CellEstimate
	if sys.GBWGuard <= 0 {
		sys.GBWGuard = 10
	}
	gain := math.Abs(inst.Gain)
	if gain < 1 {
		gain = 1
	}
	peak := inst.PeakOut
	if peak == 0 {
		peak = sys.PeakV
	}

	spec := DefaultSpec()
	// Closed-loop bandwidth must cover the signal band with guard; the
	// noise gain multiplies the required unity-gain frequency.
	spec.UGF = math.Max(spec.UGF, sys.Bandwidth*sys.GBWGuard*gain)
	// Full-power bandwidth: SR >= 2*pi*f*Vpeak with the same guard.
	spec.SlewRate = math.Max(spec.SlewRate, 2*math.Pi*sys.Bandwidth*sys.GBWGuard/5*peak)
	if inst.LoadCap > 0 {
		spec.LoadCap = inst.LoadCap
	}
	if inst.LoadRes > 0 {
		spec.LoadRes = inst.LoadRes
	}
	// Decision cells tolerate moderate open-loop gain, opening the
	// single-stage OTA topology to component selection.
	if IsDecisionCell(inst.Cell.Kind) {
		spec.GainDB = 40
	}

	for i := 0; i < inst.Cell.OpAmps; i++ {
		s := spec
		if i > 0 {
			// Internal op amps see on-chip loads only.
			s.LoadRes = 0
			s.LoadCap = 2e-12
		}
		topo, d, err := SelectTopology(p, s)
		if err != nil {
			return est, err
		}
		d.Topology = topo
		est.OpAmps = append(est.OpAmps, d)
		est.AreaUm2 += d.AreaUm2
		est.Power += d.Power
	}

	// Passives. Resistor values scale with the gain spread; use a 10 kohm
	// unit resistor and gain-scaled feedback elements.
	const unitR = 10e3
	nR := inst.Cell.Resistors
	if inst.Inputs > 1 && inst.Cell.MaxInputs > 1 {
		nR += inst.Inputs - 1
	}
	for i := 0; i < nR; i++ {
		r := unitR
		if i == 0 && gain > 1 {
			r = unitR * gain // feedback resistor
		}
		est.AreaUm2 += ResistorArea(p, r)
	}
	for i := 0; i < inst.Cell.Capacitors; i++ {
		est.AreaUm2 += CapacitorArea(p, 10e-12)
	}
	// Diodes and switches: fixed small footprints.
	est.AreaUm2 += float64(inst.Cell.Diodes) * 60 * p.Overhead
	est.AreaUm2 += float64(inst.Cell.Switches) * 120 * p.Overhead
	return est, nil
}

// Package sema implements semantic analysis of VASS designs: name
// resolution, type checking, constant evaluation, and enforcement of the
// VASS synthesizability restrictions from the DATE'99 paper (static for-loop
// bounds, while-loop sampling constraints, terminal single-facet use,
// signal one-memory rule, process restrictions).
package sema

import "fmt"

// TypeKind enumerates the VASS types.
type TypeKind int

// The VASS type kinds. Quantities are TReal (nature type) or arrays thereof;
// signals may additionally be TBit or TBitVector. TBool is the type of
// conditions; TInt types for-loop indices and static constants.
const (
	TError TypeKind = iota
	TReal
	TInt
	TBool
	TBit
	TBitVector
	TRealVector
)

// Type is a VASS type, possibly with an array length.
type Type struct {
	Kind TypeKind
	Len  int // for vector kinds
}

// Convenience type values.
var (
	Real    = Type{Kind: TReal}
	Int     = Type{Kind: TInt}
	Bool    = Type{Kind: TBool}
	Bit     = Type{Kind: TBit}
	ErrType = Type{Kind: TError}
)

// String renders the type name.
func (t Type) String() string {
	switch t.Kind {
	case TReal:
		return "real"
	case TInt:
		return "integer"
	case TBool:
		return "boolean"
	case TBit:
		return "bit"
	case TBitVector:
		return fmt.Sprintf("bit_vector(%d)", t.Len)
	case TRealVector:
		return fmt.Sprintf("real_vector(%d)", t.Len)
	}
	return "<error>"
}

// IsNumeric reports whether the type participates in arithmetic.
func (t Type) IsNumeric() bool { return t.Kind == TReal || t.Kind == TInt }

// IsNature reports whether the type is a nature (analog) type, the only
// types VASS admits for quantities.
func (t Type) IsNature() bool { return t.Kind == TReal || t.Kind == TRealVector }

// IsDiscrete reports whether the type is legal for event-driven signals.
func (t Type) IsDiscrete() bool {
	return t.Kind == TBit || t.Kind == TBitVector || t.Kind == TBool
}

// Same reports structural type equality.
func (t Type) Same(u Type) bool { return t.Kind == u.Kind && t.Len == u.Len }

// Value is a compile-time constant value: a real, integer, boolean or bit.
type Value struct {
	Type Type
	Real float64
	Int  int64
	Bool bool // also carries bit values: true = '1'
}

// RealValue constructs a real constant.
func RealValue(v float64) Value { return Value{Type: Real, Real: v} }

// IntValue constructs an integer constant.
func IntValue(v int64) Value { return Value{Type: Int, Int: v} }

// BoolValue constructs a boolean constant.
func BoolValue(v bool) Value { return Value{Type: Bool, Bool: v} }

// BitValue constructs a bit constant.
func BitValue(v bool) Value { return Value{Type: Bit, Bool: v} }

// AsReal converts numeric values to float64.
func (v Value) AsReal() float64 {
	if v.Type.Kind == TInt {
		return float64(v.Int)
	}
	return v.Real
}

// String renders the constant.
func (v Value) String() string {
	switch v.Type.Kind {
	case TReal:
		return fmt.Sprintf("%g", v.Real)
	case TInt:
		return fmt.Sprintf("%d", v.Int)
	case TBool:
		return fmt.Sprintf("%t", v.Bool)
	case TBit:
		if v.Bool {
			return "'1'"
		}
		return "'0'"
	}
	return "<error>"
}

// Package absint is an abstract interpreter over VHIF: a sound static
// value-range analysis of the signal-flow graphs and the event interface.
//
// The analysis runs a Kleene fixpoint over an interval domain (with an
// affine-form refinement for the feedback seen by dynamic elements),
// iterating each graph's dataflow order until the per-net value hulls
// stabilize. Cycles pass only through state elements (integrators,
// filters, sample-and-hold stages, comparators — vhif.Graph.Validate
// rejects algebraic loops), so each pass evaluates every combinational
// block from already-computed inputs and re-estimates the state elements
// from the previous iterate:
//
//   - DAE quantities (integrators, low-pass filters) are bounded by a
//     contraction/equilibrium argument: the block's drive is decomposed
//     into an affine form a + b·s over the block's own output s; when b
//     is provably negative (the loop is damped) the state can never
//     escape the hull of its initial value and the equilibrium set
//     -a/b, which mirrors the generator's qState invariant.
//   - Sample-and-hold output is always a past input sample (or the zero
//     initial hold), so it is bounded by the hull of {0} and the input,
//     with a discrete-contraction refinement for S/H iteration loops.
//   - Event parts are branch-sensitive: comparators and Schmitt triggers
//     evaluate to a three-valued truth (constant-true, constant-false or
//     unknown) against their threshold and hysteresis band, and
//     switches/muxes propagate only the branches their control can
//     select.
//
// After MaxIter passes any still-rising bound is widened to infinity
// (termination in at most two widening steps per bound); a short
// narrowing phase then re-tightens bounds that widening overshot. Every
// transfer function over-approximates the corresponding concrete
// semantics in internal/sim — including its guarded division, clamped
// exponential and ADC full-scale clipping — so the computed hulls contain
// every value the behavioral simulator can produce for inputs inside the
// declared port ranges (unannotated inputs are unbounded).
package absint

import (
	"math"

	"vase/internal/interval"
	"vase/internal/vhif"
)

// Options tunes the fixpoint engine.
type Options struct {
	// MaxIter is the number of fixpoint passes run before widening kicks
	// in (0 = default 8). Widening guarantees termination regardless.
	MaxIter int
	// Narrow is the number of narrowing passes run after stabilization
	// (0 = default 2).
	Narrow int
}

// Result holds the analysis facts for one module.
type Result struct {
	Module *vhif.Module
	// Iterations is the total number of fixpoint passes run (including
	// widening passes, excluding narrowing).
	Iterations int
	// Widened reports whether any bound had to be widened to infinity.
	Widened bool

	nets   map[*vhif.Net]interval.Interval
	ctrl   map[*vhif.Net]interval.Tri
	byName map[string]*vhif.Net
}

// Analyze runs the analysis with default options.
func Analyze(m *vhif.Module) *Result { return AnalyzeWith(m, Options{}) }

// AnalyzeWith runs the analysis on every graph of the module.
func AnalyzeWith(m *vhif.Module, opts Options) *Result {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 8
	}
	if opts.Narrow <= 0 {
		opts.Narrow = 2
	}
	a := &analyzer{
		m:    m,
		opts: opts,
		vals: map[*vhif.Net]interval.Interval{},
		ctrl: map[*vhif.Net]interval.Tri{},
		def:  map[*vhif.Net]bool{},
	}
	for _, g := range m.Graphs {
		a.order = append(a.order, g.Topological()...)
	}
	a.run()
	r := &Result{
		Module:     m,
		Iterations: a.iterations,
		Widened:    a.widened,
		nets:       a.vals,
		ctrl:       a.ctrl,
		byName:     map[string]*vhif.Net{},
	}
	// Mirror the simulator's probe resolution: every graph net by name,
	// with output-port and control-link aliases overlaid, so an assertion
	// signal resolves to exactly the net the runtime monitors observe.
	for _, g := range m.Graphs {
		for _, n := range g.Nets {
			r.byName[n.Name] = n
		}
	}
	for _, g := range m.Graphs {
		for _, b := range g.Blocks {
			if b.Kind == vhif.BOutput && len(b.Inputs) > 0 {
				r.byName[b.Name] = b.Inputs[0]
			}
		}
	}
	for _, c := range m.Controls {
		r.byName[c.Signal] = c.Net
	}
	return r
}

// Net returns the value hull of a net.
func (r *Result) Net(n *vhif.Net) interval.Interval {
	if v, ok := r.nets[n]; ok {
		return v
	}
	return interval.Top()
}

// Ctrl returns the three-valued truth of a control net.
func (r *Result) Ctrl(n *vhif.Net) interval.Tri {
	if t, ok := r.ctrl[n]; ok {
		return t
	}
	return interval.Maybe
}

// Signal resolves a runtime probe name (net, output port or control
// signal — the same namespace the simulator's monitors observe) and
// returns its value hull; ok is false for unknown names.
func (r *Result) Signal(name string) (interval.Interval, bool) {
	n, ok := r.byName[name]
	if !ok {
		return interval.Interval{}, false
	}
	return r.Net(n), true
}

// NetOf resolves a probe name to its net.
func (r *Result) NetOf(name string) (*vhif.Net, bool) {
	n, ok := r.byName[name]
	return n, ok
}

// SignalHulls returns the value hull of every resolvable probe name — the
// full namespace runtime monitors can observe. The map is freshly
// allocated; iteration order is the caller's business.
func (r *Result) SignalHulls() map[string]interval.Interval {
	out := make(map[string]interval.Interval, len(r.byName))
	for name, n := range r.byName { //vase:unordered (map-to-map copy)
		out[name] = r.Net(n)
	}
	return out
}

// analyzer is the fixpoint engine. Nets absent from def are bottom
// (unreached by the iteration so far); after the main loop any net still
// at bottom resolves to Top / Maybe, which keeps the result sound for
// structures the iteration cannot break (e.g. comparator-only cycles).
type analyzer struct {
	m     *vhif.Module
	opts  Options
	order []*vhif.Block

	vals map[*vhif.Net]interval.Interval
	ctrl map[*vhif.Net]interval.Tri
	def  map[*vhif.Net]bool

	iterations int
	widened    bool
}

func (a *analyzer) run() {
	a.ascend()
	// Resolve bottoms: a net the iteration could not reach (cycles broken
	// only by comparators, whose transfer is bottom-strict) gets no
	// bound. Resolving to Top can raise other nets — ascend again from
	// the now fully defined state so the result is a genuine fixpoint.
	resolved := false
	for _, b := range a.order {
		if b.Out != nil && !a.def[b.Out] {
			a.set(b.Out, interval.Top(), interval.Maybe)
			resolved = true
		}
	}
	if resolved {
		a.ascend()
	}
	// Narrowing: re-run the transfer functions from the (sound) fixpoint.
	// Every recomputation from sound inputs is itself sound, so the
	// narrowed values may simply replace the widened ones.
	for i := 0; i < a.opts.Narrow; i++ {
		for _, b := range a.order {
			if out, tri, ok := a.transfer(b); ok {
				a.set(b.Out, out, tri)
			}
		}
	}
}

// ascend runs fixpoint passes with delayed widening until stable.
// Widening bounds every chain (each bound can only jump to infinity
// once); the pass cap is a defensive backstop, never the expected exit.
func (a *analyzer) ascend() {
	maxPasses := a.opts.MaxIter + 2*countNets(a.m) + 4
	for pass := 0; ; pass++ {
		changed := a.pass(pass >= a.opts.MaxIter)
		a.iterations++
		if !changed {
			break
		}
		if pass > maxPasses {
			a.forceTop()
			break
		}
	}
}

func countNets(m *vhif.Module) int {
	n := 0
	for _, g := range m.Graphs {
		n += len(g.Nets)
	}
	return n
}

func (a *analyzer) forceTop() {
	for _, b := range a.order {
		if b.Out != nil {
			a.set(b.Out, interval.Top(), interval.Maybe)
		}
	}
}

// pass runs one sweep over the dataflow order; widen applies interval
// widening to any net still changing.
func (a *analyzer) pass(widen bool) bool {
	changed := false
	for _, b := range a.order {
		out, tri, ok := a.transfer(b)
		if !ok || b.Out == nil {
			continue
		}
		old, wasDef := a.vals[b.Out]
		oldTri := a.ctrl[b.Out]
		if wasDef && widen && out != old {
			out = old.Widen(out)
			a.widened = true
		}
		if wasDef && widen && b.Out.Control && tri != oldTri {
			tri = interval.Maybe
		}
		if !wasDef || out != old || (b.Out.Control && tri != oldTri) {
			changed = true
		}
		a.set(b.Out, out, tri)
	}
	return changed
}

func (a *analyzer) set(n *vhif.Net, v interval.Interval, t interval.Tri) {
	if n == nil {
		return
	}
	if n.Control {
		a.ctrl[n] = t
		a.vals[n] = triIv(t)
	} else {
		a.vals[n] = v
	}
	a.def[n] = true
}

// triIv is the numeric image of a control truth value (controls read as
// analog values are 0/1 levels).
func triIv(t interval.Tri) interval.Interval {
	switch t {
	case interval.True:
		return interval.Point(1)
	case interval.False:
		return interval.Point(0)
	}
	return interval.Interval{Lo: 0, Hi: 1}
}

// in returns the value hull of a data input; ok=false at bottom.
func (a *analyzer) in(b *vhif.Block, i int) (interval.Interval, bool) {
	n := b.Inputs[i]
	if n == nil || !a.def[n] {
		return interval.Interval{}, false
	}
	return a.vals[n], true
}

// ctrlOf returns the three-valued truth of the block's control input.
func (a *analyzer) ctrlOf(b *vhif.Block) (interval.Tri, bool) {
	if b.Ctrl == nil || !a.def[b.Ctrl] {
		return interval.Maybe, false
	}
	if !b.Ctrl.Control {
		// An analog net used as control: the simulator thresholds at 0.5.
		v := a.vals[b.Ctrl]
		switch {
		case v.Lo > 0.5:
			return interval.True, true
		case v.Hi <= 0.5:
			return interval.False, true
		}
		return interval.Maybe, true
	}
	return a.ctrl[b.Ctrl], true
}

// transfer computes the output hull (and control truth) of one block
// from the current iterate. ok=false keeps the output at bottom.
func (a *analyzer) transfer(b *vhif.Block) (interval.Interval, interval.Tri, bool) {
	iv := func(v interval.Interval) (interval.Interval, interval.Tri, bool) {
		return v, interval.Maybe, true
	}
	bot := func() (interval.Interval, interval.Tri, bool) {
		return interval.Interval{}, interval.Maybe, false
	}
	un := func(f func(interval.Interval) interval.Interval) (interval.Interval, interval.Tri, bool) {
		x, ok := a.in(b, 0)
		if !ok {
			return bot()
		}
		return iv(f(x))
	}
	bin := func(f func(x, y interval.Interval) interval.Interval) (interval.Interval, interval.Tri, bool) {
		x, ok := a.in(b, 0)
		if !ok {
			return bot()
		}
		y, ok := a.in(b, 1)
		if !ok {
			return bot()
		}
		return iv(f(x, y))
	}

	switch b.Kind {
	case vhif.BOutput:
		return bot()
	case vhif.BInput:
		if p := a.m.Port(b.Name); p != nil && p.RangeLo <= p.RangeHi && (p.RangeLo != 0 || p.RangeHi != 0) {
			return iv(interval.Interval{Lo: p.RangeLo, Hi: p.RangeHi})
		}
		return iv(interval.Top())
	case vhif.BConst:
		if b.Out != nil && b.Out.Control {
			return interval.Interval{}, interval.FromBool(b.Param > 0.5), true
		}
		return iv(interval.Point(b.Param))
	case vhif.BGain:
		return un(func(x interval.Interval) interval.Interval {
			return x.Mul(interval.Point(b.Param))
		})
	case vhif.BAdd, vhif.BMul:
		acc := interval.Point(0)
		if b.Kind == vhif.BMul {
			acc = interval.Point(1)
		}
		for i := range b.Inputs {
			x, ok := a.in(b, i)
			if !ok {
				return bot()
			}
			if b.Kind == vhif.BAdd {
				acc = acc.Add(x)
			} else {
				acc = acc.Mul(x)
			}
		}
		return iv(acc)
	case vhif.BSub:
		return bin(interval.Interval.Sub)
	case vhif.BNeg:
		return un(interval.Interval.Neg)
	case vhif.BDiv:
		return bin(interval.Interval.Div)
	case vhif.BLog:
		return un(interval.Interval.Log)
	case vhif.BExp:
		return un(interval.Interval.Exp)
	case vhif.BSqrt:
		return un(interval.Interval.Sqrt)
	case vhif.BSin:
		return un(interval.Interval.Sin)
	case vhif.BCos:
		return un(interval.Interval.Cos)
	case vhif.BAbs:
		return un(interval.Interval.Abs)
	case vhif.BMin:
		return bin(interval.Interval.Min)
	case vhif.BMax:
		return bin(interval.Interval.Max)
	case vhif.BSign:
		return un(interval.Interval.SignHull)
	case vhif.BLimiter:
		lim := b.Param
		if lim <= 0 {
			lim = 1.5
		}
		// A limiter's output is bounded even for an unbounded input, but
		// stays bottom until the input is reached so cycle detection via
		// bottom keeps working.
		return un(func(x interval.Interval) interval.Interval {
			return x.Clamp(lim)
		})
	case vhif.BBuffer:
		return un(func(x interval.Interval) interval.Interval { return x })
	case vhif.BADC:
		bits := b.Param
		if bits <= 0 {
			bits = 8
		}
		const fullScale = 2.5
		q := fullScale / math.Exp2(bits-1)
		return un(func(x interval.Interval) interval.Interval {
			c := x.Clamp(fullScale)
			return interval.Interval{
				Lo: math.Max(-fullScale, c.Lo-q/2),
				Hi: math.Min(fullScale, c.Hi+q/2),
			}
		})
	case vhif.BDifferentiator:
		// The backward difference divides by the (statically unknown)
		// simulation step; no finite bound is sound.
		if _, ok := a.in(b, 0); !ok {
			return bot()
		}
		return iv(interval.Top())
	case vhif.BSwitch:
		x, xok := a.in(b, 0)
		t, tok := a.ctrlOf(b)
		if !tok {
			return bot()
		}
		switch t {
		case interval.False:
			return iv(interval.Point(0)) // open switch outputs 0
		case interval.True:
			if !xok {
				return bot()
			}
			return iv(x)
		}
		if !xok {
			return bot()
		}
		return iv(x.Hull(interval.Point(0)))
	case vhif.BMux:
		t, tok := a.ctrlOf(b)
		if !tok {
			return bot()
		}
		x0, ok0 := a.in(b, 0)
		x1, ok1 := a.in(b, 1)
		switch t {
		case interval.True:
			if !ok0 {
				return bot()
			}
			return iv(x0)
		case interval.False:
			if !ok1 {
				return bot()
			}
			return iv(x1)
		}
		if !ok0 || !ok1 {
			return bot()
		}
		return iv(x0.Hull(x1))
	case vhif.BComparator, vhif.BSchmitt:
		x, ok := a.in(b, 0)
		if !ok {
			return bot()
		}
		// The discrete state initializes to in(0) > threshold and can only
		// flip by leaving the hysteresis band, so a hull strictly above
		// (resp. at or below) the threshold pins the output.
		switch {
		case x.Lo > b.Param:
			return interval.Interval{}, interval.True, true
		case x.Hi <= b.Param:
			return interval.Interval{}, interval.False, true
		}
		return interval.Interval{}, interval.Maybe, true
	case vhif.BNot:
		n := b.Inputs[0]
		if n == nil || !a.def[n] {
			return bot()
		}
		if n.Control {
			return interval.Interval{}, a.ctrl[n].Not(), true
		}
		v := a.vals[n]
		switch {
		case v.Lo > 0.5:
			return interval.Interval{}, interval.False, true
		case v.Hi <= 0.5:
			return interval.Interval{}, interval.True, true
		}
		return interval.Interval{}, interval.Maybe, true
	case vhif.BIntegrator:
		return a.integratorBound(b)
	case vhif.BFilter:
		return a.filterBound(b)
	case vhif.BSampleHold:
		return a.sampleHoldBound(b)
	}
	// Unknown kind: be sound.
	return interval.Top(), interval.Maybe, true
}

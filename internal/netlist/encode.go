package netlist

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vase/internal/library"
)

// encodeHeader identifies (and versions) the netlist artifact format. Bump
// the version when the encoding changes shape: the header participates in
// decode validation, so stale on-disk cache artifacts from an older format
// fail cleanly instead of decoding wrongly.
const encodeHeader = "vase-netlist v1"

// Encode renders the netlist in a complete, deterministic text form that
// Decode reconstructs exactly: unlike Dump (a human-oriented rendering that
// omits net identities and constant levels), Encode/Decode round-trip the
// full structure — Decode(Encode(n)).Dump() == n.Dump() and estimation of
// the decoded netlist yields the identical report. This is the on-disk
// artifact format of the synthesis cache (DESIGN.md §10).
//
// Names of nets, components and ports must be whitespace-free (they are:
// every name originates from a VHIF identifier); Encode returns an error
// otherwise rather than producing an ambiguous artifact.
func (n *Netlist) Encode() (string, error) {
	var b strings.Builder
	check := func(kind, name string) error {
		if name == "" || strings.ContainsAny(name, " \t\n") {
			return fmt.Errorf("netlist: cannot encode %s name %q (empty or contains whitespace)", kind, name)
		}
		return nil
	}
	if err := check("netlist", n.Name); err != nil {
		return "", err
	}
	b.WriteString(encodeHeader + "\n")
	fmt.Fprintf(&b, "name %s\n", n.Name)
	for i, net := range n.Nets {
		if net.ID != i {
			return "", fmt.Errorf("netlist: net %q has id %d at index %d; cannot encode non-dense ids", net.Name, net.ID, i)
		}
		if err := check("net", net.Name); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "net %d %s", net.ID, net.Name)
		if net.Const != nil {
			fmt.Fprintf(&b, " const=%g", *net.Const)
		}
		b.WriteByte('\n')
	}
	for _, c := range n.Components {
		if err := check("component", c.Name); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "comp %s %s", c.Cell.Kind, c.Name)
		if c.Out != nil {
			fmt.Fprintf(&b, " out=%d", c.Out.ID)
		}
		if len(c.Inputs) > 0 {
			ids := make([]string, len(c.Inputs))
			for i, in := range c.Inputs {
				ids[i] = strconv.Itoa(in.ID)
			}
			fmt.Fprintf(&b, " in=%s", strings.Join(ids, ","))
		}
		if c.Ctrl != nil {
			fmt.Fprintf(&b, " ctrl=%d", c.Ctrl.ID)
		}
		if c.Shared {
			b.WriteString(" shared")
		}
		keys := make([]string, 0, len(c.Params))
		for k := range c.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := check("parameter", k); err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " p:%s=%g", k, c.Params[k])
		}
		b.WriteByte('\n')
	}
	for _, p := range n.Ports {
		dir := "in"
		if p.Dir == Out {
			dir = "out"
		}
		if err := check("port", p.Name); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "port %s %s %d\n", dir, p.Name, p.Net.ID)
	}
	return b.String(), nil
}

// Decode reconstructs a netlist from its Encode form.
func Decode(text string) (*Netlist, error) {
	lines := strings.Split(text, "\n")
	pos := 0
	next := func() (string, bool) {
		for pos < len(lines) {
			line := strings.TrimSpace(lines[pos])
			pos++
			if line != "" {
				return line, true
			}
		}
		return "", false
	}
	errf := func(format string, args ...any) error {
		return fmt.Errorf("netlist: decode line %d: %s", pos, fmt.Sprintf(format, args...))
	}

	line, ok := next()
	if !ok || line != encodeHeader {
		return nil, errf("missing %q header", encodeHeader)
	}
	line, ok = next()
	var name string
	if !ok || !strings.HasPrefix(line, "name ") {
		return nil, errf("expected netlist name, got %q", line)
	}
	name = strings.TrimPrefix(line, "name ")
	nl := New(name)

	netByID := func(id int) (*Net, error) {
		if id < 0 || id >= len(nl.Nets) {
			return nil, errf("net id %d out of range (have %d nets)", id, len(nl.Nets))
		}
		return nl.Nets[id], nil
	}
	for {
		line, ok = next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "net":
			if len(fields) < 3 {
				return nil, errf("malformed net line %q", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, errf("bad net id %q", fields[1])
			}
			net := nl.NewNet(fields[2])
			if net.ID != id {
				return nil, errf("net %q declared with id %d but allocated %d (ids must be dense and in order)", fields[2], id, net.ID)
			}
			for _, f := range fields[3:] {
				val, found := strings.CutPrefix(f, "const=")
				if !found {
					return nil, errf("unknown net attribute %q", f)
				}
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, errf("bad const value %q", val)
				}
				net.Const = &v
			}
		case "comp":
			if len(fields) < 3 {
				return nil, errf("malformed component line %q", line)
			}
			kind, ok := library.KindFromString(fields[1])
			if !ok {
				return nil, errf("unknown cell kind %q", fields[1])
			}
			var out *Net
			var inputs []*Net
			var ctrl *Net
			shared := false
			params := map[string]float64{}
			for _, f := range fields[3:] {
				switch {
				case f == "shared":
					shared = true
				case strings.HasPrefix(f, "out="):
					id, err := strconv.Atoi(f[len("out="):])
					if err != nil {
						return nil, errf("bad out id in %q", f)
					}
					if out, err = netByID(id); err != nil {
						return nil, err
					}
				case strings.HasPrefix(f, "in="):
					for _, s := range strings.Split(f[len("in="):], ",") {
						id, err := strconv.Atoi(s)
						if err != nil {
							return nil, errf("bad input id %q", s)
						}
						in, err := netByID(id)
						if err != nil {
							return nil, err
						}
						inputs = append(inputs, in)
					}
				case strings.HasPrefix(f, "ctrl="):
					id, err := strconv.Atoi(f[len("ctrl="):])
					if err != nil {
						return nil, errf("bad ctrl id in %q", f)
					}
					if ctrl, err = netByID(id); err != nil {
						return nil, err
					}
				case strings.HasPrefix(f, "p:"):
					kv := f[len("p:"):]
					k, v, found := strings.Cut(kv, "=")
					if !found {
						return nil, errf("malformed parameter %q", f)
					}
					val, err := strconv.ParseFloat(v, 64)
					if err != nil {
						return nil, errf("bad parameter value %q", v)
					}
					params[k] = val
				default:
					return nil, errf("unknown component attribute %q", f)
				}
			}
			c := nl.AddComponent(library.Get(kind), fields[2], inputs, out)
			c.Ctrl = ctrl
			c.Shared = shared
			c.Params = params
		case "port":
			if len(fields) != 4 {
				return nil, errf("malformed port line %q", line)
			}
			dir := In
			switch fields[1] {
			case "in":
			case "out":
				dir = Out
			default:
				return nil, errf("unknown port direction %q", fields[1])
			}
			id, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, errf("bad port net id %q", fields[3])
			}
			net, err := netByID(id)
			if err != nil {
				return nil, err
			}
			nl.AddPort(fields[2], dir, net)
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	return nl, nil
}

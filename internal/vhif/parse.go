package vhif

import (
	"fmt"
	"strconv"
	"strings"

	"vase/internal/diag"
)

// Parse reads the VHIF text format produced by Module.Dump, reconstructing
// the module. Dump and Parse round-trip: Parse(m.Dump()).Dump() == m.Dump().
func Parse(text string) (*Module, error) {
	m, err := ParseLenient(text)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseLenient reads the VHIF text format without validating structural
// invariants. Analyses that must look at deliberately broken modules (the
// linter's FSM and loop passes in particular) use it to get a module even
// when Validate would reject it.
func ParseLenient(text string) (*Module, error) {
	p := &vhifParser{lines: strings.Split(text, "\n")}
	return p.module()
}

type vhifParser struct {
	lines []string
	pos   int
}

func (p *vhifParser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (p *vhifParser) peek() (string, bool) {
	save := p.pos
	line, ok := p.next()
	p.pos = save
	return line, ok
}

func (p *vhifParser) errf(format string, args ...any) error {
	return diag.Errorf(diag.CodeVHIFParse, "vhif: line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *vhifParser) module() (*Module, error) {
	line, ok := p.next()
	if !ok || !strings.HasPrefix(line, "module ") {
		return nil, p.errf("expected 'module NAME', got %q", line)
	}
	m := &Module{Name: strings.TrimSpace(strings.TrimPrefix(line, "module "))}
	// nets maps qualified names to nets across graphs; control links refer
	// to them.
	nets := map[string]*Net{}
	for {
		line, ok := p.peek()
		if !ok {
			return m, nil
		}
		switch {
		case strings.HasPrefix(line, "port "):
			p.next()
			port, err := p.port(line)
			if err != nil {
				return nil, err
			}
			m.Ports = append(m.Ports, port)
		case strings.HasPrefix(line, "graph "):
			p.next()
			g, err := p.graph(line, nets)
			if err != nil {
				return nil, err
			}
			m.Graphs = append(m.Graphs, g)
		case strings.HasPrefix(line, "fsm "):
			p.next()
			f, err := p.fsm(line)
			if err != nil {
				return nil, err
			}
			m.FSMs = append(m.FSMs, f)
		case strings.HasPrefix(line, "control "):
			p.next()
			rest := strings.TrimPrefix(line, "control ")
			parts := strings.Split(rest, " -> ")
			if len(parts) != 2 {
				return nil, p.errf("malformed control link %q", line)
			}
			sig := strings.TrimSpace(parts[0])
			netName := strings.TrimSpace(parts[1])
			net, ok := nets[netName]
			if !ok {
				return nil, p.errf("control link to unknown net %q", netName)
			}
			net.Control = true
			m.Controls = append(m.Controls, &ControlLink{Signal: sig, Net: net})
		default:
			return nil, p.errf("unexpected line %q", line)
		}
	}
}

func (p *vhifParser) port(line string) (*Port, error) {
	// port (in|out) (quantity|signal) NAME [attrs]
	rest := strings.TrimPrefix(line, "port ")
	attrs := ""
	if i := strings.Index(rest, "["); i >= 0 {
		attrs = strings.TrimSuffix(strings.TrimSpace(rest[i+1:]), "]")
		rest = strings.TrimSpace(rest[:i])
	}
	fields := strings.Fields(rest)
	if len(fields) != 3 {
		return nil, p.errf("malformed port line %q", line)
	}
	port := &Port{Name: fields[2], Voltage: true}
	switch fields[0] {
	case "in":
	case "out":
		port.Dir = DirOut
	default:
		return nil, p.errf("port direction must be in or out, got %q", fields[0])
	}
	switch fields[1] {
	case "quantity":
	case "signal":
		port.Kind = PortSignal
	default:
		return nil, p.errf("port kind must be quantity or signal, got %q", fields[1])
	}
	for _, a := range strings.Fields(attrs) {
		key, val, hasVal := strings.Cut(a, "=")
		switch {
		case strings.HasPrefix(a, "limited@"):
			port.Limited = true
			port.LimitAt = parseF(strings.TrimPrefix(a, "limited@"))
		case a == "current":
			port.Voltage = false
		case key == "drives" && hasVal:
			port.DrivesOhms = parseF(strings.TrimSuffix(val, "ohm"))
		case key == "peak" && hasVal:
			port.PeakDrive = parseF(strings.TrimSuffix(val, "v"))
		case key == "impedance" && hasVal:
			port.Impedance = parseF(val)
		case key == "freq" && hasVal:
			port.FreqLo, port.FreqHi = parsePair(val)
		case key == "range" && hasVal:
			port.RangeLo, port.RangeHi = parsePair(val)
		default:
			return nil, p.errf("unknown port attribute %q", a)
		}
	}
	return port, nil
}

func parseF(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func parsePair(s string) (float64, float64) {
	lo, hi, _ := strings.Cut(s, ":")
	return parseF(lo), parseF(hi)
}

var kindByName = func() map[string]BlockKind {
	m := map[string]BlockKind{}
	for k := BlockKind(0); k < numBlockKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

func (p *vhifParser) graph(line string, nets map[string]*Net) (*Graph, error) {
	g := NewGraph(strings.TrimSpace(strings.TrimPrefix(line, "graph ")))
	netFor := func(name string, control bool) *Net {
		if n, ok := nets[name]; ok {
			return n
		}
		n := g.NewNet(name)
		n.Control = control
		nets[name] = n
		return n
	}
	for {
		line, ok := p.peek()
		if !ok {
			return g, nil
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return g, nil
		}
		kind, isBlock := kindByName[fields[0]]
		if !isBlock {
			return g, nil
		}
		p.next()
		if strings.Contains(fields[1], "=") {
			// A name like "out=x" would make the dumped line ambiguous.
			return nil, p.errf("invalid block name %q", fields[1])
		}
		b := &Block{ID: len(g.Blocks), Kind: kind, Name: fields[1]}
		for _, f := range fields[2:] {
			if !strings.Contains(f, "=") {
				if f == "fsm" {
					b.FromFSM = true
				}
				// Otherwise a continuation token of the input list, which
				// is re-extracted from the raw line below.
				continue
			}
			key, val, _ := strings.Cut(f, "=")
			switch key {
			case "param":
				b.Param = parseF(val)
			case "param2":
				b.Param2 = parseF(val)
			case "hyst":
				b.Hyst = parseF(val)
			case "in", "ctrl", "out":
				// Structured connections are re-extracted from the raw
				// line (input lists contain ", " which Fields splits).
			default:
				return nil, p.errf("unknown block field %q", f)
			}
		}
		// Re-extract structured fields from the raw line (input lists
		// contain ", " which confuses Fields).
		if ins, ok := extractParen(line, "in="); ok {
			for _, name := range splitList(ins) {
				n := netFor(name, false)
				b.Inputs = append(b.Inputs, n)
				n.Readers = append(n.Readers, b)
			}
		}
		if ctrl, ok := extractField(line, "ctrl="); ok {
			n := netFor(ctrl, true)
			n.Control = true // the net may pre-date this reference
			b.Ctrl = n
			n.Readers = append(n.Readers, b)
		}
		if out, ok := extractField(line, "out="); ok {
			n := netFor(out, kind.ProducesControl())
			n.Driver = b
			n.Control = n.Control || kind.ProducesControl()
			b.Out = n
		}
		g.Blocks = append(g.Blocks, b)
	}
}

// extractParen returns the parenthesized list following the key.
func extractParen(line, key string) (string, bool) {
	i := strings.Index(line, key+"(")
	if i < 0 {
		return "", false
	}
	rest := line[i+len(key)+1:]
	j := strings.Index(rest, ")")
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// extractField returns the whitespace-terminated value following the key.
func extractField(line, key string) (string, bool) {
	i := strings.Index(line, key)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(key):]
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		rest = rest[:j]
	}
	rest = strings.TrimSpace(rest)
	return rest, rest != ""
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func (p *vhifParser) fsm(line string) (*FSM, error) {
	name := strings.TrimSpace(strings.TrimPrefix(line, "fsm "))
	f := &FSM{Name: name}
	states := map[string]*State{}
	stateFor := func(n string) *State {
		if s, ok := states[n]; ok {
			return s
		}
		s := &State{ID: len(f.States), Name: n}
		f.States = append(f.States, s)
		states[n] = s
		return s
	}
	finish := func() (*FSM, error) {
		start, ok := states["start"]
		if !ok {
			return nil, p.errf("fsm %q has no start state", name)
		}
		f.Start = start
		return f, nil
	}
	var cur *State
	for {
		line, ok := p.peek()
		if !ok {
			return finish()
		}
		switch {
		case strings.HasPrefix(line, "state "):
			p.next()
			cur = stateFor(strings.TrimSpace(strings.TrimPrefix(line, "state ")))
		case strings.HasPrefix(line, "arc "):
			p.next()
			rest := strings.TrimPrefix(line, "arc ")
			cond := ""
			if i := strings.Index(rest, " when "); i >= 0 {
				cond = rest[i+6:]
				rest = rest[:i]
			}
			from, to, ok := strings.Cut(rest, " -> ")
			fromName, toName := strings.TrimSpace(from), strings.TrimSpace(to)
			if !ok || fromName == "" || toName == "" {
				return nil, p.errf("malformed arc %q", line)
			}
			arc := &Arc{From: stateFor(fromName), To: stateFor(toName)}
			if cond != "" {
				e, err := ParseDExpr(cond)
				if err != nil {
					return nil, p.errf("arc guard: %v", err)
				}
				arc.Cond = e
			}
			f.Arcs = append(f.Arcs, arc)
		case strings.Contains(line, " := ") || strings.Contains(line, " <= "):
			if cur == nil {
				return nil, p.errf("operation outside a state: %q", line)
			}
			p.next()
			op, err := parseDataOp(line)
			if err != nil {
				return nil, p.errf("operation: %v", err)
			}
			cur.Ops = append(cur.Ops, op)
		default:
			return finish()
		}
	}
}

func parseDataOp(line string) (*DataOp, error) {
	op := &DataOp{}
	var lhs, rhs string
	if l, r, ok := strings.Cut(line, " <= "); ok {
		op.SignalOp = true
		lhs, rhs = l, r
	} else if l, r, ok := strings.Cut(line, " := "); ok {
		lhs, rhs = l, r
	} else {
		return nil, diag.Errorf(diag.CodeVHIFParse, "no assignment in %q", line)
	}
	op.Target = strings.TrimSpace(lhs)
	e, err := ParseDExpr(strings.TrimSpace(rhs))
	if err != nil {
		return nil, err
	}
	op.Expr = e
	return op, nil
}

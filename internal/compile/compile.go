// Package compile translates analyzed VASS designs into VHIF, the structural
// intermediate representation of the VASE synthesis environment.
//
// The translation rules follow Section 4 of the DATE'99 paper:
//
//   - Simple simultaneous statements form a DAE set. Each set is matched
//     against its unknowns (free quantities and output ports); explicit and
//     isolatable forms yield signal-flow "solver" structures, with q'dot
//     equations realized by integrators. Alternative matchings yield
//     alternative solver topologies, all of which the synthesis tool may
//     consider (CompileAll).
//   - Simultaneous if/use and case/use statements become multiplexed signal
//     paths selected by control nets; an if/use without an else arm infers a
//     sample-and-hold (the value is held while the condition is false).
//   - Procedural statements become pure dataflow: instruction sequencing is
//     preserved through data dependencies, for-loops are unrolled (their
//     bounds are static), and while-loops are translated into the dual
//     condition-block + sample-and-hold structure of the paper's Figure 4.
//   - Process statements become FSMs with maximal intra-state concurrency
//     (statements group into a state until a data dependency forces a new
//     one), and their control behavior is materialized as comparator and
//     Schmitt-trigger blocks driving the control nets of the continuous part.
package compile

import (
	"fmt"
	"math"
	"sort"

	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/sema"
	"vase/internal/source"
	"vase/internal/vhif"
)

// DefaultHysteresis is the hysteresis margin applied to comparators inferred
// from processes, "so that repeated switchings between states are avoided"
// (paper, Section 6).
const DefaultHysteresis = 0.01

// Origins maps each VHIF block to the source span of the VASS statement it
// was compiled from. Downstream analyses (the linter's algebraic-loop pass in
// particular) use it to attach structural findings to source positions.
type Origins map[*vhif.Block]source.Span

// Compile translates the design into its primary VHIF module (the first
// feasible DAE solver topology).
func Compile(d *sema.Design) (*vhif.Module, error) {
	mods, err := CompileAll(d, 1)
	if err != nil {
		return nil, err
	}
	return mods[0], nil
}

// CompileTraced is Compile, additionally returning the block→source-span
// origin map of the primary module.
func CompileTraced(d *sema.Design) (*vhif.Module, Origins, error) {
	mods, origins, err := compileAll(d, 1)
	if err != nil {
		return nil, nil, err
	}
	return mods[0], origins[0], nil
}

// CompileAll translates the design into up to limit alternative VHIF
// modules, one per feasible DAE solver matching. limit <= 0 means all
// (bounded internally). The first module is the primary topology.
func CompileAll(d *sema.Design, limit int) ([]*vhif.Module, error) {
	mods, _, err := compileAll(d, limit)
	return mods, err
}

func compileAll(d *sema.Design, limit int) ([]*vhif.Module, []Origins, error) {
	if d.Partial {
		// A partial design came from a recovered parse: an ERROR node may
		// hide arbitrary behavior, so generated code would be wrong, not
		// merely incomplete. Analysis passes accept partial designs; code
		// generation refuses them.
		errs := &diag.List{}
		errs.Addf(diag.CodeCompile, d.File.Position(d.Arch.Span().Start),
			"design %q is partial (recovered from syntax errors); fix the source before compiling", d.Name)
		return nil, nil, errs.Err()
	}
	if limit <= 0 {
		limit = maxMatchings
	}
	matchings, unknowns, eqs, err := enumerateMatchings(d, limit)
	if err != nil {
		return nil, nil, err
	}
	var mods []*vhif.Module
	var origins []Origins
	var firstErr error
	for _, match := range matchings {
		c := newCompiler(d)
		m, err := c.compileModule(eqs, unknowns, match)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := m.Validate(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		mods = append(mods, m)
		origins = append(origins, c.origins)
		if len(mods) >= limit {
			break
		}
	}
	if len(mods) == 0 {
		if firstErr != nil {
			return nil, nil, firstErr
		}
		return nil, nil, diag.Errorf(diag.CodeNoRealization, "compile: no feasible solver topology for design %q", d.Name)
	}
	return mods, origins, nil
}

type compiler struct {
	d       *sema.Design
	m       *vhif.Module
	g       *vhif.Graph
	errs    diag.List
	rep     *diag.Reporter
	origins Origins

	// nets binds quantity canonical names to the nets carrying their value.
	nets map[string]*vhif.Net
	// ctrl binds signal canonical names to control nets.
	ctrl map[string]*vhif.Net
	// inverted caches control-net inverters.
	inverted map[*vhif.Net]*vhif.Net
	// consts holds loop-variable substitution values during unrolling.
	consts map[string]float64
	// constBlocks dedupes constant source blocks by value.
	constBlocks map[float64]*vhif.Net
	// ctrlConsts dedupes constant control-level nets.
	ctrlConsts map[bool]*vhif.Net
}

func newCompiler(d *sema.Design) *compiler {
	c := &compiler{
		d:           d,
		origins:     make(Origins),
		nets:        make(map[string]*vhif.Net),
		ctrl:        make(map[string]*vhif.Net),
		inverted:    make(map[*vhif.Net]*vhif.Net),
		consts:      make(map[string]float64),
		constBlocks: make(map[float64]*vhif.Net),
		ctrlConsts:  make(map[bool]*vhif.Net),
	}
	c.rep = diag.NewReporter(d.File, &c.errs, diag.CodeCompile)
	return c
}

func (c *compiler) errorf(sp source.Span, format string, args ...any) {
	c.rep.Errorf(sp, format, args...)
}

func (c *compiler) report(code diag.Code, sp source.Span, format string, args ...any) *diag.Diagnostic {
	return c.rep.Report(code, sp, format, args...)
}

func (c *compiler) failed() error {
	return c.errs.Err()
}

// stamp runs f and records sp as the origin of every block f adds to the
// current graph. Nested stamps keep the innermost (most specific) span.
func (c *compiler) stamp(sp source.Span, f func()) {
	before := len(c.g.Blocks)
	f()
	for _, b := range c.g.Blocks[before:] {
		if _, done := c.origins[b]; !done && sp.IsValid() {
			c.origins[b] = sp
		}
	}
}

// compileModule builds one module for the given DAE matching.
func (c *compiler) compileModule(eqs []*equation, unknowns []string, match matching) (*vhif.Module, error) {
	c.m = &vhif.Module{Name: c.d.Name}
	c.g = vhif.NewGraph("main")
	c.m.Graphs = []*vhif.Graph{c.g}

	// Composite nature types pass the front end (VASS admits them) but the
	// signal-flow compiler works on scalar nets; reject them with a clear
	// diagnostic instead of failing deep in expression translation.
	for _, q := range append(append([]*sema.Symbol{}, c.d.Quantities...), c.d.Signals...) {
		if q.Type.Kind == sema.TRealVector || q.Type.Kind == sema.TBitVector {
			c.report(diag.CodeComposite, q.Decl.Span(), "%s %q has a composite type; the compiler requires scalar objects (declare the elements individually)", q.Kind, q.Orig)
		}
	}
	if err := c.failed(); err != nil {
		return nil, err
	}

	c.declarePorts()

	// Pre-create integrators for 'dot-matched unknowns so that feedback
	// references — including 'above events in processes — resolve before
	// the defining equation is compiled.
	integs := make(map[string]*vhif.Block)
	for i := range eqs {
		if match[i].viaDot {
			c.stamp(eqs[i].stmt.SpanV, func() {
				b := c.g.AddBlock(vhif.BIntegrator, match[i].unknown, nil)
				b.Out.Name = match[i].unknown
				c.nets[match[i].unknown] = b.Out
				integs[match[i].unknown] = b
			})
		}
	}

	// Event-driven part next: its control nets feed the continuous part.
	for _, st := range c.d.Arch.Stmts {
		if p, ok := st.(*ast.Process); ok {
			c.stamp(p.SpanV, func() { c.compileProcess(p) })
		}
	}
	if err := c.failed(); err != nil {
		return nil, err
	}

	// Order the remaining definition units by data dependencies and compile.
	units := c.collectUnits(eqs, match)
	if err := c.compileUnits(units, integs); err != nil {
		return nil, err
	}
	if err := c.failed(); err != nil {
		return nil, err
	}

	c.connectOutputs()
	if err := c.failed(); err != nil {
		return nil, err
	}
	return c.m, nil
}

// declarePorts creates module ports and input blocks.
func (c *compiler) declarePorts() {
	for _, p := range c.d.Ports {
		p := p
		c.stamp(p.Decl.Span(), func() { c.declarePort(p) })
	}
}

func (c *compiler) declarePort(p *sema.Symbol) {
	{
		port := &vhif.Port{
			Name:       p.Name,
			Voltage:    p.Attr.Kind != sema.KindCurrent,
			Limited:    p.Attr.Limited,
			LimitAt:    p.Attr.LimitAt,
			DrivesOhms: p.Attr.DrivesOhms,
			PeakDrive:  p.Attr.PeakDrive,
			Impedance:  p.Attr.Impedance,
			FreqLo:     p.Attr.FreqLo,
			FreqHi:     p.Attr.FreqHi,
			RangeLo:    p.Attr.RangeLo,
			RangeHi:    p.Attr.RangeHi,
		}
		if p.Mode == ast.ModeOut {
			port.Dir = vhif.DirOut
		}
		switch p.Kind {
		case sema.SymQuantity, sema.SymTerminal:
			port.Kind = vhif.PortQuantity
			// Terminal ports expose their across quantity (t'reference) as
			// an input: VASS uses one facet per terminal.
			if p.Mode == ast.ModeIn || p.Kind == sema.SymTerminal {
				b := c.g.AddBlock(vhif.BInput, p.Name)
				b.Out.Name = p.Name
				c.nets[p.Name] = b.Out
			}
		case sema.SymSignal:
			port.Kind = vhif.PortSignal
		default:
			return // generics are not ports of the module
		}
		c.m.Ports = append(c.m.Ports, port)
	}
}

// connectOutputs drives output ports from their defining nets, inserting
// annotation-inferred interfacing stages (limiter, output buffer).
func (c *compiler) connectOutputs() {
	for _, p := range c.d.Ports {
		if p.Kind != sema.SymQuantity || p.Mode != ast.ModeOut {
			continue
		}
		p := p
		c.stamp(p.Decl.Span(), func() { c.connectOutput(p) })
	}
	c.linkSignalPorts()
}

func (c *compiler) connectOutput(p *sema.Symbol) {
	{
		net := c.nets[p.Name]
		if net == nil {
			c.errorf(p.Decl.Span(), "output quantity %q was never defined", p.Orig)
			return
		}
		if p.Attr.HasFreq && p.Attr.FreqHi > 0 {
			// Filter inference (paper Section 3): a frequency range on the
			// output port describes the wanted signal band; the synthesis
			// tool infers the filter type — low-pass when the band starts
			// at DC, band-pass otherwise.
			f := c.g.AddBlock(vhif.BFilter, p.Name+"_filter", net)
			f.Param = p.Attr.FreqHi
			f.Param2 = p.Attr.FreqLo
			net = f.Out
		}
		if p.Attr.Limited {
			lim := c.g.AddBlock(vhif.BLimiter, p.Name+"_limit", net)
			lim.Param = p.Attr.LimitAt
			if lim.Param == 0 {
				lim.Param = 1.5 // library default clip level
			}
			net = lim.Out
		}
		if p.Attr.DrivesOhms != 0 || p.Attr.Impedance != 0 {
			buf := c.g.AddBlock(vhif.BBuffer, p.Name+"_stage", net)
			buf.Param = p.Attr.DrivesOhms
			net = buf.Out
		}
		c.g.AddBlock(vhif.BOutput, p.Name, net)
	}
}

// linkSignalPorts records control links for signal output ports not already
// registered by the FSM extraction pass.
func (c *compiler) linkSignalPorts() {
	linked := map[string]bool{}
	for _, l := range c.m.Controls {
		linked[l.Signal] = true
	}
	for _, p := range c.d.Ports {
		if p.Kind == sema.SymSignal && p.Mode == ast.ModeOut && !linked[p.Name] {
			if net := c.ctrl[p.Name]; net != nil {
				c.m.Controls = append(c.m.Controls, &vhif.ControlLink{Signal: p.Name, Net: net})
			}
		}
	}
}

// constValue resolves e to a static real value, using sema's folded
// constants, loop-variable substitutions, and local evaluation of synthetic
// expressions.
func (c *compiler) constValue(e ast.Expr) (float64, bool) {
	if v := c.d.ConstOf(e); v != nil && v.Type.IsNumeric() {
		return v.AsReal(), true
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return float64(e.Value), true
	case *ast.RealLit:
		return e.Value, true
	case *ast.Paren:
		return c.constValue(e.X)
	case *ast.Name:
		if v, ok := c.consts[e.Ident.Canon]; ok {
			return v, true
		}
		if sym := c.d.Lookup(e.Ident.Canon); sym != nil && sym.Kind == sema.SymConstant && sym.Const != nil {
			return sym.Const.AsReal(), true
		}
		return 0, false
	case *ast.Unary:
		x, ok := c.constValue(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op.String() {
		case "-":
			return -x, true
		case "+":
			return x, true
		case "abs":
			return math.Abs(x), true
		}
		return 0, false
	case *ast.Binary:
		x, okx := c.constValue(e.X)
		y, oky := c.constValue(e.Y)
		if !okx || !oky {
			return 0, false
		}
		switch e.Op.String() {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		case "/":
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case "**":
			return math.Pow(x, y), true
		}
		return 0, false
	case *ast.Call:
		sym := c.d.Lookup(e.Fun.Canon)
		if sym == nil || sym.Kind != sema.SymFunction || sym.Func.Builtin == "" {
			return 0, false
		}
		var args []float64
		for _, a := range e.Args {
			v, ok := c.constValue(a)
			if !ok {
				return 0, false
			}
			args = append(args, v)
		}
		return sema.EvalBuiltin(sym.Func.Builtin, args)
	}
	return 0, false
}

// constNet returns a (deduplicated) constant source net for value v.
func (c *compiler) constNet(v float64) *vhif.Net {
	if n, ok := c.constBlocks[v]; ok {
		return n
	}
	b := c.g.AddBlock(vhif.BConst, fmt.Sprintf("c_%g", v))
	b.Param = v
	c.constBlocks[v] = b.Out
	return b.Out
}

// sortedNames returns map keys in deterministic order.
func sortedNames[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

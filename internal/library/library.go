// Package library models the CMOS analog cell library that the VASE
// architecture generator maps VHIF blocks onto. It substitutes for the
// Campisi cell library (University of Cincinnati, 1998) referenced by the
// paper: a catalog of op-amp-level circuits — amplifiers, integrators,
// log/antilog elements, comparators, Schmitt triggers, sample-and-hold
// stages, switches, multiplexers, ADCs and output stages — each with its
// op-amp budget, passive component counts, and realizable parameter ranges.
//
// Area and performance of a cell instance are computed by internal/estimate
// from the instance parameters (gains, thresholds, load) and the system
// signal specification.
package library

import "fmt"

// CellKind identifies a library circuit class.
type CellKind int

// The library cell kinds.
const (
	CellInvAmp      CellKind = iota // inverting amplifier
	CellNonInvAmp                   // non-inverting amplifier
	CellSummingAmp                  // weighted summing amplifier (n inputs)
	CellDiffAmp                     // difference amplifier
	CellPGA                         // programmable-gain amplifier (switched gain set)
	CellFollower                    // unity-gain buffer
	CellIntegrator                  // (summing) Miller integrator
	CellDiff                        // differentiator
	CellLogAmp                      // logarithmic amplifier
	CellAntilogAmp                  // anti-log (exponential) amplifier
	CellMultiplier                  // four-quadrant multiplier (log/antilog core)
	CellDivider                     // analog divider
	CellSqrt                        // square-root extractor
	CellRectifier                   // precision rectifier (abs)
	CellMinMax                      // min/max selector
	CellSineShaper                  // sine/cosine waveshaper
	CellComparator                  // zero-cross detector / comparator (with hysteresis)
	CellSchmitt                     // Schmitt trigger
	CellSampleHold                  // sample-and-hold
	CellSwitch                      // analog switch (transmission gate)
	CellMux                         // 2:1 analog multiplexer
	CellADC                         // successive-approximation ADC
	CellOutputStage                 // output drive stage with optional limiting
	CellLimiter                     // diode limiter
	CellLowPass                     // inferred active RC low-pass filter
	CellBandPass                    // inferred biquad band-pass filter
	numCellKinds
)

var cellKindNames = [...]string{
	CellInvAmp: "inv_amp", CellNonInvAmp: "noninv_amp", CellSummingAmp: "summing_amp",
	CellDiffAmp: "diff_amp", CellPGA: "pga", CellFollower: "follower",
	CellIntegrator: "integrator", CellDiff: "differentiator",
	CellLogAmp: "log_amp", CellAntilogAmp: "antilog_amp",
	CellMultiplier: "multiplier", CellDivider: "divider", CellSqrt: "sqrt",
	CellRectifier: "rectifier", CellMinMax: "minmax", CellSineShaper: "sine_shaper",
	CellComparator: "zero_cross_det", CellSchmitt: "schmitt_trigger",
	CellSampleHold: "sample_hold", CellSwitch: "analog_switch", CellMux: "mux",
	CellADC: "adc", CellOutputStage: "output_stage", CellLimiter: "limiter",
	CellLowPass: "lowpass_filter", CellBandPass: "bandpass_filter",
}

// String returns the cell kind mnemonic.
func (k CellKind) String() string {
	if k >= 0 && int(k) < len(cellKindNames) {
		return cellKindNames[k]
	}
	return fmt.Sprintf("cell(%d)", int(k))
}

// IsAmplifier reports whether the kind is counted as an amplifier in
// synthesis-result summaries.
func (k CellKind) IsAmplifier() bool {
	switch k {
	case CellInvAmp, CellNonInvAmp, CellSummingAmp, CellDiffAmp, CellPGA, CellFollower:
		return true
	}
	return false
}

// Cell is one library circuit topology.
type Cell struct {
	Kind CellKind
	Name string
	// OpAmps is the op-amp budget of the topology; the dominant area and
	// the quantity the paper's sequencing rule minimizes.
	OpAmps int
	// Passive/device counts, used by the area estimator.
	Resistors, Capacitors, Diodes, Switches int
	// MaxInputs bounds the fan-in of summing structures (0 = 1 input).
	MaxInputs int
	// GainMin/GainMax bound the realizable closed-loop |gain| of one stage.
	GainMin, GainMax float64
	// Description of the circuit (Franco-style reference topology).
	Desc string
}

// String renders "name (N op amps)".
func (c *Cell) String() string { return fmt.Sprintf("%s (%d op amps)", c.Name, c.OpAmps) }

// catalog is the cell set, indexed by kind.
var catalog = map[CellKind]*Cell{
	CellInvAmp: {
		Kind: CellInvAmp, Name: "inverting amplifier", OpAmps: 1,
		Resistors: 2, MaxInputs: 1, GainMin: 0.05, GainMax: 100,
		Desc: "single op amp with input and feedback resistors; gain -Rf/Ri",
	},
	CellNonInvAmp: {
		Kind: CellNonInvAmp, Name: "non-inverting amplifier", OpAmps: 1,
		Resistors: 2, MaxInputs: 1, GainMin: 1, GainMax: 100,
		Desc: "single op amp with feedback divider; gain 1+Rf/Ri",
	},
	CellSummingAmp: {
		Kind: CellSummingAmp, Name: "summing amplifier", OpAmps: 1,
		Resistors: 5, MaxInputs: 4, GainMin: 0.05, GainMax: 100,
		Desc: "inverting summer: out = -sum(ki*vi), one resistor per input",
	},
	CellDiffAmp: {
		Kind: CellDiffAmp, Name: "difference amplifier", OpAmps: 1,
		Resistors: 4, MaxInputs: 2, GainMin: 0.05, GainMax: 100,
		Desc: "classic four-resistor difference amplifier",
	},
	CellPGA: {
		Kind: CellPGA, Name: "programmable-gain amplifier", OpAmps: 1,
		Resistors: 4, Switches: 2, MaxInputs: 1, GainMin: 0.05, GainMax: 100,
		Desc: "inverting amplifier with a switched feedback-resistor network",
	},
	CellFollower: {
		Kind: CellFollower, Name: "voltage follower", OpAmps: 1,
		MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "unity-gain buffer for interfacing / loading isolation",
	},
	CellIntegrator: {
		Kind: CellIntegrator, Name: "integrator", OpAmps: 1,
		Resistors: 2, Capacitors: 1, MaxInputs: 4, GainMin: 0.01, GainMax: 1e6,
		Desc: "summing Miller integrator: out = -sum(1/(RiC) * integral vi)",
	},
	CellDiff: {
		Kind: CellDiff, Name: "differentiator", OpAmps: 1,
		Resistors: 2, Capacitors: 1, MaxInputs: 1, GainMin: 0.01, GainMax: 1e6,
		Desc: "RC differentiator with high-frequency roll-off",
	},
	CellLogAmp: {
		Kind: CellLogAmp, Name: "log amplifier", OpAmps: 1,
		Resistors: 1, Diodes: 2, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "transdiode log converter with temperature compensation",
	},
	CellAntilogAmp: {
		Kind: CellAntilogAmp, Name: "anti-log amplifier", OpAmps: 1,
		Resistors: 1, Diodes: 2, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "exponential converter (diode in the input branch)",
	},
	CellMultiplier: {
		Kind: CellMultiplier, Name: "four-quadrant multiplier", OpAmps: 4,
		Resistors: 8, Diodes: 4, MaxInputs: 2, GainMin: 1, GainMax: 1,
		Desc: "log-sum-antilog multiplier core with level shifting",
	},
	CellDivider: {
		Kind: CellDivider, Name: "analog divider", OpAmps: 4,
		Resistors: 8, Diodes: 4, MaxInputs: 2, GainMin: 1, GainMax: 1,
		Desc: "log-difference-antilog divider core",
	},
	CellSqrt: {
		Kind: CellSqrt, Name: "square-root extractor", OpAmps: 3,
		Resistors: 6, Diodes: 2, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "log / halve / antilog chain",
	},
	CellRectifier: {
		Kind: CellRectifier, Name: "precision rectifier", OpAmps: 2,
		Resistors: 5, Diodes: 2, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "two-op-amp absolute-value circuit",
	},
	CellMinMax: {
		Kind: CellMinMax, Name: "min/max selector", OpAmps: 2,
		Resistors: 4, Diodes: 2, MaxInputs: 2, GainMin: 1, GainMax: 1,
		Desc: "precision diode selector",
	},
	CellSineShaper: {
		Kind: CellSineShaper, Name: "sine shaper", OpAmps: 2,
		Resistors: 8, Diodes: 6, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "piecewise diode waveshaper",
	},
	CellComparator: {
		Kind: CellComparator, Name: "zero-cross detector", OpAmps: 1,
		Resistors: 2, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "open-loop comparator with small hysteresis margin",
	},
	CellSchmitt: {
		Kind: CellSchmitt, Name: "Schmitt trigger", OpAmps: 1,
		Resistors: 3, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "comparator with positive feedback setting the thresholds",
	},
	CellSampleHold: {
		Kind: CellSampleHold, Name: "sample-and-hold", OpAmps: 2,
		Resistors: 1, Capacitors: 1, Switches: 1, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "input buffer, hold capacitor, switch, output buffer",
	},
	CellSwitch: {
		Kind: CellSwitch, Name: "analog switch", OpAmps: 0,
		Switches: 1, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "CMOS transmission gate",
	},
	CellMux: {
		Kind: CellMux, Name: "analog multiplexer", OpAmps: 0,
		Switches: 2, MaxInputs: 2, GainMin: 1, GainMax: 1,
		Desc: "two transmission gates with complementary control",
	},
	CellADC: {
		Kind: CellADC, Name: "A/D converter", OpAmps: 2,
		Resistors: 4, Capacitors: 16, Switches: 16, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "successive-approximation converter with charge-redistribution DAC",
	},
	CellOutputStage: {
		Kind: CellOutputStage, Name: "output stage", OpAmps: 1,
		Resistors: 3, Diodes: 2, MaxInputs: 1, GainMin: 1, GainMax: 2,
		Desc: "low-output-impedance drive stage with optional clipping diodes",
	},
	CellLimiter: {
		Kind: CellLimiter, Name: "limiter", OpAmps: 0,
		Resistors: 1, Diodes: 2, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "back-to-back diode clamp",
	},
	CellLowPass: {
		Kind: CellLowPass, Name: "low-pass filter", OpAmps: 1,
		Resistors: 2, Capacitors: 1, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "active RC first-order low-pass (inferred from a frequency annotation)",
	},
	CellBandPass: {
		Kind: CellBandPass, Name: "band-pass filter", OpAmps: 2,
		Resistors: 5, Capacitors: 2, MaxInputs: 1, GainMin: 1, GainMax: 1,
		Desc: "biquad band-pass (inferred from a frequency annotation with a non-zero lower corner)",
	},
}

// Get returns the library cell of the given kind.
func Get(k CellKind) *Cell {
	c, ok := catalog[k]
	if !ok {
		panic(fmt.Sprintf("library: no cell of kind %v", k))
	}
	return c
}

// Catalog returns all cells ordered by kind.
func Catalog() []*Cell {
	out := make([]*Cell, 0, len(catalog))
	for k := CellKind(0); k < numCellKinds; k++ {
		if c, ok := catalog[k]; ok {
			out = append(out, c)
		}
	}
	return out
}

// GainFeasible reports whether the cell realizes the absolute gain g in a
// single stage.
func (c *Cell) GainFeasible(g float64) bool {
	if g < 0 {
		g = -g
	}
	if g == 0 {
		return true // a zero weight degenerates to no connection
	}
	return g >= c.GainMin && g <= c.GainMax
}

// Powermeter: the acquisition chain of the programmable power-meter ASIC
// (Table 1, row 2). Two line signals are sampled on zero crossings by
// inferred sample-and-hold stages and digitized by 8-bit converters; the
// example shows the mixed continuous/event behavior and the quantization of
// the outputs.
package main

import (
	"fmt"
	"log"

	"vase"
)

func main() {
	app, err := vase.Benchmark("powermeter")
	if err != nil {
		log.Fatal(err)
	}
	design, err := vase.Compile(vase.Source{Name: "powermeter.vhd", Text: app.Source})
	if err != nil {
		log.Fatal(err)
	}
	arch, err := design.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesis: %s\n", arch.Netlist.Summary())
	fmt.Printf("op amps: %d, area: %.0f um^2\n\n", arch.Netlist.OpAmpCount(), arch.Report.AreaUm2)

	// Drive with a 50 Hz line: voltage and a lagging current.
	tr, err := design.Simulate(map[string]vase.Waveform{
		"vline": vase.Sine(1.0, 50, 0),
		"iline": vase.Sine(0.8, 50, -0.6),
	}, vase.SimOptions{TStop: 60e-3, TStep: 10e-6})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("  t [ms]   vline     vout(8-bit)   iline     iout(8-bit)")
	vline := vase.Sine(1.0, 50, 0)
	iline := vase.Sine(0.8, 50, -0.6)
	for i := 0; i < len(tr.Time); i += 400 {
		t := tr.Time[i]
		fmt.Printf("  %6.2f   %+7.4f   %+7.4f      %+7.4f   %+7.4f\n",
			t*1e3, vline(t), tr.Get("vout")[i], iline(t), tr.Get("iout")[i])
	}

	// The quantization step of an 8-bit converter over +-2.5 V is ~19.5 mV:
	// outputs land on the quantization grid.
	q := 2.5 / 128
	fmt.Printf("\n8-bit quantization step: %.4f V; final vout = %.4f V (a multiple of the step)\n",
		q, tr.Final("vout"))
}

package absint

import (
	"fmt"
	"strings"

	"vase/internal/assertlang"
	"vase/internal/interval"
)

// Verdict is the static outcome for one assertion.
type Verdict int

// Static verdicts. The soundness contract against the runtime monitors
// (assertlang.Verdict) is:
//
//	Prove  ⇒ the runtime verdict is Pass or Unknown, never Fail
//	Refute ⇒ the runtime verdict is Fail or Unknown, never Pass
//
// Unknown makes no claim. The differential campaign in cmd/vasegen
// (-modes static) enforces exactly this contract at corpus scale.
const (
	Unknown Verdict = iota
	Prove
	Refute
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Prove:
		return "prove"
	case Refute:
		return "refute"
	}
	return "unknown"
}

// Property pairs an assertion with its static verdict.
type Property struct {
	Assertion *assertlang.Assertion
	Verdict   Verdict
	// Reason summarizes the range facts the verdict rests on, e.g.
	// "earph in [-1.5, 1.5]".
	Reason string
}

// Check statically evaluates one assertion against the computed hulls.
func (r *Result) Check(a *assertlang.Assertion) Property {
	return CheckWith(a, r.Signal)
}

// CheckAll statically evaluates a set of assertions.
func (r *Result) CheckAll(as []*assertlang.Assertion) []Property {
	out := make([]Property, len(as))
	for i, a := range as {
		out[i] = r.Check(a)
	}
	return out
}

// CheckWith evaluates an assertion against an arbitrary signal-hull
// environment (e.g. a cached range table instead of a live Result).
//
// The predicate is evaluated three-valuedly over the hulls. Because a
// hull covers every sample of the run, a True predicate holds at every
// sample and a False predicate fails at every sample; the verdict per
// form follows:
//
//	always     True → Prove (holds everywhere)   False → Refute (first sample fails)
//	eventually True → Prove (first sample is in any positive window)
//	           False → Refute (no sample can ever satisfy it)
//	recurrence True → Prove (no gap at all)      False → Refute (never satisfied)
func CheckWith(a *assertlang.Assertion, env func(string) (interval.Interval, bool)) Property {
	tri := a.StaticEval(env)
	p := Property{Assertion: a, Reason: reasonFor(a, env)}
	switch tri {
	case interval.True:
		p.Verdict = Prove
	case interval.False:
		p.Verdict = Refute
	default:
		p.Verdict = Unknown
	}
	return p
}

// reasonFor renders the signal hulls the verdict was decided on.
func reasonFor(a *assertlang.Assertion, env func(string) (interval.Interval, bool)) string {
	parts := make([]string, 0, len(a.Signals))
	for _, s := range a.Signals {
		v, ok := env(s)
		if !ok {
			parts = append(parts, s+" unresolved")
			continue
		}
		parts = append(parts, fmt.Sprintf("%s in [%g, %g]", s, v.Lo, v.Hi))
	}
	return strings.Join(parts, ", ")
}

package compile

import (
	"vase/internal/ast"
	"vase/internal/sema"
	"vase/internal/vhif"
)

// compileProcedural translates a procedural statement into a pure functional
// block structure. Instruction order is preserved through data dependencies;
// no state is kept between activations (except the sample-and-hold elements
// that while-loops require).
func (c *compiler) compileProcedural(st *ast.Procedural) {
	en := c.baseEnv().child()
	for _, d := range st.Decls {
		od, ok := d.(*ast.ObjectDecl)
		if !ok {
			continue
		}
		if od.Init != nil {
			for _, id := range od.Names {
				en.bind(id.Canon, c.compileExpr(en, od.Init))
			}
		}
	}
	c.compileSeq(en, st.Body)
	// Publish quantity results to the design-level nets.
	for _, q := range c.proceduralDefines(st) {
		n := en.lookup(q)
		if n == nil {
			c.errorf(st.SpanV, "quantity %q is not assigned on all paths of the procedural", q)
			continue
		}
		n.Name = q
		c.nets[q] = n
	}
}

// proceduralDefines lists the quantities assigned anywhere in the body.
func (c *compiler) proceduralDefines(st *ast.Procedural) []string {
	set := map[string]bool{}
	var walk func(ss []ast.SeqStmt)
	walk = func(ss []ast.SeqStmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ast.Assign:
				if nm, ok := unparen(s.LHS).(*ast.Name); ok {
					if sym := c.d.Lookup(nm.Ident.Canon); sym != nil && sym.Kind == sema.SymQuantity {
						set[nm.Ident.Canon] = true
					}
				}
			case *ast.IfStmt:
				walk(s.Then)
				for _, e := range s.Elifs {
					walk(e.Then)
				}
				walk(s.Else)
			case *ast.CaseStmt:
				for _, arm := range s.Arms {
					walk(arm.Seq)
				}
			case *ast.ForStmt:
				walk(s.Body)
			case *ast.WhileStmt:
				walk(s.Body)
			}
		}
	}
	walk(st.Body)
	return sortedNames(set)
}

// compileSeq compiles a sequential statement list into dataflow.
func (c *compiler) compileSeq(en *env, ss []ast.SeqStmt) {
	for _, st := range ss {
		switch st := st.(type) {
		case *ast.Assign:
			if st.SignalOp {
				c.errorf(st.SpanV, "signal assignments belong to processes, not procedurals")
				continue
			}
			nm, ok := unparen(st.LHS).(*ast.Name)
			if !ok {
				c.errorf(st.LHS.Span(), "assignment target must be a simple name")
				continue
			}
			en.bind(nm.Ident.Canon, c.compileExpr(en, st.RHS))
		case *ast.IfStmt:
			c.compileSeqIf(en, st)
		case *ast.CaseStmt:
			c.errorf(st.SpanV, "sequential case statements are not synthesizable in procedurals; use if chains")
		case *ast.ForStmt:
			c.unrollFor(en, st, func(e *env, body []ast.SeqStmt) { c.compileSeq(e, body) })
		case *ast.WhileStmt:
			c.compileWhile(en, st)
		case *ast.NullStmt:
		case *ast.ReturnStmt:
			c.errorf(st.SpanV, "return is not allowed in procedurals")
		}
	}
}

// compileSeqIf realizes a sequential if by computing both branches and
// selecting each assigned value with a multiplexer (elsif arms nest).
func (c *compiler) compileSeqIf(en *env, st *ast.IfStmt) {
	// Desugar elsif arms into nested ifs, innermost first.
	elseBody := st.Else
	for i := len(st.Elifs) - 1; i >= 0; i-- {
		inner := &ast.IfStmt{
			SpanV: st.Elifs[i].SpanV,
			Cond:  st.Elifs[i].Cond,
			Then:  st.Elifs[i].Then,
			Else:  elseBody,
		}
		elseBody = []ast.SeqStmt{inner}
	}

	ctrl := c.compileControl(en, st.Cond)
	thenEnv := en.child()
	c.compileSeq(thenEnv, st.Then)
	elseEnv := en.child()
	c.compileSeq(elseEnv, elseBody)

	assigned := map[string]bool{}
	for name := range thenEnv.vars {
		assigned[name] = true
	}
	for name := range elseEnv.vars {
		assigned[name] = true
	}
	for _, name := range sortedNames(assigned) {
		thenNet := thenEnv.lookup(name)
		elseNet := elseEnv.lookup(name)
		if thenNet == nil || elseNet == nil {
			c.errorf(st.SpanV, "%q may be used before assignment in one branch of the if", name)
			continue
		}
		if thenNet == elseNet {
			en.bind(name, thenNet)
			continue
		}
		mux := c.g.AddBlock(vhif.BMux, "", thenNet, elseNet)
		mux.SetCtrl(c.g, ctrl)
		en.bind(name, mux.Out)
	}
}

// unrollFor expands a statically bounded for loop, binding the loop variable
// as a compile-time constant for each iteration.
func (c *compiler) unrollFor(en *env, st *ast.ForStmt, run func(*env, []ast.SeqStmt)) {
	lo, okLo := c.constValue(st.Range.Lo)
	hi, okHi := c.constValue(st.Range.Hi)
	if !okLo || !okHi {
		c.errorf(st.Range.SpanV, "for-loop bounds must be static")
		return
	}
	name := st.Var.Canon
	prev, had := c.consts[name]
	defer func() {
		if had {
			c.consts[name] = prev
		} else {
			delete(c.consts, name)
		}
	}()
	step := 1
	from, to := int(lo), int(hi)
	if st.Range.Down {
		step = -1
	}
	for i := from; (step > 0 && i <= to) || (step < 0 && i >= to); i += step {
		c.consts[name] = float64(i)
		run(en, st.Body)
	}
}

// compileWhile translates a while loop into the sampling structure of the
// paper's Figure 4. For each loop-carried value:
//
//   - one condition block evaluates the conditional on the entry values
//     (icontr, the filled block of Figure 4a): when false the loop is never
//     entered and the entry value bypasses the structure;
//   - S/H1 trails the loop body's output with one sample of delay, so the
//     body iterates once per sampling interval;
//   - a routing multiplexer (sw1/sw2 of Figure 4b) feeds the body from the
//     entry value when the loop restarts and from S/H1 while the second
//     condition block (contr, on the body's results) holds;
//   - S/H2 latches S/H1's settled value when the condition turns false
//     (sw3) and holds it while the loop body re-executes.
func (c *compiler) compileWhile(en *env, st *ast.WhileStmt) {
	carried := c.whileCarried(st)
	if len(carried) == 0 {
		c.errorf(st.SpanV, "while loop body assigns nothing; it cannot terminate")
		return
	}

	// Condition block 1: the conditional on the entry values.
	icontr := c.compileControl(en, st.Cond)
	track := c.constControl(true)

	// S/H1 per carried value: a one-sample delay trailing the body output
	// (input patched after the body compiles).
	sh1 := map[string]*vhif.Block{}
	muxIter := map[string]*vhif.Block{}
	entryNet := map[string]*vhif.Net{}
	bodyEnv := en.child()
	for _, v := range carried {
		entry := en.lookup(v)
		if entry == nil {
			c.errorf(st.SpanV, "%q enters the while loop before being assigned", v)
			return
		}
		entryNet[v] = entry
		b := c.g.AddBlock(vhif.BSampleHold, v+"_sh1", entry)
		b.SetCtrl(c.g, track)
		sh1[v] = b
		// Iteration routing: the fed-back S/H1 value while the loop
		// condition holds on the body results, the entry value otherwise
		// (control patched to contr below).
		mux := c.g.AddBlock(vhif.BMux, v+"_in", b.Out, entry)
		muxIter[v] = mux
		bodyEnv.bind(v, mux.Out)
	}

	c.compileSeq(bodyEnv, st.Body)

	// Condition block 2: the conditional on the body results.
	contr := c.compileControl(bodyEnv, st.Cond)
	notContr := c.invertCtrl(contr)

	for _, v := range carried {
		out := bodyEnv.lookup(v)
		b := sh1[v]
		// Patch S/H1 to trail the body output.
		old := b.Inputs[0]
		b.Inputs[0] = out
		removeReader(old, b)
		out.Readers = append(out.Readers, b)
		muxIter[v].SetCtrl(c.g, contr)
		// S/H2 latches the settled value when the condition turns false.
		sh2 := c.g.AddBlock(vhif.BSampleHold, v+"_sh2", b.Out)
		sh2.SetCtrl(c.g, notContr)
		// Bypass: when the loop is never entered (icontr false), the entry
		// value is the result.
		bypass := c.g.AddBlock(vhif.BMux, v+"_out", sh2.Out, entryNet[v])
		bypass.SetCtrl(c.g, icontr)
		en.bind(v, bypass.Out)
	}
}

// whileCarried returns the loop-carried variables: names assigned in the
// body, sorted.
func (c *compiler) whileCarried(st *ast.WhileStmt) []string {
	set := map[string]bool{}
	var walk func(ss []ast.SeqStmt)
	walk = func(ss []ast.SeqStmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ast.Assign:
				if nm, ok := unparen(s.LHS).(*ast.Name); ok {
					set[nm.Ident.Canon] = true
				}
			case *ast.IfStmt:
				walk(s.Then)
				for _, e := range s.Elifs {
					walk(e.Then)
				}
				walk(s.Else)
			case *ast.ForStmt:
				walk(s.Body)
			case *ast.WhileStmt:
				walk(s.Body)
			}
		}
	}
	walk(st.Body)
	return sortedNames(set)
}

func removeReader(n *vhif.Net, b *vhif.Block) {
	if n == nil {
		return
	}
	for i, r := range n.Readers {
		if r == b {
			n.Readers = append(n.Readers[:i], n.Readers[i+1:]...)
			return
		}
	}
}

package lint

import (
	"strings"

	"vase/internal/absint"
	"vase/internal/assertlang"
	"vase/internal/diag"
	"vase/internal/interval"
	"vase/internal/source"
	"vase/internal/vhif"
)

// The range-driven analyzers (VASS058x) share one abstract interpretation
// of the compiled module: a sound per-net value hull plus three-valued
// control truths (internal/absint). Findings are calibrated to the
// analysis being an over-approximation — a pass fires only on facts the
// hulls actually prove, never on mere imprecision, so an unbounded (Top)
// hull silences every 058x check that consults it.

// rangesOf lazily computes (and caches) the abstract interpretation of the
// unit's module.
func (u *Unit) rangesOf() *absint.Result {
	if u.Module == nil {
		return nil
	}
	if u.ranges == nil {
		u.ranges = absint.Analyze(u.Module)
	}
	return u.ranges
}

// assertStaticPass statically evaluates every "-- assert:" pragma against
// the value hulls: a refuted assertion fails on every run that reaches its
// signals (VASS0581), and an assertion that decides without observing any
// signal — a tautology, a contradiction, or a probe of a non-existent
// signal — never checks anything (VASS0582).
var assertStaticPass = &Pass{
	Name: "assertstatic",
	Doc:  "statically violated or vacuous assertion pragmas",
	Run:  runAssertStatic,
}

// pragmaAt holds one parsed assertion pragma and its source span.
type pragmaAt struct {
	a    *assertlang.Assertion
	span source.Span
}

// pragmas extracts the unit's assertion pragmas with their spans. Unparsable
// pragmas are skipped here: the front end reports those.
func (u *Unit) pragmas() []pragmaAt {
	if u.File == nil {
		return nil
	}
	var out []pragmaAt
	off := 0
	for _, line := range strings.Split(u.File.Text(), "\n") {
		idx := strings.Index(line, assertlang.PragmaPrefix)
		if idx >= 0 {
			spec := strings.TrimSpace(line[idx+len(assertlang.PragmaPrefix):])
			if a, err := assertlang.Parse(spec); err == nil {
				sp := source.NewSpan(source.Pos(off+idx), source.Pos(off+len(line)))
				out = append(out, pragmaAt{a: a, span: sp})
			}
		}
		off += len(line) + 1
	}
	return out
}

func runAssertStatic(u *Unit) {
	r := u.rangesOf()
	if r == nil {
		return
	}
	for _, p := range u.pragmas() {
		prop := r.Check(p.a)
		if vacuousReason(r, p.a) != "" {
			u.Report(diag.CodeAssertVacuous, p.span,
				"assertion %q is vacuous: %s", p.a.Text, vacuousReason(r, p.a)).
				WithFix("probe a signal the design drives, or drop the assertion")
			continue
		}
		if prop.Verdict == absint.Refute {
			u.Report(diag.CodeAssertViolated, p.span,
				"assertion %q is statically violated: %s", p.a.Text, prop.Reason).
				WithFix("the property fails on every run; fix the design or the bound")
		}
	}
}

// vacuousReason reports why an assertion cannot check anything: a signal
// that resolves to no net, or a predicate that decides with every signal
// left unconstrained (a tautology or contradiction over the hulls).
func vacuousReason(r *absint.Result, a *assertlang.Assertion) string {
	for _, s := range a.Signals {
		if _, ok := r.NetOf(s); !ok {
			return "signal " + s + " resolves to no net, so a monitor could never decide it"
		}
	}
	top := func(string) (interval.Interval, bool) { return interval.Top(), true }
	switch a.StaticEval(top) {
	case interval.True:
		return "the predicate is a tautology: it holds for arbitrary signal values"
	case interval.False:
		return "the predicate is a contradiction: it fails for arbitrary signal values"
	}
	return ""
}

// deadBranchPass reports muxes and switches whose control the analysis
// proves constant: the unselected branch can never be observed, which
// usually means a comparator threshold sits outside its input's range.
var deadBranchPass = &Pass{
	Name: "deadbranch",
	Doc:  "mux/switch branches a statically-constant control can never select",
	Run:  runDeadBranch,
}

func runDeadBranch(u *Unit) {
	r := u.rangesOf()
	if r == nil {
		return
	}
	for _, g := range u.Module.Graphs {
		for _, b := range g.Blocks {
			if b.Ctrl == nil {
				continue
			}
			t := r.Ctrl(b.Ctrl)
			if t == interval.Maybe {
				continue
			}
			switch b.Kind {
			case vhif.BMux:
				dead := "second"
				if t == interval.False {
					dead = "first"
				}
				u.Report(diag.CodeDeadBranch, u.OriginOf(b),
					"control %q of mux %q is always %s: the %s input is never selected",
					b.Ctrl.Name, b.Name, t, dead).
					WithFix("check the comparator threshold against the declared input ranges")
			case vhif.BSwitch:
				state := "closed: it passes its input unconditionally"
				if t == interval.False {
					state = "open: its output is the constant 0"
				}
				u.Report(diag.CodeDeadBranch, u.OriginOf(b),
					"control %q of switch %q is always %s", b.Ctrl.Name, b.Name, state).
					WithFix("check the comparator threshold against the declared input ranges")
			}
		}
	}
}

// deadNetPass reports driven nets that can never influence an output or a
// control interface — either because nothing reads them, or because every
// path to an output runs through a branch the control analysis proved
// unreachable. Only the frontier net of a dead region is reported (the one
// a live block ignores); its upstream cone follows from it.
var deadNetPass = &Pass{
	Name: "deadnet",
	Doc:  "nets no output can observe, including via statically-dead branches",
	Run:  runDeadNet,
}

func runDeadNet(u *Unit) {
	r := u.rangesOf()
	if r == nil {
		return
	}
	ctrlNets := map[*vhif.Net]bool{}
	for _, c := range u.Module.Controls {
		ctrlNets[c.Net] = true
	}
	for _, g := range u.Module.Graphs {
		live := liveNets(g, r, ctrlNets)
		for _, n := range g.Nets {
			if live[n] || n.Driver == nil || ctrlNets[n] {
				continue
			}
			// Input ports are the unused pass's business, not dead-branch
			// fallout; FSM-sampled signals live on the event side, where the
			// write-only-signal pass already reports them.
			if n.Driver.Kind == vhif.BInput || n.Driver.FromFSM {
				continue
			}
			if !deadFrontier(n, live) {
				continue
			}
			u.Report(diag.CodeDeadNet, u.OriginOf(n.Driver),
				"net %q is dead: no output or control can observe it", n.Name).
				WithFix("remove the computation or reconnect it to an output")
		}
	}
}

// liveNets walks backward from the graph's observation points (output
// blocks and control-link nets) through each block's inputs, pruning the
// branches a constant control can never select.
func liveNets(g *vhif.Graph, r *absint.Result, ctrlNets map[*vhif.Net]bool) map[*vhif.Net]bool {
	live := map[*vhif.Net]bool{}
	var visit func(n *vhif.Net)
	visitBlock := func(b *vhif.Block) {
		ins := b.Inputs
		switch b.Kind {
		case vhif.BMux:
			switch r.Ctrl(b.Ctrl) {
			case interval.True:
				ins = b.Inputs[:1]
			case interval.False:
				ins = b.Inputs[1:2]
			}
		case vhif.BSwitch:
			if r.Ctrl(b.Ctrl) == interval.False {
				ins = nil // open switch: output is 0, input unsampled
			}
		}
		for _, in := range ins {
			visit(in)
		}
		if b.Ctrl != nil {
			visit(b.Ctrl)
		}
	}
	visit = func(n *vhif.Net) {
		if n == nil || live[n] {
			return
		}
		live[n] = true
		if n.Driver != nil {
			visitBlock(n.Driver)
		}
	}
	for _, b := range g.Blocks {
		if b.Kind == vhif.BOutput {
			visitBlock(b)
		}
	}
	for _, n := range g.Nets {
		if ctrlNets[n] {
			visit(n)
		}
	}
	return live
}

// deadFrontier reports whether the dead net directly borders the live
// region: some live block reads it (a pruned branch input), or nothing
// reads it at all.
func deadFrontier(n *vhif.Net, live map[*vhif.Net]bool) bool {
	if len(n.Readers) == 0 {
		return true
	}
	for _, rd := range n.Readers {
		if rd.Kind == vhif.BOutput || (rd.Out != nil && live[rd.Out]) {
			return true
		}
	}
	return false
}

// opAmpSwing is the guaranteed output swing (±V) of the library's op-amp
// cells on the ±5 V supply — the same constant the circuit-level
// realization clips at (internal/mna). adcFullScale mirrors the simulator's
// converter model.
const (
	opAmpSwing   = 4.0
	adcFullScale = 2.5
)

// saturationPass compares proved value hulls against the headroom of the
// physical cell interfaces they drive: voltage output ports must fit the
// op-amp output swing, and ADC inputs must fit the converter full scale.
// Only these carry a voltage dimension by construction — internal nets can
// be rates or scaled intermediates, and an unbounded hull means the
// analysis knows nothing, not that the design clips — so the pass fires
// only on finite hulls at dimensioned interfaces.
var saturationPass = &Pass{
	Name: "saturation",
	Doc:  "voltage ports and ADC inputs whose range exceeds the cell headroom",
	Run:  runSaturation,
}

func runSaturation(u *Unit) {
	r := u.rangesOf()
	if r == nil {
		return
	}
	for _, p := range u.Module.Ports {
		if p.Dir != vhif.DirOut || p.Kind != vhif.PortQuantity || !p.Voltage {
			continue
		}
		v, ok := r.Signal(p.Name)
		if !ok || !v.Bounded() || v.MaxAbs() <= opAmpSwing {
			continue
		}
		sp := source.NewSpan(source.NoPos, source.NoPos)
		if n, ok := r.NetOf(p.Name); ok && n.Driver != nil {
			sp = u.OriginOf(n.Driver)
		}
		u.Report(diag.CodeSaturation, sp,
			"output port %q spans [%g, %g], beyond the ±%g V op-amp output swing: the output stage will saturate",
			p.Name, v.Lo, v.Hi, opAmpSwing).
			WithFix("rescale the signal chain or add a limiter ahead of the output stage")
	}
	for _, g := range u.Module.Graphs {
		for _, b := range g.Blocks {
			if b.Kind != vhif.BADC || len(b.Inputs) == 0 || b.Inputs[0] == nil {
				continue
			}
			iv := r.Net(b.Inputs[0])
			if iv.Bounded() && iv.MaxAbs() > adcFullScale {
				u.Report(diag.CodeSaturation, u.OriginOf(b),
					"ADC %q input spans [%g, %g], beyond the ±%g V full scale: conversions will clip",
					b.Name, iv.Lo, iv.Hi, adcFullScale).
					WithFix("attenuate the input or widen the converter's full-scale range")
			}
		}
	}
}

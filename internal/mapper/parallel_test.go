// Equivalence layer for the parallel branch-and-bound: for every corpus
// design and every ablation combination, a parallel run must return exactly
// the mapping the sequential search returns — identical netlist bytes, cost
// and component mix. This is the contract that lets Options.Workers default
// to GOMAXPROCS without changing any synthesis result.
package mapper_test

import (
	"testing"

	"vase/internal/compile"
	"vase/internal/corpus"
	"vase/internal/mapper"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/vhif"
)

// compileVASS compiles a VASS source to its VHIF module.
func compileVASS(t testing.TB, name, src string) *vhif.Module {
	t.Helper()
	df, err := parser.Parse(name+".vhd", src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	m, err := compile.Compile(d)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	return m
}

type namedModule struct {
	key string
	m   *vhif.Module
}

// corpusModules compiles every corpus design: the paper's five benchmark
// applications plus all extra designs.
func corpusModules(t testing.TB) []namedModule {
	t.Helper()
	var out []namedModule
	for _, app := range corpus.Applications() {
		out = append(out, namedModule{app.Key, compileVASS(t, app.Key, app.Source)})
	}
	for _, app := range corpus.Extras() {
		out = append(out, namedModule{app.Key, compileVASS(t, app.Key, app.Source)})
	}
	return out
}

// ablations enumerates the option combinations whose parallel runs must
// reproduce the sequential mapping exactly. StrongBound is combined with
// NoSharing (its admissibility condition): with sharing enabled the bound
// is a heuristic and only determinism, not sequential equality, is
// guaranteed (see TestParallelStrongBoundSharingDeterministic).
var ablations = []struct {
	name string
	mut  func(*mapper.Options)
}{
	{"default", func(o *mapper.Options) {}},
	{"firstfit", func(o *mapper.Options) { o.FirstFit = true }},
	{"nosharing", func(o *mapper.Options) { o.NoSharing = true }},
	{"firstfit-nosharing", func(o *mapper.Options) { o.FirstFit = true; o.NoSharing = true }},
	{"strongbound", func(o *mapper.Options) { o.StrongBound = true; o.NoSharing = true }},
	{"nosequencing", func(o *mapper.Options) { o.NoSequencing = true }},
	{"power", func(o *mapper.Options) { o.Objective = mapper.MinimizePower }},
	{"power-nosharing", func(o *mapper.Options) { o.Objective = mapper.MinimizePower; o.NoSharing = true }},
	{"power-strongbound", func(o *mapper.Options) {
		o.Objective = mapper.MinimizePower
		o.StrongBound = true
		o.NoSharing = true
	}},
	{"power-firstfit", func(o *mapper.Options) { o.Objective = mapper.MinimizePower; o.FirstFit = true }},
}

// assertSameMapping compares two synthesis results for byte-identical
// netlists and matching cost reports.
func assertSameMapping(t *testing.T, want, got *mapper.Result) {
	t.Helper()
	if w, g := want.Netlist.Dump(), got.Netlist.Dump(); w != g {
		t.Fatalf("netlists differ\n--- sequential ---\n%s\n--- parallel ---\n%s", w, g)
	}
	if w, g := want.Netlist.Summary(), got.Netlist.Summary(); w != g {
		t.Errorf("component mix differs: sequential %q, parallel %q", w, g)
	}
	if w, g := want.Netlist.OpAmpCount(), got.Netlist.OpAmpCount(); w != g {
		t.Errorf("op amp count differs: sequential %d, parallel %d", w, g)
	}
	if w, g := want.Report.AreaUm2, got.Report.AreaUm2; w != g {
		t.Errorf("area differs: sequential %g, parallel %g", w, g)
	}
	if w, g := want.Report.PowerMW, got.Report.PowerMW; w != g {
		t.Errorf("power differs: sequential %g, parallel %g", w, g)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	mods := corpusModules(t)
	workerCounts := []int{2, 4, 8}
	if testing.Short() {
		workerCounts = []int{4}
	}
	for _, nm := range mods {
		for _, ab := range ablations {
			seqOpts := mapper.DefaultOptions()
			seqOpts.Workers = 1
			ab.mut(&seqOpts)
			seq, seqErr := mapper.Synthesize(nm.m, seqOpts)
			for _, workers := range workerCounts {
				t.Run(nm.key+"/"+ab.name+"/workers="+itoa(workers), func(t *testing.T) {
					parOpts := seqOpts
					parOpts.Workers = workers
					par, parErr := mapper.Synthesize(nm.m, parOpts)
					if (seqErr == nil) != (parErr == nil) {
						t.Fatalf("feasibility differs: sequential err=%v, parallel err=%v", seqErr, parErr)
					}
					if seqErr != nil {
						return
					}
					assertSameMapping(t, seq, par)
				})
			}
		}
	}
}

// TestParallelDeterministic runs the same parallel configuration twice and
// demands bit-identical outcomes: scheduling must never leak into results.
func TestParallelDeterministic(t *testing.T) {
	mods := corpusModules(t)
	for _, nm := range mods {
		opts := mapper.DefaultOptions()
		opts.Workers = 8
		a, errA := mapper.Synthesize(nm.m, opts)
		b, errB := mapper.Synthesize(nm.m, opts)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: feasibility flapped: %v vs %v", nm.key, errA, errB)
		}
		if errA != nil {
			continue
		}
		assertSameMapping(t, a, b)
	}
}

// TestParallelStrongBoundSharingDeterministic covers the one inadmissible
// configuration (StrongBound with sharing enabled): cross-task incumbent
// sharing is disabled there, so parallel runs are deterministic, but they
// may legitimately settle on a different equal-quality mapping than the
// sequential heuristic — only determinism and validity are asserted.
func TestParallelStrongBoundSharingDeterministic(t *testing.T) {
	for _, nm := range corpusModules(t) {
		opts := mapper.DefaultOptions()
		opts.Workers = 4
		opts.StrongBound = true // sharing stays enabled: inadmissible bound
		a, errA := mapper.Synthesize(nm.m, opts)
		b, errB := mapper.Synthesize(nm.m, opts)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: feasibility flapped: %v vs %v", nm.key, errA, errB)
		}
		if errA != nil {
			continue
		}
		assertSameMapping(t, a, b)
	}
}

// TestParallelStatsSane checks the aggregated search-effort accounting:
// parallel node counts stay within the full-enumeration upper bound and
// the decomposition is reported.
func TestParallelStatsSane(t *testing.T) {
	for _, nm := range corpusModules(t) {
		unbounded := mapper.DefaultOptions()
		unbounded.Workers = 1
		unbounded.NoBounding = true
		full, err := mapper.Synthesize(nm.m, unbounded)
		if err != nil {
			continue
		}
		opts := mapper.DefaultOptions()
		opts.Workers = 4
		par, err := mapper.Synthesize(nm.m, opts)
		if err != nil {
			t.Fatalf("%s: %v", nm.key, err)
		}
		st := par.Stats
		if st.Workers != 4 {
			t.Errorf("%s: Stats.Workers = %d, want 4", nm.key, st.Workers)
		}
		if st.Tasks < 1 {
			t.Errorf("%s: Stats.Tasks = %d, want >= 1", nm.key, st.Tasks)
		}
		if st.NodesVisited <= 0 {
			t.Errorf("%s: NodesVisited = %d, want > 0", nm.key, st.NodesVisited)
		}
		if st.CompleteMappings < 1 {
			t.Errorf("%s: CompleteMappings = %d, want >= 1", nm.key, st.CompleteMappings)
		}
		if st.NodesVisited > full.Stats.NodesVisited {
			t.Errorf("%s: parallel visited %d nodes, above the full-enumeration bound %d",
				nm.key, st.NodesVisited, full.Stats.NodesVisited)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

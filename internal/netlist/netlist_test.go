package netlist

import (
	"strings"
	"testing"

	"vase/internal/estimate"
	"vase/internal/library"
)

// buildSimple constructs in -> inv_amp -> integrator -> out with a
// comparator side path.
func buildSimple() *Netlist {
	nl := New("simple")
	in := nl.NewNet("in")
	mid := nl.NewNet("mid")
	out := nl.NewNet("out")
	ctl := nl.NewNet("ctl")
	nl.AddPort("in", In, in)
	amp := nl.AddComponent(library.Get(library.CellInvAmp), "amp", []*Net{in}, mid)
	amp.SetParam("gain", -3)
	integ := nl.AddComponent(library.Get(library.CellIntegrator), "integ", []*Net{mid}, out)
	integ.SetParam("gain0", 1)
	cmp := nl.AddComponent(library.Get(library.CellComparator), "cmp", []*Net{out}, ctl)
	cmp.SetParam("threshold", 0.5)
	nl.AddPort("out", Out, out)
	return nl
}

func TestOpAmpCount(t *testing.T) {
	nl := buildSimple()
	if n := nl.OpAmpCount(); n != 3 {
		t.Errorf("op amps = %d, want 3", n)
	}
}

func TestCountKind(t *testing.T) {
	nl := buildSimple()
	if nl.CountKind(library.CellInvAmp) != 1 || nl.CountKind(library.CellIntegrator) != 1 {
		t.Error("kind counts wrong")
	}
	if nl.CountKind(library.CellADC) != 0 {
		t.Error("phantom ADC")
	}
}

func TestSummaryFormat(t *testing.T) {
	nl := buildSimple()
	s := nl.Summary()
	for _, want := range []string{"1 amplif.", "1 integ.", "1 zero-cross det."} {
		if !strings.Contains(s, want) {
			t.Errorf("summary = %q, missing %q", s, want)
		}
	}
}

func TestSummaryOmitsInterfacing(t *testing.T) {
	nl := New("x")
	in := nl.NewNet("in")
	out := nl.NewNet("out")
	nl.AddComponent(library.Get(library.CellOutputStage), "stage", []*Net{in}, out)
	if s := nl.Summary(); strings.Contains(s, "output") {
		t.Errorf("interfacing stages must be unlisted, got %q", s)
	}
}

func TestEmptySummary(t *testing.T) {
	if s := New("e").Summary(); s != "(empty)" {
		t.Errorf("empty summary = %q", s)
	}
}

func TestEstimateReport(t *testing.T) {
	nl := buildSimple()
	rep, err := nl.Estimate(estimate.SCN20, estimate.DefaultSystemSpec())
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if rep.OpAmps != 3 {
		t.Errorf("report op amps = %d", rep.OpAmps)
	}
	if rep.AreaUm2 <= 0 || rep.PowerMW <= 0 {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.PerComponent) != 3 {
		t.Errorf("per-component entries = %d", len(rep.PerComponent))
	}
	for _, c := range nl.Components {
		if c.Estimate == nil {
			t.Errorf("component %s not sized", c.Name)
		}
	}
}

func TestDumpContainsEverything(t *testing.T) {
	nl := buildSimple()
	d := nl.Dump()
	for _, want := range []string{"netlist simple", "port in in", "port out out",
		"inv_amp amp [gain=-3]", "integrator integ", "zero_cross_det cmp [threshold=0.5]"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	if nl.Dump() != d {
		t.Error("dump not deterministic")
	}
}

func TestPortByName(t *testing.T) {
	nl := buildSimple()
	if nl.PortByName("in") == nil || nl.PortByName("out") == nil {
		t.Error("ports missing")
	}
	if nl.PortByName("ghost") != nil {
		t.Error("phantom port")
	}
}

func TestParamDefaults(t *testing.T) {
	c := &Component{}
	if c.Param("gain", 7) != 7 {
		t.Error("default not returned")
	}
	c.SetParam("gain", 2)
	if c.Param("gain", 7) != 2 {
		t.Error("set value not returned")
	}
}

func TestTopologicalOrder(t *testing.T) {
	nl := buildSimple()
	order, err := nl.Topological()
	if err != nil {
		t.Fatalf("topo: %v", err)
	}
	pos := map[string]int{}
	for i, c := range order {
		pos[c.Name] = i
	}
	if pos["amp"] > pos["cmp"] {
		// cmp reads the integrator (state source), amp feeds it; both
		// orders are fine for cmp, but amp must exist.
	}
	if len(order) != 3 {
		t.Fatalf("order = %d components", len(order))
	}
}

func TestTopologicalDetectsLoop(t *testing.T) {
	nl := New("loop")
	a := nl.NewNet("a")
	b := nl.NewNet("b")
	nl.AddComponent(library.Get(library.CellInvAmp), "x", []*Net{a}, b)
	nl.AddComponent(library.Get(library.CellInvAmp), "y", []*Net{b}, a)
	if _, err := nl.Topological(); err == nil {
		t.Fatal("expected combinational loop error")
	}
}

func TestStatefulBreaksLoop(t *testing.T) {
	nl := New("ok")
	a := nl.NewNet("a")
	b := nl.NewNet("b")
	nl.AddComponent(library.Get(library.CellIntegrator), "i", []*Net{a}, b)
	nl.AddComponent(library.Get(library.CellInvAmp), "g", []*Net{b}, a)
	if _, err := nl.Topological(); err != nil {
		t.Fatalf("integrator loop should be legal: %v", err)
	}
}

func TestSharedComponentDump(t *testing.T) {
	nl := New("s")
	in := nl.NewNet("in")
	out := nl.NewNet("out")
	c := nl.AddComponent(library.Get(library.CellInvAmp), "a", []*Net{in}, out)
	c.Shared = true
	if !strings.Contains(nl.Dump(), "shared") {
		t.Error("shared marker missing from dump")
	}
}

// Package diag provides structured diagnostics for the VASE toolchain.
//
// Every diagnostic carries a stable code (such as VASS0201) from a central
// registry, a severity, a resolved primary position with an optional end
// position, optional related positions, and an optional suggested-fix text.
// Diagnostics are collected in a List, which sorts and dedupes itself so
// that tool output is deterministic, and can be rendered either as pretty
// terminal text with source excerpts and caret markers or as JSON for
// editor and CI integration.
//
// The front end (lexer, parser, sema), the VHIF compiler, the VHIF
// structural validator and the lint analyzers all report through this
// package; the diagcheck static-analysis pass enforces that those packages
// construct no naked fmt.Errorf errors.
package diag

import (
	"fmt"
	"sort"
	"strings"

	"vase/internal/source"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	Info Severity = iota
	Warning
	Error
)

// String renders the severity as its lower-case name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Related is a secondary position that gives context for a diagnostic, such
// as the declaration site of a symbol reported at a use site.
type Related struct {
	Pos source.Position
	Msg string
}

// Diagnostic is one structured finding.
type Diagnostic struct {
	// Code is the stable registry code, e.g. "VASS0201".
	Code Code
	// Severity of this instance (defaults to the code's registered severity).
	Severity Severity
	// Pos is the resolved primary position; a zero Pos means "no position"
	// (structural diagnostics on intermediate representations).
	Pos source.Position
	// End is the resolved end of the primary span when known.
	End source.Position
	// Msg is the human-readable message.
	Msg string
	// Fix is an optional suggested-fix text ("help:" in rendered output).
	Fix string
	// Related lists secondary positions with notes.
	Related []Related
}

// New returns a diagnostic with the code's registered severity at pos.
func New(code Code, pos source.Position, format string, args ...any) *Diagnostic {
	return &Diagnostic{
		Code:     code,
		Severity: code.Severity(),
		Pos:      pos,
		Msg:      fmt.Sprintf(format, args...),
	}
}

// Errorf returns a position-less diagnostic, for structural checks on
// representations that carry no source spans. It implements error, so it can
// be returned directly from validation functions.
func Errorf(code Code, format string, args ...any) *Diagnostic {
	return New(code, source.Position{}, format, args...)
}

// WithFix attaches a suggested-fix text and returns d.
func (d *Diagnostic) WithFix(format string, args ...any) *Diagnostic {
	d.Fix = fmt.Sprintf(format, args...)
	return d
}

// WithRelated attaches a secondary position with a note and returns d.
func (d *Diagnostic) WithRelated(pos source.Position, format string, args ...any) *Diagnostic {
	d.Related = append(d.Related, Related{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	return d
}

// WithSeverity overrides the registered severity and returns d.
func (d *Diagnostic) WithSeverity(s Severity) *Diagnostic {
	d.Severity = s
	return d
}

// HasPos reports whether the diagnostic carries a resolved source position.
func (d *Diagnostic) HasPos() bool {
	return d.Pos.Line > 0 || d.Pos.Filename != ""
}

// Error renders the diagnostic on one line: "file:line:col: [severity:] msg
// [CODE]". The severity prefix is omitted for errors so that existing
// "pos: msg" consumers keep working.
func (d *Diagnostic) Error() string {
	var b strings.Builder
	if d.HasPos() {
		b.WriteString(d.Pos.String())
		b.WriteString(": ")
	}
	if d.Severity != Error {
		b.WriteString(d.Severity.String())
		b.WriteString(": ")
	}
	b.WriteString(d.Msg)
	if d.Code != "" {
		fmt.Fprintf(&b, " [%s]", d.Code)
	}
	return b.String()
}

// List collects diagnostics during a pass.
type List []*Diagnostic

// Add appends d.
func (l *List) Add(d *Diagnostic) { *l = append(*l, d) }

// Addf appends a new diagnostic with the code's registered severity.
func (l *List) Addf(code Code, pos source.Position, format string, args ...any) *Diagnostic {
	d := New(code, pos, format, args...)
	l.Add(d)
	return d
}

// Sort orders the list by file, line, column, severity (most severe first),
// code, then message, so that output is deterministic.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// Dedupe removes diagnostics identical in code, position and message,
// keeping the first occurrence. The receiver must already be sorted for
// duplicates to be adjacent; Dedupe handles the general case by key lookup.
func (l *List) Dedupe() {
	seen := make(map[string]bool, len(*l))
	out := (*l)[:0]
	for _, d := range *l {
		key := string(d.Code) + "\x00" + d.Pos.String() + "\x00" + d.Msg
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	*l = out
}

// Wrapf prefixes err's message with a formatted context string. When err is
// a *Diagnostic its code, severity and position are preserved.
func Wrapf(err error, format string, args ...any) error {
	prefix := fmt.Sprintf(format, args...)
	if d, ok := err.(*Diagnostic); ok {
		clone := *d
		clone.Msg = prefix + ": " + d.Msg
		return &clone
	}
	return fmt.Errorf("%s: %w", prefix, err)
}

// Len returns the number of collected diagnostics.
func (l List) Len() int { return len(l) }

// HasErrors reports whether the list contains an Error-severity diagnostic.
func (l List) HasErrors() bool {
	for _, d := range l {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Count returns the number of diagnostics at exactly severity s.
func (l List) Count(s Severity) int {
	n := 0
	for _, d := range l {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Filter returns the diagnostics with severity >= min, preserving order.
func (l List) Filter(min Severity) List {
	var out List
	for _, d := range l {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// Promote returns a copy of the list with every warning raised to an error
// (the -Werror behavior). Info diagnostics are unchanged.
func (l List) Promote() List {
	out := make(List, len(l))
	for i, d := range l {
		if d.Severity == Warning {
			c := *d
			c.Severity = Error
			out[i] = &c
		} else {
			out[i] = d
		}
	}
	return out
}

// Err sorts and dedupes the list in place, then returns it as an error when
// it contains at least one Error-severity diagnostic, and nil otherwise.
func (l *List) Err() error {
	l.Sort()
	l.Dedupe()
	if l.HasErrors() {
		return *l
	}
	return nil
}

// Error renders at most ten diagnostics, one per line, mirroring the legacy
// source.ErrorList format.
func (l List) Error() string {
	var b strings.Builder
	for i, d := range l {
		if i == 10 {
			fmt.Fprintf(&b, "... and %d more diagnostics", len(l)-10)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	if b.Len() == 0 {
		return "no diagnostics"
	}
	return b.String()
}

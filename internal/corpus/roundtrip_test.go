package corpus

import (
	"testing"

	"vase/internal/compile"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/vhif"
)

// TestVHIFRoundTripAllDesigns: every compiled design's VHIF serialization
// parses back to an identical serialization — the file format is lossless
// for the whole corpus.
func TestVHIFRoundTripAllDesigns(t *testing.T) {
	var sources []struct{ name, src string }
	for _, app := range Applications() {
		sources = append(sources, struct{ name, src string }{app.Key, app.Source})
	}
	for _, app := range Extras() {
		sources = append(sources, struct{ name, src string }{app.Key, app.Source})
	}
	sources = append(sources,
		struct{ name, src string }{"fig3", Figure3Source},
		struct{ name, src string }{"fig4", Figure4Source},
	)
	for _, sc := range sources {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			df, err := parser.Parse(sc.name+".vhd", sc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			d, err := sema.AnalyzeOne(df)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			m, err := compile.Compile(d)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			d1 := m.Dump()
			m2, err := vhif.Parse(d1)
			if err != nil {
				t.Fatalf("vhif parse: %v\n%s", err, d1)
			}
			if d2 := m2.Dump(); d1 != d2 {
				t.Errorf("round trip differs:\n--- original ---\n%s\n--- reparsed ---\n%s", d1, d2)
			}
			// The reparsed module carries the same Table 1 metrics.
			if m.BlockCount() != m2.BlockCount() || m.StateCount() != m2.StateCount() ||
				m.DatapathCount() != m2.DatapathCount() {
				t.Errorf("metrics differ after round trip: %d/%d/%d vs %d/%d/%d",
					m.BlockCount(), m.StateCount(), m.DatapathCount(),
					m2.BlockCount(), m2.StateCount(), m2.DatapathCount())
			}
		})
	}
}

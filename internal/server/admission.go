package server

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// admission is the server's bounded-queue admission controller. At most
// maxConcurrent requests hold a run slot; up to queueDepth more wait up to
// queueWait for one. Anything beyond that is shed immediately with 429 +
// Retry-After: past the queue bound, waiting only converts future 200s into
// future 503s, so refusing early is the answer that preserves the deadlines
// of the requests already admitted.
type admission struct {
	slots      chan struct{}
	queueDepth int64
	queueWait  time.Duration
	queued     atomic.Int64
}

func newAdmission(maxConcurrent, queueDepth int, queueWait time.Duration) *admission {
	return &admission{
		slots:      make(chan struct{}, maxConcurrent),
		queueDepth: int64(queueDepth),
		queueWait:  queueWait,
	}
}

// admit acquires a run slot. On success it returns the release function the
// caller must defer; otherwise an httpError describing why the request was
// refused (429 queue full, 503 queue wait expired, 499-as-504 caller gone).
func (a *admission) admit(ctx context.Context) (func(), *httpError) {
	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	if n := a.queued.Add(1); n > a.queueDepth {
		a.queued.Add(-1)
		return nil, &httpError{
			status:     http.StatusTooManyRequests,
			msg:        "server saturated: run slots and queue are full",
			retryAfter: a.retryAfterSeconds(),
		}
	}
	defer a.queued.Add(-1)
	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-timer.C:
		return nil, &httpError{
			status:     http.StatusServiceUnavailable,
			msg:        "queued past the admission deadline",
			retryAfter: a.retryAfterSeconds(),
		}
	case <-ctx.Done():
		return nil, &httpError{
			status: http.StatusGatewayTimeout,
			msg:    "request cancelled while queued: " + ctx.Err().Error(),
		}
	}
}

func (a *admission) release() { <-a.slots }

// retryAfterSeconds estimates when retrying is worthwhile: after roughly one
// queue-wait window, with a floor of one second.
func (a *admission) retryAfterSeconds() int {
	secs := int((a.queueWait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// depth reports the current number of queued requests (for /metrics).
func (a *admission) depth() int64 { return a.queued.Load() }

package sim

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// WriteCSV writes the trace as comma-separated values: a header row with
// "t" and the signal names (sorted), then one row per sample. It is the
// interchange format for external plotting tools.
func (tr *Trace) WriteCSV(w io.Writer) error {
	names := make([]string, 0, len(tr.Signals))
	for name := range tr.Signals {
		names = append(names, name)
	}
	sort.Strings(names)

	if _, err := io.WriteString(w, "t"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := io.WriteString(w, ","+n); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for i, t := range tr.Time {
		if _, err := fmt.Fprintf(w, "%g", t); err != nil {
			return err
		}
		for _, n := range names {
			s := tr.Signals[n]
			// A signal shorter than the time axis has no sample here; emit
			// NaN so plots show a gap instead of fabricated data.
			v := math.NaN()
			if i < len(s) {
				v = s[i]
			}
			if _, err := fmt.Fprintf(w, ",%g", v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

package pipeline

import (
	"sync/atomic"
	"time"
)

// HistBuckets is the number of latency-histogram buckets per stage. The
// first HistBuckets-1 buckets have the upper bounds of histBounds; the last
// is the overflow (+Inf) bucket.
const HistBuckets = 12

// histBounds are the inclusive upper bounds of the latency buckets,
// log-spaced from 100µs to 10s (roughly half-decade steps). A stage compute
// of duration d lands in the first bucket with d <= bound.
var histBounds = [HistBuckets - 1]time.Duration{
	100 * time.Microsecond,
	316 * time.Microsecond,
	1 * time.Millisecond,
	3160 * time.Microsecond,
	10 * time.Millisecond,
	31600 * time.Microsecond,
	100 * time.Millisecond,
	316 * time.Millisecond,
	1 * time.Second,
	3160 * time.Millisecond,
	10 * time.Second,
}

// HistBounds returns the finite bucket upper bounds of the per-stage
// latency histograms (the final bucket of Histogram.Buckets is +Inf).
func HistBounds() []time.Duration {
	out := make([]time.Duration, len(histBounds))
	copy(out, histBounds[:])
	return out
}

// Histogram is a snapshot of one stage's compute-latency distribution.
// Buckets[i] counts computations with elapsed <= HistBounds()[i]; the last
// bucket counts everything slower.
type Histogram struct {
	Buckets [HistBuckets]uint64
}

// Count is the total number of observations.
func (h Histogram) Count() uint64 {
	var n uint64
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// stageCounters is the live, concurrently-updated form of StageStats: every
// field is an atomic so the hot paths (cache hits, shared joins, compute
// accounting) never serialize on the pipeline mutex, and the Stats snapshot
// can be taken without blocking in-flight requests.
type stageCounters struct {
	hits, diskHits, shared atomic.Uint64
	misses, errors         atomic.Uint64
	degraded               atomic.Uint64
	computeNanos           atomic.Int64
	buckets                [HistBuckets]atomic.Uint64
}

// observe records one completed stage computation.
func (c *stageCounters) observe(elapsed time.Duration, degraded bool) {
	// Order matters for snapshot coherence: the latency is published before
	// the miss counter, so a snapshot never shows a miss whose compute time
	// has not landed yet.
	c.computeNanos.Add(int64(elapsed))
	for i, bound := range histBounds {
		if elapsed <= bound {
			c.buckets[i].Add(1)
			c.misses.Add(1)
			if degraded {
				c.degraded.Add(1)
			}
			return
		}
	}
	c.buckets[HistBuckets-1].Add(1)
	c.misses.Add(1)
	if degraded {
		c.degraded.Add(1)
	}
}

// snapshot reads every counter atomically into the exported form. Each
// field is individually consistent (monotonic, never torn); the set as a
// whole is a point-in-time view only up to requests completing during the
// read, which is the strongest guarantee a lock-free snapshot can give.
func (c *stageCounters) snapshot() (StageStats, Histogram) {
	var h Histogram
	for i := range c.buckets {
		h.Buckets[i] = c.buckets[i].Load()
	}
	s := StageStats{
		Hits:        c.hits.Load(),
		DiskHits:    c.diskHits.Load(),
		Shared:      c.shared.Load(),
		Misses:      c.misses.Load(),
		Errors:      c.errors.Load(),
		Degraded:    c.degraded.Load(),
		ComputeTime: time.Duration(c.computeNanos.Load()),
	}
	return s, h
}

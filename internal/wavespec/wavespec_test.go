package wavespec

import (
	"math"
	"testing"
)

func TestParseShapes(t *testing.T) {
	cases := []struct {
		spec string
		t    float64
		want float64
	}{
		{"dc:2.5", 0.123, 2.5},
		{"sine:2,1000", 0, 0},
		{"sine:2,1000", 0.00025, 2}, // quarter period of 1 kHz
		{"step:0,5,1e-3", 0.5e-3, 0},
		{"step:0,5,1e-3", 2e-3, 5},
		{"ramp:3", 2, 6},
		{"dc: 1.5", 0, 1.5}, // whitespace around parameters is tolerated
	}
	for _, c := range cases {
		w, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got := w(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Parse(%q)(%g) = %g, want %g", c.spec, c.t, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",               // no kind
		"dc",             // missing parameter
		"dc:a",           // non-numeric
		"sine:1",         // too few parameters
		"sine:1,2,3",     // too many
		"square:1,2",     // unknown kind
		"step:0,5",       // too few
		"ramp:1,2",       // too many
		"dc:1;rm -rf /x", // junk after the number
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseMap(t *testing.T) {
	waves, err := ParseMap(map[string]string{"line": "dc:1", "local": "ramp:2"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waves["line"](0); got != 1 {
		t.Errorf("line(0) = %g, want 1", got)
	}
	if got := waves["local"](3); got != 6 {
		t.Errorf("local(3) = %g, want 6", got)
	}
	if _, err := ParseMap(map[string]string{"x": "bogus:1"}); err == nil {
		t.Error("ParseMap with a bad spec succeeded, want error naming the input")
	}
}

// Package vhif implements the VASE Hierarchical Intermediate Format, the
// structural representation that VASS specifications are compiled into and
// that the architecture generator maps onto component netlists.
//
// VHIF describes an analog system as two interacting parts:
//
//   - Continuous-time behavior is a set of signal-flow Graphs whose Blocks
//     carry exact knowledge about flows and processing of signals (gains,
//     sums, multipliers, integrators, log/antilog elements, sample-and-hold
//     and switching elements).
//   - Event-driven behavior is a finite state machine (FSM) whose states
//     denote sets of concurrent operations and whose arcs are guarded by
//     events ('above threshold crossings, port events) and conditions.
//
// Control nets connect FSM outputs (VHDL-AMS signals) to switch, mux and
// sample-and-hold blocks in the signal-flow graphs.
package vhif

import (
	"fmt"

	"vase/internal/diag"
)

// BlockKind enumerates the signal-flow block types. Every kind is
// implementable with electronic circuits from the component library.
type BlockKind int

// Signal-flow block kinds.
const (
	// Structure.
	BInput  BlockKind = iota // entity input port
	BOutput                  // entity output port
	BConst                   // constant source
	// Linear processing.
	BGain // multiply by a compile-time constant
	BAdd  // sum of two or more inputs
	BSub  // difference in0 - in1
	BNeg  // inversion (gain -1)
	// Nonlinear processing.
	BMul  // four-quadrant multiplier
	BDiv  // divider in0 / in1
	BLog  // logarithmic amplifier
	BExp  // anti-log (exponential) amplifier
	BSqrt // square-root element
	BSin  // sine shaper
	BCos  // cosine shaper
	BAbs  // precision rectifier
	BMin  // minimum selector
	BMax  // maximum selector
	BSign // signum / hard comparator against zero
	// Dynamic elements.
	BIntegrator     // time integral of the input
	BDifferentiator // time derivative of the input
	BSampleHold     // sample-and-hold, sampled on control
	// Event interface and routing.
	BSwitch     // analog switch: passes input while control is true
	BMux        // two-input analog multiplexer selected by control
	BComparator // threshold comparator producing a control signal
	BSchmitt    // comparator with hysteresis
	BNot        // control inverter
	BADC        // analog-to-digital converter
	BLimiter    // output limiter (clipping stage)
	BBuffer     // follower / output drive stage
	BFilter     // inferred band-limiting filter (low-pass or band-pass)
	numBlockKinds
)

var blockKindNames = [...]string{
	BInput: "input", BOutput: "output", BConst: "const",
	BGain: "gain", BAdd: "add", BSub: "sub", BNeg: "neg",
	BMul: "mul", BDiv: "div", BLog: "log", BExp: "exp",
	BSqrt: "sqrt", BSin: "sin", BCos: "cos", BAbs: "abs",
	BMin: "min", BMax: "max", BSign: "sign",
	BIntegrator: "integ", BDifferentiator: "diff",
	BSampleHold: "sh", BSwitch: "switch", BMux: "mux",
	BComparator: "cmp", BSchmitt: "schmitt", BNot: "not",
	BADC: "adc", BLimiter: "limit", BBuffer: "buffer",
	BFilter: "filter",
}

// String returns the lower-case mnemonic of the kind.
func (k BlockKind) String() string {
	if k >= 0 && int(k) < len(blockKindNames) {
		return blockKindNames[k]
	}
	return fmt.Sprintf("block(%d)", int(k))
}

// arity returns the number of data inputs of each kind; -1 means variadic
// (at least two).
func (k BlockKind) arity() int {
	switch k {
	case BInput, BConst:
		return 0
	case BOutput, BGain, BNeg, BLog, BExp, BSqrt, BSin, BCos, BAbs, BSign,
		BIntegrator, BDifferentiator, BSampleHold, BSwitch, BComparator,
		BSchmitt, BNot, BADC, BLimiter, BBuffer, BFilter:
		return 1
	case BSub, BDiv, BMin, BMax, BMux:
		return 2
	case BAdd, BMul:
		return -1
	}
	return 0
}

// HasControl reports whether the kind takes a control (event) input.
func (k BlockKind) HasControl() bool {
	switch k {
	case BSampleHold, BSwitch, BMux:
		return true
	}
	return false
}

// ProducesControl reports whether the kind's output is a control (event)
// signal rather than an analog one.
func (k BlockKind) ProducesControl() bool {
	switch k {
	case BComparator, BSchmitt, BNot:
		return true
	}
	return false
}

// HasParam reports whether the kind carries a numeric parameter.
func (k BlockKind) HasParam() bool {
	switch k {
	case BConst, BGain, BComparator, BSchmitt, BLimiter, BADC, BFilter:
		return true
	}
	return false
}

// Net is a signal connection between one driver block and any number of
// reader blocks.
type Net struct {
	ID      int
	Name    string
	Driver  *Block
	Readers []*Block
	// Control marks nets that carry event/control values (bit signals)
	// rather than continuous analog values.
	Control bool
}

// Block is one signal-flow operation.
type Block struct {
	ID   int
	Kind BlockKind
	Name string
	// Param is the block constant: gain value for BGain, constant for
	// BConst, threshold for BComparator/BSchmitt, clip level for BLimiter,
	// resolution (bits) for BADC.
	Param float64
	// Hyst is the hysteresis margin of BSchmitt.
	Hyst float64
	// Param2 is the secondary parameter: the lower corner frequency of a
	// band-pass BFilter (0 for a low-pass).
	Param2 float64
	// Inputs are the data inputs in positional order.
	Inputs []*Net
	// Ctrl is the control input of switch/mux/sample-hold blocks.
	Ctrl *Net
	// Out is the single output net (nil only for BOutput).
	Out *Net
	// FromFSM marks blocks materialized from the event-driven part (the
	// analog realizations of FSM datapath elements: comparators, Schmitt
	// triggers). They are the "data-path" elements of the paper's Table 1.
	FromFSM bool
}

// Graph is one signal-flow graph: a connected structure of blocks computing
// a set of outputs from a set of inputs.
type Graph struct {
	Name    string
	Blocks  []*Block
	Nets    []*Net
	nextNet int
	nextBlk int
}

// NewGraph returns an empty named graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// NewNet allocates a net with the given name.
func (g *Graph) NewNet(name string) *Net {
	n := &Net{ID: g.nextNet, Name: name}
	g.nextNet++
	g.Nets = append(g.Nets, n)
	return n
}

// AddBlock appends a block of the given kind reading the inputs and driving
// a fresh output net. The block and net are named automatically when name
// is empty.
func (g *Graph) AddBlock(kind BlockKind, name string, inputs ...*Net) *Block {
	b := &Block{ID: g.nextBlk, Kind: kind, Name: name}
	g.nextBlk++
	if b.Name == "" {
		b.Name = fmt.Sprintf("%s%d", kind, b.ID)
	}
	for _, in := range inputs {
		b.Inputs = append(b.Inputs, in)
		if in != nil {
			in.Readers = append(in.Readers, b)
		}
	}
	if kind != BOutput {
		out := g.NewNet(b.Name + ".out")
		out.Driver = b
		out.Control = kind.ProducesControl()
		b.Out = out
	}
	g.Blocks = append(g.Blocks, b)
	return b
}

// SetCtrl connects a control net to b.
func (b *Block) SetCtrl(g *Graph, ctrl *Net) {
	b.Ctrl = ctrl
	if ctrl != nil {
		ctrl.Readers = append(ctrl.Readers, b)
	}
}

// Inputs returns the graph's input blocks in insertion order.
func (g *Graph) InputBlocks() []*Block { return g.blocksOfKind(BInput) }

// OutputBlocks returns the graph's output blocks in insertion order.
func (g *Graph) OutputBlocks() []*Block { return g.blocksOfKind(BOutput) }

func (g *Graph) blocksOfKind(k BlockKind) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == k {
			out = append(out, b)
		}
	}
	return out
}

// BlockByName returns the named block, or nil.
func (g *Graph) BlockByName(name string) *Block {
	for _, b := range g.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// CountKind returns the number of blocks of kind k.
func (g *Graph) CountKind(k BlockKind) int {
	n := 0
	for _, b := range g.Blocks {
		if b.Kind == k {
			n++
		}
	}
	return n
}

// OpBlockCount returns the number of signal-processing operation blocks.
// Structural markers (BInput/BOutput/BConst) are excluded, and so are
// interfacing blocks inferred from port annotations rather than from
// VHDL-AMS code (BBuffer output stages and BLimiter clippers): the paper's
// Figure 7 discussion notes that "block 4 does not process signals, but
// adapts the system output to the loading requirements". Control inverters
// are bookkeeping, not processing. This is the "nr. blocks" metric of the
// paper's Table 1.
func (g *Graph) OpBlockCount() int {
	n := 0
	for _, b := range g.Blocks {
		switch b.Kind {
		case BInput, BOutput, BConst, BBuffer, BLimiter, BNot, BFilter:
		default:
			n++
		}
	}
	return n
}

// Validate checks structural invariants: arities, connected nets, control
// typing, and that every non-input block is reachable from inputs or
// constants.
func (g *Graph) Validate() error {
	for _, b := range g.Blocks {
		want := b.Kind.arity()
		switch {
		case want == -1:
			if len(b.Inputs) < 2 {
				return diag.Errorf(diag.CodeVHIFArity, "vhif: %s block %q requires at least 2 inputs, has %d", b.Kind, b.Name, len(b.Inputs))
			}
		case len(b.Inputs) != want:
			return diag.Errorf(diag.CodeVHIFArity, "vhif: %s block %q requires %d inputs, has %d", b.Kind, b.Name, want, len(b.Inputs))
		}
		if b.Kind.HasControl() && b.Ctrl == nil {
			return diag.Errorf(diag.CodeVHIFControl, "vhif: %s block %q is missing its control input", b.Kind, b.Name)
		}
		if !b.Kind.HasControl() && b.Ctrl != nil {
			return diag.Errorf(diag.CodeVHIFControl, "vhif: %s block %q cannot take a control input", b.Kind, b.Name)
		}
		if b.Ctrl != nil && !b.Ctrl.Control {
			return diag.Errorf(diag.CodeVHIFControl, "vhif: control input of block %q is not a control net", b.Name)
		}
		for i, in := range b.Inputs {
			if in == nil {
				return diag.Errorf(diag.CodeVHIFNet, "vhif: input %d of block %q is unconnected", i, b.Name)
			}
			if in.Driver == nil {
				return diag.Errorf(diag.CodeVHIFNet, "vhif: net %q read by block %q has no driver", in.Name, b.Name)
			}
		}
		if b.Kind != BOutput && b.Out == nil {
			return diag.Errorf(diag.CodeVHIFNet, "vhif: block %q has no output net", b.Name)
		}
	}
	// Each net with readers must have a driver in this graph.
	for _, n := range g.Nets {
		if len(n.Readers) > 0 && n.Driver == nil {
			return diag.Errorf(diag.CodeVHIFNet, "vhif: net %q has readers but no driver", n.Name)
		}
	}
	return g.checkAlgebraicLoops()
}

// checkAlgebraicLoops rejects cycles that do not pass through a state
// element: such cycles have no causal signal-flow implementation.
// Integrators and sample-and-holds hold analog state; comparators and
// Schmitt triggers hold their decision with hysteresis, so feedback through
// them is relaxation dynamics, not an algebraic loop.
func (g *Graph) checkAlgebraicLoops() error {
	cycle := g.FindAlgebraicLoop()
	if cycle == nil {
		return nil
	}
	return diag.Errorf(diag.CodeAlgebraicLoop, "vhif: algebraic loop through block %q: %s",
		cycle[0].Name, DescribeCycle(cycle))
}

// FindAlgebraicLoop returns the blocks of one combinational cycle (a cycle
// not broken by a state element), in signal-flow order starting from the
// first block of the cycle that was declared, or nil when the graph has
// none. Block declaration order makes the result deterministic.
func (g *Graph) FindAlgebraicLoop() []*Block {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Block]int, len(g.Blocks))
	var stack []*Block
	var cycle []*Block
	var visit func(b *Block) bool
	visit = func(b *Block) bool {
		color[b] = gray
		stack = append(stack, b)
		if b.Out != nil {
			for _, r := range b.Out.Readers {
				// State elements break combinational cycles.
				if isStateElement(r) {
					continue
				}
				switch color[r] {
				case gray:
					// The cycle is the stack suffix starting at r.
					for i, s := range stack {
						if s == r {
							cycle = append(cycle, stack[i:]...)
							return true
						}
					}
				case white:
					if visit(r) {
						return true
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[b] = black
		return false
	}
	for _, b := range g.Blocks {
		if color[b] == white && visit(b) {
			return cycle
		}
	}
	return nil
}

// DescribeCycle renders a block cycle as "kind "name" --net--> kind "name"
// --net--> ...", naming the nets carrying the feedback.
func DescribeCycle(cycle []*Block) string {
	if len(cycle) == 0 {
		return ""
	}
	var b []byte
	for i, blk := range cycle {
		if i > 0 {
			prev := cycle[i-1]
			net := "?"
			if prev.Out != nil {
				net = prev.Out.Name
			}
			b = append(b, fmt.Sprintf(" --%s--> ", net)...)
		}
		b = append(b, fmt.Sprintf("%s %q", blk.Kind, blk.Name)...)
	}
	last := cycle[len(cycle)-1]
	net := "?"
	if last.Out != nil {
		net = last.Out.Name
	}
	b = append(b, fmt.Sprintf(" --%s--> %s %q", net, cycle[0].Kind, cycle[0].Name)...)
	return string(b)
}

// Topological returns the blocks in a dataflow evaluation order: a block
// appears after all drivers of its inputs, with integrator and sample-hold
// feedback edges broken (their previous-step outputs are available).
func (g *Graph) Topological() []*Block {
	indeg := make(map[*Block]int, len(g.Blocks))
	for _, b := range g.Blocks {
		deps := 0
		ins := b.Inputs
		if b.Ctrl != nil {
			ins = append(append([]*Net{}, b.Inputs...), b.Ctrl)
		}
		for _, in := range ins {
			if in != nil && in.Driver != nil && !isStateElement(b) {
				deps++
			}
		}
		indeg[b] = deps
	}
	var queue, order []*Block
	for _, b := range g.Blocks {
		if indeg[b] == 0 {
			queue = append(queue, b)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		order = append(order, b)
		if b.Out == nil {
			continue
		}
		for _, r := range b.Out.Readers {
			if isStateElement(r) {
				continue
			}
			indeg[r]--
			if indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
	}
	// State elements and anything left (cycles already rejected by
	// Validate) are appended in declaration order.
	seen := make(map[*Block]bool, len(order))
	for _, b := range order {
		seen[b] = true
	}
	for _, b := range g.Blocks {
		if !seen[b] {
			order = append(order, b)
		}
	}
	return order
}

func isStateElement(b *Block) bool {
	switch b.Kind {
	case BIntegrator, BSampleHold, BComparator, BSchmitt, BFilter:
		return true
	}
	return false
}

package mapper

import (
	"testing"

	"vase/internal/vhif"
)

// buildCascade constructs an n-stage gain cascade: a large search space
// (every stage has a one-amp and a two-amp match).
func buildCascade(n int) *vhif.Module {
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "a")
	net := in.Out
	for i := 0; i < n; i++ {
		gb := g.AddBlock(vhif.BGain, "", net)
		gb.Param = float64(i + 3)
		net = gb.Out
	}
	g.AddBlock(vhif.BOutput, "y", net)
	return &vhif.Module{Name: "cascade", Graphs: []*vhif.Graph{g}}
}

func TestFirstFitHeuristic(t *testing.T) {
	m := buildCascade(10)
	// Sequential search: the single-mapping and node-count assertions
	// describe the depth-first exploration order.
	seq := DefaultOptions()
	seq.Workers = 1
	exact := synth(t, m, seq)
	opts := seq
	opts.FirstFit = true
	greedy := synth(t, m, opts)

	if greedy.Stats.CompleteMappings != 1 {
		t.Errorf("first-fit explored %d complete mappings, want 1", greedy.Stats.CompleteMappings)
	}
	if greedy.Stats.NodesVisited >= exact.Stats.NodesVisited {
		t.Errorf("first-fit visited %d nodes, exact %d — heuristic should be cheaper",
			greedy.Stats.NodesVisited, exact.Stats.NodesVisited)
	}
	// With the sequencing rule ordering candidates, the first completion is
	// the op-amp optimum on this structure.
	if greedy.Netlist.OpAmpCount() != exact.Netlist.OpAmpCount() {
		t.Errorf("first-fit found %d op amps, exact %d",
			greedy.Netlist.OpAmpCount(), exact.Netlist.OpAmpCount())
	}
}

func TestFirstFitOnReceiver(t *testing.T) {
	m := compileReceiver(t)
	exact := synth(t, m, DefaultOptions())
	opts := DefaultOptions()
	opts.FirstFit = true
	greedy := synth(t, m, opts)
	if greedy.Netlist.OpAmpCount() != exact.Netlist.OpAmpCount() {
		t.Errorf("first-fit %d op amps vs exact %d",
			greedy.Netlist.OpAmpCount(), exact.Netlist.OpAmpCount())
	}
}

func TestStrongBoundPreservesOptimum(t *testing.T) {
	// With sharing disabled the strong bound is admissible: same optimum,
	// fewer or equal nodes.
	for _, m := range []*vhif.Module{buildCascade(8), buildFig6(), buildChain()} {
		weak := DefaultOptions()
		weak.Workers = 1
		weak.NoSharing = true
		strong := weak
		strong.StrongBound = true
		rw := synth(t, m, weak)
		rs := synth(t, m, strong)
		if rw.Netlist.OpAmpCount() != rs.Netlist.OpAmpCount() {
			t.Errorf("%s: strong bound changed the optimum: %d vs %d",
				m.Name, rs.Netlist.OpAmpCount(), rw.Netlist.OpAmpCount())
		}
		if rs.Stats.NodesVisited > rw.Stats.NodesVisited {
			t.Errorf("%s: strong bound visited more nodes (%d) than weak (%d)",
				m.Name, rs.Stats.NodesVisited, rw.Stats.NodesVisited)
		}
	}
}

func TestStrongBoundPrunesMore(t *testing.T) {
	m := buildCascade(10)
	weak := DefaultOptions()
	weak.Workers = 1
	weak.NoSharing = true
	strong := weak
	strong.StrongBound = true
	rw := synth(t, m, weak)
	rs := synth(t, m, strong)
	if rs.Stats.NodesVisited >= rw.Stats.NodesVisited {
		t.Errorf("strong bound should reduce nodes: %d vs %d",
			rs.Stats.NodesVisited, rw.Stats.NodesVisited)
	}
}

func TestSystemSpecFromAnnotations(t *testing.T) {
	// A port annotated "frequency 0 to 1 MHz" must raise the derived
	// bandwidth above the audio default.
	m := buildCascade(2)
	m.Ports = []*vhif.Port{{Name: "a", FreqHi: 1e6, RangeHi: 2.0}}
	sys := SystemSpecFor(m)
	if sys.Bandwidth != 1e6 {
		t.Errorf("derived bandwidth = %g, want 1e6", sys.Bandwidth)
	}
	if sys.PeakV != 2.0 {
		t.Errorf("derived peak = %g, want 2.0", sys.PeakV)
	}
	// Unannotated: audio defaults.
	sys = SystemSpecFor(buildCascade(2))
	if sys.Bandwidth != 20e3 {
		t.Errorf("default bandwidth = %g, want 20e3", sys.Bandwidth)
	}
}

func TestAnnotationsRaiseArea(t *testing.T) {
	// The same structure costs more silicon at 1 MHz than at audio rates:
	// the frequency annotation drives op amp sizing.
	audio := buildCascade(3)
	fast := buildCascade(3)
	fast.Ports = []*vhif.Port{{Name: "a", FreqHi: 2e6}}
	ra := synth(t, audio, DefaultOptions())
	rf := synth(t, fast, DefaultOptions())
	if rf.Report.AreaUm2 <= ra.Report.AreaUm2 {
		t.Errorf("2 MHz design (%.0f um^2) should exceed the audio design (%.0f um^2)",
			rf.Report.AreaUm2, ra.Report.AreaUm2)
	}
}

// buildTree constructs a balanced binary tree of weighted adders with
// depth d: 2^d inputs, 2^d - 1 adders, a gain per input.
func buildTree(d int) *vhif.Module {
	g := vhif.NewGraph("main")
	var nets []*vhif.Net
	n := 1 << d
	for i := 0; i < n; i++ {
		in := g.AddBlock(vhif.BInput, "")
		gb := g.AddBlock(vhif.BGain, "", in.Out)
		gb.Param = float64(i%7 + 2)
		nets = append(nets, gb.Out)
	}
	for len(nets) > 1 {
		var next []*vhif.Net
		for i := 0; i+1 < len(nets); i += 2 {
			next = append(next, g.AddBlock(vhif.BAdd, "", nets[i], nets[i+1]).Out)
		}
		if len(nets)%2 == 1 {
			next = append(next, nets[len(nets)-1])
		}
		nets = next
	}
	g.AddBlock(vhif.BOutput, "y", nets[0])
	return &vhif.Module{Name: "tree", Graphs: []*vhif.Graph{g}}
}

func TestLargeDesignFirstFit(t *testing.T) {
	// 16 inputs: 16 gains + 15 adders = 47 mappable blocks including the
	// input markers' gains. First-fit must complete quickly and cover
	// everything.
	m := buildTree(4)
	opts := DefaultOptions()
	opts.Workers = 1
	opts.FirstFit = true
	res := synth(t, m, opts)
	// Summing absorption: each adder absorbs its gain inputs; the tree
	// collapses to one summing amp per adder level group (fan-in 4).
	if res.Netlist.OpAmpCount() == 0 || res.Netlist.OpAmpCount() > 15 {
		t.Errorf("op amps = %d, want within (0, 15]", res.Netlist.OpAmpCount())
	}
	if res.Stats.NodesVisited > 200 {
		t.Errorf("first-fit visited %d nodes on a 47-block design", res.Stats.NodesVisited)
	}
}

func TestMaxNodesCapRespected(t *testing.T) {
	m := buildTree(4)
	opts := DefaultOptions()
	opts.NoBounding = true
	opts.MaxNodes = 500
	res, err := Synthesize(m, opts)
	if err != nil {
		// The cap may cut the search before any complete mapping; either a
		// result or the no-mapping error is acceptable, never a hang.
		return
	}
	if res.Stats.NodesVisited > opts.MaxNodes+1 {
		t.Errorf("visited %d nodes, cap %d", res.Stats.NodesVisited, opts.MaxNodes)
	}
}

// Package gen generates well-typed-by-construction VASS specifications
// for differential testing at corpus scale.
//
// A generated specification is built from a Model: a DAG of quantity
// definitions (combinational equations, damped first-order states, guarded
// if-use pairs), finite-state processes watching 'above threshold
// crossings, and input waveform declarations. Well-typedness is structural:
// every equation references only strictly earlier symbols (no algebraic
// loops), every state is a contracting lag s'dot == k*(drive - s), every
// declared object is referenced (no unused-object lint), and every numeric
// value flows through a declared constant.
//
// Because the model — not the rendered text — is the unit of generation,
// the shrinker (shrink.go) mutates models and re-renders, so a shrunken
// reproducer is again well-typed by construction.
//
// Interval arithmetic over the model derives sound waveform bounds for
// every quantity; Build turns those into dense-time assertions (see
// internal/assertlang) embedded as "-- assert:" pragma comments in the
// rendered source.
package gen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"vase/internal/interval"
	"vase/internal/sim"
)

// Interval arithmetic lives in internal/interval, shared with the
// abstract interpreter (internal/absint) so the generator's assertion
// derivation and the static prover can never drift.

// Wave describes an input stimulus. The same description serves the
// behavioral simulator, the MNA circuit simulator (both consume a
// func(t) float64) and the interval analysis.
type Wave struct {
	// Shape is "dc", "sine" or "step".
	Shape string
	// Level is the dc level (Shape "dc").
	Level float64
	// Amp, Freq, Phase describe a sine (Shape "sine").
	Amp, Freq, Phase float64
	// V0, V1, At describe a step from V0 to V1 at time At (Shape "step").
	V0, V1, At float64
}

// Source converts the wave to a simulator input.
func (w Wave) Source() sim.Source {
	switch w.Shape {
	case "sine":
		return sim.Sine(w.Amp, w.Freq, w.Phase)
	case "step":
		return sim.Step(w.V0, w.V1, w.At)
	default:
		return sim.DC(w.Level)
	}
}

// iv is the wave's value hull over any time horizon.
func (w Wave) iv() interval.Interval {
	switch w.Shape {
	case "sine":
		a := math.Abs(w.Amp)
		return interval.Interval{Lo: -a, Hi: a}
	case "step":
		return interval.Interval{Lo: math.Min(w.V0, w.V1), Hi: math.Max(w.V0, w.V1)}
	default:
		return interval.Point(w.Level)
	}
}

// integIV bounds the running integral of the wave; only sine waves (whose
// integral is periodic, hence bounded) support it.
func (w Wave) integIV() (interval.Interval, bool) {
	if w.Shape != "sine" || w.Freq <= 0 {
		return interval.Interval{}, false
	}
	b := math.Abs(w.Amp) / (math.Pi * w.Freq)
	return interval.Interval{Lo: -b, Hi: b}, true
}

// Expression operators.
type opKind int

const (
	opRef   opKind = iota // named symbol (input, quantity or constant)
	opInteg               // input'integ (sine inputs only)
	opAdd
	opSub
	opMul
	opNeg
	opAbs
)

// expr is a tiny expression tree over model symbols.
type expr struct {
	Op   opKind
	Ref  string // opRef / opInteg
	A, B *expr
}

func ref(name string) *expr            { return &expr{Op: opRef, Ref: name} }
func integOf(name string) *expr        { return &expr{Op: opInteg, Ref: name} }
func add(a, b *expr) *expr             { return &expr{Op: opAdd, A: a, B: b} }
func sub(a, b *expr) *expr             { return &expr{Op: opSub, A: a, B: b} }
func mul(a, b *expr) *expr             { return &expr{Op: opMul, A: a, B: b} }
func neg(a *expr) *expr                { return &expr{Op: opNeg, A: a} }
func absOf(a *expr) *expr              { return &expr{Op: opAbs, A: a} }
func gain(cname string, a *expr) *expr { return mul(ref(cname), a) }

func (e *expr) clone() *expr {
	if e == nil {
		return nil
	}
	c := *e
	c.A, c.B = e.A.clone(), e.B.clone()
	return &c
}

// walk visits every node of the tree.
func (e *expr) walk(f func(*expr)) {
	if e == nil {
		return
	}
	f(e)
	e.A.walk(f)
	e.B.walk(f)
}

// render prints the expression with minimal parenthesization. Binary
// operands are wrapped when their precedence is lower than the context's;
// unary minus is always wrapped unless it is the whole expression, since
// "a * -b" is not idiomatic VASS.
func (e *expr) render(ctx int) string {
	switch e.Op {
	case opRef:
		return e.Ref
	case opInteg:
		return e.Ref + "'integ"
	case opAbs:
		return "abs(" + e.A.render(0) + ")"
	case opNeg:
		s := "-" + e.A.render(3)
		if ctx > 0 {
			return "(" + s + ")"
		}
		return s
	case opAdd, opSub:
		op := " + "
		if e.Op == opSub {
			op = " - "
		}
		// Right operand of "-" binds one level tighter so "a - (b + c)"
		// keeps its parentheses.
		rctx := 1
		if e.Op == opSub {
			rctx = 2
		}
		s := e.A.render(1) + op + e.B.render(rctx)
		if ctx >= 2 {
			return "(" + s + ")"
		}
		return s
	case opMul:
		s := e.A.render(2) + " * " + e.B.render(3)
		if ctx >= 3 {
			return "(" + s + ")"
		}
		return s
	}
	panic("gen: unknown expr op")
}

// Quantity definition kinds.
type quantKind int

const (
	qComb    quantKind = iota // q == RHS
	qState                    // q'dot == Rate * (RHS - q)
	qGuarded                  // if (Guard = '1') use q == RHS; else q == Alt
)

// Quant is one free-quantity definition. Definitions are topologically
// ordered: RHS and Alt reference only inputs, constants and quantities
// declared strictly earlier (the quantity itself appears only through the
// integrator of a qState).
type Quant struct {
	Name  string
	Kind  quantKind
	RHS   *expr
	Alt   *expr  // qGuarded else-branch
	Rate  string // qState: constant naming the lag rate
	Guard string // qGuarded: controlling bit signal
}

// Proc is an event-driven process: it watches a threshold crossing of an
// analog symbol and drives one bit signal with the crossing state.
type Proc struct {
	Watch  string // input or quantity name
	Thresh string // constant naming the threshold magnitude
	ThNeg  bool   // threshold is -Thresh
	Signal string // bit signal driven by the process
}

// Out is an output port definition.
type Out struct {
	Name  string
	RHS   *expr
	Limit float64 // "limited at" annotation; 0 = none
}

// In is an input port with its stimulus and optional range annotation.
type In struct {
	Name      string
	Wave      Wave
	Annotated bool // emit "range lo to hi"
}

// Const is a named positive real constant.
type Const struct {
	Name string
	Val  float64
}

// Model is the generator's intermediate form: a complete, well-typed VASS
// design plus everything needed to re-render it after mutation.
type Model struct {
	Entity string
	Inputs []*In
	Consts []*Const
	Quants []*Quant
	Procs  []*Proc
	Outs   []*Out

	// TStop and TStep are the transient horizon the assertions are
	// calibrated for.
	TStop, TStep float64
}

func (m *Model) clone() *Model {
	c := &Model{Entity: m.Entity, TStop: m.TStop, TStep: m.TStep}
	for _, in := range m.Inputs {
		v := *in
		c.Inputs = append(c.Inputs, &v)
	}
	for _, k := range m.Consts {
		v := *k
		c.Consts = append(c.Consts, &v)
	}
	for _, q := range m.Quants {
		v := *q
		v.RHS, v.Alt = q.RHS.clone(), q.Alt.clone()
		c.Quants = append(c.Quants, &v)
	}
	for _, p := range m.Procs {
		v := *p
		c.Procs = append(c.Procs, &v)
	}
	for _, o := range m.Outs {
		v := *o
		v.RHS = o.RHS.clone()
		c.Outs = append(c.Outs, &v)
	}
	return c
}

func (m *Model) constVal(name string) (float64, bool) {
	for _, k := range m.Consts {
		if k.Name == name {
			return k.Val, true
		}
	}
	return 0, false
}

// intervals computes the sound value hull of every input, quantity and
// output by forward propagation over the definition order.
func (m *Model) intervals() map[string]interval.Interval {
	iv := make(map[string]interval.Interval, len(m.Inputs)+len(m.Quants)+len(m.Outs))
	for _, in := range m.Inputs {
		iv[in.Name] = in.Wave.iv()
	}
	for _, k := range m.Consts {
		iv[k.Name] = interval.Point(k.Val)
	}
	var eval func(e *expr) interval.Interval
	eval = func(e *expr) interval.Interval {
		switch e.Op {
		case opRef:
			return iv[e.Ref]
		case opInteg:
			for _, in := range m.Inputs {
				if in.Name == e.Ref {
					b, _ := in.Wave.integIV()
					return b
				}
			}
			return interval.Interval{}
		case opAdd:
			return eval(e.A).Add(eval(e.B))
		case opSub:
			return eval(e.A).Sub(eval(e.B))
		case opMul:
			return eval(e.A).Mul(eval(e.B))
		case opNeg:
			return eval(e.A).Neg()
		case opAbs:
			return eval(e.A).Abs()
		}
		return interval.Interval{}
	}
	for _, q := range m.Quants {
		switch q.Kind {
		case qComb:
			iv[q.Name] = eval(q.RHS)
		case qState:
			// s'dot == k*(drive - s) with s(0) = 0 keeps s inside the
			// hull of {0} and the drive's range (a contracting lag is a
			// convex combination of past drive values and the initial
			// state).
			iv[q.Name] = eval(q.RHS).Hull(interval.Point(0))
		case qGuarded:
			iv[q.Name] = eval(q.RHS).Hull(eval(q.Alt))
		}
	}
	for _, o := range m.Outs {
		iv[o.Name] = eval(o.RHS)
	}
	return iv
}

// lit renders a float as a VASS real literal (always with a decimal point
// or exponent) using the shortest round-trip form, so rendering is
// deterministic and re-parseable.
func lit(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// Render prints the model as VASS source text (without assertion pragmas;
// Build prepends those).
func (m *Model) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "entity %s is\n  port (\n", m.Entity)
	var ports []string
	for _, in := range m.Inputs {
		decl := fmt.Sprintf("    quantity %s : in real is voltage", in.Name)
		if in.Annotated {
			r := in.Wave.iv()
			pad := 0.05*r.Span() + 0.05
			decl += fmt.Sprintf(" range %s to %s", lit(r.Lo-pad), lit(r.Hi+pad))
		}
		ports = append(ports, decl)
	}
	for _, o := range m.Outs {
		decl := fmt.Sprintf("    quantity %s : out real is voltage", o.Name)
		if o.Limit > 0 {
			decl += fmt.Sprintf(" limited at %s", lit(o.Limit))
		}
		ports = append(ports, decl)
	}
	b.WriteString(strings.Join(ports, ";\n"))
	b.WriteString("\n  );\nend entity;\n\n")

	fmt.Fprintf(&b, "architecture gen of %s is\n", m.Entity)
	for _, k := range m.Consts {
		fmt.Fprintf(&b, "  constant %s : real := %s;\n", k.Name, lit(k.Val))
	}
	if len(m.Quants) > 0 {
		names := make([]string, len(m.Quants))
		for i, q := range m.Quants {
			names[i] = q.Name
		}
		fmt.Fprintf(&b, "  quantity %s : real;\n", strings.Join(names, ", "))
	}
	if len(m.Procs) > 0 {
		names := make([]string, len(m.Procs))
		for i, p := range m.Procs {
			names[i] = p.Signal
		}
		fmt.Fprintf(&b, "  signal %s : bit;\n", strings.Join(names, ", "))
	}
	b.WriteString("begin\n")
	for _, q := range m.Quants {
		switch q.Kind {
		case qComb:
			fmt.Fprintf(&b, "  %s == %s;\n", q.Name, q.RHS.render(0))
		case qState:
			fmt.Fprintf(&b, "  %s'dot == %s * (%s - %s);\n", q.Name, q.Rate, q.RHS.render(1), q.Name)
		case qGuarded:
			fmt.Fprintf(&b, "  if (%s = '1') use %s == %s;\n  else %s == %s;\n  end use;\n",
				q.Guard, q.Name, q.RHS.render(0), q.Name, q.Alt.render(0))
		}
	}
	for _, o := range m.Outs {
		fmt.Fprintf(&b, "  %s == %s;\n", o.Name, o.RHS.render(0))
	}
	for _, p := range m.Procs {
		th := p.Thresh
		if p.ThNeg {
			th = "-" + th
		}
		fmt.Fprintf(&b, "  process (%s'above(%s)) is begin\n", p.Watch, th)
		fmt.Fprintf(&b, "    if (%s'above(%s) = true) then %s <= '1';\n", p.Watch, th, p.Signal)
		fmt.Fprintf(&b, "    else %s <= '0'; end if;\n", p.Signal)
		fmt.Fprintf(&b, "  end process;\n")
	}
	b.WriteString("end architecture;\n")
	return b.String()
}

// assertions derives sound dense-time properties from the interval
// analysis and the input waveform structure. Every returned line is a
// valid assertlang source; Build validates them by reparsing.
func (m *Model) assertions() []string {
	iv := m.intervals()
	var out []string
	bound := func(name string, r interval.Interval) {
		pad := 0.05*r.Span() + 0.05 + 0.02*r.MaxAbs()
		out = append(out, fmt.Sprintf("bound %s in %s .. %s", name, lit(r.Lo-pad), lit(r.Hi+pad)))
	}
	for _, o := range m.Outs {
		bound(o.Name, iv[o.Name])
	}
	// Waveform-shape assertions attach to outputs that are pure copies of
	// an input (the generator plants such monitor ports): unlike internal
	// nets — whose names pattern folding may rewrite — output ports are
	// stable probe targets in every simulator.
	for _, o := range m.Outs {
		if o.RHS.Op != opRef {
			continue
		}
		for _, in := range m.Inputs {
			if in.Name != o.RHS.Ref {
				continue
			}
			switch w := in.Wave; w.Shape {
			case "sine":
				if w.Freq > 0 {
					// The sine is nonnegative for half of every period,
					// so the longest gap between holding samples is half
					// a period plus sampling slack — well inside 1.5
					// periods.
					out = append(out, fmt.Sprintf("recurrence v(%s) >= 0 every %s", o.Name, lit(1.5/w.Freq)))
				}
			case "step":
				if w.At > 0 && w.At < m.TStop && w.V1 != w.V0 {
					eps := 1e-6 + 0.001*math.Abs(w.V1)
					win := w.At + 0.05*m.TStop
					cmp, lvl := ">=", w.V1-eps
					if w.V1 < w.V0 {
						cmp, lvl = "<=", w.V1+eps
					}
					out = append(out, fmt.Sprintf("eventually v(%s) %s %s within %s", o.Name, cmp, lit(lvl), lit(win)))
				}
			}
		}
	}
	return out
}

// refCounts returns how often each input, quantity and signal name is
// referenced by equations, guards, process watches and outputs.
func (m *Model) refCounts() map[string]int {
	n := make(map[string]int)
	count := func(e *expr) {
		e.walk(func(x *expr) {
			if x.Op == opRef || x.Op == opInteg {
				n[x.Ref]++
			}
		})
	}
	for _, q := range m.Quants {
		count(q.RHS)
		count(q.Alt)
		if q.Kind == qGuarded {
			n[q.Guard]++
		}
	}
	for _, o := range m.Outs {
		count(o.RHS)
	}
	for _, p := range m.Procs {
		n[p.Watch]++
	}
	return n
}

// sortedNames is a deterministic ordering helper for diagnostics.
func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Fuzz target for the VHIF text format: Parse must never panic, and any
// module it accepts must round-trip through Dump — Parse(m.Dump()) succeeds
// and reaches a dump fixed point. Seeds come from the corpus golden VHIF
// dumps plus hand-written edge fragments.
package vhif_test

import (
	"os"
	"path/filepath"
	"testing"

	"vase/internal/gen"
	"vase/internal/vhif"
)

func FuzzVHIFRoundTrip(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("..", "corpus", "testdata", "*.vhif"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no corpus VHIF seeds found: %v", err)
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatalf("read seed %s: %v", path, err)
		}
		f.Add(string(data))
	}
	// Compiled generator specs contribute VHIF shapes beyond the golden
	// corpus: wide fan-in sums, guarded-mux FSMs, long gain chains.
	for i := 0; i < 8; i++ {
		sp := gen.Generate(1, i, gen.MixedSize(i))
		m, err := gen.CompileSpec(sp)
		if err != nil {
			f.Fatalf("generated spec %d failed to compile: %v", i, err)
		}
		f.Add(m.Dump())
	}
	f.Add("")
	f.Add("module m\n")
	f.Add("module m\nport in quantity a [freq=0:1e6 range=-1:1]\n")
	f.Add("module m\ngraph main\ninput a out=a.out\ngain g param=2 in=(a.out) out=g.out\n")
	f.Add("module m\nfsm f\nstate start\nx := a + b\narc start -> start when x > 1\n")
	f.Add("module m\ncontrol c -> net\n")

	f.Fuzz(func(t *testing.T, text string) {
		m, err := vhif.Parse(text)
		if err != nil {
			return // rejection is fine; panics are not
		}
		d1 := m.Dump()
		m2, err := vhif.Parse(d1)
		if err != nil {
			t.Fatalf("accepted module failed to re-parse its own dump: %v\n--- dump ---\n%s", err, d1)
		}
		if d2 := m2.Dump(); d2 != d1 {
			t.Fatalf("dump not a fixed point\n--- first ---\n%s\n--- second ---\n%s", d1, d2)
		}
	})
}

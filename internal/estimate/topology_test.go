package estimate

import (
	"testing"

	"vase/internal/library"
)

func TestOTASmallerThanTwoStage(t *testing.T) {
	spec := DefaultSpec()
	spec.GainDB = 40
	ota, err := DesignOTA(SCN20, spec)
	if err != nil {
		t.Fatalf("ota: %v", err)
	}
	two, err := DesignOpAmp(SCN20, spec)
	if err != nil {
		t.Fatalf("two-stage: %v", err)
	}
	if ota.AreaUm2 >= two.AreaUm2 {
		t.Errorf("OTA (%g) should be smaller than two-stage (%g): no compensation cap",
			ota.AreaUm2, two.AreaUm2)
	}
}

func TestOTARejectsHighGain(t *testing.T) {
	spec := DefaultSpec()
	spec.GainDB = 60
	if _, err := DesignOTA(SCN20, spec); err == nil {
		t.Error("60 dB should exceed a single stage")
	}
}

func TestOTARejectsResistiveLoad(t *testing.T) {
	spec := DefaultSpec()
	spec.GainDB = 40
	spec.LoadRes = 270
	if _, err := DesignOTA(SCN20, spec); err == nil {
		t.Error("an OTA cannot drive a resistive load")
	}
}

func TestSelectTopologyPicksOTAForDecisions(t *testing.T) {
	spec := DefaultSpec()
	spec.GainDB = 40
	topo, d, err := SelectTopology(SCN20, spec)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if topo != SingleStageOTA {
		t.Errorf("selected %v, want single-stage OTA for a 40 dB spec", topo)
	}
	if d.AreaUm2 <= 0 {
		t.Error("empty design")
	}
}

func TestSelectTopologyPicksTwoStageForPrecision(t *testing.T) {
	spec := DefaultSpec() // 60 dB
	topo, _, err := SelectTopology(SCN20, spec)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if topo != TwoStage {
		t.Errorf("selected %v, want two-stage for 60 dB", topo)
	}
}

func TestSelectTopologyPropagatesErrors(t *testing.T) {
	if _, _, err := SelectTopology(SCN20, OpAmpSpec{}); err == nil {
		t.Error("empty spec should fail both topologies")
	}
}

func TestComparatorCellUsesOTA(t *testing.T) {
	est, err := EstimateCell(SCN20, DefaultSystemSpec(), CellInstance{
		Cell: library.Get(library.CellComparator), Gain: 1, Inputs: 1,
	})
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if est.OpAmps[0].Topology != SingleStageOTA {
		t.Errorf("comparator realized as %v, want OTA", est.OpAmps[0].Topology)
	}
}

func TestAmplifierCellUsesTwoStage(t *testing.T) {
	est, err := EstimateCell(SCN20, DefaultSystemSpec(), CellInstance{
		Cell: library.Get(library.CellSummingAmp), Gain: 4, Inputs: 2,
	})
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if est.OpAmps[0].Topology != TwoStage {
		t.Errorf("summing amp realized as %v, want two-stage", est.OpAmps[0].Topology)
	}
}

func TestMinOTAAreaBelowMinArea(t *testing.T) {
	if MinOTAArea(SCN20) >= MinArea(SCN20) {
		t.Errorf("OTA floor (%g) should be below the two-stage floor (%g)",
			MinOTAArea(SCN20), MinArea(SCN20))
	}
}

func TestBoundSoundnessWithTopologies(t *testing.T) {
	// Every selectable design's area is at least its class floor: the
	// class-aware bounding rule stays admissible.
	for _, gain := range []float64{40, 45} {
		spec := DefaultSpec()
		spec.GainDB = gain
		_, d, err := SelectTopology(SCN20, spec)
		if err != nil {
			continue
		}
		if d.AreaUm2 < MinOTAArea(SCN20) {
			t.Errorf("design at %g dB smaller than the OTA floor: %g", gain, d.AreaUm2)
		}
	}
	spec := DefaultSpec()
	_, d, err := SelectTopology(SCN20, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.AreaUm2 < MinArea(SCN20) {
		t.Errorf("two-stage design smaller than its floor: %g < %g", d.AreaUm2, MinArea(SCN20))
	}
}

package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"vase/internal/pipeline"
)

// metrics holds the server-side counters; pipeline-side counters (per-stage
// hits/misses and compute-latency histograms) live in pipeline.Stats and
// are rendered alongside them by the /metrics handler.
type metrics struct {
	shed         atomic.Uint64 // 429: queue full
	queueTimeout atomic.Uint64 // 503: queued past QueueWait
	deadline     atomic.Uint64 // 504: request deadline while queued/working
	degraded     atomic.Uint64 // 206: anytime answers under expired deadlines
	inflight     atomic.Int64

	mu       sync.Mutex
	requests map[string]uint64 // "endpoint code" -> count
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[string]uint64)}
}

func (m *metrics) request(endpoint string, status int) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s %d", endpoint, status)]++
	m.mu.Unlock()
}

// handleMetrics renders every counter in the text exposition format: one
// `name{labels} value` line per sample, `# HELP`/`# TYPE`-free on purpose
// (the format is for scraping and grepping in CI, not a registry).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "metrics requires GET", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")

	// Server counters.
	fmt.Fprintf(w, "vased_shed_total %d\n", s.met.shed.Load())
	fmt.Fprintf(w, "vased_queue_timeout_total %d\n", s.met.queueTimeout.Load())
	fmt.Fprintf(w, "vased_deadline_total %d\n", s.met.deadline.Load())
	fmt.Fprintf(w, "vased_degraded_total %d\n", s.met.degraded.Load())
	fmt.Fprintf(w, "vased_inflight %d\n", s.met.inflight.Load())
	fmt.Fprintf(w, "vased_queued %d\n", s.adm.depth())
	fmt.Fprintf(w, "vased_workers_available %d\n", s.sched.available())
	fmt.Fprintf(w, "vased_worker_budget %d\n", s.cfg.WorkerBudget)

	s.met.mu.Lock()
	keys := make([]string, 0, len(s.met.requests))
	for k := range s.met.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var endpoint string
		var code int
		fmt.Sscanf(k, "%s %d", &endpoint, &code)
		fmt.Fprintf(w, "vased_requests_total{endpoint=%q,code=\"%d\"} %d\n",
			endpoint, code, s.met.requests[k])
	}
	s.met.mu.Unlock()

	// Pipeline counters: shared-cache effectiveness per stage.
	st := s.pipe.Stats()
	for stage := pipeline.Stage(0); stage < pipeline.NumStages; stage++ {
		c := st.Stage(stage)
		name := stage.String()
		for _, kv := range []struct {
			kind  string
			count uint64
		}{
			{"mem_hit", c.Hits},
			{"disk_hit", c.DiskHits},
			{"shared", c.Shared},
			{"miss", c.Misses},
			{"error", c.Errors},
			{"degraded", c.Degraded},
		} {
			fmt.Fprintf(w, "vase_stage_requests_total{stage=%q,kind=%q} %d\n",
				name, kv.kind, kv.count)
		}
		fmt.Fprintf(w, "vase_stage_compute_seconds_sum{stage=%q} %g\n",
			name, c.ComputeTime.Seconds())

		// Compute-latency histogram, cumulative buckets as Prometheus
		// expects: bucket i counts observations <= bound i.
		h := st.Latency[stage]
		bounds := pipeline.HistBounds()
		var cum uint64
		for i, b := range bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(w, "vase_stage_compute_seconds_bucket{stage=%q,le=%q} %d\n",
				name, fmt.Sprintf("%g", b.Seconds()), cum)
		}
		cum += h.Buckets[len(bounds)]
		fmt.Fprintf(w, "vase_stage_compute_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "vase_stage_compute_seconds_count{stage=%q} %d\n", name, h.Count())
	}

	if bytes, files, ok := s.pipe.DiskUsage(); ok {
		fmt.Fprintf(w, "vase_disk_cache_bytes %d\n", bytes)
		fmt.Fprintf(w, "vase_disk_cache_files %d\n", files)
	}
}

package server

import (
	"net/http"
	"strings"
	"testing"
)

func TestProjectDiagnosticsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	body := map[string]any{
		"files": []map[string]any{
			{"name": "ent.vhd", "source": "entity amp is\n  port (quantity vin : in real;\n        quantity vout : out real);\nend entity amp;\n"},
			{"name": "arch.vhd", "source": "architecture behav of amp is\nbegin\n  vout == 2.0 * vin;\nend architecture behav;\n"},
		},
	}
	rec, out := post(t, s, "/v1/project/diagnostics", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	units, _ := out["units"].([]any)
	if len(units) != 1 {
		t.Fatalf("units = %v, want one cross-file unit", out["units"])
	}
	u := units[0].(map[string]any)
	if u["entity"] != "amp" || u["file"] != "arch.vhd" {
		t.Fatalf("unit = %v", u)
	}
	if out["partial"] != false {
		t.Fatalf("partial = %v, want false", out["partial"])
	}

	// Re-post with one edited file: the endpoint surfaces incremental
	// reuse — the untouched file's parse comes from the cache.
	body["files"].([]map[string]any)[1]["source"] = "architecture behav of amp is\nbegin\n  vout == 3.0 * vin;\nend architecture behav;\n"
	rec, out = post(t, s, "/v1/project/diagnostics", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("second status = %d, body %s", rec.Code, rec.Body)
	}
	if out["reused_parses"].(float64) != 1 {
		t.Fatalf("reused_parses = %v, want 1", out["reused_parses"])
	}
}

func TestProjectDiagnosticsBrokenFile(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := post(t, s, "/v1/project/diagnostics", map[string]any{
		"files": []map[string]any{
			{"name": "broken.vhd", "source": "entity amp is\n  port (quantity vin : in real)\nend entity amp;\n"},
		},
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", rec.Code, rec.Body)
	}
	if out["partial"] != true {
		t.Fatalf("partial = %v, want true", out["partial"])
	}
	diags, _ := out["diagnostics"].([]any)
	if len(diags) == 0 {
		t.Fatalf("no structured diagnostics in %s", rec.Body)
	}
	if errs := out["errors"].(float64); errs == 0 {
		t.Fatalf("errors = %v, want > 0", out["errors"])
	}
}

func TestProjectDiagnosticsValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, _ := post(t, s, "/v1/project/diagnostics", map[string]any{"files": []map[string]any{}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty files: status = %d, want 400", rec.Code)
	}
	rec, _ = post(t, s, "/v1/project/diagnostics", map[string]any{
		"files": []map[string]any{
			{"name": "a.vhd", "source": ""},
			{"name": "a.vhd", "source": ""},
		},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate names: status = %d, want 400", rec.Code)
	}
}

// TestParsePartialASTSummary: a syntax error on /v1/parse yields the full
// diagnostics list plus a summary of what the recovering parser salvaged.
func TestParsePartialASTSummary(t *testing.T) {
	s := newTestServer(t, Config{})
	broken := strings.Replace(mixerSrc, "3.0 * a + 2.0 * b;", "3.0 * a + ;", 1)
	rec, out := post(t, s, "/v1/parse", map[string]any{"name": "mixer.vhd", "source": broken})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", rec.Code, rec.Body)
	}
	if _, ok := out["diagnostics"]; !ok {
		t.Fatalf("error response lacks diagnostics: %s", rec.Body)
	}
	sum, ok := out["partial_ast"].(map[string]any)
	if !ok {
		t.Fatalf("error response lacks partial_ast: %s", rec.Body)
	}
	if sum["entities"].(float64) != 1 || sum["architectures"].(float64) != 1 {
		t.Fatalf("partial_ast = %v, want the entity and architecture to survive", sum)
	}
	if sum["partial"] != true || sum["error_nodes"].(float64) == 0 {
		t.Fatalf("partial_ast = %v, want partial with error nodes", sum)
	}
}

// TestLintPartialASTSummary: same contract on /v1/lint for source input.
func TestLintPartialASTSummary(t *testing.T) {
	s := newTestServer(t, Config{})
	broken := strings.Replace(mixerSrc, "3.0 * a + 2.0 * b;", "3.0 * a + ;", 1)
	rec, out := post(t, s, "/v1/lint", map[string]any{"name": "mixer.vhd", "source": broken})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", rec.Code, rec.Body)
	}
	if _, ok := out["partial_ast"]; !ok {
		t.Fatalf("error response lacks partial_ast: %s", rec.Body)
	}
}

// Package lsp implements a Language Server Protocol server for VASS over
// any stream transport (stdio in cmd/vaselsp, in-memory pipes in tests).
//
// The server keeps every open document in one project.Project, so
// cross-file references (an architecture in one buffer, its entity in
// another) resolve exactly as they do in the batch tools, and the
// pipeline's content-addressed memo makes each keystroke re-analyze only
// the units the edit can affect. Diagnostics come from the same
// error-recovering front end as the CLIs: a syntax error never blanks the
// analysis, it yields ERROR-node holes and the sema findings around them.
package lsp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// message is a JSON-RPC 2.0 envelope covering requests, responses and
// notifications (ID is absent on notifications).
type message struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      *json.RawMessage `json:"id,omitempty"`
	Method  string          `json:"method,omitempty"`
	Params  json.RawMessage `json:"params,omitempty"`
	Result  any             `json:"result,omitempty"`
	Error   *respError      `json:"error,omitempty"`
}

type respError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// JSON-RPC error codes the server emits.
const (
	codeParseError     = -32700
	codeMethodNotFound = -32601
	codeInvalidParams  = -32602
)

// conn frames JSON-RPC messages with Content-Length headers, the base
// protocol of the LSP specification. Writes are serialized; reads are
// owned by the single serve loop.
type conn struct {
	in  *bufio.Reader
	mu  sync.Mutex
	out io.Writer
}

func newConn(r io.Reader, w io.Writer) *conn {
	return &conn{in: bufio.NewReader(r), out: w}
}

// read returns the next framed message, or io.EOF at end of stream.
func (c *conn) read() (*message, error) {
	length := -1
	for {
		line, err := c.in.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("lsp: malformed header %q", line)
		}
		if strings.EqualFold(strings.TrimSpace(name), "Content-Length") {
			length, err = strconv.Atoi(strings.TrimSpace(value))
			if err != nil {
				return nil, fmt.Errorf("lsp: bad Content-Length: %v", err)
			}
		}
	}
	if length < 0 {
		return nil, fmt.Errorf("lsp: missing Content-Length header")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(c.in, body); err != nil {
		return nil, err
	}
	var m message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("lsp: bad message body: %v", err)
	}
	return &m, nil
}

// write frames and sends one message.
func (c *conn) write(m *message) error {
	m.JSONRPC = "2.0"
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.out, "Content-Length: %d\r\n\r\n", len(body)); err != nil {
		return err
	}
	_, err = c.out.Write(body)
	return err
}

// reply sends a success response to id.
func (c *conn) reply(id *json.RawMessage, result any) error {
	if result == nil {
		result = json.RawMessage("null")
	}
	return c.write(&message{ID: id, Result: result})
}

// replyError sends an error response to id.
func (c *conn) replyError(id *json.RawMessage, code int, format string, args ...any) error {
	return c.write(&message{ID: id, Error: &respError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// notify sends a server-initiated notification.
func (c *conn) notify(method string, params any) error {
	raw, err := json.Marshal(params)
	if err != nil {
		return err
	}
	return c.write(&message{Method: method, Params: raw})
}

// Receiver: the paper's end-to-end experiment (Figures 2, 7 and 8). The
// telephone receiver module is compiled from its VASS specification,
// synthesized to an op-amp netlist, and simulated at circuit level with a
// deliberately high-amplitude input to expose the 1.5 V output limiting.
package main

import (
	"fmt"
	"log"
	"math"

	"vase"
)

func main() {
	app, err := vase.Benchmark("receiver")
	if err != nil {
		log.Fatal(err)
	}
	design, err := vase.Compile(vase.Source{Name: "receiver.vhd", Text: app.Source})
	if err != nil {
		log.Fatal(err)
	}

	m := design.Metrics()
	fmt.Printf("Table 1 row: %d cont. lines, %d quantities, %d event lines, %d signals | %d blocks, %d states, %d datapath\n",
		m.ContinuousLines, m.Quantities, m.EventLines, m.Signals, m.Blocks, m.States, m.Datapath)

	arch, err := design.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesis: %s (%d op amps, %.0f um^2)\n\n",
		arch.Netlist.Summary(), arch.Netlist.OpAmpCount(), arch.Report.AreaUm2)

	// Small signal: gain switches with line level (automatic line-length
	// compensation).
	for _, level := range []float64{0.05, 0.2} {
		tr, err := design.Simulate(map[string]vase.Waveform{
			"line":  vase.DC(level),
			"local": vase.DC(0),
		}, vase.SimOptions{TStop: 1e-3, TStep: 1e-6})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("line=%.2f V -> earph=%.3f V (gain %.1f)\n",
			level, tr.Final("earph"), tr.Final("earph")/level)
	}

	// Figure 8: circuit-level transient with a 1.5 V peak 1 kHz input.
	res, err := arch.Spice(map[string]vase.Waveform{
		"line":  vase.Sine(1.5, 1e3, 0),
		"local": vase.DC(0),
	}, 3e-3, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	earph := res.V("earph")
	clipP, clipN := math.Inf(-1), math.Inf(1)
	for _, v := range earph {
		clipP = math.Max(clipP, v)
		clipN = math.Min(clipN, v)
	}
	fmt.Printf("\nFigure 8 (circuit level): earph clips at %+.3f V / %+.3f V (paper: +-1.5 V)\n", clipP, clipN)

	// Print a short waveform excerpt.
	fmt.Println("\n  t [ms]    line [V]   earph [V]")
	times := res.Time()
	line := res.V("line")
	for i := 0; i < len(times); i += 150 {
		fmt.Printf("  %6.3f   %+8.4f   %+8.4f\n", times[i]*1e3, line[i], earph[i])
	}
}

package gen

// Shrink minimizes a failing spec to a smaller reproducer: it greedily
// applies model-level reductions (drop quantity suffixes, simplify
// equations, drop outputs, processes and inputs), keeping each mutation
// only if the re-rendered spec still makes the failing check fail. Because
// mutations operate on the model and every candidate re-enters Build
// (whose repair pass restores the everything-declared-is-used invariant),
// the reproducer is again well-typed by construction — it fails for the
// original reason, not because shrinking broke the spec.
//
// fails is the predicate under minimization: a pair's Run function, or any
// func(*Spec) error. The search is bounded by a fixed evaluation budget so
// pathological predicates cannot loop forever.
func Shrink(sp *Spec, fails func(*Spec) error) *Spec {
	budget := 300
	check := func(m *Model) (*Spec, bool) {
		if budget <= 0 {
			return nil, false
		}
		budget--
		cand := m.clone()
		repair(cand)
		if len(cand.Outs) == 0 {
			return nil, false
		}
		s := Build(cand, sp.Seed, sp.Index, sp.Size)
		if fails(s) != nil {
			return s, true
		}
		return nil, false
	}

	best := sp
	improved := true
	for improved && budget > 0 {
		improved = false
		for _, mutate := range []func(*Model) []*Model{
			dropQuantSuffix,
			dropEachQuant,
			dropOutputs,
			dropProcs,
			simplifyQuants,
			dropInputs,
		} {
			for _, cand := range mutate(best.model) {
				if s, ok := check(cand); ok {
					best = s
					improved = true
					break
				}
			}
		}
	}
	return best
}

// dropQuantSuffix proposes truncating the definition list — aggressive
// halvings first, then a single-definition trim. Because definitions are
// topologically ordered, a prefix is always self-consistent; repair
// rewires outputs that referenced the dropped tail.
func dropQuantSuffix(m *Model) []*Model {
	n := len(m.Quants)
	if n == 0 {
		return nil
	}
	var out []*Model
	for _, keep := range []int{n / 2, n - 1} {
		if keep < 0 || keep >= n {
			continue
		}
		c := m.clone()
		dropped := make(map[string]bool)
		for _, q := range c.Quants[keep:] {
			dropped[q.Name] = true
		}
		c.Quants = c.Quants[:keep]
		retarget(c, dropped)
		out = append(out, c)
	}
	return out
}

// dropEachQuant proposes removing each definition individually (suffix
// drops miss failures living in the last definition); references to the
// removed quantity retarget to the first input.
func dropEachQuant(m *Model) []*Model {
	var out []*Model
	for i := len(m.Quants) - 1; i >= 0; i-- {
		c := m.clone()
		dropped := map[string]bool{c.Quants[i].Name: true}
		c.Quants = append(c.Quants[:i], c.Quants[i+1:]...)
		retarget(c, dropped)
		out = append(out, c)
	}
	return out
}

// dropOutputs proposes removing each non-sink output (repair rebuilds the
// sink, so the design keeps at least one port).
func dropOutputs(m *Model) []*Model {
	var out []*Model
	for i, o := range m.Outs {
		if o.Name == "ysink" {
			continue
		}
		c := m.clone()
		c.Outs = append(c.Outs[:i], c.Outs[i+1:]...)
		out = append(out, c)
	}
	return out
}

// dropProcs proposes removing each process; guarded definitions that lose
// their controlling signal collapse to their then-branch.
func dropProcs(m *Model) []*Model {
	var out []*Model
	for i := range m.Procs {
		c := m.clone()
		sig := c.Procs[i].Signal
		c.Procs = append(c.Procs[:i], c.Procs[i+1:]...)
		stillDriven := make(map[string]bool)
		for _, p := range c.Procs {
			stillDriven[p.Signal] = true
		}
		for _, q := range c.Quants {
			if q.Kind == qGuarded && q.Guard == sig && !stillDriven[sig] {
				q.Kind = qComb
				q.Guard, q.Alt = "", nil
			}
		}
		out = append(out, c)
	}
	return out
}

// simplifyQuants proposes replacing each structurally interesting
// definition with the plainest one (a combinational copy of the first
// input), localizing which definition the failure needs.
func simplifyQuants(m *Model) []*Model {
	if len(m.Inputs) == 0 {
		return nil
	}
	first := m.Inputs[0].Name
	var out []*Model
	for i, q := range m.Quants {
		if q.Kind == qComb && q.RHS.Op == opRef && q.RHS.Ref == first {
			continue // already minimal
		}
		c := m.clone()
		cq := c.Quants[i]
		wasState := cq.Kind == qState
		cq.Kind, cq.RHS, cq.Alt = qComb, ref(first), nil
		cq.Rate, cq.Guard = "", ""
		if wasState {
			// Only inputs and integrator states may be watched by
			// processes; a state demoted to combinational retargets its
			// watchers to the first input.
			for _, p := range c.Procs {
				if p.Watch == cq.Name {
					p.Watch = first
				}
			}
		}
		out = append(out, c)
	}
	return out
}

// dropInputs proposes removing each input beyond the first; references to
// it retarget to the first input.
func dropInputs(m *Model) []*Model {
	if len(m.Inputs) <= 1 {
		return nil
	}
	var out []*Model
	for i := 1; i < len(m.Inputs); i++ {
		c := m.clone()
		dropped := map[string]bool{c.Inputs[i].Name: true}
		c.Inputs = append(c.Inputs[:i], c.Inputs[i+1:]...)
		retarget(c, dropped)
		out = append(out, c)
	}
	return out
}

// retarget rewrites references to dropped symbols so the model stays
// closed: expression references fall back to the first input (or the
// first surviving quantity), process watches to the first input, and
// guarded definitions whose guard vanished collapse to combinational.
func retarget(m *Model, dropped map[string]bool) {
	fallback := ""
	if len(m.Inputs) > 0 {
		fallback = m.Inputs[0].Name
	} else if len(m.Quants) > 0 {
		fallback = m.Quants[0].Name
	}
	fix := func(e *expr) {
		e.walk(func(x *expr) {
			if (x.Op == opRef || x.Op == opInteg) && dropped[x.Ref] {
				x.Op, x.Ref = opRef, fallback
			}
		})
	}
	for _, q := range m.Quants {
		fix(q.RHS)
		fix(q.Alt)
	}
	for _, o := range m.Outs {
		fix(o.RHS)
	}
	kept := m.Procs[:0]
	for _, p := range m.Procs {
		if dropped[p.Watch] {
			if fallback == "" {
				continue
			}
			p.Watch = fallback
		}
		kept = append(kept, p)
	}
	m.Procs = kept
}

package pipeline

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// diskStore is the on-disk artifact cache: one file per (stage, key), named
// <stage>-<keyhex>.art. Artifacts are content-addressed, so files are
// immutable once written and a directory can be shared by concurrent
// processes — the worst race outcome is two writers producing the same
// bytes.
//
// With a byte budget (maxBytes > 0) the store evicts least-recently-used
// artifacts when a write would exceed the budget: reads touch the
// artifact's mtime (best effort), so eviction order approximates LRU. The
// in-memory size tally is resynchronized from a directory scan on every
// eviction pass, so concurrent processes sharing the directory drift only
// between evictions.
type diskStore struct {
	dir      string
	maxBytes int64

	mu   sync.Mutex
	size int64 // tracked bytes of *.art files; see resync note above
}

// tmpPrefix names in-progress atomic writes. A crash between CreateTemp and
// the rename orphans such a file; sweepStaleTemps reclaims them.
const tmpPrefix = "tmp-"

// staleTempAge is how old a temp file must be before the open-time sweep
// treats it as an orphan of a crashed writer rather than a live write in
// another process. Writes are small and take milliseconds; ten minutes is
// conservatively far above any live write.
const staleTempAge = 10 * time.Minute

func newDiskStore(dir string, maxBytes int64) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &diskStore{dir: dir, maxBytes: maxBytes}
	d.sweepStaleTemps(time.Now()) //vase:walltime (orphan-age threshold)
	d.size = d.scanSize()
	return d, nil
}

// sweepStaleTemps removes temp files left behind by writers that crashed
// between the temp write and the atomic rename. Only files older than
// staleTempAge go: a younger temp may be a live write in another process
// sharing the directory.
func (d *diskStore) sweepStaleTemps(now time.Time) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(info.ModTime()) >= staleTempAge {
			_ = os.Remove(filepath.Join(d.dir, e.Name()))
		}
	}
}

// scanSize sums the bytes of the completed artifacts in the directory.
func (d *diskStore) scanSize() int64 {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".art") || strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// usage reports the tracked byte size and the artifact count.
func (d *diskStore) usage() (int64, int) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, 0
	}
	var total int64
	files := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".art") || strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
			files++
		}
	}
	return total, files
}

func (d *diskStore) path(st Stage, k Key) string {
	return filepath.Join(d.dir, st.String()+"-"+k.String()+".art")
}

func (d *diskStore) read(st Stage, k Key) ([]byte, bool) {
	path := d.path(st, k)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if d.maxBytes > 0 {
		// Touch the artifact so the byte-budget eviction approximates LRU
		// instead of FIFO. Best effort: a failed touch only worsens the
		// eviction order, never correctness.
		now := time.Now() //vase:walltime (LRU eviction recency)
		_ = os.Chtimes(path, now, now)
	}
	return data, true
}

// write stores an artifact atomically (temp file + rename), so a reader in
// another process never observes a half-written artifact. Under a byte
// budget the store evicts LRU artifacts first so the write fits; an
// artifact larger than the whole budget is skipped outright.
func (d *diskStore) write(st Stage, k Key, data []byte) error {
	if d.maxBytes > 0 {
		if int64(len(data)) > d.maxBytes {
			return nil // can never fit; storing it would evict everything else
		}
		d.mu.Lock()
		if d.size+int64(len(data)) > d.maxBytes {
			d.evict(d.maxBytes - int64(len(data)))
		}
		d.size += int64(len(data))
		d.mu.Unlock()
	}
	tmp, err := os.CreateTemp(d.dir, tmpPrefix+"*.art")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(st, k)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// evict removes least-recently-used artifacts until the store holds at most
// budget bytes. Called with d.mu held; resynchronizes d.size from the
// directory, so drift from concurrent processes self-corrects here.
func (d *diskStore) evict(budget int64) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type artifact struct {
		name  string
		size  int64
		mtime time.Time
	}
	var arts []artifact
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".art") || strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		arts = append(arts, artifact{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(arts, func(i, j int) bool {
		if !arts[i].mtime.Equal(arts[j].mtime) {
			return arts[i].mtime.Before(arts[j].mtime)
		}
		return arts[i].name < arts[j].name // tie-break for a stable order
	})
	for _, a := range arts {
		if total <= budget {
			break
		}
		if os.Remove(filepath.Join(d.dir, a.name)) == nil {
			total -= a.size
		}
	}
	d.size = total
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"vase/internal/sim"
	"vase/internal/vhif"
)

// streamSimulation runs the transient with Server-Sent Events: a `header`
// event naming the streamed columns, one `sample` event per recorded step
// (decimated by every), and a terminal `done` event (or `error` if the run
// fails after the stream has started — the status line is already on the
// wire by then, so the error must travel in-band).
//
// The sample events ride the simulator's OnSample hook, so a client sees
// waveforms while the integration is still running — including every sample
// of a run that a deadline later truncates.
func (s *Server) streamSimulation(ctx context.Context, w http.ResponseWriter, m *vhif.Module, inputs map[string]sim.Source, every int, opts sim.Options) *httpError {
	flusher, ok := w.(http.Flusher)
	if !ok {
		return errorf(http.StatusNotImplemented, "streaming unsupported by this connection")
	}
	// Columns: the module's ports, in declaration order. The probe resolves
	// any net, so inputs stream alongside outputs.
	var columns []string
	for _, p := range m.Ports {
		columns = append(columns, p.Name)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	s.met.request("simulate", http.StatusOK)

	event := func(name string, payload any) {
		data, err := json.Marshal(payload)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
		flusher.Flush()
	}
	event("header", map[string]any{"signals": columns})

	samples := 0
	opts.OnSample = func(t float64, probe func(name string) (float64, bool)) {
		samples++
		if (samples-1)%every != 0 {
			return
		}
		values := make([]any, len(columns))
		for i, name := range columns {
			if v, ok := probe(name); ok {
				values[i] = v
			}
		}
		event("sample", map[string]any{"t": t, "v": values})
	}

	tr, err := sim.SimulateModuleContext(ctx, m, inputs, opts)
	if err != nil {
		event("error", map[string]any{"error": err.Error()})
		return nil
	}
	if tr.Truncated {
		s.met.degraded.Add(1)
	}
	event("done", map[string]any{"truncated": tr.Truncated, "samples": samples})
	return nil
}

package ast_test

import (
	"strings"
	"testing"

	"vase/internal/ast"
	"vase/internal/parser"
)

// richSource exercises every printable construct: packages with functions,
// generics, all sequential and concurrent statement forms, annotations,
// labels, case arms, loops.
const richSource = `
package helpers is
  constant k : real := 2.5;
  function scale(x : real) return real;
end package;

package body helpers is
  function scale(x : real) return real is
    variable t : real := 1.0;
  begin
    t := k * x;
    return t;
  end function;
end package body;

entity rich is
  generic (g0 : real := 1.0);
  port (
    quantity a : in real is voltage is frequency 10.0 to 100.0;
    quantity b : in real is current is impedance 50.0;
    quantity y : out real is voltage limited at 1.5 drives 270.0 at 0.285 peak;
    signal s : out bit
  );
end entity;

architecture full of rich is
  constant c2 : real := 4.0;
  quantity q1, q2 : real;
  signal m : bit;
begin
  lbl1: q1 == a * c2 + abs b;
  if (m = '1') use
    q2 == q1;
  elsif (m = '0') use
    q2 == -q1;
  else
    q2 == 2.0 * q1;
  end use;
  case m use
    when '0' => y == q2;
    when others => y == q2 + 1.0;
  end case;
  procedural is
    variable acc : real;
  begin
    acc := a ** 2;
    for i in 1 to 3 loop
      acc := acc + scale(a) * i;
    end loop;
    while acc > 1.0 loop
      acc := acc * 0.5;
    end loop;
    if acc > 0.5 then
      acc := acc - 0.1;
    elsif acc > 0.2 then
      acc := acc - 0.05;
    else
      null;
    end if;
  end procedural;
  process (a'above(0.5), b'above(0.1)) is
    variable n : real;
  begin
    n := 1.0;
    if (a'above(0.5) = true) then
      m <= '1'; s <= '1';
    else
      m <= '0'; s <= '0';
    end if;
  end process;
end architecture;
`

// TestPrinterRoundTripRich verifies the printer's output reparses to a tree
// that prints identically (idempotence) for the full construct set.
func TestPrinterRoundTripRich(t *testing.T) {
	df, err := parser.Parse("rich.vhd", richSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	printed := ast.FileString(df)
	df2, err := parser.Parse("printed.vhd", printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	printed2 := ast.FileString(df2)
	if printed != printed2 {
		t.Errorf("printer not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
	// Structure is preserved.
	if len(df2.Units) != len(df.Units) {
		t.Errorf("units = %d, want %d", len(df2.Units), len(df.Units))
	}
	for _, want := range []string{
		"package helpers is",
		"package body helpers is",
		"function scale(",
		"lbl1: q1 ==",
		"elsif (m = '0') use",
		"case m use",
		"when others =>",
		"procedural is",
		"for i in 1 to 3 loop",
		"while acc > 1.0 loop",
		"process (a'above(0.5), b'above(0.1)) is",
		"is limited at 1.5",
		"is drives 270",
		"is frequency 10",
		"is impedance 50",
		"null;",
		"return t;",
	} {
		if !strings.Contains(printed, want) {
			t.Errorf("printed output missing %q:\n%s", want, printed)
		}
	}
}

// TestPrinterDowntoRange checks downto direction survives printing.
func TestPrinterDowntoRange(t *testing.T) {
	src := `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  procedural is
    variable s : real;
  begin
    s := 0.0 * a;
    for i in 3 downto 1 loop
      s := s + a;
    end loop;
    y := s;
  end procedural;
end architecture;`
	df, err := parser.Parse("d.vhd", src)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.FileString(df)
	if !strings.Contains(printed, "for i in 3 downto 1 loop") {
		t.Errorf("downto lost:\n%s", printed)
	}
	if _, err := parser.Parse("p.vhd", printed); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

// Package server implements vased, the VASE synthesis service: an HTTP/JSON
// front over one shared internal/pipeline.Pipeline, so every request — from
// any client — goes through the same content-addressed cache and
// single-flight deduplication that the CLIs use.
//
// Endpoints (all v1 requests are POST with a JSON body):
//
//	/v1/parse       front end: VASS -> VHIF (+ Table 1 metrics)
//	/v1/lint        synthesizability linter over VASS or serialized VHIF
//	/v1/project/diagnostics
//	                multi-file check with the error-recovering front end:
//	                every diagnostic across the file set, plus per-unit
//	                cache-reuse counters (incremental re-analysis)
//	/v1/synthesize  full flow: front end + branch-and-bound architecture
//	                generation under a per-request deadline
//	/v1/simulate    behavioral transient simulation; "stream": true switches
//	                the response to Server-Sent Events, one event per sample
//	/metrics        text-format counters: per-stage latency histograms,
//	                hit/shed/degrade counters (GET)
//	/healthz        liveness (GET)
//
// Server-only machinery on top of the pipeline:
//
//   - Admission control: at most MaxConcurrent requests run; up to
//     QueueDepth more wait up to QueueWait for a slot. Beyond that the
//     server sheds load with 429 + Retry-After rather than queueing
//     unboundedly (a saturated queue would miss every deadline anyway).
//   - Worker scheduling: synthesize requests lease branch-and-bound workers
//     from a shared budget, so one large request cannot monopolize every
//     core while others starve; an out-of-budget request degrades to a
//     sequential search instead of blocking.
//   - Deadlines as SLOs: every request runs under a deadline (client-chosen,
//     clamped to MaxDeadline). The anytime synthesis contract turns an
//     expired deadline into the best incumbent netlist with "degraded":
//     true and HTTP 206 — explicit load-shedding, and the pipeline never
//     caches such results.
//
// HTTP statuses follow the CLI exit-code contract (internal/exitcode):
// 200 = exit 0, 400 = exit 2 (bad request), 422 = exit 1 (the work failed),
// 206 = exit 3 (an answer, but not a proven/complete one). 429/503/504 are
// transport-level outcomes with no CLI analogue.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"vase/internal/mapper"
	"vase/internal/pipeline"
	"vase/internal/project"
)

// Config configures a Server. The zero value of every field selects a
// sensible default; Pipeline is required.
type Config struct {
	// Pipeline is the shared compilation/synthesis pipeline. Required.
	Pipeline *pipeline.Pipeline
	// MaxConcurrent bounds simultaneously-running requests
	// (0 = runtime.GOMAXPROCS(0)).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a run slot
	// (0 = 4*MaxConcurrent; negative = no queue, shed immediately).
	QueueDepth int
	// QueueWait bounds how long a queued request waits before the server
	// answers 503 (0 = 2s).
	QueueWait time.Duration
	// DefaultDeadline applies to requests that do not choose a deadline
	// (0 = 30s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-chosen deadlines (0 = 5m).
	MaxDeadline time.Duration
	// WorkerBudget is the shared branch-and-bound worker pool arbitrated
	// across concurrent synthesize requests (0 = runtime.GOMAXPROCS(0)).
	WorkerBudget int
	// MaxBodyBytes caps request bodies (0 = 4 MiB).
	MaxBodyBytes int64
}

func (c *Config) fillDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxConcurrent
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = mapper.EffectiveWorkers(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
}

// Server is the vased HTTP handler. Construct with New.
type Server struct {
	cfg   Config
	pipe  *pipeline.Pipeline
	proj  *project.Project
	adm   *admission
	sched *scheduler
	met   *metrics
	mux   *http.ServeMux
}

// New builds a Server over the given pipeline.
func New(cfg Config) (*Server, error) {
	if cfg.Pipeline == nil {
		return nil, fmt.Errorf("server: Config.Pipeline is required")
	}
	cfg.fillDefaults()
	s := &Server{
		cfg:   cfg,
		pipe:  cfg.Pipeline,
		proj:  project.New(cfg.Pipeline),
		adm:   newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.QueueWait),
		sched: newScheduler(cfg.WorkerBudget),
		met:   newMetrics(),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/parse", s.admitted("parse", s.handleParse))
	s.mux.HandleFunc("/v1/lint", s.admitted("lint", s.handleLint))
	s.mux.HandleFunc("/v1/project/diagnostics", s.admitted("project", s.handleProjectDiagnostics))
	s.mux.HandleFunc("/v1/synthesize", s.admitted("synthesize", s.handleSynthesize))
	s.mux.HandleFunc("/v1/simulate", s.admitted("simulate", s.handleSimulate))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// httpError carries an error response: status, message, and an optional
// Retry-After hint for load-shedding statuses.
type httpError struct {
	status     int
	msg        string
	retryAfter int // seconds; 0 = no Retry-After header
	// extra fields are merged into the error JSON (e.g. diagnostics).
	extra map[string]any
}

func errorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// admitted wraps a handler with method filtering, admission control, and
// per-endpoint accounting. The handler returns nil on success (it has
// written the response) or an *httpError.
func (s *Server) admitted(endpoint string, h func(w http.ResponseWriter, r *http.Request) *httpError) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.fail(w, endpoint, errorf(http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path))
			return
		}
		release, herr := s.adm.admit(r.Context())
		if herr != nil {
			switch herr.status {
			case http.StatusTooManyRequests:
				s.met.shed.Add(1)
			case http.StatusServiceUnavailable:
				s.met.queueTimeout.Add(1)
			}
			s.fail(w, endpoint, herr)
			return
		}
		defer release()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if herr := h(w, r); herr != nil {
			s.fail(w, endpoint, herr)
		}
	}
}

// deadline resolves a client-requested timeout (milliseconds, 0 = default)
// against the server's clamp.
func (s *Server) deadline(timeoutMS int) time.Duration {
	d := s.cfg.DefaultDeadline
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

func (s *Server) fail(w http.ResponseWriter, endpoint string, herr *httpError) {
	if herr.status == http.StatusGatewayTimeout {
		s.met.deadline.Add(1)
	}
	if herr.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", herr.retryAfter))
	}
	body := map[string]any{"error": herr.msg}
	for k, v := range herr.extra {
		body[k] = v
	}
	s.reply(w, endpoint, herr.status, body)
}

// reply writes a JSON response and records the (endpoint, status) counter.
func (s *Server) reply(w http.ResponseWriter, endpoint string, status int, body any) {
	s.met.request(endpoint, status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// readJSON decodes a request body strictly: unknown fields are a client
// error, mirroring how the CLIs reject unknown flags (exit 2 -> 400).
func readJSON(r *http.Request, dst any) *httpError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return errorf(http.StatusBadRequest, "request body: %v", err)
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// Public-API surface of the anytime contract: Synthesize under a context,
// cancellation of Compile/Lint, and truncated simulations.
package vase_test

import (
	"context"
	"testing"
	"time"

	"vase"
)

// isolated returns a fresh pipeline so the cancellation contract is tested
// against a real computation — the shared default pipeline could serve a
// cached (complete) result and mask it.
func isolated(t *testing.T) *vase.Pipeline {
	t.Helper()
	p, err := vase.NewPipeline(vase.PipelineOptions{})
	if err != nil {
		t.Fatalf("new pipeline: %v", err)
	}
	return p
}

func TestSynthesizeCancelledReturnsNonoptimal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	arch, err := vase.SynthesizeVia(ctx, isolated(t), vase.Source{Name: "mixer.vhd", Text: mixerSrc},
		vase.DefaultSynthesisOptions())
	if err != nil {
		t.Fatalf("cancelled Synthesize failed instead of returning incumbent: %v", err)
	}
	if !arch.Nonoptimal {
		t.Error("cancelled Synthesize did not set Nonoptimal")
	}
	if arch.Netlist.OpAmpCount() < 1 {
		t.Error("incumbent has no op amps")
	}
}

func TestSynthesizeDeadlineOption(t *testing.T) {
	// An ample deadline changes nothing: same netlist, Nonoptimal unset.
	opts := vase.DefaultSynthesisOptions()
	arch, err := vase.Synthesize(context.Background(), vase.Source{Name: "mixer.vhd", Text: mixerSrc}, opts)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	opts.Deadline = time.Hour
	bounded, err := vase.Synthesize(context.Background(), vase.Source{Name: "mixer.vhd", Text: mixerSrc}, opts)
	if err != nil {
		t.Fatalf("synthesize with deadline: %v", err)
	}
	if bounded.Nonoptimal {
		t.Error("ample deadline marked result Nonoptimal")
	}
	if a, b := arch.Netlist.Dump(), bounded.Netlist.Dump(); a != b {
		t.Errorf("deadline changed the netlist:\n--- unbounded ---\n%s\n--- bounded ---\n%s", a, b)
	}
}

func TestCompileContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := vase.CompileVia(ctx, isolated(t), vase.Source{Name: "mixer.vhd", Text: mixerSrc}); err == nil {
		t.Fatal("cancelled CompileContext succeeded")
	}
}

func TestLintContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := vase.LintVia(ctx, isolated(t), vase.Source{Name: "mixer.vhd", Text: mixerSrc}, vase.LintOptions{}); err == nil {
		t.Fatal("cancelled LintContext succeeded")
	}
	// An open context lints normally.
	if _, err := vase.LintContext(context.Background(),
		vase.Source{Name: "mixer.vhd", Text: mixerSrc}, vase.LintOptions{}); err != nil {
		t.Fatalf("background LintContext failed: %v", err)
	}
}

func TestACContextTruncates(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	arch, err := d.Synthesize()
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp, err := arch.ACContext(ctx, "a", 10, 1e6, 16)
	if err != nil {
		t.Fatalf("cancelled AC failed instead of truncating: %v", err)
	}
	if !resp.Truncated {
		t.Error("cancelled AC sweep did not set Truncated")
	}
	if len(resp.Freqs) != 0 {
		t.Errorf("cancelled-before-start sweep holds %d points, want 0", len(resp.Freqs))
	}
	// A live context sweeps all points.
	full, err := arch.ACContext(context.Background(), "a", 10, 1e6, 16)
	if err != nil {
		t.Fatalf("AC: %v", err)
	}
	if full.Truncated || len(full.Freqs) != 16 {
		t.Errorf("full sweep: truncated=%v points=%d, want 16 untruncated", full.Truncated, len(full.Freqs))
	}
}

func TestSimulateContextTruncates(t *testing.T) {
	d, err := vase.Compile(vase.Source{Name: "mixer.vhd", Text: mixerSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inputs := map[string]vase.Waveform{"a": vase.DC(1), "b": vase.DC(1)}
	tr, err := d.SimulateContext(context.Background(), inputs,
		vase.SimOptions{TStop: 1, TStep: 1e-4, MaxSteps: 7})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !tr.Truncated {
		t.Error("MaxSteps did not truncate the trace")
	}
	if len(tr.Time) != 7 {
		t.Errorf("trace holds %d samples, want 7", len(tr.Time))
	}
}

package lint

import (
	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/sema"
)

// annotationsPass validates the synthesis annotations after sema has parsed
// them into PortAttr: inverted frequency or range bounds, output-stage
// annotations (drive, limit) on input ports, non-positive load resistances,
// and a required peak drive above the configured clipping level.
var annotationsPass = &Pass{
	Name: "annotations",
	Doc:  "consistency of synthesis annotations (frequency, range, drive, limit)",
	Run:  runAnnotations,
}

func runAnnotations(u *Unit) {
	d := u.Design
	if d == nil {
		return
	}
	seen := map[*sema.Symbol]bool{}
	check := func(sym *sema.Symbol) {
		if sym == nil || seen[sym] {
			return
		}
		seen[sym] = true
		sp := u.SpanOfDecl(sym)
		a := sym.Attr
		if a.HasFreq && a.FreqLo > a.FreqHi {
			u.Report(diag.CodeAnnFreqOrder, sp,
				"%q: frequency band [%g, %g] Hz is inverted", sym.Orig, a.FreqLo, a.FreqHi).
				WithFix("swap the bounds: the lower edge must come first")
		}
		if a.HasRange && a.RangeLo > a.RangeHi {
			u.Report(diag.CodeAnnRangeOrder, sp,
				"%q: range [%g, %g] is inverted", sym.Orig, a.RangeLo, a.RangeHi).
				WithFix("swap the bounds: the lower bound must come first")
		}
		if a.DrivesOhms < 0 {
			u.Report(diag.CodeAnnBadDrive, sp,
				"%q: drive annotation with load resistance %g ohm", sym.Orig, a.DrivesOhms).
				WithFix("a drive annotation needs a positive external load resistance")
		}
		if sym.IsPort && sym.Mode == ast.ModeIn && (a.DrivesOhms != 0 || a.PeakDrive != 0 || a.Limited) {
			u.Report(diag.CodeAnnWrongDir, sp,
				"%q is an input port but carries an output-stage annotation", sym.Orig).
				WithFix("move the drive/limit annotation to the driving output, or drop it")
		}
		if a.Limited && a.LimitAt > 0 && a.PeakDrive > a.LimitAt {
			u.Report(diag.CodeAnnPeakVsLimit, sp,
				"%q: required peak drive %g V exceeds the clipping level %g V",
				sym.Orig, a.PeakDrive, a.LimitAt).
				WithFix("raise the limit annotation or lower the required peak amplitude")
		}
	}
	for _, sym := range d.Ports {
		check(sym)
	}
	for _, sym := range d.Quantities {
		check(sym)
	}
	for _, sym := range d.Signals {
		check(sym)
	}
}

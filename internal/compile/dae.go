package compile

import (
	"sort"

	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/sema"
	"vase/internal/source"
	"vase/internal/token"
)

// maxMatchings bounds the number of alternative DAE solver topologies the
// compiler enumerates.
const maxMatchings = 16

// equation is one top-level simple simultaneous statement.
type equation struct {
	stmt *ast.SimpleSimultaneous
	// candidates are the unknowns this equation can define, ordered by
	// preference (explicit forms before isolatable ones).
	candidates []candidate
}

// candidate is one way an equation can define an unknown.
type candidate struct {
	unknown string
	viaDot  bool // the equation isolates q'dot (an integrator solver)
}

// matching assigns each equation index a candidate.
type matching []candidate

// enumerateMatchings analyzes the top-level simultaneous statements of the
// design and enumerates up to limit feasible equation→unknown matchings.
// It returns the matchings, the unknown names, and the equations.
func enumerateMatchings(d *sema.Design, limit int) ([]matching, []string, []*equation, error) {
	errs := &diag.List{}
	rep := diag.NewReporter(d.File, errs, diag.CodeDAEMatch)
	fail := func(sp source.Span, format string, args ...any) ([]matching, []string, []*equation, error) {
		rep.Errorf(sp, format, args...)
		return nil, nil, nil, errs.Err()
	}

	// Quantities defined by non-simultaneous statements are not unknowns of
	// the DAE set.
	defined := definedElsewhere(d)

	var eqs []*equation
	for _, st := range d.Arch.Stmts {
		if ss, ok := st.(*ast.SimpleSimultaneous); ok {
			eqs = append(eqs, &equation{stmt: ss})
		}
	}

	// Unknowns: free quantities and out ports not defined elsewhere that
	// appear in some equation.
	appearing := map[string]bool{}
	for _, eq := range eqs {
		for name := range quantityUses(d, eq.stmt) {
			appearing[name] = true
		}
	}
	var unknowns []string
	for _, q := range d.Quantities {
		if q.Mode == ast.ModeIn || defined[q.Name] || !appearing[q.Name] {
			continue
		}
		unknowns = append(unknowns, q.Name)
	}
	sort.Strings(unknowns)

	if len(eqs) == 0 {
		if len(unknowns) > 0 {
			return fail(d.Arch.SpanV, "quantities %v have no defining statements", unknowns)
		}
		return []matching{nil}, nil, nil, nil
	}
	if len(eqs) != len(unknowns) {
		return fail(eqs[0].stmt.SpanV, "DAE set has %d equations for %d unknowns %v", len(eqs), len(unknowns), unknowns)
	}

	// Candidate analysis.
	for _, eq := range eqs {
		uses := quantityUses(d, eq.stmt)
		for _, q := range unknowns {
			use, ok := uses[q]
			if !ok {
				continue
			}
			switch {
			case use.dot == 1:
				// q'dot occurs once: integrator solver; bare q occurrences
				// read the integrator output (legal feedback).
				eq.candidates = append(eq.candidates, candidate{unknown: q, viaDot: true})
			case use.dot == 0 && use.bare == 1:
				eq.candidates = append(eq.candidates, candidate{unknown: q, viaDot: false})
			}
		}
		if len(eq.candidates) == 0 {
			return fail(eq.stmt.SpanV, "equation cannot be solved for any unknown (each unknown must occur exactly once, or once as q'dot)")
		}
		sortCandidates(d, eq)
	}

	// Backtracking enumeration of perfect matchings.
	var out []matching
	used := map[string]bool{}
	cur := make(matching, len(eqs))
	var rec func(i int)
	rec = func(i int) {
		if len(out) >= limit && limit > 0 {
			return
		}
		if i == len(eqs) {
			out = append(out, append(matching{}, cur...))
			return
		}
		for _, cand := range eqs[i].candidates {
			if used[cand.unknown] {
				continue
			}
			used[cand.unknown] = true
			cur[i] = cand
			rec(i + 1)
			used[cand.unknown] = false
		}
	}
	rec(0)
	if len(out) == 0 {
		return fail(eqs[0].stmt.SpanV, "DAE set has no feasible equation-to-unknown matching")
	}
	return out, unknowns, eqs, nil
}

// sortCandidates orders an equation's candidates: explicit forms (the whole
// side is exactly the unknown or its 'dot) first, 'dot forms before
// algebraic ones, then by name for determinism.
func sortCandidates(d *sema.Design, eq *equation) {
	score := func(cand candidate) int {
		s := 0
		if isExplicitFor(eq.stmt, cand) {
			s -= 4
		}
		if cand.viaDot {
			s -= 2
		}
		return s
	}
	sort.SliceStable(eq.candidates, func(i, j int) bool {
		si, sj := score(eq.candidates[i]), score(eq.candidates[j])
		if si != sj {
			return si < sj
		}
		return eq.candidates[i].unknown < eq.candidates[j].unknown
	})
}

// isExplicitFor reports whether one side of the equation is exactly the
// candidate's target (q or q'dot).
func isExplicitFor(ss *ast.SimpleSimultaneous, cand candidate) bool {
	check := func(e ast.Expr) bool {
		e = unparen(e)
		if cand.viaDot {
			if at, ok := e.(*ast.Attribute); ok && at.Attr == "dot" {
				if n, ok := unparen(at.X).(*ast.Name); ok {
					return n.Ident.Canon == cand.unknown
				}
			}
			return false
		}
		if n, ok := e.(*ast.Name); ok {
			return n.Ident.Canon == cand.unknown
		}
		return false
	}
	return check(ss.LHS) || check(ss.RHS)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.Paren)
		if !ok {
			return e
		}
		e = p.X
	}
}

// useCount tracks how often a quantity occurs in an equation.
type useCount struct {
	bare int // occurrences as a plain name
	dot  int // occurrences as q'dot
}

// quantityUses counts quantity occurrences in a statement's expressions.
func quantityUses(d *sema.Design, ss *ast.SimpleSimultaneous) map[string]useCount {
	uses := map[string]useCount{}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Paren:
			walk(e.X)
		case *ast.Name:
			if sym := d.Lookup(e.Ident.Canon); sym != nil && sym.Kind == sema.SymQuantity {
				u := uses[e.Ident.Canon]
				u.bare++
				uses[e.Ident.Canon] = u
			}
		case *ast.Unary:
			walk(e.X)
		case *ast.Binary:
			walk(e.X)
			walk(e.Y)
		case *ast.Call:
			for _, a := range e.Args {
				walk(a)
			}
		case *ast.Attribute:
			if e.Attr == "dot" {
				if n, ok := unparen(e.X).(*ast.Name); ok {
					if sym := d.Lookup(n.Ident.Canon); sym != nil && sym.Kind == sema.SymQuantity {
						u := uses[n.Ident.Canon]
						u.dot++
						uses[n.Ident.Canon] = u
						return
					}
				}
			}
			walk(e.X)
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(ss.LHS)
	walk(ss.RHS)
	return uses
}

// definedElsewhere returns the quantities defined by procedural, if/use and
// case/use statements.
func definedElsewhere(d *sema.Design) map[string]bool {
	defined := map[string]bool{}
	mark := func(e ast.Expr) {
		if n, ok := unparen(e).(*ast.Name); ok {
			if sym := d.Lookup(n.Ident.Canon); sym != nil && sym.Kind == sema.SymQuantity {
				defined[n.Ident.Canon] = true
			}
		}
	}
	var markConc func(sts []ast.ConcStmt)
	var markSeq func(sts []ast.SeqStmt)
	markSeq = func(sts []ast.SeqStmt) {
		for _, st := range sts {
			switch st := st.(type) {
			case *ast.Assign:
				if !st.SignalOp {
					mark(st.LHS)
				}
			case *ast.IfStmt:
				markSeq(st.Then)
				for _, e := range st.Elifs {
					markSeq(e.Then)
				}
				markSeq(st.Else)
			case *ast.CaseStmt:
				for _, arm := range st.Arms {
					markSeq(arm.Seq)
				}
			case *ast.ForStmt:
				markSeq(st.Body)
			case *ast.WhileStmt:
				markSeq(st.Body)
			}
		}
	}
	markConc = func(sts []ast.ConcStmt) {
		for _, st := range sts {
			switch st := st.(type) {
			case *ast.SimultaneousIf:
				for _, t := range st.Then {
					if ss, ok := t.(*ast.SimpleSimultaneous); ok {
						mark(ss.LHS)
					}
				}
				for _, e := range st.Elifs {
					for _, t := range e.Then {
						if ss, ok := t.(*ast.SimpleSimultaneous); ok {
							mark(ss.LHS)
						}
					}
				}
				for _, t := range st.Else {
					if ss, ok := t.(*ast.SimpleSimultaneous); ok {
						mark(ss.LHS)
					}
				}
			case *ast.SimultaneousCase:
				for _, arm := range st.Arms {
					markConc(arm.Conc)
				}
			case *ast.Procedural:
				markSeq(st.Body)
			}
		}
	}
	markConc(d.Arch.Stmts)
	return defined
}

// ---------------------------------------------------------------------------
// Symbolic isolation

// isolate rewrites the equation lhs == rhs so that the target (q, or q'dot
// when viaDot) stands alone, returning the defining expression for it.
func (c *compiler) isolate(eq *ast.SimpleSimultaneous, cand candidate) (ast.Expr, error) {
	containsL := containsTarget(eq.LHS, cand)
	containsR := containsTarget(eq.RHS, cand)
	switch {
	case containsL && containsR:
		return nil, diag.Errorf(diag.CodeNoRealization, "unknown %q occurs on both sides", cand.unknown)
	case containsL:
		return c.peel(eq.LHS, eq.RHS, cand)
	case containsR:
		return c.peel(eq.RHS, eq.LHS, cand)
	}
	return nil, diag.Errorf(diag.CodeNoRealization, "unknown %q does not occur in equation", cand.unknown)
}

// containsTarget reports whether the target occurrence is inside e.
func containsTarget(e ast.Expr, cand candidate) bool {
	found := false
	ast.Walk(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if cand.viaDot {
			if at, ok := n.(*ast.Attribute); ok && at.Attr == "dot" {
				if nm, ok := unparen(at.X).(*ast.Name); ok && nm.Ident.Canon == cand.unknown {
					found = true
					return false
				}
			}
			return true
		}
		if at, ok := n.(*ast.Attribute); ok && at.Attr == "dot" {
			// Do not descend: a bare-name target must not match inside 'dot.
			if nm, ok := unparen(at.X).(*ast.Name); ok && nm.Ident.Canon == cand.unknown {
				return false
			}
		}
		if nm, ok := n.(*ast.Name); ok && nm.Ident.Canon == cand.unknown {
			found = true
			return false
		}
		return true
	})
	return found
}

// isTarget reports whether e is exactly the target.
func isTarget(e ast.Expr, cand candidate) bool {
	e = unparen(e)
	if cand.viaDot {
		at, ok := e.(*ast.Attribute)
		if !ok || at.Attr != "dot" {
			return false
		}
		nm, ok := unparen(at.X).(*ast.Name)
		return ok && nm.Ident.Canon == cand.unknown
	}
	nm, ok := e.(*ast.Name)
	return ok && nm.Ident.Canon == cand.unknown
}

// peel descends into side, inverting operations onto rest until the target
// stands alone, and returns the rewritten defining expression.
func (c *compiler) peel(side, rest ast.Expr, cand candidate) (ast.Expr, error) {
	side = unparen(side)
	if isTarget(side, cand) {
		return rest, nil
	}
	bin := func(op token.Kind, x, y ast.Expr) ast.Expr {
		return &ast.Binary{SpanV: side.Span(), Op: op, X: x, Y: y}
	}
	paren := func(x ast.Expr) ast.Expr { return &ast.Paren{SpanV: x.Span(), X: x} }
	switch e := side.(type) {
	case *ast.Unary:
		switch e.Op {
		case token.MINUS:
			return c.peel(e.X, &ast.Unary{SpanV: e.SpanV, Op: token.MINUS, X: paren(rest)}, cand)
		case token.PLUS:
			return c.peel(e.X, rest, cand)
		}
	case *ast.Binary:
		inX := containsTarget(e.X, cand)
		switch e.Op {
		case token.PLUS:
			if inX {
				return c.peel(e.X, bin(token.MINUS, paren(rest), paren(e.Y)), cand)
			}
			return c.peel(e.Y, bin(token.MINUS, paren(rest), paren(e.X)), cand)
		case token.MINUS:
			if inX {
				return c.peel(e.X, bin(token.PLUS, paren(rest), paren(e.Y)), cand)
			}
			return c.peel(e.Y, bin(token.MINUS, paren(e.X), paren(rest)), cand)
		case token.STAR:
			if inX {
				return c.peel(e.X, bin(token.SLASH, paren(rest), paren(e.Y)), cand)
			}
			return c.peel(e.Y, bin(token.SLASH, paren(rest), paren(e.X)), cand)
		case token.SLASH:
			if inX {
				return c.peel(e.X, bin(token.STAR, paren(rest), paren(e.Y)), cand)
			}
			return c.peel(e.Y, bin(token.SLASH, paren(e.X), paren(rest)), cand)
		}
	case *ast.Call:
		if len(e.Args) == 1 && containsTarget(e.Args[0], cand) {
			inverse := map[string]string{"log": "exp", "exp": "log"}
			if inv, ok := inverse[e.Fun.Canon]; ok {
				call := &ast.Call{
					SpanV: e.SpanV,
					Fun:   &ast.Ident{SpanV: e.Fun.SpanV, Name: inv, Canon: inv},
					Args:  []ast.Expr{paren(rest)},
				}
				return c.peel(e.Args[0], call, cand)
			}
			if e.Fun.Canon == "sqrt" {
				sq := bin(token.STAR, paren(rest), paren(rest))
				return c.peel(e.Args[0], sq, cand)
			}
		}
	}
	return nil, diag.Errorf(diag.CodeNoRealization, "cannot isolate %q through %s", cand.unknown, ast.ExprString(side))
}

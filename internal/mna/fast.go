package mna

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// This file is the numeric half of the SolverFast tier (the symbolic half
// lives in ordering.go). Where the exact tier must replay SolverReference's
// floating-point operation sequence byte for byte, this tier is free to
// reorder arithmetic, skip numerically-dead work and reuse stale
// factorizations — its contract with the reference is the ErrorBudget on
// traces (compare.go), not bit-identity.
//
// The Newton iteration runs in residual form (a chord method): each
// iteration assembles the fresh linearized system A(x), b(x) through the
// stamp plan, computes the residual r = b - A·x, and solves LU·Δ = r with a
// factorization that may be several iterations or timesteps old. The fixed
// point of that iteration is A(x*)·x* = b(x*) regardless of how stale the
// LU is — staleness only slows convergence, it cannot change the answer —
// which is what makes factorization reuse safe. A per-entry Jacobian-delta
// test decides when the LU is worth rebuilding, and a stall detector
// (update norm no longer contracting) catches drift the per-entry test
// rates as small but that matters in aggregate.

const (
	// fastJacTol is the factorization-reuse threshold: the LU is rebuilt
	// when any assembled entry moved more than this fraction of its
	// elimination column's factorization-time magnitude. All entries are
	// compared — not just nonlinear ones — so a capacitor's companion
	// conductance changing between DC (1e-12) and transient (C/h) forces
	// the refactorization it needs.
	fastJacTol = 0.05
	// fastStallRatio: a reused factorization whose update norm shrinks by
	// less than this factor per iteration is stale in aggregate; force a
	// refactorization on the next iteration.
	fastStallRatio = 0.7
	// fastChordAccept: a small update computed through a reused (stale) LU
	// only proves convergence if the iteration is demonstrably contracting —
	// with observed rate ρ the true error is bounded by |Δ|·ρ/(1-ρ), so
	// requiring ρ ≤ 0.25 certifies the solution to tol/3. Without this check
	// an ill-conditioned point (an op-amp at its saturation knee) can pass
	// the update test while the residual — and the answer — is still off.
	fastChordAccept = 0.25
)

// errFastRepivot signals that a scheduled pivot collapsed below the monitor
// threshold: the ordering is numerically stale and must be recomputed from
// current values.
var errFastRepivot = errors.New("mna: fast pivot below monitor threshold, reorder")

// fastFactor scatters the assembled plan values into the permuted storage
// and runs the static elimination schedule in place. With strict set, a
// pivot below the monitor threshold aborts with errFastRepivot (the caller
// reorders and retries); after a reorder the factorization proceeds with
// whatever pivots the fresh ordering produced, down to the singularity
// floor. L multipliers are stored in place of the eliminated entries so a
// later iteration can reuse the factorization without refactoring.
func (s *solver) fastFactor(strict bool) error {
	fs := s.fast
	lu := fs.luvals
	for i := range lu {
		lu[i] = 0
	}
	for i := range fs.colScale {
		fs.colScale[i] = 0
	}
	for i, q := range fs.src {
		v := s.vals[q]
		lu[fs.dst[i]] = v
		fs.snap[i] = v
		if v < 0 {
			v = -v
		}
		if cc := fs.scatCol[i]; v > fs.colScale[cc] {
			fs.colScale[cc] = v
		}
	}
	sched := fs.sched
	cur := 0
	for k := 0; k < fs.n; k++ {
		nT, tail := int(sched[cur]), int(sched[cur+1])
		cur += 2
		piv := lu[fs.diag[k]]
		apiv := piv
		if apiv < 0 {
			apiv = -apiv
		}
		scale := fs.colScale[k]
		if piv == 0 || apiv < 1e-12*scale {
			// Zero-scale columns (pivots living entirely on fill) are
			// only singular when the pivot itself is zero.
			return fmt.Errorf("mna: singular matrix at column %d (floating node?)", fs.cperm[k]+1)
		}
		if strict && apiv < fastMonitorRel*fs.pivRef[k] {
			return errFastRepivot
		}
		inv := 1 / piv
		fs.inv[k] = inv
		pbase := int(fs.diag[k]) + 1
		for t := 0; t < nT; t++ {
			lslot := sched[cur]
			dst := sched[cur+2 : cur+2+tail]
			cur += 2 + tail
			f := lu[lslot] * inv
			lu[lslot] = f
			if f == 0 {
				continue // numerically-dead target: skip the whole update
			}
			for j, q := range dst {
				lu[q] -= f * lu[pbase+j]
			}
		}
	}
	fs.haveLU = true
	return nil
}

// fastFactorRetry factors with the current ordering, reordering once from
// the assembled values when the pivot monitor trips.
func (c *Circuit) fastFactorRetry(s *solver) error {
	c.stats.Factorizations++
	err := s.fastFactor(true)
	if err == errFastRepivot {
		fs, berr := c.buildFastState(s)
		if berr != nil {
			return berr
		}
		s.fast = fs
		c.stats.Factorizations++
		err = s.fastFactor(false)
	}
	return err
}

// stale reports whether the assembled values have drifted past fastJacTol
// of the factorization-time snapshot anywhere.
func (fs *fastState) stale(s *solver) bool {
	for i, q := range fs.src {
		dv := s.vals[q] - fs.snap[i]
		if dv < 0 {
			dv = -dv
		}
		if dv > fastJacTol*fs.colScale[fs.scatCol[i]] {
			return true
		}
	}
	return false
}

// fastResidual computes w = b - A·x permuted into elimination row order,
// reading the assembled system directly (fill slots hold exact zeros and
// contribute nothing).
func (s *solver) fastResidual(x Solution) {
	fs := s.fast
	if s.sparse {
		for r := 0; r < s.dim; r++ {
			acc := s.rhsv[r]
			for q := s.rowPtr[r]; q < s.rowPtr[r+1]; q++ {
				acc -= s.vals[q] * x[s.colIdx[q]+1]
			}
			fs.w[fs.rpos[r]] = acc
		}
		return
	}
	n := s.dim
	for r := 0; r < n; r++ {
		acc := s.rhsv[r]
		row := s.vals[r*n : r*n+n]
		for col, v := range row {
			if v != 0 {
				acc -= v * x[col+1]
			}
		}
		fs.w[fs.rpos[r]] = acc
	}
}

// fastSolveDelta solves LU·y = w over the stored factors: the forward pass
// replays the schedule's L multipliers against the permuted residual, the
// backward pass substitutes over each row's post-diagonal tail.
func (s *solver) fastSolveDelta() {
	fs := s.fast
	sched, w, lu := fs.sched, fs.w, fs.luvals
	cur := 0
	n := fs.n
	for k := 0; k < n; k++ {
		nT, tail := int(sched[cur]), int(sched[cur+1])
		cur += 2
		wk := w[k]
		if wk == 0 {
			cur += nT * (2 + tail)
			continue
		}
		for t := 0; t < nT; t++ {
			lslot, row := sched[cur], sched[cur+1]
			cur += 2 + tail
			w[row] -= lu[lslot] * wk
		}
	}
	y := fs.y
	for k := n - 1; k >= 0; k-- {
		sum := w[k]
		for q := int(fs.diag[k]) + 1; q < int(fs.rowPtr[k+1]); q++ {
			sum -= lu[q] * y[fs.colIdx[q]]
		}
		y[k] = sum * fs.inv[k]
	}
}

// newtonFastTier is the SolverFast Newton loop: assemble, factor only when
// the snapshot says the Jacobian moved (or convergence stalled), solve the
// residual system, apply the damped update. Steady-state iterations with a
// warm factorization allocate nothing; the factorization persists across
// solve points, so a transient's cost per step collapses to stamping plus
// two triangular solves once the waveforms move slowly.
func (c *Circuit) newtonFastTier(ctx context.Context, s *solver, dst, x0, prev Solution, t, h float64) (Solution, error) {
	if s.fastOff {
		return c.newtonFast(ctx, s, dst, x0, prev, t, h)
	}
	copy(dst, x0)
	if fs := s.fast; fs != nil && fs.havePrev && h > 0 {
		// Predictive start: linearly extrapolate the two previous accepted
		// transient solutions. On smooth stretches this lands an O(h²) guess
		// where the plain previous-point start is O(h), trading one chord
		// iteration per step for nothing; across an event the guess is bad
		// but the damped iteration (and, at worst, the exact-tier fallback)
		// still converges to the same fixed point, so the budget contract is
		// unaffected.
		for i := range dst {
			dst[i] = 2*x0[i] - fs.xprev[i]
		}
	}
	for _, d := range c.devices {
		d.hasLast = false
	}
	maxIter := c.MaxNewtonIter
	if maxIter <= 0 {
		maxIter = defaultNewtonIter
	}
	tol := c.Budget.newtonTol()
	prevWorst := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mna: solve at t=%g cancelled: %w", t, err)
		}
		s.clear()
		c.stampInto(s, dst, prev, t, h)
		fs := s.fast
		if fs == nil {
			var err error
			fs, err = c.buildFastState(s)
			if err != nil {
				return c.fastDisable(ctx, s, dst, x0, prev, t, h)
			}
			s.fast = fs
		}
		reused := false
		if fs.haveLU && !fs.forceRefactor && !fs.stale(s) {
			c.stats.FactorReuses++
			reused = true
		} else {
			if err := c.fastFactorRetry(s); err != nil {
				return c.fastDisable(ctx, s, dst, x0, prev, t, h)
			}
			fs = s.fast // a monitor-forced reorder replaces the state
			fs.forceRefactor = false
		}
		c.stats.NewtonIterations++
		s.fastResidual(dst)
		s.fastSolveDelta()
		worst := 0.0
		for k := 0; k < fs.n; k++ {
			if d := math.Abs(fs.y[k]); d > worst {
				worst = d
			}
		}
		alpha := 1.0
		if worst > newtonMaxChange {
			alpha = newtonMaxChange / worst
		}
		for k := 0; k < fs.n; k++ {
			dst[fs.cperm[k]+1] += alpha * fs.y[k]
		}
		if worst < tol && (!reused || worst <= fastChordAccept*prevWorst) {
			// A fresh LU makes this the exact tier's own criterion; a
			// reused one needs the contraction evidence (see
			// fastChordAccept). A steady step therefore takes two cheap
			// chord iterations instead of one, never an extra factor.
			if h > 0 {
				copy(fs.xprev, x0)
				fs.havePrev = true
			} else {
				fs.havePrev = false
			}
			return dst, nil
		}
		if reused && worst > fastStallRatio*prevWorst {
			fs.forceRefactor = true
		}
		prevWorst = worst
	}
	// The fast iteration exhausted its budget: fall back to the exact
	// tier's Newton loop for this solve point. High-gain circuits can be
	// Newton-multistable — a budget-sized difference in the starting point
	// sends the damped iteration on a much longer path — and the exact
	// loop, solving the full linearized system every iteration, is the
	// robust strategy of record. The fallback keeps the fast tier total
	// (it fails only where the exact tier fails) at the cost of one slow
	// point; the result is still deterministic.
	c.stats.Fallbacks++
	if fs := s.fast; fs != nil {
		// A point hard enough to exhaust the chord budget is usually an
		// event; don't extrapolate the next step through it.
		fs.havePrev = false
	}
	return c.newtonFast(ctx, s, dst, x0, prev, t, h)
}

// fastDisable routes this and every later solve point through the exact
// Newton path after the fast tier's symbolic or numeric machinery failed.
// A singular scratch at one garbage mid-Newton iterate says nothing about
// the circuit — the exact tier's runtime pivoting is the diagnosis of
// record, and a genuinely singular circuit fails there with the same error
// text the fast factorization would have produced.
func (c *Circuit) fastDisable(ctx context.Context, s *solver, dst, x0, prev Solution, t, h float64) (Solution, error) {
	s.fastOff = true
	c.stats.Fallbacks++
	return c.newtonFast(ctx, s, dst, x0, prev, t, h)
}

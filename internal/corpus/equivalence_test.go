package corpus

import (
	"math"
	"testing"

	"vase/internal/sim"
)

// appInputs returns exercise waveforms for each benchmark's input ports.
func appInputs(key string) map[string]sim.Source {
	switch key {
	case "receiver":
		return map[string]sim.Source{
			"line":  sim.Sine(0.4, 1e3, 0),
			"local": sim.Sine(0.15, 2.3e3, 0.7),
		}
	case "powermeter":
		return map[string]sim.Source{
			"vline": sim.Sine(1.0, 50, 0),
			"iline": sim.Sine(0.8, 50, -0.5),
		}
	case "missile":
		return map[string]sim.Source{
			"cmd":  sim.Step(0, 1, 0.01),
			"wind": sim.DC(0.05),
			"bias": sim.DC(0.2),
		}
	default:
		return map[string]sim.Source{}
	}
}

func appSimOptions(key string) sim.Options {
	switch key {
	case "missile":
		return sim.Options{TStop: 2, TStep: 5e-4}
	case "itersolver":
		return sim.Options{TStop: 10, TStep: 1e-3}
	case "powermeter":
		return sim.Options{TStop: 40e-3, TStep: 1e-5}
	default:
		return sim.Options{TStop: 3e-3, TStep: 1e-6}
	}
}

// TestBehavioralNetlistEquivalenceAllApps verifies for every benchmark that
// the synthesized netlist computes the same waveforms as the VHIF module it
// was mapped from: the architecture generator preserves behavior.
func TestBehavioralNetlistEquivalenceAllApps(t *testing.T) {
	for _, app := range Applications() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			b, err := BuildApp(app)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			inputs := appInputs(app.Key)
			opts := appSimOptions(app.Key)
			trM, err := sim.SimulateModule(b.Module, inputs, opts)
			if err != nil {
				t.Fatalf("module sim: %v", err)
			}
			trN, err := sim.SimulateNetlist(b.Result.Netlist, inputs, opts)
			if err != nil {
				t.Fatalf("netlist sim: %v", err)
			}
			for _, p := range b.Module.Ports {
				if p.Dir != 1 { // vhif.DirOut
					continue
				}
				m, n := trM.Get(p.Name), trN.Get(p.Name)
				if len(m) == 0 || len(n) == 0 {
					// Signal ports (controls) may be absent from one level.
					continue
				}
				worst, at := 0.0, 0
				scale := math.Max(1, trM.Max(p.Name)-trM.Min(p.Name))
				for i := range m {
					if d := math.Abs(m[i] - n[i]); d > worst {
						worst, at = d, i
					}
				}
				// Hysteresis-induced switching may differ by a step or two
				// around thresholds; allow a small relative divergence.
				if worst > 0.02*scale {
					t.Errorf("%s: module/netlist diverge by %g (%.1f%% of range) at t=%g",
						p.Name, worst, 100*worst/scale, trM.Time[at])
				}
			}
		})
	}
}

// TestIterSolverConverges: the integrator loop settles at the fixed point
// (x'dot = a0 - x - integ(x) settles where the integral term balances) and
// the convergence detector fires.
func TestIterSolverConverges(t *testing.T) {
	b, err := BuildApp(ByKey("itersolver"))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tr, err := sim.SimulateModule(b.Module, nil, sim.Options{TStop: 30, TStep: 1e-3})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	x := tr.Get("x")
	// Second-order loop with unity integral feedback: x(t) -> 0 while
	// integ(x) -> a0; the interesting claim is stability plus the latched
	// sample. Check that x stays bounded and settles.
	for i, v := range x {
		if math.Abs(v) > 3 {
			t.Fatalf("x diverged to %g at step %d", v, i)
		}
	}
	settled := math.Abs(x[len(x)-1] - x[len(x)-2])
	if settled > 1e-4 {
		t.Errorf("x not settled: last delta %g", settled)
	}
	// The convergence signal toggled at least once (x crosses 0.95).
	conv := tr.Get("conv")
	saw := false
	for _, v := range conv {
		if v > 0.5 {
			saw = true
		}
	}
	if !saw {
		t.Error("convergence detector never fired")
	}
}

// TestMissileSteadyState: with a unit command the drag chain balances the
// command: acc -> 0 and vel settles where k1*cmd = k2*vel + k3*cd*(vel-wind)^2.
func TestMissileSteadyState(t *testing.T) {
	b, err := BuildApp(ByKey("missile"))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	inputs := map[string]sim.Source{
		"cmd":  sim.DC(1.0),
		"wind": sim.DC(0.0),
		"bias": sim.DC(0.0),
	}
	tr, err := sim.SimulateModule(b.Module, inputs, sim.Options{TStop: 12, TStep: 1e-3})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	// Solve k1 = k2*v + k3*cd*v^2 for v: 4 = 0.8v + 0.15v^2.
	// v = (-0.8 + sqrt(0.64 + 4*0.15*4)) / (2*0.15)
	want := (-0.8 + math.Sqrt(0.64+2.4)) / 0.3
	if got := tr.Final("acc"); math.Abs(got) > 1e-3 {
		t.Errorf("steady acc = %g, want ~0", got)
	}
	// vel is internal; check via dist slope: dist(t) - dist(t-1s) ~ vel.
	d := tr.Get("dist")
	n := len(d) - 1
	perSec := int(1 / 1e-3)
	slope := d[n] - d[n-perSec]
	if math.Abs(slope-want) > 0.05*want {
		t.Errorf("terminal velocity = %g, want %g", slope, want)
	}
}

package pipeline

import (
	"reflect"
	"testing"
	"time"

	"vase/internal/library"
	"vase/internal/lint"
	"vase/internal/mapper"
	"vase/internal/patterns"
)

// resultNeutral are the top-level mapper.Options fields that must NOT
// participate in the cache key: by the determinism and anytime contracts
// they cannot change a completed (optimal) result — they can only truncate
// the search (yielding Nonoptimal, which is never cached) or annotate it
// (Trace, which bypasses the cache).
var resultNeutral = map[string]bool{
	"Workers":  true,
	"Deadline": true,
	"MaxNodes": true,
	"Trace":    true,
}

// perturb returns a copy of v with the leaf at path changed to a different
// value.
func perturb(t *testing.T, v reflect.Value, path []int) reflect.Value {
	t.Helper()
	out := reflect.New(v.Type()).Elem()
	out.Set(v)
	f := out
	for _, i := range path {
		f = f.Field(i)
	}
	switch f.Kind() {
	case reflect.Bool:
		f.SetBool(!f.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		f.SetInt(f.Int() + 1)
	case reflect.Float32, reflect.Float64:
		f.SetFloat(f.Float() + 1.5)
	case reflect.String:
		f.SetString(f.String() + "?")
	default:
		t.Fatalf("perturb: unhandled kind %s at %v", f.Kind(), path)
	}
	return out
}

// leaves returns the field-index paths of every scalar leaf of a struct
// type, depth first.
func leaves(t *testing.T, typ reflect.Type, prefix []int) [][]int {
	t.Helper()
	var out [][]int
	for i := 0; i < typ.NumField(); i++ {
		path := append(append([]int{}, prefix...), i)
		ft := typ.Field(i).Type
		switch ft.Kind() {
		case reflect.Struct:
			out = append(out, leaves(t, ft, path)...)
		case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32,
			reflect.Int64, reflect.Float32, reflect.Float64, reflect.String:
			out = append(out, path)
		default:
			t.Fatalf("mapper.Options leaf %s.%s has kind %s: teach Canonical() and this test about it",
				typ.Name(), typ.Field(i).Name, ft.Kind())
		}
	}
	return out
}

// TestCacheKeySensitivity pins down the cache-key contract of the map
// stage: every result-relevant field of SynthesisOptions (recursively, down
// to process and pattern leaves) changes the key; the result-neutral fields
// do not; and the source text and library fingerprints participate. A new
// Options field failing here must either be encoded in Canonical() or be
// consciously exempted in resultNeutral — silent omission is what this test
// exists to prevent.
func TestCacheKeySensitivity(t *testing.T) {
	const vhifText = "module m\n"
	base := mapper.DefaultOptions()
	baseKey := MapKey(vhifText, base)

	if MapKey("module m2\n", base) == baseKey {
		t.Error("changing the VHIF input did not change the map key")
	}

	optType := reflect.TypeOf(base)
	baseVal := reflect.ValueOf(base)
	for _, path := range leaves(t, optType, nil) {
		top := optType.Field(path[0]).Name
		name := top
		if len(path) > 1 {
			name += ".…"
			ft := optType.Field(path[0]).Type
			for _, i := range path[1:] {
				name = top + "." + ft.Field(i).Name
				ft = ft.Field(i).Type
			}
		}
		mutated := perturb(t, baseVal, path).Interface().(mapper.Options)
		changed := MapKey(vhifText, mutated) != baseKey
		if resultNeutral[top] && changed {
			t.Errorf("result-neutral field %s changed the cache key", name)
		}
		if !resultNeutral[top] && !changed {
			t.Errorf("field %s does not participate in the cache key: a cached result could be served for different options", name)
		}
	}
}

func TestCompileKeySensitivity(t *testing.T) {
	k := CompileKey("a.vhd", "entity e is end entity;")
	if CompileKey("a.vhd", "entity e is end entity; -- v2") == k {
		t.Error("source text does not participate in the compile key")
	}
	if CompileKey("b.vhd", "entity e is end entity;") == k {
		t.Error("source name does not participate in the compile key")
	}
}

func TestLintKeySensitivity(t *testing.T) {
	src := LintSourceKey("a.vhd", "x", lint.Options{})
	if LintSourceKey("a.vhd", "x", lint.Options{Passes: []string{"unused"}}) == src {
		t.Error("pass selection does not participate in the lint key")
	}
	if LintVHIFKey("a.vhd", "x", lint.Options{}) == src {
		t.Error("source-level and VHIF-level lint share a key domain")
	}
}

// TestLibraryFingerprintInKey proves the fingerprints are real inputs of
// the key derivation: substituting a different fingerprint (as a changed
// cell library or pattern rule set would produce) yields a different key.
func TestLibraryFingerprintInKey(t *testing.T) {
	opts := mapper.DefaultOptions()
	const vhifText = "module m\n"
	want := keyOf(mapDomain, vhifText, opts.Canonical(), library.Fingerprint(), patterns.Fingerprint())
	if MapKey(vhifText, opts) != want {
		t.Fatal("MapKey is not derived from the library and pattern fingerprints")
	}
	if keyOf(mapDomain, vhifText, opts.Canonical(), "other-library", patterns.Fingerprint()) == want {
		t.Error("library fingerprint does not change the key")
	}
	if keyOf(mapDomain, vhifText, opts.Canonical(), library.Fingerprint(), "other-patterns") == want {
		t.Error("patterns fingerprint does not change the key")
	}
	if len(library.Fingerprint()) != 64 || len(patterns.Fingerprint()) != 64 || len(lint.Fingerprint()) != 64 {
		t.Error("fingerprints are not SHA-256 hex digests")
	}
}

// TestKeyOfLengthPrefixing guards the part-boundary property: moving a
// byte across a part boundary changes the key.
func TestKeyOfLengthPrefixing(t *testing.T) {
	if keyOf("ab", "c") == keyOf("a", "bc") {
		t.Error("keyOf collides across part boundaries")
	}
	if keyOf("a", "") == keyOf("a") {
		t.Error("keyOf ignores empty trailing parts")
	}
}

// goldenDefaultCanonical pins the canonical encoding of the default
// synthesis options. It changes only when the encoding (or a default)
// changes — both are cache-invalidating events that deserve a conscious
// golden update, since every on-disk artifact keyed under the old encoding
// becomes unreachable.
const goldenDefaultCanonical = "obj=0|proc{name=MOSIS SCN 2.0um|kpn=5e-05|kpp=1.7e-05|vtn=0.8|vtp=-0.9|ln=0.05|lp=0.06|lmin=2|wmin=3|vdd=5|cap=0.5|rsheet=1000|ovh=1.6}|sys{bw=0|peak=0|guard=0}|pat{noabs=false|notrans=false|fanin=0}|noseq=false|nobound=false|noshare=false|firstfit=false|strong=false|maxarea=0|maxpower=0|maxopamps=0"

func TestGoldenCanonicalOptions(t *testing.T) {
	if got := mapper.DefaultOptions().Canonical(); got != goldenDefaultCanonical {
		t.Errorf("canonical default options changed — this invalidates every cached map artifact; update the golden if intended:\n got %s\nwant %s", got, goldenDefaultCanonical)
	}
	bounded := mapper.DefaultOptions()
	bounded.Workers = 7
	bounded.Deadline = time.Second
	bounded.MaxNodes = 99
	bounded.Trace = true
	if bounded.Canonical() != goldenDefaultCanonical {
		t.Error("result-neutral fields leaked into the canonical encoding")
	}
}

package corpus

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExamplesMatchCorpus locks the shipped examples/*.vhd files to the
// corpus constants: the files users point vaselint and vassc at must be the
// exact sources the Table 1 reproduction is built from.
func TestExamplesMatchCorpus(t *testing.T) {
	for _, app := range Applications() {
		path := filepath.Join("..", "..", "examples", app.Key+".vhd")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing example for %s: %v", app.Key, err)
			continue
		}
		if string(raw) != app.Source {
			t.Errorf("examples/%s.vhd has drifted from corpus.%sSource; regenerate it from the corpus constant", app.Key, app.Name)
		}
	}
}

package corpus

import (
	"math"
	"testing"

	"vase/internal/mna"
)

// mnaInputs returns circuit-level exercise waveforms for each benchmark's
// input ports (the mna.Waveform twin of appInputs).
func mnaInputs(key string) map[string]mna.Waveform {
	sine := func(amp, freq, phase float64) mna.Waveform {
		return func(t float64) float64 { return amp * math.Sin(2*math.Pi*freq*t+phase) }
	}
	dc := func(v float64) mna.Waveform {
		return func(float64) float64 { return v }
	}
	step := func(v0, v1, t0 float64) mna.Waveform {
		return func(t float64) float64 {
			if t < t0 {
				return v0
			}
			return v1
		}
	}
	switch key {
	case "receiver":
		return map[string]mna.Waveform{
			"line":  sine(0.4, 1e3, 0),
			"local": sine(0.15, 2.3e3, 0.7),
		}
	case "powermeter":
		return map[string]mna.Waveform{
			"vline": sine(1.0, 50, 0),
			"iline": sine(0.8, 50, -0.5),
		}
	case "missile":
		return map[string]mna.Waveform{
			"cmd":  step(0, 1, 0.01),
			"wind": dc(0.05),
			"bias": dc(0.2),
		}
	default:
		return map[string]mna.Waveform{}
	}
}

// mnaTranWindow returns a transient window long enough to exercise the
// nonlinear devices but short enough for the allocate-per-solve reference
// eliminator to stay cheap in tests.
func mnaTranWindow(key string) (tstop, h float64) {
	switch key {
	case "missile":
		return 0.1, 5e-4
	case "itersolver":
		return 0.5, 1e-3
	case "powermeter":
		return 10e-3, 1e-5
	default:
		return 1e-3, 1e-6
	}
}

// solverRun holds the complete observable output of one solver mode over a
// benchmark: DC operating point, transient trace, and AC sweep. Analyses
// that fail (some benchmarks have no standalone DC operating point, under
// any solver) record their error instead — the equivalence claim then is
// that every mode fails identically.
type solverRun struct {
	dc    mna.Solution
	dcErr string
	tr    *mna.Tran
	trErr string
	ac    *mna.ACResult
	acErr string
	nodes int
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func runSolverMode(t *testing.T, b *Build, key string, mode mna.SolverMode, method mna.Method, workers int) *solverRun {
	t.Helper()
	el, err := mna.Elaborate(b.Result.Netlist, mnaInputs(key))
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	c := el.Circuit
	c.Solver = mode
	c.Workers = workers
	c.SetMethod(method)
	run := &solverRun{nodes: c.NumNodes()}
	dc, err := c.DC()
	run.dc, run.dcErr = dc, errString(err)
	tstop, h := mnaTranWindow(key)
	tr, err := c.Transient(tstop, h)
	run.tr, run.trErr = tr, errString(err)
	// AC: stimulate the first input port, if the benchmark has one.
	for _, name := range []string{"line", "vline", "cmd"} {
		if _, ok := mnaInputs(key)[name]; !ok {
			continue
		}
		ac, err := c.AC("v_"+name, mna.LogSweep(10, 1e6, 25))
		run.ac, run.acErr = ac, errString(err)
		break
	}
	return run
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// compareRuns demands byte-identical traces: the plan-based dense and CSR
// factorizations perform the reference eliminator's exact floating-point
// operation sequence (structural-zero skips are IEEE no-ops), so any
// difference at all — even one ULP — is a solver bug, not roundoff.
func compareRuns(t *testing.T, label string, ref, got *solverRun) {
	t.Helper()
	if ref.dcErr != got.dcErr {
		t.Fatalf("%s: DC error %q, reference %q", label, got.dcErr, ref.dcErr)
	}
	if len(ref.dc) != len(got.dc) {
		t.Fatalf("%s: DC dimension %d != %d", label, len(got.dc), len(ref.dc))
	}
	for i := range ref.dc {
		if !bitsEqual(ref.dc[i], got.dc[i]) {
			t.Fatalf("%s: DC[%d] = %x, reference %x", label, i,
				math.Float64bits(got.dc[i]), math.Float64bits(ref.dc[i]))
		}
	}
	if ref.trErr != got.trErr {
		t.Fatalf("%s: transient error %q, reference %q", label, got.trErr, ref.trErr)
	}
	if (ref.tr == nil) != (got.tr == nil) {
		t.Fatalf("%s: transient presence mismatch", label)
	}
	if ref.tr != nil {
		if len(ref.tr.Time) != len(got.tr.Time) {
			t.Fatalf("%s: transient length %d != %d", label, len(got.tr.Time), len(ref.tr.Time))
		}
		for n := 1; n <= ref.nodes; n++ {
			rw, gw := ref.tr.V[mna.Node(n)], got.tr.V[mna.Node(n)]
			for i := range rw {
				if !bitsEqual(rw[i], gw[i]) {
					t.Fatalf("%s: node %d sample %d (t=%g) = %x, reference %x",
						label, n, i, ref.tr.Time[i],
						math.Float64bits(gw[i]), math.Float64bits(rw[i]))
				}
			}
		}
	}
	if ref.acErr != got.acErr {
		t.Fatalf("%s: AC error %q, reference %q", label, got.acErr, ref.acErr)
	}
	if (ref.ac == nil) != (got.ac == nil) {
		t.Fatalf("%s: AC presence mismatch", label)
	}
	if ref.ac == nil {
		return
	}
	if len(ref.ac.Freqs) != len(got.ac.Freqs) || ref.ac.Truncated != got.ac.Truncated {
		t.Fatalf("%s: AC sweep shape mismatch", label)
	}
	for n := 1; n <= ref.nodes; n++ {
		rw, gw := ref.ac.V[mna.Node(n)], got.ac.V[mna.Node(n)]
		if len(rw) != len(gw) {
			t.Fatalf("%s: AC node %d length %d != %d", label, n, len(gw), len(rw))
		}
		for i := range rw {
			if !bitsEqual(real(rw[i]), real(gw[i])) || !bitsEqual(imag(rw[i]), imag(gw[i])) {
				t.Fatalf("%s: AC node %d point %d = %v, reference %v", label, n, i, gw[i], rw[i])
			}
		}
	}
}

// TestSolverEquivalenceAllApps pins the tentpole guarantee of the sparse
// allocation-free MNA core: for every corpus benchmark, the plan-based
// dense solver, the CSR solver, the auto mode, and the parallel AC sweep
// all produce DC/transient/AC results byte-identical to the original
// allocate-per-solve reference eliminator, under both integration methods.
func TestSolverEquivalenceAllApps(t *testing.T) {
	for _, app := range Applications() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			b, err := BuildApp(app)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			for _, method := range []mna.Method{mna.BackwardEuler, mna.Trapezoidal} {
				methodName := "be"
				if method == mna.Trapezoidal {
					methodName = "trap"
				}
				ref := runSolverMode(t, b, app.Key, mna.SolverReference, method, 1)
				cases := []struct {
					label   string
					mode    mna.SolverMode
					workers int
				}{
					{methodName + "/dense", mna.SolverDense, 1},
					{methodName + "/sparse", mna.SolverSparse, 1},
					{methodName + "/auto", mna.SolverAuto, 1},
					{methodName + "/sparse-parallel-ac", mna.SolverSparse, 8},
				}
				for _, tc := range cases {
					got := runSolverMode(t, b, app.Key, tc.mode, method, tc.workers)
					compareRuns(t, tc.label, ref, got)
				}
			}
		})
	}
}

// Funcgen: the ramp-signal (function) generator (Table 1, row 5). An
// integrator with a multiplexed slope and a Schmitt trigger form a
// relaxation oscillator; the example shows the synthesized "1 integ.,
// 1 MUX, 1 Schmitt trigger" architecture and its triangle-wave output.
package main

import (
	"fmt"
	"log"
	"strings"

	"vase"
)

func main() {
	app, err := vase.Benchmark("funcgen")
	if err != nil {
		log.Fatal(err)
	}
	design, err := vase.Compile(vase.Source{Name: "funcgen.vhd", Text: app.Source})
	if err != nil {
		log.Fatal(err)
	}
	arch, err := design.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesis: %s\n\n", arch.Netlist.Summary())

	tr, err := design.Simulate(map[string]vase.Waveform{},
		vase.SimOptions{TStop: 8e-3, TStep: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	wave := tr.Get("wave")
	fmt.Printf("triangle wave: min %.3f V, max %.3f V (Schmitt thresholds at +-1 V)\n\n",
		tr.Min("wave"), tr.Max("wave"))

	// ASCII plot of the oscillation.
	const width, height = 72, 15
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		v := wave[x*(len(wave)-1)/(width-1)]
		y := int((1 - (v+1.3)/2.6) * float64(height-1))
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		grid[y][x] = '*'
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}

package mna

import (
	"fmt"
	"math"
	"math/bits"
)

// This file builds the SolverFast tier's symbolic state: a fill-reducing
// threshold-Markowitz ordering computed from the currently assembled matrix
// values, the exact fill closure of the stamped pattern under that ordering,
// and a flat static elimination schedule over the permuted storage.
//
// Unlike the exact tier — whose replay cache must track the reference's
// runtime partial pivoting and re-record whenever a pivot moves — the fast
// tier fixes the pivot sequence symbolically, once. Pivots are chosen to
// minimize Markowitz fill cost (rowCount-1)*(colCount-1) among candidates
// whose magnitude is at least fastSelRel of their column's maximum, so the
// ordering is simultaneously sparse and numerically defensible. The numeric
// factorization then runs the schedule with no pivot scans, no merge walks
// and no growth retries; a pivot-tolerance monitor (fast.go) detects the
// rare circuit whose values drift far enough to invalidate the ordering and
// triggers a one-shot reorder from current values.

const (
	// fastSelRel is the threshold-pivoting selection tolerance: an entry
	// is an acceptable pivot only when its magnitude is at least this
	// fraction of its column's maximum. Larger values favor stability,
	// smaller ones favor sparsity; 0.01 is the classical sparse-solver
	// compromise.
	fastSelRel = 0.01
	// fastMonitorRel is the factor-time pivot monitor: a pivot collapsing
	// below this fraction of its own ordering-time magnitude triggers a
	// reorder. The comparison is against the pivot's recorded value, not a
	// column scale — MNA columns routinely mix op-amp gain entries (~1e4)
	// with conductances (~1e-4), so any column-relative test would either
	// trip on every healthy small pivot or miss real collapses. Five
	// decades of drift means a device changed operating region out from
	// under the ordering.
	fastMonitorRel = 1e-5
)

// fastState is the SolverFast workspace: the ordering, the fill-closed CSR
// structure in elimination coordinates, the static schedule, the scatter
// map from plan slots into the permuted storage, and the numeric state
// (current LU, factorization-time snapshot for staleness detection).
type fastState struct {
	n int
	// perm/cperm map elimination step k to the original reduced row and
	// column it eliminates; rpos/cpos are the inverses.
	perm, cperm []int
	rpos, cpos  []int

	// Fill-closed CSR in elimination coordinates: row k is the k-th pivot
	// row, colIdx holds elimination column indices (ascending), diag[k] is
	// the slot of the (k,k) pivot.
	rowPtr []int32
	colIdx []int32
	diag   []int32

	// luvals holds the scattered matrix during factorization and the LU
	// factors afterwards (U on and above the diagonal, L multipliers
	// below); inv caches the pivot reciprocals.
	luvals []float64
	inv    []float64

	// Scatter map: plan slot src[i] lands in fast slot dst[i], which lives
	// in elimination column scatCol[i]. snap holds the scattered values of
	// the last factorization (the staleness reference) and colScale the
	// per-elimination-column magnitude at that time.
	src, dst []int32
	scatCol  []int32
	snap     []float64
	colScale []float64
	// pivRef[k] is |pivot k| on the ordering-time scratch, the reference
	// magnitude the factor-time monitor (fast.go) measures collapse against.
	pivRef []float64

	// sched is the flat elimination schedule: per column k,
	//   [nTargets, tailLen, {lslot, targetRow, dstSlot[tailLen]} x nTargets]
	// where lslot is the target row's L slot at column k, targetRow the
	// elimination row index (for the forward RHS pass), and dstSlot the
	// target slots aligned to the pivot row's post-diagonal tail.
	sched []int32

	w, y []float64 // permuted residual / delta work vectors

	// xprev holds the solution two accepted transient steps back, the
	// second point of the predictive start's linear extrapolation
	// (fast.go); havePrev gates the first steps and mid-run rebuilds.
	xprev    []float64
	havePrev bool

	haveLU        bool
	forceRefactor bool
}

// stampedEntries enumerates the stamped (structural) entries of the reduced
// system with their plan slots, in row-major order.
func (s *solver) stampedEntries(yield func(r, col, slot int)) {
	for r := 0; r < s.dim; r++ {
		base := r * s.words
		for wi := 0; wi < s.words; wi++ {
			wd := s.stampedPat[base+wi]
			for wd != 0 {
				b := bits.TrailingZeros64(wd)
				wd &^= 1 << b
				col := wi*64 + b
				slot := r*s.dim + col
				if s.sparse {
					lo, hi := s.rowPtr[r], s.rowPtr[r+1]
					for lo < hi {
						mid := (lo + hi) / 2
						if s.colIdx[mid] < col {
							lo = mid + 1
						} else {
							hi = mid
						}
					}
					slot = lo
				}
				yield(r, col, slot)
			}
		}
	}
}

// buildFastState derives the fast-tier workspace from the matrix currently
// assembled in s.vals/s.rhsv. It allocates freely — orderings happen once
// per plan (plus the rare monitor-forced reorder), never in the steady
// state.
func (c *Circuit) buildFastState(s *solver) (*fastState, error) {
	c.stats.Orderings++
	n := s.dim
	fs := &fastState{n: n}

	var rows, cols, slots []int32
	s.stampedEntries(func(r, col, slot int) {
		rows = append(rows, int32(r))
		cols = append(cols, int32(col))
		slots = append(slots, int32(slot))
	})

	// --- Threshold-Markowitz ordering on a dense scratch. ---
	d := make([]float64, n*n)
	for i := range slots {
		d[int(rows[i])*n+int(cols[i])] = s.vals[slots[i]]
	}
	actR := make([]int, n) // remaining (active) original rows/cols
	actC := make([]int, n)
	for i := 0; i < n; i++ {
		actR[i], actC[i] = i, i
	}
	rowCnt := make([]int, n)
	colCnt := make([]int, n)
	colMax := make([]float64, n)
	fs.perm = make([]int, n)
	fs.cperm = make([]int, n)
	fs.pivRef = make([]float64, n)
	for k := 0; k < n; k++ {
		// Active-submatrix counts and column maxima. Recomputed per step:
		// the ordering runs once per plan, so O(n^3) total is acceptable
		// and keeps the selection rule trivially deterministic.
		for _, col := range actC {
			colCnt[col] = 0
			colMax[col] = 0
		}
		for _, r := range actR {
			cnt := 0
			row := d[r*n : r*n+n]
			for _, col := range actC {
				v := row[col]
				if v == 0 {
					continue
				}
				cnt++
				colCnt[col]++
				if v < 0 {
					v = -v
				}
				if v > colMax[col] {
					colMax[col] = v
				}
			}
			rowCnt[r] = cnt
		}
		// Best acceptable candidate: minimal Markowitz cost, ties broken
		// by smallest original row then column (deterministic).
		bestR, bestC, bestCost := -1, -1, math.MaxInt64
		for _, r := range actR {
			row := d[r*n : r*n+n]
			for _, col := range actC {
				v := row[col]
				if v < 0 {
					v = -v
				}
				if v == 0 || v < fastSelRel*colMax[col] {
					continue
				}
				cost := (rowCnt[r] - 1) * (colCnt[col] - 1)
				if cost < bestCost ||
					(cost == bestCost && (r < bestR || (r == bestR && col < bestC))) {
					bestR, bestC, bestCost = r, col, cost
				}
			}
		}
		if bestR < 0 {
			// Every active entry is zero: structurally or numerically
			// singular. Report the smallest remaining column, mirroring
			// the exact tier's error text.
			return nil, fmt.Errorf("mna: singular matrix at column %d (floating node?)", actC[0]+1)
		}
		fs.perm[k], fs.cperm[k] = bestR, bestC
		actR = removeInt(actR, bestR)
		actC = removeInt(actC, bestC)
		piv := d[bestR*n+bestC]
		fs.pivRef[k] = math.Abs(piv)
		prow := d[bestR*n : bestR*n+n]
		for _, r := range actR {
			num := d[r*n+bestC]
			if num == 0 {
				continue
			}
			f := num / piv
			row := d[r*n : r*n+n]
			for _, col := range actC {
				if pv := prow[col]; pv != 0 {
					row[col] -= f * pv
				}
			}
		}
	}
	fs.rpos = make([]int, n)
	fs.cpos = make([]int, n)
	for k := 0; k < n; k++ {
		fs.rpos[fs.perm[k]] = k
		fs.cpos[fs.cperm[k]] = k
	}

	// --- Symbolic fill closure under the chosen ordering. ---
	// The numeric scratch above skips rows whose multiplier cancelled to
	// zero, so its touched set can miss structure a later assembly needs.
	// This pass is purely structural: numeric fill is always a subset of
	// it, so every slot the schedule references exists.
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	B := make([]uint64, n*words)
	for i := range rows {
		er := fs.rpos[int(rows[i])]
		ec := fs.cpos[int(cols[i])]
		B[er*words+ec/64] |= 1 << (ec % 64)
	}
	for k := 0; k < n; k++ {
		// The Markowitz pivot is numerically nonzero but can sit on
		// positions the stamped pattern lacks (numeric fill): force it.
		B[k*words+k/64] |= 1 << (k % 64)
		kr := B[k*words : (k+1)*words]
		w0 := k / 64
		maskGE := ^uint64(0) << (k % 64)
		for i := k + 1; i < n; i++ {
			ir := B[i*words : (i+1)*words]
			if ir[w0]&(1<<(k%64)) == 0 {
				continue
			}
			ir[w0] |= kr[w0] & maskGE
			for wi := w0 + 1; wi < words; wi++ {
				ir[wi] |= kr[wi]
			}
		}
	}

	// --- CSR structure in elimination coordinates. ---
	nnz := 0
	for _, wd := range B {
		nnz += bits.OnesCount64(wd)
	}
	fs.rowPtr = make([]int32, n+1)
	fs.colIdx = make([]int32, 0, nnz)
	fs.diag = make([]int32, n)
	for k := 0; k < n; k++ {
		fs.rowPtr[k] = int32(len(fs.colIdx))
		base := k * words
		for wi := 0; wi < words; wi++ {
			wd := B[base+wi]
			for wd != 0 {
				b := bits.TrailingZeros64(wd)
				wd &^= 1 << b
				col := wi*64 + b
				if col == k {
					fs.diag[k] = int32(len(fs.colIdx))
				}
				fs.colIdx = append(fs.colIdx, int32(col))
			}
		}
	}
	fs.rowPtr[n] = int32(len(fs.colIdx))

	// --- Static elimination schedule, grouped by pivot column. ---
	// Targets of column k are the rows i>k with an L entry (i,k); their
	// update destinations are found by one merge walk here, at build time,
	// so the numeric factorization does pure indexed arithmetic.
	colCnt2 := make([]int32, n)
	for i := 0; i < n; i++ {
		for q := fs.rowPtr[i]; q < fs.diag[i]; q++ {
			colCnt2[fs.colIdx[q]]++
		}
	}
	colPtr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		colPtr[i+1] = colPtr[i] + colCnt2[i]
	}
	tgtRow := make([]int32, colPtr[n])
	tgtSlot := make([]int32, colPtr[n])
	fill := make([]int32, n)
	copy(fill, colPtr[:n])
	for i := 0; i < n; i++ { // ascending i: per-column target order is deterministic
		for q := fs.rowPtr[i]; q < fs.diag[i]; q++ {
			col := fs.colIdx[q]
			at := fill[col]
			fill[col]++
			tgtRow[at] = int32(i)
			tgtSlot[at] = q
		}
	}
	for k := 0; k < n; k++ {
		pstart := fs.diag[k] + 1
		tail := fs.rowPtr[k+1] - pstart
		nT := colPtr[k+1] - colPtr[k]
		fs.sched = append(fs.sched, nT, tail)
		for t := colPtr[k]; t < colPtr[k+1]; t++ {
			i, lslot := tgtRow[t], tgtSlot[t]
			fs.sched = append(fs.sched, lslot, i)
			w := lslot + 1
			end := fs.rowPtr[i+1]
			for q := pstart; q < pstart+tail; q++ {
				j := fs.colIdx[q]
				for w < end && fs.colIdx[w] < j {
					w++
				}
				if w >= end || fs.colIdx[w] != j {
					panic("mna: fast symbolic closure missed fill")
				}
				fs.sched = append(fs.sched, w)
			}
		}
	}

	// --- Scatter map and numeric state. ---
	fs.src = slots
	fs.dst = make([]int32, len(slots))
	fs.scatCol = make([]int32, len(slots))
	for i := range slots {
		er := fs.rpos[int(rows[i])]
		ec := int32(fs.cpos[int(cols[i])])
		lo, hi := fs.rowPtr[er], fs.rowPtr[er+1]
		for lo < hi {
			mid := (lo + hi) / 2
			if fs.colIdx[mid] < ec {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		fs.dst[i] = lo
		fs.scatCol[i] = ec
	}
	fs.luvals = make([]float64, nnz)
	fs.inv = make([]float64, n)
	fs.snap = make([]float64, len(slots))
	fs.colScale = make([]float64, n)
	fs.xprev = make([]float64, n+1)
	fs.w = make([]float64, n)
	fs.y = make([]float64, n)
	return fs, nil
}

// removeInt deletes value v from a sorted active-index slice, preserving
// order.
func removeInt(a []int, v int) []int {
	for i, x := range a {
		if x == v {
			return append(a[:i], a[i+1:]...)
		}
	}
	return a
}

// FuzzGenRoundTrip drives the generator itself from fuzzed (seed, index,
// size) coordinates: every generated spec must parse, and its AST must
// reach a printer fixed point — print(parse(src)) reparses to the same
// text. A divergence here means the generator, the parser or the AST
// printer disagree about VASS concrete syntax.
package gen_test

import (
	"testing"

	"vase/internal/assertlang"
	"vase/internal/ast"
	"vase/internal/gen"
	"vase/internal/parser"
)

func FuzzGenRoundTrip(f *testing.F) {
	f.Add(int64(1), 0, uint8(0))
	f.Add(int64(1), 3, uint8(1))
	f.Add(int64(7), 11, uint8(2))
	f.Add(int64(42), 15, uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, index int, sizeByte uint8) {
		if index < 0 {
			index = -index
		}
		size := gen.Size(int(sizeByte) % 4)
		sp := gen.Generate(seed, index, size)

		file, err := parser.Parse(sp.Name+".vhd", sp.Source)
		if err != nil {
			t.Fatalf("generated spec does not parse: %v\n--- source ---\n%s", err, sp.Source)
		}
		printed := ast.FileString(file)
		file2, err := parser.Parse(sp.Name+".vhd", printed)
		if err != nil {
			t.Fatalf("printed AST does not reparse: %v\n--- printed ---\n%s", err, printed)
		}
		if again := ast.FileString(file2); again != printed {
			t.Fatalf("printer not a fixed point\n--- first ---\n%s\n--- second ---\n%s", printed, again)
		}
	})
}

// FuzzAssertParse fuzzes the assertion language round trip: any text the
// parser accepts must reach a printer fixed point — parse(print(parse(s)))
// prints identically — and preserve form, window and signal set. The seed
// corpus is generator-emitted pragmas, so the grammar the generator writes
// and the grammar the parser reads can never drift.
func FuzzAssertParse(f *testing.F) {
	for i := 0; i < 6; i++ {
		sp := gen.Generate(11, i, gen.MixedSize(i))
		for _, a := range sp.Asserts {
			f.Add(a.Text)
		}
	}
	f.Add("always v(x) >= -1.5 and v(x) <= 1.5")
	f.Add("eventually v(out) > 0.5 within 2e-3")
	f.Add("recurrence v(clk) > 0.0 every 1e-3")
	f.Add("bound y in -2.0 .. 2.0")
	f.Fuzz(func(t *testing.T, text string) {
		a, err := assertlang.Parse(text)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		printed := a.String()
		b, err := assertlang.Parse(printed)
		if err != nil {
			t.Fatalf("printed assertion does not reparse: %v\n--- input ---\n%s\n--- printed ---\n%s", err, text, printed)
		}
		if again := b.String(); again != printed {
			t.Fatalf("printer not a fixed point\n--- first ---\n%s\n--- second ---\n%s", printed, again)
		}
		if b.Form != a.Form || b.Window != a.Window {
			t.Fatalf("form/window changed across round trip: %v/%g vs %v/%g\n--- input ---\n%s",
				b.Form, b.Window, a.Form, a.Window, text)
		}
		if len(b.Signals) != len(a.Signals) {
			t.Fatalf("signal set changed across round trip: %v vs %v\n--- input ---\n%s",
				b.Signals, a.Signals, text)
		}
		for i := range a.Signals {
			if b.Signals[i] != a.Signals[i] {
				t.Fatalf("signal set changed across round trip: %v vs %v\n--- input ---\n%s",
					b.Signals, a.Signals, text)
			}
		}
	})
}

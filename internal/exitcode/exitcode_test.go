package exitcode

import (
	"net/http"
	"testing"
)

func TestContractValues(t *testing.T) {
	// The numeric values are the contract: scripts and CI match on them.
	if OK != 0 || Error != 1 || Usage != 2 || Unknown != 3 {
		t.Fatalf("exit-code contract drifted: OK=%d Error=%d Usage=%d Unknown=%d",
			OK, Error, Usage, Unknown)
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		code int
		want int
	}{
		{OK, http.StatusOK},
		{Usage, http.StatusBadRequest},
		{Error, http.StatusUnprocessableEntity},
		{Unknown, http.StatusPartialContent},
		{99, http.StatusUnprocessableEntity}, // anything unrecognized is an error
	}
	for _, c := range cases {
		if got := HTTPStatus(c.code); got != c.want {
			t.Errorf("HTTPStatus(%d) = %d, want %d", c.code, got, c.want)
		}
	}
}

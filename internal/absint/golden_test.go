package absint_test

import (
	"testing"

	"vase/internal/absint"
	"vase/internal/assertlang"
	"vase/internal/compile"
	"vase/internal/corpus"
	"vase/internal/interval"
	"vase/internal/parser"
	"vase/internal/sema"
)

func compileReceiver(t *testing.T) *absint.Result {
	t.Helper()
	ast, err := parser.Parse("receiver.vhd", corpus.ReceiverSource)
	if err != nil {
		t.Fatalf("parse receiver: %v", err)
	}
	designs, err := sema.Analyze(ast)
	if err != nil {
		t.Fatalf("sema receiver: %v", err)
	}
	m, err := compile.Compile(designs[0])
	if err != nil {
		t.Fatalf("compile receiver: %v", err)
	}
	return absint.Analyze(m)
}

// TestGoldenFigure8ClipBound is the static half of the paper's Figure 8
// experiment: the earphone output clips at +-1.5 V no matter how hard
// the line input drives the receiver. The runtime half samples one
// specific 1 kHz input; the abstract interpreter proves the clip for
// EVERY input, because the limiter bounds its output even over the
// unbounded (unannotated) line and local ports.
func TestGoldenFigure8ClipBound(t *testing.T) {
	r := compileReceiver(t)
	earph, ok := r.Signal("earph")
	if !ok {
		t.Fatal("earph did not resolve to a net")
	}
	want := interval.Interval{Lo: -1.5, Hi: 1.5}
	if !earph.Within(want) {
		t.Fatalf("earph hull = %v, want within %v", earph, want)
	}
	if earph.IsTop() {
		t.Fatal("earph hull is Top")
	}
}

// TestGoldenFigure8Verdicts checks the static verdicts for the golden
// Figure 8 assertion set: the bound property is provable from the clip
// hull alone, while the eventually/recurrence properties depend on the
// particular input waveform and must stay Unknown (claiming either way
// would be unsound: a zero line input never clips).
func TestGoldenFigure8Verdicts(t *testing.T) {
	r := compileReceiver(t)
	props := r.CheckAll(corpus.Figure8Assertions())
	want := []absint.Verdict{absint.Prove, absint.Unknown, absint.Unknown, absint.Unknown}
	for i, p := range props {
		if p.Verdict != want[i] {
			t.Errorf("%q: verdict %v, want %v (reason: %s)",
				corpus.Figure8AssertionTexts[i], p.Verdict, want[i], p.Reason)
		}
	}
}

// TestGoldenReceiverSoundness cross-checks every net hull the analysis
// produces for the receiver against a behavioral simulation of the
// Figure 8 drive: no simulated sample may ever escape its static hull.
func TestGoldenReceiverSoundness(t *testing.T) {
	r := compileReceiver(t)
	outs, _, _, err := corpus.Figure8Monitored(t.Context(), 0, nil)
	if err != nil {
		t.Fatalf("figure 8 run: %v", err)
	}
	// The monitored circuit run already cross-checked verdicts elsewhere;
	// here we only need the static Prove to be consistent with runtime.
	props := r.CheckAll(corpus.Figure8Assertions())
	for i, p := range props {
		if p.Verdict == absint.Prove && outs[i].Verdict == assertlang.Fail {
			t.Errorf("%q: static Prove contradicted by runtime Fail",
				corpus.Figure8AssertionTexts[i])
		}
		if p.Verdict == absint.Refute && outs[i].Verdict == assertlang.Pass {
			t.Errorf("%q: static Refute contradicted by runtime Pass",
				corpus.Figure8AssertionTexts[i])
		}
	}
}

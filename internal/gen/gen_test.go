package gen

import (
	"os"
	"strconv"
	"testing"

	"vase/internal/assertlang"
	"vase/internal/compile"
	"vase/internal/diag"
	"vase/internal/lint"
	"vase/internal/mapper"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/sim"
)

// corpusN returns the spec count for corpus-wide tests: small by default
// so tier-1 stays fast, scaled up in CI via VASE_CAMPAIGN_N.
func corpusN(t *testing.T, def int) int {
	if s := os.Getenv("VASE_CAMPAIGN_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad VASE_CAMPAIGN_N=%q", s)
		}
		return n
	}
	return def
}

func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 8; i++ {
		a := Generate(42, i, MixedSize(i))
		b := Generate(42, i, MixedSize(i))
		if a.Source != b.Source {
			t.Fatalf("spec %d: same seed produced different sources", i)
		}
		if len(a.Asserts) != len(b.Asserts) {
			t.Fatalf("spec %d: assertion count differs", i)
		}
	}
	// Different seeds diverge (overwhelmingly likely; a fixed pair keeps
	// the test deterministic).
	if Generate(1, 0, SizeSmall).Source == Generate(2, 0, SizeSmall).Source {
		t.Error("seeds 1 and 2 generated identical sources")
	}
}

func TestSizesGrade(t *testing.T) {
	toy := Generate(7, 0, SizeToy)
	large := Generate(7, 0, SizeLarge)
	if toy.Quants() > 4 {
		t.Errorf("toy spec has %d quantities", toy.Quants())
	}
	if large.Quants() < 100 {
		t.Errorf("large spec has only %d quantities, want 100+", large.Quants())
	}
}

// TestCorpusIsValid is the generator's core contract: every generated
// spec parses, analyzes, compiles, lints clean, synthesizes, and its
// derived assertions hold on a behavioral transient.
func TestCorpusIsValid(t *testing.T) {
	n := corpusN(t, 16)
	for i := 0; i < n; i++ {
		sp := Generate(1, i, MixedSize(i))
		f, err := parser.Parse(sp.Name+".vhd", sp.Source)
		if err != nil {
			t.Fatalf("spec %d parse: %v\n%s", i, err, sp.Source)
		}
		d, err := sema.AnalyzeOne(f)
		if err != nil {
			t.Fatalf("spec %d sema: %v\n%s", i, err, sp.Source)
		}
		m, err := compile.Compile(d)
		if err != nil {
			t.Fatalf("spec %d compile: %v\n%s", i, err, sp.Source)
		}
		diags, err := lint.CheckSource(sp.Name+".vhd", sp.Source, lint.Options{})
		if err != nil {
			t.Fatalf("spec %d lint: %v", i, err)
		}
		for _, dg := range diags {
			// Range-advisory findings are expected on random specs: the
			// generator does not scale signal chains to the cell headroom
			// (same allowance as the front campaign pair).
			switch dg.Code {
			case diag.CodeDeadBranch, diag.CodeDeadNet, diag.CodeSaturation:
				continue
			}
			t.Errorf("spec %d (%s) lint diagnostic: %v", i, sp.Size, dg)
		}
		opts := mapper.DefaultOptions()
		if sp.Quants() > 12 {
			opts.FirstFit = true
		}
		if _, err := mapper.Synthesize(m, opts); err != nil {
			t.Fatalf("spec %d (%s, %d quants) synthesize: %v\n%s",
				i, sp.Size, sp.Quants(), err, sp.Source)
		}
		ms := assertlang.Monitors(sp.Asserts)
		// Assertion signals are output ports (see
		// TestAssertSignalsAreOutputs), which every transient records
		// without explicit probes.
		tr, err := sim.SimulateModule(m, sp.Sources(), sim.Options{
			TStop: sp.TStop, TStep: sp.TStep,
			OnSample: assertlang.StreamSim(ms),
		})
		if err != nil {
			t.Fatalf("spec %d simulate: %v\n%s", i, err, sp.Source)
		}
		for j, o := range assertlang.FinishAll(ms, tr.Truncated) {
			if o.Verdict == assertlang.Fail {
				t.Errorf("spec %d (%s) assertion %q failed: %s\n%s",
					i, sp.Size, sp.Asserts[j].Text, o.Detail, sp.Source)
			}
		}
	}
}

func TestAssertSignalsAreOutputs(t *testing.T) {
	// Generated assertions must reference only output ports — the names
	// every simulator records without extra probes.
	for i := 0; i < 12; i++ {
		sp := Generate(5, i, MixedSize(i))
		outs := make(map[string]bool)
		for _, o := range sp.model.Outs {
			outs[o.Name] = true
		}
		for _, name := range sp.AssertSignals() {
			if !outs[name] {
				t.Errorf("spec %d: assertion signal %q is not an output port", i, name)
			}
		}
	}
}

func TestPragmasRoundTrip(t *testing.T) {
	sp := Generate(9, 3, SizeSmall)
	as, err := assertlang.FromSource(sp.Source)
	if err != nil {
		t.Fatalf("FromSource on generated spec: %v", err)
	}
	if len(as) != len(sp.Asserts) {
		t.Fatalf("pragma round trip lost assertions: %d vs %d", len(as), len(sp.Asserts))
	}
	for i := range as {
		if as[i].Text != sp.Asserts[i].Text {
			t.Errorf("assertion %d text changed: %q vs %q", i, as[i].Text, sp.Asserts[i].Text)
		}
	}
}

func TestFeasibleStages(t *testing.T) {
	for _, k := range []float64{1, 0.5, 0.05, 0.049, 0.004, 1e-6} {
		stages := feasibleStages(k)
		if len(stages) == 0 {
			t.Fatalf("k=%g: no stages", k)
		}
		for _, f := range stages {
			if f < 0.05 || f > 100 {
				t.Errorf("k=%g: stage gain %g outside the library's feasible range", k, f)
			}
		}
	}
}

package netlist

import (
	"fmt"
	"sort"
	"strings"

	"vase/internal/estimate"
)

// SizedOpAmp is one op amp instance after transistor sizing: the design
// step following behavioral synthesis in the VASE flow (Figure 1), which
// the paper applied to the receiver and power-meter netlists.
type SizedOpAmp struct {
	Component string
	Index     int
	Design    estimate.OpAmpDesign
}

// SizingReport assigns every op amp of the netlist a two-stage topology
// sized for its instance requirements, and returns the flat list (stable
// component order).
func (n *Netlist) SizingReport(p estimate.Process, sys estimate.SystemSpec) ([]SizedOpAmp, error) {
	if _, err := n.Estimate(p, sys); err != nil {
		return nil, err
	}
	var out []SizedOpAmp
	for _, c := range n.Components {
		if c.Estimate == nil {
			continue
		}
		for i, d := range c.Estimate.OpAmps {
			out = append(out, SizedOpAmp{Component: c.Name, Index: i, Design: d})
		}
	}
	return out, nil
}

// FormatSizing renders the sizing report as the transistor dimension tables
// a designer would hand to layout: one two-stage op amp per row group.
func FormatSizing(p estimate.Process, sized []SizedOpAmp) string {
	var b strings.Builder
	fmt.Fprintf(&b, "transistor sizing (%s; topology per instance by component selection)\n", p.Name)
	fmt.Fprintf(&b, "%-22s %-18s %8s %10s %10s %12s %10s\n",
		"op amp", "topology", "Cc [pF]", "Itail [uA]", "UGF [MHz]", "SR [V/us]", "area[um2]")
	for _, s := range sized {
		d := s.Design
		label := s.Component
		if s.Index > 0 {
			label = fmt.Sprintf("%s#%d", s.Component, s.Index+1)
		}
		fmt.Fprintf(&b, "%-22s %-18s %8.2f %10.1f %10.2f %12.2f %10.0f\n",
			label, d.Topology, d.Cc*1e12, d.ITail*1e6,
			d.AchievedUGF/1e6, d.AchievedSR/1e6, d.AreaUm2)
		// Transistor dimension table (W/L in µm).
		var dims []string
		for i := 0; i < 8; i++ {
			dims = append(dims, fmt.Sprintf("M%d %.1f/%.1f", i+1, d.W[i], d.L[i]))
		}
		fmt.Fprintf(&b, "    %s\n", strings.Join(dims, "  "))
	}
	return b.String()
}

// AreaBreakdown summarizes the report per cell kind, largest first.
func AreaBreakdown(n *Netlist) string {
	byKind := map[string]float64{}
	for _, c := range n.Components {
		if c.Estimate != nil {
			byKind[c.Cell.Name] += c.Estimate.AreaUm2
		}
	}
	type kv struct {
		name string
		area float64
	}
	var rows []kv
	total := 0.0
	for k, v := range byKind {
		rows = append(rows, kv{k, v})
		total += v
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].area > rows[j].area })
	var b strings.Builder
	b.WriteString("area breakdown:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %10.0f um^2  (%4.1f%%)\n", r.name, r.area, 100*r.area/total)
	}
	fmt.Fprintf(&b, "  %-28s %10.0f um^2\n", "total", total)
	return b.String()
}

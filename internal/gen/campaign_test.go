package gen

import (
	"errors"
	"strings"
	"testing"
)

// TestCampaignNoDivergences drives every redundant pair over a small
// mixed-size corpus: the repo's equivalence contracts must hold on every
// generated spec. CI scales the corpus up via VASE_CAMPAIGN_N.
func TestCampaignNoDivergences(t *testing.T) {
	n := corpusN(t, 6)
	res, err := RunCampaign(11, n, CampaignOptions{Log: t.Logf})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for _, d := range res.Divergences {
		t.Errorf("%s\n--- spec\n%s", d, d.Spec.Source)
	}
	if res.Specs != n {
		t.Errorf("ran %d specs, want %d", res.Specs, n)
	}
	if res.PairRuns == 0 {
		t.Error("no pair runs executed")
	}
}

func TestCampaignPairSelection(t *testing.T) {
	if _, err := RunCampaign(1, 1, CampaignOptions{Pairs: []string{"nosuch"}}); err == nil {
		t.Error("unknown pair accepted")
	}
	res, err := RunCampaign(1, 2, CampaignOptions{Pairs: []string{"front"}})
	if err != nil {
		t.Fatalf("front-only campaign: %v", err)
	}
	if res.PairRuns != 2 {
		t.Errorf("front-only campaign ran %d pair runs, want 2", res.PairRuns)
	}
}

// TestCampaignParallelMatchesSequential pins the Workers contract: the
// campaign's observable result is identical at any worker count.
func TestCampaignParallelMatchesSequential(t *testing.T) {
	run := func(workers int) *CampaignResult {
		res, err := RunCampaign(17, 8, CampaignOptions{
			Pairs:   []string{"front", "monitors"},
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("campaign (workers=%d): %v", workers, err)
		}
		return res
	}
	seq, par := run(1), run(4)
	if seq.Specs != par.Specs || seq.PairRuns != par.PairRuns ||
		seq.Skipped != par.Skipped || len(seq.Divergences) != len(par.Divergences) {
		t.Errorf("parallel campaign diverges from sequential: %+v vs %+v", seq, par)
	}
}

func TestCampaignSizeCapSkips(t *testing.T) {
	// A large spec must skip the solver pair (capped at 10 quantities)
	// rather than grind a circuit-level solve through 100+ nets.
	size := SizeLarge
	res, err := RunCampaign(3, 1, CampaignOptions{
		Pairs: []string{"solver"},
		Size:  &size,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if res.Skipped != 1 || res.PairRuns != 0 {
		t.Errorf("large spec: %d runs, %d skipped; want 0 runs, 1 skipped",
			res.PairRuns, res.Skipped)
	}
}

// hasAbs reports whether the model uses an abs() node — the marker the
// injected-failure shrink test keys on.
func hasAbs(sp *Spec) bool {
	found := false
	for _, q := range sp.model.Quants {
		for _, e := range []*expr{q.RHS, q.Alt} {
			e.walk(func(x *expr) {
				if x.Op == opAbs {
					found = true
				}
			})
		}
	}
	return found
}

// TestShrinkInjectedFailure plants a synthetic divergence (any spec whose
// model contains an abs node "fails") and checks the shrinker reduces a
// medium spec to a minimal reproducer that still fails.
func TestShrinkInjectedFailure(t *testing.T) {
	pred := func(sp *Spec) error {
		if hasAbs(sp) {
			return errors.New("injected: model contains abs")
		}
		return nil
	}
	var victim *Spec
	for i := 0; i < 64 && victim == nil; i++ {
		sp := Generate(21, i, SizeMedium)
		if pred(sp) != nil {
			victim = sp
		}
	}
	if victim == nil {
		t.Fatal("no medium spec with an abs node in 64 tries")
	}
	shrunk := Shrink(victim, pred)
	if pred(shrunk) == nil {
		t.Fatal("shrunken spec no longer fails the predicate")
	}
	if shrunk.Quants() >= victim.Quants() {
		t.Errorf("shrink did not reduce: %d -> %d quantities",
			victim.Quants(), shrunk.Quants())
	}
	if shrunk.Quants() > 3 {
		t.Errorf("shrunken reproducer still has %d quantities (want <= 3)\n%s",
			shrunk.Quants(), shrunk.Source)
	}
	// The reproducer must still be a valid spec: the campaign's front
	// contract holds on it.
	if err := pairFront(shrunk); err != nil {
		t.Errorf("shrunken spec is no longer well-formed: %v\n%s", err, shrunk.Source)
	}
}

// TestShrinkCampaignIntegration wires the injected failure through
// RunCampaign's shrink path.
func TestShrinkCampaignIntegration(t *testing.T) {
	// The campaign cannot inject predicates, so exercise Shrink via a
	// divergence-shaped wrapper instead: a pair that rejects any source
	// containing "'dot".
	pred := func(sp *Spec) error {
		if strings.Contains(sp.Source, "'dot") {
			return errors.New("injected: uses an integrator")
		}
		return nil
	}
	var victim *Spec
	for i := 0; i < 64 && victim == nil; i++ {
		sp := Generate(33, i, SizeSmall)
		if pred(sp) != nil {
			victim = sp
		}
	}
	if victim == nil {
		t.Fatal("no small spec with a state in 64 tries")
	}
	shrunk := Shrink(victim, pred)
	if pred(shrunk) == nil {
		t.Fatal("shrunken spec lost the failing feature")
	}
	if shrunk.Quants() > 2 {
		t.Errorf("expected a 1-2 quantity reproducer, got %d:\n%s", shrunk.Quants(), shrunk.Source)
	}
}

// TestFastTierSeededSpecs runs the fast pair's full contract (budget
// comparison, one-directional outcome totality, determinism) over a seed
// stream disjoint from the campaign's, so `go test` exercises the fast
// tier on generated circuits beyond the fixed corpus even at the default
// campaign size.
func TestFastTierSeededSpecs(t *testing.T) {
	n := corpusN(t, 4)
	for i := 0; i < n; i++ {
		sp := Generate(7, i, SizeSmall)
		if err := pairFast(sp); err != nil {
			t.Errorf("seed 7 index %d: %v", i, err)
		}
	}
}

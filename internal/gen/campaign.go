package gen

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vase/internal/absint"
	"vase/internal/assertlang"
	"vase/internal/compile"
	"vase/internal/diag"
	"vase/internal/lint"
	"vase/internal/mapper"
	"vase/internal/mna"
	"vase/internal/parser"
	"vase/internal/pipeline"
	"vase/internal/sema"
	"vase/internal/sim"
	"vase/internal/vhif"
)

// A Pair is one redundant implementation pair the differential campaign
// compares. Run returns nil when both sides agree (byte-level, where the
// contract is bitwise) and a descriptive error on any divergence.
type Pair struct {
	Name string
	Doc  string
	// MaxQuants skips specs larger than this (0 = no cap) — expensive
	// comparisons (exhaustive search, circuit-level solves) run on the
	// small grades only.
	MaxQuants int
	Run       func(*Spec) error
}

// Pairs returns the registered redundant pairs in execution order.
func Pairs() []*Pair {
	return []*Pair{
		{
			Name: "front",
			Doc:  "generated specs parse, lint clean and synthesize (generator contract)",
			Run:  pairFront,
		},
		{
			Name: "mapper",
			Doc:  "parallel vs sequential architecture search returns identical netlists",
			Run:  pairMapper,
		},
		{
			Name: "pipeline",
			Doc:  "cold vs disk-cached compilation and synthesis are byte-identical",
			Run:  pairPipeline,
		},
		{
			Name:      "solver",
			Doc:       "reference vs dense vs CSR linear solvers agree bitwise on DC/transient/AC",
			MaxQuants: 10,
			Run:       pairSolver,
		},
		{
			Name:      "fast",
			Doc:       "fast-tier solver stays within the error budget of the reference and is deterministic",
			MaxQuants: 10,
			Run:       pairFast,
		},
		{
			Name: "anytime",
			Doc:  "truncated transients are bitwise prefixes; budgeted searches stay valid",
			Run:  pairAnytime,
		},
		{
			Name: "monitors",
			Doc:  "streaming and offline assertion checking agree; derived assertions hold",
			Run:  pairMonitors,
		},
		{
			Name: "static",
			Doc:  "abstract-interpretation verdicts are never contradicted by runtime monitors",
			Run:  pairStatic,
		},
	}
}

// PairNames lists the registered pair names.
func PairNames() []string {
	ps := Pairs()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// CompileSpec runs the front end directly (no shared caches, so campaign
// runs are hermetic).
func CompileSpec(sp *Spec) (*vhif.Module, error) {
	f, err := parser.Parse(sp.Name+".vhd", sp.Source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	d, err := sema.AnalyzeOne(f)
	if err != nil {
		return nil, fmt.Errorf("sema: %w", err)
	}
	m, err := compile.Compile(d)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	return m, nil
}

// searchOptions picks the synthesis strategy for a spec: exhaustive
// branch-and-bound on toys, first-fit on everything larger (the
// time-effective heuristic), so stress cases stay tractable.
func searchOptions(sp *Spec) mapper.Options {
	opts := mapper.DefaultOptions()
	if sp.Quants() > 12 {
		opts.FirstFit = true
	}
	return opts
}

func pairFront(sp *Spec) error {
	m, err := CompileSpec(sp)
	if err != nil {
		return err
	}
	diags, err := lint.CheckSource(sp.Name+".vhd", sp.Source, lint.Options{})
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	for _, d := range diags {
		// The range-driven advisory findings (dead branch, dead net,
		// saturation) are legitimate on random specs — the generator does
		// not scale its signal chains to the cell headroom and may pick
		// thresholds that pin a comparator. A statically-violated or
		// vacuous assertion (VASS0581/0582), by contrast, would mean the
		// generator's own derived bounds are inconsistent with the prover,
		// so those stay divergences.
		switch d.Code {
		case diag.CodeDeadBranch, diag.CodeDeadNet, diag.CodeSaturation:
			continue
		}
		if d.Severity >= diag.Warning {
			return fmt.Errorf("lint: generated spec not clean: %v", d)
		}
	}
	if _, err := mapper.Synthesize(m, searchOptions(sp)); err != nil {
		return fmt.Errorf("synthesize: %w", err)
	}
	return nil
}

func pairMapper(sp *Spec) error {
	m, err := CompileSpec(sp)
	if err != nil {
		return err
	}
	opts := searchOptions(sp)
	opts.Workers = 1
	seq, err := mapper.Synthesize(m, opts)
	if err != nil {
		return fmt.Errorf("sequential search: %w", err)
	}
	opts.Workers = 4
	par, err := mapper.Synthesize(m, opts)
	if err != nil {
		return fmt.Errorf("parallel search: %w", err)
	}
	if s, p := seq.Netlist.Dump(), par.Netlist.Dump(); s != p {
		return fmt.Errorf("netlist bytes diverge between 1 and 4 workers:\n--- sequential\n%s\n--- parallel\n%s", s, p)
	}
	if !bitsEq(seq.Report.AreaUm2, par.Report.AreaUm2) {
		return fmt.Errorf("area diverges: %g (1 worker) vs %g (4 workers)",
			seq.Report.AreaUm2, par.Report.AreaUm2)
	}
	return nil
}

func pairPipeline(sp *Spec) error {
	dir, err := os.MkdirTemp("", "vase-campaign-")
	if err != nil {
		return fmt.Errorf("tempdir: %w", err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	opts := searchOptions(sp)

	run := func() (string, string, error) {
		p, err := pipeline.New(pipeline.Options{CacheDir: dir})
		if err != nil {
			return "", "", fmt.Errorf("pipeline: %w", err)
		}
		cr, err := p.Compile(ctx, sp.Name+".vhd", sp.Source)
		if err != nil {
			return "", "", fmt.Errorf("compile: %w", err)
		}
		res, _, err := p.SynthesizeText(ctx, cr.Module, cr.Text, opts)
		if err != nil {
			return "", "", fmt.Errorf("synthesize: %w", err)
		}
		return cr.Text, res.Netlist.Dump(), nil
	}
	coldVHIF, coldNet, err := run()
	if err != nil {
		return fmt.Errorf("cold run: %w", err)
	}
	// The second pipeline shares only the on-disk store; its artifacts
	// must be byte-identical to the cold computation.
	warmVHIF, warmNet, err := run()
	if err != nil {
		return fmt.Errorf("warm run: %w", err)
	}
	if coldVHIF != warmVHIF {
		return fmt.Errorf("VHIF text diverges between cold and disk-cached compilation:\n--- cold\n%s\n--- warm\n%s", coldVHIF, warmVHIF)
	}
	if coldNet != warmNet {
		return fmt.Errorf("netlist diverges between cold and disk-cached synthesis:\n--- cold\n%s\n--- warm\n%s", coldNet, warmNet)
	}
	return nil
}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// solverObservation is the complete observable output of one solver mode.
type solverObservation struct {
	dc    mna.Solution
	dcErr string
	tr    *mna.Tran
	trErr string
	nodes int
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// specObserver elaborates a synthesized spec and returns a closure that runs
// the circuit-level DC + short-transient observation under a solver mode —
// the shared harness of the solver and fast campaign pairs.
func specObserver(sp *Spec, res *mapper.Result) func(mode mna.SolverMode, workers int) (*solverObservation, error) {
	waves := make(map[string]mna.Waveform, len(sp.Inputs))
	for name, w := range sp.Inputs { //vase:unordered (map-to-map conversion)
		waves[name] = mna.Waveform(w.Source())
	}
	return func(mode mna.SolverMode, workers int) (*solverObservation, error) {
		el, err := mna.Elaborate(res.Netlist, waves)
		if err != nil {
			return nil, fmt.Errorf("elaborate: %w", err)
		}
		c := el.Circuit
		c.Solver = mode
		c.Workers = workers
		o := &solverObservation{nodes: c.NumNodes()}
		dc, err := c.DC()
		o.dc, o.dcErr = dc, errText(err)
		// A short circuit-level window: long enough to exercise the
		// macromodels, short enough for the allocate-per-solve reference
		// eliminator.
		tr, err := c.Transient(100*sp.TStep, sp.TStep/5)
		o.tr, o.trErr = tr, errText(err)
		return o, nil
	}
}

func pairSolver(sp *Spec) error {
	m, err := CompileSpec(sp)
	if err != nil {
		return err
	}
	res, err := mapper.Synthesize(m, searchOptions(sp))
	if err != nil {
		return fmt.Errorf("synthesize: %w", err)
	}
	observe := specObserver(sp, res)
	ref, err := observe(mna.SolverReference, 1)
	if err != nil {
		return err
	}
	for _, alt := range []struct {
		label   string
		mode    mna.SolverMode
		workers int
	}{
		{"dense", mna.SolverDense, 1},
		{"sparse", mna.SolverSparse, 1},
		{"auto/2-workers", mna.SolverAuto, 2},
	} {
		got, err := observe(alt.mode, alt.workers)
		if err != nil {
			return fmt.Errorf("%s: %w", alt.label, err)
		}
		if err := compareObservations(ref, got); err != nil {
			return fmt.Errorf("%s vs reference: %w", alt.label, err)
		}
	}
	return nil
}

// pairFast compares the tolerance-tier engine against the reference under
// the fast tier's contract: not bitwise identity but the ErrorBudget — every
// DC value and transient sample within |fast-ref| <= AbsTol + RelTol*|ref|
// (with the one-sample event-skew allowance for discrete devices). The
// outcome contract is one-directional: the fast tier must not fail where
// the reference succeeds, but it may succeed where the reference diverges —
// its damped chord iteration takes a different path through a
// Newton-multistable landscape and occasionally lands on an operating
// point the full-Newton reference misses; a chord fixed point satisfies
// the same nonlinear system, so the extra answer is legitimate (just
// unverifiable, since there is no reference to compare against). A second
// fast run must be byte-identical to the first (determinism is what makes
// fast-tier results cacheable).
func pairFast(sp *Spec) error {
	m, err := CompileSpec(sp)
	if err != nil {
		return err
	}
	res, err := mapper.Synthesize(m, searchOptions(sp))
	if err != nil {
		return fmt.Errorf("synthesize: %w", err)
	}
	observe := specObserver(sp, res)
	ref, err := observe(mna.SolverReference, 1)
	if err != nil {
		return err
	}
	fast, err := observe(mna.SolverFast, 1)
	if err != nil {
		return fmt.Errorf("fast: %w", err)
	}
	var budget mna.ErrorBudget
	if ref.dcErr == "" {
		if fast.dcErr != "" {
			return fmt.Errorf("fast DC fails where reference succeeds: %q", fast.dcErr)
		}
		if err := budget.CompareSolution(ref.dc, fast.dc); err != nil {
			return fmt.Errorf("DC outside budget: %w", err)
		}
	}
	if ref.trErr == "" && ref.dcErr == "" {
		if fast.trErr != "" {
			return fmt.Errorf("fast transient fails where reference succeeds: %q", fast.trErr)
		}
		if _, err := budget.CompareTran(ref.tr, fast.tr); err != nil {
			return fmt.Errorf("transient outside budget: %w", err)
		}
	}
	again, err := observe(mna.SolverFast, 1)
	if err != nil {
		return fmt.Errorf("fast rerun: %w", err)
	}
	if err := compareObservations(fast, again); err != nil {
		return fmt.Errorf("fast tier not deterministic: %w", err)
	}
	return nil
}

// compareObservations demands bitwise equality (identical errors count as
// agreement: every mode must fail the same way).
func compareObservations(ref, got *solverObservation) error {
	if ref.dcErr != got.dcErr {
		return fmt.Errorf("DC error %q, reference %q", got.dcErr, ref.dcErr)
	}
	if len(ref.dc) != len(got.dc) {
		return fmt.Errorf("DC dimension %d, reference %d", len(got.dc), len(ref.dc))
	}
	for i := range ref.dc {
		if !bitsEq(ref.dc[i], got.dc[i]) {
			return fmt.Errorf("DC[%d] %x, reference %x", i,
				math.Float64bits(got.dc[i]), math.Float64bits(ref.dc[i]))
		}
	}
	if ref.trErr != got.trErr {
		return fmt.Errorf("transient error %q, reference %q", got.trErr, ref.trErr)
	}
	if (ref.tr == nil) != (got.tr == nil) {
		return fmt.Errorf("transient presence mismatch")
	}
	if ref.tr == nil {
		return nil
	}
	if len(ref.tr.Time) != len(got.tr.Time) || ref.tr.Truncated != got.tr.Truncated {
		return fmt.Errorf("transient shape mismatch: %d/%v, reference %d/%v",
			len(got.tr.Time), got.tr.Truncated, len(ref.tr.Time), ref.tr.Truncated)
	}
	for n := 1; n <= ref.nodes; n++ {
		rw, gw := ref.tr.V[mna.Node(n)], got.tr.V[mna.Node(n)]
		for i := range rw {
			if !bitsEq(rw[i], gw[i]) {
				return fmt.Errorf("node %d sample %d (t=%g): %x, reference %x",
					n, i, ref.tr.Time[i], math.Float64bits(gw[i]), math.Float64bits(rw[i]))
			}
		}
	}
	return nil
}

func pairAnytime(sp *Spec) error {
	m, err := CompileSpec(sp)
	if err != nil {
		return err
	}
	opts := sim.Options{TStop: sp.TStop, TStep: sp.TStep}
	full, err := sim.SimulateModule(m, sp.Sources(), opts)
	if err != nil {
		return fmt.Errorf("full transient: %w", err)
	}
	opts.MaxSteps = len(full.Time) / 2
	if opts.MaxSteps < 1 {
		opts.MaxSteps = 1
	}
	part, err := sim.SimulateModule(m, sp.Sources(), opts)
	if err != nil {
		return fmt.Errorf("budgeted transient: %w", err)
	}
	if !part.Truncated {
		return fmt.Errorf("step budget %d did not truncate a %d-sample run",
			opts.MaxSteps, len(full.Time))
	}
	if len(part.Time) >= len(full.Time) {
		return fmt.Errorf("truncated run has %d samples, full run %d",
			len(part.Time), len(full.Time))
	}
	for i := range part.Time {
		if !bitsEq(part.Time[i], full.Time[i]) {
			return fmt.Errorf("time[%d] diverges: %x vs %x",
				i, math.Float64bits(part.Time[i]), math.Float64bits(full.Time[i]))
		}
	}
	for name, pw := range part.Signals { //vase:unordered (any divergence fails; per-key comparison)
		fw, ok := full.Signals[name]
		if !ok {
			return fmt.Errorf("signal %q only in truncated run", name)
		}
		for i := range pw {
			if !bitsEq(pw[i], fw[i]) {
				return fmt.Errorf("signal %q sample %d (t=%g) diverges: %x vs %x",
					name, i, part.Time[i], math.Float64bits(pw[i]), math.Float64bits(fw[i]))
			}
		}
	}

	// A node-budgeted search must stay an anytime algorithm: a valid
	// (possibly nonoptimal) netlist or a clean error — never a corrupt
	// result. When the budget did not truncate, the result must equal the
	// unbudgeted search's.
	mopts := searchOptions(sp)
	fullRes, err := mapper.Synthesize(m, mopts)
	if err != nil {
		return fmt.Errorf("unbudgeted search: %w", err)
	}
	mopts.MaxNodes = 64
	budRes, err := mapper.Synthesize(m, mopts)
	if err != nil {
		return fmt.Errorf("budgeted search errored (anytime contract wants an incumbent): %w", err)
	}
	if budRes.Netlist == nil || budRes.Report == nil {
		return fmt.Errorf("budgeted search returned nil netlist/report")
	}
	if !budRes.Nonoptimal && budRes.Netlist.Dump() != fullRes.Netlist.Dump() {
		return fmt.Errorf("budgeted search claims optimality but differs from the unbudgeted result")
	}
	return nil
}

func pairMonitors(sp *Spec) error {
	m, err := CompileSpec(sp)
	if err != nil {
		return err
	}
	check := func(maxSteps int) ([]assertlang.Outcome, []assertlang.Outcome, *sim.Trace, error) {
		ms := assertlang.Monitors(sp.Asserts)
		tr, err := sim.SimulateModule(m, sp.Sources(), sim.Options{
			TStop: sp.TStop, TStep: sp.TStep, MaxSteps: maxSteps,
			OnSample: assertlang.StreamSim(ms),
		})
		if err != nil {
			return nil, nil, nil, err
		}
		streaming := assertlang.FinishAll(ms, tr.Truncated)
		offline := assertlang.CheckTrace(sp.Asserts, tr)
		return streaming, offline, tr, nil
	}
	streaming, offline, tr, err := check(0)
	if err != nil {
		return fmt.Errorf("transient: %w", err)
	}
	for i := range streaming {
		if streaming[i].Verdict != offline[i].Verdict {
			return fmt.Errorf("assertion %q: streaming %v, offline %v",
				sp.Asserts[i].Text, streaming[i].Verdict, offline[i].Verdict)
		}
		if streaming[i].Verdict == assertlang.Fail {
			return fmt.Errorf("derived assertion %q failed on the full run: %s",
				sp.Asserts[i].Text, streaming[i].Detail)
		}
	}
	// On a truncated prefix every verdict must be Pass or Unknown — a
	// Fail would claim a violation the sound prefix semantics cannot
	// justify (the full run above just showed none exists).
	pStream, pOff, ptr, err := check(len(tr.Time) / 2)
	if err != nil {
		return fmt.Errorf("truncated transient: %w", err)
	}
	if !ptr.Truncated {
		return fmt.Errorf("step budget did not truncate the monitor run")
	}
	for i := range pStream {
		if pStream[i].Verdict != pOff[i].Verdict {
			return fmt.Errorf("assertion %q on prefix: streaming %v, offline %v",
				sp.Asserts[i].Text, pStream[i].Verdict, pOff[i].Verdict)
		}
		if pStream[i].Verdict == assertlang.Fail {
			return fmt.Errorf("assertion %q fails on a truncated prefix of a passing run",
				sp.Asserts[i].Text)
		}
	}
	return nil
}

// pairStatic is the soundness campaign of the abstract interpreter: the
// static verdict for every derived assertion must respect the contract
// against the runtime monitors — a Prove can never coexist with a runtime
// Fail, a Refute can never coexist with a runtime Pass. The runtime side
// observes one concrete input waveform; the static side claims ALL of
// them, so any contradiction is a transfer-function or fixpoint bug, never
// a generator artifact.
func pairStatic(sp *Spec) error {
	m, err := CompileSpec(sp)
	if err != nil {
		return err
	}
	r := absint.Analyze(m)
	props := r.CheckAll(sp.Asserts)
	ms := assertlang.Monitors(sp.Asserts)
	tr, err := sim.SimulateModule(m, sp.Sources(), sim.Options{
		TStop: sp.TStop, TStep: sp.TStep,
		OnSample: assertlang.StreamSim(ms),
	})
	if err != nil {
		return fmt.Errorf("transient: %w", err)
	}
	outs := assertlang.FinishAll(ms, tr.Truncated)
	for i, p := range props {
		if p.Verdict == absint.Prove && outs[i].Verdict == assertlang.Fail {
			return fmt.Errorf("assertion %q: static Prove contradicted by runtime Fail (%s; static hulls: %s)",
				sp.Asserts[i].Text, outs[i].Detail, p.Reason)
		}
		if p.Verdict == absint.Refute && outs[i].Verdict == assertlang.Pass {
			return fmt.Errorf("assertion %q: static Refute contradicted by runtime Pass (static hulls: %s)",
				sp.Asserts[i].Text, p.Reason)
		}
	}
	return nil
}

// Divergence is one campaign failure: a spec on which a redundant pair
// disagreed, plus its shrunken reproducer when shrinking ran.
type Divergence struct {
	Seed  int64
	Index int
	Size  Size
	Pair  string
	Err   error
	Spec  *Spec
	// Shrunk is the minimal model still reproducing the divergence (nil
	// when shrinking was disabled).
	Shrunk *Spec
}

func (d *Divergence) String() string {
	return fmt.Sprintf("pair %q diverged on spec seed=%d index=%d size=%s: %v",
		d.Pair, d.Seed, d.Index, d.Size, d.Err)
}

// CampaignOptions configures RunCampaign.
type CampaignOptions struct {
	// Pairs selects pair names to run (nil = all registered pairs).
	Pairs []string
	// Size forces one size grade; nil uses the mixed ladder (MixedSize).
	Size *Size
	// Shrink minimizes each failing spec to a reproducer.
	Shrink bool
	// MaxDivergences stops the campaign early (0 = collect all).
	MaxDivergences int
	// Workers runs specs concurrently (0 or 1 = sequential). Every
	// spec×pair combination is evaluated hermetically, so the divergence
	// set is independent of the worker count; divergences are reported in
	// spec order either way.
	Workers int
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Specs       int
	PairRuns    int
	Skipped     int // pair×spec combinations skipped by MaxQuants caps
	Divergences []*Divergence
	Elapsed     time.Duration
}

// RunCampaign generates n specs from the seed and drives every selected
// redundant pair over each, recording divergences (shrunken to minimal
// reproducers when opts.Shrink is set).
func RunCampaign(seed int64, n int, opts CampaignOptions) (*CampaignResult, error) {
	pairs, err := selectPairs(opts.Pairs)
	if err != nil {
		return nil, err
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	start := time.Now() //vase:walltime (campaign telemetry)
	res := &CampaignResult{}
	var (
		mu      sync.Mutex
		next    atomic.Int64
		stopped atomic.Bool
	)
	next.Store(-1)
	runSpec := func() {
		for {
			i := int(next.Add(1))
			if i >= n || stopped.Load() {
				return
			}
			size := MixedSize(i)
			if opts.Size != nil {
				size = *opts.Size
			}
			sp := Generate(seed, i, size)
			var runs, skipped int
			var divs []*Divergence
			for _, p := range pairs {
				if p.MaxQuants > 0 && sp.Quants() > p.MaxQuants {
					skipped++
					continue
				}
				runs++
				err := p.Run(sp)
				if err == nil {
					continue
				}
				d := &Divergence{
					Seed: seed, Index: i, Size: size,
					Pair: p.Name, Err: err, Spec: sp,
				}
				if opts.Shrink {
					d.Shrunk = Shrink(sp, p.Run)
				}
				divs = append(divs, d)
			}
			mu.Lock()
			res.Specs++
			res.PairRuns += runs
			res.Skipped += skipped
			for _, d := range divs {
				logf("DIVERGENCE %s", d)
				if d.Shrunk != nil {
					logf("shrunk seed=%d index=%d: %d -> %d quantities",
						seed, i, d.Spec.Quants(), d.Shrunk.Quants())
				}
			}
			res.Divergences = append(res.Divergences, divs...)
			if opts.MaxDivergences > 0 && len(res.Divergences) >= opts.MaxDivergences {
				stopped.Store(true)
			}
			if res.Specs%50 == 0 {
				logf("%d/%d specs, %d pair runs, %d divergences",
					res.Specs, n, res.PairRuns, len(res.Divergences))
			}
			mu.Unlock()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runSpec()
		}()
	}
	wg.Wait()
	// Workers complete specs out of order; normalize so the report (and
	// the first divergence a caller inspects) is worker-count independent.
	sort.Slice(res.Divergences, func(a, b int) bool {
		da, db := res.Divergences[a], res.Divergences[b]
		if da.Index != db.Index {
			return da.Index < db.Index
		}
		return da.Pair < db.Pair
	})
	res.Elapsed = time.Since(start) //vase:walltime (campaign telemetry)
	return res, nil
}

func selectPairs(names []string) ([]*Pair, error) {
	all := Pairs()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Pair, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []*Pair
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("gen: unknown pair %q (have %v)", n, PairNames())
		}
		out = append(out, p)
	}
	return out, nil
}

package assertlang

import (
	"fmt"
	"math"
)

// Verdict is the three-valued outcome of a monitored assertion.
type Verdict int

// Verdicts. Unknown is the verdict of an assertion that a truncated trace
// (Trace.Truncated / Tran.Truncated) left unresolved: the observed prefix
// neither satisfied nor conclusively violated it.
const (
	Unknown Verdict = iota
	Pass
	Fail
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "PASS"
	case Fail:
		return "FAIL"
	case Unknown:
		return "UNKNOWN"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Outcome is the resolved result of one monitor.
type Outcome struct {
	Assertion *Assertion
	Verdict   Verdict
	// At is the trace time the verdict was decided (the violation time for
	// Fail, the satisfaction time for an eventually Pass, the last observed
	// sample otherwise). NaN when no sample was observed.
	At float64
	// Detail explains the verdict in one line.
	Detail string
}

func (o Outcome) String() string {
	return fmt.Sprintf("%-7s %s  (%s)", o.Verdict, o.Assertion.Text, o.Detail)
}

// Monitor is the streaming evaluator of one assertion. Feed it samples in
// time order with Step, then resolve it with Finish. A monitor is
// single-use and not safe for concurrent use.
type Monitor struct {
	a *Assertion

	started  bool
	lastT    float64
	firstT   float64
	decided  bool // verdict fixed before Finish (early Fail / eventually Pass)
	verdict  Verdict
	at       float64
	detail   string
	lastHold float64 // recurrence: time the predicate last held
	everHeld bool
	skipped  bool // a referenced signal was unavailable
}

// NewMonitor compiles the assertion into a streaming monitor.
func NewMonitor(a *Assertion) *Monitor {
	return &Monitor{a: a, at: math.NaN()}
}

// Assertion returns the monitored assertion.
func (m *Monitor) Assertion() *Assertion { return m.a }

// Decided reports that the monitor has already reached a final verdict;
// further samples cannot change it.
func (m *Monitor) Decided() bool { return m.decided }

// Step observes one sample at time t. env resolves signal names to values;
// returning ok=false marks the signal unavailable, which resolves the whole
// monitor to Unknown (a monitor must never fail on a probe it cannot see).
func (m *Monitor) Step(t float64, env func(name string) (float64, bool)) {
	if m.decided || m.skipped {
		return
	}
	if !m.started {
		m.started = true
		m.firstT = t
		m.lastHold = t
	}
	m.lastT = t
	val, ok := m.a.Pred.Eval(env)
	if !ok {
		m.skipped = true
		m.detail = "a referenced signal is not recorded in this trace"
		return
	}
	switch m.a.Form {
	case Always:
		if !val {
			m.decide(Fail, t, fmt.Sprintf("violated at t=%g", t))
		}
	case Eventually:
		rel := t - m.firstT
		if val && rel <= m.a.Window {
			m.decide(Pass, t, fmt.Sprintf("satisfied at t=%g (window %g)", t, m.a.Window))
		} else if !val && rel > m.a.Window {
			m.decide(Fail, t, fmt.Sprintf("window of %g s expired at t=%g without the predicate holding", m.a.Window, t))
		}
	case Recurrence:
		if val {
			m.lastHold = t
			m.everHeld = true
		} else if gap := t - m.lastHold; gap > m.a.Window {
			m.decide(Fail, t, fmt.Sprintf("no satisfying sample for %g s (> every %g) ending at t=%g", gap, m.a.Window, t))
		}
	}
}

func (m *Monitor) decide(v Verdict, at float64, detail string) {
	m.decided = true
	m.verdict = v
	m.at = at
	m.detail = detail
}

// Finish resolves the monitor after the last sample. truncated reports that
// the trace was cut short (cancellation, deadline, step budget): an
// assertion that has not already failed on the observed prefix is then
// inconclusive and resolves to Unknown, never Fail — the missing suffix
// could still have satisfied (or, for always/recurrence, only later
// violated) the property.
func (m *Monitor) Finish(truncated bool) Outcome {
	out := Outcome{Assertion: m.a, Verdict: m.verdict, At: m.at, Detail: m.detail}
	if m.decided {
		// An early verdict stands: a violation already observed in the
		// prefix is conclusive even when the trace is truncated, and an
		// eventually-within satisfaction can never be retracted.
		return out
	}
	if m.skipped || !m.started {
		out.Verdict = Unknown
		if out.Detail == "" {
			out.Detail = "no samples observed"
		}
		return out
	}
	out.At = m.lastT
	if truncated {
		out.Verdict = Unknown
		out.Detail = fmt.Sprintf("trace truncated at t=%g before the property resolved", m.lastT)
		return out
	}
	switch m.a.Form {
	case Always:
		out.Verdict = Pass
		out.Detail = fmt.Sprintf("held at all %s samples", span(m.firstT, m.lastT))
	case Eventually:
		if m.lastT-m.firstT < m.a.Window {
			// The run ended before the response window closed: the
			// property is unresolved, not violated.
			out.Verdict = Unknown
			out.Detail = fmt.Sprintf("trace ends at t=%g, before the %g s window closes", m.lastT, m.a.Window)
		} else {
			out.Verdict = Fail
			out.Detail = fmt.Sprintf("window of %g s expired without the predicate holding", m.a.Window)
		}
	case Recurrence:
		if m.lastT-m.firstT < m.a.Window {
			out.Verdict = Unknown
			out.Detail = fmt.Sprintf("trace spans %g s, shorter than the %g s recurrence window", m.lastT-m.firstT, m.a.Window)
		} else if !m.everHeld {
			out.Verdict = Fail
			out.Detail = "the predicate never held"
		} else {
			out.Verdict = Pass
			out.Detail = fmt.Sprintf("recurred with gaps <= %g s over %s", m.a.Window, span(m.firstT, m.lastT))
		}
	}
	return out
}

func span(t0, t1 float64) string { return fmt.Sprintf("[%g, %g]", t0, t1) }

// CheckSampled runs monitors for every assertion over an already-recorded
// trace: time holds the sample instants, get resolves (signal, sample
// index) to a value, truncated carries the trace's truncation flag. It is
// the offline twin of the streaming path and returns one outcome per
// assertion, in order.
func CheckSampled(as []*Assertion, time []float64, get func(name string, i int) (float64, bool), truncated bool) []Outcome {
	ms := make([]*Monitor, len(as))
	for i, a := range as {
		ms[i] = NewMonitor(a)
	}
	for i, t := range time {
		i := i
		env := func(name string) (float64, bool) { return get(name, i) }
		for _, m := range ms {
			m.Step(t, env)
		}
	}
	out := make([]Outcome, len(ms))
	for i, m := range ms {
		out[i] = m.Finish(truncated)
	}
	return out
}

// Failed reports whether any outcome is a conclusive Fail.
func Failed(outs []Outcome) bool {
	for _, o := range outs {
		if o.Verdict == Fail {
			return true
		}
	}
	return false
}

package patterns

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// rulesRevision names the matcher rule set. The pattern library is code,
// not data, so its cache fingerprint cannot be derived from a catalog the
// way internal/library's is; instead this constant enumerates the rules and
// carries a version tag. Bump the tag whenever a rule's covered sub-graph,
// parameters or preference order changes — that is what invalidates cached
// mappings.
const rulesRevision = "patterns/v1:" +
	"simple,gain,gain_split,summing_amp,plain_summing,diff_amp,pga," +
	"summing_integrator,scaled_log,inverted_detector,output_stage"

// Fingerprint returns a stable SHA-256 hex digest identifying the matcher
// rule set, one of the inputs of the pipeline's content-addressed cache
// keys (DESIGN.md §10).
func Fingerprint() string {
	sum := sha256.Sum256([]byte(rulesRevision))
	return hex.EncodeToString(sum[:])
}

// Canonical returns a deterministic encoding of the pattern-generation
// options for cache-key derivation: every field changes the generated
// candidate set, so every field is included.
func (o Options) Canonical() string {
	return fmt.Sprintf("noabs=%t|notrans=%t|fanin=%d",
		o.NoAbsorption, o.NoTransformations, o.MaxFanIn)
}

package lint

import (
	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/sema"
)

// subsetPass explains VASS subset conformance for constructs the rest of the
// front end either rejects tersely or accepts with surprising semantics:
// inout ports (no analog bidirectional stage exists), vector objects
// (compiled element-wise, one hardware block per element), derivatives of
// computed expressions (only named quantities have continuous state), and
// the process forms that break the suspend/resume model (no sensitivity
// list, while-loops under event-driven semantics).
var subsetPass = &Pass{
	Name: "subset",
	Doc:  "VASS subset conformance explanations",
	Run:  runSubset,
}

func runSubset(u *Unit) {
	if u.AST == nil {
		return
	}
	for _, unit := range u.AST.Units {
		ent, ok := unit.(*ast.Entity)
		if !ok {
			continue
		}
		for _, p := range ent.Ports {
			if p.Mode == ast.ModeInOut {
				u.Report(diag.CodeSubsetPortMode, p.SpanV,
					"inout ports are outside the VASS subset: analog stages are unidirectional").
					WithFix("split the port into a separate in and out pair")
			}
		}
	}
	for _, arch := range u.AST.Architectures() {
		for _, st := range arch.Stmts {
			ast.Walk(st, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Process:
					if len(n.Sensitivity) == 0 {
						u.Report(diag.CodeSubsetProcess, n.SpanV,
							"process without a sensitivity list is outside the VASS subset: the FSM extractor needs explicit resume events").
							WithFix("list the signals and 'above events that resume the process, e.g. process (clk, q'above(vth))")
					}
					for _, s := range n.Body {
						ast.Walk(s, func(m ast.Node) bool {
							if w, ok := m.(*ast.WhileStmt); ok {
								u.Report(diag.CodeSubsetLoop, w.SpanV,
									"while-loop inside a process is outside the VASS subset: event-driven bodies must terminate within one activation").
									WithFix("move the loop into a procedural body (sampling semantics) or bound it with a static for-loop")
							}
							return true
						})
					}
				case *ast.Attribute:
					if n.Attr == "dot" || n.Attr == "integ" {
						if _, ok := unparenExpr(n.X).(*ast.Name); !ok {
							u.Report(diag.CodeSubsetDerivative, n.SpanV,
								"'%s of a computed expression is outside the VASS subset: only named quantities carry continuous state", n.Attr).
								WithFix("introduce a free quantity for the expression and take '%s of that quantity", n.Attr)
						}
					}
				}
				return true
			})
		}
	}
	// Vector-typed objects compile element-wise: legal, but each element
	// becomes its own hardware block, which is worth knowing about.
	if d := u.Design; d != nil {
		seen := map[*sema.Symbol]bool{}
		warnVec := func(sym *sema.Symbol) {
			if sym == nil || seen[sym] {
				return
			}
			seen[sym] = true
			if sym.Type.Kind == sema.TBitVector || sym.Type.Kind == sema.TRealVector {
				u.Report(diag.CodeSubsetComposite, u.SpanOfDecl(sym),
					"%s %q has a composite type %s; it compiles element-wise into %d parallel blocks",
					sym.Kind, sym.Orig, sym.Type, sym.Type.Len)
			}
		}
		for _, sym := range d.Ports {
			warnVec(sym)
		}
		for _, sym := range d.Quantities {
			warnVec(sym)
		}
		for _, sym := range d.Signals {
			warnVec(sym)
		}
	}
}

// Command vassc compiles VASS (VHDL-AMS subset for synthesis) sources into
// VHIF, the VASE intermediate representation, and prints it.
//
// Usage:
//
//	vassc [-metrics] [-alternatives n] [-lint] [-Werror] file.vhd
//	vassc -benchmark receiver
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"vase"
	"vase/internal/exitcode"
)

func main() {
	metrics := flag.Bool("metrics", false, "print the Table 1 specification/VHIF metrics")
	alts := flag.Int("alternatives", 0, "compile up to n alternative DAE solver topologies (0 = primary only)")
	benchmark := flag.String("benchmark", "", "compile a built-in benchmark (receiver, powermeter, missile, itersolver, funcgen)")
	lintFlag := flag.Bool("lint", false, "run the synthesizability linter before compiling")
	werror := flag.Bool("Werror", false, "with -lint, treat warnings as errors")
	timeout := flag.Duration("timeout", 0, "deadline for compiling and linting (0 = none)")
	cacheDir := flag.String("cache-dir", "", "persist compile artifacts in this directory (content-addressed, shareable across runs)")
	cacheStats := flag.Bool("cache-stats", false, "print the per-stage cache hit/miss table to stderr on exit")
	flag.Parse()

	pipe, err := vase.NewPipeline(vase.PipelineOptions{CacheDir: *cacheDir})
	if err != nil {
		fail(err)
	}
	if *cacheStats {
		defer func() { fmt.Fprint(os.Stderr, pipe.Stats()) }()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	src, err := loadSource(*benchmark, flag.Args())
	if err != nil {
		usage(err)
	}

	if *lintFlag || *werror {
		if !runLint(ctx, pipe, src, *werror) {
			os.Exit(exitcode.Error)
		}
	}

	if *alts > 0 {
		mods, err := vase.CompileAlternatives(src, *alts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%d feasible solver topolog%s\n\n", len(mods), plural(len(mods), "y", "ies"))
		for i, m := range mods {
			fmt.Printf("--- topology %d ---\n%s\n", i+1, m.Dump())
		}
		return
	}

	d, err := vase.CompileVia(ctx, pipe, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, vase.RenderDiagnostics(err, src))
		os.Exit(exitcode.Error)
	}
	fmt.Print(d.VHIF.Dump())
	if *metrics {
		r := d.Metrics()
		fmt.Printf("\nmetrics: %d continuous-time lines, %d quantities, %d event-driven lines, %d signals\n",
			r.ContinuousLines, r.Quantities, r.EventLines, r.Signals)
		fmt.Printf("VHIF: %d blocks, %d states, %d data-path elements\n", r.Blocks, r.States, r.Datapath)
	}
}

func loadSource(benchmark string, args []string) (vase.Source, error) {
	if benchmark != "" {
		app, err := vase.Benchmark(benchmark)
		if err != nil {
			return vase.Source{}, err
		}
		return vase.Source{Name: benchmark + ".vhd", Text: app.Source}, nil
	}
	if len(args) != 1 {
		return vase.Source{}, fmt.Errorf("usage: vassc [flags] file.vhd (or -benchmark name)")
	}
	text, err := os.ReadFile(args[0])
	if err != nil {
		return vase.Source{}, err
	}
	return vase.Source{Name: args[0], Text: string(text)}, nil
}

// runLint prints warning-or-worse findings to stderr and reports whether
// compilation should proceed.
func runLint(ctx context.Context, pipe *vase.Pipeline, src vase.Source, werror bool) bool {
	findings, err := vase.LintVia(ctx, pipe, src, vase.LintOptions{})
	if err != nil {
		fail(err)
	}
	if werror {
		findings = findings.Promote()
	}
	shown := findings.Filter(vase.SeverityWarning)
	if len(shown) > 0 {
		fmt.Fprint(os.Stderr, vase.RenderDiagnostics(shown, src))
	}
	return !shown.HasErrors()
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func fail(err error) {
	exitcode.Fail("vassc", exitcode.Error, err)
}

func usage(err error) {
	exitcode.Fail("vassc", exitcode.Usage, err)
}

// Command diagcheck runs the repository's self-enforcement static
// analyses and fails (exit 1) on any violation. CI runs it on every push.
//
// Three suites:
//
//   - diag: migrated front-end packages must construct every error through
//     the internal/diag engine (no naked fmt.Errorf / errors.New), so no
//     diagnostic can lose its stable code, severity and span.
//   - determinism: engine packages must stay pure functions of their
//     inputs — no wall-clock reads outside annotated anytime/telemetry
//     plumbing (//vase:walltime), no map-range iteration feeding ordered
//     output without a sort or an //vase:unordered annotation.
//   - recovery: the recovering parser and sema must not fail fast — no
//     "return nil, err" propagation that discards the partial result,
//     except strict entry points annotated //vase:failfast.
//
// Usage:
//
//	diagcheck [-suite diag|determinism|recovery|all] [package-dir ...]
//
// With explicit package directories the selected suite(s) run on those
// directories; by default the diag suite covers the migrated packages and
// the determinism suite covers the engine packages.
package main

import (
	"flag"
	"fmt"
	"os"

	"vase/internal/diagcheck"
	"vase/internal/exitcode"
)

func main() {
	suite := flag.String("suite", "all", "which checks to run: diag, determinism, recovery, or all")
	flag.Parse()

	type check struct {
		name string
		dirs []string
		run  func(string) ([]diagcheck.Violation, error)
	}
	var checks []check
	if *suite == "diag" || *suite == "all" {
		checks = append(checks, check{"diag", diagcheck.DefaultPackages, diagcheck.CheckDir})
	}
	if *suite == "determinism" || *suite == "all" {
		checks = append(checks, check{"determinism", diagcheck.EnginePackages, diagcheck.CheckDeterminismDir})
	}
	if *suite == "recovery" || *suite == "all" {
		checks = append(checks, check{"recovery", diagcheck.RecoveryPackages, diagcheck.CheckRecoveryDir})
	}
	if len(checks) == 0 {
		fmt.Fprintf(os.Stderr, "diagcheck: unknown suite %q (diag, determinism, recovery, all)\n", *suite)
		os.Exit(exitcode.Usage)
	}

	bad := false
	for _, c := range checks {
		dirs := flag.Args()
		if len(dirs) == 0 {
			dirs = c.dirs
		}
		for _, dir := range dirs {
			vs, err := c.run(dir)
			if err != nil {
				exitcode.Fail("diagcheck", exitcode.Error, err)
			}
			for _, v := range vs {
				fmt.Printf("[%s] %s\n", c.name, v)
				bad = true
			}
		}
	}
	if bad {
		os.Exit(exitcode.Error)
	}
}

package corpus

import (
	"math/cmplx"
	"testing"

	"vase/internal/mna"
)

// compareFastRun checks a SolverFast run against the reference under the
// fast tier's contract: DC, transient and AC within the ErrorBudget, and
// outcomes one-directionally total (fast must not fail where the reference
// succeeds). The AC sweep never goes through the chord Newton machinery —
// in fast mode it runs the exact tier's own factorization — but it
// linearizes the devices around the fast tier's DC operating point, so its
// output inherits the budget contract rather than bit-identity.
func compareFastRun(t *testing.T, label string, ref, fast *solverRun) {
	t.Helper()
	var budget mna.ErrorBudget
	if ref.dcErr == "" {
		if fast.dcErr != "" {
			t.Fatalf("%s: fast DC fails where reference succeeds: %q", label, fast.dcErr)
		}
		if err := budget.CompareSolution(ref.dc, fast.dc); err != nil {
			t.Fatalf("%s: DC outside budget: %v", label, err)
		}
	}
	if ref.dcErr == "" && ref.trErr == "" {
		if fast.trErr != "" {
			t.Fatalf("%s: fast transient fails where reference succeeds: %q", label, fast.trErr)
		}
		d, err := budget.CompareTran(ref.tr, fast.tr)
		if err != nil {
			t.Fatalf("%s: transient outside budget: %v", label, err)
		}
		t.Logf("%s: %s", label, d)
	}
	if ref.acErr != fast.acErr {
		t.Fatalf("%s: AC error %q, reference %q", label, fast.acErr, ref.acErr)
	}
	if (ref.ac == nil) != (fast.ac == nil) {
		t.Fatalf("%s: AC presence mismatch", label)
	}
	if ref.ac == nil {
		return
	}
	if len(ref.ac.Freqs) != len(fast.ac.Freqs) {
		t.Fatalf("%s: AC sweep length %d, reference %d", label, len(fast.ac.Freqs), len(ref.ac.Freqs))
	}
	for n := 1; n <= ref.nodes; n++ {
		rw, gw := ref.ac.V[mna.Node(n)], fast.ac.V[mna.Node(n)]
		for i := range rw {
			diff, mag := cmplx.Abs(gw[i]-rw[i]), cmplx.Abs(rw[i])
			if diff > mna.DefaultAbsTol+mna.DefaultRelTol*mag {
				t.Fatalf("%s: AC node %d point %d outside budget: %v, reference %v (|diff|=%.3g)",
					label, n, i, gw[i], rw[i], diff)
			}
		}
	}
}

// TestFastTierWithinBudget pins the SolverFast contract corpus-wide: for
// every benchmark application and both integration methods, the fast
// tier's DC operating point and transient trace stay within the default
// ErrorBudget of SolverReference. (Seeded generator specs get the same
// treatment in internal/gen: TestFastTierSeededSpecs and the campaign's
// "fast" pair.)
func TestFastTierWithinBudget(t *testing.T) {
	for _, app := range Applications() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			b, err := BuildApp(app)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			for _, method := range []mna.Method{mna.BackwardEuler, mna.Trapezoidal} {
				methodName := "be"
				if method == mna.Trapezoidal {
					methodName = "trap"
				}
				ref := runSolverMode(t, b, app.Key, mna.SolverReference, method, 1)
				fast := runSolverMode(t, b, app.Key, mna.SolverFast, method, 1)
				compareFastRun(t, methodName, ref, fast)
			}
		})
	}
}

// TestFastTierDeterministic pins the property that makes fast-tier results
// cacheable: repeated fast runs are byte-identical, including across AC
// worker counts (the transient is single-threaded; the parallel AC sweep
// must not perturb it).
func TestFastTierDeterministic(t *testing.T) {
	for _, app := range Applications() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			b, err := BuildApp(app)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			first := runSolverMode(t, b, app.Key, mna.SolverFast, mna.BackwardEuler, 1)
			again := runSolverMode(t, b, app.Key, mna.SolverFast, mna.BackwardEuler, 1)
			compareRuns(t, "rerun", first, again)
			workers := runSolverMode(t, b, app.Key, mna.SolverFast, mna.BackwardEuler, 8)
			compareRuns(t, "workers=8", first, workers)
		})
	}
}

// Package assertlang implements a small dense-time assertion language over
// simulated analog traces, in the spirit of "Recurrence in Dense-time AMS
// Assertions": bounded-response and recurrence predicates over continuous
// quantities, compiled into streaming monitors that observe a transient
// simulation sample by sample.
//
// The language has four assertion forms:
//
//	always <pred>                    -- the predicate holds at every sample
//	eventually <pred> within <dur>   -- the predicate holds at some sample
//	                                    with t <= dur (bounded response)
//	recurrence <pred> every <dur>    -- no observed gap between consecutive
//	                                    samples satisfying the predicate
//	                                    exceeds dur (dense-time recurrence)
//	bound <name> in <lo> .. <hi>     -- sugar for
//	                                    always (name >= lo and name <= hi)
//
// Predicates are boolean combinations (and, or, not) of comparisons
// (<, <=, >, >=, =, /=) between arithmetic expressions over signal
// references, numeric literals, abs(...), min(...)/max(...), + - * /.
// A signal is referenced by its net name, optionally written v(name).
// Durations accept the suffixes s, ms, us and ns (default s).
//
// Monitors are three-valued. A run that completes normally resolves every
// assertion to Pass or Fail; a truncated run (cancellation, deadline, step
// budget — Trace.Truncated / Tran.Truncated) resolves an assertion that has
// not already failed conclusively to Unknown, because the unobserved suffix
// of the trace could still change the verdict. See monitor.go for the exact
// per-form semantics.
package assertlang

import (
	"fmt"
	"strconv"
	"strings"
)

// Assertion is one parsed assertion.
type Assertion struct {
	// Text is the source text the assertion was parsed from.
	Text string
	// Form is the top-level operator.
	Form Form
	// Pred is the monitored predicate.
	Pred Pred
	// Window is the time bound of eventually-within and recurrence-every
	// assertions, in seconds (0 for always/bound).
	Window float64
	// Signals lists the distinct signal names the predicate reads, sorted.
	Signals []string
}

// Form is the top-level temporal operator of an assertion.
type Form int

// Assertion forms.
const (
	Always Form = iota
	Eventually
	Recurrence
)

func (f Form) String() string {
	switch f {
	case Always:
		return "always"
	case Eventually:
		return "eventually"
	case Recurrence:
		return "recurrence"
	}
	return fmt.Sprintf("Form(%d)", int(f))
}

// Pred is a boolean predicate over one sample.
type Pred interface {
	// Eval evaluates the predicate in env. The boolean result is valid
	// only when ok is true; ok is false when a referenced signal is not
	// available in env.
	Eval(env func(name string) (float64, bool)) (val, ok bool)
	String() string
}

// Expr is an arithmetic expression over one sample.
type Expr interface {
	Eval(env func(name string) (float64, bool)) (val float64, ok bool)
	String() string
}

// --- expression nodes ---

type numExpr float64

func (n numExpr) Eval(func(string) (float64, bool)) (float64, bool) { return float64(n), true }
func (n numExpr) String() string                                    { return strconv.FormatFloat(float64(n), 'g', -1, 64) }

type sigExpr string

func (s sigExpr) Eval(env func(string) (float64, bool)) (float64, bool) { return env(string(s)) }
func (s sigExpr) String() string                                        { return "v(" + string(s) + ")" }

type unaryExpr struct {
	op string // "-", "abs"
	x  Expr
}

func (u *unaryExpr) Eval(env func(string) (float64, bool)) (float64, bool) {
	v, ok := u.x.Eval(env)
	if !ok {
		return 0, false
	}
	if u.op == "abs" {
		if v < 0 {
			v = -v
		}
		return v, true
	}
	return -v, true
}

func (u *unaryExpr) String() string {
	if u.op == "abs" {
		return "abs(" + u.x.String() + ")"
	}
	return "-" + u.x.String()
}

type binExpr struct {
	op   string // + - * / min max
	x, y Expr
}

func (b *binExpr) Eval(env func(string) (float64, bool)) (float64, bool) {
	x, ok := b.x.Eval(env)
	if !ok {
		return 0, false
	}
	y, ok := b.y.Eval(env)
	if !ok {
		return 0, false
	}
	switch b.op {
	case "+":
		return x + y, true
	case "-":
		return x - y, true
	case "*":
		return x * y, true
	case "/":
		return x / y, true
	case "min":
		if x < y {
			return x, true
		}
		return y, true
	case "max":
		if x > y {
			return x, true
		}
		return y, true
	}
	return 0, false
}

func (b *binExpr) String() string {
	if b.op == "min" || b.op == "max" {
		return b.op + "(" + b.x.String() + ", " + b.y.String() + ")"
	}
	return "(" + b.x.String() + " " + b.op + " " + b.y.String() + ")"
}

// --- predicate nodes ---

type cmpPred struct {
	op   string // < <= > >= = /=
	x, y Expr
}

func (c *cmpPred) Eval(env func(string) (float64, bool)) (bool, bool) {
	x, ok := c.x.Eval(env)
	if !ok {
		return false, false
	}
	y, ok := c.y.Eval(env)
	if !ok {
		return false, false
	}
	switch c.op {
	case "<":
		return x < y, true
	case "<=":
		return x <= y, true
	case ">":
		return x > y, true
	case ">=":
		return x >= y, true
	case "=":
		return x == y, true
	case "/=":
		return x != y, true
	}
	return false, false
}

func (c *cmpPred) String() string { return c.x.String() + " " + c.op + " " + c.y.String() }

type boolPred struct {
	op   string // and or
	x, y Pred
}

func (b *boolPred) Eval(env func(string) (float64, bool)) (bool, bool) {
	x, ok := b.x.Eval(env)
	if !ok {
		return false, false
	}
	y, ok := b.y.Eval(env)
	if !ok {
		return false, false
	}
	if b.op == "and" {
		return x && y, true
	}
	return x || y, true
}

func (b *boolPred) String() string {
	return "(" + b.x.String() + " " + b.op + " " + b.y.String() + ")"
}

type notPred struct{ x Pred }

func (n *notPred) Eval(env func(string) (float64, bool)) (bool, bool) {
	v, ok := n.x.Eval(env)
	return !v, ok
}

func (n *notPred) String() string { return "not " + n.x.String() }

// --- parser ---

// Parse parses one assertion from its source text.
func Parse(text string) (*Assertion, error) {
	p := &parser{src: text}
	p.next()
	a, err := p.assertion()
	if err != nil {
		return nil, fmt.Errorf("assert: %v", err)
	}
	if p.tok != "" {
		return nil, fmt.Errorf("assert: unexpected trailing input %q", p.tok)
	}
	a.Text = strings.TrimSpace(text)
	a.Signals = collectSignals(a.Pred)
	return a, nil
}

// collectSignals returns the sorted distinct signal names read by the
// predicate.
func collectSignals(p Pred) []string {
	set := map[string]bool{}
	var walkE func(e Expr)
	walkE = func(e Expr) {
		switch e := e.(type) {
		case sigExpr:
			set[string(e)] = true
		case *unaryExpr:
			walkE(e.x)
		case *binExpr:
			walkE(e.x)
			walkE(e.y)
		}
	}
	var walkP func(p Pred)
	walkP = func(p Pred) {
		switch p := p.(type) {
		case *cmpPred:
			walkE(p.x)
			walkE(p.y)
		case *boolPred:
			walkP(p.x)
			walkP(p.y)
		case *notPred:
			walkP(p.x)
		}
	}
	walkP(p)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

type parser struct {
	src string
	pos int
	tok string
}

// next advances to the next token: an identifier, a number, or one of the
// operator glyphs. Comparisons and ".." are scanned greedily.
func (p *parser) next() {
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.pos++
	}
	if p.pos >= len(p.src) {
		p.tok = ""
		return
	}
	c := p.src[p.pos]
	start := p.pos
	switch {
	case isAlpha(c):
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if isAlpha(c) || isDigit(c) {
				p.pos++
				continue
			}
			// Net names may embed dots (instance.port) and attribute primes
			// (wave'dot); both continue the identifier only when followed by
			// another identifier character, so ".." stays a range operator.
			if (c == '.' || c == '\'') && p.pos+1 < len(p.src) && isAlpha(p.src[p.pos+1]) {
				p.pos += 2
				continue
			}
			break
		}
	case isDigit(c) || c == '.' && p.pos+1 < len(p.src) && isDigit(p.src[p.pos+1]):
		// Number: digits, dot, exponent. ".." terminates the number.
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if isDigit(c) {
				p.pos++
				continue
			}
			if c == '.' {
				if p.pos+1 < len(p.src) && p.src[p.pos+1] == '.' {
					break // range operator
				}
				p.pos++
				continue
			}
			if c == 'e' || c == 'E' {
				p.pos++
				if p.pos < len(p.src) && (p.src[p.pos] == '+' || p.src[p.pos] == '-') {
					p.pos++
				}
				continue
			}
			break
		}
	default:
		p.pos++
		two := ""
		if p.pos < len(p.src) {
			two = p.src[start : p.pos+1]
		}
		switch two {
		case "<=", ">=", "/=", "..":
			p.pos++
		}
	}
	p.tok = p.src[start:p.pos]
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (p *parser) expect(tok string) error {
	if p.tok != tok {
		return fmt.Errorf("expected %q, got %q", tok, p.tok)
	}
	p.next()
	return nil
}

func (p *parser) assertion() (*Assertion, error) {
	switch p.tok {
	case "always":
		p.next()
		pred, err := p.pred()
		if err != nil {
			return nil, err
		}
		return &Assertion{Form: Always, Pred: pred}, nil
	case "eventually":
		p.next()
		pred, err := p.pred()
		if err != nil {
			return nil, err
		}
		if err := p.expect("within"); err != nil {
			return nil, err
		}
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		return &Assertion{Form: Eventually, Pred: pred, Window: d}, nil
	case "recurrence":
		p.next()
		pred, err := p.pred()
		if err != nil {
			return nil, err
		}
		if err := p.expect("every"); err != nil {
			return nil, err
		}
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		return &Assertion{Form: Recurrence, Pred: pred, Window: d}, nil
	case "bound":
		p.next()
		if !isIdent(p.tok) {
			return nil, fmt.Errorf("bound: expected a signal name, got %q", p.tok)
		}
		name := p.tok
		p.next()
		if err := p.expect("in"); err != nil {
			return nil, err
		}
		lo, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(".."); err != nil {
			return nil, err
		}
		hi, err := p.number()
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("bound: empty range %g .. %g", lo, hi)
		}
		pred := &boolPred{op: "and",
			x: &cmpPred{op: ">=", x: sigExpr(name), y: numExpr(lo)},
			y: &cmpPred{op: "<=", x: sigExpr(name), y: numExpr(hi)},
		}
		return &Assertion{Form: Always, Pred: pred}, nil
	}
	return nil, fmt.Errorf("expected always, eventually, recurrence or bound, got %q", p.tok)
}

// duration parses a number with an optional s/ms/us/ns unit token.
func (p *parser) duration() (float64, error) {
	v, err := p.number()
	if err != nil {
		return 0, err
	}
	switch p.tok {
	case "s":
		p.next()
	case "ms":
		v *= 1e-3
		p.next()
	case "us":
		v *= 1e-6
		p.next()
	case "ns":
		v *= 1e-9
		p.next()
	}
	if v <= 0 {
		return 0, fmt.Errorf("duration must be positive, got %g", v)
	}
	return v, nil
}

func (p *parser) number() (float64, error) {
	neg := false
	if p.tok == "-" {
		neg = true
		p.next()
	}
	v, err := strconv.ParseFloat(p.tok, 64)
	if err != nil {
		return 0, fmt.Errorf("expected a number, got %q", p.tok)
	}
	p.next()
	if neg {
		v = -v
	}
	return v, nil
}

// pred := orTerm { "or" orTerm }
func (p *parser) pred() (Pred, error) {
	x, err := p.andTerm()
	if err != nil {
		return nil, err
	}
	for p.tok == "or" {
		p.next()
		y, err := p.andTerm()
		if err != nil {
			return nil, err
		}
		x = &boolPred{op: "or", x: x, y: y}
	}
	return x, nil
}

func (p *parser) andTerm() (Pred, error) {
	x, err := p.notTerm()
	if err != nil {
		return nil, err
	}
	for p.tok == "and" {
		p.next()
		y, err := p.notTerm()
		if err != nil {
			return nil, err
		}
		x = &boolPred{op: "and", x: x, y: y}
	}
	return x, nil
}

func (p *parser) notTerm() (Pred, error) {
	if p.tok == "not" {
		p.next()
		x, err := p.notTerm()
		if err != nil {
			return nil, err
		}
		return &notPred{x: x}, nil
	}
	if p.tok == "(" {
		// Either a parenthesized predicate or a parenthesized expression
		// beginning a comparison; try the predicate first and fall back.
		save := *p
		p.next()
		x, err := p.pred()
		if err == nil && p.tok == ")" {
			p.next()
			if !isCmpOp(p.tok) && !isArith(p.tok) {
				return x, nil
			}
		}
		*p = save
	}
	return p.comparison()
}

func isCmpOp(tok string) bool {
	switch tok {
	case "<", "<=", ">", ">=", "=", "/=":
		return true
	}
	return false
}

func isArith(tok string) bool {
	switch tok {
	case "+", "-", "*", "/":
		return true
	}
	return false
}

func (p *parser) comparison() (Pred, error) {
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !isCmpOp(p.tok) {
		return nil, fmt.Errorf("expected a comparison operator, got %q", p.tok)
	}
	op := p.tok
	p.next()
	y, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &cmpPred{op: op, x: x, y: y}, nil
}

// expr := term { (+|-) term }
func (p *parser) expr() (Expr, error) {
	x, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.tok == "+" || p.tok == "-" {
		op := p.tok
		p.next()
		y, err := p.term()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: op, x: x, y: y}
	}
	return x, nil
}

func (p *parser) term() (Expr, error) {
	x, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.tok == "*" || p.tok == "/" {
		op := p.tok
		p.next()
		y, err := p.factor()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: op, x: x, y: y}
	}
	return x, nil
}

func isIdent(tok string) bool { return tok != "" && isAlpha(tok[0]) }

func (p *parser) factor() (Expr, error) {
	switch {
	case p.tok == "-":
		p.next()
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "-", x: x}, nil
	case p.tok == "(":
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	case p.tok == "abs":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &unaryExpr{op: "abs", x: x}, nil
	case p.tok == "min" || p.tok == "max":
		op := p.tok
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		y, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &binExpr{op: op, x: x, y: y}, nil
	case p.tok == "v":
		// v(name) signal reference; a bare identifier also works, so "v"
		// followed by "(" is the only case to disambiguate.
		save := *p
		p.next()
		if p.tok == "(" {
			p.next()
			if !isIdent(p.tok) {
				return nil, fmt.Errorf("v(...): expected a signal name, got %q", p.tok)
			}
			name := p.tok
			p.next()
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return sigExpr(name), nil
		}
		*p = save
		fallthrough
	default:
		if isIdent(p.tok) {
			name := p.tok
			p.next()
			return sigExpr(name), nil
		}
		if v, err := strconv.ParseFloat(p.tok, 64); err == nil {
			p.next()
			return numExpr(v), nil
		}
		return nil, fmt.Errorf("unexpected token %q in expression", p.tok)
	}
}

// String renders the assertion canonically.
func (a *Assertion) String() string {
	switch a.Form {
	case Eventually:
		return fmt.Sprintf("eventually %s within %g", a.Pred, a.Window)
	case Recurrence:
		return fmt.Sprintf("recurrence %s every %g", a.Pred, a.Window)
	default:
		return "always " + a.Pred.String()
	}
}

// Package lint implements the VASS/VHIF synthesizability linter: a driver
// running a set of analyzers over checked designs (sema.Design) and their
// compiled intermediate representation (vhif.Module).
//
// The passes report structured diagnostics (internal/diag) with stable
// VASS05xx codes, so findings can be filtered, rendered with source
// excerpts, or consumed as JSON. Front-end diagnostics (syntax, semantic and
// compile errors) are folded into the same list: the linter keeps going
// after errors and reports everything it can still see.
package lint

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"vase/internal/absint"
	"vase/internal/ast"
	"vase/internal/compile"
	"vase/internal/diag"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/source"
	"vase/internal/vhif"
)

// Unit is one analysis subject. Source units carry the full front-end view
// (File, AST, Design, and — when compilation succeeded — Module and block
// origins); VHIF units read from serialized intermediate files carry only
// Name and Module.
type Unit struct {
	Name    string
	File    *source.File
	AST     *ast.DesignFile
	Design  *sema.Design
	Module  *vhif.Module
	Origins compile.Origins

	diags *diag.List
	// ranges caches the abstract interpretation shared by the VASS058x
	// passes (computed on first use).
	ranges *absint.Result
}

// Report emits a diagnostic at the given source span. For units without
// source text the diagnostic carries only the unit name.
func (u *Unit) Report(code diag.Code, sp source.Span, format string, args ...any) *diag.Diagnostic {
	if u.File != nil {
		d := diag.New(code, u.File.Position(sp.Start), format, args...)
		if sp.End > sp.Start {
			d.End = u.File.Position(sp.End)
		}
		u.diags.Add(d)
		return d
	}
	d := diag.New(code, source.Position{Filename: u.Name}, format, args...)
	u.diags.Add(d)
	return d
}

// SpanOfDecl returns the span of the symbol's declaration, or an invalid
// span when the symbol was synthesized (builtins, implicit objects).
func (u *Unit) SpanOfDecl(sym *sema.Symbol) source.Span {
	if sym != nil && sym.Decl != nil {
		return sym.Decl.Span()
	}
	return source.NewSpan(source.NoPos, source.NoPos)
}

// OriginOf returns the source span the block was compiled from, or an
// invalid span when unknown.
func (u *Unit) OriginOf(b *vhif.Block) source.Span {
	if u.Origins != nil {
		if sp, ok := u.Origins[b]; ok {
			return sp
		}
	}
	return source.NewSpan(source.NoPos, source.NoPos)
}

// Pass is one analyzer. Run inspects the unit and reports findings through
// Unit.Report; passes must tolerate partial units (nil Design or Module).
type Pass struct {
	// Name identifies the pass on the command line (-passes).
	Name string
	// Doc is a one-line description.
	Doc string
	Run func(u *Unit)
}

// passes holds the registered analyzers in execution (and documentation)
// order.
var passes = []*Pass{
	unusedPass,
	fsmStatesPass,
	algLoopPass,
	dimensionPass,
	divZeroPass,
	constRangePass,
	annotationsPass,
	subsetPass,
	assertStaticPass,
	deadBranchPass,
	deadNetPass,
	saturationPass,
}

// Passes returns the registered analyzers.
func Passes() []*Pass { return passes }

// PassByName returns the named pass, or nil.
func PassByName(name string) *Pass {
	for _, p := range passes {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Options configures a lint run.
type Options struct {
	// Passes selects analyzers by name; nil or empty means all.
	Passes []string
}

func (o Options) selected() ([]*Pass, error) {
	if len(o.Passes) == 0 {
		return passes, nil
	}
	var out []*Pass
	for _, name := range o.Passes {
		p := PassByName(name)
		if p == nil {
			return nil, diag.Errorf(diag.CodeSema, "lint: unknown pass %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// Run executes the selected passes over the unit, appending findings to the
// returned list.
func Run(u *Unit, opts Options) (diag.List, error) {
	var out diag.List
	u.diags = &out
	sel, err := opts.selected()
	if err != nil {
		return nil, err
	}
	for _, p := range sel {
		p.Run(u)
	}
	out.Sort()
	out.Dedupe()
	return out, nil
}

// cancelled reports a context expiry as an error naming the pass the linter
// was about to run. Passes themselves are not interruptible (each is fast);
// the driver checks between passes and between front-end stages.
func cancelled(ctx context.Context, before string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("lint: cancelled before %s: %w", before, err)
	}
	return nil
}

// CheckSource runs the front end (parse, analyze, compile) and the selected
// passes over one VASS source, returning every diagnostic found. Front-end
// errors do not stop the linter: semantic passes run on the partial design,
// and module passes are skipped only when no VHIF could be built.
func CheckSource(name, text string, opts Options) (diag.List, error) {
	return CheckSourceContext(context.Background(), name, text, opts)
}

// CheckSourceContext is CheckSource with cancellation: the context is
// checked between front-end stages and between analyzer passes, so a
// deadlined lint run returns promptly with the context's error.
func CheckSourceContext(ctx context.Context, name, text string, opts Options) (diag.List, error) {
	sel, err := opts.selected()
	if err != nil {
		return nil, err
	}
	if err := cancelled(ctx, "parse"); err != nil {
		return nil, err
	}
	var out diag.List
	df, perrs := parser.ParseCollect(name, text)
	out = append(out, *perrs...)

	if err := cancelled(ctx, "semantic analysis"); err != nil {
		return nil, err
	}
	designs, serrs := sema.AnalyzeCollect(df)
	out = append(out, *serrs...)

	if len(designs) == 0 {
		out.Sort()
		out.Dedupe()
		return out, nil
	}
	for _, d := range designs {
		u := &Unit{Name: name, File: df.File, AST: df, Design: d, diags: &out}
		if !out.HasErrors() {
			if err := cancelled(ctx, "compile"); err != nil {
				return nil, err
			}
			m, origins, err := compile.CompileTraced(d)
			if err != nil {
				appendError(&out, name, err)
			} else {
				u.Module = m
				u.Origins = origins
			}
		}
		for _, p := range sel {
			if err := cancelled(ctx, "pass "+p.Name); err != nil {
				return nil, err
			}
			p.Run(u)
		}
	}
	out.Sort()
	out.Dedupe()
	return out, nil
}

// CheckVHIF runs the module-level passes over a serialized VHIF text. The
// module is parsed leniently: structural invariant violations are exactly
// what the FSM and loop passes are there to report.
func CheckVHIF(name, text string, opts Options) (diag.List, error) {
	return CheckVHIFContext(context.Background(), name, text, opts)
}

// CheckVHIFContext is CheckVHIF with cancellation between passes.
func CheckVHIFContext(ctx context.Context, name, text string, opts Options) (diag.List, error) {
	sel, err := opts.selected()
	if err != nil {
		return nil, err
	}
	if err := cancelled(ctx, "parse"); err != nil {
		return nil, err
	}
	var out diag.List
	m, perr := vhif.ParseLenient(text)
	if perr != nil {
		appendError(&out, name, perr)
		return out, nil
	}
	u := &Unit{Name: name, Module: m, diags: &out}
	for _, p := range sel {
		if err := cancelled(ctx, "pass "+p.Name); err != nil {
			return nil, err
		}
		p.Run(u)
	}
	out.Sort()
	out.Dedupe()
	return out, nil
}

// appendError folds an error from a front-end stage into the list,
// preserving structure when it already is a diagnostic.
func appendError(out *diag.List, name string, err error) {
	var list diag.List
	if errors.As(err, &list) {
		*out = append(*out, list...)
		return
	}
	var d *diag.Diagnostic
	if errors.As(err, &d) {
		if !d.HasPos() {
			d.Pos.Filename = name
		}
		out.Add(d)
		return
	}
	out.Addf(diag.CodeCompile, source.Position{Filename: name}, "%v", err)
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package token defines the lexical tokens of VASS, the VHDL-AMS subset for
// behavioral synthesis of analog systems accepted by the VASE front end.
//
// VHDL-AMS is case-insensitive; keyword lookup therefore normalizes
// identifiers to lower case. The token set covers the VASS constructs from
// the DATE'99 paper: entity/architecture/package structure, quantity, signal
// and terminal declarations, simple simultaneous statements (==), simultaneous
// if/use and case/use statements, procedural statements, and process
// statements with 'ABOVE events.
package token

import "strings"

// Kind identifies a lexical token class.
type Kind int

// The token kinds. Literal and operator kinds come first, keywords after
// keywordBeg.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT // -- line comment

	literalBeg
	IDENT   // earph, rvar
	INTLIT  // 270
	REALLIT // 285.0e-3, 1.5
	BITLIT  // '0', '1'
	STRLIT  // "0101"
	CHARLIT // 'a' (non-bit character literal)
	literalEnd

	operatorBeg
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	DSTAR  // ** (exponentiation)
	EQEQ   // == (simultaneous)
	EQ     // =
	NEQ    // /=
	LT     // <
	LE     // <=  (also signal assignment)
	GT     // >
	GE     // >=
	ASSIGN // :=  (variable assignment)
	ARROW  // =>
	AMP    // & (concatenation)

	LPAREN    // (
	RPAREN    // )
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	DOT       // .
	TICK      // ' (attribute)
	BAR       // |
	operatorEnd

	keywordBeg
	ABS
	ACROSS
	ALL
	AND
	ARCHITECTURE
	BEGIN
	BODY
	CASE
	CONSTANT
	DOWNTO
	ELSE
	ELSIF
	END
	ENTITY
	EXIT
	FOR
	FUNCTION
	GENERIC
	IF
	IN
	IS
	LIBRARY
	LIMIT
	LOOP
	MOD
	NAND
	NATURE
	NOR
	NOT
	OF
	OR
	OTHERS
	OUT
	PACKAGE
	PORT
	PROCEDURAL
	PROCEDURE
	PROCESS
	QUANTITY
	RANGE
	REM
	RETURN
	SELECT
	SIGNAL
	SUBTYPE
	TERMINAL
	THEN
	THROUGH
	TO
	TOLERANCE
	TYPE
	UNTIL
	USE
	VARIABLE
	WAIT
	WHEN
	WHILE
	WITH
	XOR
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",

	IDENT:   "identifier",
	INTLIT:  "integer literal",
	REALLIT: "real literal",
	BITLIT:  "bit literal",
	STRLIT:  "string literal",
	CHARLIT: "character literal",

	PLUS:   "+",
	MINUS:  "-",
	STAR:   "*",
	SLASH:  "/",
	DSTAR:  "**",
	EQEQ:   "==",
	EQ:     "=",
	NEQ:    "/=",
	LT:     "<",
	LE:     "<=",
	GT:     ">",
	GE:     ">=",
	ASSIGN: ":=",
	ARROW:  "=>",
	AMP:    "&",

	LPAREN:    "(",
	RPAREN:    ")",
	LBRACKET:  "[",
	RBRACKET:  "]",
	COMMA:     ",",
	SEMICOLON: ";",
	COLON:     ":",
	DOT:       ".",
	TICK:      "'",
	BAR:       "|",

	ABS:          "abs",
	ACROSS:       "across",
	ALL:          "all",
	AND:          "and",
	ARCHITECTURE: "architecture",
	BEGIN:        "begin",
	BODY:         "body",
	CASE:         "case",
	CONSTANT:     "constant",
	DOWNTO:       "downto",
	ELSE:         "else",
	ELSIF:        "elsif",
	END:          "end",
	ENTITY:       "entity",
	EXIT:         "exit",
	FOR:          "for",
	FUNCTION:     "function",
	GENERIC:      "generic",
	IF:           "if",
	IN:           "in",
	IS:           "is",
	LIBRARY:      "library",
	LIMIT:        "limit",
	LOOP:         "loop",
	MOD:          "mod",
	NAND:         "nand",
	NATURE:       "nature",
	NOR:          "nor",
	NOT:          "not",
	OF:           "of",
	OR:           "or",
	OTHERS:       "others",
	OUT:          "out",
	PACKAGE:      "package",
	PORT:         "port",
	PROCEDURAL:   "procedural",
	PROCEDURE:    "procedure",
	PROCESS:      "process",
	QUANTITY:     "quantity",
	RANGE:        "range",
	REM:          "rem",
	RETURN:       "return",
	SELECT:       "select",
	SIGNAL:       "signal",
	SUBTYPE:      "subtype",
	TERMINAL:     "terminal",
	THEN:         "then",
	THROUGH:      "through",
	TO:           "to",
	TOLERANCE:    "tolerance",
	TYPE:         "type",
	UNTIL:        "until",
	USE:          "use",
	VARIABLE:     "variable",
	WAIT:         "wait",
	WHEN:         "when",
	WHILE:        "while",
	WITH:         "with",
	XOR:          "xor",
}

// String returns the canonical spelling of the token kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return "token(" + itoa(int(k)) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

var keywords map[string]Kind

func init() {
	keywords = make(map[string]Kind, int(keywordEnd-keywordBeg))
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		keywords[names[k]] = k
	}
}

// Lookup maps an identifier spelling to its keyword kind, or IDENT if the
// spelling is not a reserved word. VHDL is case-insensitive.
func Lookup(ident string) Kind {
	if k, ok := keywords[strings.ToLower(ident)]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// IsLiteral reports whether k is a literal or identifier token.
func (k Kind) IsLiteral() bool { return literalBeg < k && k < literalEnd }

// IsOperator reports whether k is an operator or punctuation token.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

// Precedence levels follow the VHDL expression grammar: logical operators
// bind loosest, then relations, adding operators, multiplying operators, and
// finally the exponentiation/unary level.
const (
	LowestPrec = 0
	UnaryPrec  = 6
)

// Precedence returns the binary operator precedence of k, or LowestPrec when
// k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case AND, OR, NAND, NOR, XOR:
		return 1
	case EQ, NEQ, LT, LE, GT, GE:
		return 2
	case PLUS, MINUS, AMP:
		return 3
	case STAR, SLASH, MOD, REM:
		return 4
	case DSTAR:
		return 5
	}
	return LowestPrec
}

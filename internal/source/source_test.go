package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPositionResolution(t *testing.T) {
	f := NewFile("a.vhd", "abc\ndef\n\nghi")
	cases := []struct {
		off  Pos
		line int
		col  int
	}{
		{0, 1, 1},
		{2, 1, 3},
		{3, 1, 4}, // the newline itself
		{4, 2, 1},
		{7, 2, 4},
		{8, 3, 1},
		{9, 4, 1},
		{11, 4, 3},
	}
	for _, c := range cases {
		p := f.Position(c.off)
		if p.Line != c.line || p.Column != c.col {
			t.Errorf("Position(%d) = %d:%d, want %d:%d", c.off, p.Line, p.Column, c.line, c.col)
		}
		if p.Filename != "a.vhd" {
			t.Errorf("filename = %q", p.Filename)
		}
	}
}

func TestPositionString(t *testing.T) {
	f := NewFile("x.vhd", "hello")
	if s := f.Position(1).String(); s != "x.vhd:1:2" {
		t.Errorf("position = %q", s)
	}
	var p Position
	if p.String() != "-" {
		t.Errorf("empty position = %q", p.String())
	}
}

func TestInvalidPos(t *testing.T) {
	f := NewFile("x", "abc")
	p := f.Position(NoPos)
	if p.Line != 0 {
		t.Errorf("NoPos line = %d", p.Line)
	}
	if NoPos.IsValid() {
		t.Error("NoPos must be invalid")
	}
	if !Pos(0).IsValid() {
		t.Error("Pos 0 must be valid")
	}
}

func TestLineCount(t *testing.T) {
	if n := NewFile("x", "").LineCount(); n != 1 {
		t.Errorf("empty file lines = %d, want 1", n)
	}
	if n := NewFile("x", "a\nb\nc").LineCount(); n != 3 {
		t.Errorf("lines = %d, want 3", n)
	}
}

func TestSpanUnion(t *testing.T) {
	a := NewSpan(2, 5)
	b := NewSpan(7, 9)
	u := a.Union(b)
	if u.Start != 2 || u.End != 9 {
		t.Errorf("union = [%d,%d)", u.Start, u.End)
	}
	inv := NewSpan(NoPos, NoPos)
	if got := inv.Union(a); got != a {
		t.Errorf("invalid union a = %+v", got)
	}
	if got := a.Union(inv); got != a {
		t.Errorf("a union invalid = %+v", got)
	}
}

func TestSpanCollapse(t *testing.T) {
	s := NewSpan(5, 2)
	if s.End != s.Start {
		t.Errorf("reversed span should collapse, got [%d,%d)", s.Start, s.End)
	}
}

func TestSlice(t *testing.T) {
	f := NewFile("x", "hello world")
	if s := f.Slice(NewSpan(6, 11)); s != "world" {
		t.Errorf("slice = %q", s)
	}
	if s := f.Slice(NewSpan(6, 100)); s != "world" {
		t.Errorf("clamped slice = %q", s)
	}
	if s := f.Slice(NewSpan(8, 3)); s != "" {
		t.Errorf("empty slice = %q", s)
	}
}

func TestErrorListSortAndRender(t *testing.T) {
	var l ErrorList
	l.Add(Position{Filename: "b", Line: 2, Column: 1}, "second")
	l.Add(Position{Filename: "a", Line: 5, Column: 3}, "first %d", 42)
	l.Sort()
	if l[0].Pos.Filename != "a" {
		t.Errorf("sort order wrong: %v", l)
	}
	msg := l.Error()
	if !strings.Contains(msg, "first 42") || !strings.Contains(msg, "a:5:3") {
		t.Errorf("render = %q", msg)
	}
	if l.Err() == nil {
		t.Error("non-empty list must be an error")
	}
	var empty ErrorList
	if empty.Err() != nil {
		t.Error("empty list must be nil error")
	}
}

func TestErrorListTruncation(t *testing.T) {
	var l ErrorList
	for i := 0; i < 15; i++ {
		l.Add(Position{Filename: "f", Line: i + 1, Column: 1}, "e%d", i)
	}
	msg := l.Error()
	if !strings.Contains(msg, "and 5 more errors") {
		t.Errorf("truncation missing: %q", msg)
	}
}

// Property: Position is the inverse of line-start offsets for every offset.
func TestPositionMonotonicProperty(t *testing.T) {
	f := func(raw []byte) bool {
		text := string(raw)
		file := NewFile("p", text)
		prevLine, prevCol := 1, 0
		for off := 0; off <= len(text); off++ {
			p := file.Position(Pos(off))
			if p.Line < prevLine {
				return false
			}
			if p.Line == prevLine && p.Column <= prevCol {
				return false
			}
			if p.Line > prevLine && p.Column != 1 {
				return false
			}
			prevLine, prevCol = p.Line, p.Column
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRenderWithCaret(t *testing.T) {
	f := NewFile("x.vhd", "line one\nline two here\nline three")
	var l ErrorList
	l.Add(f.Position(14), "bad token") // "two" on line 2
	out := l[0].Render(f)
	want := "x.vhd:2:6: bad token\n  line two here\n       ^"
	if out != want {
		t.Errorf("render:\n%q\nwant:\n%q", out, want)
	}
}

func TestRenderClampsColumn(t *testing.T) {
	f := NewFile("x", "ab")
	e := &Error{Pos: Position{Filename: "x", Line: 1, Column: 99}, Msg: "m"}
	out := e.Render(f)
	if !strings.Contains(out, "^") {
		t.Errorf("caret missing: %q", out)
	}
}

func TestRenderWithoutFile(t *testing.T) {
	e := &Error{Pos: Position{Filename: "x", Line: 1, Column: 1}, Msg: "m"}
	if out := e.Render(nil); out != "x:1:1: m" {
		t.Errorf("render without file = %q", out)
	}
}

func TestRenderListCaps(t *testing.T) {
	f := NewFile("x", "a\nb\nc")
	var l ErrorList
	for i := 0; i < 12; i++ {
		l.Add(f.Position(0), "e%d", i)
	}
	out := l.RenderList(f)
	if !strings.Contains(out, "and 2 more errors") {
		t.Errorf("cap missing:\n%s", out)
	}
}

// Package estimate implements the analog performance estimation used by the
// VASE architecture generator to rank candidate mappings: first-order
// square-law design of two-stage CMOS Miller op amps on a MOSIS
// SCN-2.0 µm-class process, and area/power/bandwidth roll-ups for complete
// component netlists.
//
// It substitutes for the (unpublished) estimation tools of Dhanwada/Nunez
// (DATE'99 [17] [4]). The branch-and-bound mapper consumes only rank-order
// area and pass/fail constraint signals, which this physically monotonic
// analytic model preserves: more op amps, higher bandwidth-gain products and
// higher slew requirements always cost more area and power.
package estimate

import (
	"fmt"
	"math"
)

// Process holds the technology parameters of a CMOS process.
type Process struct {
	Name string
	// Transconductance parameters µCox, in A/V².
	KPn, KPp float64
	// Threshold voltages, in V (VTp is negative).
	VTn, VTp float64
	// Channel-length modulation, 1/V.
	LambdaN, LambdaP float64
	// Minimum channel length and width, in µm.
	Lmin, Wmin float64
	// Supply voltage, in V.
	Vdd float64
	// Capacitor density for poly-poly caps, fF/µm².
	CapDensity float64
	// Sheet resistance of the resistor layer, ohm/square.
	RSheet float64
	// Routing/overhead multiplier applied to raw device area.
	Overhead float64
}

// SCN20 approximates the MOSIS SCN 2.0 µm process the paper's receiver
// experiment used.
var SCN20 = Process{
	Name:       "MOSIS SCN 2.0um",
	KPn:        50e-6,
	KPp:        17e-6,
	VTn:        0.8,
	VTp:        -0.9,
	LambdaN:    0.05,
	LambdaP:    0.06,
	Lmin:       2.0,
	Wmin:       3.0,
	Vdd:        5.0,
	CapDensity: 0.5,  // fF/µm²
	RSheet:     1000, // ohm/square (high-resistance poly layer)
	Overhead:   1.6,
}

// OpAmpSpec is the performance requirement for one op amp instance.
type OpAmpSpec struct {
	// UGF is the required unity-gain frequency, Hz.
	UGF float64
	// SlewRate is the required slew rate, V/s.
	SlewRate float64
	// LoadCap is the capacitive load, F.
	LoadCap float64
	// LoadRes is the resistive load, ohm (0 = none).
	LoadRes float64
	// GainDB is the required open-loop DC gain, dB.
	GainDB float64
}

// DefaultSpec returns a baseline audio-range op amp requirement: the spec a
// mapper uses when the system specification does not constrain a block.
func DefaultSpec() OpAmpSpec {
	return OpAmpSpec{
		UGF:      1e6,   // 1 MHz
		SlewRate: 1e6,   // 1 V/µs
		LoadCap:  3e-12, // 3 pF on-chip internal load
		GainDB:   60,
	}
}

// OpAmpDesign is a sized op amp instance.
type OpAmpDesign struct {
	Spec OpAmpSpec
	// Topology is the selected circuit topology (component selection).
	Topology Topology
	// Cc is the Miller compensation capacitor, F.
	Cc float64
	// ITail and I6 are the first- and second-stage bias currents, A.
	ITail, I6 float64
	// W and L are the transistor dimensions in µm, in the canonical
	// two-stage order: M1/M2 input pair, M3/M4 mirror loads, M5 tail,
	// M6 second-stage driver, M7 second-stage bias, M8 bias reference.
	W, L [8]float64
	// AreaUm2 is the estimated layout area including compensation cap and
	// routing overhead, µm².
	AreaUm2 float64
	// Power is the static power, W.
	Power float64
	// AchievedUGF, AchievedSR, AchievedGainDB are the verified attributes.
	AchievedUGF, AchievedSR, AchievedGainDB float64
}

// DesignOpAmp sizes a two-stage Miller-compensated CMOS op amp for the spec
// following the standard square-law design procedure (Allen & Holberg):
// compensation cap from the load for ~60° phase margin, tail current from
// the slew requirement, input-pair transconductance from the UGF, and the
// second stage from the mirror-pole condition.
func DesignOpAmp(p Process, spec OpAmpSpec) (OpAmpDesign, error) {
	d := OpAmpDesign{Spec: spec}
	if spec.UGF <= 0 || spec.SlewRate <= 0 || spec.LoadCap <= 0 {
		return d, fmt.Errorf("estimate: op amp spec requires positive UGF, slew rate and load (got %+v)", spec)
	}
	// Compensation: Cc >= 0.22*CL for 60 degrees phase margin; keep a floor
	// so tiny loads still yield a realizable cap.
	d.Cc = math.Max(0.22*spec.LoadCap, 1e-12)

	// Slew rate fixes the tail current: SR = ITail / Cc.
	d.ITail = spec.SlewRate * d.Cc
	const iMin = 2e-6
	if d.ITail < iMin {
		d.ITail = iMin
	}

	// Input pair transconductance from the unity-gain frequency:
	// gm1 = 2*pi*UGF*Cc.
	gm1 := 2 * math.Pi * spec.UGF * d.Cc
	// W/L of the input devices: gm^2 = 2*KPn*(W/L)*(ITail/2).
	wl1 := gm1 * gm1 / (p.KPn * d.ITail)
	if wl1 < 1 {
		wl1 = 1
	}

	// Second stage: place the output pole beyond UGF: gm6 = 2.2*gm1*CL/Cc.
	gm6 := 2.2 * gm1 * spec.LoadCap / d.Cc
	wl6 := 16.0 // typical W/L for the PMOS driver
	d.I6 = gm6 * gm6 / (2 * p.KPp * wl6)
	if spec.LoadRes > 0 {
		// The stage must also drive the resistive load at the peak swing.
		iLoad := (p.Vdd / 2) / spec.LoadRes
		if iLoad > d.I6 {
			d.I6 = iLoad
			wl6 = gm6 * gm6 / (2 * p.KPp * d.I6)
			if wl6 < 4 {
				wl6 = 4
			}
		}
	}
	if d.I6 < 2*iMin {
		d.I6 = 2 * iMin
	}

	// Verify the achievable DC gain: Av = gm1*gm6*ro1*ro2-style two-stage
	// gain under channel-length modulation.
	l := 2 * p.Lmin // use 2x minimum length for gain
	ro2 := 1 / ((p.LambdaN + p.LambdaP) / 2 * d.ITail / 2)
	ro6 := 1 / ((p.LambdaN + p.LambdaP) / 2 * d.I6)
	av := gm1 * ro2 * gm6 * ro6
	d.AchievedGainDB = 20 * math.Log10(av)
	if d.AchievedGainDB < spec.GainDB {
		// Longer channels raise the gain quadratically in this first-order
		// model; scale L (and area) until the gain target is met.
		need := math.Pow(10, (spec.GainDB-d.AchievedGainDB)/20)
		l *= math.Sqrt(need)
		d.AchievedGainDB = spec.GainDB
		if l > 50 {
			return d, fmt.Errorf("estimate: gain of %.0f dB is not realizable (needs L=%.0f um)", spec.GainDB, l)
		}
	}

	// Transistor dimensions.
	dims := [8]float64{wl1, wl1, wl1 / 2, wl1 / 2, wl1, wl6, wl6 / 2, 2}
	for i, wl := range dims {
		d.L[i] = l
		d.W[i] = math.Max(wl*l, p.Wmin)
	}

	// Area: devices + compensation cap + overhead.
	var devArea float64
	for i := range d.W {
		devArea += d.W[i] * d.L[i]
	}
	capAreaUm2 := d.Cc * 1e15 / p.CapDensity // F -> fF -> µm²
	d.AreaUm2 = (devArea + capAreaUm2) * p.Overhead

	d.Power = (d.ITail + d.I6) * p.Vdd
	d.AchievedUGF = gm1 / (2 * math.Pi * d.Cc)
	d.AchievedSR = d.ITail / d.Cc
	return d, nil
}

// MinOpAmp returns the minimum-area op amp of the process: every transistor
// at minimum dimensions with the smallest compensation cap. Its area is the
// MinArea constant of the paper's bounding rule.
func MinOpAmp(p Process) OpAmpDesign {
	d := OpAmpDesign{Cc: 1e-12, ITail: 2e-6, I6: 4e-6}
	var devArea float64
	for i := range d.W {
		d.W[i] = p.Wmin
		d.L[i] = p.Lmin
		devArea += p.Wmin * p.Lmin
	}
	capArea := d.Cc * 1e15 / p.CapDensity
	d.AreaUm2 = (devArea + capArea) * p.Overhead
	d.Power = (d.ITail + d.I6) * p.Vdd
	return d
}

// MinArea is the area of the minimum two-stage op amp, µm².
func MinArea(p Process) float64 { return MinOpAmp(p).AreaUm2 }

// MinOTAArea is the area of a minimum-dimension single-stage OTA (no
// compensation capacitor), µm² — the smallest op amp any decision cell
// (comparator, Schmitt trigger) can be realized with.
func MinOTAArea(p Process) float64 {
	return 8 * p.Wmin * p.Lmin * p.Overhead
}

// ResistorArea returns the layout area of a poly resistor of the given
// value, µm², assuming a minimum-width (2 µm) high-resistance strip. The
// narrow strip keeps the op amps dominant in total area, matching the cost
// model the paper's bounding rule assumes.
func ResistorArea(p Process, ohms float64) float64 {
	if ohms <= 0 {
		return 0
	}
	const w = 2.0
	squares := ohms / p.RSheet
	if squares < 1 {
		squares = 1
	}
	return squares * w * w * p.Overhead
}

// CapacitorArea returns the layout area of a poly-poly capacitor, µm².
func CapacitorArea(p Process, farads float64) float64 {
	if farads <= 0 {
		return 0
	}
	return farads * 1e15 / p.CapDensity * p.Overhead
}

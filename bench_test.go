// Benchmarks regenerating the paper's evaluation artifacts: one benchmark
// per table/figure plus ablations of the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package vase_test

import (
	"context"
	"runtime"
	"strconv"
	"testing"

	"vase"
	"vase/internal/corpus"
	"vase/internal/mapper"
	"vase/internal/mna"
	"vase/internal/patterns"
	"vase/internal/sim"
	"vase/internal/vhif"
)

// ---------------------------------------------------------------------------
// Table 1: full synthesis of each of the five applications.

func benchmarkApp(b *testing.B, key string) {
	app := corpus.ByKey(key)
	if app == nil {
		b.Fatalf("no application %q", key)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bd, err := corpus.BuildApp(app)
		if err != nil {
			b.Fatal(err)
		}
		if bd.Result.Netlist.OpAmpCount() == 0 && key != "funcgen" {
			b.Fatal("empty netlist")
		}
	}
}

func BenchmarkTable1Receiver(b *testing.B)   { benchmarkApp(b, "receiver") }
func BenchmarkTable1PowerMeter(b *testing.B) { benchmarkApp(b, "powermeter") }
func BenchmarkTable1Missile(b *testing.B)    { benchmarkApp(b, "missile") }
func BenchmarkTable1IterSolver(b *testing.B) { benchmarkApp(b, "itersolver") }
func BenchmarkTable1FuncGen(b *testing.B)    { benchmarkApp(b, "funcgen") }

// BenchmarkTable1All regenerates the whole table.
func BenchmarkTable1All(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		builds, err := corpus.BuildAll()
		if err != nil {
			b.Fatal(err)
		}
		_ = corpus.Table1(builds)
	}
}

// ---------------------------------------------------------------------------
// Figures.

// BenchmarkFigure3 measures the VASS -> VHIF translation of the paper's
// Figure 3 example.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := corpus.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 measures the while-loop translation.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := corpus.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 measures the branch-and-bound decision-tree exploration.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, _, err := corpus.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if r.BestOpAmps != 1 {
			b.Fatalf("best = %d op amps", r.BestOpAmps)
		}
	}
}

// BenchmarkFigure7 measures receiver synthesis (signal flow -> circuit).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := corpus.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFigure8 measures the circuit-level receiver transient (3 ms at
// 1 us steps) through one MNA solver tier.
func benchFigure8(b *testing.B, mode mna.SolverMode) {
	bd, err := corpus.BuildApp(corpus.ByKey("receiver"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el, err := mna.Elaborate(bd.Result.Netlist, map[string]mna.Waveform{
			"line":  mna.Waveform(sim.Sine(1.5, 1e3, 0)),
			"local": mna.Waveform(sim.DC(0)),
		})
		if err != nil {
			b.Fatal(err)
		}
		el.Circuit.Solver = mode
		if _, err := el.Circuit.Transient(3e-3, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 runs the exact planned engine (the default tier).
func BenchmarkFigure8(b *testing.B) { benchFigure8(b, mna.SolverAuto) }

// BenchmarkFigure8Reference runs the original allocate-per-solve dense
// eliminator — the baseline both other tiers are measured against.
func BenchmarkFigure8Reference(b *testing.B) { benchFigure8(b, mna.SolverReference) }

// BenchmarkFigure8Fast runs the tolerance-tier engine (results within the
// default ErrorBudget of the reference, not byte-identical).
func BenchmarkFigure8Fast(b *testing.B) { benchFigure8(b, mna.SolverFast) }

// BenchmarkFigure8Behavioral measures the same experiment on the RK4
// behavioral simulator.
func BenchmarkFigure8Behavioral(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := corpus.Figure8Behavioral(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md section 6).

// ablationSource is a deep gain cascade: every stage has a one-amp match
// and a two-amp bandwidth-split alternative, so the search tree is large
// enough (2^10 complete mappings unbounded) for the bounding and sequencing
// rules to matter.
const ablationSource = `
entity cascade is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture chain of cascade is
  quantity q1, q2, q3, q4, q5, q6, q7, q8, q9 : real;
begin
  q1 == 3.0 * a;
  q2 == 4.0 * q1;
  q3 == 5.0 * q2;
  q4 == 6.0 * q3;
  q5 == 7.0 * q4;
  q6 == 8.0 * q5;
  q7 == 9.0 * q6;
  q8 == 10.0 * q7;
  q9 == 11.0 * q8;
  y == 12.0 * q9;
end architecture;`

func synthModule(b *testing.B, opts mapper.Options) mapper.Stats {
	d, err := vase.Compile(vase.Source{Name: "cascade.vhd", Text: ablationSource})
	if err != nil {
		b.Fatal(err)
	}
	// The ablation metrics describe the sequential exploration order.
	opts.Workers = 1
	res, err := mapper.Synthesize(d.VHIF, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res.Stats
}

// BenchmarkAblationSequencing compares the sequencing rule (largest pattern
// first) against reversed candidate order on the largest design.
func BenchmarkAblationSequencing(b *testing.B) {
	b.Run("with", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = synthModule(b, mapper.DefaultOptions()).NodesVisited
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
	b.Run("without", func(b *testing.B) {
		opts := mapper.DefaultOptions()
		opts.NoSequencing = true
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = synthModule(b, opts).NodesVisited
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
}

// BenchmarkAblationBounding compares pruning against full enumeration.
func BenchmarkAblationBounding(b *testing.B) {
	b.Run("with", func(b *testing.B) {
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = synthModule(b, mapper.DefaultOptions()).NodesVisited
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
	b.Run("without", func(b *testing.B) {
		opts := mapper.DefaultOptions()
		opts.NoBounding = true
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = synthModule(b, opts).NodesVisited
		}
		b.ReportMetric(float64(nodes), "nodes")
	})
}

// BenchmarkAblationSharing compares op amp counts with and without
// cross-path hardware sharing on a design with common sub-expressions.
func BenchmarkAblationSharing(b *testing.B) {
	src := vase.Source{Name: "shared.vhd", Text: `
entity shared is
  port (quantity a, c : in real; quantity y1, y2 : out real);
end entity;
architecture arch of shared is
begin
  y1 == (5.0 * a) * c;
  y2 == (5.0 * a) * c + 1.0;
end architecture;`}
	d, err := vase.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, noSharing bool) {
		opts := mapper.DefaultOptions()
		opts.NoSharing = noSharing
		var amps int
		for i := 0; i < b.N; i++ {
			res, err := mapper.Synthesize(d.VHIF, opts)
			if err != nil {
				b.Fatal(err)
			}
			amps = res.Netlist.OpAmpCount()
		}
		b.ReportMetric(float64(amps), "opamps")
	}
	b.Run("with", func(b *testing.B) { run(b, false) })
	b.Run("without", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationStrongBound compares the paper's bounding rule against
// the extended per-block lower bound (paper Section 7 future work).
func BenchmarkAblationStrongBound(b *testing.B) {
	run := func(b *testing.B, strong bool) {
		opts := mapper.DefaultOptions()
		opts.NoSharing = true // admissibility condition of the strong bound
		opts.StrongBound = strong
		var nodes int
		for i := 0; i < b.N; i++ {
			nodes = synthModule(b, opts).NodesVisited
		}
		b.ReportMetric(float64(nodes), "nodes")
	}
	b.Run("paper", func(b *testing.B) { run(b, false) })
	b.Run("strong", func(b *testing.B) { run(b, true) })
}

// BenchmarkHeuristicFirstFit compares exact branch-and-bound against the
// first-fit heuristic (paper Section 7: "a more time-effective exploration
// heuristic").
func BenchmarkHeuristicFirstFit(b *testing.B) {
	run := func(b *testing.B, firstFit bool) {
		opts := mapper.DefaultOptions()
		opts.Workers = 1 // node metrics describe the sequential order
		opts.FirstFit = firstFit
		var nodes, amps int
		for i := 0; i < b.N; i++ {
			d, err := vase.Compile(vase.Source{Name: "cascade.vhd", Text: ablationSource})
			if err != nil {
				b.Fatal(err)
			}
			res, err := mapper.Synthesize(d.VHIF, opts)
			if err != nil {
				b.Fatal(err)
			}
			nodes = res.Stats.NodesVisited
			amps = res.Netlist.OpAmpCount()
		}
		b.ReportMetric(float64(nodes), "nodes")
		b.ReportMetric(float64(amps), "opamps")
	}
	b.Run("exact", func(b *testing.B) { run(b, false) })
	b.Run("firstfit", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationDirect compares the two-step flow (technology-independent
// compilation, then pattern-absorbing mapping) against naive one-block-per-
// cell mapping — the paper's argument for separating the steps.
func BenchmarkAblationDirect(b *testing.B) {
	bd, err := corpus.BuildApp(corpus.ByKey("receiver"))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, naive bool) {
		opts := mapper.DefaultOptions()
		if naive {
			opts.Patterns = patterns.Options{NoAbsorption: true}
		}
		var amps int
		var area float64
		for i := 0; i < b.N; i++ {
			res, err := mapper.Synthesize(bd.Module, opts)
			if err != nil {
				b.Fatal(err)
			}
			amps = res.Netlist.OpAmpCount()
			area = res.Report.AreaUm2
		}
		b.ReportMetric(float64(amps), "opamps")
		b.ReportMetric(area, "um2")
	}
	b.Run("twostep", func(b *testing.B) { run(b, false) })
	b.Run("naive", func(b *testing.B) { run(b, true) })
}

// ---------------------------------------------------------------------------
// Pass pipeline and artifact cache (DESIGN.md section 10).

// BenchmarkPipelineCold measures the uncached full flow (parse, analyze,
// compile, branch-and-bound search) on the receiver — a fresh pipeline per
// iteration, so every stage recomputes.
func BenchmarkPipelineCold(b *testing.B) {
	src := vase.Source{Name: "receiver.vhd", Text: corpus.ByKey("receiver").Source}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := vase.NewPipeline(vase.PipelineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		arch, err := vase.SynthesizeVia(context.Background(), p, src, vase.DefaultSynthesisOptions())
		if err != nil {
			b.Fatal(err)
		}
		if arch.Cached {
			b.Fatal("cold synthesis hit the cache")
		}
	}
}

// BenchmarkPipelineCached measures the same flow through a pre-warmed
// pipeline: only key derivation and netlist rematerialization remain, so
// this should run at least an order of magnitude faster than
// BenchmarkPipelineCold.
func BenchmarkPipelineCached(b *testing.B) {
	p, err := vase.NewPipeline(vase.PipelineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	src := vase.Source{Name: "receiver.vhd", Text: corpus.ByKey("receiver").Source}
	if _, err := vase.SynthesizeVia(context.Background(), p, src, vase.DefaultSynthesisOptions()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arch, err := vase.SynthesizeVia(context.Background(), p, src, vase.DefaultSynthesisOptions())
		if err != nil {
			b.Fatal(err)
		}
		if !arch.Cached {
			b.Fatal("warm synthesis missed the cache")
		}
	}
}

// ---------------------------------------------------------------------------
// Parallel search (DESIGN.md section 7).

// benchWorkerCounts is the worker-count axis of the parallel benchmarks:
// sequential, the acceptance point (4), and whatever this machine has.
func benchWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// buildDeepFigure6 scales the Figure 6 experiment until its decision tree is
// worth distributing: the same gain-cascade structure (each stage with a
// one-amp and a two-amp match), n stages deep — 2^n complete mappings
// unbounded, versus the paper example's 5.
func buildDeepFigure6(n int) *vhif.Module {
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "a")
	net := in.Out
	for i := 0; i < n; i++ {
		gb := g.AddBlock(vhif.BGain, "", net)
		gb.Param = float64(i + 3)
		net = gb.Out
	}
	g.AddBlock(vhif.BOutput, "y", net)
	return &vhif.Module{Name: "fig6deep", Graphs: []*vhif.Graph{g}}
}

// BenchmarkFigure6Parallel measures the parallel branch-and-bound against
// the sequential search on the deepened Figure 6 cascade. Workers=1 is the
// exact sequential algorithm; every other worker count returns the identical
// netlist (asserted here) and should approach linear speedup on multi-core
// hardware.
func BenchmarkFigure6Parallel(b *testing.B) {
	m := buildDeepFigure6(14)
	ref := mapper.DefaultOptions()
	ref.Workers = 1
	want, err := mapper.Synthesize(m, ref)
	if err != nil {
		b.Fatal(err)
	}
	wantDump := want.Netlist.Dump()
	for _, workers := range benchWorkerCounts() {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			opts := mapper.DefaultOptions()
			opts.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := mapper.Synthesize(m, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Netlist.Dump() != wantDump {
					b.Fatal("parallel result diverged from sequential")
				}
			}
		})
	}
}

// BenchmarkTable1Parallel regenerates Table 1 under each worker count — the
// end-to-end flow (parse, analyze, compile, synthesize) on the five paper
// applications.
func BenchmarkTable1Parallel(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			opts := mapper.DefaultOptions()
			opts.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := corpus.BuildAllWith(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

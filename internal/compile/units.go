package compile

import (
	"sort"

	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/sema"
	"vase/internal/source"
	"vase/internal/vhif"
)

// unit is one compilation unit of the continuous-time part: a matched
// simultaneous equation, a procedural, or a simultaneous if/use (or
// case/use) group. Units are ordered by data dependencies before compiling.
type unit struct {
	// span locates the unit's source statement (for block origin tracking).
	span source.Span
	// defines are the quantities the unit produces.
	defines []string
	// reads are the quantities the unit consumes.
	reads map[string]bool
	// run compiles the unit.
	run func()
}

// collectUnits builds the unit list for the given DAE matching.
func (c *compiler) collectUnits(eqs []*equation, match matching) []*unit {
	var units []*unit
	eqIndex := 0
	for _, st := range c.d.Arch.Stmts {
		switch st := st.(type) {
		case *ast.SimpleSimultaneous:
			i := eqIndex
			eqIndex++
			cand := match[i]
			u := &unit{span: st.SpanV, reads: map[string]bool{}}
			if !cand.viaDot {
				u.defines = []string{cand.unknown}
			}
			for name, use := range quantityUses(c.d, st) {
				if name == cand.unknown && !cand.viaDot && use.dot == 0 {
					continue
				}
				u.reads[name] = true
			}
			// An integrator's own output is available (state feedback).
			if cand.viaDot {
				delete(u.reads, cand.unknown)
			}
			stmt, candidate := st, cand
			u.run = func() { c.compileEquation(stmt, candidate) }
			units = append(units, u)
		case *ast.Procedural:
			u := &unit{span: st.SpanV, reads: map[string]bool{}}
			u.defines = c.proceduralDefines(st)
			c.collectQuantityReads(st, u.reads, u.defines)
			stmt := st
			u.run = func() { c.compileProcedural(stmt) }
			units = append(units, u)
		case *ast.SimultaneousIf:
			u := &unit{span: st.SpanV, reads: map[string]bool{}}
			u.defines = c.ifUseDefines(st)
			c.collectQuantityReads(st, u.reads, u.defines)
			stmt := st
			u.run = func() { c.compileIfUse(stmt) }
			units = append(units, u)
		case *ast.SimultaneousCase:
			u := &unit{span: st.SpanV, reads: map[string]bool{}}
			u.defines = c.caseUseDefines(st)
			c.collectQuantityReads(st, u.reads, u.defines)
			stmt := st
			u.run = func() { c.compileCaseUse(stmt) }
			units = append(units, u)
		}
	}
	return units
}

// collectQuantityReads fills reads with quantity names referenced by the
// statement, excluding the unit's own definitions.
func (c *compiler) collectQuantityReads(st ast.Node, reads map[string]bool, defines []string) {
	own := map[string]bool{}
	for _, d := range defines {
		own[d] = true
	}
	ast.Walk(st, func(n ast.Node) bool {
		if nm, ok := n.(*ast.Name); ok {
			if sym := c.d.Lookup(nm.Ident.Canon); sym != nil && sym.Kind == sema.SymQuantity && !own[nm.Ident.Canon] {
				reads[nm.Ident.Canon] = true
			}
		}
		return true
	})
}

// compileUnits repeatedly compiles units whose read-dependencies are
// available; integrator-defined nets exist up front (integs), so only
// algebraic cycles can block progress.
func (c *compiler) compileUnits(units []*unit, integs map[string]*vhif.Block) error {
	// Integrator inputs are patched after everything else compiles; until
	// then their equations are ordinary units whose defines are empty.
	pending := append([]*unit{}, units...)
	for len(pending) > 0 {
		progressed := false
		var next []*unit
		for _, u := range pending {
			ready := true
			for r := range u.reads {
				if c.nets[r] == nil {
					// Inputs and integrator outputs are pre-bound; anything
					// else must have been produced by an earlier unit.
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, u)
				continue
			}
			c.stamp(u.span, u.run)
			progressed = true
		}
		if !progressed {
			var missing []string
			for _, u := range next {
				for r := range u.reads {
					if c.nets[r] == nil {
						missing = append(missing, r)
					}
				}
			}
			sort.Strings(missing)
			// Report at the first blocked statement, not the whole
			// architecture: that is the DAE the loop originates from.
			sp := c.d.Arch.SpanV
			if len(next) > 0 && next[0].span.IsValid() {
				sp = next[0].span
			}
			c.report(diag.CodeDepCycle, sp, "algebraic dependency cycle among continuous statements (unresolved: %v)", missing).
				WithFix("break the cycle with an integrator (define one quantity through its 'dot) or reorder the definitions")
			return c.failed()
		}
		pending = next
	}
	return nil
}

// compileEquation compiles one matched simultaneous equation.
func (c *compiler) compileEquation(st *ast.SimpleSimultaneous, cand candidate) {
	expr, err := c.isolate(st, cand)
	if err != nil {
		c.errorf(st.SpanV, "cannot solve equation for %q: %v", cand.unknown, err)
		return
	}
	net := c.compileExpr(c.baseEnv(), expr)
	if cand.viaDot {
		integ := c.nets[cand.unknown].Driver
		integ.Inputs[0] = net
		net.Readers = append(net.Readers, integ)
		return
	}
	net.Name = cand.unknown
	c.nets[cand.unknown] = net
}

// ---------------------------------------------------------------------------
// Simultaneous if/use and case/use

// armDef is the quantity → defining-expression mapping of one arm.
type armDef map[string]ast.Expr

// armDefs extracts explicit definitions (q == expr) from an arm's
// statements.
func (c *compiler) armDefs(stmts []ast.ConcStmt) armDef {
	defs := armDef{}
	for _, st := range stmts {
		ss, ok := st.(*ast.SimpleSimultaneous)
		if !ok {
			c.errorf(st.Span(), "if/use arms may contain only simple simultaneous statements")
			continue
		}
		if nm, ok := unparen(ss.LHS).(*ast.Name); ok {
			defs[nm.Ident.Canon] = ss.RHS
			continue
		}
		if nm, ok := unparen(ss.RHS).(*ast.Name); ok {
			defs[nm.Ident.Canon] = ss.LHS
			continue
		}
		c.errorf(ss.SpanV, "if/use arm equations must be explicit (q == expr)")
	}
	return defs
}

// ifUseDefines lists the quantities defined by an if/use statement.
func (c *compiler) ifUseDefines(st *ast.SimultaneousIf) []string {
	defs := c.armDefs(st.Then)
	return sortedNames(defs)
}

func (c *compiler) caseUseDefines(st *ast.SimultaneousCase) []string {
	if len(st.Arms) == 0 {
		return nil
	}
	return sortedNames(c.armDefs(st.Arms[0].Conc))
}

// compileIfUse translates a simultaneous if/use into multiplexed signal
// paths. An if/use without an else arm infers a sample-and-hold: the
// quantity tracks its defining expression while the condition holds and
// keeps its value otherwise.
func (c *compiler) compileIfUse(st *ast.SimultaneousIf) {
	ctrl := c.compileControl(c.baseEnv(), st.Cond)

	type arm struct {
		ctrl *vhif.Net
		defs armDef
	}
	arms := []arm{{ctrl: ctrl, defs: c.armDefs(st.Then)}}
	for _, e := range st.Elifs {
		arms = append(arms, arm{ctrl: c.compileControl(c.baseEnv(), e.Cond), defs: c.armDefs(e.Then)})
	}
	targets := sortedNames(arms[0].defs)

	if len(st.Else) == 0 && len(st.Elifs) == 0 {
		// Incomplete conditional definition: infer sample-and-hold.
		for _, q := range targets {
			in := c.compileExpr(c.baseEnv(), arms[0].defs[q])
			sh := c.g.AddBlock(vhif.BSampleHold, q, in)
			sh.SetCtrl(c.g, ctrl)
			sh.Out.Name = q
			c.nets[q] = sh.Out
		}
		return
	}

	elseDefs := c.armDefs(st.Else)
	for _, a := range arms {
		if !sameTargets(a.defs, arms[0].defs) {
			c.errorf(st.SpanV, "if/use arms must define the same quantities")
			return
		}
	}
	if !sameTargets(elseDefs, arms[0].defs) {
		c.errorf(st.SpanV, "if/use else arm must define the same quantities as the other arms")
		return
	}

	for _, q := range targets {
		// Build the selection chain from the innermost else outward.
		net := c.compileExpr(c.baseEnv(), elseDefs[q])
		for i := len(arms) - 1; i >= 0; i-- {
			thenNet := c.compileExpr(c.baseEnv(), arms[i].defs[q])
			mux := c.g.AddBlock(vhif.BMux, "", thenNet, net)
			mux.SetCtrl(c.g, arms[i].ctrl)
			net = mux.Out
		}
		net.Name = q
		c.nets[q] = net
	}
}

// compileCaseUse desugars a simultaneous case/use over a bit signal into a
// mux chain: each non-others arm selects when the signal matches its choice.
func (c *compiler) compileCaseUse(st *ast.SimultaneousCase) {
	sigName, ok := unparen(st.Expr).(*ast.Name)
	if !ok {
		c.errorf(st.Expr.Span(), "case/use selector must be a signal name")
		return
	}
	base := c.ctrl[sigName.Ident.Canon]
	if base == nil {
		c.errorf(st.Expr.Span(), "signal %q has no control realization", sigName.Ident.Name)
		return
	}
	var others armDef
	type selArm struct {
		ctrl *vhif.Net
		defs armDef
	}
	var arms []selArm
	for _, a := range st.Arms {
		defs := c.armDefs(a.Conc)
		if a.Choices == nil {
			others = defs
			continue
		}
		for _, choice := range a.Choices {
			ctrl := base
			if _, isTrue, ok := boolLiteral(choice); ok && !isTrue {
				ctrl = c.invertCtrl(base)
			}
			arms = append(arms, selArm{ctrl: ctrl, defs: defs})
		}
	}
	if others == nil {
		c.errorf(st.SpanV, "case/use requires an others arm")
		return
	}
	for _, q := range sortedNames(others) {
		net := c.compileExpr(c.baseEnv(), others[q])
		for i := len(arms) - 1; i >= 0; i-- {
			if arms[i].defs[q] == nil {
				c.errorf(st.SpanV, "case/use arms must define the same quantities")
				return
			}
			thenNet := c.compileExpr(c.baseEnv(), arms[i].defs[q])
			mux := c.g.AddBlock(vhif.BMux, "", thenNet, net)
			mux.SetCtrl(c.g, arms[i].ctrl)
			net = mux.Out
		}
		net.Name = q
		c.nets[q] = net
	}
}

func sameTargets(a, b armDef) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

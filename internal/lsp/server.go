package lsp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/pipeline"
	"vase/internal/project"
	"vase/internal/source"
)

// Server is one LSP session: a set of open documents checked as a single
// multi-file project over a shared pipeline.
type Server struct {
	conn *conn
	pipe *pipeline.Pipeline
	proj *project.Project

	// docs maps document URI to its current full text; order remembers the
	// didOpen sequence so project elaboration order is deterministic.
	docs  map[string]string
	order []string

	// logf receives serve-loop notices (framing errors, handler failures);
	// nil discards them.
	logf func(format string, args ...any)

	shutdown bool
}

// New returns a server speaking LSP over r/w, analyzing through pipe.
func New(r io.Reader, w io.Writer, pipe *pipeline.Pipeline, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		conn: newConn(r, w),
		pipe: pipe,
		proj: project.New(pipe),
		docs: map[string]string{},
		logf: logf,
	}
}

// Run serves the session until the client sends exit or the stream closes.
// The returned error is nil on an orderly exit.
func (s *Server) Run(ctx context.Context) error {
	for {
		m, err := s.conn.read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if m.Method == "exit" {
			return nil
		}
		if err := s.dispatch(ctx, m); err != nil {
			s.logf("lsp: %s: %v", m.Method, err)
		}
	}
}

func (s *Server) dispatch(ctx context.Context, m *message) error {
	switch m.Method {
	case "initialize":
		return s.conn.reply(m.ID, initializeResult{
			Capabilities: serverCapabilities{
				TextDocumentSync:       1, // full
				HoverProvider:          true,
				DocumentSymbolProvider: true,
			},
			ServerInfo: serverInfo{Name: "vaselsp", Version: "1"},
		})
	case "initialized", "$/cancelRequest", "workspace/didChangeConfiguration":
		return nil
	case "shutdown":
		s.shutdown = true
		return s.conn.reply(m.ID, nil)
	case "textDocument/didOpen":
		var p didOpenParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			return err
		}
		s.setDoc(p.TextDocument.URI, p.TextDocument.Text)
		return s.publishAll(ctx)
	case "textDocument/didChange":
		var p didChangeParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			return err
		}
		if len(p.ContentChanges) == 0 {
			return nil
		}
		// Full sync: the last change carries the complete text.
		s.setDoc(p.TextDocument.URI, p.ContentChanges[len(p.ContentChanges)-1].Text)
		return s.publishAll(ctx)
	case "textDocument/didClose":
		var p didCloseParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			return err
		}
		s.closeDoc(p.TextDocument.URI)
		// Clear the closed document's diagnostics, then re-check the rest
		// (closing a file can orphan architectures in other files).
		if err := s.conn.notify("textDocument/publishDiagnostics",
			publishDiagnosticsParams{URI: p.TextDocument.URI, Diagnostics: []Diagnostic{}}); err != nil {
			return err
		}
		return s.publishAll(ctx)
	case "textDocument/hover":
		var p hoverParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			return s.conn.replyError(m.ID, codeInvalidParams, "%v", err)
		}
		return s.hover(ctx, m.ID, p)
	case "textDocument/documentSymbol":
		var p documentSymbolParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			return s.conn.replyError(m.ID, codeInvalidParams, "%v", err)
		}
		return s.documentSymbol(ctx, m.ID, p)
	default:
		if m.ID != nil {
			return s.conn.replyError(m.ID, codeMethodNotFound, "method %q not supported", m.Method)
		}
		return nil
	}
}

func (s *Server) setDoc(uri, text string) {
	if _, open := s.docs[uri]; !open {
		s.order = append(s.order, uri)
	}
	s.docs[uri] = text
}

func (s *Server) closeDoc(uri string) {
	delete(s.docs, uri)
	for i, u := range s.order {
		if u == uri {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// projectFiles snapshots the open documents in didOpen order. The URI is
// used directly as the project file name, so snapshot diagnostics carry the
// URI in their Position.Filename and route straight back to the client.
func (s *Server) projectFiles() []project.File {
	files := make([]project.File, 0, len(s.order))
	for _, uri := range s.order {
		files = append(files, project.File{Name: uri, Text: s.docs[uri]})
	}
	return files
}

// publishAll re-checks the whole project and publishes per-document
// diagnostics, including empty lists so stale squiggles clear.
func (s *Server) publishAll(ctx context.Context) error {
	snap, err := s.proj.Check(ctx, s.projectFiles())
	if err != nil {
		return err
	}
	perURI := map[string][]Diagnostic{}
	for _, uri := range s.order {
		perURI[uri] = []Diagnostic{}
	}
	for _, d := range snap.Diags {
		uri := d.Pos.Filename
		if _, open := perURI[uri]; !open {
			continue
		}
		perURI[uri] = append(perURI[uri], toLSPDiagnostic(d))
	}
	for _, uri := range s.order {
		if err := s.conn.notify("textDocument/publishDiagnostics",
			publishDiagnosticsParams{URI: uri, Diagnostics: perURI[uri]}); err != nil {
			return err
		}
	}
	return nil
}

func toLSPDiagnostic(d *diag.Diagnostic) Diagnostic {
	sev := severityError
	switch d.Severity {
	case diag.Warning:
		sev = severityWarning
	case diag.Info:
		sev = severityInfo
	}
	rng := Range{
		Start: Position{Line: d.Pos.Line - 1, Character: d.Pos.Column - 1},
		End:   Position{Line: d.Pos.Line - 1, Character: d.Pos.Column},
	}
	if d.End.Line > 0 {
		rng.End = Position{Line: d.End.Line - 1, Character: d.End.Column - 1}
	}
	msg := d.Msg
	if d.Fix != "" {
		msg += " (" + d.Fix + ")"
	}
	return Diagnostic{
		Range:    rng,
		Severity: sev,
		Code:     string(d.Code),
		Source:   "vase",
		Message:  msg,
	}
}

// hover answers with the static value range of the signal or quantity under
// the cursor, computed by the abstract interpreter over the document's own
// file. Range facts need a compilable design, so hover quietly returns null
// on documents that are partial or whose identifier has no range fact.
func (s *Server) hover(ctx context.Context, id *json.RawMessage, p hoverParams) error {
	text, open := s.docs[p.TextDocument.URI]
	if !open {
		return s.conn.reply(id, nil)
	}
	word, wordRange := wordAt(text, p.Position)
	if word == "" {
		return s.conn.reply(id, nil)
	}
	rr, err := s.pipe.Ranges(ctx, p.TextDocument.URI, text)
	if err != nil {
		// Broken or partial document: no range facts, not an error.
		return s.conn.reply(id, nil)
	}
	hull, ok := rr.Signal(strings.ToLower(word))
	if !ok {
		return s.conn.reply(id, nil)
	}
	value := fmt.Sprintf("`%s` ∈ [%g, %g]\n\nstatic value hull (abstract interpretation)", word, hull.Lo, hull.Hi)
	return s.conn.reply(id, hoverResult{
		Contents: markupContent{Kind: "markdown", Value: value},
		Range:    &wordRange,
	})
}

// documentSymbol outlines one document from its recovered AST: design units
// at the top, ports and declarations nested beneath. Works on broken
// documents too — ERROR nodes simply contribute no symbols.
func (s *Server) documentSymbol(ctx context.Context, id *json.RawMessage, p documentSymbolParams) error {
	text, open := s.docs[p.TextDocument.URI]
	if !open {
		return s.conn.reply(id, []DocumentSymbol{})
	}
	pr, err := s.pipe.ParseRecover(ctx, p.TextDocument.URI, text)
	if err != nil {
		return s.conn.replyError(id, codeParseError, "%v", err)
	}
	lt := newLineTable(text)
	var syms []DocumentSymbol
	for _, u := range pr.AST.Units {
		switch u := u.(type) {
		case *ast.Entity:
			sym := unitSymbol(lt, u.Name, u.Span(), symbolKindClass, "entity")
			for _, port := range u.Ports {
				sym.Children = append(sym.Children, declSymbols(lt, port)...)
			}
			syms = append(syms, sym)
		case *ast.Architecture:
			sym := unitSymbol(lt, u.Name, u.Span(), symbolKindInterface, "architecture of "+u.Entity.Name)
			for _, d := range u.Decls {
				sym.Children = append(sym.Children, anyDeclSymbols(lt, d)...)
			}
			syms = append(syms, sym)
		case *ast.Package:
			sym := unitSymbol(lt, u.Name, u.Span(), symbolKindModule, "package")
			for _, d := range u.Decls {
				sym.Children = append(sym.Children, anyDeclSymbols(lt, d)...)
			}
			syms = append(syms, sym)
		case *ast.PackageBody:
			sym := unitSymbol(lt, u.Name, u.Span(), symbolKindModule, "package body")
			for _, d := range u.Decls {
				sym.Children = append(sym.Children, anyDeclSymbols(lt, d)...)
			}
			syms = append(syms, sym)
		}
	}
	return s.conn.reply(id, syms)
}

func unitSymbol(lt lineTable, name *ast.Ident, span source.Span, kind int, detail string) DocumentSymbol {
	return DocumentSymbol{
		Name:           name.Name,
		Detail:         detail,
		Kind:           kind,
		Range:          lt.toRange(span),
		SelectionRange: lt.toRange(name.SpanV),
	}
}

func anyDeclSymbols(lt lineTable, d ast.Decl) []DocumentSymbol {
	switch d := d.(type) {
	case *ast.ObjectDecl:
		return declSymbols(lt, d)
	case *ast.FunctionDecl:
		return []DocumentSymbol{{
			Name:           d.Name.Name,
			Detail:         "function",
			Kind:           symbolKindFunction,
			Range:          lt.toRange(d.Span()),
			SelectionRange: lt.toRange(d.Name.SpanV),
		}}
	case *ast.ErrorDecl:
		var out []DocumentSymbol
		for _, part := range d.Parts {
			if od, ok := part.(*ast.ObjectDecl); ok {
				out = append(out, declSymbols(lt, od)...)
			}
		}
		return out
	}
	return nil
}

func declSymbols(lt lineTable, d *ast.ObjectDecl) []DocumentSymbol {
	kind := symbolKindVariable
	if d.Class == ast.ClassConstant {
		kind = symbolKindConstant
	}
	out := make([]DocumentSymbol, 0, len(d.Names))
	for _, n := range d.Names {
		out = append(out, DocumentSymbol{
			Name:           n.Name,
			Detail:         d.Class.String(),
			Kind:           kind,
			Range:          lt.toRange(d.Span()),
			SelectionRange: lt.toRange(n.SpanV),
		})
	}
	return out
}

// lineTable converts byte offsets to zero-based line/character positions.
type lineTable struct {
	// starts[i] is the byte offset of line i.
	starts []int
	size   int
}

func newLineTable(text string) lineTable {
	starts := []int{0}
	for i := 0; i < len(text); i++ {
		if text[i] == '\n' {
			starts = append(starts, i+1)
		}
	}
	return lineTable{starts: starts, size: len(text)}
}

func (lt lineTable) toPosition(offset int) Position {
	if offset < 0 {
		offset = 0
	}
	if offset > lt.size {
		offset = lt.size
	}
	line := sort.Search(len(lt.starts), func(i int) bool { return lt.starts[i] > offset }) - 1
	return Position{Line: line, Character: offset - lt.starts[line]}
}

func (lt lineTable) toRange(sp source.Span) Range {
	if !sp.IsValid() {
		return Range{}
	}
	return Range{Start: lt.toPosition(int(sp.Start)), End: lt.toPosition(int(sp.End))}
}

// offsetOf is the inverse of toPosition, clamped to the document.
func (lt lineTable) offsetOf(p Position) int {
	if p.Line < 0 {
		return 0
	}
	if p.Line >= len(lt.starts) {
		return lt.size
	}
	off := lt.starts[p.Line] + p.Character
	if off > lt.size {
		off = lt.size
	}
	return off
}

// wordAt returns the identifier under pos and its document range.
func wordAt(text string, pos Position) (string, Range) {
	lt := newLineTable(text)
	off := lt.offsetOf(pos)
	isWord := func(b byte) bool {
		return b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
	}
	if off >= len(text) || !isWord(text[off]) {
		if off == 0 || !isWord(text[off-1]) {
			return "", Range{}
		}
		off--
	}
	start, end := off, off+1
	for start > 0 && isWord(text[start-1]) {
		start--
	}
	for end < len(text) && isWord(text[end]) {
		end++
	}
	return text[start:end], Range{Start: lt.toPosition(start), End: lt.toPosition(end)}
}

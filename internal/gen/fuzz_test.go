// FuzzGenRoundTrip drives the generator itself from fuzzed (seed, index,
// size) coordinates: every generated spec must parse, and its AST must
// reach a printer fixed point — print(parse(src)) reparses to the same
// text. A divergence here means the generator, the parser or the AST
// printer disagree about VASS concrete syntax.
package gen_test

import (
	"testing"

	"vase/internal/ast"
	"vase/internal/gen"
	"vase/internal/parser"
)

func FuzzGenRoundTrip(f *testing.F) {
	f.Add(int64(1), 0, uint8(0))
	f.Add(int64(1), 3, uint8(1))
	f.Add(int64(7), 11, uint8(2))
	f.Add(int64(42), 15, uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, index int, sizeByte uint8) {
		if index < 0 {
			index = -index
		}
		size := gen.Size(int(sizeByte) % 4)
		sp := gen.Generate(seed, index, size)

		file, err := parser.Parse(sp.Name+".vhd", sp.Source)
		if err != nil {
			t.Fatalf("generated spec does not parse: %v\n--- source ---\n%s", err, sp.Source)
		}
		printed := ast.FileString(file)
		file2, err := parser.Parse(sp.Name+".vhd", printed)
		if err != nil {
			t.Fatalf("printed AST does not reparse: %v\n--- printed ---\n%s", err, printed)
		}
		if again := ast.FileString(file2); again != printed {
			t.Fatalf("printer not a fixed point\n--- first ---\n%s\n--- second ---\n%s", printed, again)
		}
	})
}

package pipeline

import "container/list"

// lruCache is a fixed-capacity least-recently-used map from keys to stage
// values. It is not self-synchronized: every call happens under the owning
// Pipeline's mutex.
type lruCache struct {
	capacity int
	order    *list.List // front = most recently used; values are *lruEntry
	items    map[Key]*list.Element
}

type lruEntry struct {
	key Key
	val any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[Key]*list.Element, capacity),
	}
}

func (c *lruCache) get(k Key) (any, bool) {
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(k Key, v any) {
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&lruEntry{key: k, val: v})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Command vasegen generates seeded, well-typed-by-construction VASS
// specifications and drives differential fuzzing campaigns over the
// toolchain's redundant implementation pairs.
//
// Every spec is derived deterministically from (-seed, index): the same
// invocation regenerates byte-identical sources, so a failing spec is
// always reproducible from the two numbers printed on divergence.
//
// Modes:
//
//	vasegen -seed 1 -n 5                      # print 5 specs to stdout
//	vasegen -seed 1 -n 200 -out corpus/       # write corpus/*.vhd
//	vasegen -seed 1 -n 1000 -check            # front contract: parse+lint+synthesize
//	vasegen -seed 7 -n 200 -campaign          # differential campaign, all pairs
//	vasegen -campaign -modes solver,monitors  # subset of redundant pairs
//	vasegen -list-pairs                       # describe the registered pairs
//
// On a campaign divergence vasegen prints the seed/index pair, shrinks the
// spec to a minimal reproducer (disable with -shrink=false), writes it
// under -repro-dir, and exits 1.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"vase/internal/diag"
	"vase/internal/exitcode"
	"vase/internal/gen"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign master seed; spec i derives from (seed, i)")
	n := flag.Int("n", 1, "number of specs to generate")
	sizeFlag := flag.String("size", "mixed", "size grade: toy (2-4 nets), small, medium, large (100+ nets), or mixed")
	outDir := flag.String("out", "", "write generated specs as <dir>/<name>.vhd instead of stdout")
	check := flag.Bool("check", false, "run the front contract on each spec: parse, lint clean, synthesize")
	campaign := flag.Bool("campaign", false, "run the differential campaign over the generated specs")
	modes := flag.String("modes", "", "comma-separated pair subset for -campaign (default: all pairs; see -list-pairs)")
	shrink := flag.Bool("shrink", true, "shrink failing specs to minimal reproducers")
	reproDir := flag.String("repro-dir", ".", "directory for shrunken reproducer .vhd files on divergence")
	benchPath := flag.String("bench", "", "write generator/campaign throughput JSON to this file")
	listPairs := flag.Bool("list-pairs", false, "list the registered redundant pairs and exit")
	workers := flag.Int("workers", 0, "campaign specs evaluated concurrently (0 = all CPUs; the divergence set is identical at any count)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *listPairs {
		for _, p := range gen.Pairs() {
			cap := ""
			if p.MaxQuants > 0 {
				cap = fmt.Sprintf(" (specs up to %d quantities)", p.MaxQuants)
			}
			fmt.Printf("%-10s %s%s\n", p.Name, p.Doc, cap)
		}
		return
	}
	if *n <= 0 {
		usage(fmt.Errorf("-n must be positive"))
	}

	var fixed *gen.Size
	if *sizeFlag != "mixed" {
		s, err := gen.ParseSize(*sizeFlag)
		if err != nil {
			usage(err)
		}
		fixed = &s
	}
	sizeOf := func(i int) gen.Size {
		if fixed != nil {
			return *fixed
		}
		return gen.MixedSize(i)
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Generation (timed for -bench).
	genStart := time.Now()
	specs := make([]*gen.Spec, *n)
	for i := range specs {
		specs[i] = gen.Generate(*seed, i, sizeOf(i))
	}
	genElapsed := time.Since(genStart)
	genRate := float64(*n) / genElapsed.Seconds()
	logf("generated %d specs in %v (%.0f specs/sec)", *n, genElapsed.Round(time.Millisecond), genRate)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
		for _, sp := range specs {
			path := filepath.Join(*outDir, sp.Name+".vhd")
			if err := os.WriteFile(path, []byte(sp.Source), 0o644); err != nil {
				fail(err)
			}
		}
		logf("wrote %d specs to %s", len(specs), *outDir)
	} else if !*check && !*campaign {
		for _, sp := range specs {
			fmt.Println(sp.Source)
		}
	}

	bench := map[string]any{
		"description": "vasegen corpus generation and differential campaign throughput",
		"date":        time.Now().UTC().Format("2006-01-02"),
		"go":          runtime.Version(),
		"seed":        *seed,
		"n":           *n,
		"size":        *sizeFlag,
		"generator": map[string]any{
			"elapsed_ms":    genElapsed.Milliseconds(),
			"specs_per_sec": round2(genRate),
		},
	}

	exit := exitcode.OK
	if *check {
		pairs := []string{"front"}
		res := runCampaign(*seed, *n, fixed, pairs, *shrink, *workers, *reproDir, logf)
		bench["check"] = benchCampaign(res)
		if len(res.Divergences) > 0 {
			exit = exitcode.Error
		}
	}
	if *campaign {
		var pairs []string
		if *modes != "" {
			pairs = strings.Split(*modes, ",")
		}
		res := runCampaign(*seed, *n, fixed, pairs, *shrink, *workers, *reproDir, logf)
		logf("campaign: %d specs, %d pair runs (%d skipped by size caps), %d divergences in %v",
			res.Specs, res.PairRuns, res.Skipped, len(res.Divergences), res.Elapsed.Round(time.Millisecond))
		bench["campaign"] = benchCampaign(res)
		if len(res.Divergences) > 0 {
			exit = exitcode.Error
		}
	}

	if *benchPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*benchPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		logf("wrote %s", *benchPath)
	}
	os.Exit(exit)
}

func runCampaign(seed int64, n int, fixed *gen.Size, pairs []string, shrink bool, workers int, reproDir string, logf func(string, ...any)) *gen.CampaignResult {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	res, err := gen.RunCampaign(seed, n, gen.CampaignOptions{
		Pairs:   pairs,
		Size:    fixed,
		Shrink:  shrink,
		Workers: workers,
		Log:     logf,
	})
	if err != nil {
		fail(err)
	}
	for _, d := range res.Divergences {
		fmt.Fprintf(os.Stderr, "vasegen: DIVERGENCE: %s\n", d)
		fmt.Fprintf(os.Stderr, "vasegen: reproduce with: vasegen -seed %d -n %d -campaign -modes %s\n",
			d.Seed, d.Index+1, d.Pair)
		if d.Shrunk != nil {
			name := fmt.Sprintf("repro_s%d_i%d_%s.vhd", d.Seed, d.Index, d.Pair)
			path := filepath.Join(reproDir, name)
			if err := os.MkdirAll(reproDir, 0o755); err != nil {
				fail(err)
			}
			if err := os.WriteFile(path, []byte(d.Shrunk.Source), 0o644); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "vasegen: shrunken reproducer (%d quantities) written to %s\n",
				d.Shrunk.Quants(), path)
		}
	}
	return res
}

func benchCampaign(res *gen.CampaignResult) map[string]any {
	return map[string]any{
		"specs":        res.Specs,
		"pair_runs":    res.PairRuns,
		"skipped":      res.Skipped,
		"divergences":  len(res.Divergences),
		"wall_time_ms": res.Elapsed.Milliseconds(),
	}
}

func round2(v float64) float64 { return float64(int(v*100)) / 100 }

// fail prints every diagnostic of a diag.List in deterministic order (the
// generated source is reproducible from the printed seed/index, so the
// positions are actionable), rather than the ten-entry capped summary.
func fail(err error) {
	var dl diag.List
	if errors.As(err, &dl) {
		fmt.Fprint(os.Stderr, dl.Render(nil))
		os.Exit(exitcode.Error)
	}
	exitcode.Fail("vasegen", exitcode.Error, err)
}

func usage(err error) {
	exitcode.Fail("vasegen", exitcode.Usage, err)
}

package assertlang

import (
	"fmt"
	"strings"
)

// PragmaPrefix introduces an inline assertion in a VASS source file. The
// VASS lexer discards comments, so assertions ride in them:
//
//	-- assert: always abs(earph) <= 1.6
//	-- assert: eventually earph >= 1.4 within 0.4 ms
//
// Pragmas are whole-line comments; a pragma anywhere in a line after code
// is also honored.
const PragmaPrefix = "-- assert:"

// FromSource extracts and parses every assertion pragma in a VASS source
// text. Parse errors carry the 1-based source line of the offending pragma.
func FromSource(text string) ([]*Assertion, error) {
	var out []*Assertion
	for i, line := range strings.Split(text, "\n") {
		idx := strings.Index(line, PragmaPrefix)
		if idx < 0 {
			continue
		}
		spec := strings.TrimSpace(line[idx+len(PragmaPrefix):])
		if spec == "" {
			return nil, fmt.Errorf("line %d: empty assert pragma", i+1)
		}
		a, err := Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// Pragma renders an assertion source text as a pragma comment line.
func Pragma(spec string) string { return PragmaPrefix + " " + spec }

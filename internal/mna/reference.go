package mna

import (
	"context"
	"fmt"
	"math"
)

// This file preserves the original dense allocate-per-solve eliminator as
// SolverReference: the oracle against which the plan-based dense and sparse
// solvers are proven bit-identical (see the corpus equivalence tests). It is
// never used outside tests unless explicitly selected via Circuit.Solver.

// matrix is a dense MNA system Ax = b with ground row/column folded away.
type matrix struct {
	n   int
	a   [][]float64
	rhs []float64
}

func newMatrix(n int) *matrix {
	m := &matrix{n: n, rhs: make([]float64, n+1)}
	m.a = make([][]float64, n+1)
	for i := range m.a {
		m.a[i] = make([]float64, n+1)
	}
	return m
}

func (m *matrix) clear() {
	for i := range m.a {
		for j := range m.a[i] {
			m.a[i][j] = 0
		}
		m.rhs[i] = 0
	}
}

func (m *matrix) addG(a, b Node, g float64) {
	m.a[a][a] += g
	m.a[b][b] += g
	m.a[a][b] -= g
	m.a[b][a] -= g
}

// addI injects current ieq into node a (out of b).
func (m *matrix) addI(a, b Node, ieq float64) {
	m.rhs[a] += ieq
	m.rhs[b] -= ieq
}

func (m *matrix) stampVSource(branch int, a, b Node, v float64) {
	m.a[branch][a] += 1
	m.a[branch][b] -= 1
	m.a[a][branch] += 1
	m.a[b][branch] -= 1
	m.rhs[branch] += v
}

// stampRef builds the linearized MNA system around the iterate x at time t.
// h <= 0 means DC (capacitors open). prev is the previous-step solution for
// companion models.
func (c *Circuit) stampRef(m *matrix, x Solution, prev Solution, t, h float64) {
	m.clear()
	vx := func(n Node) float64 {
		if n == Ground {
			return 0
		}
		return x[n]
	}
	for _, d := range c.devices {
		switch d.kind {
		case dResistor:
			g := 1 / d.value
			m.addG(d.a, d.b, g)
		case dCapacitor:
			if h <= 0 {
				// DC: tiny conductance to avoid floating nodes.
				m.addG(d.a, d.b, 1e-12)
				continue
			}
			vprev := prev.V(d.a) - prev.V(d.b)
			if c.method == Trapezoidal {
				// Companion model: i = (2C/h)(v - vprev) - iprev.
				g := 2 * d.value / h
				m.addG(d.a, d.b, g)
				m.addI(d.a, d.b, g*vprev+d.prevI)
			} else {
				g := d.value / h
				m.addG(d.a, d.b, g)
				m.addI(d.a, d.b, g*vprev)
			}
		case dVSource:
			m.stampVSource(d.branch, d.a, d.b, d.wave(t))
		case dISource:
			m.addI(d.a, d.b, -d.wave(t))
		case dVCVS:
			// V(a,b) - gain*V(cp,cm) = 0 with branch current into a.
			m.a[d.branch][d.a] += 1
			m.a[d.branch][d.b] -= 1
			m.a[d.branch][d.cp] -= d.value
			m.a[d.branch][d.cm] += d.value
			m.a[d.a][d.branch] += 1
			m.a[d.b][d.branch] -= 1
		case dDiode:
			g, ieq := d.diodeLinearize(vx(d.a) - vx(d.b))
			m.addG(d.a, d.b, g)
			m.addI(d.a, d.b, -ieq)
		case dSwitch:
			m.addG(d.a, d.b, 1/d.switchR(vx(d.cp)-vx(d.cm)))
		case dOpAmp:
			dg, rhs := d.opampLinearize(vx(d.cp) - vx(d.cm))
			m.a[d.branch][d.a] += 1
			m.a[d.branch][d.cp] -= dg
			m.a[d.branch][d.cm] += dg
			m.rhs[d.branch] += rhs
			m.a[d.a][d.branch] += 1
		case dFunc:
			vals := make([]float64, len(d.ctrl))
			dps := make([]float64, len(d.ctrl))
			m.a[d.branch][d.a] += 1
			rhs := d.funcLinearize(x, vals, dps)
			for i, n := range d.ctrl {
				if n == Ground {
					continue
				}
				m.a[d.branch][n] -= dps[i]
			}
			m.rhs[d.branch] += rhs
			m.a[d.a][d.branch] += 1
		}
	}
}

// solve performs Gaussian elimination with partial pivoting, ignoring the
// ground row/column (index 0).
func (m *matrix) solve() (Solution, error) {
	n := m.n
	// Build the reduced system (indices 1..n).
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n+1)
		copy(a[i], m.a[i+1][1:])
		a[i][n] = m.rhs[i+1]
	}
	// Per-column magnitude of the original system: the singularity test is
	// relative to it, so a well-conditioned circuit whose conductances are
	// uniformly tiny (nano-siemens resistors stamp ~1e-16 entries) is not
	// misclassified as singular by an absolute threshold, while a column
	// whose pivot collapses relative to its own scale still is.
	scale := make([]float64, n)
	for r := 0; r < n; r++ {
		for col := 0; col < n; col++ {
			if v := math.Abs(a[r][col]); v > scale[col] {
				scale[col] = v
			}
		}
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if piv := math.Abs(a[p][col]); scale[col] == 0 || piv < 1e-12*scale[col] {
			return nil, fmt.Errorf("mna: singular matrix at column %d (floating node?)", col+1)
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / piv
			if f == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	x := make(Solution, n+1)
	for r := n - 1; r >= 0; r-- {
		sum := a[r][n]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k+1]
		}
		x[r+1] = sum / a[r][r]
	}
	return x, nil
}

// newtonRef is the original Newton iteration over the reference matrix; see
// newtonFast for the iteration contract (the damping, tolerance and
// cancellation behavior are identical).
func (c *Circuit) newtonRef(ctx context.Context, m *matrix, x0, prev Solution, t, h float64) (Solution, error) {
	if m.n > c.stats.PeakDim {
		c.stats.PeakDim = m.n
	}
	x := make(Solution, len(x0))
	copy(x, x0)
	for _, d := range c.devices {
		d.hasLast = false
	}
	maxIter := c.MaxNewtonIter
	if maxIter <= 0 {
		maxIter = defaultNewtonIter
	}
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mna: solve at t=%g cancelled: %w", t, err)
		}
		c.stampRef(m, x, prev, t, h)
		c.stats.Factorizations++
		next, err := m.solve()
		if err != nil {
			return nil, err
		}
		c.stats.NewtonIterations++
		worst := 0.0
		for i := 1; i < len(next); i++ {
			if d := math.Abs(next[i] - x[i]); d > worst {
				worst = d
			}
		}
		alpha := 1.0
		if worst > newtonMaxChange {
			alpha = newtonMaxChange / worst
		}
		for i := 1; i < len(next); i++ {
			x[i] += alpha * (next[i] - x[i])
		}
		if worst < newtonTol {
			return x, nil
		}
	}
	return x, fmt.Errorf("mna: Newton iteration did not converge at t=%g", t)
}

package lint

import (
	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/sema"
)

// unusedPass finds declared objects the design never touches: quantities,
// signals and terminals with no reference at all (warning), signals that are
// only ever written (informational — a write-only status output like a busy
// flag is common, but nothing in this design observes it), and user
// functions that are never called.
var unusedPass = &Pass{
	Name: "unused",
	Doc:  "unused quantities, signals, terminals and functions; write-only signals",
	Run:  runUnused,
}

func runUnused(u *Unit) {
	d := u.Design
	if d == nil {
		return
	}
	reads := map[string]int{}
	writes := map[string]int{}
	calls := map[string]int{}

	noteStmts(u.AST, reads, writes, calls)

	seen := map[*sema.Symbol]bool{}
	check := func(sym *sema.Symbol) {
		if sym == nil || seen[sym] || sym.Decl == nil {
			return
		}
		seen[sym] = true
		r, w := reads[sym.Name], writes[sym.Name]
		switch {
		case r == 0 && w == 0 && !sym.IsPort:
			u.Report(diag.CodeUnusedObject, sym.Decl.Span(),
				"%s %q is declared but never used", sym.Kind, sym.Orig).
				WithFix("remove the declaration, or wire %q into the design", sym.Orig)
		case r == 0 && w > 0 && sym.Kind == sema.SymSignal && sym.Mode != ast.ModeOut:
			u.Report(diag.CodeWriteOnlySignal, sym.Decl.Span(),
				"signal %q is assigned but never read", sym.Orig).
				WithFix("expose %q as an out port if it is a status output, or remove it", sym.Orig)
		}
	}
	for _, sym := range d.Quantities {
		check(sym)
	}
	for _, sym := range d.Signals {
		check(sym)
	}
	for _, sym := range d.Ports {
		if sym.Kind == sema.SymTerminal {
			if reads[sym.Name] == 0 && writes[sym.Name] == 0 {
				u.Report(diag.CodeUnusedObject, sym.Decl.Span(),
					"terminal %q is declared but never used", sym.Orig)
			}
		}
	}
	for _, name := range sortedKeys(d.Funcs) {
		f := d.Funcs[name]
		if f.Decl == nil || f.Builtin != "" {
			continue
		}
		if calls[name] == 0 {
			u.Report(diag.CodeUnusedFunction, f.Decl.SpanV,
				"function %q is declared but never called", f.Name)
		}
	}
}

// noteStmts walks the design file recording reads, writes and calls per
// canonical name. Assignment targets count as writes; every other name
// occurrence (including sensitivity-list entries and equation sides) counts
// as a read, because simultaneous statements use quantities relationally.
func noteStmts(df *ast.DesignFile, reads, writes, calls map[string]int) {
	var noteExpr func(e ast.Expr)
	noteExpr = func(e ast.Expr) {
		ast.Walk(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Name:
				reads[n.Ident.Canon]++
			case *ast.Call:
				calls[n.Fun.Canon]++
			}
			return true
		})
	}
	var noteSeq func(sts []ast.SeqStmt)
	noteSeq = func(sts []ast.SeqStmt) {
		for _, st := range sts {
			switch st := st.(type) {
			case *ast.Assign:
				if nm, ok := st.LHS.(*ast.Name); ok {
					writes[nm.Ident.Canon]++
				} else {
					noteExpr(st.LHS)
				}
				noteExpr(st.RHS)
			case *ast.IfStmt:
				noteExpr(st.Cond)
				noteSeq(st.Then)
				for _, e := range st.Elifs {
					noteExpr(e.Cond)
					noteSeq(e.Then)
				}
				noteSeq(st.Else)
			case *ast.CaseStmt:
				noteExpr(st.Expr)
				for _, arm := range st.Arms {
					noteSeq(arm.Seq)
				}
			case *ast.ForStmt:
				noteExpr(st.Range.Lo)
				noteExpr(st.Range.Hi)
				noteSeq(st.Body)
			case *ast.WhileStmt:
				noteExpr(st.Cond)
				noteSeq(st.Body)
			case *ast.ReturnStmt:
				noteExpr(st.Value)
			}
		}
	}
	var noteConc func(sts []ast.ConcStmt)
	noteConc = func(sts []ast.ConcStmt) {
		for _, st := range sts {
			switch st := st.(type) {
			case *ast.SimpleSimultaneous:
				noteExpr(st.LHS)
				noteExpr(st.RHS)
			case *ast.SimultaneousIf:
				noteExpr(st.Cond)
				noteConc(st.Then)
				for _, e := range st.Elifs {
					noteExpr(e.Cond)
					noteConc(e.Then)
				}
				noteConc(st.Else)
			case *ast.SimultaneousCase:
				noteExpr(st.Expr)
				for _, arm := range st.Arms {
					noteConc(arm.Conc)
				}
			case *ast.Procedural:
				noteSeq(st.Body)
			case *ast.Process:
				for _, e := range st.Sensitivity {
					noteExpr(e)
				}
				noteSeq(st.Body)
			}
		}
	}
	for _, arch := range df.Architectures() {
		noteConc(arch.Stmts)
		for _, decl := range arch.Decls {
			if fd, ok := decl.(*ast.FunctionDecl); ok {
				noteSeq(fd.Body)
			}
			if od, ok := decl.(*ast.ObjectDecl); ok && od.Init != nil {
				noteExpr(od.Init)
			}
		}
	}
	for _, unit := range df.Units {
		switch unit := unit.(type) {
		case *ast.Package:
			notePackageDecls(unit.Decls, noteExpr, noteSeq)
		case *ast.PackageBody:
			notePackageDecls(unit.Decls, noteExpr, noteSeq)
		}
	}
}

func notePackageDecls(decls []ast.Decl, noteExpr func(ast.Expr), noteSeq func([]ast.SeqStmt)) {
	for _, decl := range decls {
		switch decl := decl.(type) {
		case *ast.FunctionDecl:
			noteSeq(decl.Body)
		case *ast.ObjectDecl:
			if decl.Init != nil {
				noteExpr(decl.Init)
			}
		}
	}
}

package lint

import (
	"vase/internal/diag"
	"vase/internal/vhif"
)

// algLoopPass reports combinational cycles in the compiled signal-flow
// graphs. For modules compiled from source the finding is anchored at the
// source span of the DAE statement the first cycle block originated from;
// for serialized VHIF it names the cycle structurally.
var algLoopPass = &Pass{
	Name: "algloop",
	Doc:  "algebraic loops in signal-flow graphs, located at the originating DAE",
	Run:  runAlgLoop,
}

func runAlgLoop(u *Unit) {
	if u.Module == nil {
		return
	}
	for _, g := range u.Module.Graphs {
		cycle := g.FindAlgebraicLoop()
		if cycle == nil {
			continue
		}
		// Anchor at the first cycle block with a known source origin.
		sp := u.OriginOf(cycle[0])
		for _, b := range cycle[1:] {
			if sp.IsValid() {
				break
			}
			sp = u.OriginOf(b)
		}
		u.Report(diag.CodeLintLoop, sp,
			"graph %q has an algebraic loop: %s", g.Name, vhif.DescribeCycle(cycle)).
			WithFix("insert a state element (integrator or sample-and-hold) into the feedback path")
	}
}

// Solver: the two equation-solver benchmarks (Table 1, rows 3 and 4). The
// missile solver integrates a flight model with a log/antilog drag chain;
// the iterative solver converges on a fixed point and latches it with a
// sample-and-hold when the convergence detector fires.
package main

import (
	"fmt"
	"log"

	"vase"
)

func main() {
	missile()
	fmt.Println()
	iterative()
}

func missile() {
	app, err := vase.Benchmark("missile")
	if err != nil {
		log.Fatal(err)
	}
	design, err := vase.Compile(vase.Source{Name: "missile.vhd", Text: app.Source})
	if err != nil {
		log.Fatal(err)
	}
	arch, err := design.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== missile solver ==")
	fmt.Printf("13 VHIF blocks reduce to: %s (%d op amps)\n",
		arch.Netlist.Summary(), arch.Netlist.OpAmpCount())

	// Step command: velocity settles where thrust balances drag + damping.
	tr, err := design.Simulate(map[string]vase.Waveform{
		"cmd":  vase.StepAt(0, 1.0, 0.1),
		"wind": vase.DC(0),
		"bias": vase.DC(0),
	}, vase.SimOptions{TStop: 8, TStep: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  t [s]    acc       vel->dist")
	for i := 0; i < len(tr.Time); i += 1000 {
		fmt.Printf("  %5.2f   %+7.4f   %+8.4f\n", tr.Time[i], tr.Get("acc")[i], tr.Get("dist")[i])
	}
	fmt.Printf("steady acceleration: %.4f (drag balances command)\n", tr.Final("acc"))
}

func iterative() {
	app, err := vase.Benchmark("itersolver")
	if err != nil {
		log.Fatal(err)
	}
	design, err := vase.Compile(vase.Source{Name: "itersolver.vhd", Text: app.Source})
	if err != nil {
		log.Fatal(err)
	}
	arch, err := design.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== iterative equation solver ==")
	fmt.Printf("architecture: %s\n", arch.Netlist.Summary())

	tr, err := design.Simulate(map[string]vase.Waveform{},
		vase.SimOptions{TStop: 20, TStep: 1e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  t [s]    x         conv")
	for i := 0; i < len(tr.Time); i += 2500 {
		fmt.Printf("  %5.1f   %+7.4f   %4.0f\n", tr.Time[i], tr.Get("x")[i], tr.Get("conv")[i])
	}
	fmt.Printf("solution x(t->inf): %.4f; convergence flag: %v\n",
		tr.Final("x"), tr.Final("conv") > 0.5)
}

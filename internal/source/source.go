// Package source provides source-file handling, positions, spans, and
// diagnostic collection for the VASS front end.
//
// A File owns the text of one VASS compilation unit and a table of line
// offsets so that byte offsets can be rendered as line:column positions in
// diagnostics. Diagnostics are accumulated in an ErrorList which callers can
// inspect, sort, and render.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a byte offset into a File. The zero Pos is the start of the file;
// NoPos marks an unknown position.
type Pos int

// NoPos marks an absent or synthetic position.
const NoPos Pos = -1

// IsValid reports whether p refers to an actual location in a file.
func (p Pos) IsValid() bool { return p >= 0 }

// Span is a half-open byte range [Start, End) in a File.
type Span struct {
	Start, End Pos
}

// NewSpan returns the span covering [start, end). If end precedes start the
// span is collapsed to the start position.
func NewSpan(start, end Pos) Span {
	if end < start {
		end = start
	}
	return Span{Start: start, End: end}
}

// IsValid reports whether the span has a valid start position.
func (s Span) IsValid() bool { return s.Start.IsValid() }

// Union returns the smallest span covering both s and t. Invalid spans are
// ignored; the union of two invalid spans is invalid.
func (s Span) Union(t Span) Span {
	switch {
	case !s.IsValid():
		return t
	case !t.IsValid():
		return s
	}
	u := s
	if t.Start < u.Start {
		u.Start = t.Start
	}
	if t.End > u.End {
		u.End = t.End
	}
	return u
}

// Position is a resolved human-readable location.
type Position struct {
	Filename string
	Offset   int // byte offset, 0-based
	Line     int // 1-based
	Column   int // 1-based, in bytes
}

// String renders the position as "file:line:col", omitting empty parts.
func (p Position) String() string {
	s := p.Filename
	if p.Line > 0 {
		if s != "" {
			s += ":"
		}
		s += fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	if s == "" {
		s = "-"
	}
	return s
}

// File is a named source text with a lazily built line-offset index.
type File struct {
	name  string
	text  string
	lines []int // byte offsets of line starts; lines[0] == 0
}

// NewFile registers the given text under name and returns the File.
func NewFile(name, text string) *File {
	f := &File{name: name, text: text}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(text); i++ {
		if text[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// Name returns the file name the File was registered under.
func (f *File) Name() string { return f.name }

// Text returns the complete source text.
func (f *File) Text() string { return f.text }

// Size returns the length of the source text in bytes.
func (f *File) Size() int { return len(f.text) }

// LineCount returns the number of lines in the file. The empty file has one
// (empty) line.
func (f *File) LineCount() int { return len(f.lines) }

// Slice returns the text covered by span, clamped to the file bounds.
func (f *File) Slice(s Span) string {
	lo, hi := int(s.Start), int(s.End)
	if lo < 0 {
		lo = 0
	}
	if hi > len(f.text) {
		hi = len(f.text)
	}
	if lo >= hi {
		return ""
	}
	return f.text[lo:hi]
}

// Position resolves a Pos to a Position within f.
func (f *File) Position(p Pos) Position {
	if !p.IsValid() {
		return Position{Filename: f.name}
	}
	off := int(p)
	if off > len(f.text) {
		off = len(f.text)
	}
	// Binary search for the greatest line start <= off.
	i := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > off }) - 1
	return Position{
		Filename: f.name,
		Offset:   off,
		Line:     i + 1,
		Column:   off - f.lines[i] + 1,
	}
}

// Line returns the 1-based line number of p.
func (f *File) Line(p Pos) int { return f.Position(p).Line }

// Error is a single diagnostic attached to a position.
type Error struct {
	Pos Position
	Msg string
}

// Error implements the error interface, rendering "pos: msg".
func (e *Error) Error() string {
	if e.Pos.Filename == "" && e.Pos.Line == 0 {
		return e.Msg
	}
	return e.Pos.String() + ": " + e.Msg
}

// ErrorList collects diagnostics during a front-end pass.
type ErrorList []*Error

// Add appends a diagnostic at pos.
func (l *ErrorList) Add(pos Position, format string, args ...any) {
	*l = append(*l, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Sort orders the list by file, line, column, then message.
func (l ErrorList) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i].Pos, l[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return l[i].Msg < l[j].Msg
	})
}

// Dedupe removes entries with identical position and message, keeping the
// first occurrence.
func (l *ErrorList) Dedupe() {
	seen := make(map[Error]bool, len(*l))
	out := (*l)[:0]
	for _, e := range *l {
		if seen[*e] {
			continue
		}
		seen[*e] = true
		out = append(out, e)
	}
	*l = out
}

// Len returns the number of collected diagnostics.
func (l ErrorList) Len() int { return len(l) }

// Err sorts the list by position and removes duplicate messages, so that
// rendered output is deterministic, then returns the list as an error, or
// nil if it is empty.
func (l *ErrorList) Err() error {
	l.Sort()
	l.Dedupe()
	if len(*l) == 0 {
		return nil
	}
	return *l
}

// Error renders at most ten diagnostics, one per line.
func (l ErrorList) Error() string {
	var b strings.Builder
	for i, e := range l {
		if i == 10 {
			fmt.Fprintf(&b, "... and %d more errors", len(l)-10)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	if b.Len() == 0 {
		return "no errors"
	}
	return b.String()
}

entity subset_demo is
  port (
    quantity a : in real is voltage;
    quantity b : inout real;
    quantity w : out real
  );
end entity;

architecture behavioral of subset_demo is
  signal bits : bit_vector(1 to 4);
  signal go : bit;
begin
  w == (a + a)'dot;
  process is
  begin
    while (go = '0') loop
      go <= '1';
    end loop;
  end process;
end architecture;

package mna

import (
	"math"
	"testing"
)

func TestVoltageDividerDC(t *testing.T) {
	c := New()
	in := c.NodeByName("in")
	mid := c.NodeByName("mid")
	c.AddV("v1", in, Ground, func(float64) float64 { return 10 })
	c.AddR("r1", in, mid, 1e3)
	c.AddR("r2", mid, Ground, 1e3)
	sol, err := c.DC()
	if err != nil {
		t.Fatalf("dc: %v", err)
	}
	if got := sol.V(mid); math.Abs(got-5) > 1e-9 {
		t.Errorf("divider mid = %g, want 5", got)
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := New()
	n := c.NodeByName("n")
	c.AddI("i1", Ground, n, func(float64) float64 { return 1e-3 })
	c.AddR("r1", n, Ground, 2e3)
	sol, err := c.DC()
	if err != nil {
		t.Fatalf("dc: %v", err)
	}
	if got := sol.V(n); math.Abs(got-2) > 1e-9 {
		t.Errorf("V = %g, want 2 (1 mA into 2 kohm)", got)
	}
}

func TestVCVSGain(t *testing.T) {
	c := New()
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	c.AddV("v1", in, Ground, func(float64) float64 { return 0.5 })
	c.AddVCVS("e1", out, Ground, in, Ground, 10)
	c.AddR("rl", out, Ground, 1e3)
	sol, err := c.DC()
	if err != nil {
		t.Fatalf("dc: %v", err)
	}
	if got := sol.V(out); math.Abs(got-5) > 1e-9 {
		t.Errorf("VCVS out = %g, want 5", got)
	}
}

func TestRCTransient(t *testing.T) {
	// RC step response: tau = 1 ms; at t = 1 ms, v = 1 - 1/e.
	c := New()
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	c.AddV("v1", in, Ground, func(float64) float64 { return 1 })
	c.AddR("r1", in, out, 1e3)
	c.AddC("c1", out, Ground, 1e-6, 0)
	tr, err := c.Transient(1e-3, 1e-6)
	if err != nil {
		t.Fatalf("tran: %v", err)
	}
	want := 1 - math.Exp(-1)
	got := tr.Node("out")[len(tr.Node("out"))-1]
	if math.Abs(got-want) > 5e-3 {
		t.Errorf("v(out) at tau = %g, want %g", got, want)
	}
}

func TestDiodeClamp(t *testing.T) {
	// A diode from the node to a 1 V source clamps positive excursions
	// near 1.6 V.
	c := New()
	in := c.NodeByName("in")
	n := c.NodeByName("n")
	ref := c.NodeByName("ref")
	c.AddV("vin", in, Ground, func(t float64) float64 { return 5 })
	c.AddV("vref", ref, Ground, func(float64) float64 { return 1 })
	c.AddR("rs", in, n, 1e3)
	c.AddDiode("d1", n, ref)
	sol, err := c.DC()
	if err != nil {
		t.Fatalf("dc: %v", err)
	}
	v := sol.V(n)
	if v < 1.4 || v > 1.9 {
		t.Errorf("clamped node = %g, want ~1.6-1.8", v)
	}
}

func TestOpAmpInvertingAmplifier(t *testing.T) {
	// Gain -2 inverting amplifier from the macromodel.
	c := New()
	in := c.NodeByName("in")
	vg := c.NodeByName("vg")
	out := c.NodeByName("out")
	c.AddV("vin", in, Ground, func(float64) float64 { return 0.5 })
	c.AddR("ri", in, vg, 10e3)
	c.AddR("rf", out, vg, 20e3)
	c.AddOpAmp("oa", out, Ground, vg, 1e4, 4)
	sol, err := c.DC()
	if err != nil {
		t.Fatalf("dc: %v", err)
	}
	if got := sol.V(out); math.Abs(got+1.0) > 1e-3 {
		t.Errorf("inverting amp out = %g, want -1.0", got)
	}
}

func TestOpAmpSaturation(t *testing.T) {
	// Input overdrive saturates the stage at vmax.
	c := New()
	in := c.NodeByName("in")
	vg := c.NodeByName("vg")
	out := c.NodeByName("out")
	c.AddV("vin", in, Ground, func(float64) float64 { return 3 })
	c.AddR("ri", in, vg, 10e3)
	c.AddR("rf", out, vg, 20e3)
	c.AddOpAmp("oa", out, Ground, vg, 1e4, 4)
	sol, err := c.DC()
	if err != nil {
		t.Fatalf("dc: %v", err)
	}
	if got := sol.V(out); got > -3.8 || got < -4.05 {
		t.Errorf("saturated out = %g, want ~ -4", got)
	}
}

func TestFollowerTracksAndClips(t *testing.T) {
	c := New()
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	c.AddV("vin", in, Ground, func(t float64) float64 { return 3 * math.Sin(2*math.Pi*1e3*t) })
	c.AddOpAmp("oa", out, in, out, 1e4, 1.5)
	c.AddR("rl", out, Ground, 270)
	tr, err := c.Transient(2e-3, 1e-6)
	if err != nil {
		t.Fatalf("tran: %v", err)
	}
	if max := tr.Max("out"); max < 1.40 || max > 1.55 {
		t.Errorf("clip level = %g, want ~1.5", max)
	}
	if min := tr.Min("out"); min > -1.40 || min < -1.55 {
		t.Errorf("negative clip = %g, want ~-1.5", min)
	}
	// Small-signal region tracks the input.
	vin := tr.Node("in")
	vout := tr.Node("out")
	for i := range vin {
		if math.Abs(vin[i]) < 0.5 && math.Abs(vout[i]-vin[i]) > 0.05 {
			t.Fatalf("follower error at sample %d: in=%g out=%g", i, vin[i], vout[i])
		}
	}
}

func TestSwitchRouting(t *testing.T) {
	c := New()
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	ctl := c.NodeByName("ctl")
	c.AddV("vin", in, Ground, func(float64) float64 { return 2 })
	c.AddV("vctl", ctl, Ground, func(t float64) float64 {
		if t > 0.5e-3 {
			return 2.5
		}
		return -2.5
	})
	c.AddSwitch("sw", in, out, ctl, Ground, 100, 1e9, 0)
	c.AddR("rl", out, Ground, 1e4)
	tr, err := c.Transient(1e-3, 1e-5)
	if err != nil {
		t.Fatalf("tran: %v", err)
	}
	vout := tr.Node("out")
	if v := vout[10]; math.Abs(v) > 0.01 {
		t.Errorf("open switch leaks: %g", v)
	}
	if v := vout[len(vout)-1]; math.Abs(v-2*1e4/(1e4+100)) > 0.01 {
		t.Errorf("closed switch out = %g, want ~1.98", v)
	}
}

func TestBehavioralFunc(t *testing.T) {
	c := New()
	a := c.NodeByName("a")
	b := c.NodeByName("b")
	out := c.NodeByName("out")
	c.AddV("va", a, Ground, func(float64) float64 { return 2 })
	c.AddV("vb", b, Ground, func(float64) float64 { return 3 })
	c.AddFunc("mul", out, []Node{a, b}, func(v []float64) float64 { return v[0] * v[1] })
	c.AddR("rl", out, Ground, 1e4)
	sol, err := c.DC()
	if err != nil {
		t.Fatalf("dc: %v", err)
	}
	if got := sol.V(out); math.Abs(got-6) > 1e-6 {
		t.Errorf("func out = %g, want 6", got)
	}
}

func TestSingularMatrixDetected(t *testing.T) {
	c := New()
	n := c.NodeByName("floating")
	c.AddI("i1", Ground, n, func(float64) float64 { return 1e-3 })
	// No DC path from n: singular.
	if _, err := c.DC(); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestTransientArgumentValidation(t *testing.T) {
	c := New()
	if _, err := c.Transient(0, 1e-6); err == nil {
		t.Error("zero tstop should fail")
	}
	if _, err := c.Transient(1e-3, 0); err == nil {
		t.Error("zero step should fail")
	}
}

func TestTrapezoidalMoreAccurateThanBE(t *testing.T) {
	// RC step response at a coarse step: the trapezoidal rule's error at
	// t = tau must be well below backward Euler's.
	run := func(m Method) float64 {
		c := New()
		c.SetMethod(m)
		in := c.NodeByName("in")
		out := c.NodeByName("out")
		c.AddV("v1", in, Ground, func(float64) float64 { return 1 })
		c.AddR("r1", in, out, 1e3)
		c.AddC("c1", out, Ground, 1e-6, 0)
		tr, err := c.Transient(1e-3, 5e-5) // 20 steps per tau
		if err != nil {
			t.Fatalf("tran: %v", err)
		}
		got := tr.Node("out")[len(tr.Node("out"))-1]
		return math.Abs(got - (1 - math.Exp(-1)))
	}
	be := run(BackwardEuler)
	tz := run(Trapezoidal)
	if tz > be/5 {
		t.Errorf("trapezoidal error %g should be well below backward Euler %g", tz, be)
	}
}

func TestTrapezoidalLCOscillatorUndamped(t *testing.T) {
	// An RC relaxation comparison is indirect; instead verify low numerical
	// damping on a lightly loaded RC divider driven by a sine: amplitude
	// tracking error stays small at 20 steps/period.
	c := New()
	c.SetMethod(Trapezoidal)
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	f := 1e3
	c.AddV("v1", in, Ground, func(t float64) float64 { return math.Sin(2 * math.Pi * f * t) })
	c.AddR("r1", in, out, 1e3)
	c.AddC("c1", out, Ground, 1e-9, 0) // corner at 159 kHz: nearly unity
	tr, err := c.Transient(5e-3, 5e-5)
	if err != nil {
		t.Fatalf("tran: %v", err)
	}
	if max := tr.Max("out"); math.Abs(max-1) > 0.02 {
		t.Errorf("amplitude = %g, want ~1 (negligible damping)", max)
	}
}

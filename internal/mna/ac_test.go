package mna

import (
	"math"
	"testing"
)

func TestACRCLowPassCorner(t *testing.T) {
	// RC low-pass: fc = 1/(2*pi*RC) = 1591.5 Hz for 10k/10n.
	c := New()
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	c.AddV("vin", in, Ground, func(float64) float64 { return 0 })
	c.AddR("r", in, out, 10e3)
	c.AddC("c", out, Ground, 10e-9, 0)
	fc := 1 / (2 * math.Pi * 10e3 * 10e-9)
	res, err := c.AC("vin", []float64{fc / 100, fc, fc * 100})
	if err != nil {
		t.Fatalf("ac: %v", err)
	}
	mag := res.Mag("out")
	if math.Abs(mag[0]-1) > 0.01 {
		t.Errorf("passband gain = %g, want ~1", mag[0])
	}
	if math.Abs(mag[1]-1/math.Sqrt2) > 0.01 {
		t.Errorf("corner gain = %g, want 0.707 (-3 dB)", mag[1])
	}
	if mag[2] > 0.02 {
		t.Errorf("stopband gain = %g, want ~0.01 (-40 dB at 100x)", mag[2])
	}
	// Phase at the corner is -45 degrees.
	if ph := res.PhaseDeg("out")[1]; math.Abs(ph+45) > 1 {
		t.Errorf("corner phase = %g deg, want -45", ph)
	}
}

func TestACInvertingAmpFlat(t *testing.T) {
	// The macromodel has no internal pole: the closed-loop gain is flat
	// at -Rf/Ri across the sweep.
	c := New()
	in := c.NodeByName("in")
	vg := c.NodeByName("vg")
	out := c.NodeByName("out")
	c.AddV("vin", in, Ground, func(float64) float64 { return 0 })
	c.AddR("ri", in, vg, 10e3)
	c.AddR("rf", out, vg, 30e3)
	c.AddOpAmp("oa", out, Ground, vg, 1e4, 4)
	res, err := c.AC("vin", LogSweep(10, 1e6, 11))
	if err != nil {
		t.Fatalf("ac: %v", err)
	}
	for i, m := range res.Mag("out") {
		if math.Abs(m-3) > 0.01 {
			t.Errorf("gain at %g Hz = %g, want 3", res.Freqs[i], m)
		}
	}
}

func TestACSaturatedStageHasNoGain(t *testing.T) {
	// An op amp biased into saturation by a large DC input contributes
	// (almost) zero incremental gain at the operating point.
	c := New()
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	c.AddV("vbias", in, Ground, func(float64) float64 { return 3 })
	c.AddOpAmp("oa", out, in, Ground, 1e4, 1.5) // open loop, saturated
	res, err := c.AC("vbias", []float64{1e3})
	if err != nil {
		t.Fatalf("ac: %v", err)
	}
	if g := res.Mag("out")[0]; g > 1e-3 {
		t.Errorf("saturated incremental gain = %g, want ~0", g)
	}
}

func TestACUnknownSourceRejected(t *testing.T) {
	c := New()
	n := c.NodeByName("n")
	c.AddR("r", n, Ground, 1e3)
	if _, err := c.AC("ghost", []float64{1e3}); err == nil {
		t.Fatal("expected unknown-source error")
	}
}

func TestLogSweep(t *testing.T) {
	fs := LogSweep(10, 1000, 3)
	if len(fs) != 3 || math.Abs(fs[0]-10) > 1e-9 || math.Abs(fs[1]-100) > 1e-6 || math.Abs(fs[2]-1000) > 1e-6 {
		t.Errorf("sweep = %v", fs)
	}
}

func TestMagDB(t *testing.T) {
	c := New()
	in := c.NodeByName("in")
	out := c.NodeByName("out")
	c.AddV("vin", in, Ground, func(float64) float64 { return 0 })
	c.AddVCVS("e", out, Ground, in, Ground, 10)
	c.AddR("rl", out, Ground, 1e3)
	res, err := c.AC("vin", []float64{1e3})
	if err != nil {
		t.Fatalf("ac: %v", err)
	}
	if db := res.MagDB("out")[0]; math.Abs(db-20) > 0.01 {
		t.Errorf("gain = %g dB, want 20", db)
	}
}

// TestACDenseFallbackLazyAndReused pins the dense-fallback economics: a
// worker that never misses the sparse pattern must not carry dense storage
// at all, and a worker that misses repeatedly must allocate it exactly once
// and reuse it on every later miss.
func TestACDenseFallbackLazyAndReused(t *testing.T) {
	c := activeChain(7) // sparse plan: dim 23 is past the crossover
	op, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.ensureSolver()
	if err != nil {
		t.Fatal(err)
	}
	if !s.sparse {
		t.Fatalf("want a sparse plan for the fallback test, got dense dim %d", s.dim)
	}
	tmpl := c.buildACTemplate(s, op, "vin")
	ws := newACWorkspace(s, tmpl)
	if err := ws.solvePoint(s, tmpl, 1e3); err != nil {
		t.Fatal(err)
	}
	if ws.dvals != nil {
		t.Fatal("dense fallback storage allocated without a pattern miss")
	}
	// Drive the miss path directly (a real miss needs a pivot walk outside
	// the adaptively grown pattern, which well-formed circuits rarely do).
	if err := ws.denseFallback(s, tmpl, 1e3); err != nil {
		t.Fatal(err)
	}
	if len(ws.dvals) != len(tmpl.dvals) {
		t.Fatalf("dense storage sized %d, want %d", len(ws.dvals), len(tmpl.dvals))
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := ws.denseFallback(s, tmpl, 2e3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("repeated dense fallback: %v allocs/op, want 0 (workspace must be reused)", allocs)
	}
}

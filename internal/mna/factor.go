package mna

import (
	"fmt"
	"math"
)

// This file holds the in-place numeric factorizations behind the stamp
// plan. Both perform the reference eliminator's exact floating-point
// operation sequence — scaled-partial-pivot selection by strict comparison
// in logical row order, the f==0 row skip, elimination left-to-right, and
// ascending back-substitution — so their solutions are bit-identical to
// SolverReference (pinned corpus-wide by the equivalence tests).
//
// The sparse eliminator additionally skips operations on structural zeros.
// That is bit-exact, not approximate: stamped and fill slots start at +0
// and no operation in the sequence can produce -0 in a matrix slot or
// right-hand-side accumulator (a+(-a) and x-x round to +0; the only -0
// source would be an accumulator already at -0), so every skipped term is
// of the form acc -= f*(+0) or acc -= (+0)*x with acc != -0, which leaves
// acc unchanged in IEEE-754 arithmetic.

// denseFactorSolve factors the stamped dense system in place and writes the
// solution into x (1-based, x[0]=0). Row exchanges are permutation updates,
// not data movement; no memory is allocated.
func (s *solver) denseFactorSolve(x Solution) error {
	n := s.dim
	a, rhs, perm, scale := s.vals, s.rhsv, s.perm, s.scale
	for i := 0; i < n; i++ {
		perm[i] = i
		scale[i] = 0
	}
	// Per-column magnitude of the original system: the singularity test is
	// relative to it, so a well-conditioned circuit whose conductances are
	// uniformly tiny is not misclassified as singular by an absolute
	// threshold, while a column whose pivot collapses relative to its own
	// scale still is.
	for r := 0; r < n; r++ {
		row := a[r*n : r*n+n]
		for col, v := range row {
			if v < 0 {
				v = -v
			}
			if v > scale[col] {
				scale[col] = v
			}
		}
	}
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in logical row order (strict >), the
		// reference tie-breaking rule.
		p := col
		pv := math.Abs(a[perm[p]*n+col])
		for r := col + 1; r < n; r++ {
			if av := math.Abs(a[perm[r]*n+col]); av > pv {
				p, pv = r, av
			}
		}
		if scale[col] == 0 || pv < 1e-12*scale[col] {
			return fmt.Errorf("mna: singular matrix at column %d (floating node?)", col+1)
		}
		perm[col], perm[p] = perm[p], perm[col]
		pr := perm[col]
		piv := a[pr*n+col]
		prow := a[pr*n : pr*n+n]
		for r := col + 1; r < n; r++ {
			rr := perm[r]
			num := a[rr*n+col]
			if num == 0 {
				// The reference would compute f = 0/piv = ±0 and skip;
				// skipping before the (expensive) division is bit-identical.
				continue
			}
			f := num / piv
			if f == 0 {
				continue
			}
			row := a[rr*n : rr*n+n]
			for k := col; k < n; k++ {
				row[k] -= f * prow[k]
			}
			rhs[rr] -= f * rhs[pr]
		}
	}
	for r := n - 1; r >= 0; r-- {
		rr := perm[r]
		sum := rhs[rr]
		row := a[rr*n : rr*n+n]
		for k := r + 1; k < n; k++ {
			sum -= row[k] * x[k+1]
		}
		x[r+1] = sum / row[r]
	}
	x[0] = 0
	return nil
}

// sparseFactorSolve is the CSR twin of denseFactorSolve, driven by the
// plan's column-compressed index: each column's pivot scan and elimination
// touch only the physical rows with a pattern entry at that column (rows
// without one hold an exact zero there and can never win the strict pivot
// comparison or produce a nonzero multiplier). The inverse permutation pos
// classifies each column entry as U (row already a pivot), the pivot row,
// or an elimination target, and diagQ records each pivot's diagonal slot
// for back-substitution.
func (s *solver) sparseFactorSolve(x Solution) error {
	n := s.dim
	vals, ci, rp := s.vals, s.colIdx, s.rowPtr
	rhs, perm, pos, scale := s.rhsv, s.perm, s.pos, s.scale
	cp, crow, cslot, diagQ := s.colPtr, s.colRow, s.colSlot, s.diagQ
	for i := 0; i < n; i++ {
		perm[i] = i
		pos[i] = i
	}
	// Column scale from the stamped slots only: this pass runs before any
	// elimination, when every adaptively discovered fill slot still holds
	// an exact zero, so fill cannot contribute to a column's magnitude.
	sp, ss := s.scalePtr, s.scaleSlot
	for col := 0; col < n; col++ {
		m := 0.0
		for k := sp[col]; k < sp[col+1]; k++ {
			v := vals[ss[k]]
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		scale[col] = m
	}
	cursor := 0 // read position into the replay stream
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude among rows not yet eliminated, earliest
		// logical position on ties — exactly the reference's strict-> scan
		// in logical row order, restricted to the rows that can win. When
		// the replay cache covers this column, the candidate set is read
		// from the cached segment (it is exact: the candidate rows are
		// fully determined by the pivot prefix, which has matched so far);
		// otherwise the column-compressed pattern is scanned and U entries
		// filtered by logical position.
		pr, pq, plp := -1, 0, col
		pv := 0.0
		if col < s.schedN {
			st := s.sched[cursor:]
			cpr, cpq := int(st[0]), int(st[1])
			tail, nt := int(st[2]), int(st[3])
			pr, pq, plp = cpr, cpq, pos[cpr]
			pv = vals[cpq]
			if pv < 0 {
				pv = -pv
			}
			off := 4
			for t := 0; t < nt; t++ {
				q, rr := int(st[off]), int(st[off+1])
				off += 2 + tail
				av := vals[q]
				if av < 0 {
					av = -av
				}
				if lp := pos[rr]; av > pv || (av == pv && lp < plp) {
					pr, pq, plp, pv = rr, q, lp, av
				}
			}
			if scale[col] == 0 || pv < 1e-12*scale[col] {
				return fmt.Errorf("mna: singular matrix at column %d (floating node?)", col+1)
			}
			if pr == cpr {
				// Cached pivot still wins: replay the recorded
				// eliminations. Source slots are the pivot row's
				// contiguous tail, destinations come from the stream.
				other := perm[col]
				perm[col], perm[plp] = pr, other
				pos[pr], pos[other] = col, plp
				diagQ[col] = pq
				piv := vals[pq]
				off = 4
				for t := 0; t < nt; t++ {
					q, rr := int(st[off]), int(st[off+1])
					dst := st[off+2 : off+2+tail]
					off += 2 + tail
					num := vals[q]
					if num == 0 {
						// f = 0/piv = ±0: the reference's f==0 skip,
						// taken before the division.
						continue
					}
					f := num / piv
					if f == 0 {
						continue
					}
					pk := pq
					for _, dj := range dst {
						vals[dj] -= f * vals[pk]
						pk++
					}
					rhs[rr] -= f * rhs[pr]
				}
				cursor += off
				continue
			}
			// The pivot moved: the cached suffix no longer describes the
			// elimination. Drop it and re-record from this column.
			s.schedN = col
			s.sched = s.sched[:cursor]
		} else {
			for k := cp[col]; k < cp[col+1]; k++ {
				rr := int(crow[k])
				lp := pos[rr]
				if lp < col {
					continue // already eliminated: this entry is in U
				}
				av := vals[cslot[k]]
				if av < 0 {
					av = -av
				}
				if av > pv || (av == pv && lp < plp) {
					pr, pq, plp, pv = rr, int(cslot[k]), lp, av
				}
			}
			if scale[col] == 0 || pv < 1e-12*scale[col] {
				return fmt.Errorf("mna: singular matrix at column %d (floating node?)", col+1)
			}
		}
		other := perm[col]
		perm[col], perm[plp] = pr, other
		pos[pr], pos[other] = col, plp
		diagQ[col] = pq
		pend := rp[pr+1]
		tail := pend - pq
		piv := vals[pq]
		s.sched = append(s.sched, int32(pr), int32(pq), int32(tail), 0)
		ntPos := len(s.sched) - 1
		nt := int32(0)
		for k := cp[col]; k < cp[col+1]; k++ {
			rr := int(crow[k])
			if pos[rr] <= col {
				continue // the pivot row itself, or a U entry
			}
			q := int(cslot[k])
			s.sched = append(s.sched, int32(q), int32(rr))
			// Merge walk over the pivot row's tail, recorded
			// value-independently so a later replay can apply it even when
			// this iteration's multiplier happens to be zero. A target
			// slot outside this row's pattern means elimination fill the
			// pattern has not seen yet: grow the pattern (monotonically)
			// and have the caller restamp and retry. Until that first
			// miss, every out-of-pattern position is an exact zero, so the
			// values computed so far match the dense elimination bit for
			// bit and can simply be discarded.
			end := rp[rr+1]
			w := q
			for pk := pq; pk < pend; pk++ {
				c2 := ci[pk]
				for w < end && ci[w] < c2 {
					w++
				}
				if w >= end || ci[w] != c2 {
					s.grow(rr, pr, col)
					return errPatternGrown
				}
				s.sched = append(s.sched, int32(w))
			}
			nt++
			num := vals[q]
			if num == 0 {
				continue
			}
			f := num / piv
			if f == 0 {
				continue
			}
			dst := s.sched[len(s.sched)-tail:]
			for j, pk := 0, pq; pk < pend; j, pk = j+1, pk+1 {
				vals[dst[j]] -= f * vals[pk]
			}
			rhs[rr] -= f * rhs[pr]
		}
		s.sched[ntPos] = nt
		cursor = len(s.sched)
		s.schedN = col + 1
	}
	for r := n - 1; r >= 0; r-- {
		rr := perm[r]
		q := diagQ[r]
		sum := rhs[rr]
		for k := q + 1; k < rp[rr+1]; k++ {
			sum -= vals[k] * x[ci[k]+1]
		}
		x[r+1] = sum / vals[q]
	}
	x[0] = 0
	return nil
}

package ast

import "vase/internal/source"

// ---------------------------------------------------------------------------
// Error nodes
//
// A recovered parse is a total function from bytes to tree: when the parser
// cannot make sense of a region it resynchronizes to the nearest anchor
// token (";", "end", "entity", "architecture", "process", "begin") and wraps
// the skipped region in a typed Error node at the syntactic position where a
// well-formed construct was expected. The node records the span of the
// skipped bytes and keeps whatever partial children were parsed before the
// recovery, so later passes (sema, lint, the language server) can still see
// — and resolve names against — everything the parser did understand.
//
// Error nodes carry no diagnostics themselves; the parser reports the
// VASS01xx diagnostics as before. Sema types ErrorExpr as the poisoned
// error type, which suppresses cascading diagnostics downstream.

// ErrorNode is implemented by all five Error node variants. It exists so
// generic tools (tree walkers, tiling checks) can recognize recovery nodes
// without enumerating the variants.
type ErrorNode interface {
	Node
	// Skipped is the span of input bytes the parser skipped while
	// resynchronizing (invalid when the recovery consumed nothing).
	Skipped() source.Span
	errorNode()
}

// ErrorExpr is an expression-shaped hole: the parser expected an expression
// and found none it could parse.
type ErrorExpr struct {
	SpanV source.Span
}

// ErrorStmt is a sequential-statement-shaped hole. Parts keeps partial
// children parsed before the recovery (e.g. the left-hand side of a broken
// assignment).
type ErrorStmt struct {
	SpanV source.Span
	Parts []Node
}

// ErrorConc is a concurrent-statement-shaped hole at architecture-body
// level.
type ErrorConc struct {
	SpanV source.Span
	Parts []Node
}

// ErrorDecl is a declaration-shaped hole.
type ErrorDecl struct {
	SpanV source.Span
	Parts []Node
}

// ErrorUnit is a design-unit-shaped hole: tokens at file level that belong
// to no entity, architecture or package.
type ErrorUnit struct {
	SpanV source.Span
	Parts []Node
}

// Span implementations.
func (n *ErrorExpr) Span() source.Span { return n.SpanV }
func (n *ErrorStmt) Span() source.Span { return n.SpanV }
func (n *ErrorConc) Span() source.Span { return n.SpanV }
func (n *ErrorDecl) Span() source.Span { return n.SpanV }
func (n *ErrorUnit) Span() source.Span { return n.SpanV }

// Skipped implementations: the whole node span is the skipped region.
func (n *ErrorExpr) Skipped() source.Span { return n.SpanV }
func (n *ErrorStmt) Skipped() source.Span { return n.SpanV }
func (n *ErrorConc) Skipped() source.Span { return n.SpanV }
func (n *ErrorDecl) Skipped() source.Span { return n.SpanV }
func (n *ErrorUnit) Skipped() source.Span { return n.SpanV }

func (*ErrorExpr) errorNode() {}
func (*ErrorStmt) errorNode() {}
func (*ErrorConc) errorNode() {}
func (*ErrorDecl) errorNode() {}
func (*ErrorUnit) errorNode() {}

// Position the variants in their syntactic categories.
func (*ErrorExpr) exprNode() {}
func (*ErrorStmt) seqNode()  {}
func (*ErrorConc) concNode() {}
func (*ErrorDecl) declNode() {}
func (*ErrorUnit) unitNode() {}

// IsError reports whether n is one of the Error node variants.
func IsError(n Node) bool {
	_, ok := n.(ErrorNode)
	return ok
}

// HasErrors reports whether the tree rooted at n contains any Error node.
func HasErrors(n Node) bool {
	found := false
	Walk(n, func(c Node) bool {
		if found {
			return false
		}
		if IsError(c) {
			found = true
			return false
		}
		return true
	})
	return found
}

// ErrorSpans collects the skipped spans of every Error node in the tree
// rooted at n, in walk order.
func ErrorSpans(n Node) []source.Span {
	var out []source.Span
	Walk(n, func(c Node) bool {
		if e, ok := c.(ErrorNode); ok {
			out = append(out, e.Skipped())
		}
		return true
	})
	return out
}

// CountErrors returns the number of Error nodes in the tree rooted at n.
func CountErrors(n Node) int {
	count := 0
	Walk(n, func(c Node) bool {
		if IsError(c) {
			count++
		}
		return true
	})
	return count
}

// ---------------------------------------------------------------------------
// Library/use clauses
//
// VASS designs are self-contained once same-file packages are visible, so
// library and use clauses carry no semantics. They were previously consumed
// without leaving a node; the recovery invariant (every token is covered by
// some top-level unit) requires them to appear in the tree.

// LibClause is an accepted-and-ignored "library ...;" or "use ...;" clause.
type LibClause struct {
	SpanV source.Span
}

// Span returns the span of the clause.
func (n *LibClause) Span() source.Span { return n.SpanV }

func (*LibClause) unitNode() {}

package pipeline

import (
	"context"
	"math"
	"testing"

	"vase/internal/absint"
	"vase/internal/assertlang"
)

// limiterSrc bounds its output by construction, so the ranges stage
// produces a finite hull the static checker can prove things about.
const limiterSrc = `
entity clipper is
  port (
    quantity vin : in real is voltage;
    quantity vout : out real is voltage limited at 1.5
  );
end entity;
architecture beh of clipper is
begin
  vout == 2.0 * vin;
end architecture;
`

func TestRangesMemoized(t *testing.T) {
	p := newPipe(t, Options{})
	ctx := context.Background()
	first, err := p.Ranges(ctx, "clipper.vhd", limiterSrc)
	if err != nil {
		t.Fatalf("ranges: %v", err)
	}
	if first.Cached {
		t.Error("first analysis reported Cached")
	}
	h, ok := first.Signal("vout")
	if !ok {
		t.Fatal("vout did not resolve in the hull table")
	}
	if h.Lo < -1.5 || h.Hi > 1.5 {
		t.Errorf("vout hull = %v, want within [-1.5, 1.5]", h)
	}
	second, err := p.Ranges(ctx, "clipper.vhd", limiterSrc)
	if err != nil {
		t.Fatalf("second ranges: %v", err)
	}
	if !second.Cached {
		t.Error("second analysis of identical source was not a cache hit")
	}
	st := p.Stats().Stage(StageRanges)
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("ranges stage counters = %+v, want 1 miss and 1 memory hit", st)
	}
}

func TestRangesDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	a := newPipe(t, Options{CacheDir: dir})
	live, err := a.Ranges(ctx, "clipper.vhd", limiterSrc)
	if err != nil {
		t.Fatalf("first process ranges: %v", err)
	}

	b := newPipe(t, Options{CacheDir: dir})
	disk, err := b.Ranges(ctx, "clipper.vhd", limiterSrc)
	if err != nil {
		t.Fatalf("second process ranges: %v", err)
	}
	if !disk.Cached {
		t.Error("second process did not hit the disk cache")
	}
	if st := b.Stats().Stage(StageRanges); st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("ranges stage = %+v, want 1 disk hit and no misses", st)
	}
	if disk.Name != live.Name || disk.Widened != live.Widened || disk.Iterations != live.Iterations {
		t.Errorf("disk artifact metadata differs: %+v vs %+v", disk, live)
	}
	if len(disk.Signals) != len(live.Signals) {
		t.Fatalf("disk artifact has %d signals, live has %d", len(disk.Signals), len(live.Signals))
	}
	for name, want := range live.Signals {
		got, ok := disk.Signals[name]
		if !ok {
			t.Errorf("signal %q lost in disk round trip", name)
			continue
		}
		// Infinite bounds (the unannotated vin is unbounded) must survive
		// the text round trip exactly, as must finite ones.
		if got != want && !(math.IsNaN(got.Lo) && math.IsNaN(want.Lo)) {
			t.Errorf("signal %q hull %v != %v after disk round trip", name, got, want)
		}
	}
	vin, ok := disk.Signal("vin")
	if !ok {
		t.Fatal("vin did not resolve from the disk artifact")
	}
	if !math.IsInf(vin.Lo, -1) || !math.IsInf(vin.Hi, 1) {
		t.Errorf("vin hull = %v, want an unbounded hull to survive the round trip", vin)
	}

	// A cached hull table still decides assertions — no re-analysis needed.
	as, err := assertlang.Parse("always v(vout) <= 2.0")
	if err != nil {
		t.Fatalf("parse assertion: %v", err)
	}
	if prop := disk.Check(as); prop.Verdict != absint.Prove {
		t.Errorf("cached table gave verdict %v for the clip bound, want prove (reason: %s)",
			prop.Verdict, prop.Reason)
	}
}

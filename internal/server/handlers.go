package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"vase/internal/diag"
	"vase/internal/lint"
	"vase/internal/mapper"
	"vase/internal/mna"
	"vase/internal/pipeline"
	"vase/internal/sim"
	"vase/internal/solveropt"
	"vase/internal/wavespec"
)

// frontStatsJSON is the Table 1 front-end metrics block shared by the parse
// and synthesize responses.
type frontStatsJSON struct {
	ContinuousLines int `json:"continuous_lines"`
	Quantities      int `json:"quantities"`
	EventLines      int `json:"event_lines"`
	Signals         int `json:"signals"`
}

// ctxError classifies a pipeline error: a context deadline/cancellation
// becomes 504 (the request's SLO expired before an answer existed), a
// diagnostics list becomes 422 with the structured findings attached, and
// anything else is a plain 422.
func ctxError(ctx context.Context, err error) *httpError {
	if ctx.Err() != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		return errorf(http.StatusGatewayTimeout, "request deadline expired: %v", err)
	}
	var dl diag.List
	if errors.As(err, &dl) {
		herr := errorf(http.StatusUnprocessableEntity, "%v", err)
		if data, jerr := dl.JSON(); jerr == nil {
			herr.extra = map[string]any{"diagnostics": json.RawMessage(data)}
		}
		return herr
	}
	return errorf(http.StatusUnprocessableEntity, "%v", err)
}

// --- /v1/parse -----------------------------------------------------------

type parseRequest struct {
	Name      string `json:"name"`
	Source    string `json:"source"`
	TimeoutMS int    `json:"timeout_ms"`
}

type parseResponse struct {
	Entity string         `json:"entity"`
	VHIF   string         `json:"vhif"`
	Stats  frontStatsJSON `json:"stats"`
	Cached bool           `json:"cached"`
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) *httpError {
	var req parseRequest
	if herr := readJSON(r, &req); herr != nil {
		return herr
	}
	if req.Source == "" {
		return errorf(http.StatusBadRequest, "source is required")
	}
	if req.Name == "" {
		req.Name = "input.vhd"
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutMS))
	defer cancel()
	cr, err := s.pipe.Compile(ctx, req.Name, req.Source)
	if err != nil {
		// Broken source: the error body carries the structured diagnostics
		// plus what the recovering parser salvaged, not a bare string.
		herr := ctxError(ctx, err)
		s.attachPartialAST(ctx, herr, req.Name, req.Source)
		return herr
	}
	s.reply(w, "parse", http.StatusOK, parseResponse{
		Entity: cr.Name,
		VHIF:   cr.Text,
		Stats: frontStatsJSON{
			ContinuousLines: cr.Stats.ContinuousLines,
			Quantities:      cr.Stats.Quantities,
			EventLines:      cr.Stats.EventLines,
			Signals:         cr.Stats.Signals,
		},
		Cached: cr.Cached,
	})
	return nil
}

// --- /v1/lint ------------------------------------------------------------

type lintRequest struct {
	Name      string   `json:"name"`
	Source    string   `json:"source"`
	VHIF      string   `json:"vhif"` // serialized VHIF instead of VASS source
	Passes    []string `json:"passes"`
	Werror    bool     `json:"werror"`
	TimeoutMS int      `json:"timeout_ms"`
}

type lintResponse struct {
	Findings json.RawMessage `json:"findings"`
	Errors   int             `json:"errors"`
	Warnings int             `json:"warnings"`
	// PartialAST summarizes what the recovering parser salvaged when the
	// source had syntax errors (absent for clean or VHIF input).
	PartialAST *partialASTSummary `json:"partial_ast,omitempty"`
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) *httpError {
	var req lintRequest
	if herr := readJSON(r, &req); herr != nil {
		return herr
	}
	if (req.Source == "") == (req.VHIF == "") {
		return errorf(http.StatusBadRequest, "exactly one of source or vhif is required")
	}
	if req.Name == "" {
		req.Name = "input.vhd"
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutMS))
	defer cancel()
	opts := lint.Options{Passes: req.Passes}
	var findings diag.List
	var err error
	if req.VHIF != "" {
		findings, err = s.pipe.LintVHIF(ctx, req.Name, req.VHIF, opts)
	} else {
		findings, err = s.pipe.Lint(ctx, req.Name, req.Source, opts)
	}
	if err != nil {
		herr := ctxError(ctx, err)
		if req.Source != "" {
			s.attachPartialAST(ctx, herr, req.Name, req.Source)
		}
		return herr
	}
	if req.Werror {
		findings = findings.Promote()
	}
	shown := findings.Filter(diag.Warning)
	data, jerr := shown.JSON()
	if jerr != nil {
		return errorf(http.StatusInternalServerError, "encoding findings: %v", jerr)
	}
	// The status mirrors the vaselint exit code: error findings are exit 1,
	// which maps to 422 — the body still carries every finding.
	status := http.StatusOK
	resp := lintResponse{
		Findings: data,
		Errors:   shown.Count(diag.Error),
		Warnings: shown.Count(diag.Warning),
	}
	if shown.HasErrors() {
		status = http.StatusUnprocessableEntity
		if req.Source != "" {
			resp.PartialAST = s.partialAST(ctx, req.Name, req.Source)
		}
	}
	s.reply(w, "lint", status, resp)
	return nil
}

// --- /v1/synthesize ------------------------------------------------------

type synthesizeRequest struct {
	Name      string `json:"name"`
	Source    string `json:"source"`
	Workers   int    `json:"workers"`   // requested search workers (0 = server decides)
	MaxNodes  int    `json:"max_nodes"` // search node budget (0 = default)
	TimeoutMS int    `json:"timeout_ms"`
}

type searchStatsJSON struct {
	NodesVisited     int   `json:"nodes_visited"`
	CompleteMappings int   `json:"complete_mappings"`
	Pruned           int   `json:"pruned"`
	Workers          int   `json:"workers"`
	ElapsedUS        int64 `json:"elapsed_us"`
}

type synthesizeResponse struct {
	Entity   string          `json:"entity"`
	Netlist  string          `json:"netlist"`
	Summary  string          `json:"summary"`
	OpAmps   int             `json:"op_amps"`
	AreaUm2  float64         `json:"area_um2"`
	PowerMW  float64         `json:"power_mw"`
	Stats    searchStatsJSON `json:"search"`
	Front    frontStatsJSON  `json:"stats"`
	Cached   bool            `json:"cached"`
	Degraded bool            `json:"degraded"`
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) *httpError {
	var req synthesizeRequest
	if herr := readJSON(r, &req); herr != nil {
		return herr
	}
	if req.Source == "" {
		return errorf(http.StatusBadRequest, "source is required")
	}
	if req.Name == "" {
		req.Name = "input.vhd"
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutMS))
	defer cancel()

	opts := mapper.DefaultOptions()
	opts.MaxNodes = req.MaxNodes
	// Lease search workers from the shared budget: the grant may be smaller
	// than the request under load (never zero), and is returned when the
	// search finishes.
	granted := s.sched.lease(req.Workers)
	defer s.sched.release(granted)
	opts.Workers = granted

	res, cr, cached, err := s.pipe.Synthesize(ctx, req.Name, req.Source, opts)
	if err != nil {
		return ctxError(ctx, err)
	}
	// An expired deadline surfaces as the anytime contract's best incumbent
	// with Nonoptimal set: report it as explicit degradation (206, never
	// cached by the pipeline) rather than pretending it is the optimum.
	status := http.StatusOK
	if res.Nonoptimal {
		status = http.StatusPartialContent
		s.met.degraded.Add(1)
	}
	s.reply(w, "synthesize", status, synthesizeResponse{
		Entity:  cr.Name,
		Netlist: res.Netlist.Dump(),
		Summary: res.Netlist.Summary(),
		OpAmps:  res.Netlist.OpAmpCount(),
		AreaUm2: res.Report.AreaUm2,
		PowerMW: res.Report.PowerMW,
		Stats: searchStatsJSON{
			NodesVisited:     res.Stats.NodesVisited,
			CompleteMappings: res.Stats.CompleteMappings,
			Pruned:           res.Stats.Pruned,
			Workers:          res.Stats.Workers,
			ElapsedUS:        res.Stats.Elapsed.Microseconds(),
		},
		Front: frontStatsJSON{
			ContinuousLines: cr.Stats.ContinuousLines,
			Quantities:      cr.Stats.Quantities,
			EventLines:      cr.Stats.EventLines,
			Signals:         cr.Stats.Signals,
		},
		Cached:   cached,
		Degraded: res.Nonoptimal,
	})
	return nil
}

// --- /v1/simulate --------------------------------------------------------

type simulateRequest struct {
	Name     string            `json:"name"`
	Source   string            `json:"source"`
	Inputs   map[string]string `json:"inputs"` // net -> waveform spec (wavespec grammar)
	TStop    float64           `json:"tstop"`
	TStep    float64           `json:"tstep"`
	MaxSteps int               `json:"max_steps"`
	Every    int               `json:"every"`  // stream/return every n-th sample (default 1)
	Stream   bool              `json:"stream"` // SSE instead of one JSON body
	// Level selects the model: "behavioral" (default) integrates the VHIF
	// signal-flow graphs; "circuit" synthesizes the design and runs the
	// MNA op-amp macromodel transient (the paper's SPICE verification).
	Level string `json:"level"`
	// Solver picks the MNA tier for circuit-level runs: "reference",
	// "exact" (default) or "fast" (see internal/solveropt). RelTol/AbsTol
	// set the fast tier's error budget (0 = documented defaults).
	Solver    string  `json:"solver"`
	RelTol    float64 `json:"reltol"`
	AbsTol    float64 `json:"abstol"`
	TimeoutMS int     `json:"timeout_ms"`
}

type simulateResponse struct {
	Time      []float64            `json:"time"`
	Signals   map[string][]float64 `json:"signals"`
	Truncated bool                 `json:"truncated"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) *httpError {
	var req simulateRequest
	if herr := readJSON(r, &req); herr != nil {
		return herr
	}
	if req.Source == "" {
		return errorf(http.StatusBadRequest, "source is required")
	}
	if req.Name == "" {
		req.Name = "input.vhd"
	}
	if req.TStop <= 0 {
		req.TStop = 1e-3
	}
	if req.TStep <= 0 {
		req.TStep = 1e-6
	}
	if req.Every <= 0 {
		req.Every = 1
	}
	inputs, err := wavespec.ParseMap(req.Inputs)
	if err != nil {
		return errorf(http.StatusBadRequest, "%v", err)
	}
	switch req.Level {
	case "", "behavioral", "circuit":
	default:
		return errorf(http.StatusBadRequest, "unknown level %q (valid: behavioral, circuit)", req.Level)
	}
	tier := solveropt.Exact
	if req.Solver != "" {
		if tier, err = solveropt.Parse(req.Solver); err != nil {
			return errorf(http.StatusBadRequest, "%v", err)
		}
	}
	if req.Level != "circuit" && (req.Solver != "" || req.RelTol != 0 || req.AbsTol != 0) {
		return errorf(http.StatusBadRequest, "solver/reltol/abstol select the MNA tier and require level \"circuit\"")
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutMS))
	defer cancel()

	// The front end goes through the shared cache; the behavioral transient
	// run itself is request-specific (inputs and step vary) and is never
	// cached. Circuit-level runs go through the spice stage's
	// content-addressed memo instead — see handleSimulateCircuit.
	cr, cerr := s.pipe.Compile(ctx, req.Name, req.Source)
	if cerr != nil {
		return ctxError(ctx, cerr)
	}
	if req.Level == "circuit" {
		if req.Stream {
			return errorf(http.StatusBadRequest, "streaming is behavioral-level only")
		}
		return s.handleSimulateCircuit(ctx, w, cr, req, tier)
	}
	opts := sim.Options{TStop: req.TStop, TStep: req.TStep, MaxSteps: req.MaxSteps}
	if req.Stream {
		return s.streamSimulation(ctx, w, cr.Module, inputs, req.Every, opts)
	}
	tr, serr := sim.SimulateModuleContext(ctx, cr.Module, inputs, opts)
	if serr != nil {
		return ctxError(ctx, serr)
	}
	status := http.StatusOK
	if tr.Truncated {
		// A deadline-truncated trace is a partial answer, like a truncated
		// search: say so in the status, not just the body.
		status = http.StatusPartialContent
		s.met.degraded.Add(1)
	}
	resp := simulateResponse{Truncated: tr.Truncated, Signals: map[string][]float64{}}
	for i := 0; i < len(tr.Time); i += req.Every {
		resp.Time = append(resp.Time, tr.Time[i])
	}
	for name, samples := range tr.Signals {
		var out []float64
		for i := 0; i < len(samples); i += req.Every {
			out = append(out, samples[i])
		}
		resp.Signals[name] = out
	}
	s.reply(w, "simulate", status, resp)
	return nil
}

// handleSimulateCircuit is the circuit-level branch of /v1/simulate:
// synthesize (through the shared map-stage cache), elaborate the op-amp
// macromodel, and run the MNA transient through the spice stage's memo —
// a repeated request under the same netlist, inputs, window and solver
// tier never runs the solver again. The response carries the port
// waveforms (polarity-corrected), named like the behavioral level's.
func (s *Server) handleSimulateCircuit(ctx context.Context, w http.ResponseWriter, cr *pipeline.CompileResult, req simulateRequest, tier solveropt.Tier) *httpError {
	opts := mapper.DefaultOptions()
	granted := s.sched.lease(1)
	defer s.sched.release(granted)
	opts.Workers = granted
	res, _, err := s.pipe.SynthesizeText(ctx, cr.Module, cr.Text, opts)
	if err != nil {
		return ctxError(ctx, err)
	}
	data, err := res.Netlist.Encode()
	if err != nil {
		return errorf(http.StatusInternalServerError, "netlist artifact: %v", err)
	}
	budget := mna.ErrorBudget{RelTol: req.RelTol, AbsTol: req.AbsTol}
	sd, err := s.pipe.Spice(ctx, data, req.Inputs, req.TStop, req.TStep, pipeline.SpiceOptions{
		Solver: tier.Mode(),
		Budget: budget,
	})
	if err != nil {
		return ctxError(ctx, err)
	}
	// Re-elaborate for name resolution only: NodeOf/PolOf map netlist net
	// names onto circuit nodes, and the stored samples rehydrate onto the
	// fresh circuit.
	sources, err := wavespec.ParseMap(req.Inputs)
	if err != nil {
		return errorf(http.StatusBadRequest, "%v", err)
	}
	waves := make(map[string]mna.Waveform, len(sources))
	for name, src := range sources {
		waves[name] = mna.Waveform(src)
	}
	el, err := mna.Elaborate(res.Netlist, waves)
	if err != nil {
		return ctxError(ctx, err)
	}
	v := make(map[mna.Node][]float64, len(sd.V))
	for n, samples := range sd.V {
		v[mna.Node(n)] = samples
	}
	tr := el.Circuit.TranFromSamples(sd.Time, v, sd.Truncated)
	status := http.StatusOK
	if sd.Truncated {
		status = http.StatusPartialContent
		s.met.degraded.Add(1)
	}
	resp := simulateResponse{Truncated: sd.Truncated, Signals: map[string][]float64{}}
	for i := 0; i < len(sd.Time); i += req.Every {
		resp.Time = append(resp.Time, sd.Time[i])
	}
	for _, p := range cr.Module.Ports {
		samples := el.V(tr, p.Name)
		if samples == nil {
			continue
		}
		var out []float64
		for i := 0; i < len(samples); i += req.Every {
			out = append(out, samples[i])
		}
		resp.Signals[p.Name] = out
	}
	s.reply(w, "simulate", status, resp)
	return nil
}

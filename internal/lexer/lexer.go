// Package lexer implements lexical analysis of VASS source text.
//
// The scanner follows VHDL-AMS lexical rules: identifiers are
// case-insensitive (keywords are recognized in any case and identifier
// spelling is preserved), "--" starts a comment running to end of line,
// abstract literals may carry exponents and based forms (16#ff#), and the
// apostrophe is disambiguated between character literals ('0') and the
// attribute tick (line'ABOVE) by the preceding token, exactly as VHDL
// scanners must.
package lexer

import (
	"strings"

	"vase/internal/diag"
	"vase/internal/source"
	"vase/internal/token"
)

// Token is one lexical token with its kind, source span, and raw text.
type Token struct {
	Kind token.Kind
	Span source.Span
	Text string
}

// Lexer scans a source.File into tokens.
type Lexer struct {
	file   *source.File
	src    string
	offset int
	errs   *diag.Reporter
	// last is the kind of the previous non-comment token; it drives the
	// apostrophe disambiguation.
	last token.Kind
}

// New returns a Lexer over f that records lexical errors into errs.
func New(f *source.File, errs *diag.List) *Lexer {
	return &Lexer{file: f, src: f.Text(), errs: diag.NewReporter(f, errs, diag.CodeLex), last: token.ILLEGAL}
}

// ScanAll scans the whole file and returns the token stream, excluding
// comments and including a final EOF token.
func ScanAll(f *source.File, errs *diag.List) []Token {
	lx := New(f, errs)
	var toks []Token
	for {
		t := lx.Next()
		if t.Kind == token.COMMENT {
			continue
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (lx *Lexer) errorf(at source.Pos, format string, args ...any) {
	lx.errs.Errorf(source.NewSpan(at, at), format, args...)
}

func (lx *Lexer) peek() byte {
	if lx.offset < len(lx.src) {
		return lx.src[lx.offset]
	}
	return 0
}

func (lx *Lexer) peekAt(i int) byte {
	if lx.offset+i < len(lx.src) {
		return lx.src[lx.offset+i]
	}
	return 0
}

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isIdentChar(c byte) bool { return isLetter(c) || isDigit(c) || c == '_' }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// Next scans and returns the next token, including comments.
func (lx *Lexer) Next() Token {
	for lx.offset < len(lx.src) && isSpace(lx.src[lx.offset]) {
		lx.offset++
	}
	start := source.Pos(lx.offset)
	if lx.offset >= len(lx.src) {
		return lx.emit(token.EOF, start, "")
	}
	c := lx.src[lx.offset]
	switch {
	case isLetter(c):
		return lx.scanIdent(start)
	case isDigit(c):
		return lx.scanNumber(start)
	case c == '"':
		return lx.scanString(start)
	case c == '\'':
		return lx.scanApostrophe(start)
	case c == '-' && lx.peekAt(1) == '-':
		return lx.scanComment(start)
	}
	return lx.scanOperator(start)
}

func (lx *Lexer) emit(kind token.Kind, start source.Pos, text string) Token {
	if kind != token.COMMENT {
		lx.last = kind
	}
	return Token{Kind: kind, Span: source.NewSpan(start, source.Pos(lx.offset)), Text: text}
}

func (lx *Lexer) scanIdent(start source.Pos) Token {
	for lx.offset < len(lx.src) && isIdentChar(lx.src[lx.offset]) {
		lx.offset++
	}
	text := lx.src[start:lx.offset]
	if strings.HasSuffix(text, "_") {
		lx.errorf(start, "identifier %q may not end with an underscore", text)
	}
	return lx.emit(token.Lookup(text), start, text)
}

func (lx *Lexer) scanNumber(start source.Pos) Token {
	kind := token.INTLIT
	lx.scanDigits()
	if lx.peek() == '#' {
		// Based literal: base#value# with optional exponent.
		lx.offset++ // '#'
		for lx.offset < len(lx.src) && (isIdentChar(lx.src[lx.offset]) || lx.src[lx.offset] == '.') {
			if lx.src[lx.offset] == '.' {
				kind = token.REALLIT
			}
			lx.offset++
		}
		if lx.peek() != '#' {
			lx.errorf(start, "based literal missing closing '#'")
		} else {
			lx.offset++
		}
	} else {
		if lx.peek() == '.' && isDigit(lx.peekAt(1)) {
			kind = token.REALLIT
			lx.offset++
			lx.scanDigits()
		}
		if c := lx.peek(); c == 'e' || c == 'E' {
			next := lx.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(lx.peekAt(2))) {
				kind = token.REALLIT
				lx.offset++
				if c := lx.peek(); c == '+' || c == '-' {
					lx.offset++
				}
				lx.scanDigits()
			}
		}
	}
	return lx.emit(kind, start, lx.src[start:lx.offset])
}

func (lx *Lexer) scanDigits() {
	for lx.offset < len(lx.src) && (isDigit(lx.src[lx.offset]) || lx.src[lx.offset] == '_') {
		lx.offset++
	}
}

func (lx *Lexer) scanString(start source.Pos) Token {
	lx.offset++ // opening quote
	var b strings.Builder
	for lx.offset < len(lx.src) {
		c := lx.src[lx.offset]
		if c == '"' {
			if lx.peekAt(1) == '"' { // doubled quote escapes a quote
				b.WriteByte('"')
				lx.offset += 2
				continue
			}
			lx.offset++
			return lx.emit(token.STRLIT, start, b.String())
		}
		if c == '\n' {
			break
		}
		b.WriteByte(c)
		lx.offset++
	}
	lx.errorf(start, "unterminated string literal")
	return lx.emit(token.STRLIT, start, b.String())
}

// scanApostrophe resolves the three uses of ': a character/bit literal, or
// the attribute tick. After an identifier, closing parenthesis, or the ALL
// keyword, an apostrophe is always the attribute tick ("line'ABOVE").
func (lx *Lexer) scanApostrophe(start source.Pos) Token {
	attrContext := lx.last == token.IDENT || lx.last == token.RPAREN || lx.last == token.ALL
	if !attrContext && lx.peekAt(2) == '\'' {
		c := lx.peekAt(1)
		lx.offset += 3
		if c == '0' || c == '1' {
			return lx.emit(token.BITLIT, start, string(c))
		}
		return lx.emit(token.CHARLIT, start, string(c))
	}
	lx.offset++
	return lx.emit(token.TICK, start, "'")
}

func (lx *Lexer) scanComment(start source.Pos) Token {
	for lx.offset < len(lx.src) && lx.src[lx.offset] != '\n' {
		lx.offset++
	}
	return lx.emit(token.COMMENT, start, lx.src[start:lx.offset])
}

func (lx *Lexer) scanOperator(start source.Pos) Token {
	c := lx.src[lx.offset]
	lx.offset++
	two := func(next byte, k2 token.Kind, k1 token.Kind) Token {
		if lx.peek() == next {
			lx.offset++
			return lx.emit(k2, start, lx.src[start:lx.offset])
		}
		return lx.emit(k1, start, lx.src[start:lx.offset])
	}
	switch c {
	case '+':
		return lx.emit(token.PLUS, start, "+")
	case '-':
		return lx.emit(token.MINUS, start, "-")
	case '*':
		return two('*', token.DSTAR, token.STAR)
	case '/':
		return two('=', token.NEQ, token.SLASH)
	case '=':
		if lx.peek() == '=' {
			lx.offset++
			return lx.emit(token.EQEQ, start, "==")
		}
		return two('>', token.ARROW, token.EQ)
	case '<':
		return two('=', token.LE, token.LT)
	case '>':
		return two('=', token.GE, token.GT)
	case ':':
		return two('=', token.ASSIGN, token.COLON)
	case '&':
		return lx.emit(token.AMP, start, "&")
	case '(':
		return lx.emit(token.LPAREN, start, "(")
	case ')':
		return lx.emit(token.RPAREN, start, ")")
	case '[':
		return lx.emit(token.LBRACKET, start, "[")
	case ']':
		return lx.emit(token.RBRACKET, start, "]")
	case ',':
		return lx.emit(token.COMMA, start, ",")
	case ';':
		return lx.emit(token.SEMICOLON, start, ";")
	case '.':
		return lx.emit(token.DOT, start, ".")
	case '|':
		return lx.emit(token.BAR, start, "|")
	}
	lx.errorf(start, "illegal character %q", string(c))
	return lx.emit(token.ILLEGAL, start, string(c))
}

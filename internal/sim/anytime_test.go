// Tests for the anytime/budget contract of the behavioral simulators
// (cancellation, step budgets), probe-name validation, and the CSV
// ragged-trace fix.
package sim

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"vase/internal/vhif"
)

// rampModule compiles a one-integrator module: y' = u.
func rampModule(t *testing.T) *vhif.Module {
	t.Helper()
	return compileSrc(t, `
entity ramp is
  port (quantity u : in real; quantity y : out real);
end entity;
architecture a of ramp is
begin
  y'dot == u;
end architecture;`)
}

func TestCSVRaggedTraceEmitsNaN(t *testing.T) {
	tr := &Trace{
		Time: []float64{0, 1, 2},
		Signals: map[string][]float64{
			"full":  {1, 2, 3},
			"short": {9},
		},
	}
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	want := []string{"t,full,short", "0,1,9", "1,2,NaN", "2,3,NaN"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), b.String())
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestUnknownProbeRejected(t *testing.T) {
	m := rampModule(t)
	_, err := SimulateModule(m, map[string]Source{"u": DC(1)},
		Options{TStop: 1e-3, TStep: 1e-4, Probes: []string{"no_such_net"}})
	if err == nil {
		t.Fatal("typoed probe name accepted silently")
	}
	if !strings.Contains(err.Error(), "no_such_net") {
		t.Errorf("error %q does not name the unknown probe", err)
	}
	if !strings.Contains(err.Error(), "valid nets") {
		t.Errorf("error %q does not list the valid nets", err)
	}
	// A name taken from the valid-net list in the error is accepted.
	list := err.Error()[strings.Index(err.Error(), "valid nets:")+len("valid nets:"):]
	first := strings.Trim(strings.Split(list, ",")[0], " )")
	if _, err := SimulateModule(m, map[string]Source{"u": DC(1)},
		Options{TStop: 1e-3, TStep: 1e-4, Probes: []string{first}}); err != nil {
		t.Fatalf("probe %q from the valid list rejected: %v", first, err)
	}
}

func TestMaxStepsTruncatesTrace(t *testing.T) {
	m := rampModule(t)
	tr, err := SimulateModule(m, map[string]Source{"u": DC(1)},
		Options{TStop: 1, TStep: 1e-3, MaxSteps: 10})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !tr.Truncated {
		t.Error("step budget bound but Truncated not set")
	}
	if got := len(tr.Time); got != 10 {
		t.Errorf("recorded %d samples, want 10", got)
	}
}

func TestCancelledSimulationReturnsPartialTrace(t *testing.T) {
	m := rampModule(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, err := SimulateModuleContext(ctx, m, map[string]Source{"u": DC(1)},
		Options{TStop: 1, TStep: 1e-6})
	if err != nil {
		t.Fatalf("cancelled simulation should return the partial trace, got error: %v", err)
	}
	if !tr.Truncated {
		t.Error("cancelled simulation did not set Truncated")
	}
}

func TestDeadlineTruncatesLongSimulation(t *testing.T) {
	m := rampModule(t)
	start := time.Now()
	// ~1e9 steps unbounded; the 20 ms deadline must cut it short.
	tr, err := SimulateModule(m, map[string]Source{"u": DC(1)},
		Options{TStop: 1e3, TStep: 1e-6, Deadline: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !tr.Truncated {
		t.Error("deadline bound but Truncated not set")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline ignored: simulation ran %v", elapsed)
	}
	// The samples that were computed are still correct: y = t on a ramp.
	if n := len(tr.Time); n > 1 {
		last := tr.Time[n-1]
		if got := tr.Get("y")[n-1]; math.Abs(got-last) > 1e-6 {
			t.Errorf("truncated trace corrupt: y(%g) = %g, want %g", last, got, last)
		}
	}
}

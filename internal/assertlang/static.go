package assertlang

import "vase/internal/interval"

// StaticEval evaluates the assertion's predicate three-valuedly over
// per-signal value hulls: interval.True means the predicate holds for
// every combination of signal values inside the hulls (hence at every
// sample of any run the hulls are sound for), interval.False means it
// fails for every combination, and interval.Maybe means the hulls cannot
// decide it.
//
// env returns the value hull of a signal over the whole run; ok=false
// marks a signal the analysis cannot bound (the result degrades to
// Maybe). Division is the language's raw "/" (not the simulator's guarded
// division), so a denominator hull containing zero also degrades to
// Maybe.
func (a *Assertion) StaticEval(env func(name string) (interval.Interval, bool)) interval.Tri {
	return staticPred(a.Pred, env)
}

func staticExpr(e Expr, env func(string) (interval.Interval, bool)) (interval.Interval, bool) {
	switch e := e.(type) {
	case numExpr:
		return interval.Point(float64(e)), true
	case sigExpr:
		return env(string(e))
	case *unaryExpr:
		x, ok := staticExpr(e.x, env)
		if !ok {
			return interval.Interval{}, false
		}
		if e.op == "abs" {
			return x.Abs(), true
		}
		return x.Neg(), true
	case *binExpr:
		x, ok := staticExpr(e.x, env)
		if !ok {
			return interval.Interval{}, false
		}
		y, ok := staticExpr(e.y, env)
		if !ok {
			return interval.Interval{}, false
		}
		switch e.op {
		case "+":
			return x.Add(y), true
		case "-":
			return x.Sub(y), true
		case "*":
			return x.Mul(y), true
		case "/":
			return x.DivStrict(y)
		case "min":
			return x.Min(y), true
		case "max":
			return x.Max(y), true
		}
	}
	return interval.Interval{}, false
}

func staticPred(p Pred, env func(string) (interval.Interval, bool)) interval.Tri {
	switch p := p.(type) {
	case *cmpPred:
		x, ok := staticExpr(p.x, env)
		if !ok {
			return interval.Maybe
		}
		y, ok := staticExpr(p.y, env)
		if !ok {
			return interval.Maybe
		}
		return interval.Cmp(x, p.op, y)
	case *boolPred:
		x, y := staticPred(p.x, env), staticPred(p.y, env)
		if p.op == "and" {
			return x.And(y)
		}
		return x.Or(y)
	case *notPred:
		return staticPred(p.x, env).Not()
	}
	return interval.Maybe
}

package source

import (
	"fmt"
	"strings"
)

// Render formats a diagnostic with its source line and a caret marker:
//
//	receiver.vhd:12:9: undeclared name "rvra"
//	  earph == rvra * line;
//	           ^
func (e *Error) Render(f *File) string {
	var b strings.Builder
	b.WriteString(e.Error())
	if f == nil || e.Pos.Line <= 0 || e.Pos.Line > f.LineCount() {
		return b.String()
	}
	line := f.lineText(e.Pos.Line)
	b.WriteString("\n  ")
	b.WriteString(strings.ReplaceAll(line, "\t", " "))
	b.WriteString("\n  ")
	col := e.Pos.Column
	if col < 1 {
		col = 1
	}
	if col > len(line)+1 {
		col = len(line) + 1
	}
	b.WriteString(strings.Repeat(" ", col-1))
	b.WriteString("^")
	return b.String()
}

// RenderList formats every diagnostic of the list with source excerpts,
// capped at ten entries like ErrorList.Error.
func (l ErrorList) RenderList(f *File) string {
	var b strings.Builder
	for i, e := range l {
		if i == 10 {
			fmt.Fprintf(&b, "... and %d more errors\n", len(l)-10)
			break
		}
		b.WriteString(e.Render(f))
		b.WriteByte('\n')
	}
	return b.String()
}

// lineText returns the 1-based line without its newline.
func (f *File) lineText(line int) string {
	if line < 1 || line > len(f.lines) {
		return ""
	}
	start := f.lines[line-1]
	end := len(f.text)
	if line < len(f.lines) {
		end = f.lines[line] - 1
	}
	if end < start {
		end = start
	}
	return f.text[start:end]
}

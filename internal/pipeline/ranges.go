package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vase/internal/absint"
	"vase/internal/assertlang"
	"vase/internal/interval"
	"vase/internal/vhif"
)

// RangesResult is the memoized output of the ranges stage: the value hull of
// every probe-resolvable signal of one VHIF module, as computed by the
// abstract interpreter (internal/absint). The hull table is the whole
// artifact — verdicts for assert pragmas are derived from it on demand via
// absint.CheckWith, so a disk-cache hit can still decide properties without
// re-running the fixpoint.
//
// The result is shared between callers and must be treated as immutable.
type RangesResult struct {
	// Name is the entity name.
	Name string
	// Signals maps each probe name to its static value hull.
	Signals map[string]interval.Interval
	// Iterations is the number of fixpoint passes the analysis ran (zero on
	// a disk-cache hit from an older artifact; informational only).
	Iterations int
	// Widened reports whether delayed widening fired during the ascent.
	Widened bool
	// Cached reports that this call was served from the cache (memory or
	// disk) rather than by running the analysis.
	Cached bool
}

// Signal returns the hull of one probe name. The signature matches the
// environment parameter of absint.CheckWith.
func (r *RangesResult) Signal(name string) (interval.Interval, bool) {
	v, ok := r.Signals[name]
	return v, ok
}

// Check statically evaluates one assertion against the cached hulls.
func (r *RangesResult) Check(a *assertlang.Assertion) absint.Property {
	return absint.CheckWith(a, r.Signal)
}

// CheckAll statically evaluates a set of assertions against the cached
// hulls.
func (r *RangesResult) CheckAll(as []*assertlang.Assertion) []absint.Property {
	out := make([]absint.Property, len(as))
	for i, a := range as {
		out[i] = r.Check(a)
	}
	return out
}

// Ranges runs the front end and then the value-range analysis for one named
// source text, with both stages memoized.
func (p *Pipeline) Ranges(ctx context.Context, name, text string) (*RangesResult, error) {
	cr, err := p.Compile(ctx, name, text)
	if err != nil {
		return nil, err
	}
	return p.RangesText(ctx, cr.Module, cr.Text)
}

// RangesModule runs the ranges stage on a VHIF module, deriving the cache
// key from the module's canonical dump.
func (p *Pipeline) RangesModule(ctx context.Context, m *vhif.Module) (*RangesResult, error) {
	return p.RangesText(ctx, m, m.Dump())
}

// RangesText is RangesModule for callers that already hold the module's
// serialized text (the compile stage's artifact), avoiding a redundant
// dump. text must be the canonical serialization of m.
func (p *Pipeline) RangesText(ctx context.Context, m *vhif.Module, text string) (*RangesResult, error) {
	v, src, err := p.memo(ctx, StageRanges, RangesKey(text), rangesCodec,
		func(ctx context.Context) (any, bool, error) {
			res := absint.Analyze(m)
			rr := &RangesResult{
				Name:       m.Name,
				Signals:    res.SignalHulls(),
				Iterations: res.Iterations,
				Widened:    res.Widened,
			}
			return rr, ctx.Err() == nil, nil
		})
	if err != nil {
		return nil, err
	}
	// Hand each caller its own shallow copy so the Cached flag of one call
	// never leaks into another caller's view of the shared artifact.
	rr := *v.(*RangesResult)
	rr.Cached = src.cached()
	return &rr, nil
}

// rangesHeader identifies (and versions) the on-disk ranges artifact.
const rangesHeader = "vase-ranges v1"

// rangesCodec serializes a RangesResult as a sorted per-signal hull table.
// Bounds use strconv's shortest round-trip float format; ±Inf prints and
// parses natively, so unbounded hulls survive the disk round trip.
var rangesCodec = &codec{
	encode: func(v any) ([]byte, error) {
		rr := v.(*RangesResult)
		names := make([]string, 0, len(rr.Signals))
		for name := range rr.Signals {
			if strings.ContainsAny(name, " \n") {
				return nil, fmt.Errorf("pipeline: signal name %q is not serializable", name)
			}
			names = append(names, name)
		}
		sort.Strings(names)
		var b strings.Builder
		widened := 0
		if rr.Widened {
			widened = 1
		}
		fmt.Fprintf(&b, "%s\nmodule %s\nfixpoint %d %d\n",
			rangesHeader, rr.Name, rr.Iterations, widened)
		for _, name := range names {
			h := rr.Signals[name]
			fmt.Fprintf(&b, "sig %s %s %s\n", name,
				strconv.FormatFloat(h.Lo, 'g', -1, 64),
				strconv.FormatFloat(h.Hi, 'g', -1, 64))
		}
		return []byte(b.String()), nil
	},
	decode: func(data []byte) (any, error) {
		text := string(data)
		var header, module, fixpoint string
		for _, part := range []*string{&header, &module, &fixpoint} {
			line, rest, ok := strings.Cut(text, "\n")
			if !ok {
				return nil, fmt.Errorf("pipeline: truncated ranges artifact")
			}
			*part, text = line, rest
		}
		if header != rangesHeader {
			return nil, fmt.Errorf("pipeline: ranges artifact has header %q, want %q", header, rangesHeader)
		}
		name, ok := strings.CutPrefix(module, "module ")
		if !ok {
			return nil, fmt.Errorf("pipeline: ranges artifact missing module line")
		}
		fields := strings.Fields(fixpoint)
		if len(fields) != 3 || fields[0] != "fixpoint" {
			return nil, fmt.Errorf("pipeline: ranges artifact has malformed fixpoint line %q", fixpoint)
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("pipeline: ranges artifact iteration count %q: %w", fields[1], err)
		}
		rr := &RangesResult{
			Name:       name,
			Signals:    map[string]interval.Interval{},
			Iterations: iters,
			Widened:    fields[2] == "1",
		}
		for _, line := range strings.Split(text, "\n") {
			if line == "" {
				continue
			}
			f := strings.Fields(line)
			if len(f) != 4 || f[0] != "sig" {
				return nil, fmt.Errorf("pipeline: ranges artifact has malformed signal line %q", line)
			}
			lo, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("pipeline: ranges artifact bound %q: %w", f[2], err)
			}
			hi, err := strconv.ParseFloat(f[3], 64)
			if err != nil {
				return nil, fmt.Errorf("pipeline: ranges artifact bound %q: %w", f[3], err)
			}
			rr.Signals[f[1]] = interval.Interval{Lo: lo, Hi: hi}
		}
		return rr, nil
	},
}

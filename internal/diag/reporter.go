package diag

import "vase/internal/source"

// Reporter binds a source file, a destination list and a default code, so
// that passes can report span-based diagnostics without repeating position
// resolution. It is the position-plumbing layer between the byte-offset
// spans the front end works with and the line:column diagnostics tools
// print.
type Reporter struct {
	file *source.File
	list *List
	def  Code
}

// NewReporter returns a reporter writing to list with the given default
// code. file may be nil; diagnostics are then position-less.
func NewReporter(file *source.File, list *List, def Code) *Reporter {
	return &Reporter{file: file, list: list, def: def}
}

// File returns the reporter's source file (may be nil).
func (r *Reporter) File() *source.File { return r.file }

// List returns the destination list.
func (r *Reporter) List() *List { return r.list }

// Errorf reports a diagnostic with the reporter's default code at sp.
func (r *Reporter) Errorf(sp source.Span, format string, args ...any) *Diagnostic {
	return r.Report(r.def, sp, format, args...)
}

// Report reports a diagnostic with an explicit code at sp and returns it so
// callers can chain WithFix / WithRelated.
func (r *Reporter) Report(code Code, sp source.Span, format string, args ...any) *Diagnostic {
	var pos, end source.Position
	if r.file != nil {
		pos = r.file.Position(sp.Start)
		if sp.End > sp.Start {
			end = r.file.Position(sp.End)
		}
	}
	d := New(code, pos, format, args...)
	d.End = end
	r.list.Add(d)
	return d
}

// Position resolves a span start through the reporter's file.
func (r *Reporter) Position(p source.Pos) source.Position {
	if r.file == nil {
		return source.Position{}
	}
	return r.file.Position(p)
}

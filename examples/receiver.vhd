entity receiver is
  port (
    quantity line  : in real is voltage;
    quantity local : in real is voltage;
    quantity earph : out real is voltage limited at 1.5 drives 270.0 at 285 mv peak
  );
end entity;

architecture behavioral of receiver is
  constant Aline  : real := 4.0;
  constant Alocal : real := 2.0;
  constant r1c    : real := 0.5;
  constant r2c    : real := 0.25;
  constant Vth    : real := 0.1;
  quantity rvar : real;
  signal c1, busy : bit;
begin
  earph == (Aline * line + Alocal * local) * rvar;
  if (c1 = '1') use rvar == r1c;
  else rvar == r1c + r2c;
  end use;
  process (line'above(Vth)) is begin
    if (line'above(Vth) = true) then c1 <= '1'; busy <= '1';
    else c1 <= '0'; busy <= '1'; end if;
  end process;
end architecture;

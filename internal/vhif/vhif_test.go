package vhif

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildReceiverGraph constructs the receiver's signal-flow graph from the
// paper's Figure 7a: two weighted inputs summed, multiplied by a switched
// gain, and buffered through an output stage.
func buildReceiverGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph("main")
	line := g.AddBlock(BInput, "line")
	local := g.AddBlock(BInput, "local")
	g1 := g.AddBlock(BGain, "g_aline", line.Out)
	g1.Param = 4.0
	g2 := g.AddBlock(BGain, "g_alocal", local.Out)
	g2.Param = 2.0
	sum := g.AddBlock(BAdd, "sum", g1.Out, g2.Out)
	r1 := g.AddBlock(BConst, "r1c")
	r1.Param = 0.5
	r2 := g.AddBlock(BConst, "r1r2c")
	r2.Param = 0.75
	cmp := g.AddBlock(BComparator, "zcd", line.Out)
	cmp.Param = 0.1
	mux := g.AddBlock(BMux, "rvar", r1.Out, r2.Out)
	mux.SetCtrl(g, cmp.Out)
	mul := g.AddBlock(BMul, "mul", sum.Out, mux.Out)
	buf := g.AddBlock(BBuffer, "outstage", mul.Out)
	g.AddBlock(BOutput, "earph", buf.Out)
	return g
}

func TestGraphValidateReceiver(t *testing.T) {
	g := buildReceiverGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestOpBlockCount(t *testing.T) {
	g := buildReceiverGraph(t)
	// gain, gain, add, cmp, mux, mul = 6 operation blocks; inputs, outputs,
	// constants and the annotation-inferred output buffer are excluded.
	// This matches the receiver row of the paper's Table 1.
	if n := g.OpBlockCount(); n != 6 {
		t.Errorf("OpBlockCount = %d, want 6", n)
	}
}

func TestArityValidation(t *testing.T) {
	g := NewGraph("bad")
	in := g.AddBlock(BInput, "x")
	// Sub requires two inputs.
	g.AddBlock(BSub, "s", in.Out)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "requires 2 inputs") {
		t.Fatalf("expected arity error, got %v", err)
	}
}

func TestMissingControlRejected(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddBlock(BInput, "a")
	b := g.AddBlock(BInput, "b")
	g.AddBlock(BMux, "m", a.Out, b.Out) // no control connected
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "control") {
		t.Fatalf("expected control error, got %v", err)
	}
}

func TestControlNetTyping(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddBlock(BInput, "a")
	b := g.AddBlock(BInput, "b")
	m := g.AddBlock(BMux, "m", a.Out, b.Out)
	m.SetCtrl(g, a.Out) // analog net used as control
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "not a control net") {
		t.Fatalf("expected control typing error, got %v", err)
	}
}

func TestAlgebraicLoopRejected(t *testing.T) {
	g := NewGraph("loop")
	in := g.AddBlock(BInput, "x")
	add := g.AddBlock(BAdd, "a", in.Out, in.Out)
	gain := g.AddBlock(BGain, "g", add.Out)
	gain.Param = 0.5
	// Close a combinational cycle add -> gain -> add.
	add.Inputs[1] = gain.Out
	gain.Out.Readers = append(gain.Out.Readers, add)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "algebraic loop") {
		t.Fatalf("expected loop error, got %v", err)
	}
}

func TestIntegratorLoopAllowed(t *testing.T) {
	// x' = -x: gain feeds integrator feeds gain; legal because the
	// integrator is a state element.
	g := NewGraph("ode")
	neg := &Block{}
	_ = neg
	integ := g.AddBlock(BIntegrator, "x", nil)
	gain := g.AddBlock(BGain, "fb", integ.Out)
	gain.Param = -1
	integ.Inputs[0] = gain.Out
	gain.Out.Readers = append(gain.Out.Readers, integ)
	g.AddBlock(BOutput, "out", integ.Out)
	if err := g.Validate(); err != nil {
		t.Fatalf("integrator loop should be legal: %v", err)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := buildReceiverGraph(t)
	order := g.Topological()
	pos := map[*Block]int{}
	for i, b := range order {
		pos[b] = i
	}
	if len(order) != len(g.Blocks) {
		t.Fatalf("order has %d blocks, want %d", len(order), len(g.Blocks))
	}
	for _, b := range g.Blocks {
		if b.Kind == BIntegrator || b.Kind == BSampleHold {
			continue
		}
		for _, in := range b.Inputs {
			if in != nil && in.Driver != nil && pos[in.Driver] > pos[b] {
				t.Errorf("block %q appears before its driver %q", b.Name, in.Driver.Name)
			}
		}
	}
}

func TestFSMValidate(t *testing.T) {
	f := NewFSM("ctl")
	s1 := f.NewState("state1")
	s2 := f.NewState("state2")
	f.AddArc(f.Start, s1, &DEvent{Quantity: "line", Threshold: 0.1})
	f.AddArc(s1, s2, nil)
	f.AddArc(s2, f.Start, nil)
	if err := f.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestFSMUnreachableState(t *testing.T) {
	f := NewFSM("ctl")
	f.NewState("orphan")
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("expected unreachable error, got %v", err)
	}
}

func TestDatapathCount(t *testing.T) {
	f := NewFSM("ctl")
	s1 := f.NewState("state1")
	s1.Ops = append(s1.Ops, &DataOp{
		Target: "c1", SignalOp: true,
		Expr: &DConst{Value: 1, Bit: true},
	})
	s2 := f.NewState("state2")
	s2.Ops = append(s2.Ops, &DataOp{
		Target: "c1", SignalOp: true,
		Expr: &DConst{Value: 0, Bit: true},
	})
	ev := &DEvent{Quantity: "line", Threshold: 0.1}
	f.AddArc(f.Start, s1, ev)
	f.AddArc(s1, s2, &DBinary{Op: "=", X: ev, Y: &DConst{Value: 1}})
	f.AddArc(s1, f.Start, nil)
	f.AddArc(s2, f.Start, nil)
	// Pure constant moves contribute nothing; the comparison guard with its
	// event contributes.
	if n := f.DatapathCount(); n != 2 {
		t.Errorf("DatapathCount = %d, want 2 (event + comparison)", n)
	}
}

func TestModuleMetrics(t *testing.T) {
	g := buildReceiverGraph(t)
	f := NewFSM("ctl")
	s1 := f.NewState("state1")
	f.AddArc(f.Start, s1, &DEvent{Quantity: "line", Threshold: 0.1})
	f.AddArc(s1, f.Start, nil)
	m := &Module{Name: "telephone", Graphs: []*Graph{g}, FSMs: []*FSM{f}}
	if m.BlockCount() != 6 {
		t.Errorf("BlockCount = %d, want 6", m.BlockCount())
	}
	if m.StateCount() != 2 {
		t.Errorf("StateCount = %d, want 2", m.StateCount())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("module validate: %v", err)
	}
}

func TestDumpDeterministic(t *testing.T) {
	g := buildReceiverGraph(t)
	m := &Module{Name: "telephone", Graphs: []*Graph{g}}
	d1, d2 := m.Dump(), m.Dump()
	if d1 != d2 {
		t.Error("dump is not deterministic")
	}
	for _, want := range []string{"module telephone", "graph main", "mux rvar", "gain g_aline param=4"} {
		if !strings.Contains(d1, want) {
			t.Errorf("dump missing %q:\n%s", want, d1)
		}
	}
}

func TestDExprStrings(t *testing.T) {
	cases := []struct {
		e    DExpr
		want string
	}{
		{&DConst{Value: 1, Bit: true}, "'1'"},
		{&DConst{Value: 2.5}, "2.5"},
		{&DName{Name: "c1"}, "c1"},
		{&DEvent{Quantity: "line", Threshold: 0.1}, "line'above(0.1)"},
		{&DPortEvent{Port: "clk"}, "clk'event"},
		{&DUnary{Op: "not", X: &DName{Name: "c1"}}, "not c1"},
		{&DUnary{Op: "-", X: &DName{Name: "x"}}, "-x"},
		{&DBinary{Op: "+", X: &DName{Name: "a"}, Y: &DName{Name: "b"}}, "(a + b)"},
		{&DCall{Fun: "exp", Args: []DExpr{&DName{Name: "x"}}}, "exp(x)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// randomDAG builds a random valid feed-forward graph for property testing.
func randomDAG(rng *rand.Rand) *Graph {
	g := NewGraph("rand")
	nIn := 1 + rng.Intn(4)
	var nets []*Net
	for i := 0; i < nIn; i++ {
		nets = append(nets, g.AddBlock(BInput, "").Out)
	}
	nOps := rng.Intn(20)
	kinds := []BlockKind{BGain, BAdd, BSub, BMul, BNeg, BLog, BExp, BAbs, BIntegrator}
	for i := 0; i < nOps; i++ {
		k := kinds[rng.Intn(len(kinds))]
		pick := func() *Net { return nets[rng.Intn(len(nets))] }
		var b *Block
		switch k.arity() {
		case 1:
			b = g.AddBlock(k, "", pick())
		case 2:
			b = g.AddBlock(k, "", pick(), pick())
		default:
			b = g.AddBlock(k, "", pick(), pick())
		}
		b.Param = rng.Float64()*4 - 2
		nets = append(nets, b.Out)
	}
	g.AddBlock(BOutput, "y", nets[len(nets)-1])
	return g
}

func TestRandomDAGsValidate(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)))
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomDAGsTopologicalComplete(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(rand.New(rand.NewSource(seed)))
		order := g.Topological()
		if len(order) != len(g.Blocks) {
			return false
		}
		pos := map[*Block]int{}
		for i, b := range order {
			pos[b] = i
		}
		for _, b := range g.Blocks {
			if isStateElement(b) {
				continue
			}
			for _, in := range b.Inputs {
				if in != nil && in.Driver != nil && pos[in.Driver] > pos[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

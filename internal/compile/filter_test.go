package compile

import (
	"math"
	"testing"

	"vase/internal/sim"
	"vase/internal/vhif"
)

// Filter inference (paper Section 3): "we could describe signal properties
// along the signal path, i.e. frequency ranges, and let the synthesis tool
// infer an appropriate filter type."

func TestLowPassInference(t *testing.T) {
	m := compileSrc(t, `
entity smooth is
  port (
    quantity vin  : in real is voltage;
    quantity vout : out real is voltage is frequency 0 to 1000.0
  );
end entity;
architecture a of smooth is
begin
  vout == 2.0 * vin;
end architecture;`)
	g := m.Graphs[0]
	var filt *vhif.Block
	for _, b := range g.Blocks {
		if b.Kind == vhif.BFilter {
			filt = b
		}
	}
	if filt == nil {
		t.Fatalf("no filter inferred\n%s", m.Dump())
	}
	if filt.Param != 1000 || filt.Param2 != 0 {
		t.Errorf("filter corners = %g/%g, want 1000/0 (low-pass)", filt.Param, filt.Param2)
	}
	// The inferred block does not change the Table 1 metric.
	if n := g.OpBlockCount(); n != 1 {
		t.Errorf("op blocks = %d, want 1 (the gain only)", n)
	}
}

func TestLowPassInferenceBehavior(t *testing.T) {
	m := compileSrc(t, `
entity smooth is
  port (
    quantity vin  : in real is voltage;
    quantity vout : out real is voltage is frequency 0 to 1000.0
  );
end entity;
architecture a of smooth is
begin
  vout == vin;
end architecture;`)
	// In-band (100 Hz): passes with little attenuation.
	tr, err := sim.SimulateModule(m, map[string]sim.Source{"vin": sim.Sine(1, 100, 0)},
		sim.Options{TStop: 30e-3, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	late := tr.Get("vout")[len(tr.Time)/2:]
	peak := 0.0
	for _, v := range late {
		peak = math.Max(peak, math.Abs(v))
	}
	if peak < 0.95 {
		t.Errorf("in-band peak = %g, want ~1", peak)
	}
	// Far out of band (20 kHz): attenuated by ~fc/f.
	tr, err = sim.SimulateModule(m, map[string]sim.Source{"vin": sim.Sine(1, 20e3, 0)},
		sim.Options{TStop: 3e-3, TStep: 1e-7})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	late = tr.Get("vout")[len(tr.Time)/2:]
	peak = 0
	for _, v := range late {
		peak = math.Max(peak, math.Abs(v))
	}
	if peak > 0.1 {
		t.Errorf("out-of-band peak = %g, want < 0.1 (20x above the corner)", peak)
	}
}

func TestBandPassInference(t *testing.T) {
	m := compileSrc(t, `
entity tone is
  port (
    quantity vin  : in real is voltage;
    quantity vout : out real is voltage is frequency 500.0 to 2000.0
  );
end entity;
architecture a of tone is
begin
  vout == vin;
end architecture;`)
	var filt *vhif.Block
	for _, b := range m.Graphs[0].Blocks {
		if b.Kind == vhif.BFilter {
			filt = b
		}
	}
	if filt == nil {
		t.Fatalf("no filter inferred\n%s", m.Dump())
	}
	if filt.Param2 != 500 {
		t.Errorf("lower corner = %g, want 500 (band-pass)", filt.Param2)
	}

	peakAt := func(f float64) float64 {
		tr, err := sim.SimulateModule(m, map[string]sim.Source{"vin": sim.Sine(1, f, 0)},
			sim.Options{TStop: 20e-3, TStep: 2e-7})
		if err != nil {
			t.Fatalf("simulate at %g Hz: %v", f, err)
		}
		late := tr.Get("vout")[len(tr.Time)/2:]
		peak := 0.0
		for _, v := range late {
			peak = math.Max(peak, math.Abs(v))
		}
		return peak
	}
	center := peakAt(1000) // geometric center of 500..2000
	lowOut := peakAt(20)
	highOut := peakAt(50e3)
	if center < 0.8 {
		t.Errorf("center-band gain = %g, want ~1", center)
	}
	if lowOut > 0.15 || highOut > 0.15 {
		t.Errorf("stop-band leakage: %g at 20 Hz, %g at 50 kHz", lowOut, highOut)
	}
}

package corpus

// The paper's companion report describes eleven real-life examples specified
// in VASS; Table 1 evaluates five of them. This file carries six further
// designs in the same style, exercising the remaining library cells
// (differentiators, dividers, square-root extractors, rectifiers) and
// language constructs (case/use selection, mixed annotation sets). They are
// not part of Table 1 but are built and verified by the test suite.

// ExtraApplication is one extended benchmark.
type ExtraApplication struct {
	Name   string
	Key    string
	Source string
}

// PIDSource is a proportional-integral-derivative controller: the classic
// analog-computer structure with a difference amplifier for the error, an
// integrator, a differentiator and a weighted summer.
const PIDSource = `entity pid is
  port (
    quantity sp : in real is voltage;
    quantity pv : in real is voltage;
    quantity u  : out real is voltage
  );
end entity;

architecture control of pid is
  constant kp : real := 2.0;
  constant ki : real := 8.0;
  constant kd : real := 0.05;
  quantity e : real;
begin
  e == sp - pv;
  u == kp * e + ki * e'integ + kd * e'dot;
end architecture;
`

// SVFSource is a state-variable filter: two integrators in a loop with a
// damping feedback, providing low-pass, band-pass and high-pass outputs.
const SVFSource = `entity svf is
  port (
    quantity vin : in real is voltage is frequency 0 to 50000;
    quantity lp  : out real;
    quantity bp  : out real;
    quantity hp  : out real
  );
end entity;

architecture biquad of svf is
  constant w : real := 6283.0;
  constant q : real := 1.0;
begin
  hp == vin - lp - q * bp;
  bp'dot == w * hp;
  lp'dot == w * bp;
end architecture;
`

// EnvelopeSource is an AM envelope detector: a precision rectifier followed
// by a first-order averager.
const EnvelopeSource = `entity envelope is
  port (
    quantity vin : in real is voltage;
    quantity env : out real is voltage
  );
end entity;

architecture detector of envelope is
  constant tau : real := 2.0e-3;
  quantity rect : real;
begin
  rect == abs(vin);
  env'dot == (rect - env) / tau;
end architecture;
`

// RatioMeterSource divides two sensor signals — the analog divider cell.
const RatioMeterSource = `entity ratio_meter is
  port (
    quantity num : in real is voltage;
    quantity den : in real is voltage;
    quantity r   : out real
  );
end entity;

architecture divider of ratio_meter is
begin
  r == num / den;
end architecture;
`

// SqrtSource extracts a square root — the log/halve/antilog chain cell.
const SqrtSource = `entity rooter is
  port (
    quantity u : in real is voltage;
    quantity y : out real
  );
end entity;

architecture chain of rooter is
begin
  y == sqrt(u);
end architecture;
`

// WindowSource is a window detector: a case/use over a process-computed
// selection signal routes one of three gains to the output.
const WindowSource = `entity window is
  port (
    quantity vin  : in real is voltage;
    quantity vout : out real
  );
end entity;

architecture selector of window is
  signal inwin : bit;
begin
  case inwin use
    when '1'    => vout == vin;
    when others => vout == 0.1 * vin;
  end case;
  process (vin'above(0.5)) is begin
    if (vin'above(0.5) = true) then inwin <= '1';
    else inwin <= '0'; end if;
  end process;
end architecture;
`

// Extras returns the extended design set.
func Extras() []*ExtraApplication {
	return []*ExtraApplication{
		{Name: "PID Controller", Key: "pid", Source: PIDSource},
		{Name: "State-Variable Filter", Key: "svf", Source: SVFSource},
		{Name: "Envelope Detector", Key: "envelope", Source: EnvelopeSource},
		{Name: "Ratio Meter", Key: "ratiometer", Source: RatioMeterSource},
		{Name: "Square-Root Extractor", Key: "sqrt", Source: SqrtSource},
		{Name: "Window Detector", Key: "window", Source: WindowSource},
	}
}

package compile

import (
	"vase/internal/ast"
	"vase/internal/sema"
	"vase/internal/token"
	"vase/internal/vhif"
)

// env is the name → net binding active while compiling an expression. The
// compiler's quantity map is the base environment; procedural bodies layer
// variable bindings on top.
type env struct {
	c      *compiler
	parent *env
	vars   map[string]*vhif.Net // variable bindings of this level; nil at base
}

func (c *compiler) baseEnv() *env { return &env{c: c} }

func (e *env) child() *env {
	return &env{c: e.c, parent: e, vars: make(map[string]*vhif.Net)}
}

func (e *env) lookup(name string) *vhif.Net {
	for s := e; s != nil; s = s.parent {
		if s.vars != nil {
			if n, ok := s.vars[name]; ok {
				return n
			}
		}
	}
	return e.c.nets[name]
}

func (e *env) bind(name string, n *vhif.Net) {
	if e.vars == nil {
		e.c.nets[name] = n
		return
	}
	e.vars[name] = n
}

// compileExpr translates a real-valued expression into signal-flow blocks
// and returns the net carrying its value. Static sub-expressions fold to
// constant sources.
func (c *compiler) compileExpr(en *env, x ast.Expr) *vhif.Net {
	if v, ok := c.constValue(x); ok {
		return c.constNet(v)
	}
	switch x := x.(type) {
	case *ast.Paren:
		return c.compileExpr(en, x.X)
	case *ast.Name:
		n := en.lookup(x.Ident.Canon)
		if n == nil {
			c.errorf(x.SpanV, "quantity %q used before it is defined by any statement", x.Ident.Name)
			return c.constNet(0)
		}
		if n.Control {
			c.errorf(x.SpanV, "signal %q cannot be used as an analog value", x.Ident.Name)
			return c.constNet(0)
		}
		return n
	case *ast.Unary:
		return c.compileUnary(en, x)
	case *ast.Binary:
		return c.compileBinary(en, x)
	case *ast.Call:
		return c.compileCall(en, x)
	case *ast.Attribute:
		return c.compileAttrExpr(en, x)
	}
	c.errorf(x.Span(), "expression cannot be realized as a signal flow")
	return c.constNet(0)
}

func (c *compiler) compileUnary(en *env, x *ast.Unary) *vhif.Net {
	in := c.compileExpr(en, x.X)
	switch x.Op {
	case token.MINUS:
		return c.g.AddBlock(vhif.BNeg, "", in).Out
	case token.PLUS:
		return in
	case token.ABS:
		return c.g.AddBlock(vhif.BAbs, "", in).Out
	}
	c.errorf(x.SpanV, "operator %s has no analog realization", x.Op)
	return in
}

func (c *compiler) compileBinary(en *env, x *ast.Binary) *vhif.Net {
	switch x.Op {
	case token.PLUS:
		return c.g.AddBlock(vhif.BAdd, "", c.compileExpr(en, x.X), c.compileExpr(en, x.Y)).Out
	case token.MINUS:
		return c.g.AddBlock(vhif.BSub, "", c.compileExpr(en, x.X), c.compileExpr(en, x.Y)).Out
	case token.STAR:
		// A static factor becomes a gain stage.
		if k, ok := c.constValue(x.X); ok {
			b := c.g.AddBlock(vhif.BGain, "", c.compileExpr(en, x.Y))
			b.Param = k
			return b.Out
		}
		if k, ok := c.constValue(x.Y); ok {
			b := c.g.AddBlock(vhif.BGain, "", c.compileExpr(en, x.X))
			b.Param = k
			return b.Out
		}
		return c.g.AddBlock(vhif.BMul, "", c.compileExpr(en, x.X), c.compileExpr(en, x.Y)).Out
	case token.SLASH:
		if k, ok := c.constValue(x.Y); ok && k != 0 {
			b := c.g.AddBlock(vhif.BGain, "", c.compileExpr(en, x.X))
			b.Param = 1 / k
			return b.Out
		}
		return c.g.AddBlock(vhif.BDiv, "", c.compileExpr(en, x.X), c.compileExpr(en, x.Y)).Out
	case token.DSTAR:
		return c.compilePow(en, x)
	}
	c.errorf(x.SpanV, "operator %s has no analog realization in a value context", x.Op)
	return c.constNet(0)
}

// compilePow realizes exponentiation: small static integer exponents by
// repeated multiplication, general exponents through the log/antilog
// identity x**y = exp(y*log(x)).
func (c *compiler) compilePow(en *env, x *ast.Binary) *vhif.Net {
	base := c.compileExpr(en, x.X)
	if k, ok := c.constValue(x.Y); ok && k == float64(int(k)) && k >= 2 && k <= 4 {
		out := base
		for i := 1; i < int(k); i++ {
			out = c.g.AddBlock(vhif.BMul, "", out, base).Out
		}
		return out
	}
	lg := c.g.AddBlock(vhif.BLog, "", base)
	var scaled *vhif.Net
	if k, ok := c.constValue(x.Y); ok {
		b := c.g.AddBlock(vhif.BGain, "", lg.Out)
		b.Param = k
		scaled = b.Out
	} else {
		scaled = c.g.AddBlock(vhif.BMul, "", lg.Out, c.compileExpr(en, x.Y)).Out
	}
	return c.g.AddBlock(vhif.BExp, "", scaled).Out
}

var builtinBlock = map[string]vhif.BlockKind{
	"log": vhif.BLog, "exp": vhif.BExp, "sqrt": vhif.BSqrt,
	"sin": vhif.BSin, "cos": vhif.BCos, "abs": vhif.BAbs,
	"sign": vhif.BSign, "min": vhif.BMin, "max": vhif.BMax,
}

func (c *compiler) compileCall(en *env, x *ast.Call) *vhif.Net {
	sym := c.d.Lookup(x.Fun.Canon)
	if sym == nil || sym.Kind != sema.SymFunction {
		c.errorf(x.SpanV, "cannot realize call to %q", x.Fun.Name)
		return c.constNet(0)
	}
	f := sym.Func
	if f.Builtin != "" {
		if f.Builtin == "adc" {
			if len(x.Args) != 2 {
				c.errorf(x.SpanV, "adc requires (input, bits)")
				return c.constNet(0)
			}
			bits, ok := c.constValue(x.Args[1])
			if !ok {
				c.errorf(x.Args[1].Span(), "adc resolution must be static")
				bits = 8
			}
			b := c.g.AddBlock(vhif.BADC, "", c.compileExpr(en, x.Args[0]))
			b.Param = bits
			return b.Out
		}
		kind, ok := builtinBlock[f.Builtin]
		if !ok {
			c.errorf(x.SpanV, "builtin %q has no analog realization", f.Builtin)
			return c.constNet(0)
		}
		var ins []*vhif.Net
		for _, a := range x.Args {
			ins = append(ins, c.compileExpr(en, a))
		}
		return c.g.AddBlock(kind, "", ins...).Out
	}
	return c.inlineFunction(en, x, f)
}

// inlineFunction expands a user function call: parameters bind to argument
// nets, the body's assignments execute in a child environment, and the
// return expression's net is the call's value.
func (c *compiler) inlineFunction(en *env, x *ast.Call, f *sema.Func) *vhif.Net {
	if f.Decl == nil || f.Decl.Body == nil {
		c.errorf(x.SpanV, "function %q has no body to synthesize", f.Name)
		return c.constNet(0)
	}
	if len(x.Args) != len(f.Params) {
		c.errorf(x.SpanV, "function %q argument count mismatch", f.Name)
		return c.constNet(0)
	}
	inner := en.child()
	for i, p := range f.Params {
		inner.bind(p.Name, c.compileExpr(en, x.Args[i]))
	}
	for _, d := range f.Decl.Decls {
		if od, ok := d.(*ast.ObjectDecl); ok && od.Init != nil {
			for _, id := range od.Names {
				inner.bind(id.Canon, c.compileExpr(inner, od.Init))
			}
		}
	}
	var ret *vhif.Net
	var run func(ss []ast.SeqStmt)
	run = func(ss []ast.SeqStmt) {
		for _, st := range ss {
			if ret != nil {
				return
			}
			switch st := st.(type) {
			case *ast.Assign:
				if n, ok := st.LHS.(*ast.Name); ok {
					inner.bind(n.Ident.Canon, c.compileExpr(inner, st.RHS))
				}
			case *ast.ReturnStmt:
				ret = c.compileExpr(inner, st.Value)
			case *ast.IfStmt:
				c.errorf(st.SpanV, "conditional control flow in function %q is not synthesizable; use min/max/sign", f.Name)
			case *ast.ForStmt:
				c.unrollFor(inner, st, func(e *env, body []ast.SeqStmt) { run(body) })
			case *ast.NullStmt:
			}
		}
	}
	run(f.Decl.Body)
	if ret == nil {
		c.errorf(x.SpanV, "function %q did not produce a value", f.Name)
		return c.constNet(0)
	}
	return ret
}

// compileAttrExpr compiles value-context attributes: q'dot (differentiator),
// q'integ (integrator), and t'reference (the across quantity of a terminal
// port — VASS uses exactly one facet per terminal).
func (c *compiler) compileAttrExpr(en *env, x *ast.Attribute) *vhif.Net {
	switch x.Attr {
	case "dot":
		return c.g.AddBlock(vhif.BDifferentiator, "", c.compileExpr(en, x.X)).Out
	case "integ":
		return c.g.AddBlock(vhif.BIntegrator, "", c.compileExpr(en, x.X)).Out
	case "reference":
		if nm, ok := unparen(x.X).(*ast.Name); ok {
			if n := en.lookup(nm.Ident.Canon); n != nil {
				return n
			}
			c.errorf(x.SpanV, "terminal %q has no across quantity available", nm.Ident.Name)
			return c.constNet(0)
		}
	}
	c.errorf(x.SpanV, "attribute '%s has no value-context realization", x.Attr)
	return c.constNet(0)
}

// ---------------------------------------------------------------------------
// Control conditions

// compileControl translates a boolean condition into a control net. The
// realizable forms are signal tests (c, c = '1', c = '0', not c), threshold
// comparisons of quantities against static levels, comparisons between two
// quantities (difference + zero comparator), and 'above events.
func (c *compiler) compileControl(en *env, x ast.Expr) *vhif.Net {
	switch x := x.(type) {
	case *ast.Paren:
		return c.compileControl(en, x.X)
	case *ast.Name:
		if n := c.ctrl[x.Ident.Canon]; n != nil {
			return n
		}
		c.errorf(x.SpanV, "signal %q has no control realization (not computed by any process)", x.Ident.Name)
		return c.dummyCtrl()
	case *ast.Unary:
		if x.Op == token.NOT {
			return c.invertCtrl(c.compileControl(en, x.X))
		}
	case *ast.Binary:
		return c.compileControlBinary(en, x)
	case *ast.Attribute:
		if x.Attr == "above" {
			return c.compileAbove(en, x, "")
		}
	}
	c.errorf(x.Span(), "condition cannot be realized as a control signal")
	return c.dummyCtrl()
}

func (c *compiler) compileControlBinary(en *env, x *ast.Binary) *vhif.Net {
	// Signal equality tests: c = '1', c = '0', c = true, c = false, and the
	// /= forms. Event tests: q'above(th) = true.
	if lit, isTrue, ok := boolLiteral(x.Y); ok && (x.Op == token.EQ || x.Op == token.NEQ) {
		_ = lit
		inner := c.compileControl(en, x.X)
		if (x.Op == token.EQ) != isTrue {
			inner = c.invertCtrl(inner)
		}
		return inner
	}
	switch x.Op {
	case token.GT, token.GE:
		return c.comparatorFor(en, x.X, x.Y)
	case token.LT, token.LE:
		return c.invertCtrl(c.comparatorFor(en, x.X, x.Y))
	}
	c.errorf(x.SpanV, "condition operator %s cannot be realized as a control signal", x.Op)
	return c.dummyCtrl()
}

// comparatorFor builds the control net for "lhs > rhs".
func (c *compiler) comparatorFor(en *env, lhs, rhs ast.Expr) *vhif.Net {
	if th, ok := c.constValue(rhs); ok {
		b := c.g.AddBlock(vhif.BComparator, "", c.compileExpr(en, lhs))
		b.Param = th
		return b.Out
	}
	diff := c.g.AddBlock(vhif.BSub, "", c.compileExpr(en, lhs), c.compileExpr(en, rhs))
	b := c.g.AddBlock(vhif.BComparator, "", diff.Out)
	b.Param = 0
	return b.Out
}

// compileAbove realizes q'above(th) as a comparator block. name, when
// non-empty, names the block (used for FSM-extracted controls).
func (c *compiler) compileAbove(en *env, x *ast.Attribute, name string) *vhif.Net {
	th := 0.0
	if len(x.Args) == 1 {
		v, ok := c.constValue(x.Args[0])
		if !ok {
			c.errorf(x.Args[0].Span(), "'above threshold must be static")
		}
		th = v
	}
	b := c.g.AddBlock(vhif.BComparator, name, c.compileExpr(en, x.X))
	b.Param = th
	return b.Out
}

// invertCtrl returns the logical complement of a control net, caching one
// inverter per net.
func (c *compiler) invertCtrl(n *vhif.Net) *vhif.Net {
	if inv, ok := c.inverted[n]; ok {
		return inv
	}
	// Double inversion returns the original.
	for orig, inv := range c.inverted {
		if inv == n {
			return orig
		}
	}
	b := c.g.AddBlock(vhif.BNot, "", n)
	b.FromFSM = n.Driver != nil && n.Driver.FromFSM
	c.inverted[n] = b.Out
	return b.Out
}

func (c *compiler) dummyCtrl() *vhif.Net {
	b := c.g.AddBlock(vhif.BComparator, "", c.constNet(0))
	return b.Out
}

// boolLiteral recognizes '1'/'0'/true/false expressions.
func boolLiteral(e ast.Expr) (lit ast.Expr, isTrue, ok bool) {
	switch e := e.(type) {
	case *ast.BitLit:
		return e, e.Value, true
	case *ast.Name:
		switch e.Ident.Canon {
		case "true":
			return e, true, true
		case "false":
			return e, false, true
		}
	case *ast.Paren:
		return boolLiteral(e.X)
	}
	return nil, false, false
}

package mna

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// activeChain builds a chain of diode-clamped inverting integrator stages:
// enough op-amp branch rows and cross-stage coupling that the sparse plan
// exercises pivoting, elimination fill and the replay cache, while staying
// deterministic (fixed stimulus, fixed step).
func activeChain(stages int) *Circuit {
	c := New()
	in := c.NodeByName("in")
	c.AddV("vin", in, Ground, func(t float64) float64 {
		return math.Sin(2 * math.Pi * 1e3 * t)
	})
	prev := in
	for i := 0; i < stages; i++ {
		sum := c.NodeByName(fmt.Sprintf("s%d", i))
		out := c.NodeByName(fmt.Sprintf("o%d", i))
		c.AddR(fmt.Sprintf("ri%d", i), prev, sum, 1e4)
		c.AddC(fmt.Sprintf("cf%d", i), sum, out, 1e-9, 0)
		c.AddR(fmt.Sprintf("rf%d", i), sum, out, 1e6)
		c.AddOpAmp(fmt.Sprintf("op%d", i), out, Ground, sum, 2e5, 12)
		if i%2 == 1 {
			c.AddDiode(fmt.Sprintf("d%d", i), out, Ground)
		}
		prev = out
	}
	return c
}

// TestNewtonZeroAllocs pins the steady-state allocation behavior the stamp
// plan was built for: once the pattern has converged and the elimination
// schedule is recorded, a full Newton solve — clear, stamp, factor,
// back-substitute, damped update — allocates nothing, in both the dense and
// the CSR factorization.
func TestNewtonZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode SolverMode
	}{
		{"dense", SolverDense},
		{"sparse", SolverSparse},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := activeChain(6)
			c.Solver = tc.mode
			s, err := c.ensureSolver()
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			dst := make(Solution, s.dim+1)
			// Warm until the adaptive pattern and the replay cache have
			// settled; repeated identical solves pick identical pivots, so
			// the schedule never grows again.
			for i := 0; i < 3; i++ {
				if _, err := c.newtonFast(ctx, s, dst, s.zero, s.zero, 0, 1e-6); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := c.newtonFast(ctx, s, dst, s.zero, s.zero, 0, 1e-6); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s Newton solve: %v allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestSparsePatternGrowth pins the adaptive-fill path: the chain's op-amp
// branch rows force elimination fill outside the stamped pattern, the plan
// grows it mid-factorization, and the converged solution is still bit-exact
// against the reference dense solver.
func TestSparsePatternGrowth(t *testing.T) {
	ref := activeChain(6)
	ref.Solver = SolverReference
	want, err := ref.DC()
	if err != nil {
		t.Fatal(err)
	}

	c := activeChain(6)
	c.Solver = SolverSparse
	got, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	st := c.SolverStats()
	if !st.Sparse {
		t.Fatalf("stats.Sparse = false, want the CSR plan")
	}
	if st.Fill == 0 {
		t.Errorf("stats.Fill = 0: the chain was chosen to force adaptive elimination fill")
	}
	if len(got) != len(want) {
		t.Fatalf("solution length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("DC[%d] = %x, reference %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestACParallelDeterministic pins the parallel sweep contract: every worker
// count produces bitwise-identical complex responses. Run under -race this
// also exercises the per-worker workspace isolation.
func TestACParallelDeterministic(t *testing.T) {
	freqs := LogSweep(10, 1e7, 97)
	sweep := func(workers int) *ACResult {
		t.Helper()
		c := activeChain(7)
		c.Workers = workers
		res, err := c.AC("vin", freqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	want := sweep(1)
	for _, workers := range []int{2, 8} {
		got := sweep(workers)
		for n, col := range want.V {
			gcol := got.V[n]
			if len(gcol) != len(col) {
				t.Fatalf("workers=%d node %d: %d points, want %d", workers, n, len(gcol), len(col))
			}
			for i := range col {
				if math.Float64bits(real(gcol[i])) != math.Float64bits(real(col[i])) ||
					math.Float64bits(imag(gcol[i])) != math.Float64bits(imag(col[i])) {
					t.Errorf("workers=%d node %d point %d: %v, want %v", workers, n, i, gcol[i], col[i])
				}
			}
		}
	}
}

// TestACCancelledBeforeSweep pins the anytime contract's degenerate case: a
// context cancelled before the operating point completes yields the empty
// truncated prefix, not an error.
func TestACCancelledBeforeSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := activeChain(4)
	res, err := c.ACContext(ctx, "vin", LogSweep(10, 1e6, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Freqs) != 0 {
		t.Fatalf("Truncated=%v len(Freqs)=%d, want truncated empty prefix", res.Truncated, len(res.Freqs))
	}
}

// BenchmarkMNASolve measures one warm Newton solve (clear + stamp + factor +
// back-substitute) through each factorization on the same 23-dimension
// chain. This is the inner loop of every transient step.
func BenchmarkMNASolve(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode SolverMode
	}{
		{"reference", SolverReference},
		{"dense", SolverDense},
		{"sparse", SolverSparse},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := activeChain(7)
			c.Solver = tc.mode
			if tc.mode == SolverReference {
				nb := c.assignBranches()
				m := newMatrix(c.nodes + nb)
				zero := make(Solution, c.nodes+nb+1)
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.newtonRef(ctx, m, zero, zero, 0, 1e-6); err != nil {
						b.Fatal(err)
					}
				}
				return
			}
			s, err := c.ensureSolver()
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			dst := make(Solution, s.dim+1)
			for i := 0; i < 3; i++ {
				if _, err := c.newtonFast(ctx, s, dst, s.zero, s.zero, 0, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.newtonFast(ctx, s, dst, s.zero, s.zero, 0, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkACSweepParallel measures the full AC sweep (operating point +
// template + 256 complex solves) across worker counts.
func BenchmarkACSweepParallel(b *testing.B) {
	freqs := LogSweep(10, 1e8, 256)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := activeChain(7)
			c.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.AC("vin", freqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

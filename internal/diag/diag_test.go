package diag

import (
	"encoding/json"
	"strings"
	"testing"

	"vase/internal/source"
)

func TestCodeRegistry(t *testing.T) {
	codes := Codes()
	if len(codes) < 30 {
		t.Fatalf("registry has %d codes, want a populated registry", len(codes))
	}
	seen := map[Code]bool{}
	for _, info := range codes {
		if seen[info.Code] {
			t.Errorf("duplicate code %s", info.Code)
		}
		seen[info.Code] = true
		if !strings.HasPrefix(string(info.Code), "VASS0") || len(info.Code) != 8 {
			t.Errorf("code %q does not match the VASSnnnn shape", info.Code)
		}
		if info.Summary == "" {
			t.Errorf("code %s has no summary", info.Code)
		}
	}
	if CodeUndeclared.Severity() != Error {
		t.Errorf("CodeUndeclared severity = %v", CodeUndeclared.Severity())
	}
	if CodeUnusedObject.Severity() != Warning {
		t.Errorf("CodeUnusedObject severity = %v", CodeUnusedObject.Severity())
	}
}

func TestDiagnosticError(t *testing.T) {
	f := source.NewFile("t.vhd", "quantity q : real;\n")
	d := New(CodeUndeclared, f.Position(9), "undeclared name %q", "q")
	want := `t.vhd:1:10: undeclared name "q" [VASS0201]`
	if got := d.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	w := New(CodeUnusedObject, f.Position(0), "never used")
	if got := w.Error(); !strings.Contains(got, "warning: never used [VASS0501]") {
		t.Errorf("warning Error() = %q", got)
	}
	p := Errorf(CodeVHIF, "vhif: net %q has no driver", "n1")
	if got := p.Error(); got != `vhif: net "n1" has no driver [VASS0400]` {
		t.Errorf("position-less Error() = %q", got)
	}
}

func TestListSortDedupeErr(t *testing.T) {
	f := source.NewFile("t.vhd", "a\nb\nc\n")
	var l List
	l.Addf(CodeSema, f.Position(4), "second")
	l.Addf(CodeSema, f.Position(0), "first")
	l.Addf(CodeSema, f.Position(0), "first") // duplicate
	l.Addf(CodeUnusedObject, f.Position(2), "warn only")
	err := l.Err()
	if err == nil {
		t.Fatal("Err() = nil with errors present")
	}
	if len(l) != 3 {
		t.Fatalf("after dedupe len = %d, want 3", len(l))
	}
	if l[0].Msg != "first" || l[1].Msg != "warn only" || l[2].Msg != "second" {
		t.Errorf("sorted order = %q, %q, %q", l[0].Msg, l[1].Msg, l[2].Msg)
	}

	var warnOnly List
	warnOnly.Addf(CodeUnusedObject, f.Position(0), "w")
	if err := warnOnly.Err(); err != nil {
		t.Errorf("warnings-only Err() = %v, want nil", err)
	}
}

func TestPromoteAndFilter(t *testing.T) {
	var l List
	l.Addf(CodeUnusedObject, source.Position{}, "w")
	l.Addf(CodeWriteOnlySignal, source.Position{}, "i")
	p := l.Promote()
	if !p.HasErrors() {
		t.Error("Promote did not raise warnings to errors")
	}
	if l.HasErrors() {
		t.Error("Promote mutated the original list")
	}
	if p[1].Severity != Info {
		t.Error("Promote changed an info diagnostic")
	}
	if got := len(l.Filter(Warning)); got != 1 {
		t.Errorf("Filter(Warning) kept %d, want 1", got)
	}
}

func TestRenderExcerpt(t *testing.T) {
	text := "entity e is\n  quantity earph : out real;\nend entity;\n"
	f := source.NewFile("r.vhd", text)
	r := NewReporter(f, &List{}, CodeSema)
	start := source.Pos(strings.Index(text, "earph"))
	d := r.Report(CodeUndeclared, source.NewSpan(start, start+5), "undeclared name %q", "earph").
		WithFix("declare %q first", "earph")
	out := d.Render(f)
	for _, want := range []string{
		"r.vhd:2:12:",
		"[VASS0201]",
		"quantity earph : out real;",
		"^^^^^",
		`help: declare "earph" first`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestJSON(t *testing.T) {
	f := source.NewFile("t.vhd", "xx\n")
	var l List
	l.Addf(CodeDivByZero, f.Position(1), "division by zero").WithFix("guard the divisor")
	data, err := l.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d entries", len(decoded))
	}
	got := decoded[0]
	if got["code"] != "VASS0541" || got["severity"] != "error" || got["line"] != float64(1) || got["column"] != float64(2) {
		t.Errorf("JSON fields wrong: %v", got)
	}
	if got["fix"] != "guard the divisor" {
		t.Errorf("fix = %v", got["fix"])
	}
}

func TestRenderFiles(t *testing.T) {
	fa := source.NewFile("a.vhd", "quantity qa : real;\n")
	fb := source.NewFile("b.vhd", "quantity qb : real;\n")
	var l List
	l.Addf(CodeUndeclared, fa.Position(9), "in a")
	l.Addf(CodeUndeclared, fb.Position(9), "in b")
	files := map[string]*source.File{"a.vhd": fa, "b.vhd": fb}
	out := l.RenderFiles(func(name string) *source.File { return files[name] })
	// Each diagnostic gets the excerpt from its own file.
	if !strings.Contains(out, "quantity qa") || !strings.Contains(out, "quantity qb") {
		t.Fatalf("RenderFiles missed a per-file excerpt:\n%s", out)
	}
	if !strings.Contains(out, "^") {
		t.Fatalf("RenderFiles produced no caret markers:\n%s", out)
	}
	// A nil lookup still renders every finding, just without excerpts.
	plain := l.RenderFiles(nil)
	if !strings.Contains(plain, "in a") || !strings.Contains(plain, "in b") {
		t.Fatalf("RenderFiles(nil) dropped findings:\n%s", plain)
	}
	if strings.Contains(plain, "quantity") {
		t.Fatalf("RenderFiles(nil) rendered an excerpt without a file:\n%s", plain)
	}
}

package sim

import (
	"math"
	"strings"
	"testing"

	"vase/internal/compile"
	"vase/internal/mapper"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/vhif"
)

func compileSrc(t *testing.T, src string) *vhif.Module {
	t.Helper()
	df, err := parser.Parse("test.vhd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m, err := compile.Compile(d)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func TestIntegratorOfConstantIsRamp(t *testing.T) {
	m := compileSrc(t, `
entity ramp is
  port (quantity u : in real; quantity y : out real);
end entity;
architecture a of ramp is
begin
  y'dot == u;
end architecture;`)
	tr, err := SimulateModule(m, map[string]Source{"u": DC(2.0)}, Options{TStop: 1, TStep: 1e-3})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	// y(1) = 2.0 * 1 s = 2.0.
	if got := tr.Final("y"); math.Abs(got-2.0) > 1e-6 {
		t.Errorf("y(1) = %g, want 2.0", got)
	}
}

func TestFirstOrderLag(t *testing.T) {
	// y' = u - y, u = 1: y(t) = 1 - exp(-t).
	m := compileSrc(t, `
entity lag is
  port (quantity u : in real; quantity y : out real);
end entity;
architecture a of lag is
begin
  y'dot == u - y;
end architecture;`)
	tr, err := SimulateModule(m, map[string]Source{"u": DC(1.0)}, Options{TStop: 2, TStep: 1e-3})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	want := 1 - math.Exp(-2)
	if got := tr.Final("y"); math.Abs(got-want) > 1e-5 {
		t.Errorf("y(2) = %g, want %g", got, want)
	}
}

func TestHarmonicOscillatorRK4(t *testing.T) {
	// x' = v, v' = -w^2 x is specified with w = 2*pi*f folded into gains;
	// start from rest and drive with nothing: need an initial condition, so
	// instead solve x' = v, v' = u - x with a step input: x -> 1 with
	// oscillation at 1 rad/s.
	m := compileSrc(t, `
entity osc is
  port (quantity u : in real; quantity x : out real);
end entity;
architecture a of osc is
  quantity v : real;
begin
  x'dot == v;
  v'dot == u - x;
end architecture;`)
	tr, err := SimulateModule(m, map[string]Source{"u": DC(1.0)}, Options{TStop: 2 * math.Pi, TStep: 1e-3})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	// Undamped: x(t) = 1 - cos(t); at t = 2*pi, x returns to 0.
	if got := tr.Final("x"); math.Abs(got) > 1e-4 {
		t.Errorf("x(2pi) = %g, want 0 (energy-conserving RK4)", got)
	}
	if peak := tr.Max("x"); math.Abs(peak-2.0) > 1e-3 {
		t.Errorf("peak = %g, want 2.0", peak)
	}
}

const receiverSrc = `
entity telephone is
  port (
    quantity line  : in real is voltage;
    quantity local : in real is voltage;
    quantity earph : out real is voltage limited at 1.5 drives 270.0 at 0.285 peak
  );
end entity;
architecture behavioral of telephone is
  constant Aline  : real := 4.0;
  constant Alocal : real := 2.0;
  constant r1c    : real := 0.5;
  constant r2c    : real := 0.25;
  constant Vth    : real := 0.1;
  quantity rvar : real;
  signal c1 : bit;
begin
  earph == (Aline * line + Alocal * local) * rvar;
  if (c1 = '1') use
    rvar == r1c;
  else
    rvar == r1c + r2c;
  end use;
  process (line'above(Vth)) is
  begin
    if (line'above(Vth) = true) then
      c1 <= '1';
    else
      c1 <= '0';
    end if;
  end process;
end architecture;`

func TestReceiverSmallSignalGain(t *testing.T) {
	m := compileSrc(t, receiverSrc)
	// A small DC input below the threshold: c1 = '0', rvar = 0.75,
	// earph = 4*line*0.75 = 3*line.
	tr, err := SimulateModule(m, map[string]Source{
		"line":  DC(0.05),
		"local": DC(0),
	}, Options{TStop: 0.01, TStep: 1e-5})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if got := tr.Final("earph"); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("earph = %g, want 0.15 (gain 3 path)", got)
	}
}

func TestReceiverGainSwitching(t *testing.T) {
	m := compileSrc(t, receiverSrc)
	// Above the threshold: c1 = '1', rvar = 0.5, earph = 4*line*0.5.
	tr, err := SimulateModule(m, map[string]Source{
		"line":  DC(0.2),
		"local": DC(0),
	}, Options{TStop: 0.01, TStep: 1e-5})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if got := tr.Final("earph"); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("earph = %g, want 0.4 (compensated gain path)", got)
	}
}

func TestReceiverClippingFigure8(t *testing.T) {
	// Figure 8: a deliberately high-amplitude input; the output stage clips
	// at 1.5 V.
	m := compileSrc(t, receiverSrc)
	tr, err := SimulateModule(m, map[string]Source{
		"line":  Sine(1.5, 1e3, 0),
		"local": DC(0),
	}, Options{TStop: 3e-3, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if max := tr.Max("earph"); math.Abs(max-1.5) > 1e-9 {
		t.Errorf("positive clip = %g, want 1.5", max)
	}
	if min := tr.Min("earph"); math.Abs(min+1.5) > 1e-9 {
		t.Errorf("negative clip = %g, want -1.5", min)
	}
}

func TestFunctionGeneratorRampOscillates(t *testing.T) {
	m := compileSrc(t, `
entity gen is
  port (quantity ramp : out real);
end entity;
architecture a of gen is
  constant k : real := 1000.0;
  constant amp : real := 1.0;
  quantity slope : real;
  signal up : bit;
begin
  ramp'dot == slope;
  if (up = '1') use
    slope == k;
  else
    slope == -k;
  end use;
  process (ramp'above(amp), ramp'above(-amp)) is
  begin
    up <= not up;
  end process;
end architecture;`)
	tr, err := SimulateModule(m, map[string]Source{}, Options{TStop: 0.02, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	// Triangle wave between roughly -1 and 1 (hysteresis bounds).
	if max := tr.Max("ramp"); max < 0.9 || max > 1.2 {
		t.Errorf("ramp max = %g, want ~1", max)
	}
	if min := tr.Min("ramp"); min > -0.9 || min < -1.2 {
		t.Errorf("ramp min = %g, want ~-1", min)
	}
	// It must actually oscillate: count direction changes.
	s := tr.Get("ramp")
	changes := 0
	for i := 2; i < len(s); i++ {
		d1 := s[i-1] - s[i-2]
		d2 := s[i] - s[i-1]
		if d1*d2 < 0 {
			changes++
		}
	}
	if changes < 5 {
		t.Errorf("direction changes = %d, want >= 5 (triangle oscillation)", changes)
	}
}

func TestModuleNetlistEquivalence(t *testing.T) {
	// The synthesized netlist must compute the same waveform as the VHIF
	// module (the mapping preserves behavior).
	m := compileSrc(t, receiverSrc)
	res, err := mapper.Synthesize(m, mapper.DefaultOptions())
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	in := map[string]Source{
		"line":  Sine(0.3, 1e3, 0),
		"local": Sine(0.1, 2e3, 1),
	}
	opts := Options{TStop: 3e-3, TStep: 1e-6}
	trM, err := SimulateModule(m, in, opts)
	if err != nil {
		t.Fatalf("module sim: %v", err)
	}
	trN, err := SimulateNetlist(res.Netlist, in, opts)
	if err != nil {
		t.Fatalf("netlist sim: %v", err)
	}
	a, b := trM.Get("earph"), trN.Get("earph")
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Errorf("module/netlist divergence = %g, want < 1e-6", worst)
	}
}

func TestFSMRunnerMatchesComparator(t *testing.T) {
	// The FSM interpreter and the extracted comparator must agree on the
	// control signal (away from the hysteresis band).
	m := compileSrc(t, receiverSrc)
	if len(m.FSMs) != 1 {
		t.Fatalf("fsms = %d", len(m.FSMs))
	}
	runner := NewFSMRunner(m.FSMs[0])
	tr, err := SimulateModule(m, map[string]Source{
		"line":  Sine(0.5, 1e3, 0),
		"local": DC(0),
	}, Options{TStop: 2e-3, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	line := Sine(0.5, 1e3, 0)
	c1 := tr.Get("c1")
	mismatches := 0
	for i, tm := range tr.Time {
		if err := runner.Step(map[string]float64{"line": line(tm)}); err != nil {
			t.Fatalf("fsm step: %v", err)
		}
		// Skip samples inside the hysteresis band of the analog detector.
		if math.Abs(line(tm)-0.1) < 0.05 {
			continue
		}
		if (runner.Signal("c1") > 0.5) != (c1[i] > 0.5) {
			mismatches++
		}
	}
	if mismatches > len(tr.Time)/100 {
		t.Errorf("FSM and comparator disagree on %d of %d samples", mismatches, len(tr.Time))
	}
}

func TestSampleHoldTracksAndHolds(t *testing.T) {
	m := compileSrc(t, `
entity sh is
  port (quantity vin : in real; quantity vout : out real);
end entity;
architecture a of sh is
  quantity held : real;
  signal strobe : bit;
begin
  if (strobe = '1') use
    held == vin;
  end use;
  vout == held;
  process (vin'above(0.0)) is
  begin
    if (vin'above(0.0) = true) then
      strobe <= '1';
    else
      strobe <= '0';
    end if;
  end process;
end architecture;`)
	// Sine input: the S/H tracks while positive and holds (near zero, the
	// falling-edge value) while negative.
	tr, err := SimulateModule(m, map[string]Source{"vin": Sine(1, 100, 0)}, Options{TStop: 0.02, TStep: 1e-5})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	vout := tr.Get("vout")
	vin := Sine(1, 100, 0)
	for i, tm := range tr.Time {
		if vin(tm) > 0.1 && math.Abs(vout[i]-vin(tm)) > 0.05 {
			t.Fatalf("S/H should track at t=%g: vout=%g vin=%g", tm, vout[i], vin(tm))
		}
		if vin(tm) < -0.5 && math.Abs(vout[i]) > 0.15 {
			t.Fatalf("S/H should hold near the falling-edge value at t=%g: vout=%g", tm, vout[i])
		}
	}
}

func TestADCQuantization(t *testing.T) {
	m := compileSrc(t, `
entity conv is
  port (quantity vin : in real; quantity dout : out real);
end entity;
architecture a of conv is
begin
  dout == adc(vin, 4.0);
end architecture;`)
	tr, err := SimulateModule(m, map[string]Source{"vin": DC(1.03)}, Options{TStop: 1e-3, TStep: 1e-4})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	// 4 bits over +-2.5 V: q = 2.5/8 = 0.3125; 1.03 -> 0.9375.
	if got := tr.Final("dout"); math.Abs(got-0.9375) > 1e-9 {
		t.Errorf("dout = %g, want 0.9375", got)
	}
}

func TestDivergenceDetected(t *testing.T) {
	m := compileSrc(t, `
entity boom is
  port (quantity y : out real);
end entity;
architecture a of boom is
begin
  y'dot == 1.0e9 * y + 1.0e9;
end architecture;`)
	_, err := SimulateModule(m, map[string]Source{}, Options{TStop: 1, TStep: 1e-3})
	if err == nil {
		t.Fatal("expected divergence error")
	}
}

func TestMissingSourceRejected(t *testing.T) {
	m := compileSrc(t, `
entity e is
  port (quantity u : in real; quantity y : out real);
end entity;
architecture a of e is
begin
  y == 2.0 * u;
end architecture;`)
	if _, err := SimulateModule(m, map[string]Source{}, Options{TStop: 1, TStep: 0.1}); err == nil {
		t.Fatal("expected missing-source error")
	}
}

func TestSources(t *testing.T) {
	if DC(3)(42) != 3 {
		t.Error("DC source")
	}
	if Step(0, 1, 5)(4) != 0 || Step(0, 1, 5)(6) != 1 {
		t.Error("Step source")
	}
	if Ramp(2)(3) != 6 {
		t.Error("Ramp source")
	}
	if math.Abs(Sine(2, 1, 0)(0.25)-2) > 1e-12 {
		t.Error("Sine source peak")
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := &Trace{
		Time:    []float64{0, 1, 2},
		Signals: map[string][]float64{"x": {1, -3, 2}},
	}
	if tr.Max("x") != 2 || tr.Min("x") != -3 || tr.Final("x") != 2 {
		t.Error("trace helpers wrong")
	}
	if !math.IsNaN(tr.Final("missing")) {
		t.Error("missing signal should be NaN")
	}
}

func TestMathBlocks(t *testing.T) {
	// min, max, sign, sin, cos, sqrt, div through the whole pipeline.
	m := compileSrc(t, `
entity mathy is
  port (
    quantity a : in real;
    quantity b : in real;
    quantity y1, y2, y3, y4, y5, y6 : out real
  );
end entity;
architecture arch of mathy is
begin
  y1 == min(a, b);
  y2 == max(a, b);
  y3 == sign(a - b);
  y4 == sin(a);
  y5 == cos(a);
  y6 == a / b;
end architecture;`)
	tr, err := SimulateModule(m, map[string]Source{
		"a": DC(0.4),
		"b": DC(0.9),
	}, Options{TStop: 1e-4, TStep: 1e-5})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	checks := map[string]float64{
		"y1": 0.4,
		"y2": 0.9,
		"y3": -1,
		"y4": math.Sin(0.4),
		"y5": math.Cos(0.4),
		"y6": 0.4 / 0.9,
	}
	for name, want := range checks {
		if got := tr.Final(name); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
}

func TestDividerGuardsNearZero(t *testing.T) {
	m := compileSrc(t, `
entity d is
  port (quantity a, b : in real; quantity y : out real);
end entity;
architecture arch of d is
begin
  y == a / b;
end architecture;`)
	tr, err := SimulateModule(m, map[string]Source{
		"a": DC(1),
		"b": DC(0),
	}, Options{TStop: 1e-5, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if v := tr.Final("y"); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("division by zero leaked: %g", v)
	}
}

func TestDifferentiatorOfRamp(t *testing.T) {
	m := compileSrc(t, `
entity d is
  port (quantity u : in real; quantity y : out real);
end entity;
architecture arch of d is
begin
  y == u'dot;
end architecture;`)
	tr, err := SimulateModule(m, map[string]Source{"u": Ramp(5)},
		Options{TStop: 1e-3, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	// After the first step the backward difference settles at the slope.
	if got := tr.Final("y"); math.Abs(got-5) > 1e-6 {
		t.Errorf("d/dt(5t) = %g, want 5", got)
	}
}

func TestProbesRecordInternalNets(t *testing.T) {
	m := compileSrc(t, receiverSrc)
	tr, err := SimulateModule(m, map[string]Source{
		"line":  DC(0.05),
		"local": DC(0),
	}, Options{TStop: 1e-4, TStep: 1e-5, Probes: []string{"rvar"}})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if got := tr.Final("rvar"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("probed rvar = %g, want 0.75", got)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := &Trace{
		Time:    []float64{0, 1e-6},
		Signals: map[string][]float64{"b": {1, 2}, "a": {3, 4}},
	}
	var buf strings.Builder
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t,a,b\n0,3,1\n1e-06,4,2\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestModelBandwidth(t *testing.T) {
	// A gain-5 amplifier sized for the audio system spec: within the
	// specified band the finite-GBW simulation matches the ideal response,
	// far above it the amplifier visibly rolls off — the estimator's
	// bandwidth guard is what keeps the in-band error small.
	m := compileSrc(t, `
entity amp is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of amp is
begin
  y == 5.0 * a;
end architecture;`)
	res, err := mapper.Synthesize(m, mapper.DefaultOptions())
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	peakAt := func(f float64, bw bool) float64 {
		tr, err := SimulateNetlist(res.Netlist, map[string]Source{"a": Sine(0.1, f, 0)},
			Options{TStop: 10 / f, TStep: math.Min(1e-7, 0.001/f), ModelBandwidth: bw})
		if err != nil {
			t.Fatalf("simulate at %g: %v", f, err)
		}
		out := tr.Get("y")
		peak := 0.0
		for _, v := range out[len(out)/2:] {
			peak = math.Max(peak, math.Abs(v))
		}
		return peak
	}
	// In-band (10 kHz, inside the 20 kHz audio spec): within 1% of ideal.
	inBand := peakAt(10e3, true)
	if math.Abs(inBand-0.5) > 0.005 {
		t.Errorf("in-band peak = %g, want ~0.5 (estimator margin suffices)", inBand)
	}
	// Far out of band (30x the specified bandwidth): visible roll-off.
	outBand := peakAt(600e3, true)
	ideal := peakAt(600e3, false)
	if math.Abs(ideal-0.5) > 1e-9 {
		t.Errorf("ideal simulation should not roll off: %g", ideal)
	}
	if outBand > 0.45 {
		t.Errorf("600 kHz peak = %g, want visible finite-GBW roll-off", outBand)
	}
}

package mna

import (
	"errors"
	"math/bits"
)

// This file builds the stamp plan: a one-time structural analysis of the
// circuit that lets every subsequent Newton iteration restamp and refactor
// the MNA system without allocating or re-deriving matrix positions.
//
// The plan records, per device, the flat storage slots its companion model
// writes (in the exact order the reference stamper writes them, so aliased
// slots accumulate identically). For the CSR representation the pattern is
// adaptive: it starts as exactly the stamped entries and grows on demand.
// Because partial pivoting picks pivots from runtime values, the fill
// pattern of an elimination cannot be known in advance without a ruinous
// over-approximation (closing the stamped pattern under every possible
// pivot sequence fills ~half the matrix on real circuits). Instead the
// numeric factorization detects the first write that lands outside the
// pattern, the pattern absorbs the pivot row that caused it, and the
// factorization is restamped and retried. Growth is monotone and bounded,
// so the pattern converges after the first few solves and the steady state
// runs with zero misses and zero allocations.

// errPatternGrown is returned by the sparse factorization when an
// elimination update needed a slot outside the current pattern: the pattern
// has been grown and the caller must restamp and retry.
var errPatternGrown = errors.New("mna: sparse pattern grown, restamp and retry")

// solver is the reusable linear-system workspace of a circuit: flat matrix
// storage (dense row-major or CSR), the elimination scratch, and the Newton
// iterate buffers. It is rebuilt only when the circuit's structure changes.
type solver struct {
	dim    int  // reduced system dimension (nodes + branches)
	ndev   int  // device count at plan time (structure-change detection)
	sparse bool // CSR vs. flat dense representation

	// pat holds the per-row column bitsets of the current CSR pattern
	// (sparse only); words is the row stride in uint64s. stampedPat is the
	// initial (stamped-entry) pattern, kept so relayouts can tell stamped
	// slots from adaptively discovered fill.
	pat        []uint64
	stampedPat []uint64
	words      int

	// vals is the matrix storage: dense dim*dim row-major (reduced,
	// 0-based) or the CSR value array; one extra slot at the end absorbs
	// writes aimed at the folded-away ground row/column.
	vals []float64
	// rowPtr/colIdx describe the CSR pattern (sparse only). Column
	// indices are ascending within each row.
	rowPtr, colIdx []int
	trash          int // index of the ground write-off slot in vals

	// rhsv is the right-hand side by physical (reduced) row, with a
	// ground write-off slot at index dim.
	rhsv []float64

	perm  []int // logical→physical row permutation (pivoting)
	pos   []int // physical→logical inverse of perm (sparse)
	diagQ []int // per-logical-row diagonal slot, set at pivot time (sparse)
	scale []float64

	// Column-compressed view of the CSR pattern (sparse only): for column
	// col, entries colPtr[col]..colPtr[col+1] give the physical rows with a
	// pattern slot at col (colRow) and the slot's index in vals (colSlot).
	// The factorization reads columns directly instead of advancing
	// per-row cursors.
	colPtr  []int
	colRow  []int32
	colSlot []int32

	// scalePtr/scaleSlot group the stamped value slots by column: the
	// pivot-scale pass runs before any elimination, when every fill slot
	// still holds an exact zero, so only stamped slots can contribute to a
	// column's magnitude, and grouping them lets each column's maximum be
	// reduced locally.
	scalePtr  []int32
	scaleSlot []int32

	// Elimination replay cache. Partial pivoting re-selects pivots from
	// runtime values every factorization, but on a converging Newton
	// iteration the magnitudes move slowly and the chosen sequence is
	// almost always the previous one. sched caches, per column, the
	// elimination structure under the last pivot sequence as a flat
	// stream of segments
	//   [pivotRow, pivotSlot, tailLen, nTargets,
	//    {numSlot, targetRow, dst[tailLen]} x nTargets]
	// valid for the first schedN columns. A factorization replays a
	// column when its freshly scanned pivot matches the cached one (the
	// cached candidate set is exact as long as every earlier column
	// matched); the first mismatch truncates the stream and re-records
	// from there. Replayed columns skip the U-entry filtering and the
	// merge walks entirely. layout() resets the cache.
	sched  []int32
	schedN int

	next Solution // Newton update workspace
	zero Solution // immutable all-zero guess / previous solution

	// slots packs per-device write positions; devOff[i] is device i's
	// offset. Layout per kind is fixed and mirrored by Circuit.stampInto.
	slots  []int
	devOff []int

	// fnVals/fnDps are shared scratch for behavioral (dFunc) Jacobians,
	// sized to the widest control list.
	fnVals, fnDps []float64

	// ops lists the op-amp devices, whose Newton-limiting memory
	// (lastVc/hasLast) advances on every stamp. A restamp after adaptive
	// pattern growth must replay the same linearization, so newtonFast
	// snapshots the state here before stamping and restores it before a
	// retry.
	ops   []*device
	opVc  []float64
	opHas []bool

	// fast is the SolverFast tier's ordered workspace (fast.go), built
	// lazily from assembled values and invalidated by layout(): adaptive
	// pattern growth renumbers the plan slots the fast scatter map indexes.
	fast *fastState
	// fastOff permanently routes SolverFast solves through the exact Newton
	// path for this circuit: set when the fast tier's ordering or scheduled
	// factorization fails (e.g. a numerically singular scratch at some
	// mid-Newton iterate the exact tier's runtime pivoting survives).
	fastOff bool

	stamped int // stamped (structural) slot count
	fill    int // adaptively discovered fill slot count
}

func (s *solver) clear() {
	for i := range s.vals {
		s.vals[i] = 0
	}
	for i := range s.rhsv {
		s.rhsv[i] = 0
	}
}

func (s *solver) factorSolve(x Solution) error {
	if s.sparse {
		return s.sparseFactorSolve(x)
	}
	return s.denseFactorSolve(x)
}

// grow absorbs the pivot row's pattern tail (columns ≥ col) into row rr
// after a fill miss; the caller then relayouts, restamps and retries.
func (s *solver) grow(rr, pr, col int) {
	dst := s.pat[rr*s.words : (rr+1)*s.words]
	src := s.pat[pr*s.words : (pr+1)*s.words]
	w, bit := col/64, uint64(1)<<(col%64)
	dst[w] |= src[w] &^ (bit - 1)
	for i := w + 1; i < s.words; i++ {
		dst[i] |= src[i]
	}
}

// matrixEntries enumerates the MNA matrix positions (in MNA coordinates,
// ground included) every device stamps, in device order.
func (c *Circuit) matrixEntries(yield func(r, col int)) {
	for _, d := range c.devices {
		switch d.kind {
		case dResistor, dCapacitor, dDiode, dSwitch:
			yield(int(d.a), int(d.a))
			yield(int(d.b), int(d.b))
			yield(int(d.a), int(d.b))
			yield(int(d.b), int(d.a))
		case dVSource:
			yield(d.branch, int(d.a))
			yield(d.branch, int(d.b))
			yield(int(d.a), d.branch)
			yield(int(d.b), d.branch)
		case dVCVS:
			yield(d.branch, int(d.a))
			yield(d.branch, int(d.b))
			yield(d.branch, int(d.cp))
			yield(d.branch, int(d.cm))
			yield(int(d.a), d.branch)
			yield(int(d.b), d.branch)
		case dOpAmp:
			yield(d.branch, int(d.a))
			yield(d.branch, int(d.cp))
			yield(d.branch, int(d.cm))
			yield(int(d.a), d.branch)
		case dFunc:
			yield(d.branch, int(d.a))
			yield(int(d.a), d.branch)
			for _, n := range d.ctrl {
				yield(d.branch, int(n))
			}
		}
	}
}

// ensureSolver returns the circuit's stamp plan, rebuilding it if the
// structure (dimension, device count, or representation choice) changed
// since the last analysis.
func (c *Circuit) ensureSolver() (*solver, error) {
	nb := c.assignBranches()
	dim := c.nodes + nb
	cross := c.SparseCrossover
	if cross <= 0 {
		cross = defaultSparseCrossover
	}
	sparse := c.Solver == SolverSparse ||
		((c.Solver == SolverAuto || c.Solver == SolverFast) && dim >= cross)
	if s := c.sol; s != nil && s.dim == dim && s.ndev == len(c.devices) && s.sparse == sparse {
		return s, nil
	}

	s := &solver{dim: dim, ndev: len(c.devices), sparse: sparse}
	s.words = (dim + 63) / 64
	if s.words == 0 {
		s.words = 1
	}

	// Stamped pattern over the reduced system (ground folded away).
	s.pat = make([]uint64, dim*s.words)
	c.matrixEntries(func(r, col int) {
		if r == 0 || col == 0 {
			return
		}
		s.pat[(r-1)*s.words+(col-1)/64] |= 1 << ((col - 1) % 64)
	})
	for _, wd := range s.pat {
		s.stamped += bits.OnesCount64(wd)
	}
	s.stampedPat = append([]uint64(nil), s.pat...)

	s.rhsv = make([]float64, dim+1)
	s.perm = make([]int, dim)
	s.scale = make([]float64, dim)
	s.next = make(Solution, dim+1)
	s.zero = make(Solution, dim+1)
	if sparse {
		s.pos = make([]int, dim)
		s.diagQ = make([]int, dim)
	}
	for _, d := range c.devices {
		if d.kind == dOpAmp {
			s.ops = append(s.ops, d)
		}
	}
	s.opVc = make([]float64, len(s.ops))
	s.opHas = make([]bool, len(s.ops))
	c.layout(s)

	c.sol = s
	if dim > c.stats.PeakDim {
		c.stats.PeakDim = dim
	}
	return s, nil
}

// layout (re)derives the value storage and per-device slot lists from the
// current pattern. It runs once per plan and again after each adaptive
// pattern growth; stamped values do not survive it — the caller restamps.
func (c *Circuit) layout(s *solver) {
	dim := s.dim
	s.fast = nil // plan slots are renumbered below; the fast scatter map is stale
	if s.sparse {
		nnz := 0
		for _, wd := range s.pat {
			nnz += bits.OnesCount64(wd)
		}
		s.rowPtr = make([]int, dim+1)
		s.colIdx = make([]int, 0, nnz)
		stampedIdx := make([]int32, 0, s.stamped)
		stampedCol := make([]int32, 0, s.stamped)
		for r := 0; r < dim; r++ {
			s.rowPtr[r] = len(s.colIdx)
			base := r * s.words
			for i := 0; i < s.words; i++ {
				wd := s.pat[base+i]
				for wd != 0 {
					b := bits.TrailingZeros64(wd)
					if s.stampedPat[base+i]&(1<<b) != 0 {
						stampedIdx = append(stampedIdx, int32(len(s.colIdx)))
						stampedCol = append(stampedCol, int32(i*64+b))
					}
					s.colIdx = append(s.colIdx, i*64+b)
					wd &^= 1 << b
				}
			}
		}
		s.rowPtr[dim] = len(s.colIdx)

		// Stamped slots grouped by column, for the pivot-scale pass.
		s.scalePtr = make([]int32, dim+1)
		for _, col := range stampedCol {
			s.scalePtr[col+1]++
		}
		for i := 0; i < dim; i++ {
			s.scalePtr[i+1] += s.scalePtr[i]
		}
		s.scaleSlot = make([]int32, len(stampedIdx))
		fillAt := make([]int32, dim)
		copy(fillAt, s.scalePtr[:dim])
		for k, col := range stampedCol {
			s.scaleSlot[fillAt[col]] = stampedIdx[k]
			fillAt[col]++
		}
		s.trash = nnz
		s.vals = make([]float64, nnz+1)
		s.fill = nnz - s.stamped
		// Slot indices changed: the elimination replay cache is stale.
		s.sched = s.sched[:0]
		s.schedN = 0

		// Column-compressed twin of the row pattern, for direct pivot
		// scans and column elimination without per-row cursors.
		s.colPtr = make([]int, dim+1)
		for _, col := range s.colIdx {
			s.colPtr[col+1]++
		}
		for i := 0; i < dim; i++ {
			s.colPtr[i+1] += s.colPtr[i]
		}
		s.colRow = make([]int32, nnz)
		s.colSlot = make([]int32, nnz)
		next := make([]int, dim)
		copy(next, s.colPtr[:dim])
		for r := 0; r < dim; r++ {
			for q := s.rowPtr[r]; q < s.rowPtr[r+1]; q++ {
				col := s.colIdx[q]
				k := next[col]
				next[col] = k + 1
				s.colRow[k] = int32(r)
				s.colSlot[k] = int32(q)
			}
		}
	} else {
		s.trash = dim * dim
		s.vals = make([]float64, dim*dim+1)
		s.fill = 0
	}

	// slotOf maps an MNA coordinate to its storage slot; ground writes go
	// to the trash slot.
	slotOf := func(r, col int) int {
		if r == 0 || col == 0 {
			return s.trash
		}
		if !s.sparse {
			return (r-1)*dim + (col - 1)
		}
		lo, hi := s.rowPtr[r-1], s.rowPtr[r]
		for lo < hi {
			mid := (lo + hi) / 2
			if s.colIdx[mid] < col-1 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= s.rowPtr[r] || s.colIdx[lo] != col-1 {
			panic("mna: stamped entry missing from CSR pattern")
		}
		return lo
	}
	rhsSlot := func(r int) int {
		if r == 0 {
			return dim
		}
		return r - 1
	}

	// Per-device slot lists. Layout per kind (mirrored by stampInto):
	//   R/S     : aa bb ab ba
	//   C/D     : aa bb ab ba rhs-a rhs-b
	//   V       : br,a br,b a,br b,br rhs-br
	//   I       : rhs-a rhs-b
	//   VCVS    : br,a br,b br,cp br,cm a,br b,br
	//   OpAmp   : br,a br,cp br,cm rhs-br a,br
	//   Func    : br,a a,br rhs-br br,ctrl...
	s.slots = s.slots[:0]
	if s.devOff == nil {
		s.devOff = make([]int, len(c.devices))
	}
	maxCtrl := 0
	for di, d := range c.devices {
		s.devOff[di] = len(s.slots)
		a, b := int(d.a), int(d.b)
		switch d.kind {
		case dResistor, dSwitch:
			s.slots = append(s.slots, slotOf(a, a), slotOf(b, b), slotOf(a, b), slotOf(b, a))
		case dCapacitor, dDiode:
			s.slots = append(s.slots, slotOf(a, a), slotOf(b, b), slotOf(a, b), slotOf(b, a),
				rhsSlot(a), rhsSlot(b))
		case dVSource:
			s.slots = append(s.slots, slotOf(d.branch, a), slotOf(d.branch, b),
				slotOf(a, d.branch), slotOf(b, d.branch), rhsSlot(d.branch))
		case dISource:
			s.slots = append(s.slots, rhsSlot(a), rhsSlot(b))
		case dVCVS:
			s.slots = append(s.slots, slotOf(d.branch, a), slotOf(d.branch, b),
				slotOf(d.branch, int(d.cp)), slotOf(d.branch, int(d.cm)),
				slotOf(a, d.branch), slotOf(b, d.branch))
		case dOpAmp:
			s.slots = append(s.slots, slotOf(d.branch, a), slotOf(d.branch, int(d.cp)),
				slotOf(d.branch, int(d.cm)), rhsSlot(d.branch), slotOf(a, d.branch))
		case dFunc:
			s.slots = append(s.slots, slotOf(d.branch, a), slotOf(a, d.branch), rhsSlot(d.branch))
			for _, n := range d.ctrl {
				s.slots = append(s.slots, slotOf(d.branch, int(n)))
			}
			if len(d.ctrl) > maxCtrl {
				maxCtrl = len(d.ctrl)
			}
		}
	}
	if s.fnVals == nil {
		s.fnVals = make([]float64, maxCtrl)
		s.fnDps = make([]float64, maxCtrl)
	}

	c.stats.Sparse = s.sparse
	c.stats.Nonzeros = s.stamped
	c.stats.Fill = s.fill
}

// stampInto builds the linearized MNA system around the iterate x at time t
// by writing through the plan's precomputed slots. It performs the same
// arithmetic in the same order as stampRef (the slot lists mirror the
// reference write order, so aliased slots accumulate identically) and
// allocates nothing.
func (c *Circuit) stampInto(s *solver, x, prev Solution, t, h float64) {
	v, rhs := s.vals, s.rhsv
	for di, d := range c.devices {
		sl := s.slots[s.devOff[di]:]
		switch d.kind {
		case dResistor:
			g := 1 / d.value
			v[sl[0]] += g
			v[sl[1]] += g
			v[sl[2]] -= g
			v[sl[3]] -= g
		case dCapacitor:
			if h <= 0 {
				// DC: tiny conductance to avoid floating nodes.
				g := 1e-12
				v[sl[0]] += g
				v[sl[1]] += g
				v[sl[2]] -= g
				v[sl[3]] -= g
				continue
			}
			vprev := prev.V(d.a) - prev.V(d.b)
			var g, ieq float64
			if c.method == Trapezoidal {
				// Companion model: i = (2C/h)(v - vprev) - iprev.
				g = 2 * d.value / h
				ieq = g*vprev + d.prevI
			} else {
				g = d.value / h
				ieq = g * vprev
			}
			v[sl[0]] += g
			v[sl[1]] += g
			v[sl[2]] -= g
			v[sl[3]] -= g
			rhs[sl[4]] += ieq
			rhs[sl[5]] -= ieq
		case dVSource:
			v[sl[0]] += 1
			v[sl[1]] -= 1
			v[sl[2]] += 1
			v[sl[3]] -= 1
			rhs[sl[4]] += d.wave(t)
		case dISource:
			ieq := -d.wave(t)
			rhs[sl[0]] += ieq
			rhs[sl[1]] -= ieq
		case dVCVS:
			// V(a,b) - gain*V(cp,cm) = 0 with branch current into a.
			v[sl[0]] += 1
			v[sl[1]] -= 1
			v[sl[2]] -= d.value
			v[sl[3]] += d.value
			v[sl[4]] += 1
			v[sl[5]] -= 1
		case dDiode:
			g, ieq := d.diodeLinearize(x.V(d.a) - x.V(d.b))
			v[sl[0]] += g
			v[sl[1]] += g
			v[sl[2]] -= g
			v[sl[3]] -= g
			rhs[sl[4]] -= ieq
			rhs[sl[5]] += ieq
		case dSwitch:
			g := 1 / d.switchR(x.V(d.cp)-x.V(d.cm))
			v[sl[0]] += g
			v[sl[1]] += g
			v[sl[2]] -= g
			v[sl[3]] -= g
		case dOpAmp:
			dg, r := d.opampLinearize(x.V(d.cp) - x.V(d.cm))
			v[sl[0]] += 1
			v[sl[1]] -= dg
			v[sl[2]] += dg
			rhs[sl[3]] += r
			v[sl[4]] += 1
		case dFunc:
			nc := len(d.ctrl)
			v[sl[0]] += 1
			r := d.funcLinearize(x, s.fnVals[:nc], s.fnDps[:nc])
			for i := 0; i < nc; i++ {
				v[sl[3+i]] -= s.fnDps[i]
			}
			rhs[sl[2]] += r
			v[sl[1]] += 1
		}
	}
}
